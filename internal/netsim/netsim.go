// Package netsim models the network substrate of the Fig. 7 case study:
// a 32-node scale-out storage system "connected with 1 Gbit ethernet
// behind one link". The essential behaviour is that every byte ingested
// from the distributed file system crosses ONE shared link, so aggregate
// ingest bandwidth is capped at link capacity (~125 MB/s) no matter how
// many datanodes serve blocks in parallel.
//
// The link implements processor sharing: concurrent transfers split
// capacity fairly, converging to the same aggregate as FIFO but with
// realistic per-flow progress, which matters when the ingest pipeline
// overlaps multiple block fetches.
package netsim

import (
	"fmt"
	"sync"
	"time"

	"supmr/internal/storage"
)

// Link is a shared, capacity-limited network link.
type Link struct {
	capacity float64 // bytes/sec
	latency  time.Duration
	clock    storage.Clock

	mu      sync.Mutex
	flows   int
	stats   LinkStats
	delayer Delayer
}

// Delayer injects extra per-transfer delay (degraded-wire simulation).
// internal/faults provides an implementation structurally, so netsim
// does not depend on it.
type Delayer interface {
	// TransferDelay returns the extra delay to charge a transfer of n
	// bytes before it starts moving data.
	TransferDelay(n int64) time.Duration
}

// LinkStats are cumulative transfer counters.
type LinkStats struct {
	BytesMoved int64
	Transfers  int64
	MaxFlows   int
}

// NewLink builds a link with the given capacity (bytes/sec) and one-way
// latency, scheduling against clock.
func NewLink(capacity float64, latency time.Duration, clock storage.Clock) (*Link, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("netsim: link capacity must be positive, got %v", capacity)
	}
	if latency < 0 {
		return nil, fmt.Errorf("netsim: link latency must be non-negative, got %v", latency)
	}
	if clock == nil {
		return nil, fmt.Errorf("netsim: link requires a clock")
	}
	return &Link{capacity: capacity, latency: latency, clock: clock}, nil
}

// Capacity returns the link capacity in bytes/sec.
func (l *Link) Capacity() float64 { return l.capacity }

// Clock returns the link's clock.
func (l *Link) Clock() storage.Clock { return l.clock }

// Stats returns a snapshot of the counters.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// SetDelayer installs a per-transfer delay hook. Set it during
// topology construction, before traffic flows.
func (l *Link) SetDelayer(d Delayer) {
	l.mu.Lock()
	l.delayer = d
	l.mu.Unlock()
}

// quantum is the processor-sharing integration step: within each quantum
// a flow receives capacity/flows bandwidth.
const quantum = 2 * time.Millisecond

// Transfer moves n bytes across the link, blocking the caller for the
// flow's fair share of capacity until all bytes are delivered. Latency is
// charged once per transfer.
//
// A transfer counts as an active flow only while it is moving bytes:
// the injected-delay and latency sleeps happen before the flow joins
// the processor-sharing set, so a stalled transfer (degraded wire,
// long RTT) does not depress the fair share of flows that are actually
// streaming. Counting it earlier was an accounting drift: a spiked
// flow halved a concurrent clean flow's bandwidth while moving nothing.
func (l *Link) Transfer(n int64) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	l.stats.Transfers++
	l.stats.BytesMoved += n
	delayer := l.delayer
	l.mu.Unlock()

	if delayer != nil {
		if d := delayer.TransferDelay(n); d > 0 {
			l.clock.SleepUntil(l.clock.Now() + d)
		}
	}
	if l.latency > 0 {
		l.clock.SleepUntil(l.clock.Now() + l.latency)
	}

	l.mu.Lock()
	l.flows++
	if l.flows > l.stats.MaxFlows {
		l.stats.MaxFlows = l.flows
	}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.flows--
		l.mu.Unlock()
	}()

	remaining := float64(n)
	for remaining > 0 {
		l.mu.Lock()
		share := l.capacity / float64(l.flows)
		l.mu.Unlock()
		// Sleep one quantum (or just long enough to finish) and credit
		// the bytes for the time that ACTUALLY elapsed: wakeups can be
		// late when the CPUs are busy, and the wire kept moving bits in
		// the meantime.
		step := quantum
		if need := time.Duration(remaining / share * float64(time.Second)); need < step {
			step = need
		}
		start := l.clock.Now()
		l.clock.SleepUntil(start + step)
		elapsed := l.clock.Now() - start
		if elapsed < step {
			elapsed = step
		}
		remaining -= share * elapsed.Seconds()
	}
}

// GigabitEthernet is the capacity of the case study's 1 Gbit link in
// bytes per second.
const GigabitEthernet = 125e6

// StarTopology models the case study's network at one level more
// detail: every datanode owns a dedicated access link into a switch,
// and the compute node ingests through the switch's single uplink (the
// "behind one link" of §VI-C3). The uplink is the shared bottleneck;
// access links only matter when a single node must source data faster
// than its own port.
type StarTopology struct {
	access []*Link
	uplink *Link
	clock  storage.Clock
}

// NewStarTopology builds the topology: nodes access links of accessBW
// each and one shared uplink of uplinkBW (bytes/sec).
func NewStarTopology(nodes int, accessBW, uplinkBW float64, latency time.Duration, clock storage.Clock) (*StarTopology, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("netsim: star topology needs at least one node, got %d", nodes)
	}
	uplink, err := NewLink(uplinkBW, latency, clock)
	if err != nil {
		return nil, err
	}
	t := &StarTopology{uplink: uplink, clock: clock}
	for i := 0; i < nodes; i++ {
		l, err := NewLink(accessBW, 0, clock)
		if err != nil {
			return nil, err
		}
		t.access = append(t.access, l)
	}
	return t, nil
}

// Uplink returns the shared bottleneck link.
func (t *StarTopology) Uplink() *Link { return t.uplink }

// Nodes returns the number of access links.
func (t *StarTopology) Nodes() int { return len(t.access) }

// TransferFrom moves n bytes from node's access link through the
// uplink. Data streams through both links simultaneously, so the
// elapsed time is governed by the slower of the two paths (the node's
// dedicated port vs this flow's fair share of the uplink).
func (t *StarTopology) TransferFrom(node int, n int64) error {
	if node < 0 || node >= len(t.access) {
		return fmt.Errorf("netsim: node %d out of range [0,%d)", node, len(t.access))
	}
	if n <= 0 {
		return nil
	}
	start := t.clock.Now()
	// The uplink transfer sleeps for the shared-bottleneck time.
	t.uplink.Transfer(n)
	// If the dedicated access port is the slower hop, stretch to it.
	accessTime := time.Duration(float64(n) / t.access[node].capacity * float64(time.Second))
	t.access[node].mu.Lock()
	t.access[node].stats.BytesMoved += n
	t.access[node].stats.Transfers++
	t.access[node].mu.Unlock()
	if deadline := start + accessTime; t.clock.Now() < deadline {
		t.clock.SleepUntil(deadline)
	}
	return nil
}

// Fabric models the inter-node network of a multi-node SupMR cluster:
// every node owns a duplex port — an egress link it sends shuffle
// frames through and an ingress link it receives them on. A transfer
// from src to dst streams through src's egress (charging latency and
// its fair share of the port under concurrent sends) and is then
// stretched to dst's ingress port time when the receive side is the
// slower hop, mirroring StarTopology's two-hop accounting.
type Fabric struct {
	egress  []*Link
	ingress []*Link
	clock   storage.Clock
}

// NewFabric builds an n-node fabric whose ports all run at bw bytes/sec
// with the given one-way latency (charged once per transfer, on the
// egress hop).
func NewFabric(n int, bw float64, latency time.Duration, clock storage.Clock) (*Fabric, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netsim: fabric needs at least one node, got %d", n)
	}
	f := &Fabric{clock: clock}
	for i := 0; i < n; i++ {
		eg, err := NewLink(bw, latency, clock)
		if err != nil {
			return nil, err
		}
		in, err := NewLink(bw, 0, clock)
		if err != nil {
			return nil, err
		}
		f.egress = append(f.egress, eg)
		f.ingress = append(f.ingress, in)
	}
	return f, nil
}

// Nodes returns the number of ports.
func (f *Fabric) Nodes() int { return len(f.egress) }

// Egress returns node i's send link (for stats and delayer injection).
func (f *Fabric) Egress(i int) *Link { return f.egress[i] }

// Ingress returns node i's receive link.
func (f *Fabric) Ingress(i int) *Link { return f.ingress[i] }

// Transfer moves n bytes from src to dst. Loopback (src == dst) is
// free: local-partition data never crosses the wire.
func (f *Fabric) Transfer(src, dst int, n int64) error {
	if src < 0 || src >= len(f.egress) {
		return fmt.Errorf("netsim: fabric src %d out of range [0,%d)", src, len(f.egress))
	}
	if dst < 0 || dst >= len(f.ingress) {
		return fmt.Errorf("netsim: fabric dst %d out of range [0,%d)", dst, len(f.ingress))
	}
	if src == dst || n <= 0 {
		return nil
	}
	start := f.clock.Now()
	f.egress[src].Transfer(n)
	// Stretch to the receive port when it is the slower hop, and record
	// the bytes on the ingress side.
	in := f.ingress[dst]
	inTime := time.Duration(float64(n) / in.capacity * float64(time.Second))
	in.mu.Lock()
	in.stats.BytesMoved += n
	in.stats.Transfers++
	in.mu.Unlock()
	if deadline := start + inTime; f.clock.Now() < deadline {
		f.clock.SleepUntil(deadline)
	}
	return nil
}
