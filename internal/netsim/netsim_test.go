package netsim

import (
	"sync"
	"testing"
	"time"

	"supmr/internal/storage"
)

func TestLinkValidation(t *testing.T) {
	clock := storage.NewFakeClock()
	if _, err := NewLink(0, 0, clock); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewLink(1e6, -time.Second, clock); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := NewLink(1e6, 0, nil); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestLinkSingleFlowRate(t *testing.T) {
	clock := storage.NewRealClock()
	l, err := NewLink(10<<20, 0, clock) // 10 MB/s
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	l.Transfer(1 << 20) // 1 MB -> ~100ms
	el := clock.Now() - start
	if el < 90*time.Millisecond || el > 200*time.Millisecond {
		t.Errorf("1MB over 10MB/s took %v, want ~100ms", el)
	}
	s := l.Stats()
	if s.BytesMoved != 1<<20 || s.Transfers != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLinkFairSharing(t *testing.T) {
	// Two concurrent transfers of equal size should finish in about the
	// time one transfer of double size would take — aggregate capacity
	// is conserved.
	clock := storage.NewRealClock()
	l, err := NewLink(20<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Transfer(1 << 20)
		}()
	}
	wg.Wait()
	el := clock.Now() - start
	// 2 MB total over 20 MB/s = ~100ms.
	if el < 90*time.Millisecond || el > 250*time.Millisecond {
		t.Errorf("2x1MB concurrent over 20MB/s took %v, want ~100ms", el)
	}
	if got := l.Stats().MaxFlows; got != 2 {
		t.Errorf("max concurrent flows = %d, want 2", got)
	}
}

func TestLinkLatency(t *testing.T) {
	clock := storage.NewRealClock()
	l, err := NewLink(1<<30, 30*time.Millisecond, clock)
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	l.Transfer(1024)
	el := clock.Now() - start
	if el < 30*time.Millisecond {
		t.Errorf("transfer returned before latency elapsed: %v", el)
	}
}

func TestLinkZeroBytes(t *testing.T) {
	clock := storage.NewRealClock()
	l, err := NewLink(1e6, time.Hour, clock) // huge latency must NOT be paid
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		l.Transfer(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Transfer(0) blocked")
	}
	if l.Stats().Transfers != 0 {
		t.Error("zero transfer counted")
	}
}

func TestGigabitConstant(t *testing.T) {
	if GigabitEthernet != 125e6 {
		t.Errorf("1 Gbit = %v B/s, want 125e6", GigabitEthernet)
	}
}

func TestStarTopologyUplinkBottleneck(t *testing.T) {
	clock := storage.NewRealClock()
	top, err := NewStarTopology(4, 100<<20, 10<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	if err := top.TransferFrom(0, 1<<20); err != nil {
		t.Fatal(err)
	}
	el := clock.Now() - start
	// 1 MB at the 10 MB/s uplink = ~100ms (access port is 10x faster).
	if el < 90*time.Millisecond || el > 200*time.Millisecond {
		t.Errorf("uplink-bound transfer took %v, want ~100ms", el)
	}
}

func TestStarTopologyAccessBottleneck(t *testing.T) {
	clock := storage.NewRealClock()
	top, err := NewStarTopology(2, 5<<20, 1<<30, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	if err := top.TransferFrom(1, 1<<20); err != nil {
		t.Fatal(err)
	}
	el := clock.Now() - start
	// 1 MB at the 5 MB/s access port = ~200ms (uplink is near-infinite).
	if el < 180*time.Millisecond || el > 400*time.Millisecond {
		t.Errorf("access-bound transfer took %v, want ~200ms", el)
	}
	if top.access[1].Stats().BytesMoved != 1<<20 {
		t.Error("access link not accounted")
	}
}

func TestStarTopologyValidation(t *testing.T) {
	clock := storage.NewFakeClock()
	if _, err := NewStarTopology(0, 1, 1, 0, clock); err == nil {
		t.Error("zero nodes accepted")
	}
	top, err := NewStarTopology(2, 1e6, 1e6, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := top.TransferFrom(5, 10); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := top.TransferFrom(0, 0); err != nil {
		t.Error("zero bytes should be a no-op")
	}
	if top.Nodes() != 2 || top.Uplink() == nil {
		t.Error("accessors wrong")
	}
}

// countingDelayer charges a fixed extra delay per transfer.
type countingDelayer struct {
	mu    sync.Mutex
	d     time.Duration
	calls int
}

func (c *countingDelayer) TransferDelay(int64) time.Duration {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.d
}

func TestLinkDelayerStretchesTransfers(t *testing.T) {
	clock := storage.NewFakeClock()
	mk := func(d Delayer) time.Duration {
		l, err := NewLink(1e9, 0, clock)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			l.SetDelayer(d)
		}
		start := clock.Now()
		l.Transfer(1 << 20)
		return clock.Now() - start
	}
	base := mk(nil)
	cd := &countingDelayer{d: 5 * time.Millisecond}
	slow := mk(cd)
	if cd.calls != 1 {
		t.Fatalf("delayer consulted %d times, want 1", cd.calls)
	}
	if got := slow - base; got < 5*time.Millisecond {
		t.Fatalf("transfer stretched by %v, want >= 5ms", got)
	}
	// A zero-delay delayer must not add time.
	cz := &countingDelayer{}
	if same := mk(cz); same != base {
		t.Fatalf("zero delayer changed transfer time: %v vs %v", same, base)
	}
}

func TestLinkBandwidthCharge(t *testing.T) {
	// Exact single-flow arithmetic on the virtual clock: n bytes over a
	// c B/s link must charge n/c seconds plus one latency, regardless of
	// how many quanta the processor-sharing loop integrates over.
	clock := storage.NewFakeClock()
	l, err := NewLink(1e6, 10*time.Millisecond, clock)
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	l.Transfer(500_000) // 0.5s of wire time
	el := clock.Now() - start
	want := 510 * time.Millisecond
	if d := el - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("500kB over 1MB/s + 10ms latency charged %v, want %v", el, want)
	}
	// A second transfer accumulates; stats count both.
	l.Transfer(250_000)
	s := l.Stats()
	if s.BytesMoved != 750_000 || s.Transfers != 2 {
		t.Errorf("stats = %+v, want 750000 bytes / 2 transfers", s)
	}
	if s.MaxFlows != 1 {
		t.Errorf("MaxFlows = %d, want 1 for serial transfers", s.MaxFlows)
	}
}

func TestLinkStalledFlowDoesNotDepressShare(t *testing.T) {
	// Regression for the flow-accounting drift: a transfer stuck in its
	// injected delay must not count as an active flow, so a concurrent
	// clean transfer keeps the full link to itself. Before the fix the
	// clean 1 MB below ran at half rate (~200ms) for the duration of the
	// stall; fixed it finishes in ~100ms.
	clock := storage.NewRealClock()
	l, err := NewLink(10<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	// The delayer stalls only the first transfer; the second (clean)
	// flow passes through it untouched.
	l.SetDelayer(&stalledDelayer{stall: 300 * time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the stalled flow: 300ms delay, then 1 MB
		defer wg.Done()
		l.Transfer(1 << 20)
	}()
	time.Sleep(20 * time.Millisecond) // let it enter the stall
	start := clock.Now()
	l.Transfer(1 << 20) // clean flow, issued mid-stall
	el := clock.Now() - start
	wg.Wait()
	if el > 170*time.Millisecond {
		t.Errorf("clean 1MB during a stalled flow took %v, want ~100ms (full share)", el)
	}
	if got := l.Stats().BytesMoved; got != 2<<20 {
		t.Errorf("bytes conserved: moved %d, want %d", got, 2<<20)
	}
}

// stalledDelayer delays only the first transfer it sees; later
// transfers (the clean flow) pass untouched.
type stalledDelayer struct {
	mu    sync.Mutex
	stall time.Duration
	used  bool
}

func (s *stalledDelayer) TransferDelay(int64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used {
		return 0
	}
	s.used = true
	return s.stall
}

func TestLinkConcurrentFairnessConvergesToAggregate(t *testing.T) {
	// Four concurrent transfers share the link; total wall time must be
	// the aggregate serialization time, and each flow must see the other
	// three (MaxFlows == 4) — per-link fairness, not FIFO.
	clock := storage.NewRealClock()
	l, err := NewLink(40<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Transfer(1 << 20)
		}()
	}
	wg.Wait()
	el := clock.Now() - start
	// 4 MB over 40 MB/s = ~100ms aggregate.
	if el < 90*time.Millisecond || el > 300*time.Millisecond {
		t.Errorf("4x1MB concurrent over 40MB/s took %v, want ~100ms", el)
	}
	s := l.Stats()
	if s.MaxFlows != 4 {
		t.Errorf("MaxFlows = %d, want 4", s.MaxFlows)
	}
	if s.BytesMoved != 4<<20 || s.Transfers != 4 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFabricTransferRate(t *testing.T) {
	clock := storage.NewFakeClock()
	f, err := NewFabric(3, 1e6, 10*time.Millisecond, clock)
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	if err := f.Transfer(0, 2, 500_000); err != nil {
		t.Fatal(err)
	}
	el := clock.Now() - start
	want := 510 * time.Millisecond // 0.5s wire + 10ms egress latency
	if d := el - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("fabric transfer charged %v, want %v", el, want)
	}
	if got := f.Egress(0).Stats().BytesMoved; got != 500_000 {
		t.Errorf("egress bytes = %d, want 500000", got)
	}
	if got := f.Ingress(2).Stats().BytesMoved; got != 500_000 {
		t.Errorf("ingress bytes = %d, want 500000", got)
	}
	if got := f.Ingress(1).Stats().BytesMoved; got != 0 {
		t.Errorf("uninvolved port charged %d bytes", got)
	}
}

func TestFabricLoopbackFree(t *testing.T) {
	clock := storage.NewFakeClock()
	f, err := NewFabric(2, 1, time.Hour, clock) // 1 B/s: any wire charge would hang the virtual clock forward
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	if err := f.Transfer(1, 1, 1<<20); err != nil {
		t.Fatal(err)
	}
	if el := clock.Now() - start; el != 0 {
		t.Errorf("loopback charged %v, want 0", el)
	}
	if got := f.Egress(1).Stats().BytesMoved; got != 0 {
		t.Errorf("loopback counted %d egress bytes", got)
	}
}

func TestFabricValidation(t *testing.T) {
	clock := storage.NewFakeClock()
	if _, err := NewFabric(0, 1e6, 0, clock); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewFabric(2, 0, 0, clock); err == nil {
		t.Error("zero bandwidth accepted")
	}
	f, err := NewFabric(2, 1e6, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Transfer(-1, 0, 10); err == nil {
		t.Error("negative src accepted")
	}
	if err := f.Transfer(0, 2, 10); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if err := f.Transfer(0, 1, 0); err != nil {
		t.Error("zero bytes should be a no-op")
	}
	if f.Nodes() != 2 {
		t.Errorf("Nodes() = %d, want 2", f.Nodes())
	}
}
