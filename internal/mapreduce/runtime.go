// Package mapreduce implements the traditional Phoenix++-style scale-up
// MapReduce runtime the paper starts from (§II, top of Fig. 2): the
// entire input is read into memory (the ingest phase), mapper threads
// operate on input splits in parallel, reducer threads coalesce
// intermediate pairs by key, and a final merge phase produces globally
// sorted output. The intermediate container is re-initialized when
// mappers start and the merge phase defaults to the iterative pairwise
// merge — both behaviours SupMR (internal/core) modifies.
//
// All phases run on a persistent internal/exec pool — one set of worker
// goroutines per job rather than per phase — which carries the job's
// cancellation context, converts task panics into job errors, and feeds
// per-task instrumentation into internal/metrics.
//
// The phase primitives (MapWave, ReducePhase, MergePhase) are exported
// because SupMR's run_mappers()/run_reducers() are wrappers over exactly
// these internals (Table I).
package mapreduce

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/exec"
	"supmr/internal/kv"
	"supmr/internal/metrics"
	"supmr/internal/sortalgo"
)

// Options configure a runtime execution.
type Options struct {
	// Workers is the number of map/reduce/merge worker threads (the
	// paper's machine exposes 32 hardware contexts). Defaults to
	// runtime.NumCPU(). Ignored when Pool is set — the pool's size wins.
	Workers int
	// Splits is the number of input splits per map wave. Defaults to
	// 4 * Workers.
	Splits int
	// Merge selects the merge-phase algorithm (pairwise = original
	// Phoenix, p-way = SupMR's modification).
	Merge sortalgo.MergeAlgo
	// Boundary adjusts split points so no record straddles splits.
	Boundary chunk.Boundary
	// Timer records per-phase durations (optional).
	Timer *metrics.Timer
	// Recorder reconstructs CPU utilization traces (optional). Only
	// consulted when this package creates the pool itself; an explicit
	// Pool brings its own recorder wiring.
	Recorder *metrics.UtilRecorder
	// Pool is the job's execution engine. When nil, Run and the phase
	// primitives create a transient pool (sized by Workers, observing
	// Recorder) for the call. The facade sets it so one executor spans
	// the whole job, with the job context and clock attached — either a
	// dedicated exec.Pool or a multi-job engine's per-submission handle.
	Pool exec.Executor
	// ResetContainer controls whether the container is re-initialized
	// when mappers start — the traditional behaviour (§III-C). The
	// traditional runtime has a single map wave, so this is safe; it
	// exists so the persistent-container ablation can flip it.
	ResetContainer bool
	// RadixDisabled turns off the fixed-width-key sort fast path (radix
	// run sort + columnar merge) — the -radixsort=off ablation. The zero
	// value keeps the fast path enabled for apps that opt in via
	// kv.FixedKeyApp.
	RadixDisabled bool
}

// fixedKey resolves the app's fixed-key codec for these options: nil
// when the app does not opt in or the ablation disabled the fast path.
func fixedKey[K comparable, V any](app kv.App[K, V], opts Options) *kv.FixedKeyCodec[K] {
	if opts.RadixDisabled {
		return nil
	}
	return kv.FixedKeyOf[K, V](app)
}

func (o Options) withDefaults() Options {
	if o.Pool != nil {
		o.Workers = o.Pool.Workers()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Splits <= 0 {
		o.Splits = 4 * o.Workers
	}
	if o.Boundary == nil {
		o.Boundary = chunk.NewlineBoundary{}
	}
	return o
}

// pool returns the executor for a phase call: the job pool when
// configured, otherwise a transient pool the caller must release via the
// returned func. Options must already have defaults applied.
func (o Options) pool() (exec.Executor, func()) {
	if o.Pool != nil {
		return o.Pool, func() {}
	}
	p := exec.NewPool(nil, exec.Config{Workers: o.Workers, Recorder: o.Recorder})
	return p, p.Close
}

// Stats summarizes an execution.
type Stats struct {
	BytesIngested int64
	MapWaves      int
	Splits        int
	IntermediateN int // container entries after map
	Runs          int // sorted runs entering merge
	MergeRounds   int // pairwise rounds the merge algorithm performed
	RadixRuns     int // runs sorted by the radix fast path (0 = all comparison)
	OutputPairs   int
	SpilledRuns   int           // key-sorted runs the spill layer wrote to storage
	SpilledBytes  int64         // payload bytes the spill layer wrote to storage
	MapBusy       time.Duration // aggregate worker-busy time in map tasks
	ReduceBusy    time.Duration // aggregate worker-busy time in reduce tasks
	// PrefetchHits counts ingest rounds whose next chunk was already
	// waiting in the prefetch ring when the map wave finished.
	PrefetchHits int
	// IngestStall is the total time map workers sat idle waiting for
	// the next chunk to arrive — the per-round slice of Fig. 1's
	// ingest/compute utilization gap.
	IngestStall time.Duration
	// IngestLaneBytes is the payload bytes each IO lane carried during
	// ingest, indexed by lane; nil when the job ran a single lane.
	IngestLaneBytes []int64
	// MemoHits counts ingest chunks whose map/combine output replayed
	// from the content-addressed memo cache, skipping the map wave.
	MemoHits int
	// MemoMisses counts ingest chunks that were mapped and published to
	// the memo cache (memoized runs only).
	MemoMisses int
	// MemoBytesSaved is the total payload bytes of memo-hit chunks —
	// input that was read and hashed but never mapped.
	MemoBytesSaved int64
	// ShuffleBytes is the framed intermediate bytes that crossed the
	// simulated inter-node links in a multi-node run. Local-partition
	// data never leaves its node and is not counted.
	ShuffleBytes int64
	// ShuffleBytesSaved is the encoded intermediate bytes the in-node
	// combiner eliminated by pre-aggregating every local worker's
	// output before partitioning for transmission.
	ShuffleBytesSaved int64
	// ShuffleFrames counts framed run transfers delivered between
	// nodes (retries of torn frames resend and recount).
	ShuffleFrames int
	// EgressBytes is the merged-output bytes materialized by the
	// parallel egress phase (0 when egress was not requested).
	EgressBytes int64
	// EgressExtents counts the fixed-size extents the egress writer cut
	// the output into.
	EgressExtents int
	// EgressLaneBytes is the payload bytes each IO lane carried during
	// egress, indexed by lane; nil when egress ran a single lane.
	EgressLaneBytes []int64
	// EgressBusy and EgressStall aggregate the egress extent tasks'
	// lane-busy and queue-wait time — the per-lane utilization split of
	// the output tail the serial writer used to spend entirely stalled.
	EgressBusy  time.Duration
	EgressStall time.Duration
	// Tasks is the executor's per-phase task instrumentation: task
	// counts, queue-wait and busy durations keyed by phase label.
	Tasks map[string]metrics.TaskStats
	// Faults counts injected faults and retry outcomes when fault
	// injection or retries were configured (see internal/faults).
	Faults metrics.FaultStats
}

// Result is the job output: globally sorted pairs plus measurements.
type Result[K comparable, V any] struct {
	Pairs []kv.Pair[K, V]
	Times metrics.PhaseTimes
	Stats Stats
}

// MapWave runs one wave of mappers over data: the chunk is cut into
// boundary-adjusted input splits and the pool's compute workers emit
// into the container through per-task locals. This is the body the
// SupMR run_mappers() wrapper invokes once per ingest chunk.
func MapWave[K comparable, V any](app kv.App[K, V], data []byte, cont container.Container[K, V], opts Options) (int, error) {
	n, _, err := MapWaveTimed(app, data, cont, opts)
	return n, err
}

// MapWaveTimed is MapWave plus the wave's aggregate worker-busy time.
func MapWaveTimed[K comparable, V any](app kv.App[K, V], data []byte, cont container.Container[K, V], opts Options) (int, time.Duration, error) {
	opts = opts.withDefaults()
	if opts.ResetContainer {
		cont.Reset()
	}
	pool, release := opts.pool()
	defer release()
	splits := chunk.SplitBuffer(data, opts.Splits, opts.Boundary)
	// Bytes fast path: when the app can map straight from []byte keys and
	// the container's local can accept them, skip the per-key string
	// materialization entirely (the local interns keys into its arena).
	ba, baOK := any(app).(kv.BytesApp[V])
	busy, err := pool.ForEach("map", metrics.StateUser, len(splits), func(i int) error {
		local := cont.NewLocal()
		if baOK {
			if be, ok := any(local).(kv.BytesEmitter[V]); ok {
				ba.MapBytes(splits[i], be)
				local.Flush()
				return nil
			}
		}
		app.Map(splits[i], local)
		local.Flush()
		return nil
	})
	return len(splits), busy, err
}

// ReducePhase runs reducers over every container partition, returning
// one unsorted run per non-empty partition. This is the body the SupMR
// run_reducers() wrapper invokes once at the end of the job.
func ReducePhase[K comparable, V any](app kv.App[K, V], cont container.Container[K, V], opts Options) ([][]kv.Pair[K, V], error) {
	runs, _, err := ReducePhaseTimed(app, cont, opts)
	return runs, err
}

// ReducePhaseTimed is ReducePhase plus aggregate worker-busy time.
func ReducePhaseTimed[K comparable, V any](app kv.App[K, V], cont container.Container[K, V], opts Options) ([][]kv.Pair[K, V], time.Duration, error) {
	opts = opts.withDefaults()
	pool, release := opts.pool()
	defer release()
	parts := cont.Partitions()
	runs := make([][]kv.Pair[K, V], parts)
	sizer, _ := any(cont).(container.PartitionSizer)
	busy, err := pool.ForEach("reduce", metrics.StateUser, parts, func(p int) error {
		var out []kv.Pair[K, V]
		if sizer != nil {
			if n := sizer.PartitionLen(p); n > 0 {
				out = make([]kv.Pair[K, V], 0, n)
			}
		}
		runs[p] = cont.Reduce(p, app.Reduce, out)
		return nil
	})
	if err != nil {
		return nil, busy, err
	}
	out := runs[:0]
	for _, r := range runs {
		if len(r) > 0 {
			out = append(out, r)
		}
	}
	return out, busy, nil
}

// MergePhase sorts each run in parallel and merges them with the
// selected algorithm, returning the globally sorted output, the number
// of pairwise rounds an iterative merge would perform, and how many runs
// took the radix fast path. When opts.Timer is set, the run-sort and
// merge halves are timed separately (PhaseRunSort vs PhaseMerge) so
// reports can attribute the sort-path speedup.
func MergePhase[K comparable, V any](app kv.App[K, V], runs [][]kv.Pair[K, V], opts Options) ([]kv.Pair[K, V], int, int, error) {
	opts = opts.withDefaults()
	pool, release := opts.pool()
	defer release()
	codec := fixedKey(app, opts)
	if opts.Timer != nil {
		opts.Timer.StartPhase(metrics.PhaseRunSort)
	}
	radixRuns, err := sortalgo.SortRunsWith(runs, app.Less, codec, pool)
	if opts.Timer != nil {
		opts.Timer.EndPhase(metrics.PhaseRunSort)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	rounds := sortalgo.Rounds(len(runs))
	if opts.Merge == sortalgo.MergePWay {
		rounds = 1
		if len(runs) <= 1 {
			rounds = 0
		}
	}
	if opts.Timer != nil {
		opts.Timer.StartPhase(metrics.PhaseMerge)
	}
	merged, err := sortalgo.MergeWith(opts.Merge, runs, app.Less, codec, pool)
	if opts.Timer != nil {
		opts.Timer.EndPhase(metrics.PhaseMerge)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	return merged, rounds, radixRuns, nil
}

// Ingest reads the entire input stream into memory on the pool's
// dedicated IO worker, which is marked IO-waiting while the device
// serves data — the sequential ingest phase of Fig. 1's first 180
// seconds. A nil pool reads inline without instrumentation.
// Cancellation of the pool's context is observed between chunks.
func Ingest(input chunk.Stream, p exec.Executor) ([]byte, error) {
	c, err := IngestChunk(input, p)
	if err != nil {
		return nil, err
	}
	return c.Data, nil
}

// IngestChunk is Ingest preserving chunk metadata: the whole input
// arrives as one chunk whose Files lists every source file once, in
// first-seen order, so chunk-aware applications (set_data) get the
// same attribution under the traditional runtime as under SupMR's
// whole-input stream.
func IngestChunk(input chunk.Stream, p exec.Executor) (*chunk.Chunk, error) {
	read := func(ctxErr func() error) (*chunk.Chunk, error) {
		var buf []byte
		if total := input.TotalBytes(); total > 0 {
			buf = make([]byte, 0, total)
		}
		var names []string
		seen := make(map[string]bool)
		for {
			if ctxErr != nil {
				if err := ctxErr(); err != nil {
					return nil, err
				}
			}
			ch, err := input.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("mapreduce: ingest failed: %w", err)
			}
			buf = append(buf, ch.Data...)
			for _, n := range ch.Files {
				if !seen[n] {
					seen[n] = true
					names = append(names, n)
				}
			}
			ch.Release()
		}
		return &chunk.Chunk{Data: buf, Files: names}, nil
	}
	if p == nil {
		return read(nil)
	}
	var c *chunk.Chunk
	h := p.GoIO("ingest", metrics.StateIOWait, func() error {
		var err error
		c, err = read(p.Err)
		return err
	})
	if err := h.Wait(); err != nil {
		return nil, err
	}
	return c, nil
}

// Run executes a complete traditional MapReduce job: ingest everything,
// one map wave, reduce, merge. This is the "none" configuration of
// Table II. All phases share one persistent pool; if opts.Pool is nil a
// job pool is created here and torn down on return.
func Run[K comparable, V any](app kv.App[K, V], input chunk.Stream, cont container.Container[K, V], opts Options) (*Result[K, V], error) {
	opts = opts.withDefaults()
	// The traditional runtime initializes the intermediate container when
	// mappers start (§III-C); with its single map wave this is equivalent
	// to starting fresh.
	opts.ResetContainer = true
	pool, release := opts.pool()
	defer release()
	opts.Pool = pool
	timer := opts.Timer
	if timer == nil {
		timer = metrics.NewTimer(pool.Now)
	}
	opts.Timer = timer // MergePhase brackets its own sub-phases

	timer.StartPhase(metrics.PhaseRead)
	ch, err := IngestChunk(input, pool)
	timer.EndPhase(metrics.PhaseRead)
	if err != nil {
		return nil, err
	}
	data := ch.Data
	// The set_data() callback (core.ChunkAware, matched structurally to
	// avoid importing core): the traditional runtime's single chunk is
	// the whole input.
	if ca, ok := any(app).(interface{ SetData(*chunk.Chunk) }); ok {
		ca.SetData(ch)
	}

	timer.StartPhase(metrics.PhaseMap)
	nSplits, mapBusy, err := MapWaveTimed(app, data, cont, opts)
	timer.EndPhase(metrics.PhaseMap)
	if err != nil {
		return nil, err
	}
	interN := cont.Len()

	timer.StartPhase(metrics.PhaseReduce)
	runs, reduceBusy, err := ReducePhaseTimed(app, cont, opts)
	timer.EndPhase(metrics.PhaseReduce)
	if err != nil {
		return nil, err
	}

	merged, rounds, radixRuns, err := MergePhase(app, runs, opts)
	if err != nil {
		return nil, err
	}

	res := &Result[K, V]{
		Pairs: merged,
		Times: timer.Finish(),
		Stats: Stats{
			BytesIngested: int64(len(data)),
			MapWaves:      1,
			Splits:        nSplits,
			IntermediateN: interN,
			Runs:          len(runs),
			MergeRounds:   rounds,
			RadixRuns:     radixRuns,
			OutputPairs:   len(merged),
			MapBusy:       mapBusy,
			ReduceBusy:    reduceBusy,
			Tasks:         pool.TaskStats(),
		},
	}
	return res, nil
}
