// Package mapreduce implements the traditional Phoenix++-style scale-up
// MapReduce runtime the paper starts from (§II, top of Fig. 2): the
// entire input is read into memory (the ingest phase), mapper threads
// operate on input splits in parallel, reducer threads coalesce
// intermediate pairs by key, and a final merge phase produces globally
// sorted output. The intermediate container is re-initialized when
// mappers start and the merge phase defaults to the iterative pairwise
// merge — both behaviours SupMR (internal/core) modifies.
//
// The phase primitives (MapWave, ReducePhase, MergePhase) are exported
// because SupMR's run_mappers()/run_reducers() are wrappers over exactly
// these internals (Table I).
package mapreduce

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/kv"
	"supmr/internal/metrics"
	"supmr/internal/sortalgo"
)

// Options configure a runtime execution.
type Options struct {
	// Workers is the number of map/reduce/merge worker threads (the
	// paper's machine exposes 32 hardware contexts). Defaults to
	// runtime.NumCPU().
	Workers int
	// Splits is the number of input splits per map wave. Defaults to
	// 4 * Workers.
	Splits int
	// Merge selects the merge-phase algorithm (pairwise = original
	// Phoenix, p-way = SupMR's modification).
	Merge sortalgo.MergeAlgo
	// Boundary adjusts split points so no record straddles splits.
	Boundary chunk.Boundary
	// Timer records per-phase durations (optional).
	Timer *metrics.Timer
	// Recorder reconstructs CPU utilization traces (optional).
	Recorder *metrics.UtilRecorder
	// ResetContainer controls whether the container is re-initialized
	// when mappers start — the traditional behaviour (§III-C). The
	// traditional runtime has a single map wave, so this is safe; it
	// exists so the persistent-container ablation can flip it.
	ResetContainer bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Splits <= 0 {
		o.Splits = 4 * o.Workers
	}
	if o.Boundary == nil {
		o.Boundary = chunk.NewlineBoundary{}
	}
	return o
}

// Stats summarizes an execution.
type Stats struct {
	BytesIngested int64
	MapWaves      int
	Splits        int
	IntermediateN int // container entries after map
	Runs          int // sorted runs entering merge
	MergeRounds   int // pairwise rounds the merge algorithm performed
	OutputPairs   int
	MapBusy       time.Duration // aggregate worker-busy time in map tasks
	ReduceBusy    time.Duration // aggregate worker-busy time in reduce tasks
}

// Result is the job output: globally sorted pairs plus measurements.
type Result[K comparable, V any] struct {
	Pairs []kv.Pair[K, V]
	Times metrics.PhaseTimes
	Stats Stats
}

// tracker adapts a UtilRecorder to sortalgo.Tracker, classifying busy
// merge workers as user-space compute.
type tracker struct {
	rec *metrics.UtilRecorder
}

func (t tracker) Register() int { return t.rec.Register() }
func (t tracker) Busy(id int)   { t.rec.SetState(id, metrics.StateUser) }
func (t tracker) Idle(id int)   { t.rec.SetState(id, metrics.StateIdle) }

func trackerFor(rec *metrics.UtilRecorder) sortalgo.Tracker {
	if rec == nil {
		return nil
	}
	return tracker{rec}
}

// ParallelFor runs fn(i) for i in [0, n) on up to workers goroutines,
// marking each worker busy in rec (as state) while it runs an iteration.
// It returns the aggregate worker-busy time (the sum of per-task
// wall-clock durations) so callers can account per-phase CPU work.
func ParallelFor(n, workers int, rec *metrics.UtilRecorder, state metrics.WorkerState, fn func(i int)) time.Duration {
	if n <= 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next int
	var busy int64 // nanoseconds, accumulated under mu
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := -1
			if rec != nil {
				id = rec.Register()
			}
			var local time.Duration
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					break
				}
				if rec != nil {
					rec.SetState(id, state)
				}
				start := time.Now()
				fn(i)
				local += time.Since(start)
				if rec != nil {
					rec.SetState(id, metrics.StateIdle)
				}
			}
			mu.Lock()
			busy += int64(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return time.Duration(busy)
}

// MapWave runs one wave of mappers over data: the chunk is cut into
// boundary-adjusted input splits and Workers mappers emit into the
// container through per-task locals. This is the body the SupMR
// run_mappers() wrapper invokes once per ingest chunk.
func MapWave[K comparable, V any](app kv.App[K, V], data []byte, cont container.Container[K, V], opts Options) int {
	n, _ := MapWaveTimed(app, data, cont, opts)
	return n
}

// MapWaveTimed is MapWave plus the wave's aggregate worker-busy time.
func MapWaveTimed[K comparable, V any](app kv.App[K, V], data []byte, cont container.Container[K, V], opts Options) (int, time.Duration) {
	opts = opts.withDefaults()
	if opts.ResetContainer {
		cont.Reset()
	}
	splits := chunk.SplitBuffer(data, opts.Splits, opts.Boundary)
	busy := ParallelFor(len(splits), opts.Workers, opts.Recorder, metrics.StateUser, func(i int) {
		local := cont.NewLocal()
		app.Map(splits[i], local)
		local.Flush()
	})
	return len(splits), busy
}

// ReducePhase runs reducers over every container partition, returning
// one unsorted run per non-empty partition. This is the body the SupMR
// run_reducers() wrapper invokes once at the end of the job.
func ReducePhase[K comparable, V any](app kv.App[K, V], cont container.Container[K, V], opts Options) [][]kv.Pair[K, V] {
	runs, _ := ReducePhaseTimed(app, cont, opts)
	return runs
}

// ReducePhaseTimed is ReducePhase plus aggregate worker-busy time.
func ReducePhaseTimed[K comparable, V any](app kv.App[K, V], cont container.Container[K, V], opts Options) ([][]kv.Pair[K, V], time.Duration) {
	opts = opts.withDefaults()
	parts := cont.Partitions()
	runs := make([][]kv.Pair[K, V], parts)
	busy := ParallelFor(parts, opts.Workers, opts.Recorder, metrics.StateUser, func(p int) {
		runs[p] = cont.Reduce(p, app.Reduce, nil)
	})
	out := runs[:0]
	for _, r := range runs {
		if len(r) > 0 {
			out = append(out, r)
		}
	}
	return out, busy
}

// MergePhase sorts each run in parallel and merges them with the
// selected algorithm, returning the globally sorted output and the
// number of pairwise rounds an iterative merge would perform.
func MergePhase[K comparable, V any](app kv.App[K, V], runs [][]kv.Pair[K, V], opts Options) ([]kv.Pair[K, V], int) {
	opts = opts.withDefaults()
	tr := trackerFor(opts.Recorder)
	sortalgo.SortRuns(runs, app.Less, opts.Workers, tr)
	rounds := sortalgo.Rounds(len(runs))
	if opts.Merge == sortalgo.MergePWay {
		rounds = 1
		if len(runs) <= 1 {
			rounds = 0
		}
	}
	merged := sortalgo.Merge(opts.Merge, runs, app.Less, opts.Workers, tr)
	return merged, rounds
}

// Ingest reads the entire input stream into memory, marking the single
// ingest worker as IO-waiting while the device serves data — the
// sequential ingest phase of Fig. 1's first 180 seconds.
func Ingest(input chunk.Stream, rec *metrics.UtilRecorder) ([]byte, error) {
	var id int
	if rec != nil {
		id = rec.Register()
		rec.SetState(id, metrics.StateIOWait)
		defer rec.SetState(id, metrics.StateIdle)
	}
	var buf []byte
	if total := input.TotalBytes(); total > 0 {
		buf = make([]byte, 0, total)
	}
	for {
		ch, err := input.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("mapreduce: ingest failed: %w", err)
		}
		buf = append(buf, ch.Data...)
	}
	return buf, nil
}

// Run executes a complete traditional MapReduce job: ingest everything,
// one map wave, reduce, merge. This is the "none" configuration of
// Table II.
func Run[K comparable, V any](app kv.App[K, V], input chunk.Stream, cont container.Container[K, V], opts Options) (*Result[K, V], error) {
	opts = opts.withDefaults()
	// The traditional runtime initializes the intermediate container when
	// mappers start (§III-C); with its single map wave this is equivalent
	// to starting fresh.
	opts.ResetContainer = true
	timer := opts.Timer
	if timer == nil {
		timer = metrics.NewTimer(nowFunc())
	}

	timer.StartPhase(metrics.PhaseRead)
	data, err := Ingest(input, opts.Recorder)
	timer.EndPhase(metrics.PhaseRead)
	if err != nil {
		return nil, err
	}

	timer.StartPhase(metrics.PhaseMap)
	nSplits, mapBusy := MapWaveTimed(app, data, cont, opts)
	timer.EndPhase(metrics.PhaseMap)
	interN := cont.Len()

	timer.StartPhase(metrics.PhaseReduce)
	runs, reduceBusy := ReducePhaseTimed(app, cont, opts)
	timer.EndPhase(metrics.PhaseReduce)

	timer.StartPhase(metrics.PhaseMerge)
	merged, rounds := MergePhase(app, runs, opts)
	timer.EndPhase(metrics.PhaseMerge)

	res := &Result[K, V]{
		Pairs: merged,
		Times: timer.Finish(),
		Stats: Stats{
			BytesIngested: int64(len(data)),
			MapWaves:      1,
			Splits:        nSplits,
			IntermediateN: interN,
			Runs:          len(runs),
			MergeRounds:   rounds,
			OutputPairs:   len(merged),
			MapBusy:       mapBusy,
			ReduceBusy:    reduceBusy,
		},
	}
	return res, nil
}

// nowFunc returns a monotonic clock reading function based on wall time.
func nowFunc() func() time.Duration {
	epoch := time.Now()
	return func() time.Duration { return time.Since(epoch) }
}
