package mapreduce

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/exec"
	"supmr/internal/kv"
	"supmr/internal/metrics"
	"supmr/internal/storage"
	"supmr/internal/workload"
)

// wcApp is a local word count app (the apps package imports this
// package, so tests define their own).
type wcApp struct{}

func (wcApp) Map(split []byte, emit kv.Emitter[string, int64]) {
	workload.Tokenize(split, func(w []byte) { emit.Emit(string(w), 1) })
}

func (wcApp) Reduce(_ string, vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}

func (wcApp) Combine(a, b int64) int64 { return a + b }
func (wcApp) Less(a, b string) bool    { return a < b }

func (w wcApp) NewContainer(shards int) container.Container[string, int64] {
	return container.NewHash[string, int64](shards, container.StringHasher, w.Combine)
}

func memStream(t *testing.T, data []byte) chunk.Stream {
	t.Helper()
	f := storage.BytesFile("in", data, storage.NewNullDevice(storage.NewFakeClock()))
	inter, err := chunk.NewInterFile(f, int64(len(data))+1, chunk.NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	return chunk.NewWholeInput(inter)
}

func genText(t *testing.T, n int64) []byte {
	t.Helper()
	buf := make([]byte, n)
	workload.TextGen{Seed: 21}.Fill()(0, buf)
	return buf
}

func TestRunWordCount(t *testing.T) {
	text := genText(t, 32<<10)
	wc := wcApp{}
	res, err := Run[string, int64](wc, memStream(t, text), wc.NewContainer(16), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[string]int64)
	for _, w := range strings.Fields(string(text)) {
		ref[w]++
	}
	if len(res.Pairs) != len(ref) {
		t.Fatalf("got %d words, want %d", len(res.Pairs), len(ref))
	}
	for _, p := range res.Pairs {
		if ref[p.Key] != p.Val {
			t.Errorf("count[%q] = %d, want %d", p.Key, p.Val, ref[p.Key])
		}
	}
	if !kv.IsSortedPairs(res.Pairs, wc.Less) {
		t.Error("output not sorted")
	}
	if res.Stats.MapWaves != 1 || res.Stats.BytesIngested != int64(len(text)) {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestRunRecordsPhaseTimes(t *testing.T) {
	text := genText(t, 16<<10)
	wc := wcApp{}
	res, err := Run[string, int64](wc, memStream(t, text), wc.NewContainer(8), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Times.Total <= 0 {
		t.Error("total time not recorded")
	}
	for _, p := range []metrics.Phase{metrics.PhaseMap, metrics.PhaseReduce, metrics.PhaseMerge} {
		if res.Times.Get(p) <= 0 {
			t.Errorf("phase %v not recorded", p)
		}
	}
	if res.Times.Get(metrics.PhaseReadMap) != 0 {
		t.Error("traditional runtime should not record a fused read+map phase")
	}
}

func TestMapWaveSplitCount(t *testing.T) {
	text := genText(t, 32<<10)
	wc := wcApp{}
	cont := wc.NewContainer(8)
	n, err := MapWave[string, int64](wc, text, cont, Options{Workers: 2, Splits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 || n > 8 {
		t.Errorf("map wave produced %d splits, want 2..8", n)
	}
	if cont.Len() == 0 {
		t.Error("container empty after map wave")
	}
}

func TestMapWaveResetContainer(t *testing.T) {
	text := []byte("a a a\n")
	wc := wcApp{}
	cont := wc.NewContainer(4)
	if _, err := MapWave[string, int64](wc, text, cont, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := MapWave[string, int64](wc, text, cont, Options{Workers: 1, ResetContainer: true}); err != nil {
		t.Fatal(err)
	}
	// After a reset wave, only one wave's worth of counts remain.
	runs, err := ReducePhase[string, int64](wc, cont, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range runs {
		for _, p := range r {
			total += p.Val
		}
	}
	if total != 3 {
		t.Errorf("counts after reset wave = %d, want 3", total)
	}
}

func TestReducePhaseDropsEmptyPartitions(t *testing.T) {
	wc := wcApp{}
	cont := wc.NewContainer(64) // 64 shards, but only 2 keys
	l := cont.NewLocal()
	l.Emit("a", 1)
	l.Emit("b", 1)
	l.Flush()
	runs, err := ReducePhase[string, int64](wc, cont, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runs {
		if len(r) == 0 {
			t.Errorf("run %d empty — empty partitions should be dropped", i)
		}
	}
}

func TestMergePhaseRounds(t *testing.T) {
	wc := wcApp{}
	runs := [][]kv.Pair[string, int64]{
		{{Key: "c", Val: 1}, {Key: "a", Val: 1}},
		{{Key: "b", Val: 1}},
		{{Key: "e", Val: 1}, {Key: "d", Val: 1}},
		{{Key: "f", Val: 1}},
	}
	merged, rounds, _, err := MergePhase[string, int64](wc, runs, Options{Workers: 2, Merge: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Errorf("pairwise rounds = %d, want 2 for 4 runs", rounds)
	}
	if len(merged) != 6 || !kv.IsSortedPairs(merged, wc.Less) {
		t.Errorf("merged = %v", merged)
	}
}

func TestIngestMarksIOWait(t *testing.T) {
	clock := storage.NewFakeClock()
	rec := metrics.NewUtilRecorder(2, clock.Now)
	data := genText(t, 8<<10)
	d, err := storage.NewDisk(storage.DiskConfig{Name: "d", Bandwidth: 8 << 10}, clock)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := storage.NewFile("in", int64(len(data)), 0, func(off int64, p []byte) { copy(p, data[off:]) }, d)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := chunk.NewInterFile(f2, int64(len(data))+1, chunk.NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.NewPool(nil, exec.Config{Workers: 1, Recorder: rec})
	defer pool.Close()
	got, err := Ingest(chunk.NewWholeInput(inter), pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("ingested %d bytes, want %d", len(got), len(data))
	}
	tr := rec.Build(100*time.Millisecond, clock.Now())
	var iow float64
	for _, s := range tr.Samples {
		iow += s.IOWait
	}
	if iow <= 0 {
		t.Error("ingest did not register IO wait")
	}
}

// failStream errors after one chunk.
type failStream struct{ served bool }

func (f *failStream) TotalBytes() int64 { return 10 }
func (f *failStream) Next() (*chunk.Chunk, error) {
	if f.served {
		return nil, errors.New("device exploded")
	}
	f.served = true
	return &chunk.Chunk{Data: []byte("x y z\n")}, nil
}

func TestRunPropagatesIngestError(t *testing.T) {
	wc := wcApp{}
	_, err := Run[string, int64](wc, &failStream{}, wc.NewContainer(4), Options{Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "device exploded") {
		t.Errorf("err = %v, want ingest failure", err)
	}
}

// panicApp panics while mapping a split containing the trigger word.
type panicApp struct{ wcApp }

func (panicApp) Map(split []byte, emit kv.Emitter[string, int64]) {
	if strings.Contains(string(split), "boom") {
		panic("mapper exploded")
	}
	wcApp{}.Map(split, emit)
}

func TestRunSurvivesMapPanic(t *testing.T) {
	// A panicking map task must become a job error naming the split, not
	// kill the process (tentpole: panic isolation in the traditional
	// runtime).
	text := append(genText(t, 8<<10), []byte("boom\n")...)
	wc := panicApp{}
	_, err := Run[string, int64](wc, memStream(t, text), wcApp{}.NewContainer(8), Options{Workers: 2})
	if err == nil {
		t.Fatal("panicking map task did not fail the job")
	}
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *exec.PanicError", err)
	}
	if pe.Phase != "map" || pe.Task < 0 {
		t.Errorf("panic error = %+v, want map phase with task index", pe)
	}
	if !strings.Contains(err.Error(), "mapper exploded") {
		t.Errorf("err %q does not name the panic value", err)
	}
}

func TestRunObservesCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool := exec.NewPool(ctx, exec.Config{Workers: 2})
	defer pool.Close()
	text := genText(t, 16<<10)
	wc := wcApp{}
	_, err := Run[string, int64](wc, memStream(t, text), wc.NewContainer(8), Options{Pool: pool})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunRecordsTaskStats(t *testing.T) {
	text := genText(t, 16<<10)
	wc := wcApp{}
	res, err := Run[string, int64](wc, memStream(t, text), wc.NewContainer(8), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"ingest", "map", "reduce", "sort"} {
		if res.Stats.Tasks[phase].Tasks == 0 {
			t.Errorf("no %s tasks recorded: %+v", phase, res.Stats.Tasks)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers <= 0 || o.Splits != 4*o.Workers || o.Boundary == nil {
		t.Errorf("defaults = %+v", o)
	}
}

var _ container.Container[string, int64] = (*container.Hash[string, int64])(nil)
