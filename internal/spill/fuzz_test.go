package spill

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"supmr/internal/storage"
)

// rawRun wraps arbitrary bytes as a completed run so the decoder can be
// driven directly against hostile input.
func rawRun(data []byte) (*Store, *Run) {
	clock := storage.NewFakeClock()
	s, _ := NewStore(StoreConfig{Device: storage.NewNullDevice(clock), BlockSize: 32})
	return s, &Run{size: int64(len(data)), data: &memRun{buf: data}}
}

// seedRecords frames records with the run encoding, for round-trip
// seeds.
func seedRecords(recs [][2][]byte) []byte {
	var b []byte
	for _, r := range recs {
		b = binary.AppendUvarint(b, uint64(len(r[0])))
		b = append(b, r[0]...)
		b = binary.AppendUvarint(b, uint64(len(r[1])))
		b = append(b, r[1]...)
	}
	return b
}

// FuzzRunDecode feeds arbitrary bytes to the run decoder: it must
// terminate with io.EOF or a decode error, never panic, and never
// return more payload than the run holds.
func FuzzRunDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0}) // one empty-key empty-val record
	f.Add(seedRecords([][2][]byte{
		{[]byte("ASCII12345"), []byte("teragen-style payload")},
		{[]byte("the"), []byte{8, 0, 0, 0, 0, 0, 0, 0}},
	}))
	// Truncated length prefix and oversized length claims.
	f.Add([]byte{200})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1})
	f.Add([]byte{5, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, run := rawRun(data)
		r := s.OpenRun(run)
		var payload int64
		for {
			key, val, err := r.ReadRecord()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // decode error on hostile input is the contract
			}
			payload += int64(len(key) + len(val))
			if payload > int64(len(data)) {
				t.Fatalf("decoded %d payload bytes from a %d-byte run", payload, len(data))
			}
		}
	})
}

// FuzzRunRoundTrip writes one two-record run through the real writer
// (tiny blocks, so records straddle block boundaries) and reads it
// back. Seeds are teragen-style 10-byte keys and Zipf-ish word-count
// records.
func FuzzRunRoundTrip(f *testing.F) {
	f.Add([]byte("~sHd0jDv6X"), []byte("00000000001111111111222222222233333333334444444444"), []byte("the"), int64(48211))
	f.Add([]byte("AsfAGHM5om"), []byte("teragen row payload"), []byte("zipf"), int64(1))
	f.Add([]byte{}, []byte{}, []byte{0xff, 0xfe}, int64(-7))
	f.Fuzz(func(t *testing.T, k1, v1, k2 []byte, count int64) {
		clock := storage.NewFakeClock()
		s, err := NewStore(StoreConfig{Device: storage.NewNullDevice(clock), BlockSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ci, err := CodecFor[int64]()
		if err != nil {
			t.Fatal(err)
		}
		v2 := ci.Append(nil, count)

		w, err := s.NewRun()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(k1, v1); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(k2, v2); err != nil {
			t.Fatal(err)
		}
		run, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}

		r := s.OpenRun(run)
		gk, gv, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("record 1: %v", err)
		}
		if !bytes.Equal(gk, k1) || !bytes.Equal(gv, v1) {
			t.Fatalf("record 1 = (%q, %q), want (%q, %q)", gk, gv, k1, v1)
		}
		gk, gv, err = r.ReadRecord()
		if err != nil {
			t.Fatalf("record 2: %v", err)
		}
		if !bytes.Equal(gk, k2) {
			t.Fatalf("record 2 key = %q, want %q", gk, k2)
		}
		if got, err := ci.Decode(gv); err != nil || got != count {
			t.Fatalf("record 2 val = %d, %v, want %d", got, err, count)
		}
		if _, _, err := r.ReadRecord(); err != io.EOF {
			t.Fatalf("trailing read err = %v, want io.EOF", err)
		}
	})
}
