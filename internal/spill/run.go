package spill

import (
	"encoding/binary"
	"fmt"
	"io"

	"supmr/internal/metrics"
	"supmr/internal/storage"
)

// Run file framing: a run is a flat sequence of records, each
//
//	uvarint keyLen | keyLen bytes | uvarint valLen | valLen bytes
//
// with no per-run header — the store's run table carries the size and
// record count. Records are appended in key order, so a reader streams
// the run back as a sorted source for the external merge.

// NewRun starts writing one run. The caller appends records in key
// order and must Close the writer to publish the run.
func (s *Store) NewRun() (*RunWriter, error) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()
	data, err := s.backing.NewRun(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.open = append(s.open, data)
	s.mu.Unlock()
	return &RunWriter{s: s, id: id, data: data}, nil
}

// RunWriter streams one run into the store: records accumulate in a
// block-sized buffer that is flushed to the backing as it fills, and
// Close charges the device write path for the whole run. It is used by
// a single goroutine (the pool's IO worker).
type RunWriter struct {
	s       *Store
	id      int
	data    RunData
	buf     []byte
	flushed int64 // bytes already handed to the backing
	records int64
	err     error
}

// WriteRecord appends one key-value record.
func (w *RunWriter) WriteRecord(key, val []byte) error {
	if w.err != nil {
		return w.err
	}
	w.buf = binary.AppendUvarint(w.buf, uint64(len(key)))
	w.buf = append(w.buf, key...)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(val)))
	w.buf = append(w.buf, val...)
	w.records++
	for int64(len(w.buf)) >= w.s.blockSize {
		if err := w.flush(w.s.blockSize); err != nil {
			return err
		}
	}
	return nil
}

// flush hands the first n buffered bytes to the backing.
func (w *RunWriter) flush(n int64) error {
	if _, err := w.data.WriteAt(w.buf[:n], w.flushed); err != nil {
		w.err = fmt.Errorf("spill: write run %d: %w", w.id, err)
		return w.err
	}
	w.flushed += n
	w.buf = w.buf[:copy(w.buf, w.buf[n:])]
	return nil
}

// Close flushes the tail, charges the device write path for the run
// (block-granular reservations, slept on the device clock — this is the
// IO-wait the spill lane shows), and publishes the run in the store.
func (w *RunWriter) Close() (*Run, error) {
	if w.err != nil {
		return nil, w.err
	}
	if len(w.buf) > 0 {
		if err := w.flush(int64(len(w.buf))); err != nil {
			return nil, err
		}
	}
	size := w.flushed
	s := w.s
	s.mu.Lock()
	base := s.nextOff
	s.nextOff += size
	s.mu.Unlock()
	// Reserve the run's extent block by block so device Write counters
	// reflect the real request count, then sleep once on the final
	// deadline — FIFO devices make the two equivalent in time.
	deadline := s.dev.Clock().Now()
	for off := int64(0); off < size; off += s.blockSize {
		n := s.blockSize
		if rem := size - off; n > rem {
			n = rem
		}
		if d := storage.ReserveWrite(s.dev, base+off, n); d > deadline {
			deadline = d
		}
	}
	s.dev.Clock().SleepUntil(deadline)
	run := &Run{id: w.id, devOff: base, size: size, records: w.records, data: w.data}
	s.mu.Lock()
	s.stats.Runs++
	s.stats.Bytes += size
	s.stats.Records += w.records
	s.series = append(s.series, metrics.SeriesPoint{T: s.dev.Clock().Now(), V: s.stats.Bytes})
	s.mu.Unlock()
	return run, nil
}

// OpenRun returns a streaming reader over a completed run. Reads are
// charged to the device block by block as the reader advances.
func (s *Store) OpenRun(r *Run) *RunReader {
	return &RunReader{s: s, run: r}
}

// RunReader decodes a run record by record, refilling a block-sized
// buffer from the backing (and charging the device read path) as it
// drains. Returned key/val slices are valid only until the next
// ReadRecord call.
type RunReader struct {
	s       *Store
	run     *Run
	buf     []byte
	pos     int   // consume position within buf
	keep    int   // earliest buf index still referenced (-1: none), pinned across refills
	fetched int64 // run bytes pulled from the backing so far
}

// remaining returns the undecoded bytes left in the run.
func (r *RunReader) remaining() int64 {
	return (r.run.size - r.fetched) + int64(len(r.buf)-r.pos)
}

// ensure makes at least n bytes available at r.pos, refilling from the
// backing. It reports io.ErrUnexpectedEOF if the run ends first.
// Compaction preserves everything from r.keep on (when set), so a field
// view taken earlier in the current record survives the refill.
func (r *RunReader) ensure(n int) error {
	for len(r.buf)-r.pos < n {
		if r.fetched >= r.run.size {
			return io.ErrUnexpectedEOF
		}
		// Compact (down to the pinned index) and refill one block.
		base := r.pos
		if r.keep >= 0 && r.keep < base {
			base = r.keep
		}
		r.buf = r.buf[:copy(r.buf, r.buf[base:])]
		r.pos -= base
		if r.keep >= 0 {
			r.keep -= base
		}
		chunk := r.s.blockSize
		if rem := r.run.size - r.fetched; chunk > rem {
			chunk = rem
		}
		dl, err := storage.TryReserve(r.s.dev, r.run.devOff+r.fetched, chunk)
		if err != nil {
			return fmt.Errorf("spill: read run %d: %w", r.run.id, err)
		}
		r.s.dev.Clock().SleepUntil(dl)
		at := len(r.buf)
		r.buf = append(r.buf, make([]byte, chunk)...)
		if err := readFull(r.run.data, r.buf[at:], r.fetched); err != nil {
			return fmt.Errorf("spill: read run %d: %w", r.run.id, err)
		}
		r.fetched += chunk
	}
	return nil
}

// readFull fills buf from data at off, looping over short reads (a
// degraded backing may deliver a prefix with a nil error).
func readFull(data RunData, buf []byte, off int64) error {
	for len(buf) > 0 {
		n, err := data.ReadAt(buf, off)
		if n > 0 {
			buf = buf[n:]
			off += int64(n)
			continue
		}
		if err != nil {
			return err
		}
		return io.ErrUnexpectedEOF
	}
	return nil
}

// uvarint decodes one length prefix at the cursor.
func (r *RunReader) uvarint() (uint64, error) {
	for width := 1; ; width++ {
		if err := r.ensure(width); err != nil {
			return 0, err
		}
		if r.buf[r.pos+width-1] < 0x80 {
			u, n := binary.Uvarint(r.buf[r.pos : r.pos+width])
			if n <= 0 {
				return 0, fmt.Errorf("spill: run %d: corrupt length prefix", r.run.id)
			}
			r.pos += n
			return u, nil
		}
		if width == binary.MaxVarintLen64 {
			return 0, fmt.Errorf("spill: run %d: length prefix overflows uvarint", r.run.id)
		}
	}
}

// fieldLen decodes one length prefix and buffers that many bytes at the
// cursor. A valid length never exceeds what is left of the run;
// checking first keeps corrupt (e.g. fuzzed) prefixes from forcing a
// giant buffer allocation.
func (r *RunReader) fieldLen() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if int64(n) > r.remaining() {
		return 0, fmt.Errorf("spill: run %d: field length %d exceeds remaining %d bytes", r.run.id, n, r.remaining())
	}
	if err := r.ensure(int(n)); err != nil {
		return 0, err
	}
	return int(n), nil
}

// ReadRecord returns the next record, or io.EOF at the clean end of the
// run. key and val are views into an internal buffer, valid only until
// the next call.
func (r *RunReader) ReadRecord() (key, val []byte, err error) {
	if r.pos >= len(r.buf) && r.fetched >= r.run.size {
		return nil, nil, io.EOF
	}
	r.keep = -1
	kl, err := r.fieldLen()
	if err != nil {
		return nil, nil, err
	}
	// Pin the key bytes: decoding the value may refill (and compact) the
	// buffer, and the key view must survive it.
	r.keep = r.pos
	r.pos += kl
	vl, err := r.fieldLen()
	if err != nil {
		r.keep = -1
		return nil, nil, err
	}
	val = r.buf[r.pos : r.pos+vl]
	r.pos += vl
	key = r.buf[r.keep : r.keep+kl]
	r.keep = -1
	return key, val, nil
}
