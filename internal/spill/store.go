package spill

import (
	"fmt"
	"os"
	"sync"

	"supmr/internal/metrics"
	"supmr/internal/storage"
)

// DefaultBlockSize is the IO granularity for run files: writes and
// reads are charged to the device in blocks of this size, so spill
// traffic looks like the large sequential requests a real spill path
// issues, not per-record dribble.
const DefaultBlockSize = 256 << 10

// Backing is where run payload bytes physically live. The simulated
// Device accounts the time; the backing holds the data. MemBacking
// keeps runs in ordinary heap slices (the default — the substrate is a
// simulation, so "disk" contents can live anywhere); FileBacking puts
// them in real temporary files for runs larger than the harness wants
// resident.
type Backing interface {
	// NewRun allocates storage for one run. id is unique per store.
	NewRun(id int) (RunData, error)
}

// RunData is the payload of a single run: random-access bytes written
// once by a RunWriter and read back by RunReaders. Close releases the
// storage.
type RunData interface {
	WriteAt(p []byte, off int64) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Close() error
}

// MemBacking stores run payloads in heap slices.
type MemBacking struct{}

// NewRun returns a growable in-memory run.
func (MemBacking) NewRun(int) (RunData, error) { return &memRun{}, nil }

type memRun struct {
	mu  sync.Mutex
	buf []byte
}

func (m *memRun) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(m.buf)) {
		if need > int64(cap(m.buf)) {
			grown := make([]byte, need, need+need/4)
			copy(grown, m.buf)
			m.buf = grown
		}
		m.buf = m.buf[:need]
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

func (m *memRun) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.buf)) {
		return 0, fmt.Errorf("spill: read at %d past run end %d", off, len(m.buf))
	}
	n := copy(p, m.buf[off:])
	return n, nil
}

func (m *memRun) Close() error {
	m.mu.Lock()
	m.buf = nil
	m.mu.Unlock()
	return nil
}

// FileBacking stores run payloads in temporary files under Dir (the
// OS default temp dir when empty). Files are removed on Close.
type FileBacking struct {
	Dir string
}

// NewRun creates one temporary run file.
func (b FileBacking) NewRun(id int) (RunData, error) {
	f, err := os.CreateTemp(b.Dir, fmt.Sprintf("supmr-spill-%d-*.run", id))
	if err != nil {
		return nil, fmt.Errorf("spill: create run file: %w", err)
	}
	return &fileRun{f: f}, nil
}

type fileRun struct{ f *os.File }

func (r *fileRun) WriteAt(p []byte, off int64) (int, error) { return r.f.WriteAt(p, off) }
func (r *fileRun) ReadAt(p []byte, off int64) (int, error)  { return r.f.ReadAt(p, off) }
func (r *fileRun) Close() error {
	name := r.f.Name()
	err := r.f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}

// StoreConfig configures a Store.
type StoreConfig struct {
	// Device charges spill IO time. Required. Use storage.NullDevice to
	// model a free spill path.
	Device storage.Device
	// BlockSize is the IO granularity in bytes (DefaultBlockSize when 0).
	BlockSize int64
	// Backing holds run payloads (MemBacking when nil).
	Backing Backing
}

// StoreStats summarizes a store's spill traffic.
type StoreStats struct {
	Runs    int   // runs written
	Bytes   int64 // total run payload bytes written
	Records int64 // total records written
}

// Store is a job's spill area: an append-only collection of key-sorted
// run files occupying one contiguous device address range per run. All
// IO is charged to the configured Device — writes through the write
// path (storage.ReserveWrite, invalidating any cache in front), reads
// through the normal read path — so spill traffic contends with ingest
// for the same bandwidth, exactly the bottleneck the budget models.
type Store struct {
	dev       storage.Device
	blockSize int64
	backing   Backing

	mu      sync.Mutex
	nextOff int64 // next free device byte (runs are laid out back to back)
	nextID  int
	open    []RunData
	stats   StoreStats
	series  []metrics.SeriesPoint // cumulative Bytes over the device clock
}

// NewStore builds a spill store over cfg.Device.
func NewStore(cfg StoreConfig) (*Store, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("spill: store requires a device")
	}
	if cfg.BlockSize < 0 {
		return nil, fmt.Errorf("spill: block size must be non-negative, got %d", cfg.BlockSize)
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.Backing == nil {
		cfg.Backing = MemBacking{}
	}
	return &Store{dev: cfg.Device, blockSize: cfg.BlockSize, backing: cfg.Backing}, nil
}

// Device returns the device charged for spill IO.
func (s *Store) Device() storage.Device { return s.dev }

// Stats snapshots the spill traffic counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Series returns the cumulative bytes-spilled samples, one per
// completed run, timestamped on the device clock.
func (s *Store) Series() []metrics.SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]metrics.SeriesPoint, len(s.series))
	copy(out, s.series)
	return out
}

// Close releases every run's backing storage.
func (s *Store) Close() error {
	s.mu.Lock()
	open := s.open
	s.open = nil
	s.mu.Unlock()
	var first error
	for _, r := range open {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Run describes one completed key-sorted run.
type Run struct {
	id      int
	devOff  int64 // base offset in the device address space
	size    int64 // payload bytes
	records int64
	data    RunData
}

// Size returns the run's payload size in bytes.
func (r *Run) Size() int64 { return r.size }

// Records returns the number of records in the run.
func (r *Run) Records() int64 { return r.records }
