// Package spill is the memory-budgeted out-of-core layer for the
// persistent intermediate container (§III-C). SupMR keeps combiner
// state resident across all ingest rounds; when the intermediate set
// does not fit the job's memory budget, this package drains the
// container into key-sorted runs written through the simulated storage
// substrate — bandwidth-accounted against the same devices serving
// ingest, scheduled on the execution pool's IO lane so writes overlap
// the next map round — and later streams those runs back into the merge
// phase, so the job still finishes in a single p-way merge round.
package spill

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec serializes one key or value type for run files. Append encodes
// v onto dst and returns the extended slice; Decode parses exactly the
// bytes one Append produced (run framing carries the length). Decode
// must not retain p — the reader reuses its buffer between records.
type Codec[T any] struct {
	Append func(dst []byte, v T) []byte
	Decode func(p []byte) (T, error)
}

// CodecFor resolves the codec for T from its dynamic type. The
// supported set covers every key/value type the bundled applications
// use: string, []byte, int, int64, uint64, float64. Other types return
// an error — the budget path refuses to start rather than failing at
// the first spill.
func CodecFor[T any]() (Codec[T], error) {
	var zero T
	var c Codec[T]
	switch any(zero).(type) {
	case string:
		c.Append = func(dst []byte, v T) []byte { return append(dst, any(v).(string)...) }
		c.Decode = func(p []byte) (T, error) { return any(string(p)).(T), nil }
	case []byte:
		c.Append = func(dst []byte, v T) []byte { return append(dst, any(v).([]byte)...) }
		c.Decode = func(p []byte) (T, error) {
			return any(append([]byte(nil), p...)).(T), nil
		}
	case int:
		c.Append = func(dst []byte, v T) []byte {
			return binary.LittleEndian.AppendUint64(dst, uint64(any(v).(int)))
		}
		c.Decode = func(p []byte) (T, error) {
			u, err := fixed64(p)
			return any(int(u)).(T), err
		}
	case int64:
		c.Append = func(dst []byte, v T) []byte {
			return binary.LittleEndian.AppendUint64(dst, uint64(any(v).(int64)))
		}
		c.Decode = func(p []byte) (T, error) {
			u, err := fixed64(p)
			return any(int64(u)).(T), err
		}
	case uint64:
		c.Append = func(dst []byte, v T) []byte {
			return binary.LittleEndian.AppendUint64(dst, any(v).(uint64))
		}
		c.Decode = func(p []byte) (T, error) {
			u, err := fixed64(p)
			return any(u).(T), err
		}
	case float64:
		c.Append = func(dst []byte, v T) []byte {
			return binary.LittleEndian.AppendUint64(dst, math.Float64bits(any(v).(float64)))
		}
		c.Decode = func(p []byte) (T, error) {
			u, err := fixed64(p)
			return any(math.Float64frombits(u)).(T), err
		}
	default:
		return c, fmt.Errorf("spill: no codec for type %T; the memory budget supports string, []byte, int, int64, uint64 and float64 keys/values", zero)
	}
	return c, nil
}

func fixed64(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("spill: fixed-width field is %d bytes, want 8", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}
