package spill

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"supmr/internal/container"
	"supmr/internal/exec"
	"supmr/internal/faults"
	"supmr/internal/kv"
	"supmr/internal/metrics"
	"supmr/internal/sortalgo"
)

// Spiller drives the budget for one job: it decides when the container
// has outgrown its memory budget, drains it into a globally key-sorted
// slice (partial reduce — the same key may accumulate again in later
// rounds), writes that slice to the store asynchronously on the pool's
// IO lane, and finally exposes every written run as a streaming
// sortalgo.Source for the external merge.
type Spiller[K comparable, V any] struct {
	store  *Store
	budget int64
	less   kv.Less[K]
	reduce func(K, []V) V
	kc     Codec[K]
	vc     Codec[V]
	fixed  *kv.FixedKeyCodec[K] // optional radix fast path for drain sorts

	pending *exec.Handle
	retry   *faults.Retrier // nil: no retry
	mu      sync.Mutex
	runs    []*Run
}

// NewSpiller builds the spill driver for app with the given budget in
// bytes. It fails up front when no codec exists for the app's key or
// value type, or when the budget is not positive.
func NewSpiller[K comparable, V any](store *Store, budget int64, app kv.App[K, V]) (*Spiller[K, V], error) {
	if store == nil {
		return nil, fmt.Errorf("spill: spiller requires a store")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("spill: memory budget must be positive, got %d", budget)
	}
	kc, err := CodecFor[K]()
	if err != nil {
		return nil, fmt.Errorf("spill: key: %w", err)
	}
	vc, err := CodecFor[V]()
	if err != nil {
		return nil, fmt.Errorf("spill: value: %w", err)
	}
	return &Spiller[K, V]{
		store:  store,
		budget: budget,
		less:   app.Less,
		reduce: app.Reduce,
		kc:     kc,
		vc:     vc,
	}, nil
}

// SetRetry configures transient-fault retries for run writes. Backoff
// sleeps on the store device's clock so they land on the job timeline.
// ctr (may be nil) accumulates retry outcomes for the report.
func (sp *Spiller[K, V]) SetRetry(p faults.RetryPolicy, ctr *faults.Counters) {
	if !p.Enabled() {
		return
	}
	sp.retry = faults.NewRetrier(p, sp.store.Device().Clock(), ctr)
}

// SetFixedKey hands the spiller the app's fixed-key codec so drain
// sorts take the radix fast path; nil keeps the comparison sort (the
// -radixsort=off ablation).
func (sp *Spiller[K, V]) SetFixedKey(c *kv.FixedKeyCodec[K]) { sp.fixed = c }

// Budget returns the configured budget in bytes.
func (sp *Spiller[K, V]) Budget() int64 { return sp.budget }

// Over reports whether the container's resident bytes exceed the
// budget — the check the pipeline runs between ingest rounds.
func (sp *Spiller[K, V]) Over(c container.Container[K, V]) bool {
	return c.SizeBytes() > sp.budget
}

// Drain empties the container into one globally key-sorted slice and
// resets it, returning the drained memory to the next map rounds. Each
// partition is reduced (partial reduce: reduce must be associative and
// tolerate re-reducing its own output, which every combiner-style app
// does) and sorted on the pool's compute workers under the "spill"
// phase label, then the disjoint sorted partitions merge into one run.
// The int reports how many partition sorts took the radix fast path.
func (sp *Spiller[K, V]) Drain(c container.Container[K, V], pool exec.Executor) ([]kv.Pair[K, V], int, error) {
	return DrainContainer(c, sp.less, sp.reduce, sp.fixed, pool, "spill")
}

// DrainContainer is the container-to-sorted-run primitive behind both
// the budget spill path and the memo cache's per-chunk drains: reduce
// and sort every partition on the pool's compute workers under label,
// merge the disjoint sorted partitions, and Reset the container. The
// partial reduce requires reduce to be associative and tolerant of
// re-reducing its own output — the standing combiner contract. A
// non-nil fixed-key codec routes partition sorts through the radix fast
// path; post-reduce partitions have unique keys, so the output is
// byte-identical either way. The int return counts the partition
// sorts that took the radix path (the Stats.RadixRuns contribution).
func DrainContainer[K comparable, V any](c container.Container[K, V], less kv.Less[K],
	reduce func(K, []V) V, fixed *kv.FixedKeyCodec[K], pool exec.Executor, label string) ([]kv.Pair[K, V], int, error) {
	parts := c.Partitions()
	runs := make([][]kv.Pair[K, V], parts)
	var radixed atomic.Int64
	_, err := pool.ForEach(label, metrics.StateUser, parts, func(p int) error {
		r := c.Reduce(p, reduce, nil)
		if fixed != nil && sortalgo.RadixSortPairs(r, *fixed) {
			radixed.Add(1)
		} else {
			kv.SortPairs(r, less)
		}
		runs[p] = r
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	c.Reset()
	nonEmpty := runs[:0]
	for _, r := range runs {
		if len(r) > 0 {
			nonEmpty = append(nonEmpty, r)
		}
	}
	if len(nonEmpty) == 1 {
		return nonEmpty[0], int(radixed.Load()), nil
	}
	// Partitions hold disjoint key sets, so this is a pure merge; run it
	// as one pool task to keep it on (and attributed to) the pool.
	total := 0
	for _, r := range nonEmpty {
		total += len(r)
	}
	var merged []kv.Pair[K, V]
	_, err = pool.ForEach(label, metrics.StateUser, 1, func(int) error {
		srcs := make([]sortalgo.Source[K, V], len(nonEmpty))
		for i, r := range nonEmpty {
			srcs[i] = sortalgo.NewSliceSource(r)
		}
		var mErr error
		merged, mErr = sortalgo.MergeSources(srcs, less, reduce, make([]kv.Pair[K, V], 0, total))
		return mErr
	})
	if err != nil {
		return nil, 0, err
	}
	return merged, int(radixed.Load()), nil
}

// SpillAsync writes the drained pairs as one run on the pool's IO lane
// and returns immediately; the write queues behind any in-flight
// prefetch and executes while the next map round computes, showing up
// as IO-wait on the IO worker. At most one spill write may be in
// flight: callers Join before the next SpillAsync and before merging.
func (sp *Spiller[K, V]) SpillAsync(pairs []kv.Pair[K, V], pool exec.Executor) {
	if sp.pending != nil {
		panic("spill: SpillAsync with a spill write already in flight; Join first")
	}
	sp.pending = pool.GoIO("spill", metrics.StateIOWait, func() error {
		return sp.writeRun(pairs)
	})
}

// Join waits for the in-flight spill write, if any.
func (sp *Spiller[K, V]) Join() error {
	if sp.pending == nil {
		return nil
	}
	h := sp.pending
	sp.pending = nil
	return h.Wait()
}

// writeRun encodes pairs into one run file, retrying transient faults
// by rewriting the whole run: a torn write may have landed a prefix,
// so each attempt starts a fresh RunWriter. A failed attempt's run is
// simply abandoned — the store allocates its device extent only when
// the writer Closes successfully, so abandoned attempts leave no holes
// in the device address space and no entry in the run table (its
// backing is released with the store).
func (sp *Spiller[K, V]) writeRun(pairs []kv.Pair[K, V]) error {
	return sp.retry.Do(func() error { return sp.writeRunOnce(pairs) })
}

func (sp *Spiller[K, V]) writeRunOnce(pairs []kv.Pair[K, V]) error {
	w, err := sp.store.NewRun()
	if err != nil {
		return err
	}
	var kbuf, vbuf []byte
	for _, p := range pairs {
		kbuf = sp.kc.Append(kbuf[:0], p.Key)
		vbuf = sp.vc.Append(vbuf[:0], p.Val)
		if err := w.WriteRecord(kbuf, vbuf); err != nil {
			return err
		}
	}
	run, err := w.Close()
	if err != nil {
		return err
	}
	sp.mu.Lock()
	sp.runs = append(sp.runs, run)
	sp.mu.Unlock()
	return nil
}

// RunCount returns the number of completed runs.
func (sp *Spiller[K, V]) RunCount() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.runs)
}

// BytesSpilled returns the total payload bytes across completed runs.
func (sp *Spiller[K, V]) BytesSpilled() int64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	var n int64
	for _, r := range sp.runs {
		n += r.size
	}
	return n
}

// Sources returns one streaming source per completed run, in spill
// order, for the external merge. Callers must Join first.
func (sp *Spiller[K, V]) Sources() []sortalgo.Source[K, V] {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	srcs := make([]sortalgo.Source[K, V], len(sp.runs))
	for i, r := range sp.runs {
		srcs[i] = &runSource[K, V]{r: sp.store.OpenRun(r), kc: sp.kc, vc: sp.vc}
	}
	return srcs
}

// runSource adapts a RunReader into a sortalgo.Source, decoding records
// with the spiller's codecs.
type runSource[K comparable, V any] struct {
	r  *RunReader
	kc Codec[K]
	vc Codec[V]
}

func (s *runSource[K, V]) Next() (kv.Pair[K, V], bool, error) {
	var zero kv.Pair[K, V]
	key, val, err := s.r.ReadRecord()
	if err == io.EOF {
		return zero, false, nil
	}
	if err != nil {
		return zero, false, err
	}
	k, err := s.kc.Decode(key)
	if err != nil {
		return zero, false, err
	}
	v, err := s.vc.Decode(val)
	if err != nil {
		return zero, false, err
	}
	return kv.Pair[K, V]{Key: k, Val: v}, true, nil
}
