package spill

import (
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"supmr/internal/container"
	"supmr/internal/exec"
	"supmr/internal/kv"
	"supmr/internal/storage"
)

func memStore(t *testing.T, blockSize int64) (*Store, *storage.Disk, *storage.FakeClock) {
	t.Helper()
	clock := storage.NewFakeClock()
	d, err := storage.NewDisk(storage.DiskConfig{Name: "spill", Bandwidth: 1 << 30}, clock)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(StoreConfig{Device: d, BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, d, clock
}

func TestCodecRoundTrips(t *testing.T) {
	cs, err := CodecFor[string]()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"", "a", "hello world", strings.Repeat("x", 5000)} {
		got, err := cs.Decode(cs.Append(nil, s))
		if err != nil || got != s {
			t.Fatalf("string round trip %q -> %q, %v", s, got, err)
		}
	}
	ci, err := CodecFor[int64]()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		got, err := ci.Decode(ci.Append(nil, v))
		if err != nil || got != v {
			t.Fatalf("int64 round trip %d -> %d, %v", v, got, err)
		}
	}
	cu, err := CodecFor[uint64]()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := cu.Decode(cu.Append(nil, ^uint64(0))); err != nil || got != ^uint64(0) {
		t.Fatalf("uint64 round trip -> %d, %v", got, err)
	}
	cf, err := CodecFor[float64]()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := cf.Decode(cf.Append(nil, 3.25)); err != nil || got != 3.25 {
		t.Fatalf("float64 round trip -> %v, %v", got, err)
	}
	if _, err := ci.Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short fixed-width field accepted")
	}
	type weird struct{ X int }
	if _, err := CodecFor[weird](); err == nil {
		t.Error("codec resolved for unsupported struct type")
	}
}

func TestRunWriteReadRoundTrip(t *testing.T) {
	s, d, _ := memStore(t, 64) // tiny blocks force records across block boundaries
	w, err := s.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%05d", i)
		val := strings.Repeat("v", i%90)
		if err := w.WriteRecord([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if run.Records() != n {
		t.Fatalf("run records = %d, want %d", run.Records(), n)
	}
	if got := d.Stats().BytesWritten; got != run.Size() {
		t.Errorf("device BytesWritten = %d, want run size %d", got, run.Size())
	}

	r := s.OpenRun(run)
	for i := 0; i < n; i++ {
		key, val, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if want := fmt.Sprintf("key-%05d", i); string(key) != want {
			t.Fatalf("record %d key = %q, want %q", i, key, want)
		}
		if want := i % 90; len(val) != want {
			t.Fatalf("record %d val len = %d, want %d", i, len(val), want)
		}
	}
	if _, _, err := r.ReadRecord(); err != io.EOF {
		t.Fatalf("after last record err = %v, want io.EOF", err)
	}
	if got := d.Stats().BytesRead; got != run.Size() {
		t.Errorf("device BytesRead = %d, want run size %d", got, run.Size())
	}

	st := s.Stats()
	if st.Runs != 1 || st.Bytes != run.Size() || st.Records != n {
		t.Errorf("store stats = %+v", st)
	}
	series := s.Series()
	if len(series) != 1 || series[0].V != run.Size() {
		t.Errorf("series = %v", series)
	}
}

func TestRunEmpty(t *testing.T) {
	s, _, _ := memStore(t, 0)
	w, err := s.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	run, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if run.Size() != 0 || run.Records() != 0 {
		t.Fatalf("empty run = %+v", run)
	}
	if _, _, err := s.OpenRun(run).ReadRecord(); err != io.EOF {
		t.Fatalf("empty run read err = %v, want io.EOF", err)
	}
}

func TestFileBackingRoundTripAndCleanup(t *testing.T) {
	clock := storage.NewFakeClock()
	dev := storage.NewNullDevice(clock)
	dir := t.TempDir()
	s, err := NewStore(StoreConfig{Device: dev, BlockSize: 32, Backing: FileBacking{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.WriteRecord([]byte(fmt.Sprintf("k%03d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp dir holds %d files, want 1", len(ents))
	}
	r := s.OpenRun(run)
	key, _, err := r.ReadRecord()
	if err != nil || string(key) != "k000" {
		t.Fatalf("first record = %q, %v", key, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if ents, _ = os.ReadDir(dir); len(ents) != 0 {
		t.Errorf("run files not removed on Close: %d left", len(ents))
	}
}

// wcApp is a word-count-shaped app: string keys, summed int64 counts.
type wcApp struct{}

func (wcApp) Map(split []byte, emit kv.Emitter[string, int64]) {
	for _, w := range strings.Fields(string(split)) {
		emit.Emit(w, 1)
	}
}
func (wcApp) Reduce(_ string, vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}
func (wcApp) Less(a, b string) bool    { return a < b }
func (wcApp) Combine(a, b int64) int64 { return a + b }

func fillHash(t *testing.T, c container.Container[string, int64], text string) {
	t.Helper()
	l := c.NewLocal()
	wcApp{}.Map([]byte(text), l)
	l.Flush()
}

func TestSpillerDrainSortsAndResets(t *testing.T) {
	s, _, _ := memStore(t, 0)
	sp, err := NewSpiller[string, int64](s, 100, wcApp{})
	if err != nil {
		t.Fatal(err)
	}
	c := container.NewHash[string, int64](4, container.StringHasher, wcApp{}.Combine)
	fillHash(t, c, "b a c a b a")
	if !sp.Over(c) && c.SizeBytes() > 100 {
		t.Error("Over() false with container above budget")
	}
	pool := exec.NewLocal(4)
	defer pool.Close()
	pairs, _, err := sp.Drain(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.SizeBytes() != 0 {
		t.Errorf("container not drained: len=%d size=%d", c.Len(), c.SizeBytes())
	}
	want := []kv.Pair[string, int64]{{Key: "a", Val: 3}, {Key: "b", Val: 2}, {Key: "c", Val: 1}}
	if fmt.Sprint(pairs) != fmt.Sprint(want) {
		t.Errorf("drained = %v, want %v", pairs, want)
	}
}

func TestSpillerAsyncWriteAndStreamBack(t *testing.T) {
	s, _, _ := memStore(t, 64)
	sp, err := NewSpiller[string, int64](s, 1, wcApp{})
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.NewLocal(2)
	defer pool.Close()

	c := container.NewHash[string, int64](4, container.StringHasher, wcApp{}.Combine)
	// Two spill cycles with overlapping keys: "a" and "b" appear in both
	// runs, so the external merge must re-reduce them across runs.
	fillHash(t, c, "a a b d")
	p1, _, err := sp.Drain(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	sp.SpillAsync(p1, pool)
	fillHash(t, c, "a b e")
	if err := sp.Join(); err != nil {
		t.Fatal(err)
	}
	p2, _, err := sp.Drain(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	sp.SpillAsync(p2, pool)
	if err := sp.Join(); err != nil {
		t.Fatal(err)
	}

	if sp.RunCount() != 2 {
		t.Fatalf("RunCount = %d, want 2", sp.RunCount())
	}
	if sp.BytesSpilled() != s.Stats().Bytes {
		t.Errorf("BytesSpilled %d != store bytes %d", sp.BytesSpilled(), s.Stats().Bytes)
	}

	counts := map[string]int64{}
	for _, src := range sp.Sources() {
		for {
			p, ok, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			counts[p.Key] += p.Val
		}
	}
	want := map[string]int64{"a": 3, "b": 2, "d": 1, "e": 1}
	if fmt.Sprint(counts) != fmt.Sprint(want) {
		t.Errorf("streamed counts = %v, want %v", counts, want)
	}
}

func TestSpillerRejectsBadConfig(t *testing.T) {
	s, _, _ := memStore(t, 0)
	if _, err := NewSpiller[string, int64](nil, 10, wcApp{}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewSpiller[string, int64](s, 0, wcApp{}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore(StoreConfig{}); err == nil {
		t.Error("store without device accepted")
	}
	clock := storage.NewFakeClock()
	if _, err := NewStore(StoreConfig{Device: storage.NewNullDevice(clock), BlockSize: -1}); err == nil {
		t.Error("negative block size accepted")
	}
}
