package sched

import (
	"context"
	"errors"
	"sync"
)

// ErrBacklogFull rejects a submission when the pending-job backlog is at
// capacity: the engine sheds load at the door instead of queueing
// unboundedly. Callers should surface it to the submitter for retry.
var ErrBacklogFull = errors.New("sched: job backlog full")

// Admission bounds how many jobs run concurrently and how many may wait
// behind them. It is job-level flow control in front of the Scheduler's
// operation-level fairness: admitted jobs interleave per fair share;
// un-admitted jobs hold no substrate resources at all.
type Admission struct {
	mu         sync.Mutex
	active     int
	maxActive  int
	maxPending int
	waiters    []*admWaiter // FIFO
}

type admWaiter struct {
	ch      chan struct{}
	granted bool
}

// NewAdmission builds an admission controller allowing maxActive
// concurrently running jobs (<=0: 4) and at most maxPending jobs
// waiting for a run slot (<0: unbounded; 0: reject whenever all run
// slots are busy).
func NewAdmission(maxActive, maxPending int) *Admission {
	if maxActive <= 0 {
		maxActive = 4
	}
	return &Admission{maxActive: maxActive, maxPending: maxPending}
}

// MaxActive returns the concurrent-job bound.
func (a *Admission) MaxActive() int { return a.maxActive }

// Enter admits a job, blocking while maxActive jobs are running. It
// fails fast with ErrBacklogFull when the pending backlog is at
// capacity, and returns ctx's cancellation cause if the job is
// cancelled while queued. Every successful Enter must be paired with
// Leave.
func (a *Admission) Enter(ctx context.Context) error {
	a.mu.Lock()
	if a.active < a.maxActive {
		a.active++
		a.mu.Unlock()
		return nil
	}
	if a.maxPending >= 0 && len(a.waiters) >= a.maxPending {
		a.mu.Unlock()
		return ErrBacklogFull
	}
	w := &admWaiter{ch: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	if ctx == nil {
		<-w.ch
		return nil
	}
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if !w.granted {
			for i, p := range a.waiters {
				if p == w {
					a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
					break
				}
			}
			a.mu.Unlock()
			return context.Cause(ctx)
		}
		a.mu.Unlock()
		// Admission raced the cancellation: give the slot back.
		a.Leave()
		return context.Cause(ctx)
	}
}

// Leave releases a run slot, admitting the longest-waiting pending job
// if any.
func (a *Admission) Leave() {
	a.mu.Lock()
	if len(a.waiters) > 0 {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		w.granted = true
		close(w.ch) // slot transfers: active count is unchanged
	} else {
		a.active--
	}
	a.mu.Unlock()
}

// Stats reports currently running and queued job counts.
func (a *Admission) Stats() (active, pending int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active, len(a.waiters)
}
