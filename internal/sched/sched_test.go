package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// step drives one job's serial operation stream against the scheduler:
// each op acquires a slot, reports its start on grants, then waits for
// the test to finish it via gate before releasing with cost.
func driveJob(t *Ticket, s *Scheduler, n int, cost time.Duration, grants chan<- string, gate <-chan struct{}, done chan<- error) {
	for i := 0; i < n; i++ {
		if err := s.Acquire(context.Background(), t); err != nil {
			done <- err
			return
		}
		grants <- t.Name()
		<-gate
		s.Release(t, cost)
	}
	done <- nil
}

// waitPending polls until n operations are queued for a slot.
func waitPending(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Waiting() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d pending ops (have %d)", n, s.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOperationInterleaving is the acceptance-criteria schedule: a long
// job saturating the (single-slot) scheduler must not FIFO-block a
// short job submitted later — the short job's operations start
// interleaved between the long job's remaining operations, finishing
// long before the long job drains.
func TestOperationInterleaving(t *testing.T) {
	s := New(Config{OpSlots: 1})
	long := s.Register("long", 1)
	short := s.Register("short", 1)

	grants := make(chan string)
	gate := make(chan struct{})
	done := make(chan error, 2)

	const longOps, shortOps = 10, 3
	go driveJob(long, s, longOps, time.Millisecond, grants, gate, done)

	// Let the long job start (and only then submit the short one: the
	// FIFO-blocking scenario).
	order := []string{<-grants}

	go driveJob(short, s, shortOps, time.Millisecond, grants, gate, done)
	waitPending(t, s, 1) // the short job's first op is queued behind the running wave

	started := map[string]int{"long": 1}
	for len(order) < longOps+shortOps {
		gate <- struct{}{} // finish the running op
		next := <-grants
		order = append(order, next)
		started[next]++
		// While the peer of the now-running op still has work, wait for
		// its next op to queue so the schedule reflects contention, not
		// test timing. (Once the short job drains, the long job's ops are
		// granted without ever pending.)
		peerOps, peerDone := longOps, started["long"]
		if next == "long" {
			peerOps, peerDone = shortOps, started["short"]
		}
		if peerDone < peerOps {
			waitPending(t, s, 1)
		}
	}
	gate <- struct{}{} // finish the final op
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("driver failed: %v", err)
		}
	}

	// The short job's last op must start before the long job's drain:
	// under whole-job FIFO it would start at index >= longOps.
	lastShort := -1
	for i, name := range order {
		if name == "short" {
			lastShort = i
		}
	}
	if lastShort < 0 {
		t.Fatalf("short job never ran: %v", order)
	}
	if lastShort >= longOps {
		t.Fatalf("short job FIFO-blocked behind the long job: order %v", order)
	}
	// With equal weights and equal costs the schedule alternates while
	// both jobs have pending work: the short job's ops are spread out,
	// not clumped at the end of the long job's stream.
	if order[1] != "short" {
		t.Fatalf("first op after contention began should be the short job's (least virtual time), got %v", order)
	}
}

// TestWeightedShares pins the weighted fair queue: with both jobs
// continuously backlogged, a weight-3 job receives ~3x the operations
// of a weight-1 job over an observation window. Each job runs two
// concurrent op streams on one ticket (as a real job does with a map
// wave and an async spill drain) so the backlog is sustained — with
// one serial stream per job, only the peer is ever pending at release
// time and the schedule degenerates to alternation regardless of
// weight.
func TestWeightedShares(t *testing.T) {
	s := New(Config{OpSlots: 1})
	heavy := s.Register("heavy", 3)
	light := s.Register("light", 1)

	grants := make(chan string)
	gate := make(chan struct{})
	done := make(chan error, 4)
	const perStream = 8
	for i := 0; i < 2; i++ {
		go driveJob(heavy, s, perStream, time.Millisecond, grants, gate, done)
		go driveJob(light, s, perStream, time.Millisecond, grants, gate, done)
	}

	const window = 12
	counts := map[string]int{}
	var order []string
	for i := 0; i < window; i++ {
		name := <-grants
		counts[name]++
		order = append(order, name)
		// Hold the running op until the other three streams have their
		// next op queued, so every dispatch in the window chooses among a
		// full backlog.
		if i < window-1 {
			waitPending(t, s, 3)
		}
		gate <- struct{}{}
	}
	// Drain: let the rest run unobserved.
	go func() {
		for range grants {
			gate <- struct{}{}
		}
	}()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("driver failed: %v", err)
		}
	}
	close(grants)

	if counts["heavy"] < 2*counts["light"] {
		t.Fatalf("weight-3 job got %d ops vs weight-1's %d over %v — want >= 2x", counts["heavy"], counts["light"], order)
	}
	if counts["light"] == 0 {
		t.Fatalf("weight-1 job starved: %v", order)
	}
}

func TestAcquireCancellation(t *testing.T) {
	s := New(Config{OpSlots: 1})
	a := s.Register("a", 1)
	b := s.Register("b", 1)
	if err := s.Acquire(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("job abandoned")
	ctx, cancel := context.WithCancelCause(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(ctx, b) }()
	waitPending(t, s, 1)
	cancel(cause)
	if err := <-errc; !errors.Is(err, cause) {
		t.Fatalf("cancelled Acquire returned %v, want %v", err, cause)
	}
	if s.Waiting() != 0 {
		t.Fatalf("cancelled waiter left in queue (%d pending)", s.Waiting())
	}
	s.Release(a, time.Millisecond)
	// The slot must still be grantable after the cancelled wait.
	if err := s.Acquire(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	s.Release(b, 0)
}

func TestAdmissionBacklogBound(t *testing.T) {
	a := NewAdmission(1, 1)
	if err := a.Enter(context.Background()); err != nil {
		t.Fatalf("first Enter: %v", err)
	}
	// Second submission queues (backlog slot 1 of 1).
	entered := make(chan error, 1)
	go func() { entered <- a.Enter(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, pending := a.Stats(); pending == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second Enter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third submission must be rejected, not queued.
	if err := a.Enter(context.Background()); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("backlog overflow returned %v, want ErrBacklogFull", err)
	}
	a.Leave()
	if err := <-entered; err != nil {
		t.Fatalf("queued Enter: %v", err)
	}
	a.Leave()
	if active, pending := a.Stats(); active != 0 || pending != 0 {
		t.Fatalf("after all Leaves: active=%d pending=%d", active, pending)
	}
}

func TestAdmissionEnterCancellation(t *testing.T) {
	a := NewAdmission(1, 4)
	if err := a.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.Enter(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, pending := a.Stats(); pending == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Enter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Enter returned %v", err)
	}
	a.Leave()
	if active, pending := a.Stats(); active != 0 || pending != 0 {
		t.Fatalf("after Leave: active=%d pending=%d", active, pending)
	}
}

func TestBudgetCarve(t *testing.T) {
	b := NewBudget(1000, 4) // guaranteed share: 250

	// A greedy first job cannot drain the reserve below later jobs'
	// guarantees.
	g1, rel1 := b.Carve(10_000)
	if g1 != 250 {
		t.Fatalf("greedy first grant = %d, want its share + spare = 250", g1)
	}
	g2, rel2 := b.Carve(100)
	if g2 != 100 {
		t.Fatalf("small want granted %d, want 100", g2)
	}
	g3, rel3 := b.Carve(10_000)
	if g3 < 250 {
		t.Fatalf("third grant = %d, below the guaranteed share", g3)
	}
	var total int64 = g1 + g2 + g3
	g4, rel4 := b.Carve(10_000)
	total += g4
	if total > 1000 {
		t.Fatalf("grants total %d, exceeding the global budget", total)
	}
	if g4 < 250 {
		t.Fatalf("fourth grant = %d, below the guaranteed share", g4)
	}
	rel1()
	rel1() // idempotent
	rel2()
	rel3()
	rel4()
	if got := b.Remaining(); got != 1000 {
		t.Fatalf("remaining after all releases = %d, want 1000", got)
	}

	// Unbudgeted jobs and nil budgets grant in full.
	if g, rel := b.Carve(0); g != 0 {
		t.Fatalf("want=0 granted %d", g)
	} else {
		rel()
	}
	var nb *Budget
	if g, rel := nb.Carve(123); g != 123 {
		t.Fatalf("nil budget granted %d, want full request", g)
	} else {
		rel()
	}
}

// TestBudgetConcurrent hammers Carve/release from many goroutines and
// checks the invariant that outstanding grants never exceed the total.
func TestBudgetConcurrent(t *testing.T) {
	const total = 1 << 20
	b := NewBudget(total, 8)
	var (
		mu  sync.Mutex
		out int64
		max int64
	)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(want int64) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				g, rel := b.Carve(want)
				mu.Lock()
				out += g
				if out > max {
					max = out
				}
				mu.Unlock()
				mu.Lock()
				out -= g
				mu.Unlock()
				rel()
			}
		}(int64(1000 + i*7919))
	}
	wg.Wait()
	if max > total {
		t.Fatalf("outstanding grants peaked at %d > total %d", max, total)
	}
	if b.Remaining() != total {
		t.Fatalf("remaining = %d after all releases, want %d", b.Remaining(), total)
	}
}
