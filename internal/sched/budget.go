package sched

import "sync"

// Budget carves one global memory budget into per-job grants, the
// isolation that keeps N spilling jobs from starving each other: every
// admission slot has a guaranteed share (total / slots) held in reserve
// until a job claims it, so a submission never finds the budget drained
// below its fair share by earlier arrivals. A job may claim more than
// its share only out of bytes no reserved slot is entitled to.
//
// Grants cap the job's intermediate-container residency; a job whose
// grant is below what it asked for simply spills more often — output is
// unchanged, only the memory/IO trade moves.
type Budget struct {
	mu        sync.Mutex
	total     int64
	remaining int64
	slots     int
	active    int
}

// NewBudget builds a budget of total bytes split across slots admission
// slots (<=0 slots: 1). A nil *Budget or total <= 0 disables global
// budgeting: Carve grants every request in full.
func NewBudget(total int64, slots int) *Budget {
	if slots <= 0 {
		slots = 1
	}
	return &Budget{total: total, remaining: total, slots: slots}
}

// Total returns the global budget (0 = unlimited).
func (b *Budget) Total() int64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Remaining returns the unclaimed bytes.
func (b *Budget) Remaining() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remaining
}

// Carve grants up to want bytes to one job and returns the grant with
// an idempotent release function to call when the job is done. want <= 0
// — an unbudgeted job — grants in full and reserves nothing. The grant
// is min(want, guaranteed share + unreserved spare); it is never 0 for
// a positive want as long as the guaranteed share is positive.
func (b *Budget) Carve(want int64) (int64, func()) {
	if want <= 0 || b == nil || b.total <= 0 {
		return want, func() {}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.active++
	guaranteed := b.total / int64(b.slots)
	freeSlots := b.slots - b.active
	if freeSlots < 0 {
		freeSlots = 0
	}
	avail := b.remaining - guaranteed*int64(freeSlots)
	if avail < 0 {
		avail = 0
	}
	grant := want
	if grant > avail {
		grant = avail
	}
	b.remaining -= grant
	released := false
	return grant, func() {
		b.mu.Lock()
		if !released {
			released = true
			b.remaining += grant
			b.active--
		}
		b.mu.Unlock()
	}
}
