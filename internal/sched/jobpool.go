package sched

import (
	"context"
	"time"

	"supmr/internal/exec"
	"supmr/internal/metrics"
)

// JobConfig configures one submission's handle on the shared substrate.
type JobConfig struct {
	// Name labels the job in the scheduler (diagnostics only).
	Name string
	// Weight is the fair-share weight (minimum 1).
	Weight int
	// Context, when set, bounds the job: its cancellation aborts this
	// submission without touching the substrate or its peers.
	Context context.Context
}

// JobPool is one job's exec.Executor over the shared pool: the
// refactor's replacement for the per-job worker pool. Compute
// operations (ForEach — a map wave, a spill drain, a reduce or merge
// pass) first acquire a slot from the fair-share Scheduler, run to
// completion on the shared pool's workers, then release the slot
// charged with their measured cost — so concurrent jobs interleave at
// operation boundaries instead of queueing whole-job FIFO. IO-lane work
// (GoIO: ingest, prefetch, spill writes) bypasses the scheduler and
// serializes only on the shared IO lanes, preserving each job's
// ingest/compute overlap while another job's wave computes.
//
// Cancellation, task statistics and lane-byte attribution are all
// job-scoped: Abort cancels this submission only, and TaskStats /
// LaneBytes report this submission's counters only — concurrent jobs
// never bleed into each other's reports.
type JobPool struct {
	pool   *exec.Pool
	s      *Scheduler
	ticket *Ticket
	ctx    context.Context
	cancel context.CancelCauseFunc
	unhook func() bool // stops the pool-context propagation
	sink   *exec.Sink
}

// NewJobPool registers one job on the scheduler and returns its
// executor handle over the shared pool. Close it when the job is done.
func NewJobPool(pool *exec.Pool, s *Scheduler, cfg JobConfig) *JobPool {
	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancelCause(parent)
	// The substrate dying (engine Close or pool abort) must abort every
	// submission: propagate the pool context's cause into the job's.
	unhook := context.AfterFunc(pool.Context(), func() {
		cancel(context.Cause(pool.Context()))
	})
	return &JobPool{
		pool:   pool,
		s:      s,
		ticket: s.Register(cfg.Name, cfg.Weight),
		ctx:    ctx,
		cancel: cancel,
		unhook: unhook,
		sink:   exec.NewSink(pool.IOLanes()),
	}
}

// Close releases the job's scheduler presence and context plumbing.
// Idempotent; call after the run completes (the sink snapshots remain
// readable).
func (j *JobPool) Close() {
	j.unhook()
	j.cancel(context.Canceled)
}

// Workers returns the shared pool's compute worker count.
func (j *JobPool) Workers() int { return j.pool.Workers() }

// IOLanes returns the shared pool's IO lane count.
func (j *JobPool) IOLanes() int { return j.pool.IOLanes() }

// LaneBytes snapshots this job's payload bytes per IO lane.
func (j *JobPool) LaneBytes() []int64 { return j.sink.LaneBytes() }

// TaskStats snapshots this job's per-phase task instrumentation.
func (j *JobPool) TaskStats() map[string]metrics.TaskStats { return j.sink.TaskStats() }

// Context returns the job's cancellable context.
func (j *JobPool) Context() context.Context { return j.ctx }

// Now reads the shared substrate's job clock.
func (j *JobPool) Now() time.Duration { return j.pool.Now() }

// Err reports the job's cancellation cause, nil while live.
func (j *JobPool) Err() error {
	if j.ctx.Err() != nil {
		return context.Cause(j.ctx)
	}
	return nil
}

// Abort cancels this job with the given cause. The substrate and the
// other jobs on it are untouched.
func (j *JobPool) Abort(cause error) { j.cancel(cause) }

// ForEach runs one compute operation under the fair-share scheduler:
// it acquires an operation slot (blocking while peers with less service
// run their waves), executes fn(0..n-1) on the shared pool's compute
// workers, and releases the slot charged with the operation's measured
// wall-clock cost.
func (j *JobPool) ForEach(phase string, state metrics.WorkerState, n int, fn func(i int) error) (time.Duration, error) {
	if err := j.Err(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, nil
	}
	if err := j.s.Acquire(j.ctx, j.ticket); err != nil {
		return 0, err
	}
	start := j.pool.Now()
	busy, err := j.pool.ForEachScoped(j.ctx, j.sink, phase, state, n, fn)
	j.s.Release(j.ticket, j.pool.Now()-start)
	return busy, err
}

// GoIO runs fn asynchronously on the shared IO lanes, unscheduled: IO
// work is what compute waves hide behind, so gating it would serialize
// exactly the overlap the pipeline exists for.
func (j *JobPool) GoIO(phase string, state metrics.WorkerState, fn func() error) *Handle {
	return j.pool.GoIOScoped(j.sink, phase, state, 0, fn)
}

// GoIOSized is GoIO with payload-byte attribution to this job's lane
// counters.
func (j *JobPool) GoIOSized(phase string, state metrics.WorkerState, bytes int64, fn func() error) *Handle {
	return j.pool.GoIOScoped(j.sink, phase, state, bytes, fn)
}

// Handle aliases the exec join handle.
type Handle = exec.Handle

// JobPool is the multi-job Executor; the single-job one is *exec.Pool.
var _ exec.Executor = (*JobPool)(nil)
