// Package sched turns the single-job runtime into a multi-job engine:
// it schedules the *operations* of N concurrent jobs — map waves, spill
// drains, reduce and merge tasks — onto one shared internal/exec pool,
// instead of running whole jobs FIFO.
//
// The design follows the OS4M observation (see PAPERS.md): whole-job
// FIFO lets one long job monopolize the machine while short jobs queue
// behind it, but every job is really a sequence of bounded operations,
// and interleaving at that granularity keeps global utilization flat
// under mixed workloads. Three mechanisms compose:
//
//   - Scheduler: weighted fair queueing over operations. Every job holds
//     a Ticket with a weight and a virtual time; an operation must
//     Acquire one of the scheduler's operation slots before it may run
//     on the shared pool, and the pending operation belonging to the
//     job with the lowest virtual time wins each free slot. Completed
//     operations charge their measured cost divided by the job's weight,
//     so a job that just burned a long map wave yields the next slot to
//     its peers. Preemption happens only at operation boundaries — a
//     running wave is never interrupted, the paper's pipeline invariants
//     hold within every operation.
//
//   - Admission: a bound on concurrently *running* jobs plus a bounded
//     backlog of submitted-but-not-started jobs. A full backlog rejects
//     immediately (ErrBacklogFull) instead of queueing unboundedly.
//
//   - Budget: a global memory budget carved into per-job grants, so the
//     sum of all jobs' resident intermediate state stays bounded and one
//     job spilling hard cannot starve another of its fair share.
//
// JobPool ties them together: it is the exec.Executor handle one
// submission holds on the shared substrate, routing compute operations
// through the Scheduler and keeping cancellation, task statistics and
// lane-byte counters private to the job.
package sched

import (
	"context"
	"sync"
	"time"
)

// Config configures a Scheduler.
type Config struct {
	// OpSlots is the number of operations allowed on the shared pool at
	// once (default 1). One slot serializes compute operations — each
	// wave gets the full worker pool, the OS4M shape — while IO-lane
	// work (ingest, prefetch, spill writes) continues to overlap
	// underneath. More slots trade per-wave parallelism for inter-job
	// overlap on machines with headroom.
	OpSlots int
}

// Scheduler is the fair-share operation scheduler. Jobs Register for a
// Ticket, Acquire a slot before each operation, and Release it with the
// operation's measured cost afterwards.
type Scheduler struct {
	mu      sync.Mutex
	slots   int
	free    int
	vclock  float64 // global virtual clock: vtime of the last dispatched job
	seq     int64
	pending []*waiter
}

// Ticket is one job's identity inside the scheduler.
type Ticket struct {
	s      *Scheduler
	name   string
	weight float64
	vtime  float64
}

// waiter is one operation waiting for a slot.
type waiter struct {
	t       *Ticket
	seq     int64
	ch      chan struct{}
	granted bool
}

// New builds a scheduler with cfg.OpSlots operation slots.
func New(cfg Config) *Scheduler {
	n := cfg.OpSlots
	if n < 1 {
		n = 1
	}
	return &Scheduler{slots: n, free: n}
}

// Register adds a job with the given fair-share weight (minimum 1: a
// weight-2 job receives twice the operation service of a weight-1 job).
// The ticket starts at the scheduler's current virtual clock, so a new
// job competes fairly from now on without banked credit for the time it
// did not exist.
func (s *Scheduler) Register(name string, weight int) *Ticket {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Ticket{s: s, name: name, weight: float64(weight), vtime: s.vclock}
}

// Name returns the job name the ticket was registered with.
func (t *Ticket) Name() string { return t.name }

// Acquire blocks until the ticket's job is granted an operation slot or
// ctx is cancelled (returning the cancellation cause). Grants go to the
// pending operation whose job has the lowest virtual time; ties break
// by arrival order.
func (s *Scheduler) Acquire(ctx context.Context, t *Ticket) error {
	s.mu.Lock()
	// A job returning from idle must not have banked credit: lift it to
	// the virtual clock (start-time fair queueing).
	if t.vtime < s.vclock {
		t.vtime = s.vclock
	}
	w := &waiter{t: t, seq: s.seq, ch: make(chan struct{})}
	s.seq++
	s.pending = append(s.pending, w)
	s.dispatchLocked()
	s.mu.Unlock()

	if ctx == nil {
		<-w.ch
		return nil
	}
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		if !w.granted {
			for i, p := range s.pending {
				if p == w {
					s.pending = append(s.pending[:i], s.pending[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
			return context.Cause(ctx)
		}
		s.mu.Unlock()
		// The grant raced the cancellation: hand the slot straight back.
		s.Release(t, 0)
		return context.Cause(ctx)
	}
}

// Release returns the slot after an operation, charging its measured
// cost (divided by the job's weight) to the job's virtual time and
// dispatching the next pending operation.
func (s *Scheduler) Release(t *Ticket, cost time.Duration) {
	s.mu.Lock()
	if cost > 0 {
		t.vtime += float64(cost) / t.weight
	}
	s.free++
	s.dispatchLocked()
	s.mu.Unlock()
}

// dispatchLocked grants free slots to pending operations in fair-share
// order. Callers hold s.mu.
func (s *Scheduler) dispatchLocked() {
	for s.free > 0 && len(s.pending) > 0 {
		best := 0
		for i := 1; i < len(s.pending); i++ {
			w, b := s.pending[i], s.pending[best]
			if w.t.vtime < b.t.vtime || (w.t.vtime == b.t.vtime && w.seq < b.seq) {
				best = i
			}
		}
		w := s.pending[best]
		s.pending = append(s.pending[:best], s.pending[best+1:]...)
		w.granted = true
		s.free--
		if w.t.vtime > s.vclock {
			s.vclock = w.t.vtime
		}
		close(w.ch)
	}
}

// Waiting reports the number of operations currently queued for a slot.
func (s *Scheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Running reports the number of operation slots currently held.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slots - s.free
}
