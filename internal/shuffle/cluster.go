package shuffle

import (
	"errors"
	"fmt"
	"io"
	"time"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/exec"
	"supmr/internal/faults"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
	"supmr/internal/metrics"
	"supmr/internal/netsim"
	"supmr/internal/sortalgo"
	"supmr/internal/spill"
	"supmr/internal/storage"
)

// Options configures a multi-node run. The embedded mapreduce.Options
// carry the per-node pipeline knobs (workers, splits, boundary, radix
// ablation, timer, recorder, pool) exactly as in single-node mode.
type Options struct {
	mapreduce.Options

	// Nodes is the simulated worker-node count (>= 1; 1 is the
	// degenerate single-node cluster, useful for differential tests).
	Nodes int
	// CombinerOff disables the in-node combiner tier: each per-chunk
	// drained run is partitioned and transmitted as-is instead of being
	// pre-aggregated across all of the node's local workers first. The
	// destination merge re-reduces either way, so output bytes are
	// identical — only wire traffic changes.
	CombinerOff bool
	// LinkBW is each node port's bandwidth in bytes/sec
	// (0 = netsim.GigabitEthernet); LinkLatency is the per-transfer
	// one-way latency.
	LinkBW      float64
	LinkLatency time.Duration
	// Clock schedules fabric transfers and retry backoff.
	Clock storage.Clock
	// Injector (optional) arms one fault seam per directed node pair —
	// sites "shuffle-n<src>-n<dst>" — injecting latency spikes and torn
	// frame transfers; Retry resends torn frames (transient faults
	// only) with Counters accumulating outcomes.
	Injector *faults.Injector
	Retry    faults.RetryPolicy
	Counters *faults.Counters
}

// Run executes app over input on a simulated cluster of opts.Nodes
// SupMR worker nodes:
//
//	ingest:  chunks round-robin to nodes; each node runs map waves into
//	         its own container (built via the Fresher extension) and
//	         drains it per chunk into key-sorted local runs
//	combine: (in-node combiner, unless ablated) each node pre-aggregates
//	         all its local runs into one run before transmission
//	shuffle: runs are hash-partitioned by encoded key; partition p is
//	         owned by node p; remote slices travel as checksummed frames
//	         over per-node fabric links, local slices bypass the wire
//	reduce:  each node merges its received + local slices with the
//	         re-reducing loser-tree pass
//	merge:   node outputs hold disjoint keys; one final interleave
//	         produces the globally sorted result
//
// The caller's container serves node 0; the remaining nodes get Fresh()
// clones. Output is byte-identical to a single-node run: hash
// partitioning keeps each key on one node and every merge re-reduces
// under the standing associative-combiner contract.
func Run[K comparable, V any](app kv.App[K, V], input chunk.Stream, cont container.Container[K, V], opts Options) (*mapreduce.Result[K, V], error) {
	nodes := opts.Nodes
	if nodes < 1 {
		return nil, fmt.Errorf("shuffle: node count must be >= 1, got %d", nodes)
	}
	pool := opts.Pool
	if pool == nil {
		return nil, fmt.Errorf("shuffle: multi-node run requires an executor pool")
	}
	timer := opts.Timer
	if timer == nil {
		timer = metrics.NewTimer(pool.Now)
	}
	if opts.Clock == nil {
		return nil, fmt.Errorf("shuffle: multi-node run requires a clock")
	}
	kc, err := spill.CodecFor[K]()
	if err != nil {
		return nil, fmt.Errorf("shuffle: key: %w", err)
	}
	vc, err := spill.CodecFor[V]()
	if err != nil {
		return nil, fmt.Errorf("shuffle: value: %w", err)
	}
	conts := make([]container.Container[K, V], nodes)
	conts[0] = cont
	if nodes > 1 {
		fr, ok := any(cont).(container.Fresher[K, V])
		if !ok {
			return nil, fmt.Errorf("shuffle: container %T cannot be replicated across nodes (no Fresh method)", cont)
		}
		for i := 1; i < nodes; i++ {
			conts[i] = fr.Fresh()
		}
	}
	bw := opts.LinkBW
	if bw == 0 {
		bw = netsim.GigabitEthernet
	}
	fab, err := netsim.NewFabric(nodes, bw, opts.LinkLatency, opts.Clock)
	if err != nil {
		return nil, err
	}
	var retrier *faults.Retrier
	if opts.Retry.Enabled() {
		retrier = faults.NewRetrier(opts.Retry, opts.Clock, opts.Counters)
	}
	wires := make([][]*faults.Wire, nodes)
	for src := range wires {
		wires[src] = make([]*faults.Wire, nodes)
		if opts.Injector == nil {
			continue
		}
		for dst := range wires[src] {
			if dst != src {
				wires[src][dst] = opts.Injector.Wire(fmt.Sprintf("shuffle-n%d-n%d", src, dst))
			}
		}
	}

	ro := opts.Options
	ro.ResetContainer = false
	var fixed *kv.FixedKeyCodec[K]
	if !ro.RadixDisabled {
		fixed = kv.FixedKeyOf[K, V](app)
	}

	var stats mapreduce.Stats
	cont.Reset()

	// --- ingest + map + per-chunk drain ------------------------------
	// Chunks route round-robin to nodes. Reads are issued serially with
	// one read prefetched on the IO lane while the previous chunk maps,
	// preserving the per-site fault op order that chaos determinism
	// depends on.
	type ingestRes struct {
		c   *chunk.Chunk
		err error
	}
	issue := func() (*exec.Handle, *ingestRes) {
		res := &ingestRes{}
		h := pool.GoIO("ingest", metrics.StateIOWait, func() error {
			c, err := input.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return err
			}
			res.c = c
			return nil
		})
		return h, res
	}
	nodeRuns := make([][][]kv.Pair[K, V], nodes)
	radixRuns := 0
	fail := func(err error) (*mapreduce.Result[K, V], error) {
		pool.Abort(err)
		return nil, err
	}
	timer.StartPhase(metrics.PhaseReadMap)
	h, res := issue()
	for i := 0; ; i++ {
		if werr := h.Wait(); werr != nil {
			timer.EndPhase(metrics.PhaseReadMap)
			return fail(werr)
		}
		c := res.c
		if c == nil {
			break // EOF
		}
		h, res = issue() // prefetch the next chunk while this one maps
		node := i % nodes
		if ca, ok := any(app).(interface{ SetData(*chunk.Chunk) }); ok {
			ca.SetData(c)
		}
		n, busy, merr := mapreduce.MapWaveTimed(app, c.Data, conts[node], ro)
		if merr != nil {
			c.Release()
			timer.EndPhase(metrics.PhaseReadMap)
			return fail(merr)
		}
		stats.Splits += n
		stats.MapBusy += busy
		stats.MapWaves++
		stats.BytesIngested += c.Size()
		c.Release()
		// Drain this chunk's container state into a key-sorted local
		// run now: residency stays bounded by one chunk's output, and
		// combiner-off mode transmits exactly these per-chunk runs.
		timer.EndPhase(metrics.PhaseReadMap)
		timer.StartPhase(metrics.PhaseShuffle)
		run, nrad, derr := spill.DrainContainer(conts[node], app.Less, app.Reduce, fixed, pool, "shuffle")
		timer.EndPhase(metrics.PhaseShuffle)
		timer.StartPhase(metrics.PhaseReadMap)
		if derr != nil {
			return fail(derr)
		}
		radixRuns += nrad
		if len(run) > 0 {
			nodeRuns[node] = append(nodeRuns[node], run)
			stats.IntermediateN += len(run)
		}
	}
	timer.EndPhase(metrics.PhaseReadMap)
	if len(pool.LaneBytes()) > 1 {
		stats.IngestLaneBytes = pool.LaneBytes()
	}

	// --- in-node combine + partition + framed exchange ---------------
	timer.StartPhase(metrics.PhaseShuffle)
	recv := make([][][]kv.Pair[K, V], nodes) // recv[dst]: runs to merge at dst, in arrival order
	var kbuf, vbuf []byte
	recordBytes := func(p kv.Pair[K, V]) int64 {
		kbuf = kc.Append(kbuf[:0], p.Key)
		vbuf = vc.Append(vbuf[:0], p.Val)
		return int64(uvarintLen(len(kbuf)) + len(kbuf) + uvarintLen(len(vbuf)) + len(vbuf))
	}
	for src := 0; src < nodes; src++ {
		runs := nodeRuns[src]
		if !opts.CombinerOff && len(runs) > 1 {
			// The in-node combiner tier: one pre-aggregation pass over
			// every local worker's output before any byte is framed for
			// transmission. The saved-bytes counter is exact: encoded
			// size in, encoded size out.
			var before, total int64
			for _, r := range runs {
				total += int64(len(r))
				for _, p := range r {
					before += recordBytes(p)
				}
			}
			var combined []kv.Pair[K, V]
			_, err := pool.ForEach("shuffle", metrics.StateUser, 1, func(int) error {
				srcs := make([]sortalgo.Source[K, V], len(runs))
				for i, r := range runs {
					srcs[i] = sortalgo.NewSliceSource(r)
				}
				var mErr error
				combined, mErr = sortalgo.MergeSources(srcs, app.Less, app.Reduce, make([]kv.Pair[K, V], 0, total))
				return mErr
			})
			if err != nil {
				timer.EndPhase(metrics.PhaseShuffle)
				return fail(err)
			}
			var after int64
			for _, p := range combined {
				after += recordBytes(p)
			}
			stats.ShuffleBytesSaved += before - after
			runs = [][]kv.Pair[K, V]{combined}
		}
		for _, run := range runs {
			// Split the sorted run into per-destination sub-runs: a
			// subsequence of a sorted run stays sorted.
			payloads := make([][]byte, nodes)
			counts := make([]int, nodes)
			var local []kv.Pair[K, V]
			for _, p := range run {
				kbuf = kc.Append(kbuf[:0], p.Key)
				dst := PartitionOf(kbuf, nodes)
				if dst == src {
					local = append(local, p)
					continue
				}
				vbuf = vc.Append(vbuf[:0], p.Val)
				payloads[dst] = AppendRecord(payloads[dst], kbuf, vbuf)
				counts[dst]++
			}
			if len(local) > 0 {
				recv[src] = append(recv[src], local)
			}
			for dst := 0; dst < nodes; dst++ {
				if counts[dst] == 0 {
					continue
				}
				frame := EncodeFrame(nil, src, dst, counts[dst], payloads[dst])
				send := func() error {
					n, ferr := wires[src][dst].Send(len(frame))
					if terr := fab.Transfer(src, dst, int64(n)); terr != nil {
						return terr
					}
					stats.ShuffleBytes += int64(n)
					if ferr != nil {
						// Only a prefix reached the receiver: it must
						// reject the torn frame with a typed error,
						// never accept it, and the sender retries.
						if _, derr := DecodeFrame(frame[:n]); derr == nil {
							return fmt.Errorf("shuffle: torn frame to n%d accepted: %w", dst, ErrCorrupt)
						}
						return ferr
					}
					run, derr := decodeRun(frame, src, dst, kc, vc)
					if derr != nil {
						return derr
					}
					recv[dst] = append(recv[dst], run)
					stats.ShuffleFrames++
					return nil
				}
				if err := retrier.Do(send); err != nil {
					timer.EndPhase(metrics.PhaseShuffle)
					return fail(fmt.Errorf("shuffle: n%d->n%d: %w", src, dst, err))
				}
			}
		}
	}
	timer.EndPhase(metrics.PhaseShuffle)

	// --- per-node destination merge (the reduce tier) ----------------
	outs := make([][]kv.Pair[K, V], nodes)
	for dst := range recv {
		stats.Runs += len(recv[dst])
	}
	timer.StartPhase(metrics.PhaseReduce)
	reduceBusy, err := pool.ForEach("reduce", metrics.StateUser, nodes, func(dst int) error {
		if len(recv[dst]) == 0 {
			return nil
		}
		total := 0
		for _, r := range recv[dst] {
			total += len(r)
		}
		srcs := make([]sortalgo.Source[K, V], len(recv[dst]))
		for i, r := range recv[dst] {
			srcs[i] = sortalgo.NewSliceSource(r)
		}
		var mErr error
		outs[dst], mErr = sortalgo.MergeSources(srcs, app.Less, app.Reduce, make([]kv.Pair[K, V], 0, total))
		return mErr
	})
	timer.EndPhase(metrics.PhaseReduce)
	if err != nil {
		return fail(err)
	}
	stats.ReduceBusy = reduceBusy

	// --- global assembly: partitions hold disjoint keys --------------
	timer.StartPhase(metrics.PhaseMerge)
	var merged []kv.Pair[K, V]
	_, err = pool.ForEach("merge", metrics.StateUser, 1, func(int) error {
		total := 0
		var srcs []sortalgo.Source[K, V]
		for _, out := range outs {
			if len(out) > 0 {
				total += len(out)
				srcs = append(srcs, sortalgo.NewSliceSource(out))
			}
		}
		var mErr error
		merged, mErr = sortalgo.MergeSources(srcs, app.Less, app.Reduce, make([]kv.Pair[K, V], 0, total))
		return mErr
	})
	timer.EndPhase(metrics.PhaseMerge)
	if err != nil {
		return fail(err)
	}
	stats.MergeRounds = 1
	stats.RadixRuns = radixRuns
	stats.OutputPairs = len(merged)
	stats.Tasks = pool.TaskStats()
	return &mapreduce.Result[K, V]{Pairs: merged, Times: timer.Finish(), Stats: stats}, nil
}

// decodeRun verifies and decodes one received frame into a key-sorted
// run. Header fields must match the link the frame arrived on.
func decodeRun[K comparable, V any](frame []byte, src, dst int, kc spill.Codec[K], vc spill.Codec[V]) ([]kv.Pair[K, V], error) {
	f, err := DecodeFrame(frame)
	if err != nil {
		return nil, err
	}
	if f.Src != src || f.Part != dst {
		return nil, fmt.Errorf("%w: frame for n%d->n%d arrived on n%d->n%d", ErrCorrupt, f.Src, f.Part, src, dst)
	}
	run := make([]kv.Pair[K, V], 0, f.Records)
	payload := f.Payload
	for len(payload) > 0 {
		key, val, rest, err := ReadRecord(payload)
		if err != nil {
			return nil, err
		}
		k, err := kc.Decode(key)
		if err != nil {
			return nil, fmt.Errorf("%w: key: %v", ErrCorrupt, err)
		}
		v, err := vc.Decode(val)
		if err != nil {
			return nil, fmt.Errorf("%w: value: %v", ErrCorrupt, err)
		}
		run = append(run, kv.Pair[K, V]{Key: k, Val: v})
		payload = rest
	}
	if len(run) != f.Records {
		return nil, fmt.Errorf("%w: %d records, header says %d", ErrCorrupt, len(run), f.Records)
	}
	return run, nil
}

// uvarintLen returns the encoded size of n as a uvarint.
func uvarintLen(n int) int {
	l := 1
	for v := uint64(n); v >= 0x80; v >>= 7 {
		l++
	}
	return l
}
