package shuffle

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"supmr/internal/spill"
)

// buildFrame encodes records of random sizes and returns the frame plus
// the original key/value pairs.
func buildFrame(t *testing.T, rng *rand.Rand, src, part, n int) ([]byte, [][2][]byte) {
	t.Helper()
	var payload []byte
	recs := make([][2][]byte, n)
	for i := range recs {
		key := make([]byte, rng.Intn(24))
		val := make([]byte, rng.Intn(16))
		rng.Read(key)
		rng.Read(val)
		recs[i] = [2][]byte{key, val}
		payload = AppendRecord(payload, key, val)
	}
	return EncodeFrame(nil, src, part, n, payload), recs
}

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		src, part, n := rng.Intn(16), rng.Intn(16), rng.Intn(20)
		frame, recs := buildFrame(t, rng, src, part, n)
		f, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if f.Src != src || f.Part != part || f.Records != n {
			t.Fatalf("trial %d: header = %+v, want src=%d part=%d records=%d", trial, f, src, part, n)
		}
		payload := f.Payload
		for i, want := range recs {
			key, val, rest, err := ReadRecord(payload)
			if err != nil {
				t.Fatalf("trial %d: record %d: %v", trial, i, err)
			}
			if !bytes.Equal(key, want[0]) || !bytes.Equal(val, want[1]) {
				t.Fatalf("trial %d: record %d mismatch", trial, i)
			}
			payload = rest
		}
		if len(payload) != 0 {
			t.Fatalf("trial %d: %d leftover payload bytes", trial, len(payload))
		}
	}
}

// Every proper prefix of a valid frame — every possible torn transfer —
// must be rejected with a typed error, never decoded as data.
func TestFrameEveryPrefixRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	frame, _ := buildFrame(t, rng, 2, 5, 8)
	for cut := 0; cut < len(frame); cut++ {
		_, err := DecodeFrame(frame[:cut])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", cut, len(frame))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: untyped error %v", cut, err)
		}
	}
}

// Flipping any single bit must be caught: by magic/version/structure
// checks or ultimately the checksum. Silent corruption is the one
// outcome that may never happen.
func TestFrameBitFlipsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	frame, _ := buildFrame(t, rng, 1, 3, 6)
	for pos := 0; pos < len(frame); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[pos] ^= 1 << bit
			f, err := DecodeFrame(mut)
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted: %+v", pos, bit, f)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip at byte %d bit %d: untyped error %v", pos, bit, err)
			}
		}
	}
}

func TestFrameTrailingGarbageRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	frame, _ := buildFrame(t, rng, 0, 1, 3)
	if _, err := DecodeFrame(append(frame, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: %v, want ErrCorrupt", err)
	}
}

func TestDecodeRunRejectsMisroutedFrame(t *testing.T) {
	kc, _ := spill.CodecFor[string]()
	vc, _ := spill.CodecFor[int64]()
	payload := AppendRecord(nil, []byte("k"), vc.Append(nil, 7))
	frame := EncodeFrame(nil, 1, 2, 1, payload)
	if _, err := decodeRun(frame, 1, 2, kc, vc); err != nil {
		t.Fatalf("matching link rejected: %v", err)
	}
	if _, err := decodeRun(frame, 0, 2, kc, vc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong src link: %v, want ErrCorrupt", err)
	}
	if _, err := decodeRun(frame, 1, 0, kc, vc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong dst link: %v, want ErrCorrupt", err)
	}
}

func TestDecodeRunRecordCountMismatch(t *testing.T) {
	kc, _ := spill.CodecFor[string]()
	vc, _ := spill.CodecFor[int64]()
	payload := AppendRecord(nil, []byte("a"), vc.Append(nil, 1))
	payload = AppendRecord(payload, []byte("b"), vc.Append(nil, 2))
	frame := EncodeFrame(nil, 0, 1, 3, payload) // header lies: 3 records
	if _, err := decodeRun(frame, 0, 1, kc, vc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("record-count lie: %v, want ErrCorrupt", err)
	}
}

func TestPartitionOfStableAndTotal(t *testing.T) {
	// Stability: golden values computed once outside this codebase
	// (FNV-1a("wordcount") mod 4 and mod 7). If the hash ever changes,
	// cross-process partition ownership silently moves and multi-node
	// digests diverge — so this is pinned, not self-compared.
	if got := PartitionOf([]byte("wordcount"), 4); got != 0 {
		t.Fatalf("PartitionOf(wordcount, 4) = %d, want pinned 0", got)
	}
	if got := PartitionOf([]byte("wordcount"), 7); got != 1 {
		t.Fatalf("PartitionOf(wordcount, 7) = %d, want pinned 1", got)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 1000; trial++ {
		key := make([]byte, rng.Intn(32))
		rng.Read(key)
		for _, parts := range []int{1, 2, 3, 4, 7} {
			p := PartitionOf(key, parts)
			if p < 0 || p >= parts {
				t.Fatalf("PartitionOf(%x, %d) = %d out of range", key, parts, p)
			}
		}
		if PartitionOf(key, 1) != 0 {
			t.Fatal("single partition must map everything to 0")
		}
	}
}

func TestPartitionOfSpreads(t *testing.T) {
	// Sanity, not uniformity proof: 4 partitions over 4k distinct keys
	// should each hold a non-trivial share.
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		counts[PartitionOf([]byte(fmt.Sprintf("key-%d", i)), 4)]++
	}
	for p, n := range counts {
		if n < 512 {
			t.Fatalf("partition %d holds %d of 4096 keys — hash badly skewed: %v", p, n, counts)
		}
	}
}

func FuzzDecodeFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(21))
	var payload []byte
	payload = AppendRecord(payload, []byte("alpha"), []byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add(EncodeFrame(nil, 0, 1, 1, payload))
	f.Add([]byte{})
	f.Add([]byte{'S', 'F', 1})
	junk := make([]byte, 64)
	rng.Read(junk)
	f.Add(junk)
	f.Fuzz(func(t *testing.T, p []byte) {
		fr, err := DecodeFrame(p)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted frames must re-encode to the identical bytes: the
		// codec never accepts a frame it would not itself have produced.
		re := EncodeFrame(nil, fr.Src, fr.Part, fr.Records, fr.Payload)
		if !bytes.Equal(re, p) {
			t.Fatalf("accepted frame does not round-trip: %x vs %x", p, re)
		}
	})
}

func FuzzReadRecord(f *testing.F) {
	f.Add(AppendRecord(nil, []byte("k"), []byte("v")))
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, p []byte) {
		rest := p
		for len(rest) > 0 {
			key, val, r, err := ReadRecord(rest)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("untyped record error: %v", err)
				}
				return
			}
			if len(key)+len(val) > len(rest) {
				t.Fatal("record fields exceed input")
			}
			if len(r) >= len(rest) {
				t.Fatal("no forward progress")
			}
			rest = r
		}
	})
}
