// Package shuffle is the multi-node exchange layer: N simulated SupMR
// worker nodes each run the scale-up pipeline over their local ingest
// chunks, drain their containers into key-sorted runs, and exchange
// hash-partitioned slices of those runs as framed messages over
// netsim fabric links. Destination nodes merge remote and local runs
// through the standing MergeSources re-reduce path, so multi-node
// output is byte-identical to a single-node run of the same job.
package shuffle

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout — one framed run partition per wire transfer:
//
//	magic   [2]byte  "SF"
//	version byte     1
//	uvarint          source node
//	uvarint          partition (destination node)
//	uvarint          record count
//	uvarint          payload length in bytes
//	payload          records: uvarint keyLen, key, uvarint valLen, val
//	                 (the spill-codec record framing)
//	crc32c  [4]byte  Castagnoli checksum of everything before it
//
// The checksum plus the explicit payload length mean a torn or
// truncated frame is always rejected with a typed error — a prefix of
// a valid frame can never decode as a valid frame.

// ErrTruncated reports a frame cut short: the declared header and
// payload lengths extend past the received bytes (a torn transfer).
var ErrTruncated = errors.New("shuffle: truncated frame")

// ErrCorrupt reports a structurally broken frame: bad magic or
// version, checksum mismatch, malformed record framing, or trailing
// garbage. Corruption is never silently accepted.
var ErrCorrupt = errors.New("shuffle: corrupt frame")

const (
	frameMagic0  = 'S'
	frameMagic1  = 'F'
	frameVersion = 1
)

// Frame is a decoded, checksum-verified shuffle message.
type Frame struct {
	Src     int    // sending node
	Part    int    // partition = destination node
	Records int    // record count in Payload
	Payload []byte // aliases the decoded buffer
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeFrame appends one frame carrying payload (records pre-framed
// records) from node src for partition part, returning the extended
// buffer.
func EncodeFrame(dst []byte, src, part, records int, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, frameMagic0, frameMagic1, frameVersion)
	dst = binary.AppendUvarint(dst, uint64(src))
	dst = binary.AppendUvarint(dst, uint64(part))
	dst = binary.AppendUvarint(dst, uint64(records))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// AppendRecord appends one key/value record in the frame's payload
// framing (shared with the spill run format).
func AppendRecord(payload, key, val []byte) []byte {
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	payload = append(payload, key...)
	payload = binary.AppendUvarint(payload, uint64(len(val)))
	return append(payload, val...)
}

// DecodeFrame parses and verifies exactly one frame occupying all of
// p. Truncation (including any torn prefix of a valid frame) returns
// ErrTruncated; structural damage returns ErrCorrupt. The returned
// payload aliases p.
func DecodeFrame(p []byte) (Frame, error) {
	var f Frame
	if len(p) < 3 {
		return f, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(p))
	}
	if p[0] != frameMagic0 || p[1] != frameMagic1 {
		return f, fmt.Errorf("%w: bad magic %q", ErrCorrupt, p[:2])
	}
	if p[2] != frameVersion {
		return f, fmt.Errorf("%w: version %d", ErrCorrupt, p[2])
	}
	rest := p[3:]
	var fields [4]uint64
	for i := range fields {
		v, n := binary.Uvarint(rest)
		if n == 0 {
			return f, fmt.Errorf("%w: header field %d", ErrTruncated, i)
		}
		if n < 0 {
			return f, fmt.Errorf("%w: header field %d overflows", ErrCorrupt, i)
		}
		fields[i] = v
		rest = rest[n:]
	}
	payloadLen := fields[3]
	if uint64(len(rest)) < payloadLen+4 {
		return f, fmt.Errorf("%w: %d of %d payload+crc bytes", ErrTruncated, len(rest), payloadLen+4)
	}
	if uint64(len(rest)) > payloadLen+4 {
		return f, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, uint64(len(rest))-payloadLen-4)
	}
	payload := rest[:payloadLen]
	want := binary.LittleEndian.Uint32(rest[payloadLen:])
	if got := crc32.Checksum(p[:len(p)-4], crcTable); got != want {
		return f, fmt.Errorf("%w: checksum %08x != %08x", ErrCorrupt, got, want)
	}
	f.Src = int(fields[0])
	f.Part = int(fields[1])
	f.Records = int(fields[2])
	f.Payload = payload
	return f, nil
}

// ReadRecord parses the next record from a frame payload, returning
// the key, value and remaining bytes. Records inside a
// checksum-verified frame can still be malformed only if the sender
// was broken, so framing errors here are ErrCorrupt.
func ReadRecord(payload []byte) (key, val, rest []byte, err error) {
	for i := 0; i < 2; i++ {
		l, n := binary.Uvarint(payload)
		if n <= 0 || l > uint64(len(payload)-n) {
			return nil, nil, nil, fmt.Errorf("%w: record framing", ErrCorrupt)
		}
		field := payload[n : n+int(l)]
		payload = payload[n+int(l):]
		if i == 0 {
			key = field
		} else {
			val = field
		}
	}
	return key, val, payload, nil
}
