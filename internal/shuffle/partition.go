package shuffle

// PartitionOf maps an encoded key to one of parts partitions with
// FNV-1a over the key bytes. The hash is deliberately NOT the
// containers' maphash (whose seed is process-random): partition
// ownership decides which node reduces a key, so it must be stable
// across processes and runs for multi-node output to be reproducible.
// Every occurrence of a key hashes to one partition, which is what
// makes partitions' key sets disjoint and the final cross-node merge a
// pure interleave.
func PartitionOf(key []byte, parts int) int {
	if parts <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(parts))
}
