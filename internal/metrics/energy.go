package metrics

import "time"

// PowerModel estimates energy from a utilization trace. §VI-C observes
// that small ingest chunks buy performance at the cost of long periods
// of very high CPU utilization (the testbed occasionally hit thermal
// throttling); this model makes that trade-off quantifiable: given a
// trace, it integrates per-context power over time.
//
// Power per hardware context is linear in utilization — the standard
// first-order CPU power model: an idle context draws IdleWatts, a fully
// busy one draws BusyWatts, and a context blocked on IO draws IOWatts
// (clock-gated but not asleep).
type PowerModel struct {
	IdleWatts float64 // per context, 0% utilization
	BusyWatts float64 // per context, 100% user/sys
	IOWatts   float64 // per context, blocked on IO
}

// DefaultPowerModel approximates the testbed's 2x8-core Xeons with
// hyperthreading: ~65 W idle and ~210 W loaded per package across 32
// hardware contexts.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		IdleWatts: 4.0,
		BusyWatts: 13.0,
		IOWatts:   4.5,
	}
}

// EnergyReport summarizes the integration.
type EnergyReport struct {
	Joules    float64       // total energy over the trace
	AvgWatts  float64       // mean machine power
	PeakWatts float64       // max bucket power
	Duration  time.Duration // trace span
}

// Energy integrates the power model over tr, which must have been built
// with the given context count (the model is per-context).
func (m PowerModel) Energy(tr *Trace, contexts int) EnergyReport {
	if contexts <= 0 {
		contexts = 1
	}
	var rep EnergyReport
	rep.Duration = tr.Duration()
	dt := tr.Bucket.Seconds()
	for _, s := range tr.Samples {
		busyFrac := (s.User + s.Sys) / 100
		ioFrac := s.IOWait / 100
		idleFrac := 1 - busyFrac - ioFrac
		if idleFrac < 0 {
			idleFrac = 0
		}
		watts := float64(contexts) * (busyFrac*m.BusyWatts + ioFrac*m.IOWatts + idleFrac*m.IdleWatts)
		rep.Joules += watts * dt
		if watts > rep.PeakWatts {
			rep.PeakWatts = watts
		}
	}
	if sec := rep.Duration.Seconds(); sec > 0 {
		rep.AvgWatts = rep.Joules / sec
	}
	return rep
}

// EnergyDelay returns the energy-delay product (J·s), the usual metric
// for comparing a faster-but-hotter configuration (small chunks) with a
// slower-but-cooler one (large chunks).
func (r EnergyReport) EnergyDelay() float64 {
	return r.Joules * r.Duration.Seconds()
}
