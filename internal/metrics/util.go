package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// WorkerState classifies what a worker (thread analog) is doing, the three
// collectl categories the paper's utilization figures stack: user-space
// compute, kernel-space work (data copies during ingest), and IO wait.
type WorkerState int

// Worker states.
const (
	StateIdle   WorkerState = iota
	StateUser               // user-space compute: map/reduce/merge/sort
	StateSys                // kernel-space: memcpy of ingested data, allocation
	StateIOWait             // blocked on storage or network
)

// String names the state.
func (s WorkerState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateUser:
		return "user"
	case StateSys:
		return "sys"
	case StateIOWait:
		return "iowait"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// SeriesPoint is one sample of a cumulative counter over the job
// timeline — e.g. bytes spilled to the intermediate store by time T.
// Reports plot the series alongside the utilization trace.
type SeriesPoint struct {
	T time.Duration
	V int64
}

// event is one worker state transition.
type event struct {
	at     time.Duration
	worker int
	state  WorkerState
}

// UtilRecorder collects worker state transitions during a run and
// reconstructs a CPU-utilization time series afterwards, playing the role
// of the collectl daemon on the testbed. Contexts is the number of
// hardware contexts utilization is normalized to (32 on the testbed).
type UtilRecorder struct {
	now      func() time.Duration
	contexts int

	mu     sync.Mutex
	events []event
	nextID int
}

// NewUtilRecorder creates a recorder normalizing to contexts hardware
// contexts, reading time from now.
func NewUtilRecorder(contexts int, now func() time.Duration) *UtilRecorder {
	if contexts <= 0 {
		contexts = 1
	}
	return &UtilRecorder{now: now, contexts: contexts}
}

// Contexts returns the normalization width.
func (r *UtilRecorder) Contexts() int { return r.contexts }

// Register allocates a worker id. Workers begin Idle.
func (r *UtilRecorder) Register() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextID
	r.nextID++
	return id
}

// Registered returns how many worker ids have been allocated — the
// worker population of the trace. With the persistent executor this is
// stable across phases (workers register once per job).
func (r *UtilRecorder) Registered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextID
}

// SetState records that worker id entered state now.
func (r *UtilRecorder) SetState(id int, s WorkerState) {
	at := r.now()
	r.mu.Lock()
	r.events = append(r.events, event{at: at, worker: id, state: s})
	r.mu.Unlock()
}

// SetStateAt records a transition with an explicit timestamp; the
// perfmodel uses this to emit synthetic traces on its virtual clock.
func (r *UtilRecorder) SetStateAt(id int, s WorkerState, at time.Duration) {
	r.mu.Lock()
	r.events = append(r.events, event{at: at, worker: id, state: s})
	r.mu.Unlock()
}

// Sample is one bucket of the reconstructed utilization trace. The
// percentages are of total machine capacity (contexts * bucket), matching
// the y axis of the paper's figures.
type Sample struct {
	T      time.Duration // bucket start
	User   float64       // % of capacity in user state
	Sys    float64       // % of capacity in sys state
	IOWait float64       // % of capacity in IO wait
}

// Total returns the stacked height user+sys+iowait.
func (s Sample) Total() float64 { return s.User + s.Sys + s.IOWait }

// Trace is a utilization time series.
type Trace struct {
	Bucket  time.Duration
	Samples []Sample
}

// Duration returns the covered time span.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.Samples)) * t.Bucket
}

// MeanUser returns the average user% across the trace.
func (t *Trace) MeanUser() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range t.Samples {
		sum += s.User
	}
	return sum / float64(len(t.Samples))
}

// MeanTotal returns the average stacked utilization across the trace.
func (t *Trace) MeanTotal() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range t.Samples {
		sum += s.Total()
	}
	return sum / float64(len(t.Samples))
}

// Build reconstructs the utilization trace with the given bucket width.
// Worker time in each state is integrated per bucket and normalized to
// contexts * bucket. end caps the trace (use the job's total duration).
func (r *UtilRecorder) Build(bucket, end time.Duration) *Trace {
	if bucket <= 0 {
		bucket = time.Second
	}
	r.mu.Lock()
	evs := make([]event, len(r.events))
	copy(evs, r.events)
	workers := r.nextID
	r.mu.Unlock()

	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	if end <= 0 {
		if len(evs) > 0 {
			end = evs[len(evs)-1].at
		}
		if end <= 0 {
			end = bucket
		}
	}
	n := int((end + bucket - 1) / bucket)
	if n == 0 {
		n = 1
	}
	type acc struct{ user, sys, iowait time.Duration }
	buckets := make([]acc, n)

	// Replay per worker: intervals between consecutive transitions
	// contribute to buckets they overlap.
	last := make([]event, workers)
	for i := range last {
		last[i] = event{at: 0, worker: i, state: StateIdle}
	}
	addInterval := func(from, to time.Duration, st WorkerState) {
		if st == StateIdle || to <= from {
			return
		}
		if to > end {
			to = end
		}
		for t := from; t < to; {
			bi := int(t / bucket)
			if bi >= n {
				break
			}
			bEnd := time.Duration(bi+1) * bucket
			seg := bEnd - t
			if to-t < seg {
				seg = to - t
			}
			switch st {
			case StateUser:
				buckets[bi].user += seg
			case StateSys:
				buckets[bi].sys += seg
			case StateIOWait:
				buckets[bi].iowait += seg
			}
			t += seg
		}
	}
	for _, e := range evs {
		if e.worker < 0 || e.worker >= workers {
			continue
		}
		prev := last[e.worker]
		addInterval(prev.at, e.at, prev.state)
		last[e.worker] = e
	}
	for _, prev := range last {
		addInterval(prev.at, end, prev.state)
	}

	capacity := float64(r.contexts) * bucket.Seconds()
	tr := &Trace{Bucket: bucket, Samples: make([]Sample, n)}
	for i := range buckets {
		tr.Samples[i] = Sample{
			T:      time.Duration(i) * bucket,
			User:   100 * buckets[i].user.Seconds() / capacity,
			Sys:    100 * buckets[i].sys.Seconds() / capacity,
			IOWait: 100 * buckets[i].iowait.Seconds() / capacity,
		}
	}
	return tr
}

// ASCII renders the trace as a stacked text chart: rows are utilization
// bands from 100% down to 0%, columns are buckets. 'u' marks user, 's'
// sys, 'w' IO wait, matching the figure legends.
func (t *Trace) ASCII(height int) string {
	if height <= 0 {
		height = 20
	}
	cols := len(t.Samples)
	if cols == 0 {
		return "(empty trace)\n"
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	round := func(pct float64) int {
		h := int(pct/100*float64(height) + 0.5)
		if h == 0 && pct > 0.5 {
			h = 1 // keep low-but-real activity visible (e.g. 1 IO thread of 32)
		}
		return h
	}
	for c, s := range t.Samples {
		// Stack from the bottom: user, then sys, then iowait.
		uh := round(s.User)
		sh := round(s.Sys)
		wh := round(s.IOWait)
		if uh+sh+wh > height {
			over := uh + sh + wh - height
			if wh >= over {
				wh -= over
			} else if sh >= over {
				sh -= over
			} else {
				uh -= over
			}
		}
		row := height - 1
		for i := 0; i < uh && row >= 0; i++ {
			grid[row][c] = 'u'
			row--
		}
		for i := 0; i < sh && row >= 0; i++ {
			grid[row][c] = 's'
			row--
		}
		for i := 0; i < wh && row >= 0; i++ {
			grid[row][c] = 'w'
			row--
		}
	}
	var b strings.Builder
	for i, line := range grid {
		pct := 100 * (height - i) / height
		fmt.Fprintf(&b, "%3d%% |%s|\n", pct, line)
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", cols))
	fmt.Fprintf(&b, "      0%stime%s%v\n", strings.Repeat(" ", max(0, cols/2-4)), strings.Repeat(" ", max(0, cols-cols/2-8)), t.Duration().Round(time.Millisecond))
	fmt.Fprintf(&b, "      legend: u=user s=sys w=iowait  bucket=%v\n", t.Bucket)
	return b.String()
}

// CSV exports the trace as "t_seconds,user,sys,iowait" rows for plotting.
func (t *Trace) CSV() string {
	var b strings.Builder
	b.WriteString("t_seconds,user_pct,sys_pct,iowait_pct\n")
	for _, s := range t.Samples {
		fmt.Fprintf(&b, "%.3f,%.2f,%.2f,%.2f\n", s.T.Seconds(), s.User, s.Sys, s.IOWait)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
