package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Marker annotates an instant of a run with a phase-boundary label so
// traces can be read the way the paper's figures are ("the merge phase
// is the 280-400s interval"). The Timer emits markers automatically
// when wired with WithMarkers.
type Marker struct {
	At    time.Duration
	Label string
}

// MarkerLog collects markers concurrently.
type MarkerLog struct {
	mu      sync.Mutex
	markers []Marker
}

// Add records a marker.
func (l *MarkerLog) Add(at time.Duration, label string) {
	l.mu.Lock()
	l.markers = append(l.markers, Marker{At: at, Label: label})
	l.mu.Unlock()
}

// Markers returns a time-sorted snapshot.
func (l *MarkerLog) Markers() []Marker {
	l.mu.Lock()
	out := make([]Marker, len(l.markers))
	copy(out, l.markers)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// WithMarkers makes the timer log "phase start/end" markers into log.
func (t *Timer) WithMarkers(log *MarkerLog) *Timer {
	t.mu.Lock()
	t.markers = log
	t.mu.Unlock()
	return t
}

// Mark logs a free-form event marker (e.g. "ingest stall") at the
// current time into the timer's marker log; without one it is a no-op.
// Event markers render on the same trace ruler as phase boundaries, so
// stalls can be read off a utilization chart the way the paper reads
// the ingest/compute gap in Fig. 1.
func (t *Timer) Mark(label string) {
	t.mu.Lock()
	m := t.markers
	t.mu.Unlock()
	if m != nil {
		m.Add(t.now(), label)
	}
}

// AnnotatedASCII renders the trace with a marker ruler underneath:
// each phase-start marker appears as a caret column labelled in a
// legend, so phase intervals can be read off the chart.
func (tr *Trace) AnnotatedASCII(height int, markers []Marker) string {
	base := tr.ASCII(height)
	if len(markers) == 0 || len(tr.Samples) == 0 {
		return base
	}
	cols := len(tr.Samples)
	ruler := []byte(strings.Repeat(" ", cols))
	var legend []string
	n := 0
	for _, m := range markers {
		col := int(m.At / tr.Bucket)
		if col < 0 || col >= cols {
			continue
		}
		n++
		tag := byte('0' + n%10)
		ruler[col] = tag
		legend = append(legend, fmt.Sprintf("%c=%s@%.1fs", tag, m.Label, m.At.Seconds()))
	}
	var b strings.Builder
	b.WriteString(base)
	fmt.Fprintf(&b, "      |%s|\n", ruler)
	fmt.Fprintf(&b, "      markers: %s\n", strings.Join(legend, "  "))
	return b.String()
}

// markerLabel builds a phase-boundary label.
func markerLabel(p Phase, boundary string) string {
	return p.String() + ":" + boundary
}
