package metrics

import (
	"strings"
	"testing"
	"time"
)

// fakeNow builds a controllable now() function.
type fakeNow struct{ t time.Duration }

func (f *fakeNow) now() time.Duration { return f.t }

func TestTimerPhases(t *testing.T) {
	fn := &fakeNow{}
	tm := NewTimer(fn.now)

	fn.t = 1 * time.Second
	tm.StartPhase(PhaseRead)
	fn.t = 3 * time.Second
	tm.EndPhase(PhaseRead)

	// Accumulation across repeated start/end (SupMR rounds).
	tm.StartPhase(PhaseReadMap)
	fn.t = 4 * time.Second
	tm.EndPhase(PhaseReadMap)
	tm.StartPhase(PhaseReadMap)
	fn.t = 6 * time.Second
	tm.EndPhase(PhaseReadMap)

	times := tm.Finish()
	if got := times.Get(PhaseRead); got != 2*time.Second {
		t.Errorf("read = %v, want 2s", got)
	}
	if got := times.Get(PhaseReadMap); got != 3*time.Second {
		t.Errorf("read+map = %v, want 3s", got)
	}
	if times.Total != 6*time.Second {
		t.Errorf("total = %v, want 6s", times.Total)
	}
}

func TestTimerEndWithoutStart(t *testing.T) {
	fn := &fakeNow{}
	tm := NewTimer(fn.now)
	tm.EndPhase(PhaseMap) // must not panic or record anything
	if got := tm.Finish().Get(PhaseMap); got != 0 {
		t.Errorf("unmatched EndPhase recorded %v", got)
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{
		PhaseSetup:   "setup",
		PhaseRead:    "read",
		PhaseMap:     "map",
		PhaseReadMap: "read+map",
		PhaseReduce:  "reduce",
		PhaseMerge:   "merge",
		PhaseCleanup: "cleanup",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if s := Phase(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown phase string %q", s)
	}
}

func TestPhaseTimesString(t *testing.T) {
	var pt PhaseTimes
	pt.Set(PhaseRead, 1500*time.Millisecond)
	pt.Total = 2 * time.Second
	s := pt.String()
	if !strings.Contains(s, "total=2s") || !strings.Contains(s, "read=1.5s") {
		t.Errorf("unexpected format: %q", s)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2*time.Second, time.Second); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if got := Speedup(time.Second, 0); got != 0 {
		t.Errorf("Speedup with zero denominator = %v, want 0", got)
	}
}

func TestUtilRecorderSingleWorker(t *testing.T) {
	fn := &fakeNow{}
	rec := NewUtilRecorder(2, fn.now)
	id := rec.Register()

	rec.SetStateAt(id, StateUser, 0)
	rec.SetStateAt(id, StateIdle, time.Second)
	tr := rec.Build(time.Second, 2*time.Second)
	if len(tr.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(tr.Samples))
	}
	// 1 busy worker of 2 contexts for the first second = 50%.
	if got := tr.Samples[0].User; got < 49.9 || got > 50.1 {
		t.Errorf("bucket 0 user = %v%%, want 50%%", got)
	}
	if got := tr.Samples[1].User; got != 0 {
		t.Errorf("bucket 1 user = %v%%, want 0", got)
	}
}

func TestUtilRecorderStacksStates(t *testing.T) {
	fn := &fakeNow{}
	rec := NewUtilRecorder(4, fn.now)
	w1, w2, w3 := rec.Register(), rec.Register(), rec.Register()
	rec.SetStateAt(w1, StateUser, 0)
	rec.SetStateAt(w2, StateSys, 0)
	rec.SetStateAt(w3, StateIOWait, 0)
	tr := rec.Build(time.Second, time.Second)
	s := tr.Samples[0]
	if s.User != 25 || s.Sys != 25 || s.IOWait != 25 {
		t.Errorf("stacked sample = %+v, want 25/25/25", s)
	}
	if s.Total() != 75 {
		t.Errorf("total = %v, want 75", s.Total())
	}
}

func TestUtilRecorderIntervalSplitAcrossBuckets(t *testing.T) {
	fn := &fakeNow{}
	rec := NewUtilRecorder(1, fn.now)
	id := rec.Register()
	// Busy from 0.5s to 1.5s spans two 1s buckets at 50% each.
	rec.SetStateAt(id, StateUser, 500*time.Millisecond)
	rec.SetStateAt(id, StateIdle, 1500*time.Millisecond)
	tr := rec.Build(time.Second, 2*time.Second)
	if got := tr.Samples[0].User; got < 49.9 || got > 50.1 {
		t.Errorf("bucket 0 = %v%%, want 50%%", got)
	}
	if got := tr.Samples[1].User; got < 49.9 || got > 50.1 {
		t.Errorf("bucket 1 = %v%%, want 50%%", got)
	}
}

func TestUtilRecorderOpenIntervalRunsToEnd(t *testing.T) {
	fn := &fakeNow{}
	rec := NewUtilRecorder(1, fn.now)
	id := rec.Register()
	rec.SetStateAt(id, StateIOWait, 0)
	// No closing event: state persists to the end cap.
	tr := rec.Build(time.Second, 3*time.Second)
	for i, s := range tr.Samples {
		if s.IOWait < 99.9 {
			t.Errorf("bucket %d iowait = %v%%, want 100%%", i, s.IOWait)
		}
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{Bucket: time.Second, Samples: []Sample{
		{User: 100}, {User: 0, IOWait: 50},
	}}
	if got := tr.MeanUser(); got != 50 {
		t.Errorf("MeanUser = %v, want 50", got)
	}
	if got := tr.MeanTotal(); got != 75 {
		t.Errorf("MeanTotal = %v, want 75", got)
	}
	if tr.Duration() != 2*time.Second {
		t.Errorf("Duration = %v, want 2s", tr.Duration())
	}
	empty := &Trace{Bucket: time.Second}
	if empty.MeanUser() != 0 || empty.MeanTotal() != 0 {
		t.Error("empty trace means should be 0")
	}
}

func TestTraceASCII(t *testing.T) {
	tr := &Trace{Bucket: time.Second, Samples: []Sample{
		{User: 100}, {IOWait: 100}, {Sys: 50},
	}}
	art := tr.ASCII(10)
	if !strings.Contains(art, "u") || !strings.Contains(art, "w") || !strings.Contains(art, "s") {
		t.Errorf("ASCII missing state glyphs:\n%s", art)
	}
	if !strings.Contains(art, "legend") {
		t.Error("ASCII missing legend")
	}
	if got := (&Trace{}).ASCII(5); !strings.Contains(got, "empty") {
		t.Errorf("empty trace ASCII = %q", got)
	}
}

func TestTraceCSV(t *testing.T) {
	tr := &Trace{Bucket: time.Second, Samples: []Sample{{T: 0, User: 12.5}}}
	csv := tr.CSV()
	if !strings.HasPrefix(csv, "t_seconds,user_pct,sys_pct,iowait_pct\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "0.000,12.50,0.00,0.00") {
		t.Errorf("CSV row wrong: %q", csv)
	}
}

func TestFormatTable2(t *testing.T) {
	var base, sup PhaseTimes
	base.Set(PhaseRead, 10*time.Second)
	base.Set(PhaseMap, 2*time.Second)
	base.Total = 12 * time.Second
	sup.Set(PhaseReadMap, 10*time.Second)
	sup.Total = 10 * time.Second
	out := FormatTable2("demo", []Table2Row{
		{Label: "none", Times: base},
		{Label: "1GB", Times: sup, Fused: true},
	})
	if !strings.Contains(out, "none") || !strings.Contains(out, "(fused)") {
		t.Errorf("table format wrong:\n%s", out)
	}
}

func TestSortedPhases(t *testing.T) {
	var pt PhaseTimes
	pt.Set(PhaseMerge, time.Second)
	pt.Set(PhaseRead, time.Second)
	ps := SortedPhases(pt)
	if len(ps) != 2 || ps[0] != PhaseRead || ps[1] != PhaseMerge {
		t.Errorf("SortedPhases = %v", ps)
	}
}

func TestTimerMarkers(t *testing.T) {
	fn := &fakeNow{}
	var log MarkerLog
	tm := NewTimer(fn.now).WithMarkers(&log)
	fn.t = time.Second
	tm.StartPhase(PhaseRead)
	fn.t = 3 * time.Second
	tm.EndPhase(PhaseRead)
	ms := log.Markers()
	if len(ms) != 2 {
		t.Fatalf("got %d markers, want 2", len(ms))
	}
	if ms[0].Label != "read:start" || ms[0].At != time.Second {
		t.Errorf("marker 0 = %+v", ms[0])
	}
	if ms[1].Label != "read:end" || ms[1].At != 3*time.Second {
		t.Errorf("marker 1 = %+v", ms[1])
	}
}

func TestAnnotatedASCII(t *testing.T) {
	tr := &Trace{Bucket: time.Second, Samples: []Sample{
		{User: 50}, {User: 50}, {User: 100}, {User: 10},
	}}
	out := tr.AnnotatedASCII(6, []Marker{
		{At: 0, Label: "read:start"},
		{At: 2 * time.Second, Label: "merge:start"},
		{At: 99 * time.Second, Label: "offscreen"}, // dropped
	})
	if !strings.Contains(out, "markers:") {
		t.Fatalf("no marker ruler:\n%s", out)
	}
	if !strings.Contains(out, "read:start@0.0s") || !strings.Contains(out, "merge:start@2.0s") {
		t.Errorf("marker legend wrong:\n%s", out)
	}
	if strings.Contains(out, "offscreen") {
		t.Error("off-screen marker rendered")
	}
	// No markers: falls back to plain rendering.
	plain := tr.AnnotatedASCII(6, nil)
	if strings.Contains(plain, "markers:") {
		t.Error("marker ruler rendered with no markers")
	}
}

func TestTimerAllocMetering(t *testing.T) {
	fn := &fakeNow{}
	tm := NewTimer(fn.now).WithAllocs()

	tm.StartPhase(PhaseMap)
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 16<<10))
	}
	tm.EndPhase(PhaseMap)
	if len(sink) != 64 {
		t.Fatal("allocation loop elided")
	}

	got := tm.Allocs().Get(PhaseMap)
	if got.Objects < 64 {
		t.Errorf("map-phase objects = %d, want >= 64", got.Objects)
	}
	if got.Bytes < 64*16<<10 {
		t.Errorf("map-phase bytes = %d, want >= %d", got.Bytes, 64*16<<10)
	}
	if other := tm.Allocs().Get(PhaseMerge); other.Objects != 0 || other.Bytes != 0 {
		t.Errorf("merge phase recorded %+v without running", other)
	}

	s := tm.Allocs().String()
	if !strings.Contains(s, "map=") {
		t.Errorf("String() = %q, want a map= entry", s)
	}
	if (PhaseAllocs{}).String() != "" {
		t.Error("zero PhaseAllocs should format empty")
	}
}

func TestTimerAllocsDisabledByDefault(t *testing.T) {
	fn := &fakeNow{}
	tm := NewTimer(fn.now)
	tm.StartPhase(PhaseMap)
	_ = make([]byte, 1<<20)
	tm.EndPhase(PhaseMap)
	if a := tm.Allocs(); a.String() != "" {
		t.Errorf("metering off yet recorded %q", a.String())
	}
}
