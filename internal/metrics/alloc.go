package metrics

import (
	"fmt"
	"runtime"
	"strings"
)

// AllocStats counts heap allocations attributed to one phase: object
// count and total bytes. The numbers are process-wide ReadMemStats
// deltas sampled at phase boundaries, so they are approximate — any
// concurrent background allocation lands in whichever phase is open —
// but on a quiet process they expose the map hot path's allocation
// behaviour directly (the flat combiner should show near-zero map-phase
// objects per round once its arenas are warm).
type AllocStats struct {
	Objects int64 // heap objects allocated during the phase
	Bytes   int64 // heap bytes allocated during the phase
}

// PhaseAllocs records allocation deltas per phase, the allocation
// analog of PhaseTimes.
type PhaseAllocs struct {
	stats [numPhases]AllocStats
}

// Get returns the allocation stats recorded for phase p.
func (a PhaseAllocs) Get(p Phase) AllocStats { return a.stats[p] }

// add accumulates d into phase p.
func (a *PhaseAllocs) add(p Phase, d AllocStats) {
	a.stats[p].Objects += d.Objects
	a.stats[p].Bytes += d.Bytes
}

// String formats the non-zero phases like "map=12objs/1.5KB"; empty
// when nothing was recorded.
func (a PhaseAllocs) String() string {
	var b strings.Builder
	for p := PhaseSetup; p < numPhases; p++ {
		s := a.stats[p]
		if s.Objects == 0 && s.Bytes == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%dobjs/%s", p, s.Objects, fmtBytes(s.Bytes))
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// readAllocCounters samples the process's cumulative allocation
// counters. ReadMemStats stops the world briefly, which is why
// allocation metering is opt-in (WithAllocs) rather than always on.
func readAllocCounters() AllocStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return AllocStats{Objects: int64(m.Mallocs), Bytes: int64(m.TotalAlloc)}
}
