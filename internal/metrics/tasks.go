package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TaskStats aggregates executor task instrumentation for one phase
// label: how many tasks ran, how long they sat queued before a worker
// picked them up, and how long workers were busy executing them. The
// execution engine (internal/exec) records one TaskStats per phase so
// scheduling overhead is observable alongside the utilization traces.
type TaskStats struct {
	Tasks     int
	QueueWait time.Duration
	Busy      time.Duration
}

// Add folds o into s.
func (s *TaskStats) Add(o TaskStats) {
	s.Tasks += o.Tasks
	s.QueueWait += o.QueueWait
	s.Busy += o.Busy
}

// AvgBusy returns the mean per-task execution time.
func (s TaskStats) AvgBusy() time.Duration {
	if s.Tasks == 0 {
		return 0
	}
	return s.Busy / time.Duration(s.Tasks)
}

// AvgQueueWait returns the mean per-task queue wait.
func (s TaskStats) AvgQueueWait() time.Duration {
	if s.Tasks == 0 {
		return 0
	}
	return s.QueueWait / time.Duration(s.Tasks)
}

// FormatTaskStats renders a per-phase task table (deterministic order).
func FormatTaskStats(stats map[string]TaskStats) string {
	if len(stats) == 0 {
		return ""
	}
	phases := make([]string, 0, len(stats))
	for p := range stats {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %12s %12s\n", "phase", "tasks", "busy", "queue-wait")
	for _, p := range phases {
		s := stats[p]
		fmt.Fprintf(&b, "%-8s %8d %12v %12v\n", p, s.Tasks,
			s.Busy.Round(time.Microsecond), s.QueueWait.Round(time.Microsecond))
	}
	return b.String()
}
