// Package metrics provides the measurement substrate for the
// reproduction: per-phase timers matching the Phoenix++ internal timing
// functions the paper uses for Table II, and a collectl-style CPU
// utilization recorder that reconstructs the user/sys/IO-wait traces of
// Figures 1, 3, 5, 6 and 7 from instrumented worker state changes.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase identifies one MapReduce job phase. The paper's Table II reports
// read (ingest), map, reduce and merge; SupMR runs report the fused
// read+map pipeline under PhaseReadMap.
type Phase int

// Job phases in execution order.
const (
	PhaseSetup Phase = iota
	PhaseRead
	PhaseMap
	PhaseReadMap // fused ingest/map rounds of the SupMR pipeline
	PhaseSpill   // budget-triggered container drains (internal/spill)
	PhaseMemo    // memo-cache lookups, per-chunk drains and publishes (internal/memo)
	PhaseShuffle // framed inter-node run exchange over netsim links (internal/shuffle)
	PhaseReduce
	PhaseRunSort // per-run sorting (radix or comparison) feeding the merge
	PhaseMerge
	PhaseEgress // parallel output materialization across the IO lanes (internal/egress)
	PhaseCleanup
	numPhases
)

// String returns the lowercase phase name used in reports.
func (p Phase) String() string {
	switch p {
	case PhaseSetup:
		return "setup"
	case PhaseRead:
		return "read"
	case PhaseMap:
		return "map"
	case PhaseReadMap:
		return "read+map"
	case PhaseSpill:
		return "spill"
	case PhaseMemo:
		return "memo"
	case PhaseShuffle:
		return "shuffle"
	case PhaseReduce:
		return "reduce"
	case PhaseRunSort:
		return "runsort"
	case PhaseMerge:
		return "merge"
	case PhaseEgress:
		return "egress"
	case PhaseCleanup:
		return "cleanup"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// PhaseTimes records wall-clock duration per phase plus the job total,
// the row format of Table II.
type PhaseTimes struct {
	durs  [numPhases]time.Duration
	Total time.Duration
}

// Set stores the duration for phase p.
func (t *PhaseTimes) Set(p Phase, d time.Duration) { t.durs[p] = d }

// Add accumulates d into phase p (SupMR rounds add into read+map).
func (t *PhaseTimes) Add(p Phase, d time.Duration) { t.durs[p] += d }

// Get returns the duration recorded for phase p.
func (t PhaseTimes) Get(p Phase) time.Duration { return t.durs[p] }

// String formats the row like the paper's table: total then phases.
func (t PhaseTimes) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%v", t.Total.Round(time.Millisecond))
	for p := PhaseRead; p < numPhases; p++ {
		if d := t.durs[p]; d > 0 {
			fmt.Fprintf(&b, " %s=%v", p, d.Round(time.Millisecond))
		}
	}
	return b.String()
}

// Timer measures phases against a monotonic now() function so both real
// and simulated runs share one code path.
type Timer struct {
	now     func() time.Duration
	mu      sync.Mutex
	marks   map[Phase]time.Duration
	times   PhaseTimes
	start   time.Duration
	markers *MarkerLog // optional phase-boundary annotations

	// Allocation metering (WithAllocs): cumulative MemStats counters are
	// sampled at each phase boundary and the deltas attributed to the
	// enclosing phase.
	allocs     *PhaseAllocs
	allocMarks map[Phase]AllocStats
}

// NewTimer creates a Timer reading time from now.
func NewTimer(now func() time.Duration) *Timer {
	t := &Timer{now: now, marks: make(map[Phase]time.Duration)}
	t.start = now()
	return t
}

// WithAllocs enables per-phase allocation metering: StartPhase/EndPhase
// additionally sample runtime.ReadMemStats and attribute the deltas to
// the phase. Process-wide and approximate; see AllocStats. Returns t
// for chaining.
func (t *Timer) WithAllocs() *Timer {
	t.mu.Lock()
	if t.allocs == nil {
		t.allocs = &PhaseAllocs{}
		t.allocMarks = make(map[Phase]AllocStats)
	}
	t.mu.Unlock()
	return t
}

// Allocs returns the per-phase allocation deltas accumulated so far
// (zero-valued unless WithAllocs was called).
func (t *Timer) Allocs() PhaseAllocs {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.allocs == nil {
		return PhaseAllocs{}
	}
	return *t.allocs
}

// StartPhase marks the beginning of phase p.
func (t *Timer) StartPhase(p Phase) {
	at := t.now()
	t.mu.Lock()
	t.marks[p] = at
	if t.allocs != nil {
		t.allocMarks[p] = readAllocCounters()
	}
	if t.markers != nil {
		t.markers.Add(at, markerLabel(p, "start"))
	}
	t.mu.Unlock()
}

// EndPhase accumulates the elapsed time since the matching StartPhase.
// Phases may start and end repeatedly (SupMR's pipelined rounds); the
// durations add up.
func (t *Timer) EndPhase(p Phase) {
	t.mu.Lock()
	defer t.mu.Unlock()
	start, ok := t.marks[p]
	if !ok {
		return
	}
	delete(t.marks, p)
	at := t.now()
	if t.allocs != nil {
		if base, ok := t.allocMarks[p]; ok {
			delete(t.allocMarks, p)
			cur := readAllocCounters()
			t.allocs.add(p, AllocStats{
				Objects: cur.Objects - base.Objects,
				Bytes:   cur.Bytes - base.Bytes,
			})
		}
	}
	if t.markers != nil {
		t.markers.Add(at, markerLabel(p, "end"))
	}
	t.times.Add(p, at-start)
}

// Finish stamps the job total and returns the accumulated times.
func (t *Timer) Finish() PhaseTimes {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.times.Total = t.now() - t.start
	return t.times
}

// Table2Row holds one labelled row of a Table II style report.
type Table2Row struct {
	Label  string // chunk size: "none", "1GB", "50GB", ...
	Times  PhaseTimes
	Fused  bool // read+map fused (SupMR) vs separate (baseline)
	Merged bool // p-way merge used
}

// FormatTable2 renders rows in the layout of the paper's Table II.
func FormatTable2(title string, rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %12s\n", "chunk", "total", "read", "map", "reduce", "merge")
	for _, r := range rows {
		read := r.Times.Get(PhaseRead)
		mp := r.Times.Get(PhaseMap)
		if r.Fused {
			// The paper prints the fused read+map duration spanning the
			// read and map columns; render it in read with map marked.
			read = r.Times.Get(PhaseReadMap)
		}
		mapCell := fmtDur(mp)
		if r.Fused {
			mapCell = "(fused)"
		}
		fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %12s\n",
			r.Label,
			fmtDur(r.Times.Total),
			fmtDur(read),
			mapCell,
			fmtDur(r.Times.Get(PhaseReduce)),
			// Table II's merge column covers the whole merge phase,
			// which internally splits into run-sort + merge proper.
			fmtDur(r.Times.Get(PhaseMerge)+r.Times.Get(PhaseRunSort)),
		)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// Speedup returns a/b as a speedup factor (how many times faster b is
// than a), guarding against division by zero.
func Speedup(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// SortedPhases lists the phases that have non-zero time in t, in
// execution order — convenient for report generation.
func SortedPhases(t PhaseTimes) []Phase {
	var ps []Phase
	for p := PhaseSetup; p < numPhases; p++ {
		if t.Get(p) > 0 {
			ps = append(ps, p)
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}
