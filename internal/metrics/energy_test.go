package metrics

import (
	"testing"
	"time"
)

func flatTrace(user, sys, iowait float64, buckets int) *Trace {
	tr := &Trace{Bucket: time.Second, Samples: make([]Sample, buckets)}
	for i := range tr.Samples {
		tr.Samples[i] = Sample{T: time.Duration(i) * time.Second, User: user, Sys: sys, IOWait: iowait}
	}
	return tr
}

func TestEnergyIdleMachine(t *testing.T) {
	m := PowerModel{IdleWatts: 4, BusyWatts: 13, IOWatts: 4.5}
	rep := m.Energy(flatTrace(0, 0, 0, 10), 32)
	// 32 contexts * 4 W * 10 s = 1280 J.
	if rep.Joules < 1279 || rep.Joules > 1281 {
		t.Errorf("idle energy = %.1f J, want 1280", rep.Joules)
	}
	if rep.AvgWatts < 127 || rep.AvgWatts > 129 {
		t.Errorf("idle power = %.1f W, want 128", rep.AvgWatts)
	}
}

func TestEnergyBusyMachine(t *testing.T) {
	m := PowerModel{IdleWatts: 4, BusyWatts: 13, IOWatts: 4.5}
	rep := m.Energy(flatTrace(100, 0, 0, 10), 32)
	// 32 * 13 * 10 = 4160 J.
	if rep.Joules < 4159 || rep.Joules > 4161 {
		t.Errorf("busy energy = %.1f J, want 4160", rep.Joules)
	}
	if rep.PeakWatts < 415 || rep.PeakWatts > 417 {
		t.Errorf("peak = %.1f W, want 416", rep.PeakWatts)
	}
}

func TestEnergyMixedStates(t *testing.T) {
	m := PowerModel{IdleWatts: 2, BusyWatts: 10, IOWatts: 4}
	// 50% user, 25% iowait, 25% idle on 4 contexts for 1 s:
	// 4 * (0.5*10 + 0.25*4 + 0.25*2) = 4 * 6.5 = 26 J.
	rep := m.Energy(flatTrace(50, 0, 25, 1), 4)
	if rep.Joules < 25.9 || rep.Joules > 26.1 {
		t.Errorf("mixed energy = %.2f J, want 26", rep.Joules)
	}
}

func TestEnergyHighUtilizationCostsMore(t *testing.T) {
	// The §VI-C trade-off: a faster, hotter run can still lose on
	// average power even if it wins on energy-delay.
	m := DefaultPowerModel()
	hot := m.Energy(flatTrace(95, 5, 0, 8), 32)    // dense-spike regime, 8 s
	cool := m.Energy(flatTrace(20, 5, 10, 10), 32) // sparse-spike regime, 10 s
	if hot.AvgWatts <= cool.AvgWatts {
		t.Errorf("hot run %f W should exceed cool run %f W", hot.AvgWatts, cool.AvgWatts)
	}
	if hot.EnergyDelay() <= 0 || cool.EnergyDelay() <= 0 {
		t.Error("energy-delay must be positive")
	}
}

func TestEnergyZeroContexts(t *testing.T) {
	rep := DefaultPowerModel().Energy(flatTrace(50, 0, 0, 1), 0)
	if rep.Joules <= 0 {
		t.Error("zero contexts should normalize to 1, not produce 0 energy")
	}
}

func TestEnergyOvercommittedClamped(t *testing.T) {
	// user+iowait > 100% (possible with fractional accounting): idle
	// fraction clamps at 0 rather than going negative.
	m := PowerModel{IdleWatts: 100, BusyWatts: 1, IOWatts: 1}
	rep := m.Energy(flatTrace(80, 0, 40, 1), 1)
	// If idle went negative, the huge IdleWatts would make energy
	// negative or wild; clamped it stays ~1.2 J.
	if rep.Joules < 0 || rep.Joules > 2 {
		t.Errorf("overcommitted energy = %.2f J", rep.Joules)
	}
}
