package metrics

import "fmt"

// FaultStats summarizes the fault-injection layer's activity for one
// run: how many errors were injected (split into transient and
// permanent), how many degraded-service events fired (short reads,
// latency spikes), and what the retry policy did about it. Zero when no
// fault plan was configured.
type FaultStats struct {
	Injected      int64 // error faults injected (read + write)
	Transient     int64 // injected errors marked retryable
	Permanent     int64 // injected errors marked non-retryable
	ShortReads    int64 // reads truncated to a prefix (no error)
	LatencySpikes int64 // extra service delays injected
	Retried       int64 // retry attempts issued by the retry policy
	Recovered     int64 // operations that succeeded after >=1 retry
}

// Any reports whether anything at all was injected or retried.
func (s FaultStats) Any() bool { return s != (FaultStats{}) }

// String renders the counters the way the CLI prints them.
func (s FaultStats) String() string {
	return fmt.Sprintf("injected=%d (transient=%d permanent=%d) short-reads=%d latency-spikes=%d retried=%d recovered=%d",
		s.Injected, s.Transient, s.Permanent, s.ShortReads, s.LatencySpikes, s.Retried, s.Recovered)
}
