// Package tuner implements the chunk-size selection the paper leaves as
// future work (§III-A2, §VIII): "the best approach ... is to design
// components that factor in the expected performance and the workload
// characteristics (i.e. a feedback loop)".
//
// Two pieces:
//
//   - Recommend: a static advisor that picks an initial ingest chunk
//     size from what is known up front (device bandwidth, expected map
//     rate, input size, per-round overhead) following the paper's own
//     guidance — compute-bound jobs want larger chunks (fewer rounds,
//     less thread overhead), disk-bound jobs want smaller chunks (finer
//     overlap, higher utilization).
//
//   - Controller: a per-round feedback loop. The SupMR pipeline reports
//     each round's observed ingest and map durations; the controller
//     nudges the next chunk size so that per-round fixed overhead stays
//     a small fraction of the round while keeping enough rounds for the
//     pipeline to overlap.
package tuner

import (
	"time"
)

// Limits bound chunk sizes chosen by the advisor and the controller.
type Limits struct {
	Min int64 // never chunk below this (default 64 KiB)
	Max int64 // never chunk above this (default input/2 when known)
}

func (l Limits) withDefaults() Limits {
	if l.Min <= 0 {
		l.Min = 64 << 10
	}
	if l.Max <= 0 {
		l.Max = 1 << 40
	}
	if l.Max < l.Min {
		l.Max = l.Min
	}
	return l
}

func (l Limits) clamp(v int64) int64 {
	if v < l.Min {
		return l.Min
	}
	if v > l.Max {
		return l.Max
	}
	return v
}

// Recommend picks an initial chunk size.
//
//   - ingestBW: device read bandwidth, bytes/sec.
//   - mapRate: aggregate map throughput, bytes/sec (0 = unknown, assume
//     disk-bound).
//   - total: input size in bytes (0 = unknown).
//   - roundOverhead: fixed per-round cost (thread create/destroy,
//     synchronization).
//
// The rule: the chunk must be large enough that roundOverhead is at
// most ~5% of the chunk's ingest time (otherwise thread overheads
// dominate, the paper's §VI-C caveat), and small enough that the job
// runs at least ~16 rounds so ingest and map genuinely pipeline. When
// the job is compute-bound (map slower than ingest), rounds are paced
// by map time, so the overhead bound uses the map rate instead.
func Recommend(ingestBW, mapRate float64, total int64, roundOverhead time.Duration, lim Limits) int64 {
	lim = lim.withDefaults()
	if ingestBW <= 0 {
		ingestBW = 1 << 30
	}
	pace := ingestBW
	if mapRate > 0 && mapRate < ingestBW {
		// Compute-bound: rounds take map time; prefer larger chunks.
		pace = mapRate
	}
	// Overhead bound: chunk/pace >= 20 * overhead.
	minBytes := int64(20 * roundOverhead.Seconds() * pace)
	if minBytes < lim.Min {
		minBytes = lim.Min
	}
	chunk := minBytes
	if total > 0 {
		// Round-count bound: at least ~16 rounds when the input allows.
		byRounds := total / 16
		if byRounds > chunk {
			chunk = byRounds
		}
		if half := total / 2; chunk > half && half >= lim.Min {
			chunk = half
		}
	} else {
		// Unknown input size: a few MB balances both concerns.
		if chunk < 4<<20 {
			chunk = 4 << 20
		}
	}
	return lim.clamp(chunk)
}

// Controller adapts the chunk size round by round. It watches two
// signals:
//
//   - round efficiency: overlap(ingest, map) / roundTime. When the two
//     halves are badly unbalanced the round wastes pipeline capacity;
//     shrinking chunks improves utilization granularity (Fig. 5b vs 5c).
//   - overhead fraction: estimated fixed cost per round vs round time.
//     When rounds get too short the fixed cost dominates and chunks
//     must grow (the paper's thread-overhead caveat).
//
// Adjustments are multiplicative and smoothed so one noisy round cannot
// swing the size.
type Controller struct {
	lim      Limits
	overhead time.Duration
	cur      int64
	// smoothing state
	ewmaIngest float64 // seconds
	ewmaMap    float64 // seconds
	rounds     int
}

// ControllerConfig configures a Controller.
type ControllerConfig struct {
	Initial  int64         // starting chunk size (required)
	Limits   Limits        // bounds
	Overhead time.Duration // estimated fixed per-round cost (default 2ms)
}

// NewController builds the feedback controller.
func NewController(cfg ControllerConfig) *Controller {
	lim := cfg.Limits.withDefaults()
	if cfg.Initial <= 0 {
		cfg.Initial = lim.Min
	}
	if cfg.Overhead <= 0 {
		cfg.Overhead = 2 * time.Millisecond
	}
	return &Controller{lim: lim, overhead: cfg.Overhead, cur: lim.clamp(cfg.Initial)}
}

// Current returns the chunk size the controller currently recommends.
func (c *Controller) Current() int64 { return c.cur }

// Rounds returns how many observations the controller has folded in.
func (c *Controller) Rounds() int { return c.rounds }

// ewma smoothing factor: recent rounds weigh ~1/3.
const alpha = 0.35

// Next folds in one round's observation — the chunk size that was
// ingested and the wall-clock durations of the round's ingest and map
// halves — and returns the chunk size to use for the next round.
func (c *Controller) Next(chunkBytes int64, ingest, mapT time.Duration) int64 {
	c.rounds++
	if chunkBytes <= 0 {
		return c.cur
	}
	// Normalize observations to the *current* chunk size so a pending
	// size change does not confuse the ratios.
	scale := float64(c.cur) / float64(chunkBytes)
	ing := ingest.Seconds() * scale
	mp := mapT.Seconds() * scale
	if c.rounds == 1 {
		c.ewmaIngest, c.ewmaMap = ing, mp
	} else {
		c.ewmaIngest = alpha*ing + (1-alpha)*c.ewmaIngest
		c.ewmaMap = alpha*mp + (1-alpha)*c.ewmaMap
	}

	round := c.ewmaIngest
	if c.ewmaMap > round {
		round = c.ewmaMap
	}
	if round <= 0 {
		return c.cur
	}

	next := float64(c.cur)
	switch {
	case c.overhead.Seconds() > 0.05*round:
		// Rounds too short: fixed cost dominates — grow so overhead
		// falls to ~2.5% of the round.
		next = float64(c.cur) * (c.overhead.Seconds() / 0.025) / round
	case c.overhead.Seconds() < 0.01*round:
		// Plenty of headroom: shrink toward finer-grained overlap (the
		// small-chunk regime of Fig. 5b), but gently.
		next = float64(c.cur) * 0.8
	}
	c.cur = c.lim.clamp(int64(next))
	return c.cur
}

// Balance reports the smoothed map:ingest time ratio (>1 means
// compute-bound rounds). Diagnostic for reports and tests.
func (c *Controller) Balance() float64 {
	if c.ewmaIngest <= 0 {
		return 0
	}
	return c.ewmaMap / c.ewmaIngest
}
