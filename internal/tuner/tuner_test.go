package tuner

import (
	"testing"
	"time"
)

func TestRecommendDiskBound(t *testing.T) {
	// Disk-bound (map much faster than disk): chunk paced by disk; with
	// a large input, the round-count bound dominates.
	got := Recommend(100e6, 2e9, 16<<30, 10*time.Millisecond, Limits{})
	if got != 1<<30 {
		t.Errorf("disk-bound chunk = %d, want input/16 = %d", got, int64(1)<<30)
	}
}

func TestRecommendOverheadFloor(t *testing.T) {
	// Small input: the overhead bound sets the floor: 20 * 10ms * 100MB/s
	// = 20 MB.
	got := Recommend(100e6, 0, 64<<20, 10*time.Millisecond, Limits{})
	want := int64(20 * 0.01 * 100e6)
	if got != want {
		t.Errorf("overhead floor = %d, want %d", got, want)
	}
}

func TestRecommendComputeBound(t *testing.T) {
	// Compute-bound job (map slower than disk): rounds paced by map, so
	// the overhead floor uses the map rate — chunks come out smaller
	// than the disk-paced floor would be, but never below the bound.
	diskBound := Recommend(400e6, 0, 1<<30, 10*time.Millisecond, Limits{})
	computeBound := Recommend(400e6, 50e6, 1<<30, 10*time.Millisecond, Limits{})
	if computeBound >= diskBound {
		t.Errorf("compute-bound chunk %d should be below disk-paced floor %d", computeBound, diskBound)
	}
}

func TestRecommendHalfInputCap(t *testing.T) {
	// The chunk never exceeds half the input (pipelining needs >= 2).
	got := Recommend(1e9, 0, 1<<20, time.Second, Limits{})
	if got > 1<<19 {
		t.Errorf("chunk %d exceeds half of the 1 MiB input", got)
	}
}

func TestRecommendUnknownInput(t *testing.T) {
	got := Recommend(100e6, 0, 0, time.Millisecond, Limits{})
	if got < 4<<20 {
		t.Errorf("unknown-input chunk = %d, want >= 4 MiB", got)
	}
}

func TestRecommendRespectsLimits(t *testing.T) {
	lim := Limits{Min: 1 << 20, Max: 2 << 20}
	if got := Recommend(1e3, 0, 1<<30, 0, lim); got < lim.Min || got > lim.Max {
		t.Errorf("chunk %d outside [%d, %d]", got, lim.Min, lim.Max)
	}
}

func TestControllerGrowsWhenOverheadDominates(t *testing.T) {
	c := NewController(ControllerConfig{
		Initial:  64 << 10,
		Overhead: 5 * time.Millisecond,
		Limits:   Limits{Min: 64 << 10, Max: 1 << 30},
	})
	// Rounds of 10ms: overhead is 50% of the round — way above 5%.
	var last int64
	for i := 0; i < 10; i++ {
		last = c.Next(c.Current(), 10*time.Millisecond, 2*time.Millisecond)
	}
	if last <= 64<<10 {
		t.Errorf("controller did not grow chunks under overhead pressure: %d", last)
	}
}

func TestControllerShrinksWithHeadroom(t *testing.T) {
	c := NewController(ControllerConfig{
		Initial:  64 << 20,
		Overhead: time.Millisecond,
		Limits:   Limits{Min: 64 << 10, Max: 1 << 30},
	})
	// Rounds of 2s: overhead is 0.05% — lots of headroom, shrink toward
	// finer-grained overlap.
	var last int64
	for i := 0; i < 10; i++ {
		last = c.Next(c.Current(), 2*time.Second, time.Second)
	}
	if last >= 64<<20 {
		t.Errorf("controller did not shrink chunks with headroom: %d", last)
	}
	if last < 64<<10 {
		t.Errorf("controller violated the minimum: %d", last)
	}
}

func TestControllerConverges(t *testing.T) {
	// With round time proportional to chunk size, the controller should
	// settle into a band where overhead is 1-5% of the round, and stay.
	const bw = 100e6 // bytes/sec "ingest"
	overhead := 2 * time.Millisecond
	c := NewController(ControllerConfig{
		Initial:  512 << 10,
		Overhead: overhead,
		Limits:   Limits{Min: 16 << 10, Max: 1 << 30},
	})
	cur := c.Current()
	for i := 0; i < 60; i++ {
		ingest := time.Duration(float64(cur) / bw * float64(time.Second))
		cur = c.Next(cur, ingest, ingest/3)
	}
	round := float64(cur) / bw
	frac := overhead.Seconds() / round
	if frac < 0.005 || frac > 0.08 {
		t.Errorf("converged overhead fraction %.3f outside [0.005, 0.08] (chunk %d)", frac, cur)
	}
	if c.Rounds() != 60 {
		t.Errorf("rounds = %d", c.Rounds())
	}
}

func TestControllerBalance(t *testing.T) {
	c := NewController(ControllerConfig{Initial: 1 << 20})
	c.Next(1<<20, 100*time.Millisecond, 200*time.Millisecond)
	if b := c.Balance(); b < 1.9 || b > 2.1 {
		t.Errorf("balance = %.2f, want ~2 (map twice as long as ingest)", b)
	}
}

func TestControllerIgnoresBadObservations(t *testing.T) {
	c := NewController(ControllerConfig{Initial: 1 << 20})
	before := c.Current()
	if got := c.Next(0, time.Second, time.Second); got != before {
		t.Errorf("zero-size observation changed the chunk: %d", got)
	}
	if got := c.Next(1<<20, 0, 0); got < 0 {
		t.Errorf("zero-duration observation produced %d", got)
	}
}

func TestControllerDefaults(t *testing.T) {
	c := NewController(ControllerConfig{})
	if c.Current() != 64<<10 {
		t.Errorf("default initial = %d, want the default Min", c.Current())
	}
	if c.Balance() != 0 {
		t.Error("balance before observations should be 0")
	}
}

func TestLimitsClamp(t *testing.T) {
	l := Limits{Min: 10, Max: 20}
	if l.clamp(5) != 10 || l.clamp(25) != 20 || l.clamp(15) != 15 {
		t.Error("clamp wrong")
	}
	// Max < Min normalizes.
	bad := Limits{Min: 100, Max: 5}.withDefaults()
	if bad.Max < bad.Min {
		t.Error("withDefaults did not normalize inverted limits")
	}
}
