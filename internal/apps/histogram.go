package apps

import (
	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/kv"
)

// Histogram counts byte-value frequencies over the raw input — the
// classic Phoenix benchmark for the array container: the key universe is
// tiny (256), dense, and known in advance, so a flat array beats any
// hash table.
type Histogram struct{}

var _ kv.App[int, int64] = Histogram{}
var _ kv.Combiner[int64] = Histogram{}

// Map emits (byteValue, 1) for every input byte.
func (Histogram) Map(split []byte, emit kv.Emitter[int, int64]) {
	// Count locally in a stack array first; emitting 1 per byte would
	// swamp any container. This mirrors Phoenix++ combiner objects.
	var counts [256]int64
	for _, b := range split {
		counts[b]++
	}
	for v, c := range counts {
		if c > 0 {
			emit.Emit(v, c)
		}
	}
}

// Reduce sums partial counts.
func (Histogram) Reduce(_ int, vs []int64) int64 {
	var sum int64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// Combine folds two partial counts.
func (Histogram) Combine(a, b int64) int64 { return a + b }

// Less orders byte values numerically.
func (Histogram) Less(a, b int) bool { return a < b }

// FixedKey opts into the radix/columnar sort fast path: bucket ids are
// ints, 8 big-endian sign-flipped bytes.
func (Histogram) FixedKey() kv.FixedKeyCodec[int] { return kv.IntFixedKey() }

// Boundary: any cut point is valid for per-byte work, but use newline so
// chunk splitting remains well-formed for text inputs.
func (Histogram) Boundary() chunk.Boundary { return chunk.NewlineBoundary{} }

// NewContainer returns the array container over the byte universe.
func (h Histogram) NewContainer(stripes int) container.Container[int, int64] {
	return container.NewArray[int64](256, stripes, h.Combine)
}
