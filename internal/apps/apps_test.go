package apps

import (
	"sort"
	"strings"
	"testing"

	"supmr/internal/chunk"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
	"supmr/internal/metrics"
	"supmr/internal/storage"
	"supmr/internal/workload"
)

// collectEmits runs Map and returns the emitted pairs.
func collectEmits[K comparable, V any](app kv.App[K, V], split []byte) []kv.Pair[K, V] {
	var out []kv.Pair[K, V]
	app.Map(split, kv.EmitFunc[K, V](func(k K, v V) {
		out = append(out, kv.Pair[K, V]{Key: k, Val: v})
	}))
	return out
}

func TestWordCountMap(t *testing.T) {
	got := collectEmits[string, int64](WordCount{}, []byte("a b a\nc a\n"))
	counts := make(map[string]int64)
	for _, p := range got {
		counts[p.Key] += p.Val
	}
	if counts["a"] != 3 || counts["b"] != 1 || counts["c"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestWordCountReduceAndCombine(t *testing.T) {
	wc := WordCount{}
	if wc.Reduce("x", []int64{1, 2, 3}) != 6 {
		t.Error("Reduce sum wrong")
	}
	if wc.Combine(4, 5) != 9 {
		t.Error("Combine wrong")
	}
	if !wc.Less("a", "b") || wc.Less("b", "a") {
		t.Error("Less wrong")
	}
	if _, ok := wc.Boundary().(chunk.NewlineBoundary); !ok {
		t.Error("word count boundary should be newline")
	}
}

func TestSortMapExtractsKeys(t *testing.T) {
	data := make([]byte, 5*workload.TeraRecordSize)
	workload.TeraGen{Seed: 4}.Fill()(0, data)
	got := collectEmits[string, uint64](Sort{}, data)
	if len(got) != 5 {
		t.Fatalf("emitted %d pairs, want 5", len(got))
	}
	for _, p := range got {
		if len(p.Key) != workload.TeraKeySize {
			t.Errorf("key %q wrong length", p.Key)
		}
	}
}

func TestSortMapTruncatesPartialRecord(t *testing.T) {
	data := make([]byte, 2*workload.TeraRecordSize+37)
	workload.TeraGen{Seed: 4}.Fill()(0, data)
	got := collectEmits[string, uint64](Sort{}, data)
	if len(got) != 2 {
		t.Errorf("emitted %d pairs from partial buffer, want 2", len(got))
	}
}

func TestSortReduceIdentity(t *testing.T) {
	s := Sort{}
	if s.Reduce("k", []uint64{42}) != 42 {
		t.Error("Reduce should pass the single value through")
	}
	if s.Reduce("k", nil) != 0 {
		t.Error("Reduce of empty values should be 0")
	}
	if _, ok := s.Boundary().(chunk.CRLFBoundary); !ok {
		t.Error("sort boundary should be CRLF")
	}
}

func TestHistogramCountsBytes(t *testing.T) {
	h := Histogram{}
	got := collectEmits[int, int64](h, []byte{0, 0, 1, 255, 255, 255})
	counts := make(map[int]int64)
	for _, p := range got {
		counts[p.Key] += p.Val
	}
	if counts[0] != 2 || counts[1] != 1 || counts[255] != 3 {
		t.Errorf("counts = %v", counts)
	}
	cont := h.NewContainer(4)
	if cont.Partitions() != 4 {
		t.Errorf("histogram container partitions = %d", cont.Partitions())
	}
}

func TestInvertedIndex(t *testing.T) {
	ix := &InvertedIndex{}
	ix.SetData(&chunk.Chunk{Files: []string{"doc1"}})
	got := collectEmits[string, []string](ix, []byte("alpha beta alpha\n"))
	// Deduplicated per split: alpha once, beta once.
	if len(got) != 2 {
		t.Fatalf("emitted %d postings, want 2", len(got))
	}
	for _, p := range got {
		if len(p.Val) != 1 || p.Val[0] != "doc1" {
			t.Errorf("posting = %+v", p)
		}
	}
	// Reduce merges, dedups and sorts.
	merged := ix.Reduce("w", [][]string{{"b", "a"}, {"a", "c"}})
	if !sort.StringsAreSorted(merged) || len(merged) != 3 {
		t.Errorf("Reduce = %v", merged)
	}
	// Without SetData, words attribute to a placeholder.
	ix2 := &InvertedIndex{}
	got2 := collectEmits[string, []string](ix2, []byte("x\n"))
	if len(got2) != 1 || got2[0].Val[0] != "<input>" {
		t.Errorf("placeholder posting = %+v", got2)
	}
}

func TestOpenMPSortSortsEverything(t *testing.T) {
	const records = 2000
	data := make([]byte, records*workload.TeraRecordSize)
	workload.TeraGen{Seed: 6}.Fill()(0, data)
	f := storage.BytesFile("in", data, storage.NewNullDevice(storage.NewFakeClock()))
	inter, err := chunk.NewInterFile(f, int64(len(data))+1, chunk.CRLFBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := OpenMPSort(chunk.NewWholeInput(inter), 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != records {
		t.Fatalf("sorted %d of %d records", len(res.Pairs), records)
	}
	less := kv.Less[string](func(a, b string) bool { return a < b })
	if !kv.IsSortedPairs(res.Pairs, less) {
		t.Error("OpenMP sort output unsorted")
	}
	// Phases: read, map (parse), merge (sort) recorded; no reduce.
	if res.Times.Get(metrics.PhaseMap) <= 0 || res.Times.Get(metrics.PhaseMerge) <= 0 {
		t.Errorf("phase times = %s", res.Times.String())
	}
}

func TestOpenMPMatchesMapReduceSort(t *testing.T) {
	const records = 1500
	data := make([]byte, records*workload.TeraRecordSize)
	workload.TeraGen{Seed: 8}.Fill()(0, data)

	mk := func() chunk.Stream {
		f := storage.BytesFile("in", data, storage.NewNullDevice(storage.NewFakeClock()))
		inter, err := chunk.NewInterFile(f, int64(len(data))+1, chunk.CRLFBoundary{})
		if err != nil {
			t.Fatal(err)
		}
		return chunk.NewWholeInput(inter)
	}
	omp, err := OpenMPSort(mk(), 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := Sort{}
	mr, err := mapreduce.Run[string, uint64](s, mk(), s.NewContainer(),
		mapreduce.Options{Workers: 2, Boundary: chunk.CRLFBoundary{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(omp.Pairs) != len(mr.Pairs) {
		t.Fatalf("sizes differ: omp=%d mr=%d", len(omp.Pairs), len(mr.Pairs))
	}
	for i := range omp.Pairs {
		if omp.Pairs[i].Key != mr.Pairs[i].Key {
			t.Fatalf("outputs diverge at %d: %q vs %q", i, omp.Pairs[i].Key, mr.Pairs[i].Key)
		}
	}
}

func TestAppsAgainstBothContainers(t *testing.T) {
	// Sort through the hash container (the wrong-but-valid choice of
	// §V-B) must still produce correct sorted output.
	const records = 500
	data := make([]byte, records*workload.TeraRecordSize)
	workload.TeraGen{Seed: 9}.Fill()(0, data)
	f := storage.BytesFile("in", data, storage.NewNullDevice(storage.NewFakeClock()))
	inter, err := chunk.NewInterFile(f, int64(len(data))+1, chunk.CRLFBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	s := Sort{}
	res, err := mapreduce.Run[string, uint64](s, chunk.NewWholeInput(inter), s.NewHashContainer(16),
		mapreduce.Options{Workers: 2, Boundary: chunk.CRLFBoundary{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != records {
		t.Fatalf("hash-container sort produced %d records", len(res.Pairs))
	}
	less := kv.Less[string](func(a, b string) bool { return a < b })
	if !kv.IsSortedPairs(res.Pairs, less) {
		t.Error("hash-container sort output unsorted")
	}
}

func TestWordCountEndToEndSmall(t *testing.T) {
	text := "to be or not to be\n"
	wc := WordCount{}
	f := storage.BytesFile("in", []byte(text), storage.NewNullDevice(storage.NewFakeClock()))
	inter, err := chunk.NewInterFile(f, 1024, chunk.NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run[string, int64](wc, chunk.NewWholeInput(inter), wc.NewContainer(8),
		mapreduce.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, p := range res.Pairs {
		joined += p.Key + " "
	}
	for _, w := range []string{"be", "not", "or", "to"} {
		if !strings.Contains(joined, w) {
			t.Errorf("missing word %q in %q", w, joined)
		}
	}
}
