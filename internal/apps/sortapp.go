package apps

import (
	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/kv"
	"supmr/internal/workload"
)

// Sort is the terasort-style sort application: the input is fixed-width
// records terminated with \r\n, keys are effectively unique, and the
// large input set becomes an equally large intermediate set. Its map
// phase is trivial (extract the key) and its merge phase dominates —
// the opposite profile from word count, which is why the paper pairs
// them.
type Sort struct{}

var _ kv.App[string, uint64] = Sort{}

// Map parses whole records and emits (key, payload-fingerprint) pairs.
// Chunk boundary adjustment guarantees the split holds whole records.
func (Sort) Map(split []byte, emit kv.Emitter[string, uint64]) {
	// Tolerate a trailing partial record only at true end of input by
	// truncating to whole records; boundary adjustment makes this a
	// no-op in practice.
	whole := split[:len(split)-len(split)%workload.TeraRecordSize]
	_, _ = workload.ParseTeraRecords(whole, func(rec []byte) {
		emit.Emit(workload.KeyOf(rec), workload.Uint64Key(rec[workload.TeraKeySize:]))
	})
}

// Reduce passes the single value for a (unique) key through.
func (Sort) Reduce(_ string, vs []uint64) uint64 {
	if len(vs) == 0 {
		return 0
	}
	return vs[0]
}

// Less orders keys lexicographically (terasort order).
func (Sort) Less(a, b string) bool { return a < b }

// FixedKey opts into the radix/columnar sort fast path: terasort keys
// are exactly TeraKeySize raw bytes, already in lexicographic order.
func (Sort) FixedKey() kv.FixedKeyCodec[string] {
	return kv.StringFixedKey(workload.TeraKeySize)
}

// Boundary returns the \r\n record boundary of the sort input. The
// fixed record width would permit chunk.FixedBoundary too; CRLF matches
// the paper's description of the split function.
func (Sort) Boundary() chunk.Boundary { return chunk.CRLFBoundary{} }

// NewContainer returns Phoenix's unlocked storage (§V-B): sort has
// unique keys, so every mapper writes its own range with no
// synchronization and the hash container's key lookup and cell sweeps
// are avoided entirely.
func (Sort) NewContainer() container.Container[string, uint64] {
	return container.NewKeyRange[string, uint64](0)
}

// NewHashContainer returns the (deliberately wrong) default hash
// container for the container-choice ablation: unique keys make mappers
// pay a lookup per insert and reducers sweep cells with one key each.
func (Sort) NewHashContainer(shards int) container.Container[string, uint64] {
	return container.NewHash[string, uint64](shards, container.StringHasher, nil)
}
