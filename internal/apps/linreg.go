package apps

import (
	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/kv"
)

// LinearRegression is the Phoenix linear-regression benchmark: fit
// y = a·x + b over a stream of (x, y) points by accumulating the five
// sufficient statistics (Σx, Σy, Σxx, Σyy, Σxy) plus the count. The key
// universe is exactly six dense integer cells — the textbook case for
// the array container.
type LinearRegression struct{}

// Statistic cell indices (the array container's key universe).
const (
	StatN = iota
	StatSumX
	StatSumY
	StatSumXX
	StatSumYY
	StatSumXY
	numStats
)

var _ kv.App[int, float64] = LinearRegression{}
var _ kv.Combiner[float64] = LinearRegression{}

// Map parses points — each input record is two little-endian-ish byte
// pairs per Phoenix convention: consecutive (x, y) bytes — and folds
// them into local sums before emitting once per split.
func (LinearRegression) Map(split []byte, emit kv.Emitter[int, float64]) {
	var n, sx, sy, sxx, syy, sxy float64
	for i := 0; i+1 < len(split); i += 2 {
		x := float64(split[i])
		y := float64(split[i+1])
		n++
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	if n == 0 {
		return
	}
	emit.Emit(StatN, n)
	emit.Emit(StatSumX, sx)
	emit.Emit(StatSumY, sy)
	emit.Emit(StatSumXX, sxx)
	emit.Emit(StatSumYY, syy)
	emit.Emit(StatSumXY, sxy)
}

// Reduce sums partial statistics.
func (LinearRegression) Reduce(_ int, vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// Combine folds partial statistics.
func (LinearRegression) Combine(a, b float64) float64 { return a + b }

// Less orders statistic cells by index.
func (LinearRegression) Less(a, b int) bool { return a < b }

// FixedKey opts into the radix/columnar sort fast path: coefficient ids
// are ints, 8 big-endian sign-flipped bytes.
func (LinearRegression) FixedKey() kv.FixedKeyCodec[int] { return kv.IntFixedKey() }

// Boundary: points are 2-byte records.
func (LinearRegression) Boundary() chunk.Boundary { return chunk.FixedBoundary{Width: 2} }

// NewContainer returns the array container over the six cells.
func (l LinearRegression) NewContainer() container.Container[int, float64] {
	return container.NewArray[float64](numStats, 1, l.Combine)
}

// Fit solves for the slope and intercept from reduced statistics laid
// out as pairs (the job's sorted output).
func (LinearRegression) Fit(pairs []kv.Pair[int, float64]) (slope, intercept float64, ok bool) {
	var stats [numStats]float64
	for _, p := range pairs {
		if p.Key >= 0 && p.Key < numStats {
			stats[p.Key] = p.Val
		}
	}
	n := stats[StatN]
	if n < 2 {
		return 0, 0, false
	}
	denom := n*stats[StatSumXX] - stats[StatSumX]*stats[StatSumX]
	if denom == 0 {
		return 0, 0, false
	}
	slope = (n*stats[StatSumXY] - stats[StatSumX]*stats[StatSumY]) / denom
	intercept = (stats[StatSumY] - slope*stats[StatSumX]) / n
	return slope, intercept, true
}
