package apps

import (
	"bytes"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/kv"
)

// Grep is the Phoenix string-match benchmark: find lines containing a
// fixed pattern and count matches per pattern. Like word count it
// shrinks the input enormously (matches only), but its map phase is a
// pure scan — cheaper than tokenizing — so it sits between word count
// and sort on the map-intensity spectrum the paper's Conclusion 1 draws.
type Grep struct {
	// Patterns are the fixed strings to search for.
	Patterns []string
}

var _ kv.App[string, int64] = Grep{}
var _ kv.Combiner[int64] = Grep{}
var _ kv.BytesApp[int64] = Grep{}

// Map scans each line for each pattern, emitting (pattern, 1) per
// matching line.
func (g Grep) Map(split []byte, emit kv.Emitter[string, int64]) {
	pats := make([][]byte, len(g.Patterns))
	for i, p := range g.Patterns {
		pats[i] = []byte(p)
	}
	for len(split) > 0 {
		nl := bytes.IndexByte(split, '\n')
		var line []byte
		if nl < 0 {
			line, split = split, nil
		} else {
			line, split = split[:nl], split[nl+1:]
		}
		for i, p := range pats {
			if bytes.Contains(line, p) {
				emit.Emit(g.Patterns[i], 1)
			}
		}
	}
}

// MapBytes is the zero-allocation twin of Map: pattern keys are emitted
// as []byte, so matches avoid string handling entirely on the hot path.
func (g Grep) MapBytes(split []byte, emit kv.BytesEmitter[int64]) {
	pats := make([][]byte, len(g.Patterns))
	for i, p := range g.Patterns {
		pats[i] = []byte(p)
	}
	for len(split) > 0 {
		nl := bytes.IndexByte(split, '\n')
		var line []byte
		if nl < 0 {
			line, split = split, nil
		} else {
			line, split = split[:nl], split[nl+1:]
		}
		for _, p := range pats {
			if bytes.Contains(line, p) {
				emit.EmitBytes(p, 1)
			}
		}
	}
}

// Reduce sums match counts per pattern.
func (Grep) Reduce(_ string, vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}

// Combine folds partial counts.
func (Grep) Combine(a, b int64) int64 { return a + b }

// Less orders patterns lexicographically.
func (Grep) Less(a, b string) bool { return a < b }

// Boundary returns the newline record boundary.
func (Grep) Boundary() chunk.Boundary { return chunk.NewlineBoundary{} }

// NewContainer returns a small flat combining container (a handful of
// patterns).
func (g Grep) NewContainer() container.Container[string, int64] {
	return container.NewFlatHash[int64](8, g.Combine)
}

// NewMapContainer returns the previous map-backed combining container,
// kept for the -flatcombiner=off ablation and differential tests.
func (g Grep) NewMapContainer() container.Container[string, int64] {
	return container.NewHash[string, int64](8, container.StringHasher, g.Combine)
}
