package apps

import (
	"sort"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/kv"
	"supmr/internal/workload"
)

// InvertedIndex maps every word to the list of files containing it — the
// custom-application example for the public API and the exerciser of the
// hash container's no-combiner path (value lists are retained per key and
// merged in reduce, not folded at insert time).
//
// It implements core.ChunkAware (the set_data() callback of Table I): the
// runtime tells it which files the current ingest chunk coalesces, and
// Map attributes words to those files.
type InvertedIndex struct {
	// current chunk's file names; set by SetData before each map wave.
	files []string
}

var _ kv.App[string, []string] = (*InvertedIndex)(nil)

// SetData records the ingest chunk about to be mapped (set_data()).
func (ix *InvertedIndex) SetData(c *chunk.Chunk) { ix.files = c.Files }

// Map emits (word, files-of-current-chunk) postings.
func (ix *InvertedIndex) Map(split []byte, emit kv.Emitter[string, []string]) {
	files := ix.files
	if len(files) == 0 {
		files = []string{"<input>"}
	}
	seen := make(map[string]bool)
	workload.Tokenize(split, func(w []byte) {
		// Allocation-free lookup (the compiler elides the conversion);
		// a string is materialized only the first time a word appears
		// in this split.
		if seen[string(w)] {
			return
		}
		word := string(w)
		seen[word] = true
		emit.Emit(word, files)
	})
}

// Reduce merges posting lists, deduplicating and sorting file names.
func (ix *InvertedIndex) Reduce(_ string, vs [][]string) []string {
	set := make(map[string]bool)
	for _, files := range vs {
		for _, f := range files {
			set[f] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Less orders words lexicographically.
func (ix *InvertedIndex) Less(a, b string) bool { return a < b }

// Boundary returns newline for text input.
func (ix *InvertedIndex) Boundary() chunk.Boundary { return chunk.NewlineBoundary{} }

// NewContainer returns a hash container retaining all values per key
// (no combiner): posting-list merging happens in Reduce.
func (ix *InvertedIndex) NewContainer(shards int) container.Container[string, []string] {
	return container.NewHash[string, []string](shards, container.StringHasher, nil)
}
