package apps

import (
	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/kv"
)

// The two rounds of the MapReduce prefix-sum algorithm (Goodrich et
// al.'s simulation catalog): round 1 (PrefixPart) folds the input's
// self-indexed records into per-block partial sums; round 2
// (PrefixTotal) re-emits each block sum to every block at or after it,
// so the combiner accumulates prefix[b'] = Σ_{b ≤ b'} S_b. Both rounds
// are order-independent sums, so the result is insensitive to
// chunking, lane count and node routing — and round 2 consumes round
// 1's egressed "block\tsum" lines directly, which is what makes the
// pair the canonical 2-round DAG example (internal/dag).

// PrefixPart is round 1: block partial sums over 16-byte self-indexed
// records "iiiiiii vvvvvvv\n" (workload.SeqGen).
type PrefixPart struct {
	// Block is the number of records per block (must be positive).
	Block int64
}

var _ kv.App[int, int64] = PrefixPart{}
var _ kv.Combiner[int64] = PrefixPart{}

// Map parses each record and emits (index/Block, value).
func (a PrefixPart) Map(split []byte, emit kv.Emitter[int, int64]) {
	block := a.Block
	if block <= 0 {
		block = 1
	}
	forEachLine(split, func(line []byte) {
		// "iiiiiii vvvvvvv": index and value, 7 digits each.
		if len(line) != 15 || line[7] != ' ' {
			return
		}
		idx, ok := parseDigits(line[:7])
		if !ok {
			return
		}
		val, ok := parseDigits(line[8:])
		if !ok {
			return
		}
		emit.Emit(int(idx/block), val)
	})
}

// Reduce sums the block's partial values.
func (PrefixPart) Reduce(_ int, vs []int64) int64 { return sumInt64(vs) }

// Combine folds partial block sums.
func (PrefixPart) Combine(a, b int64) int64 { return a + b }

// Less orders block ids numerically.
func (PrefixPart) Less(a, b int) bool { return a < b }

// FixedKey opts block ids into the radix/columnar sort fast path.
func (PrefixPart) FixedKey() kv.FixedKeyCodec[int] { return kv.IntFixedKey() }

// Boundary: records are newline-terminated (and fixed-width).
func (PrefixPart) Boundary() chunk.Boundary { return chunk.NewlineBoundary{} }

// NewContainer returns a combining hash container over block ids.
func (a PrefixPart) NewContainer(shards int) container.Container[int, int64] {
	return container.NewHash[int, int64](shards, container.IntHasher, a.Combine)
}

// PrefixTotal is round 2: each "block\tsum" line of round 1's egressed
// output re-emits its sum to every block at or after it; the combiner
// accumulates the running prefix totals.
type PrefixTotal struct {
	// Blocks is the total block count of the round-1 output (must be
	// positive): the emission upper bound.
	Blocks int64
}

var _ kv.App[int, int64] = PrefixTotal{}
var _ kv.Combiner[int64] = PrefixTotal{}

// Map parses "block\tsum" lines and emits (b', sum) for every
// b' ∈ [block, Blocks).
func (a PrefixTotal) Map(split []byte, emit kv.Emitter[int, int64]) {
	forEachLine(split, func(line []byte) {
		tab := -1
		for i, c := range line {
			if c == '\t' {
				tab = i
				break
			}
		}
		if tab <= 0 {
			return
		}
		b, ok := parseDigits(line[:tab])
		if !ok || b >= a.Blocks {
			return
		}
		s, ok := parseDigits(line[tab+1:])
		if !ok {
			return
		}
		for dst := b; dst < a.Blocks; dst++ {
			emit.Emit(int(dst), s)
		}
	})
}

// Reduce sums the contributions reaching one block.
func (PrefixTotal) Reduce(_ int, vs []int64) int64 { return sumInt64(vs) }

// Combine folds partial prefix totals.
func (PrefixTotal) Combine(a, b int64) int64 { return a + b }

// Less orders block ids numerically.
func (PrefixTotal) Less(a, b int) bool { return a < b }

// FixedKey opts block ids into the radix/columnar sort fast path.
func (PrefixTotal) FixedKey() kv.FixedKeyCodec[int] { return kv.IntFixedKey() }

// Boundary: round-1 output lines are newline-terminated.
func (PrefixTotal) Boundary() chunk.Boundary { return chunk.NewlineBoundary{} }

// NewContainer returns a combining hash container over block ids.
func (a PrefixTotal) NewContainer(shards int) container.Container[int, int64] {
	return container.NewHash[int, int64](shards, container.IntHasher, a.Combine)
}

// forEachLine calls fn for every newline-terminated line (and an
// unterminated tail, if any).
func forEachLine(buf []byte, fn func(line []byte)) {
	start := 0
	for i, c := range buf {
		if c == '\n' {
			fn(buf[start:i])
			start = i + 1
		}
	}
	if start < len(buf) {
		fn(buf[start:])
	}
}

// parseDigits parses a non-negative decimal integer; leading zeros are
// fine, anything non-digit (or empty input) is not.
func parseDigits(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	return v, true
}

func sumInt64(vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}
