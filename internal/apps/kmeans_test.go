package apps

import (
	"context"
	"math"
	"testing"

	"supmr/internal/chunk"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
	"supmr/internal/storage"
)

// clusteredPoints builds 2-D byte points drawn from well-separated
// clusters so Lloyd's algorithm has an unambiguous answer.
func clusteredPoints(perCluster int) []byte {
	centers := [][2]int{{30, 30}, {200, 60}, {100, 220}}
	var buf []byte
	state := uint64(42)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < perCluster; i++ {
		for _, c := range centers {
			x := c[0] + int(next()%11) - 5
			y := c[1] + int(next()%11) - 5
			buf = append(buf, byte(x), byte(y))
		}
	}
	return buf
}

func TestKMeansMapAssignsNearest(t *testing.T) {
	k := &KMeans{K: 2, Dim: 2}
	k.Centroids = [][]float64{{0, 0}, {100, 100}}
	pts := []byte{1, 1, 99, 99, 2, 3}
	got := collectEmits[int, ClusterAccum](k, pts)
	counts := map[int]int64{}
	for _, p := range got {
		counts[p.Key] += p.Val.N
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("assignments = %v", counts)
	}
}

func TestKMeansStepMovesCentroids(t *testing.T) {
	k := &KMeans{K: 1, Dim: 2}
	k.Centroids = [][]float64{{0, 0}}
	moved := k.Step([]kv.Pair[int, ClusterAccum]{
		{Key: 0, Val: ClusterAccum{N: 2, Sum: []float64{6, 8}}},
	})
	// New centroid (3, 4): moved distance 5.
	if math.Abs(moved-5) > 1e-9 {
		t.Errorf("moved = %v, want 5", moved)
	}
	if k.Centroids[0][0] != 3 || k.Centroids[0][1] != 4 {
		t.Errorf("centroid = %v, want (3,4)", k.Centroids[0])
	}
	// Empty step moves nothing.
	if k.Step(nil) != 0 {
		t.Error("empty step should not move centroids")
	}
}

func TestKMeansConvergesOnSeparatedClusters(t *testing.T) {
	data := clusteredPoints(300) // 900 points
	k := &KMeans{K: 3, Dim: 2, Epsilon: 0.01}
	k.InitCentroids(7)

	mk := func() (chunk.Stream, error) {
		f := storage.BytesFile("pts", data, storage.NewNullDevice(storage.NewFakeClock()))
		return chunk.NewInterFile(f, 256, chunk.FixedBoundary{Width: 2})
	}
	res, err := RunKMeans(context.Background(), k, mk, mapreduce.Options{Workers: 2}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved >= 0.01 && res.Iterations == 50 {
		t.Errorf("did not converge: moved %.4f after %d iterations", res.Moved, res.Iterations)
	}
	var total int64
	for _, n := range res.Sizes {
		total += n
	}
	if total != 900 {
		t.Errorf("cluster sizes sum to %d, want 900", total)
	}
	// Final centroids should sit near the true centers.
	trueCenters := [][]float64{{30, 30}, {200, 60}, {100, 220}}
	for _, tc := range trueCenters {
		best := math.Inf(1)
		for _, c := range k.Centroids {
			d := math.Hypot(c[0]-tc[0], c[1]-tc[1])
			if d < best {
				best = d
			}
		}
		if best > 8 {
			t.Errorf("no centroid within 8 of true center %v (closest %.1f)", tc, best)
		}
	}
	if res.Waves < res.Iterations {
		t.Errorf("waves %d < iterations %d", res.Waves, res.Iterations)
	}
}

func TestKMeansCachedIterationsAvoidDevice(t *testing.T) {
	// With an LRU cache over a slow disk, only the first iteration pays
	// device time — the HaLoop/Twister data-reuse idea.
	data := clusteredPoints(200)
	clock := storage.NewFakeClock()
	disk, err := storage.NewDisk(storage.DiskConfig{Name: "d", Bandwidth: 1e6}, clock)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := storage.NewCache(disk, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	file, err := storage.NewFile("pts", int64(len(data)), 0,
		func(off int64, p []byte) { copy(p, data[off:]) }, cache)
	if err != nil {
		t.Fatal(err)
	}
	k := &KMeans{K: 3, Dim: 2, Epsilon: 0.01}
	k.InitCentroids(7)
	mk := func() (chunk.Stream, error) {
		return chunk.NewInterFile(file, 512, chunk.FixedBoundary{Width: 2})
	}
	res, err := RunKMeans(context.Background(), k, mk, mapreduce.Options{Workers: 2}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Skip("converged in one iteration; cache reuse not exercised")
	}
	devBytes := disk.Stats().BytesRead
	// The device should have served roughly one pass over the input
	// (block rounding allows a little slack), not one pass per iteration.
	if devBytes > int64(len(data))+16*4096 {
		t.Errorf("device served %d bytes over %d iterations; want ~%d (single pass)",
			devBytes, res.Iterations, len(data))
	}
	cs := cache.CacheStats()
	if cs.Hits == 0 {
		t.Error("no cache hits across iterations")
	}
}

func TestRunKMeansValidation(t *testing.T) {
	if _, err := RunKMeans(context.Background(), &KMeans{}, nil, mapreduce.Options{}, 1); err == nil {
		t.Error("invalid K/Dim accepted")
	}
}
