package apps

import (
	"context"
	"fmt"
	"math"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/core"
	"supmr/internal/exec"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
)

// KMeans is the classic Phoenix iterative benchmark: cluster Dim-byte
// points into K clusters by Lloyd's algorithm. Each iteration is one
// complete MapReduce job — the "multiple map/reduce rounds" pattern of
// Twister/HaLoop that §VII relates SupMR to — and the driver reuses the
// ingest chunk pipeline every round, so a cached storage layer
// (storage.Cache) makes iterations after the first compute-bound.
//
// Map assigns each point to its nearest centroid and emits per-cluster
// accumulators; Reduce (and the combiner) merge accumulators; the
// driver recomputes centroids and repeats until movement falls below
// Epsilon or MaxIters is reached.
type KMeans struct {
	K       int // clusters
	Dim     int // bytes (features) per point
	Epsilon float64
	// Centroids is the current model, read by Map; the driver updates
	// it between iterations (never during a map wave).
	Centroids [][]float64
}

// ClusterAccum accumulates the points assigned to a cluster.
type ClusterAccum struct {
	N   int64
	Sum []float64
}

// merge folds b into a copy of a.
func mergeAccum(a, b ClusterAccum) ClusterAccum {
	if a.Sum == nil {
		return b
	}
	if b.Sum == nil {
		return a
	}
	out := ClusterAccum{N: a.N + b.N, Sum: make([]float64, len(a.Sum))}
	for i := range out.Sum {
		out.Sum[i] = a.Sum[i]
		if i < len(b.Sum) {
			out.Sum[i] += b.Sum[i]
		}
	}
	return out
}

var _ kv.App[int, ClusterAccum] = (*KMeans)(nil)
var _ kv.Combiner[ClusterAccum] = (*KMeans)(nil)

// Map assigns each Dim-byte point of the split to its nearest centroid,
// folding into one local accumulator per cluster before emitting.
func (k *KMeans) Map(split []byte, emit kv.Emitter[int, ClusterAccum]) {
	if k.Dim <= 0 || len(k.Centroids) == 0 {
		return
	}
	acc := make([]ClusterAccum, len(k.Centroids))
	point := make([]float64, k.Dim)
	for off := 0; off+k.Dim <= len(split); off += k.Dim {
		for d := 0; d < k.Dim; d++ {
			point[d] = float64(split[off+d])
		}
		best, bestDist := 0, math.Inf(1)
		for ci, c := range k.Centroids {
			var dist float64
			for d := 0; d < k.Dim && d < len(c); d++ {
				diff := point[d] - c[d]
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = ci, dist
			}
		}
		a := &acc[best]
		if a.Sum == nil {
			a.Sum = make([]float64, k.Dim)
		}
		a.N++
		for d := 0; d < k.Dim; d++ {
			a.Sum[d] += point[d]
		}
	}
	for ci := range acc {
		if acc[ci].N > 0 {
			emit.Emit(ci, acc[ci])
		}
	}
}

// Reduce merges accumulators for one cluster.
func (k *KMeans) Reduce(_ int, vs []ClusterAccum) ClusterAccum {
	var out ClusterAccum
	for _, v := range vs {
		out = mergeAccum(out, v)
	}
	return out
}

// Combine folds two accumulators (hash container combiner).
func (k *KMeans) Combine(a, b ClusterAccum) ClusterAccum { return mergeAccum(a, b) }

// Less orders cluster ids.
func (k *KMeans) Less(a, b int) bool { return a < b }

// Boundary: points are fixed-width records.
func (k *KMeans) Boundary() chunk.Boundary { return chunk.FixedBoundary{Width: int64(k.Dim)} }

// NewContainer returns a tiny hash container (K keys).
func (k *KMeans) NewContainer() container.Container[int, ClusterAccum] {
	return container.NewHash[int, ClusterAccum](8, container.IntHasher, k.Combine)
}

// Step recomputes centroids from one iteration's reduced accumulators
// and returns the largest centroid movement (L2).
func (k *KMeans) Step(pairs []kv.Pair[int, ClusterAccum]) float64 {
	moved := 0.0
	for _, p := range pairs {
		if p.Key < 0 || p.Key >= len(k.Centroids) || p.Val.N == 0 {
			continue
		}
		old := k.Centroids[p.Key]
		next := make([]float64, k.Dim)
		var dist float64
		for d := 0; d < k.Dim; d++ {
			next[d] = p.Val.Sum[d] / float64(p.Val.N)
			diff := next[d] - old[d]
			dist += diff * diff
		}
		k.Centroids[p.Key] = next
		if dist > moved {
			moved = dist
		}
	}
	return math.Sqrt(moved)
}

// InitCentroids seeds K centroids deterministically across the byte
// feature space.
func (k *KMeans) InitCentroids(seed uint64) {
	k.Centroids = make([][]float64, k.K)
	state := seed
	for i := range k.Centroids {
		c := make([]float64, k.Dim)
		for d := range c {
			state = state*6364136223846793005 + 1442695040888963407
			c[d] = float64((state >> 33) % 256)
		}
		k.Centroids[i] = c
	}
}

// KMeansResult reports one driver run.
type KMeansResult struct {
	Iterations int
	Moved      float64 // last max centroid movement
	Sizes      []int64 // final cluster sizes
	Waves      int     // total map waves across iterations
}

// RunKMeans drives Lloyd's algorithm: each iteration runs one SupMR
// pipelined job over a fresh stream from mkStream (the same underlying
// file — put a storage.Cache in front to make later iterations free of
// device time, the HaLoop/Twister data-caching idea). One persistent
// worker pool spans all iterations; ctx cancellation stops the driver
// between (and, via the pool, within) iterations.
func RunKMeans(ctx context.Context, k *KMeans, mkStream func() (chunk.Stream, error), opts mapreduce.Options, maxIters int) (*KMeansResult, error) {
	if k.K <= 0 || k.Dim <= 0 {
		return nil, fmt.Errorf("apps: kmeans requires positive K and Dim (got %d, %d)", k.K, k.Dim)
	}
	if len(k.Centroids) != k.K {
		k.InitCentroids(1)
	}
	eps := k.Epsilon
	if eps <= 0 {
		eps = 1e-3
	}
	if maxIters <= 0 {
		maxIters = 20
	}
	opts.Boundary = k.Boundary()
	if opts.Pool == nil {
		pool := exec.NewPool(ctx, exec.Config{Workers: opts.Workers, Recorder: opts.Recorder})
		defer pool.Close()
		opts.Pool = pool
	}
	res := &KMeansResult{}
	for iter := 0; iter < maxIters; iter++ {
		if err := opts.Pool.Err(); err != nil {
			return nil, err
		}
		stream, err := mkStream()
		if err != nil {
			return nil, err
		}
		cont := k.NewContainer()
		out, err := core.Run[int, ClusterAccum](k, stream, cont, core.Options{Options: opts})
		if err != nil {
			return nil, fmt.Errorf("apps: kmeans iteration %d: %w", iter, err)
		}
		res.Waves += out.Stats.MapWaves
		res.Iterations = iter + 1
		res.Moved = k.Step(out.Pairs)
		if iter == maxIters-1 || res.Moved < eps {
			res.Sizes = make([]int64, k.K)
			for _, p := range out.Pairs {
				if p.Key >= 0 && p.Key < k.K {
					res.Sizes[p.Key] = p.Val.N
				}
			}
			if res.Moved < eps {
				break
			}
		}
	}
	return res, nil
}
