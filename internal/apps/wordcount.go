// Package apps implements the benchmark applications of the evaluation:
// word count and sort (the paper's two target applications, chosen
// because they sit at opposite ends of the application space), plus a
// histogram app for the array container, an inverted index app for the
// no-combiner hash path, and the OpenMP-analog sort used as the thread
// library baseline of Fig. 3.
package apps

import (
	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/kv"
	"supmr/internal/workload"
)

// WordCount counts word occurrences. Its map phase is comparatively
// expensive (tokenizing, hashing, checking the container before
// insertion), which is precisely why the ingest chunk pipeline helps it
// most: a longer map phase gives the pipeline more computation to
// overlap with ingest (§VI-B).
type WordCount struct{}

var _ kv.App[string, int64] = WordCount{}
var _ kv.Combiner[int64] = WordCount{}
var _ kv.BytesApp[int64] = WordCount{}

// Map tokenizes the split and emits (word, 1) pairs.
func (WordCount) Map(split []byte, emit kv.Emitter[string, int64]) {
	workload.Tokenize(split, func(w []byte) {
		emit.Emit(string(w), 1)
	})
}

// MapBytes is the zero-allocation twin of Map: tokens flow from the
// tokenizer into the emitter as []byte views of the split, with no
// per-word string materialization.
func (WordCount) MapBytes(split []byte, emit kv.BytesEmitter[int64]) {
	workload.Tokenize(split, func(w []byte) {
		emit.EmitBytes(w, 1)
	})
}

// Reduce sums the counts for one word.
func (WordCount) Reduce(_ string, vs []int64) int64 {
	var sum int64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// Combine folds two partial counts (the hash container applies this
// eagerly in worker-local maps).
func (WordCount) Combine(a, b int64) int64 { return a + b }

// Less orders words lexicographically.
func (WordCount) Less(a, b string) bool { return a < b }

// Boundary returns the record boundary for text input: newline.
func (WordCount) Boundary() chunk.Boundary { return chunk.NewlineBoundary{} }

// NewContainer returns the container §V-B prescribes for word count: the
// flat combining container (open addressing over arena-interned keys),
// which shrinks the huge input set to a vocabulary-sized intermediate
// set without per-word allocation on the map hot path.
func (w WordCount) NewContainer(shards int) container.Container[string, int64] {
	return container.NewFlatHash[int64](shards, w.Combine)
}

// NewMapContainer returns the previous map-backed combining container,
// kept for the -flatcombiner=off ablation and differential tests.
func (w WordCount) NewMapContainer(shards int) container.Container[string, int64] {
	return container.NewHash[string, int64](shards, container.StringHasher, w.Combine)
}
