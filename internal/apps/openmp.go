package apps

import (
	"time"

	"supmr/internal/chunk"
	"supmr/internal/exec"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
	"supmr/internal/metrics"
	"supmr/internal/sortalgo"
)

// OpenMPSortResult reports the thread-library sort baseline of Fig. 3.
type OpenMPSortResult struct {
	Pairs []kv.Pair[string, uint64]
	Times metrics.PhaseTimes
}

// OpenMPSort is the Fig. 3 baseline: a shared-memory-multiprocessing
// sort in the style of an OpenMP application. Its compute phase (the
// parallel sort itself) is faster than scale-up MapReduce's, but it
// reads the data into memory and parses it into key-value pairs with ONE
// thread — so for a 60 GB input its time-to-result is worse despite the
// faster sort, which is the paper's motivation for keeping the
// MapReduce model (whose map phase parses in parallel for free).
//
// Phases reported: read (sequential ingest), map (sequential parse),
// merge (parallel p-way sort, the gnu_parallel::sort analog). All run
// on one executor pool: ingest and the single-threaded parse on the IO
// lane, the sort on the compute workers.
func OpenMPSort(input chunk.Stream, workers int, timer *metrics.Timer, rec *metrics.UtilRecorder) (*OpenMPSortResult, error) {
	if timer == nil {
		epoch := time.Now()
		timer = metrics.NewTimer(func() time.Duration { return time.Since(epoch) })
	}
	pool := exec.NewPool(nil, exec.Config{Workers: workers, Recorder: rec})
	defer pool.Close()

	// Sequential ingest: one thread in IO wait.
	timer.StartPhase(metrics.PhaseRead)
	data, err := mapreduce.Ingest(input, pool)
	timer.EndPhase(metrics.PhaseRead)
	if err != nil {
		return nil, err
	}

	// Sequential parse: one thread in user state, building the key
	// pointer array the sort will run over.
	timer.StartPhase(metrics.PhaseMap)
	var pairs []kv.Pair[string, uint64]
	app := Sort{}
	err = pool.GoIO("parse", metrics.StateUser, func() error {
		app.Map(data, kv.EmitFunc[string, uint64](func(k string, v uint64) {
			pairs = append(pairs, kv.Pair[string, uint64]{Key: k, Val: v})
		}))
		return nil
	}).Wait()
	timer.EndPhase(metrics.PhaseMap)
	if err != nil {
		return nil, err
	}

	// Parallel sort: partition into one run per worker, sort runs in
	// parallel, single-round p-way merge — the structure of
	// gnu_parallel::sort.
	timer.StartPhase(metrics.PhaseMerge)
	p := pool.Workers()
	runs := make([][]kv.Pair[string, uint64], 0, p)
	per := (len(pairs) + p - 1) / p
	for off := 0; off < len(pairs); off += per {
		end := off + per
		if end > len(pairs) {
			end = len(pairs)
		}
		runs = append(runs, pairs[off:end])
	}
	less := kv.Less[string](app.Less)
	if err := sortalgo.SortRuns(runs, less, pool); err != nil {
		return nil, err
	}
	sorted, err := sortalgo.PWayMerge(runs, less, pool)
	timer.EndPhase(metrics.PhaseMerge)
	if err != nil {
		return nil, err
	}

	return &OpenMPSortResult{Pairs: sorted, Times: timer.Finish()}, nil
}
