package apps

import (
	"math"
	"testing"

	"supmr/internal/chunk"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
	"supmr/internal/storage"
)

func TestGrepMap(t *testing.T) {
	g := Grep{Patterns: []string{"ERROR", "WARN"}}
	text := []byte("ok line\nERROR something\nWARN minor\nERROR again ERROR twice-on-one-line\n")
	got := collectEmits[string, int64](g, text)
	counts := make(map[string]int64)
	for _, p := range got {
		counts[p.Key] += p.Val
	}
	// Per-line semantics: a line counts once per pattern it contains.
	if counts["ERROR"] != 2 || counts["WARN"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestGrepEndToEnd(t *testing.T) {
	g := Grep{Patterns: []string{"needle"}}
	text := []byte("hay\nneedle in hay\nhay hay\nanother needle\n")
	f := storage.BytesFile("in", text, storage.NewNullDevice(storage.NewFakeClock()))
	inter, err := chunk.NewInterFile(f, 16, chunk.NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run[string, int64](g, chunk.NewWholeInput(inter), g.NewContainer(),
		mapreduce.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].Key != "needle" || res.Pairs[0].Val != 2 {
		t.Errorf("grep result = %v", res.Pairs)
	}
}

func TestGrepNoMatches(t *testing.T) {
	g := Grep{Patterns: []string{"absent"}}
	got := collectEmits[string, int64](g, []byte("nothing here\n"))
	if len(got) != 0 {
		t.Errorf("emitted %v for non-matching input", got)
	}
}

// synthPoints builds 2-byte (x, y) records on the line y = a*x + b.
func synthPoints(a, b float64, n int) []byte {
	buf := make([]byte, 0, 2*n)
	for i := 0; i < n; i++ {
		x := float64(i % 200)
		y := a*x + b
		if y < 0 {
			y = 0
		}
		if y > 255 {
			y = 255
		}
		buf = append(buf, byte(x), byte(y))
	}
	return buf
}

func TestLinearRegressionRecoversLine(t *testing.T) {
	lr := LinearRegression{}
	data := synthPoints(0.5, 20, 10000)
	got := collectEmits[int, float64](lr, data)
	// Fold emissions like the container would.
	stats := make(map[int]float64)
	for _, p := range got {
		stats[p.Key] += p.Val
	}
	var pairs []kv.Pair[int, float64]
	for k, v := range stats {
		pairs = append(pairs, kv.Pair[int, float64]{Key: k, Val: v})
	}
	slope, intercept, ok := lr.Fit(pairs)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(slope-0.5) > 0.02 {
		t.Errorf("slope = %.3f, want 0.5", slope)
	}
	if math.Abs(intercept-20) > 1.5 {
		t.Errorf("intercept = %.2f, want 20", intercept)
	}
}

func TestLinearRegressionEndToEnd(t *testing.T) {
	lr := LinearRegression{}
	data := synthPoints(1.0, 10, 4000)
	f := storage.BytesFile("pts", data, storage.NewNullDevice(storage.NewFakeClock()))
	inter, err := chunk.NewInterFile(f, 512, lr.Boundary())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run[int, float64](lr, chunk.NewWholeInput(inter), lr.NewContainer(),
		mapreduce.Options{Workers: 2, Boundary: lr.Boundary()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 6 {
		t.Fatalf("expected 6 statistic cells, got %d", len(res.Pairs))
	}
	slope, intercept, ok := lr.Fit(res.Pairs)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(slope-1.0) > 0.05 || math.Abs(intercept-10) > 3 {
		t.Errorf("fit = (%.3f, %.2f), want (1.0, 10)", slope, intercept)
	}
	// N statistic must equal the point count.
	for _, p := range res.Pairs {
		if p.Key == StatN && int(p.Val) != 4000 {
			t.Errorf("N = %v, want 4000", p.Val)
		}
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	lr := LinearRegression{}
	if _, _, ok := lr.Fit(nil); ok {
		t.Error("fit of no statistics should fail")
	}
	// All x equal: vertical line, no unique fit.
	var pairs []kv.Pair[int, float64]
	pairs = append(pairs,
		kv.Pair[int, float64]{Key: StatN, Val: 3},
		kv.Pair[int, float64]{Key: StatSumX, Val: 9},
		kv.Pair[int, float64]{Key: StatSumXX, Val: 27},
	)
	if _, _, ok := lr.Fit(pairs); ok {
		t.Error("degenerate fit should fail")
	}
	// Empty split emits nothing.
	if got := collectEmits[int, float64](lr, nil); len(got) != 0 {
		t.Errorf("empty split emitted %v", got)
	}
}
