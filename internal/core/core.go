// Package core implements SupMR, the paper's primary contribution: a
// scale-up MapReduce runtime whose ingest chunk pipeline overlaps reading
// the input with map computation (double-buffering, §III) and whose merge
// phase uses a single-round parallel p-way merge (§IV).
//
// The shape follows Table I:
//
//	run_ingestMR()  -> Run            (launch the SupMR runtime)
//	run_mappers()   -> runMappers     (wrapper over mapreduce.MapWave that
//	                                   keeps the container persistent)
//	run_reducers()  -> mapreduce.ReducePhase (same as the internal reduce)
//	set_data()      -> ChunkAware.SetData    (chunk pointer/length callback)
//
// The pipeline executes n+1 rounds for n ingest chunks: the first round
// ingests chunk 0 serially, rounds 1..n-1 ingest chunk i+1 while mappers
// operate on chunk i, and the final round maps the last chunk.
//
// Every round runs on the job's persistent internal/exec pool: the
// prefetch ingest is a pool task on the dedicated IO worker (so it is
// joined — never abandoned mid-device-wait — when a round fails or the
// job is cancelled), and map/reduce/merge run on the pool's compute
// workers with panic isolation and cancellation.
//
// Persistence (§III-C) applies at two tiers: the global intermediate
// container accumulates across rounds (runMappers never resets it), and
// containers that pool their worker-local accumulators (the flat
// combiner) carry local tables and arenas from round to round, so
// steady-state rounds combine without allocating.
package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/exec"
	"supmr/internal/faults"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
	"supmr/internal/memo"
	"supmr/internal/metrics"
	"supmr/internal/sortalgo"
	"supmr/internal/spill"
)

// ChunkAware is the set_data() callback of Table I: applications that
// need to know which ingest chunk their map callbacks are about to
// operate on (its length, index and source files) implement it; the
// runtime invokes it before each map wave.
type ChunkAware interface {
	SetData(c *chunk.Chunk)
}

// Tuner is the adaptive chunk-size feedback loop (the paper's §VIII
// future work, implemented in internal/tuner): after each pipelined
// round it receives the ingested chunk size and the round's observed
// ingest and map durations, and returns the chunk size to use next.
type Tuner interface {
	Next(chunkBytes int64, ingest, mapT time.Duration) int64
}

// Options configure the SupMR pipeline. The embedded runtime options
// carry worker counts, split counts and instrumentation; Merge defaults
// to the p-way algorithm, the SupMR sort modification.
type Options struct {
	mapreduce.Options
	// ResetEachRound re-initializes the container at every map round,
	// the traditional behaviour SupMR had to remove (§III-C). It exists
	// only for the persistent-container ablation: with it set, combiner
	// state from earlier rounds is discarded and results are wrong for
	// multi-chunk inputs.
	ResetEachRound bool
	// Tuner, when set and the input stream is chunk.Resizable, drives
	// the adaptive chunk-size feedback loop.
	Tuner Tuner
	// MemoryBudget caps the container's resident bytes (Container.
	// SizeBytes). When positive, the pipeline checks the budget between
	// ingest rounds; a container over budget is drained into a
	// key-sorted run written to SpillStore on the pool's IO lane while
	// the next map round computes, and the merge phase streams the runs
	// back in the same single p-way round. Zero disables spilling.
	MemoryBudget int64
	// SpillStore receives the spilled runs; required when MemoryBudget
	// is positive.
	SpillStore *spill.Store
	// Retry bounds transient-fault retries on spill-run writes (ingest
	// reads retry inside the input wrappers; see internal/faults). The
	// zero policy disables retries.
	Retry faults.RetryPolicy
	// FaultCounters accumulates retry outcomes for the report; nil runs
	// uncounted.
	FaultCounters *faults.Counters
	// PrefetchDepth is the ingest ring depth d: the pipeline keeps up to
	// d chunks in flight ahead of the map wave. The default (<= 1) is the
	// paper's double buffering — one chunk ahead. Deeper rings absorb
	// ingest jitter (a slow chunk hides behind buffered ones) at the cost
	// of d resident chunk buffers.
	PrefetchDepth int
	// IOLanes is the number of IO lanes each chunk read fans out across:
	// the read is split into up to IOLanes segments whose device waits
	// overlap on the pool's IO workers. <= 1 keeps the single-stream
	// read. Values above the pool's IO worker count are clamped.
	IOLanes int
	// Freelist, when set, is a shared chunk-buffer freelist the ingest
	// fetcher recycles through — the multi-job engine passes one list so
	// all submissions reuse each other's chunk buffers. Nil gives the
	// job a private freelist.
	Freelist *chunk.FreeList
	// MemoStore, when set, enables content-addressed memoization: every
	// ingest chunk is keyed by its content hash under MemoSpace, a hit
	// replays the cached map/combine output past the map wave, and a
	// miss is mapped, drained per chunk and published back to the cache.
	// Requires an app whose key/value types have spill codecs.
	// MemoryBudget is ignored in memo mode — the container is drained
	// after every chunk, so its residency never exceeds one chunk's
	// combined output.
	MemoStore *memo.Store
	// MemoSpace namespaces memo cache keys (application identity plus
	// any parameters that change its output for the same input bytes).
	MemoSpace string
}

// Result aliases the runtime result type.
type Result[K comparable, V any] = mapreduce.Result[K, V]

// ingestResult is one prefetched chunk: the chunk (nil at EOF), the
// terminal error, and the ingest duration on the job clock for the
// tuner's feedback loop.
type ingestResult struct {
	c   *chunk.Chunk
	err error
	dur time.Duration
}

// Run launches the SupMR runtime (the run_ingestMR() API call): it
// drives the ingest chunk pipeline over the stream, reduces once, and
// merges with the configured algorithm. The container persists across
// all map rounds. If opts.Pool is nil a job pool is created here and
// torn down on return; either way every phase — including the prefetch
// ingest — runs on that single pool.
func Run[K comparable, V any](app kv.App[K, V], input chunk.Stream, cont container.Container[K, V], opts Options) (*Result[K, V], error) {
	ro := opts.Options
	pool := ro.Pool
	if pool == nil {
		own := exec.NewPool(nil, exec.Config{Workers: ro.Workers, IOWorkers: opts.IOLanes, Recorder: ro.Recorder})
		defer own.Close()
		pool = own
		ro.Pool = pool
	}
	timer := ro.Timer
	if timer == nil {
		timer = metrics.NewTimer(pool.Now)
	}
	ro.Timer = timer // MergePhase brackets its own run-sort/merge sub-phases

	// Fresh container at job start; never again (unless the ablation
	// flag asks for the broken behaviour).
	cont.Reset()
	ro.ResetContainer = false

	// The fixed-key sort fast path: resolved once so the spill drains,
	// the external merge and the in-memory merge all agree on it.
	var fixed *kv.FixedKeyCodec[K]
	if !ro.RadixDisabled {
		fixed = kv.FixedKeyOf[K, V](app)
	}
	drainRadixRuns := 0 // radix-sorted spill/memo drains, folded into Stats.RadixRuns

	// The memo cache: the typed layer over the shared store, resolved up
	// front so jobs whose key/value types cannot serialize refuse to
	// start instead of failing at the first publish.
	var cache *memo.Cache[K, V]
	if opts.MemoStore != nil {
		var err error
		cache, err = memo.NewCache[K, V](opts.MemoStore, opts.MemoSpace)
		if err != nil {
			return nil, err
		}
	}

	// The memory budget: a spiller when configured, nil otherwise. Memo
	// mode never spills — per-chunk drains keep the container's
	// residency bounded by one chunk's combined output regardless of any
	// budget (the facade surfaces this as a report note).
	var spiller *spill.Spiller[K, V]
	if opts.MemoryBudget > 0 && cache == nil {
		if _, ok := any(cont).(container.Unspillable); ok {
			return nil, fmt.Errorf("core: container %T cannot spill (its footprint is fixed by construction); run without a memory budget", cont)
		}
		if opts.SpillStore == nil {
			return nil, fmt.Errorf("core: MemoryBudget requires a SpillStore")
		}
		var err error
		spiller, err = spill.NewSpiller(opts.SpillStore, opts.MemoryBudget, app)
		if err != nil {
			return nil, err
		}
		spiller.SetRetry(opts.Retry, opts.FaultCounters)
		spiller.SetFixedKey(fixed)
	}

	depth := opts.PrefetchDepth
	if depth < 1 {
		depth = 1
	}
	lanes := opts.IOLanes
	if lanes < 1 {
		lanes = 1
	}
	if lanes > pool.IOLanes() {
		lanes = pool.IOLanes()
	}

	// Install the multi-lane fetcher whenever the stream supports it:
	// even a single-lane job benefits from its chunk-buffer freelist
	// (steady-state ingest allocates O(depth) buffers, not O(chunks)).
	// Segment waits dispatch onto the pool's IO lanes; the issue side of
	// every read runs on the pump goroutine below.
	if fa, ok := input.(chunk.FetcherAware); ok {
		var dispatch chunk.Dispatch
		if lanes > 1 {
			dispatch = func(bytes int64, fn func()) func() error {
				h := pool.GoIOSized("ingest", metrics.StateIOWait, bytes, func() error { fn(); return nil })
				return h.Wait
			}
		}
		list := opts.Freelist
		if list == nil {
			list = chunk.NewFreeList()
		}
		fa.SetFetcher(chunk.NewFetcherShared(lanes, dispatch, list))
	}

	resizable, _ := input.(chunk.Resizable)

	// The prefetch ring: a pump goroutine owns every stream read — and
	// therefore every fault decision and chunk-size resize — in strict
	// serial order, keeping up to `depth` chunks in flight ahead of the
	// map wave. The ring channel buffers depth-1 completed chunks; the
	// chunk being read on the pump is the depth-th. With the default
	// depth 1 the channel is unbuffered and the schedule is exactly the
	// single-slot double buffering: the next read starts when the
	// previous chunk is handed to the mappers.
	//
	// Shutdown: the pump exits after delivering a terminal result (EOF
	// or error) or when stop closes; it always closes the ring, so the
	// failure path can drain it to completion, releasing any chunks the
	// mappers never consumed.
	ring := make(chan ingestResult, depth-1)
	stop := make(chan struct{})
	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(stop) }) }
	defer closeStop()
	var pendingResize atomic.Int64

	readNext := func() (res ingestResult) {
		start := pool.Now()
		defer func() { res.dur = pool.Now() - start }()
		if lanes > 1 {
			// Multi-lane: Next runs here on the pump — issuing segment
			// reads serially — while their device waits fan out across
			// the IO lanes through the fetcher's dispatch.
			if err := pool.Err(); err != nil {
				return ingestResult{err: err}
			}
			c, err := input.Next()
			switch {
			case errors.Is(err, io.EOF):
				return ingestResult{err: io.EOF}
			case err != nil:
				return ingestResult{err: fmt.Errorf("core: ingest failed: %w", err)}
			}
			return ingestResult{c: c}
		}
		// Single lane: the whole read is one task on the dedicated IO
		// worker, exactly the single-slot pipeline, so device waits keep
		// their IO-wait attribution. The handle always resolves — normal
		// return, stream panic (as a *PanicError), cancellation, or
		// refused submission — so the pump can always join the read, and
		// Close joins any read still parked in a device wait.
		h := pool.GoIO("ingest", metrics.StateIOWait, func() error {
			if err := pool.Err(); err != nil {
				return err
			}
			c, err := input.Next()
			switch {
			case errors.Is(err, io.EOF):
				return io.EOF
			case err != nil:
				return fmt.Errorf("core: ingest failed: %w", err)
			}
			res.c = c
			return nil
		})
		res.err = h.Wait()
		return res
	}

	go func() {
		defer close(ring)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Apply the tuner's latest resize before issuing the next
			// read: a resize never tears a read already in flight, it
			// only affects chunks not yet issued.
			if resizable != nil {
				if n := pendingResize.Swap(0); n > 0 {
					resizable.SetChunkSize(n)
				}
			}
			res := readNext()
			select {
			case ring <- res:
				if res.err != nil {
					return // EOF or terminal error: the ring is complete
				}
			case <-stop:
				res.c.Release()
				return
			}
		}
	}()

	var stats mapreduce.Stats
	runMappers := func(c *chunk.Chunk) (time.Duration, error) {
		start := pool.Now()
		if opts.ResetEachRound {
			cont.Reset()
		}
		if ca, ok := any(app).(ChunkAware); ok {
			ca.SetData(c)
		}
		n, busy, err := mapreduce.MapWaveTimed(app, c.Data, cont, ro)
		if err != nil {
			return 0, err
		}
		stats.Splits += n
		stats.MapBusy += busy
		stats.MapWaves++
		stats.BytesIngested += c.Size()
		return pool.Now() - start, nil
	}

	// fail aborts the job: the cancellation reaches the in-flight
	// prefetch between stream reads, the pump is stopped and the ring
	// drained — releasing every unconsumed chunk — so no ingest result
	// is left behind when the pool shuts down, and an in-flight spill
	// write is joined so its run writer is not abandoned.
	fail := func(err error) (*Result[K, V], error) {
		pool.Abort(err)
		closeStop()
		for r := range ring {
			r.c.Release()
		}
		if spiller != nil {
			spiller.Join() // the job error wins; the write ran or was refused
		}
		timer.EndPhase(metrics.PhaseReadMap)
		return nil, err
	}

	// The ingest chunk pipeline (§III-B pseudo-code, generalized from
	// one prefetch slot to a ring of `depth`):
	//   ingest 1st chunk
	//   for each ingest chunk:
	//     pump keeps up to `depth` chunk reads ahead
	//     run mappers on previous chunk
	//   run mappers on last chunk
	timer.StartPhase(metrics.PhaseReadMap)
	first := <-ring
	if first.err != nil && !errors.Is(first.err, io.EOF) {
		return fail(first.err)
	}
	// memoRuns collects one key-sorted run per chunk, in chunk order:
	// decoded cache payloads for hits, freshly drained combiner output
	// for misses. The memo merge streams them all in one pass.
	var memoRuns [][]kv.Pair[K, V]
	cur := first.c
	for cur != nil {
		if err := pool.Err(); err != nil {
			return fail(err)
		}
		// Budget check between ingest rounds: drain an over-budget
		// container now — before this round's mappers refill it. The run
		// write lands on an IO lane and executes while the map round
		// computes (the pump keeps prefetching regardless).
		var drained []kv.Pair[K, V]
		if spiller != nil && spiller.Over(cont) {
			timer.EndPhase(metrics.PhaseReadMap)
			timer.StartPhase(metrics.PhaseSpill)
			err := spiller.Join() // at most one spill write in flight
			if err == nil {
				var nRad int
				drained, nRad, err = spiller.Drain(cont, pool)
				drainRadixRuns += nRad
			}
			timer.EndPhase(metrics.PhaseSpill)
			timer.StartPhase(metrics.PhaseReadMap)
			if err != nil {
				return fail(err)
			}
		}
		if len(drained) > 0 {
			spiller.SpillAsync(drained, pool)
		}
		// Memo lookup, serial and in chunk order on the IO lane, so the
		// operation order any fault plan sees at the memo site is a pure
		// function of the input. A cache failure (injected fault, torn
		// write caught by the digest) is swallowed into a miss — the
		// store counts it — and only a pool-level error fails the job.
		var (
			hit      bool
			hitPairs []kv.Pair[K, V]
			memoKey  memo.Key
		)
		if cache != nil {
			sum := cur.Sum
			if !cur.HasSum {
				sum = sha256.Sum256(cur.Data)
			}
			memoKey = cache.Key(sum)
			timer.EndPhase(metrics.PhaseReadMap)
			timer.StartPhase(metrics.PhaseMemo)
			h := pool.GoIO("memo", metrics.StateIOWait, func() error {
				hitPairs, hit, _ = cache.Get(memoKey)
				return nil
			})
			err := h.Wait()
			timer.EndPhase(metrics.PhaseMemo)
			timer.StartPhase(metrics.PhaseReadMap)
			if err != nil {
				return fail(err)
			}
		}
		// Give the ingest pump a scheduling slot so it reaches the
		// storage device (issuing its reservation and parking in the
		// device wait) before the mappers monopolize the CPUs; on
		// low-core machines it would otherwise start the read only
		// after the map wave finishes, defeating the double-buffering.
		runtime.Gosched()
		var mapDur time.Duration
		if hit {
			// The chunk's bytes were read and hashed but are never
			// mapped: the cached run replays straight into the merge.
			if len(hitPairs) > 0 {
				memoRuns = append(memoRuns, hitPairs)
			}
			stats.MemoHits++
			stats.MemoBytesSaved += cur.Size()
			stats.BytesIngested += cur.Size()
			cur.Release()
		} else {
			var mapErr error
			mapDur, mapErr = runMappers(cur)
			cur.Release() // the wave is done with the bytes; recycle the buffer
			if mapErr != nil {
				return fail(mapErr)
			}
			if cache != nil {
				// Drain this chunk's combined output and publish it,
				// synchronously on the IO lane: lookup(i), publish(i),
				// lookup(i+1) is a deterministic op order, and a failed
				// publish only skips the cache entry, never the job.
				timer.EndPhase(metrics.PhaseReadMap)
				timer.StartPhase(metrics.PhaseMemo)
				pairs, nRad, err := spill.DrainContainer(cont, app.Less, app.Reduce, fixed, pool, "memo")
				drainRadixRuns += nRad
				if err == nil {
					h := pool.GoIO("memo", metrics.StateIOWait, func() error {
						cache.Put(memoKey, pairs)
						return nil
					})
					err = h.Wait()
				}
				timer.EndPhase(metrics.PhaseMemo)
				timer.StartPhase(metrics.PhaseReadMap)
				if err != nil {
					return fail(err)
				}
				if len(pairs) > 0 {
					memoRuns = append(memoRuns, pairs)
				}
				stats.MemoMisses++
			}
		}
		// Join the next chunk, counting how the ring performed: a chunk
		// already buffered is a prefetch hit; otherwise the map workers
		// sit idle for the stall time — the per-round slice of Fig. 1's
		// ingest/compute utilization gap.
		var r ingestResult
		select {
		case r = <-ring:
			stats.PrefetchHits++
		default:
			stallStart := pool.Now()
			r = <-ring
			if d := pool.Now() - stallStart; d > 0 {
				stats.IngestStall += d
				timer.Mark("ingest stall")
			}
		}
		if r.err != nil && !errors.Is(r.err, io.EOF) {
			return fail(r.err)
		}
		// Feedback loop: fold this round's observation into the tuner
		// and resize subsequent chunks. Durations are read off the job
		// clock (pool.Now), so simulated devices feed the tuner their
		// virtual timeline, not wall time. The resize is handed to the
		// pump, which applies it before the next read it issues.
		if opts.Tuner != nil && resizable != nil && r.c != nil {
			if next := opts.Tuner.Next(r.c.Size(), r.dur, mapDur); next > 0 {
				pendingResize.Store(next)
			}
		}
		cur = r.c
	}
	timer.EndPhase(metrics.PhaseReadMap)
	stats.IntermediateN = cont.Len()
	if lanes > 1 {
		stats.IngestLaneBytes = pool.LaneBytes()
	}

	// Memo mode: the container drained into per-chunk runs as the
	// pipeline ran, so there is nothing left to reduce. One streaming
	// pass merges the chunk runs in chunk order, re-reducing keys that
	// appear in several chunks — the same associativity contract the
	// budgeted external merge relies on, so memo output is
	// byte-identical to the unmemoized pipeline's.
	if cache != nil {
		timer.StartPhase(metrics.PhaseMerge)
		merged, rounds, err := mergeChunkRuns(app, memoRuns, pool)
		timer.EndPhase(metrics.PhaseMerge)
		if err != nil {
			pool.Abort(err)
			return nil, err
		}
		stats.Runs = len(memoRuns)
		stats.MergeRounds = rounds
		stats.OutputPairs = len(merged)
		stats.Tasks = pool.TaskStats()
		return &Result[K, V]{Pairs: merged, Times: timer.Finish(), Stats: stats}, nil
	}

	// Join the last spill write before reducing: the merge below must
	// see every run complete. The residue still in the container is
	// never spilled — it feeds the merge from memory.
	if spiller != nil {
		timer.StartPhase(metrics.PhaseSpill)
		err := spiller.Join()
		timer.EndPhase(metrics.PhaseSpill)
		if err != nil {
			pool.Abort(err)
			return nil, err
		}
		stats.SpilledRuns = spiller.RunCount()
		stats.SpilledBytes = spiller.BytesSpilled()
	}

	timer.StartPhase(metrics.PhaseReduce)
	runs, reduceBusy, err := mapreduce.ReducePhaseTimed(app, cont, ro)
	timer.EndPhase(metrics.PhaseReduce)
	if err != nil {
		pool.Abort(err)
		return nil, err
	}
	stats.Runs = len(runs) + stats.SpilledRuns
	stats.ReduceBusy = reduceBusy

	var (
		merged    []kv.Pair[K, V]
		rounds    int
		radixRuns int
	)
	if spiller != nil && spiller.RunCount() > 0 {
		merged, rounds, radixRuns, err = externalMerge(app, runs, spiller, fixed, pool, timer)
	} else {
		merged, rounds, radixRuns, err = mapreduce.MergePhase(app, runs, ro)
	}
	if err != nil {
		pool.Abort(err)
		return nil, err
	}
	stats.MergeRounds = rounds
	stats.RadixRuns = radixRuns + drainRadixRuns
	stats.OutputPairs = len(merged)
	stats.Tasks = pool.TaskStats()

	return &Result[K, V]{Pairs: merged, Times: timer.Finish(), Stats: stats}, nil
}

// externalMerge is the budgeted merge: the in-memory residue runs sort
// in parallel (radix fast path when the app has a fixed-key codec),
// then one streaming loser-tree pass consumes them together with every
// on-disk run, re-reducing keys whose values were split across spills.
// The round count stays 1 — spilling adds merge sources, not merge
// rounds, preserving the paper's single-round property (§IV). Run-sort
// and merge time are bracketed separately, like mapreduce.MergePhase.
func externalMerge[K comparable, V any](app kv.App[K, V], runs [][]kv.Pair[K, V], spiller *spill.Spiller[K, V],
	fixed *kv.FixedKeyCodec[K], pool exec.Executor, timer *metrics.Timer) ([]kv.Pair[K, V], int, int, error) {
	timer.StartPhase(metrics.PhaseRunSort)
	radixRuns, err := sortalgo.SortRunsWith(runs, app.Less, fixed, pool)
	timer.EndPhase(metrics.PhaseRunSort)
	if err != nil {
		return nil, 0, 0, err
	}
	srcs := spiller.Sources()
	for _, r := range runs {
		srcs = append(srcs, sortalgo.NewSliceSource(r))
	}
	// One streaming pass over all sources; run it as a pool task so the
	// device waits of run reads are attributed to the job's workers.
	var merged []kv.Pair[K, V]
	timer.StartPhase(metrics.PhaseMerge)
	_, err = pool.ForEach("merge", metrics.StateUser, 1, func(int) error {
		var mErr error
		merged, mErr = sortalgo.MergeSources(srcs, app.Less, app.Reduce, nil)
		return mErr
	})
	timer.EndPhase(metrics.PhaseMerge)
	if err != nil {
		return nil, 0, 0, err
	}
	return merged, 1, radixRuns, nil
}

// mergeChunkRuns is the memo-mode merge: one streaming loser-tree pass
// over the per-chunk runs (cache hits and fresh drains alike, in chunk
// order), re-reducing keys whose values were split across chunks. Like
// the external merge, memoization adds merge sources, not merge rounds.
func mergeChunkRuns[K comparable, V any](app kv.App[K, V], runs [][]kv.Pair[K, V], pool exec.Executor) ([]kv.Pair[K, V], int, error) {
	var merged []kv.Pair[K, V]
	_, err := pool.ForEach("merge", metrics.StateUser, 1, func(int) error {
		srcs := make([]sortalgo.Source[K, V], len(runs))
		for i, r := range runs {
			srcs[i] = sortalgo.NewSliceSource(r)
		}
		var mErr error
		merged, mErr = sortalgo.MergeSources(srcs, app.Less, app.Reduce, nil)
		return mErr
	})
	if err != nil {
		return nil, 0, err
	}
	return merged, 1, nil
}

// DefaultMerge is the merge algorithm SupMR ships with: the single-round
// parallel p-way merge.
const DefaultMerge = sortalgo.MergePWay
