// Package core implements SupMR, the paper's primary contribution: a
// scale-up MapReduce runtime whose ingest chunk pipeline overlaps reading
// the input with map computation (double-buffering, §III) and whose merge
// phase uses a single-round parallel p-way merge (§IV).
//
// The shape follows Table I:
//
//	run_ingestMR()  -> Run            (launch the SupMR runtime)
//	run_mappers()   -> runMappers     (wrapper over mapreduce.MapWave that
//	                                   keeps the container persistent)
//	run_reducers()  -> mapreduce.ReducePhase (same as the internal reduce)
//	set_data()      -> ChunkAware.SetData    (chunk pointer/length callback)
//
// The pipeline executes n+1 rounds for n ingest chunks: the first round
// ingests chunk 0 serially, rounds 1..n-1 ingest chunk i+1 while mappers
// operate on chunk i, and the final round maps the last chunk.
package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
	"supmr/internal/metrics"
	"supmr/internal/sortalgo"
)

// ChunkAware is the set_data() callback of Table I: applications that
// need to know which ingest chunk their map callbacks are about to
// operate on (its length, index and source files) implement it; the
// runtime invokes it before each map wave.
type ChunkAware interface {
	SetData(c *chunk.Chunk)
}

// Tuner is the adaptive chunk-size feedback loop (the paper's §VIII
// future work, implemented in internal/tuner): after each pipelined
// round it receives the ingested chunk size and the round's observed
// ingest and map durations, and returns the chunk size to use next.
type Tuner interface {
	Next(chunkBytes int64, ingest, mapT time.Duration) int64
}

// Options configure the SupMR pipeline. The embedded runtime options
// carry worker counts, split counts and instrumentation; Merge defaults
// to the p-way algorithm, the SupMR sort modification.
type Options struct {
	mapreduce.Options
	// ResetEachRound re-initializes the container at every map round,
	// the traditional behaviour SupMR had to remove (§III-C). It exists
	// only for the persistent-container ablation: with it set, combiner
	// state from earlier rounds is discarded and results are wrong for
	// multi-chunk inputs.
	ResetEachRound bool
	// Tuner, when set and the input stream is chunk.Resizable, drives
	// the adaptive chunk-size feedback loop.
	Tuner Tuner
}

// Result aliases the runtime result type.
type Result[K comparable, V any] = mapreduce.Result[K, V]

// Run launches the SupMR runtime (the run_ingestMR() API call): it
// drives the ingest chunk pipeline over the stream, reduces once, and
// merges with the configured algorithm. The container persists across
// all map rounds.
func Run[K comparable, V any](app kv.App[K, V], input chunk.Stream, cont container.Container[K, V], opts Options) (*Result[K, V], error) {
	ro := opts.Options
	timer := ro.Timer
	if timer == nil {
		timer = metrics.NewTimer(wallNow())
	}

	// Fresh container at job start; never again (unless the ablation
	// flag asks for the broken behaviour).
	cont.Reset()
	ro.ResetContainer = false

	var ingestID int
	rec := ro.Recorder
	if rec != nil {
		ingestID = rec.Register()
	}
	ingest := func() (*chunk.Chunk, error) {
		if rec != nil {
			rec.SetState(ingestID, metrics.StateIOWait)
			defer rec.SetState(ingestID, metrics.StateIdle)
		}
		c, err := input.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("core: ingest failed: %w", err)
		}
		return c, nil
	}

	var stats mapreduce.Stats
	runMappers := func(c *chunk.Chunk) time.Duration {
		start := wallClock()
		if opts.ResetEachRound {
			cont.Reset()
		}
		if ca, ok := any(app).(ChunkAware); ok {
			ca.SetData(c)
		}
		n, busy := mapreduce.MapWaveTimed(app, c.Data, cont, ro)
		stats.Splits += n
		stats.MapBusy += busy
		stats.MapWaves++
		stats.BytesIngested += c.Size()
		return wallClock() - start
	}

	resizable, _ := input.(chunk.Resizable)

	// The ingest chunk pipeline (§III-B pseudo-code):
	//   ingest 1st chunk
	//   for each ingest chunk:
	//     create thread to ingest next chunk
	//     run mappers on previous chunk
	//     destroy thread
	//   run mappers on last chunk
	timer.StartPhase(metrics.PhaseReadMap)
	cur, err := ingest()
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	if errors.Is(err, io.EOF) {
		cur = nil
	}
	for cur != nil {
		type ingestResult struct {
			c   *chunk.Chunk
			err error
			dur time.Duration
		}
		nextCh := make(chan ingestResult, 1)
		go func() {
			start := wallClock()
			c, err := ingest()
			nextCh <- ingestResult{c, err, wallClock() - start}
		}()
		// Give the ingest goroutine a scheduling slot so it reaches the
		// storage device (issuing its reservation and parking in the
		// device wait) before the mappers monopolize the CPUs; on
		// low-core machines it would otherwise start the read only
		// after the map wave finishes, defeating the double-buffering.
		runtime.Gosched()
		mapDur := runMappers(cur)
		r := <-nextCh
		if r.err != nil && !errors.Is(r.err, io.EOF) {
			timer.EndPhase(metrics.PhaseReadMap)
			return nil, r.err
		}
		// Feedback loop: fold this round's observation into the tuner
		// and resize subsequent chunks.
		if opts.Tuner != nil && resizable != nil && r.c != nil {
			if next := opts.Tuner.Next(r.c.Size(), r.dur, mapDur); next > 0 {
				resizable.SetChunkSize(next)
			}
		}
		cur = r.c
	}
	timer.EndPhase(metrics.PhaseReadMap)
	stats.IntermediateN = cont.Len()

	timer.StartPhase(metrics.PhaseReduce)
	runs, reduceBusy := mapreduce.ReducePhaseTimed(app, cont, ro)
	timer.EndPhase(metrics.PhaseReduce)
	stats.Runs = len(runs)
	stats.ReduceBusy = reduceBusy

	timer.StartPhase(metrics.PhaseMerge)
	merged, rounds := mapreduce.MergePhase(app, runs, ro)
	timer.EndPhase(metrics.PhaseMerge)
	stats.MergeRounds = rounds
	stats.OutputPairs = len(merged)

	return &Result[K, V]{Pairs: merged, Times: timer.Finish(), Stats: stats}, nil
}

// DefaultMerge is the merge algorithm SupMR ships with: the single-round
// parallel p-way merge.
const DefaultMerge = sortalgo.MergePWay

func wallNow() func() time.Duration {
	epoch := time.Now()
	return func() time.Duration { return time.Since(epoch) }
}

var processEpoch = time.Now()

// wallClock reads a process-wide monotonic clock for per-round tuner
// observations (phase timers own the job timeline; the tuner only needs
// durations).
func wallClock() time.Duration { return time.Since(processEpoch) }
