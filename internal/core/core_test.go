package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"supmr/internal/chunk"
	"supmr/internal/container"
	"supmr/internal/exec"
	"supmr/internal/kv"
	"supmr/internal/mapreduce"
	"supmr/internal/metrics"
	"supmr/internal/sortalgo"
	"supmr/internal/storage"
	"supmr/internal/workload"
)

// wcApp is a local word count application (the apps package imports
// this package for its iterative driver, so tests define their own).
type wcApp struct{}

func (wcApp) Map(split []byte, emit kv.Emitter[string, int64]) {
	workload.Tokenize(split, func(w []byte) { emit.Emit(string(w), 1) })
}

func (wcApp) Reduce(_ string, vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}

func (wcApp) Combine(a, b int64) int64 { return a + b }
func (wcApp) Less(a, b string) bool    { return a < b }

func (w wcApp) NewContainer(shards int) container.Container[string, int64] {
	return container.NewHash[string, int64](shards, container.StringHasher, w.Combine)
}

func textStream(t *testing.T, data []byte, chunkSize int64) chunk.Stream {
	t.Helper()
	f := storage.BytesFile("in", data, storage.NewNullDevice(storage.NewFakeClock()))
	s, err := chunk.NewInterFile(f, chunkSize, chunk.NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func genText(t *testing.T, n int64) []byte {
	t.Helper()
	buf := make([]byte, n)
	workload.TextGen{Seed: 33}.Fill()(0, buf)
	return buf
}

func refCounts(text []byte) map[string]int64 {
	ref := make(map[string]int64)
	for _, w := range strings.Fields(string(text)) {
		ref[w]++
	}
	return ref
}

func TestPipelineMatchesReference(t *testing.T) {
	text := genText(t, 64<<10)
	wc := wcApp{}
	res, err := Run[string, int64](wc, textStream(t, text, 5<<10), wc.NewContainer(16),
		Options{Options: mapreduce.Options{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ref := refCounts(text)
	if len(res.Pairs) != len(ref) {
		t.Fatalf("got %d words, want %d", len(res.Pairs), len(ref))
	}
	for _, p := range res.Pairs {
		if ref[p.Key] != p.Val {
			t.Fatalf("count[%q] = %d, want %d", p.Key, p.Val, ref[p.Key])
		}
	}
	if res.Stats.MapWaves < 10 {
		t.Errorf("map waves = %d, want >= 10 for 5 KiB chunks over 64 KiB", res.Stats.MapWaves)
	}
}

func TestPipelineRecordsFusedPhase(t *testing.T) {
	text := genText(t, 16<<10)
	wc := wcApp{}
	res, err := Run[string, int64](wc, textStream(t, text, 4<<10), wc.NewContainer(8),
		Options{Options: mapreduce.Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Times.Get(metrics.PhaseReadMap) <= 0 {
		t.Error("fused read+map phase not recorded")
	}
	if res.Times.Get(metrics.PhaseRead) != 0 || res.Times.Get(metrics.PhaseMap) != 0 {
		t.Error("pipeline should not record separate read/map phases")
	}
}

func TestPipelineEmptyInput(t *testing.T) {
	wc := wcApp{}
	res, err := Run[string, int64](wc, textStream(t, []byte{}, 1024), wc.NewContainer(4),
		Options{Options: mapreduce.Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 || res.Stats.MapWaves != 0 {
		t.Errorf("empty input produced %d pairs, %d waves", len(res.Pairs), res.Stats.MapWaves)
	}
}

func TestPipelineSingleChunk(t *testing.T) {
	text := genText(t, 8<<10)
	wc := wcApp{}
	res, err := Run[string, int64](wc, textStream(t, text, 1<<20), wc.NewContainer(8),
		Options{Options: mapreduce.Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MapWaves != 1 {
		t.Errorf("single-chunk input ran %d waves", res.Stats.MapWaves)
	}
	if len(res.Pairs) != len(refCounts(text)) {
		t.Error("single-chunk results wrong")
	}
}

func TestResetEachRoundLosesEarlierChunks(t *testing.T) {
	text := genText(t, 64<<10)
	wc := wcApp{}
	good, err := Run[string, int64](wc, textStream(t, text, 5<<10), wc.NewContainer(16),
		Options{Options: mapreduce.Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Run[string, int64](wc, textStream(t, text, 5<<10), wc.NewContainer(16),
		Options{Options: mapreduce.Options{Workers: 2}, ResetEachRound: true})
	if err != nil {
		t.Fatal(err)
	}
	var goodTotal, badTotal int64
	for _, p := range good.Pairs {
		goodTotal += p.Val
	}
	for _, p := range bad.Pairs {
		badTotal += p.Val
	}
	if badTotal >= goodTotal {
		t.Errorf("reset-each-round kept %d occurrences, persistent kept %d — ablation should lose data",
			badTotal, goodTotal)
	}
}

// chunkSpy records set_data callbacks.
type chunkSpy struct {
	wcApp
	chunks []int
	sizes  []int64
}

func (s *chunkSpy) SetData(c *chunk.Chunk) {
	s.chunks = append(s.chunks, c.Index)
	s.sizes = append(s.sizes, c.Size())
}

func TestSetDataCallback(t *testing.T) {
	text := genText(t, 32<<10)
	spy := &chunkSpy{}
	res, err := Run[string, int64](spy, textStream(t, text, 8<<10), spy.NewContainer(8),
		Options{Options: mapreduce.Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(spy.chunks) != res.Stats.MapWaves {
		t.Errorf("SetData called %d times for %d waves", len(spy.chunks), res.Stats.MapWaves)
	}
	for i, idx := range spy.chunks {
		if idx != i {
			t.Errorf("SetData chunk order: got %v", spy.chunks)
			break
		}
	}
	var sum int64
	for _, s := range spy.sizes {
		sum += s
	}
	if sum != int64(len(text)) {
		t.Errorf("chunk sizes sum to %d, want %d", sum, len(text))
	}
}

// errStream fails on the k-th Next call.
type errStream struct {
	inner  chunk.Stream
	failAt int
	calls  int
}

func (e *errStream) TotalBytes() int64 { return e.inner.TotalBytes() }
func (e *errStream) Next() (*chunk.Chunk, error) {
	e.calls++
	if e.calls == e.failAt {
		return nil, errors.New("mid-stream ingest failure")
	}
	return e.inner.Next()
}

func TestPipelinePropagatesErrors(t *testing.T) {
	text := genText(t, 32<<10)
	wc := wcApp{}
	for _, failAt := range []int{1, 2, 3} {
		s := &errStream{inner: textStream(t, text, 4<<10), failAt: failAt}
		_, err := Run[string, int64](wc, s, wc.NewContainer(8),
			Options{Options: mapreduce.Options{Workers: 2}})
		if err == nil || !strings.Contains(err.Error(), "mid-stream ingest failure") {
			t.Errorf("failAt=%d: err = %v", failAt, err)
		}
	}
}

func TestPipelineOverlapsIngestWithMap(t *testing.T) {
	// With a throttled device, the pipelined read+map should take about
	// the raw read time — NOT read + map serialized. Use a slow "map"
	// via a compute-heavy app to make the distinction visible.
	if testing.Short() {
		t.Skip("timing test")
	}
	clock := storage.NewRealClock()
	const size = 512 << 10
	data := genText(t, size)
	d, err := storage.NewDisk(storage.DiskConfig{Name: "slow", Bandwidth: 2 << 20}, clock)
	if err != nil {
		t.Fatal(err)
	}
	f, err := storage.NewFile("in", size, 0, func(off int64, p []byte) { copy(p, data[off:]) }, d)
	if err != nil {
		t.Fatal(err)
	}
	s, err := chunk.NewInterFile(f, 32<<10, chunk.NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	wc := wcApp{}
	timer := metrics.NewTimer(clock.Now)
	res, err := Run[string, int64](wc, s, wc.NewContainer(16),
		Options{Options: mapreduce.Options{Workers: 2, Timer: timer}})
	if err != nil {
		t.Fatal(err)
	}
	rawRead := time.Duration(float64(size) / float64(2<<20) * float64(time.Second))
	fused := res.Times.Get(metrics.PhaseReadMap)
	// Allow 40% slack for scheduling noise; the point is it is not
	// read+map serialized (which would be ~rawRead + mapTime).
	if fused > rawRead*14/10 {
		t.Errorf("fused read+map %v far exceeds raw read %v — pipeline not overlapping", fused, rawRead)
	}
}

func TestDefaultMergeIsPWay(t *testing.T) {
	if DefaultMerge != sortalgo.MergePWay {
		t.Error("SupMR default merge should be p-way")
	}
}

// cancelApp cancels the job from inside its first map task and records
// how many map waves started.
type cancelApp struct {
	wcApp
	cancel context.CancelFunc
	waves  atomic.Int32
	fired  atomic.Bool
}

func (a *cancelApp) SetData(*chunk.Chunk) { a.waves.Add(1) }

func (a *cancelApp) Map(split []byte, emit kv.Emitter[string, int64]) {
	if a.fired.CompareAndSwap(false, true) {
		a.cancel()
	}
	time.Sleep(5 * time.Millisecond) // let the cancellation land mid-wave
	a.wcApp.Map(split, emit)
}

func TestPipelineCancelledMidMapWave(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pool := exec.NewPool(ctx, exec.Config{Workers: 2})
	defer pool.Close()
	text := genText(t, 64<<10)
	app := &cancelApp{cancel: cancel}
	_, err := Run[string, int64](app, textStream(t, text, 4<<10), wcApp{}.NewContainer(8),
		Options{Options: mapreduce.Options{Pool: pool}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 16 chunks were queued; a prompt cancellation stops within one round
	// of the wave that observed it.
	if w := app.waves.Load(); w > 2 {
		t.Errorf("ran %d map waves after cancellation, want <= 2", w)
	}
}

// panicCoreApp panics in every map task.
type panicCoreApp struct{ wcApp }

func (panicCoreApp) Map([]byte, kv.Emitter[string, int64]) { panic("mapper exploded") }

func TestPipelineSurvivesMapPanic(t *testing.T) {
	// A panicking map task under the SupMR runtime becomes a job error
	// naming the phase and split — it must not kill the process or hang
	// the prefetch.
	text := genText(t, 32<<10)
	_, err := Run[string, int64](panicCoreApp{}, textStream(t, text, 4<<10), wcApp{}.NewContainer(8),
		Options{Options: mapreduce.Options{Workers: 2}})
	if err == nil {
		t.Fatal("panicking map task did not fail the job")
	}
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *exec.PanicError", err)
	}
	if pe.Phase != "map" || pe.Task < 0 {
		t.Errorf("panic error = %+v, want map phase with task index", pe)
	}
	if !strings.Contains(err.Error(), "mapper exploded") {
		t.Errorf("err %q does not carry the panic value", err)
	}
}

// inflightStream counts Next calls currently executing, so tests can
// assert the pipeline joined — not abandoned — its prefetch read.
type inflightStream struct {
	inner    chunk.Stream
	failAt   int
	calls    atomic.Int32
	inflight atomic.Int32
}

func (s *inflightStream) TotalBytes() int64 { return s.inner.TotalBytes() }
func (s *inflightStream) Next() (*chunk.Chunk, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	time.Sleep(2 * time.Millisecond) // a read that takes real time
	if int(s.calls.Add(1)) == s.failAt {
		return nil, errors.New("mid-stream ingest failure")
	}
	return s.inner.Next()
}

func TestIngestErrorJoinsPrefetchWithoutLeaks(t *testing.T) {
	// Regression for the abandoned-prefetch bug: a mid-stream ingest
	// error must surface promptly AND the in-flight prefetch goroutine
	// must be joined before Run returns, leaking nothing.
	text := genText(t, 64<<10)
	wc := wcApp{}
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s := &inflightStream{inner: textStream(t, text, 4<<10), failAt: 3}
		start := time.Now()
		_, err := Run[string, int64](wc, s, wc.NewContainer(8),
			Options{Options: mapreduce.Options{Workers: 2}})
		if err == nil || !strings.Contains(err.Error(), "mid-stream ingest failure") {
			t.Fatalf("err = %v, want mid-stream ingest failure", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("ingest error did not surface promptly")
		}
		if n := s.inflight.Load(); n != 0 {
			t.Fatalf("%d stream reads still in flight after Run returned", n)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Errorf("goroutines grew from %d to %d across failed jobs — prefetch leaked", base, n)
	}
}

// recTuner records the round observations fed into the feedback loop.
type recTuner struct {
	ingests []time.Duration
	maps    []time.Duration
}

func (r *recTuner) Next(_ int64, ingest, mapT time.Duration) int64 {
	r.ingests = append(r.ingests, ingest)
	r.maps = append(r.maps, mapT)
	return 0 // keep the chunk size
}

func TestTunerObservesJobClock(t *testing.T) {
	// Regression for the wallClock() bug: round timings fed to the tuner
	// must come from the job clock (here a virtual FakeClock driving a
	// simulated disk), not the process real-time epoch. On the fake
	// timeline each 8 KiB ingest at 1 MiB/s costs ~7.8ms; on the real
	// clock these reads complete in microseconds.
	clock := storage.NewFakeClock()
	const size = 64 << 10
	data := genText(t, size)
	d, err := storage.NewDisk(storage.DiskConfig{Name: "sim", Bandwidth: 1 << 20}, clock)
	if err != nil {
		t.Fatal(err)
	}
	f, err := storage.NewFile("in", size, 0, func(off int64, p []byte) { copy(p, data[off:]) }, d)
	if err != nil {
		t.Fatal(err)
	}
	s, err := chunk.NewInterFile(f, 8<<10, chunk.NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.NewPool(nil, exec.Config{Workers: 2, Now: clock.Now})
	defer pool.Close()
	tun := &recTuner{}
	wc := wcApp{}
	if _, err := Run[string, int64](wc, s, wc.NewContainer(8),
		Options{Options: mapreduce.Options{Pool: pool, Timer: metrics.NewTimer(clock.Now)}, Tuner: tun}); err != nil {
		t.Fatal(err)
	}
	if len(tun.ingests) == 0 {
		t.Fatal("tuner never fed")
	}
	var total time.Duration
	for _, dur := range tun.ingests {
		total += dur
	}
	// 7 observed rounds x ~7.8ms virtual each; real-clock timings would
	// sum to well under a millisecond.
	if total < 10*time.Millisecond {
		t.Errorf("tuner ingest durations sum to %v — not read off the virtual job clock", total)
	}
}

func TestStableWorkerRegistrationAcrossRounds(t *testing.T) {
	// A multi-round SupMR job draws every phase from one persistent pool:
	// the utilization trace must show exactly workers+1 registered workers
	// (compute + the dedicated ingest lane), not a fresh batch per wave.
	rec := metrics.NewUtilRecorder(4, func() time.Duration { return 0 })
	text := genText(t, 64<<10)
	wc := wcApp{}
	res, err := Run[string, int64](wc, textStream(t, text, 4<<10), wc.NewContainer(8),
		Options{Options: mapreduce.Options{Workers: 3, Recorder: rec}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MapWaves < 10 {
		t.Fatalf("want a multi-round job, got %d waves", res.Stats.MapWaves)
	}
	if got := rec.Registered(); got != 4 {
		t.Errorf("trace registered %d workers across %d rounds, want stable 4 (3 compute + 1 IO)",
			got, res.Stats.MapWaves)
	}
}

// oscTuner swings the chunk size hard every round — worst case for a
// resize landing while the prefetch ring holds reads in flight.
type oscTuner struct{ round int }

func (o *oscTuner) Next(int64, time.Duration, time.Duration) int64 {
	o.round++
	if o.round%2 == 0 {
		return 4 << 10
	}
	return 24 << 10
}

func TestTunerResizeWithPrefetchRing(t *testing.T) {
	// An aggressive tuner combined with a deep prefetch ring and
	// multi-lane reads: SetChunkSize is applied by the pump before it
	// issues a read, so a resize can only affect not-yet-issued chunks —
	// never tear one mid-flight — and the job's output must match a
	// defaults run exactly.
	text := genText(t, 96<<10)
	wc := wcApp{}
	ref, err := Run[string, int64](wc, textStream(t, text, 8<<10), wc.NewContainer(16),
		Options{Options: mapreduce.Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.NewPool(nil, exec.Config{Workers: 2, IOWorkers: 2})
	defer pool.Close()
	got, err := Run[string, int64](wc, textStream(t, text, 8<<10), wc.NewContainer(16),
		Options{
			Options:       mapreduce.Options{Pool: pool},
			Tuner:         &oscTuner{},
			PrefetchDepth: 3,
			IOLanes:       2,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pairs) != len(ref.Pairs) {
		t.Fatalf("tuned ring run produced %d pairs, reference %d", len(got.Pairs), len(ref.Pairs))
	}
	for i, p := range got.Pairs {
		if r := ref.Pairs[i]; p.Key != r.Key || p.Val != r.Val {
			t.Fatalf("pair %d: got %q=%d, want %q=%d", i, p.Key, p.Val, r.Key, r.Val)
		}
	}
	if got.Stats.MapWaves < 4 {
		t.Fatalf("only %d map waves; the resize sweep needs a multi-round job", got.Stats.MapWaves)
	}
}

func TestPrefetchRingCountsHitsAndStalls(t *testing.T) {
	// On an instant device every chunk after the first is buffered by
	// the time the map wave ends: all joins are prefetch hits, none
	// stall.
	text := genText(t, 64<<10)
	wc := wcApp{}
	res, err := Run[string, int64](wc, textStream(t, text, 8<<10), wc.NewContainer(16),
		Options{Options: mapreduce.Options{Workers: 2}, PrefetchDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MapWaves < 2 {
		t.Fatal("need a multi-chunk run")
	}
	if res.Stats.PrefetchHits+1 < res.Stats.MapWaves &&
		res.Stats.PrefetchHits == 0 {
		t.Errorf("prefetch ring reported %d hits over %d waves on an instant device",
			res.Stats.PrefetchHits, res.Stats.MapWaves)
	}
}

func TestPrefetchRingDrainsOnMidStreamError(t *testing.T) {
	// A deep ring holds chunks the mappers never consume when ingest
	// fails mid-stream; the failure path must drain and release them —
	// observable as a prompt return with the wrapped stream error at
	// every depth.
	text := genText(t, 64<<10)
	wc := wcApp{}
	for _, depth := range []int{1, 2, 4, 8} {
		s := &errStream{inner: textStream(t, text, 4<<10), failAt: 5}
		_, err := Run[string, int64](wc, s, wc.NewContainer(8),
			Options{Options: mapreduce.Options{Workers: 2}, PrefetchDepth: depth})
		if err == nil || !strings.Contains(err.Error(), "mid-stream ingest failure") {
			t.Errorf("depth %d: err = %v, want the mid-stream failure", depth, err)
		}
	}
}
