// Package jobspec is the serializable job description the supmrd job
// server and the supmr CLI share: a Spec names an application, its
// generated workload and its runtime knobs; Run executes it — against a
// shared multi-job Engine when one is supplied — and returns a Result
// whose output digest lets callers diff a server-mode run against a
// direct run byte-for-byte without shipping the pairs themselves.
package jobspec

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"supmr"
	"supmr/internal/cliutil"
	"supmr/internal/workload"
)

// Spec describes one job submission. The zero value of every optional
// field selects the documented default; Validate rejects nonsensical
// values instead of guessing.
type Spec struct {
	// App selects the application: wordcount | sort | histogram | grep |
	// psum1 | psum2 (the two rounds of the prefix-sum pipeline).
	App string `json:"app"`
	// Runtime selects the runtime: "supmr" (default) | "traditional".
	Runtime string `json:"runtime,omitempty"`
	// Size is the generated input size in bytes (default 4 MiB).
	Size int64 `json:"size,omitempty"`
	// Seed seeds workload generation (default 1).
	Seed int64 `json:"seed,omitempty"`
	// ChunkBytes is the SupMR ingest chunk size (default 256 KiB).
	ChunkBytes int64 `json:"chunk,omitempty"`
	// Budget caps the job's intermediate-container bytes; over-budget
	// state spills (supmr runtime only; 0 = unbudgeted). On an engine,
	// this is the request — the grant may be smaller.
	Budget int64 `json:"budget,omitempty"`
	// BW is the simulated storage bandwidth in bytes/sec (0 = infinite).
	BW int64 `json:"bw,omitempty"`
	// IOLanes is the striped-ingest lane count (default 1).
	IOLanes int `json:"io_lanes,omitempty"`
	// PrefetchDepth is the prefetch ring depth (default 1).
	PrefetchDepth int `json:"prefetch_depth,omitempty"`
	// Pattern is the comma-separated grep pattern list (grep only).
	Pattern string `json:"pattern,omitempty"`
	// Tenant names the submitting tenant for the engine rollup.
	Tenant string `json:"tenant,omitempty"`
	// Weight is the fair-share weight on the engine (default 1).
	Weight int `json:"weight,omitempty"`
	// Memo enables content-addressed incremental recompute: ingest
	// switches to content-defined chunking and each chunk's map/combine
	// output is memoized in the engine's shared store (or a private
	// per-run store when running without an engine store), so a
	// re-submission over mostly unchanged content replays cached output
	// instead of mapping it again. Supmr runtime only.
	Memo bool `json:"memo,omitempty"`
	// MemoKey namespaces the job's cache entries. Empty derives a key
	// space from the app (and, for grep, its patterns) so distinct
	// applications sharing the engine store never replay each other's
	// output.
	MemoKey string `json:"memo_key,omitempty"`
	// RadixOff disables the fixed-width-key sort fast path (radix run
	// sort + columnar merge) — the -radixsort=off ablation. Output is
	// byte-identical either way.
	RadixOff bool `json:"radix_off,omitempty"`
	// Nodes, when >= 1, runs the job on a simulated cluster of that
	// many SupMR worker nodes exchanging hash-partitioned runs over
	// simulated links (supmr runtime, solo execution only — the shared
	// engine schedules operations on one substrate). Output is
	// byte-identical to a single-node run; 0 keeps the scale-up
	// pipeline.
	Nodes int `json:"nodes,omitempty"`
	// InNodeCombinerOff disables the in-node combiner tier of a
	// multi-node run — the -innode-combiner=off ablation. Requires
	// Nodes >= 1. Output is byte-identical either way; only wire
	// traffic changes.
	InNodeCombinerOff bool `json:"innode_combiner_off,omitempty"`
	// Faults is a cliutil fault-plan string (e.g. "seed=7,read-err-every=5").
	Faults string `json:"faults,omitempty"`
	// Retries is a cliutil retry-policy string (e.g. "4" or "attempts=4,base=100us").
	Retries string `json:"retries,omitempty"`
	// EgressLanes, when >= 1, materializes the merged output across
	// that many concurrent extent writers after the merge (1 is the
	// serial-writer ablation; output is byte-identical at any lane
	// count). 0 skips output materialization.
	EgressLanes int `json:"egress_lanes,omitempty"`
	// Block is the records-per-block grouping of psum1 (default 256).
	Block int64 `json:"block,omitempty"`
	// Blocks is the total block count psum2 emits prefix sums for
	// (default: derived from Size and Block as a standalone round-1
	// reference; a DAG fills it from the upstream round).
	Blocks int64 `json:"blocks,omitempty"`
}

// Result summarizes a completed job: counters, the phase breakdown, and
// a digest of the key-sorted output for cross-mode diffing.
type Result struct {
	App         string `json:"app"`
	Runtime     string `json:"runtime"`
	OutputPairs int    `json:"output_pairs"`
	// Digest is the hex SHA-256 over the output pairs rendered one per
	// line as "key\tvalue\n" — identical runs produce identical digests
	// whether executed directly, solo, or on a shared engine.
	Digest   string `json:"digest"`
	Times    string `json:"times"`
	MapWaves int    `json:"map_waves"`
	// RadixRuns counts the runs sorted by the radix fast path (0 when
	// the app has no fixed-width key codec or the ablation disabled it).
	RadixRuns    int    `json:"radix_runs,omitempty"`
	SpilledRuns  int    `json:"spilled_runs,omitempty"`
	SpilledBytes int64  `json:"spilled_bytes,omitempty"`
	Faults       string `json:"faults,omitempty"`
	// MemoHits/MemoMisses count ingest chunks replayed from and
	// published to the memo cache; MemoBytesSaved is the payload bytes
	// of hit chunks, which were hashed but never mapped.
	MemoHits       int   `json:"memo_hits,omitempty"`
	MemoMisses     int   `json:"memo_misses,omitempty"`
	MemoBytesSaved int64 `json:"memo_bytes_saved,omitempty"`
	// Nodes echoes the simulated cluster size of a multi-node run.
	// ShuffleBytes is the framed bytes that crossed simulated links,
	// ShuffleBytesSaved the encoded bytes the in-node combiner kept off
	// the wire, ShuffleFrames the delivered frame count.
	Nodes             int   `json:"nodes,omitempty"`
	ShuffleBytes      int64 `json:"shuffle_bytes,omitempty"`
	ShuffleBytesSaved int64 `json:"shuffle_bytes_saved,omitempty"`
	ShuffleFrames     int   `json:"shuffle_frames,omitempty"`
	// EgressBytes/EgressExtents report the materialized output when the
	// spec set EgressLanes (sha256 of the egressed bytes == Digest).
	EgressBytes   int64 `json:"egress_bytes,omitempty"`
	EgressExtents int   `json:"egress_extents,omitempty"`
	// Notes surfaces configuration caveats the run adapted to (engine
	// instruments disabled, memo ignoring the budget).
	Notes []string `json:"notes,omitempty"`
}

// apps the server knows how to build workloads for.
var knownApps = map[string]bool{
	"wordcount": true, "sort": true, "histogram": true, "grep": true,
	"psum1": true, "psum2": true,
}

// pipedApps consume newline-terminated "key\tvalue" text — the egress
// rendering — so they can run over a piped upstream output in a DAG.
// sort (100-byte CRLF records) and psum1 (16-byte self-indexed
// records) need generated workloads and can only be source rounds.
var pipedApps = map[string]bool{
	"wordcount": true, "histogram": true, "grep": true, "psum2": true,
}

// CanConsumePiped reports whether app can run over a piped upstream
// output (internal/dag uses this to validate graph edges).
func CanConsumePiped(app string) bool { return pipedApps[app] }

// Validate rejects malformed specs with a descriptive error and fills
// in no defaults — normalization happens in Run.
func (s Spec) Validate() error {
	if s.App == "" {
		return fmt.Errorf("jobspec: missing app")
	}
	if !knownApps[s.App] {
		return fmt.Errorf("jobspec: unknown app %q (want wordcount, sort, histogram, grep, psum1 or psum2)", s.App)
	}
	switch s.Runtime {
	case "", "supmr", "traditional":
	default:
		return fmt.Errorf("jobspec: unknown runtime %q", s.Runtime)
	}
	if s.Size < 0 {
		return fmt.Errorf("jobspec: negative size %d", s.Size)
	}
	if s.ChunkBytes < 0 {
		return fmt.Errorf("jobspec: negative chunk size %d", s.ChunkBytes)
	}
	if s.Budget < 0 {
		return fmt.Errorf("jobspec: negative budget %d", s.Budget)
	}
	if s.BW < 0 {
		return fmt.Errorf("jobspec: negative bandwidth %d", s.BW)
	}
	if s.IOLanes < 0 {
		return fmt.Errorf("jobspec: io_lanes must be positive, got %d", s.IOLanes)
	}
	if s.PrefetchDepth < 0 {
		return fmt.Errorf("jobspec: prefetch_depth must be positive, got %d", s.PrefetchDepth)
	}
	if s.Weight < 0 {
		return fmt.Errorf("jobspec: negative weight %d (fair-share weight must be at least 1; omit for the default)", s.Weight)
	}
	if s.Memo && s.Runtime == "traditional" {
		return fmt.Errorf("jobspec: memo requires the supmr runtime (the traditional runtime ingests the whole input as one chunk)")
	}
	if s.Nodes < 0 {
		return fmt.Errorf("jobspec: negative node count %d", s.Nodes)
	}
	if s.Nodes > 0 {
		if s.Runtime == "traditional" {
			return fmt.Errorf("jobspec: nodes requires the supmr runtime (each node runs the scale-up pipeline over its local chunks)")
		}
		if s.Memo {
			return fmt.Errorf("jobspec: nodes is incompatible with memo (multi-node runs shard chunks across node containers)")
		}
	}
	if s.InNodeCombinerOff && s.Nodes == 0 {
		return fmt.Errorf("jobspec: innode_combiner_off set without nodes")
	}
	if s.MemoKey != "" && !s.Memo {
		return fmt.Errorf("jobspec: memo_key set without memo")
	}
	if s.Budget > 0 {
		if s.Runtime == "traditional" {
			return fmt.Errorf("jobspec: budget requires the supmr runtime")
		}
		if s.App == "histogram" {
			return fmt.Errorf("jobspec: budget is incompatible with histogram: its array container has a fixed footprint and cannot spill")
		}
	}
	if s.Faults != "" {
		if _, err := cliutil.ParseFaultPlan(s.Faults); err != nil {
			return fmt.Errorf("jobspec: %w", err)
		}
	}
	if s.Retries != "" {
		if _, err := cliutil.ParseRetryPolicy(s.Retries); err != nil {
			return fmt.Errorf("jobspec: %w", err)
		}
	}
	if s.EgressLanes < 0 {
		return fmt.Errorf("jobspec: egress_lanes must be positive, got %d", s.EgressLanes)
	}
	if s.Block < 0 {
		return fmt.Errorf("jobspec: negative block %d", s.Block)
	}
	if s.Blocks < 0 {
		return fmt.Errorf("jobspec: negative blocks %d", s.Blocks)
	}
	if s.Block > 0 && s.App != "psum1" && s.App != "psum2" {
		return fmt.Errorf("jobspec: block is only meaningful for psum1/psum2, not %q", s.App)
	}
	if s.Blocks > 0 && s.App != "psum2" {
		return fmt.Errorf("jobspec: blocks is only meaningful for psum2, not %q", s.App)
	}
	return nil
}

// Run executes the spec. With eng non-nil the job is submitted to the
// shared engine (admission, fair-share scheduling, budget carving);
// with eng nil it runs solo on a dedicated pool — output and digest are
// identical either way. ctx cancellation aborts the job.
func Run(ctx context.Context, spec Spec, eng *supmr.Engine) (*Result, error) {
	res, _, err := RunInput(ctx, spec, eng, nil)
	return res, err
}

// RunInput is Run over an explicit ingest source: with input non-nil
// the spec's generated workload is replaced by input — the zero-copy
// pipe internal/dag chains rounds with (an upstream job's egressed
// output is newline-terminated "key\tvalue" text, so the piped app
// must be one CanConsumePiped accepts). The returned EgressOutput is
// the materialized output when spec.EgressLanes was set, nil
// otherwise; callers chaining jobs feed it to the next round.
func RunInput(ctx context.Context, spec Spec, eng *supmr.Engine, input supmr.Input) (*Result, *supmr.EgressOutput, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if input != nil {
		if !CanConsumePiped(spec.App) {
			return nil, nil, fmt.Errorf("jobspec: app %q cannot consume a piped input (it maps a generated record format; pipe into wordcount, histogram, grep or psum2)", spec.App)
		}
		if spec.Memo {
			return nil, nil, fmt.Errorf("jobspec: memo is incompatible with a piped input (piped rounds hold no stable file identity to key the cache by)")
		}
	}
	size := spec.Size
	if size <= 0 {
		size = 4 << 20
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	chunk := spec.ChunkBytes
	if chunk <= 0 {
		chunk = 256 << 10
	}
	block := spec.Block
	if block <= 0 {
		block = 256
	}
	rt := supmr.RuntimeSupMR
	rtName := "supmr"
	if spec.Runtime == "traditional" {
		rt = supmr.RuntimeTraditional
		rtName = "traditional"
	}

	clock := supmr.NewClock()
	var dev supmr.Device
	if spec.BW > 0 {
		d, err := supmr.NewDisk("sim", float64(spec.BW), 0, clock)
		if err != nil {
			return nil, nil, err
		}
		dev = d
	} else {
		dev = supmr.NewFastDevice(clock)
	}

	cfg := supmr.Config{
		Context:       ctx,
		Runtime:       rt,
		ChunkBytes:    chunk,
		Clock:         clock,
		IOLanes:       spec.IOLanes,
		PrefetchDepth: spec.PrefetchDepth,
		Engine:        eng,
		Tenant:        spec.Tenant,
		Weight:        spec.Weight,
	}
	if spec.EgressLanes > 0 {
		cfg.EgressLanes = spec.EgressLanes
		cfg.EgressDevice = dev // egress contends with ingest for the same bandwidth
	}
	if spec.RadixOff {
		off := false
		cfg.RadixSort = &off
	}
	if spec.Nodes > 0 {
		cfg.Nodes = spec.Nodes
		if spec.InNodeCombinerOff {
			off := false
			cfg.InNodeCombiner = &off
		}
	}
	if spec.Faults != "" {
		plan, err := cliutil.ParseFaultPlan(spec.Faults)
		if err != nil {
			return nil, nil, err
		}
		cfg.Faults = supmr.NewFaultInjector(plan, clock)
	}
	if spec.Retries != "" {
		policy, err := cliutil.ParseRetryPolicy(spec.Retries)
		if err != nil {
			return nil, nil, err
		}
		cfg.Retry = policy
	}
	if spec.Budget > 0 {
		cfg.MemoryBudget = spec.Budget
		cfg.SpillDevice = dev // spill contends with ingest for the same bandwidth
	}
	if spec.Memo {
		cfg.Memo = true
		cfg.MemoKeySpace = spec.MemoKey
		if cfg.MemoKeySpace == "" {
			// Derive a key space covering everything that shapes a chunk's
			// map output besides its content: the app and, for grep, its
			// pattern list.
			cfg.MemoKeySpace = spec.App
			if spec.App == "grep" {
				p := spec.Pattern
				if p == "" {
					p = "ERROR"
				}
				cfg.MemoKeySpace = "grep:" + p
			}
		}
	}

	switch spec.App {
	case "wordcount":
		f := input
		if f == nil {
			tf, err := supmr.TextFile("wcinput", size, seed, dev)
			if err != nil {
				return nil, nil, err
			}
			f = tf
		}
		return execJob(supmr.WordCountJob(), f, supmr.WordCountContainer(64), cfg, spec.App, rtName)
	case "sort":
		cfg.Boundary = supmr.CRLFRecords
		f, err := supmr.TeraFile("sortinput", size/100, uint64(seed), dev)
		if err != nil {
			return nil, nil, err
		}
		return execJob(supmr.SortJob(), f, supmr.SortContainer(), cfg, spec.App, rtName)
	case "histogram":
		f := input
		if f == nil {
			tf, err := supmr.TextFile("histinput", size, seed, dev)
			if err != nil {
				return nil, nil, err
			}
			f = tf
		}
		job := supmr.HistogramJob()
		return execJob(job, f, job.NewContainer(8), cfg, spec.App, rtName)
	case "grep":
		pattern := spec.Pattern
		if pattern == "" {
			pattern = "ERROR"
		}
		job := supmr.GrepJob(strings.Split(pattern, ",")...)
		f := input
		if f == nil {
			tf, err := supmr.TextFile("grepinput", size, seed, dev)
			if err != nil {
				return nil, nil, err
			}
			f = tf
		}
		return execJob(job, f, job.NewContainer(), cfg, spec.App, rtName)
	case "psum1":
		records := size / workload.SeqRecordWidth
		f, err := supmr.SeqFile("psuminput", records, seed, dev)
		if err != nil {
			return nil, nil, err
		}
		job := supmr.PrefixPartJob(block)
		return execJob(job, f, job.NewContainer(64), cfg, spec.App, rtName)
	case "psum2":
		f := input
		blocks := spec.Blocks
		if f == nil {
			// Standalone: synthesize round 1's reference output from the
			// generator's expected block sums.
			records := size / workload.SeqRecordWidth
			sums := workload.SeqGen{Seed: seed}.BlockSums(records, block)
			var buf strings.Builder
			for b, s := range sums {
				fmt.Fprintf(&buf, "%d\t%d\n", b, s)
			}
			f = supmr.MemoryFile("psum2input", []byte(buf.String()), clock)
			if blocks <= 0 {
				blocks = int64(len(sums))
			}
		}
		if blocks <= 0 {
			return nil, nil, fmt.Errorf("jobspec: psum2 over a piped input needs blocks (the upstream round's block count)")
		}
		job := supmr.PrefixTotalJob(blocks)
		return execJob(job, f, job.NewContainer(64), cfg, spec.App, rtName)
	}
	return nil, nil, fmt.Errorf("jobspec: unknown app %q", spec.App)
}

// execJob runs one typed job and flattens its report into a Result.
func execJob[K comparable, V any](job supmr.Job[K, V], f supmr.Input, cont supmr.Container[K, V], cfg supmr.Config, app, rtName string) (*Result, *supmr.EgressOutput, error) {
	rep, err := supmr.RunFile(job, f, cont, cfg)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{
		App:               app,
		Runtime:           rtName,
		OutputPairs:       len(rep.Pairs),
		Digest:            Digest(rep.Pairs),
		Times:             rep.Times.String(),
		MapWaves:          rep.Stats.MapWaves,
		RadixRuns:         rep.Stats.RadixRuns,
		SpilledRuns:       rep.Stats.SpilledRuns,
		SpilledBytes:      rep.Stats.SpilledBytes,
		MemoHits:          rep.Stats.MemoHits,
		MemoMisses:        rep.Stats.MemoMisses,
		MemoBytesSaved:    rep.Stats.MemoBytesSaved,
		Nodes:             cfg.Nodes,
		ShuffleBytes:      rep.Stats.ShuffleBytes,
		ShuffleBytesSaved: rep.Stats.ShuffleBytesSaved,
		ShuffleFrames:     rep.Stats.ShuffleFrames,
		EgressBytes:       rep.Stats.EgressBytes,
		EgressExtents:     rep.Stats.EgressExtents,
		Notes:             rep.Notes,
	}
	if rep.Stats.Faults.Any() {
		res.Faults = rep.Stats.Faults.String()
	}
	return res, rep.Egress, nil
}

// Digest hashes key-sorted output pairs: hex SHA-256 over one
// "key\tvalue\n" line per pair. Two runs of the same job produce the
// same digest exactly when their outputs are byte-identical under this
// rendering.
func Digest[K comparable, V any](pairs []supmr.Pair[K, V]) string {
	h := sha256.New()
	for _, p := range pairs {
		fmt.Fprintf(h, "%v\t%v\n", p.Key, p.Val)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DigestBytes hashes already-rendered output text. Egress renders
// pairs exactly as Digest does, so DigestBytes over a job's egressed
// bytes equals Digest over its pairs — the property the egress-lanes
// ablation gates on.
func DigestBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
