// Package exec is the shared execution engine both runtimes schedule
// on: one persistent worker pool per job, created once and reused by
// every phase (ingest, map waves, reduce, run-sorting, merge) instead of
// spawning and tearing down goroutines per phase. The SupMR pipeline
// pays phase startup once per ingest round — exactly the repeated-wave
// path the paper optimizes (§III) — so scheduling cost must be bounded
// and observable, not re-paid every wave.
//
// The pool provides:
//
//   - a task-submission API (ForEach for data-parallel phases, GoIO /
//     GoIOSized for the asynchronous ingest/prefetch lanes) replacing the
//     ad-hoc per-phase goroutine spawning;
//   - context.Context cancellation: a cancelled job stops dispatching
//     tasks between iterations and surfaces context.Canceled;
//   - panic isolation: a crashing task becomes a *PanicError naming the
//     phase and task (split) instead of killing the process;
//   - per-task instrumentation: task counts, queue-wait and busy
//     durations per phase (metrics.TaskStats), plus worker busy/idle
//     states on a metrics.UtilRecorder with worker ids that stay stable
//     across phases — so utilization traces keep working unchanged.
//
// Workers are registered with the recorder at pool creation: ids
// 0..Workers-1 are the compute workers and ids Workers..Workers+IOWorkers-1
// are the dedicated IO lane workers that serve GoIO tasks (the paper's
// ingest thread, generalized to k striped lanes), so device waits never
// compete with map tasks for a slot. With the default single lane the
// layout is exactly the original one: the final id is the IO worker.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"supmr/internal/metrics"
)

// PanicError is the job error produced when a task panics: the process
// survives, the job fails, and the error names the crashing task.
type PanicError struct {
	Phase string // phase label, e.g. "map"
	Task  int    // task index within the phase (the split), -1 if n/a
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine
}

// Error names the phase and task so a crashing map split is
// identifiable from the job error alone.
func (e *PanicError) Error() string {
	if e.Task >= 0 {
		return fmt.Sprintf("exec: %s task %d panicked: %v", e.Phase, e.Task, e.Value)
	}
	return fmt.Sprintf("exec: %s panicked: %v", e.Phase, e.Value)
}

// Executor is the task-submission surface the runtimes schedule on.
// *Pool implements it directly — the single-job configuration, where the
// pool belongs to the job. A multi-job engine hands each submission its
// own Executor (internal/sched.JobPool) that shares one pool across jobs
// while keeping cancellation, task statistics and lane-byte attribution
// per job.
type Executor interface {
	// Workers returns the compute worker count (phase parallelism).
	Workers() int
	// IOLanes returns the dedicated IO worker count.
	IOLanes() int
	// LaneBytes snapshots this job's payload bytes per IO lane.
	LaneBytes() []int64
	// Context returns the job's cancellable context.
	Context() context.Context
	// Now reads the job clock.
	Now() time.Duration
	// Err reports the job's cancellation cause, nil while live.
	Err() error
	// Abort cancels the job (not the substrate) with the given cause.
	Abort(cause error)
	// ForEach runs fn(i) for i in [0, n) on the compute workers.
	ForEach(phase string, state metrics.WorkerState, n int, fn func(i int) error) (time.Duration, error)
	// GoIO runs fn asynchronously on a dedicated IO worker.
	GoIO(phase string, state metrics.WorkerState, fn func() error) *Handle
	// GoIOSized is GoIO with payload-byte lane attribution.
	GoIOSized(phase string, state metrics.WorkerState, bytes int64, fn func() error) *Handle
	// TaskStats snapshots this job's per-phase task instrumentation.
	TaskStats() map[string]metrics.TaskStats
}

// Sink accumulates one job's execution statistics: per-phase task
// counts/durations and per-IO-lane payload bytes. A pool owns a default
// sink for its own submissions; a multi-job engine gives every
// submission a private sink so concurrent jobs never bleed counters
// into each other's reports.
type Sink struct {
	mu        sync.Mutex
	stats     map[string]*metrics.TaskStats
	laneBytes []int64
}

// NewSink builds a sink attributing IO bytes across lanes IO lanes.
func NewSink(lanes int) *Sink {
	if lanes < 1 {
		lanes = 1
	}
	return &Sink{
		stats:     make(map[string]*metrics.TaskStats),
		laneBytes: make([]int64, lanes),
	}
}

func (s *Sink) record(phase string, tasks int, queueWait, busy time.Duration) {
	s.mu.Lock()
	st := s.stats[phase]
	if st == nil {
		st = &metrics.TaskStats{}
		s.stats[phase] = st
	}
	st.Add(metrics.TaskStats{Tasks: tasks, QueueWait: queueWait, Busy: busy})
	s.mu.Unlock()
}

func (s *Sink) addLaneBytes(lane int, n int64) {
	s.mu.Lock()
	if lane >= 0 && lane < len(s.laneBytes) {
		s.laneBytes[lane] += n
	}
	s.mu.Unlock()
}

// TaskStats snapshots the per-phase task instrumentation.
func (s *Sink) TaskStats() map[string]metrics.TaskStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]metrics.TaskStats, len(s.stats))
	for k, v := range s.stats {
		out[k] = *v
	}
	return out
}

// LaneBytes snapshots the per-lane payload bytes.
func (s *Sink) LaneBytes() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.laneBytes))
	copy(out, s.laneBytes)
	return out
}

// Config configures a pool.
type Config struct {
	// Workers is the number of compute workers (default: NumCPU).
	// Dedicated IO workers are always added on top for GoIO tasks.
	Workers int
	// IOWorkers is the number of dedicated IO lane workers serving GoIO
	// tasks (default 1, the paper's single ingest thread). The multi-lane
	// ingest path raises it so segmented chunk reads overlap on the
	// device.
	IOWorkers int
	// Recorder, when set, observes worker busy/idle transitions for
	// utilization traces. All workers register once at pool creation.
	Recorder *metrics.UtilRecorder
	// Now is the job clock used for durations handed back to callers
	// (e.g. tuner round observations). Defaults to a wall clock rooted
	// at pool creation. Pass the storage clock so round measurements
	// share the device timeline under simulated clocks.
	Now func() time.Duration
}

// task is one unit of queued work.
type task struct {
	run func(w *worker)
}

// worker is one pool goroutine's identity.
type worker struct {
	pool *Pool
	id   int // recorder worker id, -1 without a recorder
	lane int // IO lane index, -1 for compute workers
}

func (w *worker) setState(s metrics.WorkerState) {
	if w.pool.rec != nil {
		w.pool.rec.SetState(w.id, s)
	}
}

// Pool is the persistent per-job worker pool. Create one with NewPool,
// run every phase on it, then Close it; Close joins all in-flight work,
// so no task (in particular no prefetch ingest parked in a device wait)
// outlives the job.
type Pool struct {
	ctx     context.Context
	abort   context.CancelCauseFunc
	workers int
	lanes   int
	rec     *metrics.UtilRecorder
	now     func() time.Duration

	tasks chan task // compute lane
	io    chan task // dedicated IO lanes (ingest/prefetch)
	wg    sync.WaitGroup

	sink *Sink // the pool's own stats sink (single-job configuration)

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // submits between the closed check and the send
}

// NewPool creates a pool of cfg.Workers compute workers plus
// cfg.IOWorkers dedicated IO workers (at least one), all running until
// Close. ctx cancellation stops task dispatch between iterations;
// in-flight tasks run to completion.
func NewPool(ctx context.Context, cfg Config) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	k := cfg.IOWorkers
	if k <= 0 {
		k = 1
	}
	now := cfg.Now
	if now == nil {
		epoch := time.Now()
		now = func() time.Duration { return time.Since(epoch) }
	}
	cctx, abort := context.WithCancelCause(ctx)
	p := &Pool{
		ctx:     cctx,
		abort:   abort,
		workers: w,
		lanes:   k,
		rec:     cfg.Recorder,
		now:     now,
		tasks:   make(chan task, w),
		io:      make(chan task, k),
		sink:    NewSink(k),
	}
	// Register every worker up front so trace worker ids are stable for
	// the life of the job, whatever mix of phases runs on the pool:
	// compute workers first, then the IO lanes.
	for i := 0; i < w+k; i++ {
		id := -1
		if p.rec != nil {
			id = p.rec.Register()
		}
		ch, lane := p.tasks, -1
		if i >= w {
			ch, lane = p.io, i-w
		}
		p.wg.Add(1)
		go p.loop(&worker{pool: p, id: id, lane: lane}, ch)
	}
	return p
}

// NewLocal is a convenience pool for standalone phase primitives and
// tests: background context, no recorder. Callers must Close it.
func NewLocal(workers int) *Pool {
	return NewPool(context.Background(), Config{Workers: workers})
}

func (p *Pool) loop(w *worker, ch chan task) {
	defer p.wg.Done()
	for t := range ch {
		t.run(w)
	}
}

// Workers returns the compute worker count (phase parallelism).
func (p *Pool) Workers() int { return p.workers }

// IOLanes returns the dedicated IO worker count.
func (p *Pool) IOLanes() int { return p.lanes }

// LaneBytes snapshots the payload bytes attributed to each IO lane by
// GoIOSized tasks, indexed by lane.
func (p *Pool) LaneBytes() []int64 { return p.sink.LaneBytes() }

// Context returns the pool's cancellable job context.
func (p *Pool) Context() context.Context { return p.ctx }

// Now reads the job clock.
func (p *Pool) Now() time.Duration { return p.now() }

// Err reports the cancellation cause, or nil while the job is live.
func (p *Pool) Err() error {
	if p.ctx.Err() != nil {
		return context.Cause(p.ctx)
	}
	return nil
}

// Abort cancels the job with the given cause: queued and future work is
// skipped, in-flight tasks finish, and Err reports cause.
func (p *Pool) Abort(cause error) { p.abort(cause) }

// Close joins the pool: no new tasks are accepted, in-flight tasks
// (including a prefetch parked in a device wait) run to completion, and
// all worker goroutines exit. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	// Let submits that passed the closed check land before closing: the
	// workers are still draining, so the pending sends complete.
	p.inflight.Wait()
	close(p.tasks)
	close(p.io)
	p.wg.Wait()
	p.abort(context.Canceled) // release the derived context
}

// TaskStats snapshots the per-phase task instrumentation.
func (p *Pool) TaskStats() map[string]metrics.TaskStats { return p.sink.TaskStats() }

// submit enqueues t on ch, refusing after Close.
func (p *Pool) submit(ch chan task, t task) error {
	// The in-flight count keeps Close from closing ch between the closed
	// check and the send — a Close racing an active job (engine shutdown
	// with submissions still running) waits for the send to land instead
	// of panicking the sender.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("exec: pool is closed")
	}
	p.inflight.Add(1)
	p.mu.Unlock()
	ch <- t
	p.inflight.Done()
	return nil
}

// ForEach runs fn(i) for every i in [0, n) on the pool's compute
// workers, marking each worker with state while it executes a task and
// idle between tasks. It returns the aggregate busy time (the sum of
// per-task wall-clock durations) and the first error: a task error, a
// *PanicError if a task panicked, or the cancellation cause if the job
// context was cancelled (dispatch stops between tasks). Tasks must not
// themselves submit pool work; phases are sequential, tasks within a
// phase are parallel.
func (p *Pool) ForEach(phase string, state metrics.WorkerState, n int, fn func(i int) error) (time.Duration, error) {
	return p.ForEachScoped(p.ctx, p.sink, phase, state, n, fn)
}

// scopeErr reports ctx's cancellation cause, nil while live.
func scopeErr(ctx context.Context) error {
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// ForEachScoped is ForEach under a job scope: dispatch stops when ctx —
// the job's context, typically derived from the pool's — is cancelled,
// and task statistics land in sink rather than the pool's own. This is
// the entry point a multi-job engine uses so one pool can run phases
// from many jobs with per-job cancellation and attribution; ForEach is
// exactly this call scoped to the pool itself.
func (p *Pool) ForEachScoped(ctx context.Context, sink *Sink, phase string, state metrics.WorkerState, n int, fn func(i int) error) (time.Duration, error) {
	if ctx == nil {
		ctx = p.ctx
	}
	if sink == nil {
		sink = p.sink
	}
	if err := scopeErr(ctx); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, nil
	}
	slots := p.workers
	if slots > n {
		slots = n
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		busyNS   atomic.Int64
		ran      atomic.Int64
		waitNS   atomic.Int64
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				setErr(&PanicError{Phase: phase, Task: i, Value: r, Stack: debug.Stack()})
			}
		}()
		if err := fn(i); err != nil {
			setErr(err)
		}
	}
	loop := func(w *worker, submitted time.Time) {
		defer wg.Done()
		waitNS.Add(int64(time.Since(submitted)))
		for {
			if failed.Load() || ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			w.setState(state)
			start := time.Now()
			runOne(i)
			busyNS.Add(int64(time.Since(start)))
			ran.Add(1)
			w.setState(metrics.StateIdle)
		}
	}
	for s := 0; s < slots; s++ {
		submitted := time.Now()
		wg.Add(1)
		if err := p.submit(p.tasks, task{run: func(w *worker) { loop(w, submitted) }}); err != nil {
			wg.Done()
			setErr(err)
			break
		}
	}
	wg.Wait()
	busy := time.Duration(busyNS.Load())
	sink.record(phase, int(ran.Load()), time.Duration(waitNS.Load()), busy)
	if firstErr == nil && int(ran.Load()) < n {
		// Dispatch stopped early without a task error: cancellation.
		if err := scopeErr(ctx); err != nil {
			return busy, err
		}
		if err := p.Err(); err != nil {
			return busy, err
		}
	}
	return busy, firstErr
}

// Handle joins an asynchronous task started with GoIO.
type Handle struct {
	done chan error
	once sync.Once
	err  error
}

// Wait blocks until the task completes and returns its error (a
// *PanicError if it panicked). Wait is idempotent: the first call joins
// the task and every later call returns the same error, so a drain loop
// over many handles (the prefetch ring's shutdown path, a cancelled
// job's cleanup) may safely re-join handles it already consumed.
func (h *Handle) Wait() error {
	h.once.Do(func() { h.err = <-h.done })
	return h.err
}

// GoIO runs fn asynchronously on one of the pool's dedicated IO
// workers, marking it with state (typically metrics.StateIOWait) while
// fn runs. This is the ingest/prefetch lane: it never competes with
// compute tasks for a worker, so the double-buffered read of the SupMR
// pipeline always has a thread to park in the device wait. With a
// single IO worker (the default) GoIO tasks are strictly serialized;
// with more, tasks fan out across the lanes in submission order. The
// returned Handle joins the task and always resolves — normal return,
// panic (as a *PanicError), or refused submission after Close — so
// callers can unconditionally drain every handle they hold. Close also
// joins any task still in flight.
func (p *Pool) GoIO(phase string, state metrics.WorkerState, fn func() error) *Handle {
	return p.GoIOSized(phase, state, 0, fn)
}

// GoIOSized is GoIO with a payload size: bytes are attributed to
// whichever IO lane executes the task, feeding the per-lane ingest
// throughput counters (LaneBytes).
func (p *Pool) GoIOSized(phase string, state metrics.WorkerState, bytes int64, fn func() error) *Handle {
	return p.GoIOScoped(p.sink, phase, state, bytes, fn)
}

// GoIOScoped is GoIOSized under a job scope: the task's statistics and
// lane-byte attribution land in sink rather than the pool's own, so a
// multi-job engine keeps per-submission ingest counters. The task
// itself still runs on the shared IO lanes in submission order.
func (p *Pool) GoIOScoped(sink *Sink, phase string, state metrics.WorkerState, bytes int64, fn func() error) *Handle {
	if sink == nil {
		sink = p.sink
	}
	h := &Handle{done: make(chan error, 1)}
	submitted := time.Now()
	t := task{run: func(w *worker) {
		wait := time.Since(submitted)
		if w.lane >= 0 && bytes > 0 {
			sink.addLaneBytes(w.lane, bytes)
		}
		w.setState(state)
		start := time.Now()
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = &PanicError{Phase: phase, Task: -1, Value: r, Stack: debug.Stack()}
				}
			}()
			return fn()
		}()
		w.setState(metrics.StateIdle)
		sink.record(phase, 1, wait, time.Since(start))
		h.done <- err
	}}
	if err := p.submit(p.io, t); err != nil {
		h.done <- err
	}
	return h
}
