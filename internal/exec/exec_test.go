package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"supmr/internal/metrics"
)

func TestForEachRunsAllIndices(t *testing.T) {
	p := NewLocal(4)
	defer p.Close()
	var hits [100]atomic.Int32
	if _, err := p.ForEach("test", metrics.StateUser, 100, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if n := hits[i].Load(); n != 1 {
			t.Fatalf("index %d executed %d times", i, n)
		}
	}
}

func TestForEachDegenerate(t *testing.T) {
	p := NewLocal(4)
	defer p.Close()
	if _, err := p.ForEach("test", metrics.StateUser, 0, func(int) error {
		t.Error("called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// More tasks than workers, fewer tasks than workers.
	for _, n := range []int{1, 3, 17} {
		var ran atomic.Int32
		if _, err := p.ForEach("test", metrics.StateUser, n, func(int) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if int(ran.Load()) != n {
			t.Errorf("n=%d: ran %d", n, ran.Load())
		}
	}
}

func TestForEachTaskError(t *testing.T) {
	p := NewLocal(2)
	defer p.Close()
	boom := errors.New("task failed")
	_, err := p.ForEach("test", metrics.StateUser, 50, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want task error", err)
	}
}

func TestForEachPanicNamesTask(t *testing.T) {
	p := NewLocal(2)
	defer p.Close()
	_, err := p.ForEach("map", metrics.StateUser, 10, func(i int) error {
		if i == 3 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Phase != "map" || pe.Task != 3 {
		t.Errorf("panic error = %+v, want phase=map task=3", pe)
	}
	if !strings.Contains(pe.Error(), "map task 3 panicked: kaboom") {
		t.Errorf("message %q does not name the split", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	// The pool survives: the next phase still runs.
	if _, err := p.ForEach("test", metrics.StateUser, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
}

func TestForEachObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, Config{Workers: 2})
	defer p.Close()
	started := make(chan struct{})
	var once atomic.Bool
	go func() {
		<-started
		cancel()
	}()
	_, err := p.ForEach("test", metrics.StateUser, 1000, func(i int) error {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		<-ctx.Done() // park until cancelled so the wave is mid-flight
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachCancelMidWave(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, Config{Workers: 2})
	defer p.Close()
	var ran atomic.Int32
	go func() {
		// Cancel once the wave is under way.
		for ran.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, err := p.ForEach("test", metrics.StateUser, 1_000_000, func(i int) error {
		ran.Add(1)
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1_000_000 {
		t.Error("cancellation did not stop dispatch early")
	}
}

func TestForEachCompletedWaveIgnoresLateCancel(t *testing.T) {
	// If every task ran, a cancellation that lands after the fact must
	// not turn a finished wave into an error.
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, Config{Workers: 2})
	defer p.Close()
	if _, err := p.ForEach("test", metrics.StateUser, 10, func(int) error { return nil }); err != nil {
		t.Fatalf("completed wave errored: %v", err)
	}
	cancel()
	if _, err := p.ForEach("test", metrics.StateUser, 10, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel wave err = %v, want context.Canceled", err)
	}
}

func TestAbortCause(t *testing.T) {
	p := NewLocal(2)
	defer p.Close()
	cause := errors.New("round failed")
	p.Abort(cause)
	if err := p.Err(); !errors.Is(err, cause) {
		t.Fatalf("Err() = %v, want abort cause", err)
	}
	if _, err := p.ForEach("test", metrics.StateUser, 5, func(int) error { return nil }); !errors.Is(err, cause) {
		t.Fatalf("ForEach after abort = %v, want cause", err)
	}
}

func TestGoIOJoinAndPanic(t *testing.T) {
	p := NewLocal(1)
	defer p.Close()
	done := make(chan struct{})
	h := p.GoIO("ingest", metrics.StateIOWait, func() error {
		close(done)
		return nil
	})
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Error("Wait returned before the task ran")
	}
	h2 := p.GoIO("ingest", metrics.StateIOWait, func() error { panic("io blew up") })
	var pe *PanicError
	if err := h2.Wait(); !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	} else if pe.Phase != "ingest" || pe.Task != -1 {
		t.Errorf("panic error = %+v", pe)
	}
}

func TestGoIODoesNotBlockComputeLane(t *testing.T) {
	// With a single compute worker, an in-flight IO task must not steal
	// the compute slot — the paper's dedicated ingest thread.
	p := NewLocal(1)
	defer p.Close()
	release := make(chan struct{})
	h := p.GoIO("ingest", metrics.StateIOWait, func() error {
		<-release
		return nil
	})
	doneCh := make(chan error, 1)
	go func() {
		_, err := p.ForEach("map", metrics.StateUser, 4, func(int) error { return nil })
		doneCh <- err
	}()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("compute wave blocked behind IO task")
	}
	close(release)
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseJoinsInFlightWork(t *testing.T) {
	p := NewLocal(1)
	var finished atomic.Bool
	p.GoIO("ingest", metrics.StateIOWait, func() error {
		time.Sleep(20 * time.Millisecond)
		finished.Store(true)
		return nil
	})
	p.Close() // must join the parked IO task, not abandon it
	if !finished.Load() {
		t.Error("Close returned before in-flight IO task completed")
	}
	p.Close() // idempotent
	if _, err := p.ForEach("test", metrics.StateUser, 3, func(int) error { return nil }); err == nil {
		t.Error("ForEach on closed pool should fail")
	}
	if err := p.GoIO("x", metrics.StateUser, func() error { return nil }).Wait(); err == nil {
		t.Error("GoIO on closed pool should fail")
	}
}

func TestTaskStats(t *testing.T) {
	p := NewLocal(2)
	defer p.Close()
	if _, err := p.ForEach("map", metrics.StateUser, 20, func(int) error {
		time.Sleep(time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.GoIO("ingest", metrics.StateIOWait, func() error { return nil }).Wait(); err != nil {
		t.Fatal(err)
	}
	stats := p.TaskStats()
	m := stats["map"]
	if m.Tasks != 20 || m.Busy <= 0 {
		t.Errorf("map stats = %+v", m)
	}
	if m.AvgBusy() <= 0 {
		t.Error("AvgBusy not positive")
	}
	if stats["ingest"].Tasks != 1 {
		t.Errorf("ingest stats = %+v", stats["ingest"])
	}
	out := metrics.FormatTaskStats(stats)
	if !strings.Contains(out, "map") || !strings.Contains(out, "ingest") {
		t.Errorf("formatted stats missing phases:\n%s", out)
	}
}

func TestStableWorkerRegistration(t *testing.T) {
	// All worker ids are allocated at pool creation — phases re-use them
	// instead of re-registering, so the trace population stays fixed.
	rec := metrics.NewUtilRecorder(4, func() time.Duration { return 0 })
	p := NewPool(context.Background(), Config{Workers: 3, Recorder: rec})
	defer p.Close()
	if got := rec.Registered(); got != 4 {
		t.Fatalf("registered %d workers, want 3 compute + 1 IO", got)
	}
	for phase := 0; phase < 5; phase++ {
		if _, err := p.ForEach(fmt.Sprintf("phase%d", phase), metrics.StateUser, 10, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if err := p.GoIO("io", metrics.StateIOWait, func() error { return nil }).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.Registered(); got != 4 {
		t.Errorf("worker population grew to %d across phases, want stable 4", got)
	}
}

func TestPoolClockDefaultsAndOverride(t *testing.T) {
	var virtual time.Duration = 42 * time.Second
	p := NewPool(context.Background(), Config{Workers: 1, Now: func() time.Duration { return virtual }})
	defer p.Close()
	if p.Now() != 42*time.Second {
		t.Errorf("Now() = %v, want the configured job clock", p.Now())
	}
	p2 := NewLocal(1)
	defer p2.Close()
	if p2.Now() < 0 {
		t.Error("default clock went backwards")
	}
	if p2.Workers() != 1 {
		t.Errorf("Workers() = %d", p2.Workers())
	}
}

func TestIOLanesFanOut(t *testing.T) {
	// Three GoIO tasks on a 3-lane pool must run concurrently: each
	// parks until released, which would deadlock the barrier below if
	// the lanes serialized.
	p := NewPool(context.Background(), Config{Workers: 1, IOWorkers: 3})
	defer p.Close()
	if p.IOLanes() != 3 {
		t.Fatalf("IOLanes() = %d, want 3", p.IOLanes())
	}
	var started atomic.Int32
	release := make(chan struct{})
	var hs []*Handle
	for i := 0; i < 3; i++ {
		hs = append(hs, p.GoIO("seg", metrics.StateIOWait, func() error {
			started.Add(1)
			<-release
			return nil
		}))
	}
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 3 IO tasks in flight concurrently", started.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for _, h := range hs {
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLaneBytesAttribution(t *testing.T) {
	p := NewPool(context.Background(), Config{Workers: 1, IOWorkers: 2})
	defer p.Close()
	var hs []*Handle
	var want int64
	for i := 1; i <= 8; i++ {
		n := int64(i * 1000)
		want += n
		hs = append(hs, p.GoIOSized("seg", metrics.StateIOWait, n, func() error { return nil }))
	}
	// A zero-byte IO task (a spill write) must not perturb the counters.
	hs = append(hs, p.GoIO("spill", metrics.StateIOWait, func() error { return nil }))
	for _, h := range hs {
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	lb := p.LaneBytes()
	if len(lb) != 2 {
		t.Fatalf("LaneBytes tracks %d lanes, want 2", len(lb))
	}
	var got int64
	for _, b := range lb {
		got += b
	}
	if got != want {
		t.Errorf("lane bytes sum to %d, want %d", got, want)
	}
}

func TestHandleWaitIdempotent(t *testing.T) {
	p := NewLocal(1)
	defer p.Close()
	boom := errors.New("segment failed")
	h := p.GoIO("seg", metrics.StateIOWait, func() error { return boom })
	for i := 0; i < 3; i++ {
		if err := h.Wait(); !errors.Is(err, boom) {
			t.Fatalf("Wait call %d = %v, want the task error", i+1, err)
		}
	}
}

func TestCancelledJobDrainsAllIOHandles(t *testing.T) {
	// Regression: joining a cancelled job's segment handles must never
	// block — every handle resolves whether its task ran, is parked in
	// a wait, or was still queued when cancellation landed — and
	// re-joining an already-consumed handle (the drain-loop shape) is
	// safe.
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, Config{Workers: 1, IOWorkers: 2})
	defer p.Close()
	var hs []*Handle
	// 2 tasks parked on the lanes plus 2 queued (the IO queue's depth
	// equals the lane count; more would block submission itself).
	for i := 0; i < 4; i++ {
		hs = append(hs, p.GoIO("seg", metrics.StateIOWait, func() error {
			<-ctx.Done()
			return ctx.Err()
		}))
	}
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, h := range hs {
			h.Wait()
			h.Wait()
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("draining the cancelled job's IO handles blocked")
	}
}
