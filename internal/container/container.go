// Package container implements the Phoenix++-style intermediate
// key-value containers that sit between the map and reduce phases: the
// hash container (default; combiner-backed, ideal for word-count-like
// jobs whose huge input set shrinks to a small intermediate set), the
// array container (dense integer keys, histogram-like jobs), and the
// unlocked key-range container (sort-like jobs with unique keys, where
// every mapper writes its own region with no synchronization).
//
// SupMR's pipeline requires containers to persist across map rounds;
// Reset exists so the traditional runtime (and the ablation bench) can
// model the original re-initialize-per-wave behaviour.
package container

import (
	"hash/maphash"

	"supmr/internal/kv"
)

// Local is the per-map-worker view of a container. Map workers emit into
// a Local with no synchronization; Flush folds the worker's pairs into
// the global container state at the end of the worker's task.
type Local[K comparable, V any] interface {
	kv.Emitter[K, V]
	// Flush publishes this worker's pairs into the global container.
	// The Local must not be used after Flush.
	Flush()
}

// Container stores intermediate key-value pairs between map and reduce.
// Implementations are safe for concurrent NewLocal/Flush during the map
// phase; Partitions/Reduce run after the map phase completes.
type Container[K comparable, V any] interface {
	// NewLocal returns an emitter for one map worker or map task.
	NewLocal() Local[K, V]
	// Partitions returns the number of reduce partitions currently held.
	Partitions() int
	// Reduce applies reduce to every key of partition p, appending the
	// resulting pairs to out, and returns the extended slice. Pairs
	// within a partition are in container order (not sorted); sorting is
	// the merge phase's job.
	Reduce(p int, reduce func(k K, vs []V) V, out []kv.Pair[K, V]) []kv.Pair[K, V]
	// Len returns the number of distinct entries held.
	Len() int
	// SizeBytes returns the approximate resident heap bytes of the
	// stored entries (shallow struct sizes plus referenced string/slice
	// bytes, plus per-entry bookkeeping). The spill layer compares this
	// against the job's memory budget between ingest rounds; worker-local
	// accumulators are transient and not counted.
	SizeBytes() int64
	// Reset clears all state, restoring the freshly-initialized
	// container. The traditional runtime resets when mappers start; the
	// SupMR pipeline must not (persistent container, §III-C) — except
	// when the spill layer drains the container to disk, which resets to
	// actually return the drained memory.
	Reset()
}

// PartitionSizer is an optional Container extension: PartitionLen
// reports the number of entries Reduce would produce for partition p,
// so the reduce phase can presize its output buffers instead of growing
// them from nil. It is only meaningful after the map phase completes.
type PartitionSizer interface {
	PartitionLen(p int) int
}

// Fresher is an optional Container extension: Fresh returns a new,
// empty container with the same shape (shard/partition geometry,
// hasher, combiner) as the receiver. Multi-node runs use it to give
// every simulated node its own intermediate container from the one the
// caller supplied. All built-in containers implement it.
type Fresher[K comparable, V any] interface {
	Fresh() Container[K, V]
}

// Hasher maps a key to a 64-bit hash for shard selection.
type Hasher[K comparable] func(K) uint64

var stringSeed = maphash.MakeSeed()

// StringHasher hashes string keys with runtime maphash.
func StringHasher(s string) uint64 { return maphash.String(stringSeed, s) }

// BytesHasher hashes a byte slice to the same value StringHasher gives
// the equivalent string, so byte-keyed fast paths and string-keyed slow
// paths agree on shard placement.
func BytesHasher(b []byte) uint64 { return maphash.Bytes(stringSeed, b) }

// Uint64Hasher mixes an integer key (splitmix64 finalizer).
func Uint64Hasher(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// IntHasher hashes int keys.
func IntHasher(i int) uint64 { return Uint64Hasher(uint64(i)) }
