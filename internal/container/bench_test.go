package container

import (
	"fmt"
	"testing"

	"supmr/internal/kv"
)

// Micro-benchmarks of insert throughput per container — the §V-B
// container-choice argument at the data-structure level.

func BenchmarkHashInsertCombine(b *testing.B) {
	for _, distinct := range []int{64, 65536} {
		b.Run(fmt.Sprintf("distinct=%d", distinct), func(b *testing.B) {
			h := NewHash[string, int64](64, StringHasher, func(a, c int64) int64 { return a + c })
			keys := make([]string, distinct)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%06d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			l := h.NewLocal()
			for i := 0; i < b.N; i++ {
				l.Emit(keys[i%distinct], 1)
			}
			l.Flush()
		})
	}
}

func BenchmarkKeyRangeInsert(b *testing.B) {
	c := NewKeyRange[string, uint64](64)
	b.ReportAllocs()
	l := c.NewLocal()
	key := "0123456789"
	for i := 0; i < b.N; i++ {
		l.Emit(key, uint64(i))
	}
	l.Flush()
}

// BenchmarkSortViaContainers compares inserting unique keys through the
// hash container (lookup per insert) vs the unlocked key-range container
// (plain append) — why sort picks the latter.
func BenchmarkSortViaContainers(b *testing.B) {
	const n = 100_000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("uniquekey-%08d", i)
	}
	b.Run("Hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := NewHash[string, uint64](64, StringHasher, nil)
			l := h.NewLocal()
			for j, k := range keys {
				l.Emit(k, uint64(j))
			}
			l.Flush()
		}
	})
	b.Run("KeyRange", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := NewKeyRange[string, uint64](64)
			l := c.NewLocal()
			for j, k := range keys {
				l.Emit(k, uint64(j))
			}
			l.Flush()
		}
	})
}

func BenchmarkArrayInsert(b *testing.B) {
	a := NewArray[int64](256, 8, func(x, y int64) int64 { return x + y })
	b.ReportAllocs()
	l := a.NewLocal()
	for i := 0; i < b.N; i++ {
		l.Emit(i&255, 1)
	}
	l.Flush()
}

func BenchmarkHashReduce(b *testing.B) {
	h := NewHash[string, int64](64, StringHasher, func(a, c int64) int64 { return a + c })
	l := h.NewLocal()
	for i := 0; i < 50_000; i++ {
		l.Emit(fmt.Sprintf("key-%05d", i%10_000), 1)
	}
	l.Flush()
	reduce := func(_ string, vs []int64) int64 { return vs[0] }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []kv.Pair[string, int64]
		for p := 0; p < h.Partitions(); p++ {
			out = h.Reduce(p, reduce, out)
		}
		if len(out) != 10_000 {
			b.Fatal("bad reduce")
		}
	}
}
