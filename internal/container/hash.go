package container

import (
	"fmt"
	"sync"

	"supmr/internal/kv"
)

// Hash is the default Phoenix++ container: keys hash to shards of a
// concurrent map. With a combiner, each map worker folds values into a
// thread-local map first and Flush merges the (already tiny) local map
// into the global shards — this is what makes word count's 155 GB input
// collapse into a vocabulary-sized intermediate set.
//
// Without a combiner, all values per key are retained, which is exactly
// the pathology §V-B describes for sort-like workloads: mappers must
// check the container for the key before insertion and reducers sweep
// cells of unique keys. The key-range container exists for those.
type Hash[K comparable, V any] struct {
	shards  []hashShard[K, V]
	hasher  Hasher[K]
	combine kv.Combine[V] // nil = retain all values
}

type hashShard[K comparable, V any] struct {
	mu   sync.Mutex
	vals map[K]V   // used when combining
	list map[K][]V // used when retaining
	_    [32]byte  // pad to reduce false sharing between shards
}

// NewHash builds a hash container with the given shard count (rounded up
// to a power of two), key hasher and optional combiner. A nil combine
// retains every emitted value per key.
func NewHash[K comparable, V any](shards int, hasher Hasher[K], combine kv.Combine[V]) *Hash[K, V] {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if hasher == nil {
		panic("container: NewHash requires a hasher")
	}
	h := &Hash[K, V]{shards: make([]hashShard[K, V], n), hasher: hasher, combine: combine}
	h.Reset()
	return h
}

// Reset reinitializes every shard.
func (h *Hash[K, V]) Reset() {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if h.combine != nil {
			s.vals = make(map[K]V)
			s.list = nil
		} else {
			s.list = make(map[K][]V)
			s.vals = nil
		}
		s.mu.Unlock()
	}
}

// Partitions returns the shard count; each shard is one reduce partition.
func (h *Hash[K, V]) Partitions() int { return len(h.shards) }

// Len counts distinct keys across shards.
func (h *Hash[K, V]) Len() int {
	total := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if h.combine != nil {
			total += len(s.vals)
		} else {
			total += len(s.list)
		}
		s.mu.Unlock()
	}
	return total
}

// NewLocal returns a thread-local combiner map for one map worker.
func (h *Hash[K, V]) NewLocal() Local[K, V] {
	if h.combine != nil {
		return &hashLocalCombine[K, V]{parent: h, vals: make(map[K]V)}
	}
	return &hashLocalList[K, V]{parent: h, list: make(map[K][]V)}
}

type hashLocalCombine[K comparable, V any] struct {
	parent *Hash[K, V]
	vals   map[K]V
}

// Emit folds val into the worker-local map.
func (l *hashLocalCombine[K, V]) Emit(key K, val V) {
	if old, ok := l.vals[key]; ok {
		l.vals[key] = l.parent.combine(old, val)
	} else {
		l.vals[key] = val
	}
}

// Flush merges the local map into the global shards.
func (l *hashLocalCombine[K, V]) Flush() {
	p := l.parent
	mask := uint64(len(p.shards) - 1)
	for k, v := range l.vals {
		s := &p.shards[p.hasher(k)&mask]
		s.mu.Lock()
		if old, ok := s.vals[k]; ok {
			s.vals[k] = p.combine(old, v)
		} else {
			s.vals[k] = v
		}
		s.mu.Unlock()
	}
	l.vals = nil
}

type hashLocalList[K comparable, V any] struct {
	parent *Hash[K, V]
	list   map[K][]V
}

// Emit appends val to the local value list for key.
func (l *hashLocalList[K, V]) Emit(key K, val V) {
	l.list[key] = append(l.list[key], val)
}

// Flush appends local value lists into the global shards.
func (l *hashLocalList[K, V]) Flush() {
	p := l.parent
	mask := uint64(len(p.shards) - 1)
	for k, vs := range l.list {
		s := &p.shards[p.hasher(k)&mask]
		s.mu.Lock()
		s.list[k] = append(s.list[k], vs...)
		s.mu.Unlock()
	}
	l.list = nil
}

// Reduce applies reduce over every key in shard p.
func (h *Hash[K, V]) Reduce(p int, reduce func(k K, vs []V) V, out []kv.Pair[K, V]) []kv.Pair[K, V] {
	if p < 0 || p >= len(h.shards) {
		panic(fmt.Sprintf("container: hash partition %d out of range [0,%d)", p, len(h.shards)))
	}
	s := &h.shards[p]
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.combine != nil {
		var one [1]V
		for k, v := range s.vals {
			one[0] = v
			out = append(out, kv.Pair[K, V]{Key: k, Val: reduce(k, one[:])})
		}
		return out
	}
	for k, vs := range s.list {
		out = append(out, kv.Pair[K, V]{Key: k, Val: reduce(k, vs)})
	}
	return out
}
