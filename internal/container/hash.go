package container

import (
	"fmt"
	"sync"
	"sync/atomic"

	"supmr/internal/kv"
)

// Hash is the default Phoenix++ container: keys hash to shards of a
// concurrent map. With a combiner, each map worker folds values into a
// thread-local map first and Flush merges the (already tiny) local map
// into the global shards — this is what makes word count's 155 GB input
// collapse into a vocabulary-sized intermediate set.
//
// Without a combiner, all values per key are retained, which is exactly
// the pathology §V-B describes for sort-like workloads: mappers must
// check the container for the key before insertion and reducers sweep
// cells of unique keys. The key-range container exists for those.
type Hash[K comparable, V any] struct {
	shards  []hashShard[K, V]
	hasher  Hasher[K]
	combine kv.Combine[V] // nil = retain all values

	// Byte accounting for SizeBytes, maintained incrementally at Flush
	// so the budget check between ingest rounds is O(1).
	bytes atomic.Int64
	dynK  func(K) int64 // nil when K carries no heap bytes
	dynV  func(V) int64
}

type hashShard[K comparable, V any] struct {
	mu   sync.Mutex
	vals map[K]V   // used when combining
	list map[K][]V // used when retaining
	_    [32]byte  // pad to reduce false sharing between shards
}

// NewHash builds a hash container with the given shard count (rounded up
// to a power of two), key hasher and optional combiner. A nil combine
// retains every emitted value per key.
func NewHash[K comparable, V any](shards int, hasher Hasher[K], combine kv.Combine[V]) *Hash[K, V] {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if hasher == nil {
		panic("container: NewHash requires a hasher")
	}
	h := &Hash[K, V]{
		shards:  make([]hashShard[K, V], n),
		hasher:  hasher,
		combine: combine,
		dynK:    dynSizer[K](),
		dynV:    dynSizer[V](),
	}
	h.Reset()
	return h
}

// Reset reinitializes every shard. The old shard maps are replaced with
// freshly allocated empty maps rather than cleared in place: Go maps
// never shrink their bucket arrays, so clearing a map that held a huge
// round's vocabulary would pin that memory for the rest of the job. The
// spill layer relies on Reset actually returning the drained bytes.
func (h *Hash[K, V]) Reset() {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if h.combine != nil {
			s.vals = make(map[K]V)
			s.list = nil
		} else {
			s.list = make(map[K][]V)
			s.vals = nil
		}
		s.mu.Unlock()
	}
	h.bytes.Store(0)
}

// SizeBytes returns the approximate resident bytes of the shard maps.
func (h *Hash[K, V]) SizeBytes() int64 { return h.bytes.Load() }

// combinedEntryBytes is the per-key cost of a combining shard map entry.
func (h *Hash[K, V]) combinedEntryBytes() int64 {
	return mapEntryOverhead + shallowSize[K]() + shallowSize[V]()
}

// listEntryBytes is the per-key cost of a retaining shard map entry,
// excluding the values themselves.
func (h *Hash[K, V]) listEntryBytes() int64 {
	return mapEntryOverhead + shallowSize[K]() + sliceHeaderBytes
}

// Partitions returns the shard count; each shard is one reduce partition.
// Fresh returns a new empty container with this one's shard count,
// hasher and combiner (the container.Fresher extension).
func (h *Hash[K, V]) Fresh() Container[K, V] {
	return NewHash[K, V](len(h.shards), h.hasher, h.combine)
}

func (h *Hash[K, V]) Partitions() int { return len(h.shards) }

// Len counts distinct keys across shards.
func (h *Hash[K, V]) Len() int {
	total := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if h.combine != nil {
			total += len(s.vals)
		} else {
			total += len(s.list)
		}
		s.mu.Unlock()
	}
	return total
}

// PartitionLen reports the distinct keys currently in partition p, so
// the reduce phase can presize its output buffer.
func (h *Hash[K, V]) PartitionLen(p int) int {
	s := &h.shards[p]
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.combine != nil {
		return len(s.vals)
	}
	return len(s.list)
}

// NewLocal returns a thread-local combiner map for one map worker.
func (h *Hash[K, V]) NewLocal() Local[K, V] {
	if h.combine != nil {
		return &hashLocalCombine[K, V]{parent: h, vals: make(map[K]V)}
	}
	return &hashLocalList[K, V]{parent: h, list: make(map[K][]V)}
}

type hashLocalCombine[K comparable, V any] struct {
	parent *Hash[K, V]
	vals   map[K]V
}

// Emit folds val into the worker-local map.
func (l *hashLocalCombine[K, V]) Emit(key K, val V) {
	if old, ok := l.vals[key]; ok {
		l.vals[key] = l.parent.combine(old, val)
	} else {
		l.vals[key] = val
	}
}

// Flush merges the local map into the global shards, batched per shard:
// entries are grouped by destination shard first (one pass over the
// local map plus a counting sort), then each shard's whole batch merges
// under a single lock acquisition instead of one lock round-trip per
// key.
func (l *hashLocalCombine[K, V]) Flush() {
	p := l.parent
	n := len(l.vals)
	if n == 0 {
		l.vals = nil
		return
	}
	nsh := len(p.shards)
	mask := uint64(nsh - 1)
	ents := make([]kv.Pair[K, V], 0, n)
	shardOf := make([]uint32, 0, n)
	starts := make([]int, nsh+1)
	for k, v := range l.vals {
		s := uint32(p.hasher(k) & mask)
		ents = append(ents, kv.Pair[K, V]{Key: k, Val: v})
		shardOf = append(shardOf, s)
		starts[s+1]++
	}
	for s := 1; s <= nsh; s++ {
		starts[s] += starts[s-1]
	}
	order := make([]int32, n)
	fill := append([]int(nil), starts[:nsh]...)
	for i, s := range shardOf {
		order[fill[s]] = int32(i)
		fill[s]++
	}

	entry := p.combinedEntryBytes()
	var added int64
	for s := 0; s < nsh; s++ {
		lo, hi := starts[s], starts[s+1]
		if lo == hi {
			continue
		}
		sh := &p.shards[s]
		sh.mu.Lock()
		for _, i := range order[lo:hi] {
			k, v := ents[i].Key, ents[i].Val
			if old, ok := sh.vals[k]; ok {
				merged := p.combine(old, v)
				sh.vals[k] = merged
				if p.dynV != nil {
					added += p.dynV(merged) - p.dynV(old)
				}
			} else {
				sh.vals[k] = v
				added += entry + dynOf(p.dynK, k) + dynOf(p.dynV, v)
			}
		}
		sh.mu.Unlock()
	}
	p.bytes.Add(added)
	l.vals = nil
}

type hashLocalList[K comparable, V any] struct {
	parent *Hash[K, V]
	list   map[K][]V
}

// Emit appends val to the local value list for key.
func (l *hashLocalList[K, V]) Emit(key K, val V) {
	l.list[key] = append(l.list[key], val)
}

// Flush appends local value lists into the global shards, batched per
// shard: one lock acquisition per destination shard rather than per
// key, with the slice-growth byte charge computed once per batch
// outside the lock (only the new-key check needs shard state).
func (l *hashLocalList[K, V]) Flush() {
	p := l.parent
	n := len(l.list)
	if n == 0 {
		l.list = nil
		return
	}
	nsh := len(p.shards)
	mask := uint64(nsh - 1)
	type listEnt struct {
		k  K
		vs []V
	}
	ents := make([]listEnt, 0, n)
	shardOf := make([]uint32, 0, n)
	starts := make([]int, nsh+1)
	// One pass over the local map: shard routing plus the batch's value
	// byte charge, which does not depend on global state.
	valSize := shallowSize[V]()
	var added int64
	for k, vs := range l.list {
		s := uint32(p.hasher(k) & mask)
		ents = append(ents, listEnt{k: k, vs: vs})
		shardOf = append(shardOf, s)
		starts[s+1]++
		added += int64(len(vs)) * valSize
		if p.dynV != nil {
			for _, v := range vs {
				added += p.dynV(v)
			}
		}
	}
	for s := 1; s <= nsh; s++ {
		starts[s] += starts[s-1]
	}
	order := make([]int32, n)
	fill := append([]int(nil), starts[:nsh]...)
	for i, s := range shardOf {
		order[fill[s]] = int32(i)
		fill[s]++
	}

	entry := p.listEntryBytes()
	for s := 0; s < nsh; s++ {
		lo, hi := starts[s], starts[s+1]
		if lo == hi {
			continue
		}
		sh := &p.shards[s]
		sh.mu.Lock()
		for _, i := range order[lo:hi] {
			k := ents[i].k
			if _, ok := sh.list[k]; !ok {
				added += entry + dynOf(p.dynK, k)
			}
			sh.list[k] = append(sh.list[k], ents[i].vs...)
		}
		sh.mu.Unlock()
	}
	p.bytes.Add(added)
	l.list = nil
}

// Reduce applies reduce over every key in shard p.
func (h *Hash[K, V]) Reduce(p int, reduce func(k K, vs []V) V, out []kv.Pair[K, V]) []kv.Pair[K, V] {
	if p < 0 || p >= len(h.shards) {
		panic(fmt.Sprintf("container: hash partition %d out of range [0,%d)", p, len(h.shards)))
	}
	s := &h.shards[p]
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.combine != nil {
		var one [1]V
		for k, v := range s.vals {
			one[0] = v
			out = append(out, kv.Pair[K, V]{Key: k, Val: reduce(k, one[:])})
		}
		return out
	}
	for k, vs := range s.list {
		out = append(out, kv.Pair[K, V]{Key: k, Val: reduce(k, vs)})
	}
	return out
}
