package container

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"unsafe"

	"supmr/internal/kv"
)

// FlatHash is the allocation-free combining container for byte-keyed
// workloads (word-count-like apps). It keeps the hash container's
// global shape — keys hash to locked shards — but replaces both tiers
// of map[string]V with structures built for the map hot path:
//
//   - The worker-local combiner is an open-addressing flat table: an
//     index of slots probing into a dense entry array (hash +
//     key-offset/length into an append-only byte arena) with values in
//     a parallel dense array. Emitting an existing key touches one
//     cache line of index plus the entry; emitting a new key appends
//     bytes to the arena — no per-key string allocation, ever.
//   - Locals are pooled on the container and their table, arena and
//     scratch are retained (reset, not freed) across flushes — the
//     paper's persistent-container idea (§III-C) applied to the
//     worker-local tier. Steady-state ingest rounds run the entire
//     tokenize→combine→flush loop with zero combiner allocation.
//   - Flush groups local entries by destination shard (counting sort on
//     reused scratch) and locks each shard exactly once per flush.
//     Global keys live in a per-shard intern table (map[string]int into
//     a dense value array): the byte key is looked up allocation-free,
//     and a string is materialized only the first time a key enters the
//     global state.
//
// FlatHash requires a combiner; value-retaining workloads stay on the
// generic Hash container. Shard selection matches Hash with
// StringHasher, so the two containers partition identically and the
// -flatcombiner ablation compares like with like.
type FlatHash[V any] struct {
	shards  []flatShard[V]
	combine kv.Combine[V]

	// Byte accounting for SizeBytes, maintained incrementally at Flush
	// so the budget check between ingest rounds is O(1). Pooled locals
	// are worker-local accumulators and not counted, per the Container
	// contract.
	bytes atomic.Int64
	dynV  func(V) int64

	poolMu sync.Mutex
	pool   []*flatLocal[V]
}

type flatShard[V any] struct {
	mu   sync.Mutex
	idx  map[string]int // interned key -> index into vals
	vals []V
	_    [32]byte // pad to reduce false sharing between shards
}

// NewFlatHash builds a flat combining container with the given shard
// count (rounded up to a power of two). combine is required: every key
// holds exactly one folded value.
func NewFlatHash[V any](shards int, combine kv.Combine[V]) *FlatHash[V] {
	if combine == nil {
		panic("container: NewFlatHash requires a combiner")
	}
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	f := &FlatHash[V]{
		shards:  make([]flatShard[V], n),
		combine: combine,
		dynV:    dynSizer[V](),
	}
	f.Reset()
	return f
}

// Reset reinitializes every shard with fresh maps and value arrays so
// the drained memory is actually released (the spill layer relies on
// this). Pooled locals keep their tables and arenas: they are the
// persistent worker-local tier and are reused by the next round.
func (f *FlatHash[V]) Reset() {
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		s.idx = make(map[string]int)
		s.vals = nil
		s.mu.Unlock()
	}
	f.bytes.Store(0)
}

// SizeBytes returns the approximate resident bytes of the shard state.
func (f *FlatHash[V]) SizeBytes() int64 { return f.bytes.Load() }

// entryBytes is the per-key cost of a global shard entry beyond the key
// bytes: the intern map entry (string header + value index) plus the
// dense value slot.
func (f *FlatHash[V]) entryBytes() int64 {
	return mapEntryOverhead + shallowSize[string]() + shallowSize[int]() + shallowSize[V]()
}

// Fresh returns a new empty container with this one's shard count and
// combiner (the container.Fresher extension).
func (f *FlatHash[V]) Fresh() Container[string, V] {
	return NewFlatHash[V](len(f.shards), f.combine)
}

// Partitions returns the shard count; each shard is one reduce partition.
func (f *FlatHash[V]) Partitions() int { return len(f.shards) }

// Len counts distinct keys across shards.
func (f *FlatHash[V]) Len() int {
	total := 0
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		total += len(s.idx)
		s.mu.Unlock()
	}
	return total
}

// PartitionLen reports the distinct keys currently in partition p, so
// the reduce phase can presize its output buffer.
func (f *FlatHash[V]) PartitionLen(p int) int {
	s := &f.shards[p]
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// NewLocal returns a worker-local flat combiner, reusing a pooled one
// (table, arena and scratch intact) when a previous task flushed it.
func (f *FlatHash[V]) NewLocal() Local[string, V] {
	f.poolMu.Lock()
	if n := len(f.pool); n > 0 {
		l := f.pool[n-1]
		f.pool[n-1] = nil
		f.pool = f.pool[:n-1]
		f.poolMu.Unlock()
		return l
	}
	f.poolMu.Unlock()
	return &flatLocal[V]{
		parent: f,
		table:  newFlatTable(flatInitialSlots),
		mask:   flatInitialSlots - 1,
	}
}

func (f *FlatHash[V]) putLocal(l *flatLocal[V]) {
	f.poolMu.Lock()
	f.pool = append(f.pool, l)
	f.poolMu.Unlock()
}

// Reduce applies reduce over every key in shard p.
func (f *FlatHash[V]) Reduce(p int, reduce func(k string, vs []V) V, out []kv.Pair[string, V]) []kv.Pair[string, V] {
	if p < 0 || p >= len(f.shards) {
		panic(fmt.Sprintf("container: flat partition %d out of range [0,%d)", p, len(f.shards)))
	}
	s := &f.shards[p]
	s.mu.Lock()
	defer s.mu.Unlock()
	var one [1]V
	for k, i := range s.idx {
		one[0] = s.vals[i]
		out = append(out, kv.Pair[string, V]{Key: k, Val: reduce(k, one[:])})
	}
	return out
}

// flatInitialSlots is the starting index size of a local table; it
// doubles at 75% load. Must be a power of two.
const flatInitialSlots = 512

// flatEntry locates one local key: its full hash (kept for rehash and
// shard routing) and the key bytes inside the local arena. The uint32
// offsets cap a single local's arena at 4 GiB per round — far beyond
// any split's worth of distinct keys.
type flatEntry struct {
	hash uint64
	koff uint32
	klen uint32
}

// flatLocal is the per-worker open-addressing combiner. All storage is
// retained across flushes via the parent's local pool.
type flatLocal[V any] struct {
	parent  *FlatHash[V]
	table   []int32 // open-addressing index into entries; -1 = empty
	mask    uint64
	entries []flatEntry
	vals    []V     // parallel to entries
	arena   []byte  // append-only key bytes
	starts  []int   // flush scratch: per-shard batch offsets
	fill    []int   // flush scratch: per-shard write cursors
	order   []int32 // flush scratch: entry indexes grouped by shard
}

var _ kv.BytesEmitter[int64] = (*flatLocal[int64])(nil)

func newFlatTable(slots int) []int32 {
	t := make([]int32, slots)
	for i := range t {
		t[i] = -1
	}
	return t
}

// Emit folds val into the local table under a string key.
func (l *flatLocal[V]) Emit(key string, val V) { l.emit(key, val) }

// EmitBytes is the hot-path entry point: key may alias the input split
// and is copied into the arena only on first local occurrence.
func (l *flatLocal[V]) EmitBytes(key []byte, val V) {
	// Alias the bytes as a string for the shared probe path. The alias
	// never outlives this call: comparisons read it and insertion copies
	// it into the arena.
	var s string
	if len(key) > 0 {
		s = unsafe.String(&key[0], len(key))
	}
	l.emit(s, val)
}

func (l *flatLocal[V]) emit(key string, val V) {
	h := maphash.String(stringSeed, key)
	i := h & l.mask
	for {
		ei := l.table[i]
		if ei < 0 {
			break
		}
		e := &l.entries[ei]
		// string(arena-slice) == key compiles to an allocation-free
		// comparison.
		if e.hash == h && string(l.arena[e.koff:e.koff+e.klen]) == key {
			l.vals[ei] = l.parent.combine(l.vals[ei], val)
			return
		}
		i = (i + 1) & l.mask
	}
	// New local key. Grow first when at the load limit, then claim the
	// (possibly relocated) empty slot.
	if (len(l.entries)+1)*4 > len(l.table)*3 {
		l.grow()
		i = h & l.mask
		for l.table[i] >= 0 {
			i = (i + 1) & l.mask
		}
	}
	koff := uint32(len(l.arena))
	l.arena = append(l.arena, key...)
	l.table[i] = int32(len(l.entries))
	l.entries = append(l.entries, flatEntry{hash: h, koff: koff, klen: uint32(len(key))})
	l.vals = append(l.vals, val)
}

// grow doubles the index and reinserts every entry by its stored hash;
// key bytes never move.
func (l *flatLocal[V]) grow() {
	nt := newFlatTable(len(l.table) * 2)
	mask := uint64(len(nt) - 1)
	for ei := range l.entries {
		i := l.entries[ei].hash & mask
		for nt[i] >= 0 {
			i = (i + 1) & mask
		}
		nt[i] = int32(ei)
	}
	l.table = nt
	l.mask = mask
}

// Flush merges the local entries into the global shards, one lock per
// shard: entries are grouped by destination shard with a counting sort
// on reused scratch, then each shard's whole batch merges under a
// single lock acquisition. The local is reset (storage retained) and
// returned to the parent's pool; per the Local contract it must not be
// used after Flush.
func (l *flatLocal[V]) Flush() {
	p := l.parent
	if len(l.entries) > 0 {
		l.flushEntries()
	}
	l.recycle()
	p.putLocal(l)
}

func (l *flatLocal[V]) flushEntries() {
	p := l.parent
	nsh := len(p.shards)
	mask := uint64(nsh - 1)
	n := len(l.entries)

	// Counting sort of entry indexes by destination shard.
	if cap(l.starts) < nsh+1 {
		l.starts = make([]int, nsh+1)
	}
	starts := l.starts[:nsh+1]
	for i := range starts {
		starts[i] = 0
	}
	for i := range l.entries {
		starts[(l.entries[i].hash&mask)+1]++
	}
	for s := 1; s <= nsh; s++ {
		starts[s] += starts[s-1]
	}
	if cap(l.order) < n {
		l.order = make([]int32, n)
	}
	order := l.order[:n]
	// fill starts as a copy of the batch offsets and advances as entries
	// land; starts[s]..starts[s+1] still bounds shard s afterwards
	// because each cursor ends exactly at the next shard's start.
	if cap(l.fill) < nsh {
		l.fill = make([]int, nsh)
	}
	fill := l.fill[:nsh]
	copy(fill, starts[:nsh])
	for ei := range l.entries {
		s := l.entries[ei].hash & mask
		order[fill[s]] = int32(ei)
		fill[s]++
	}

	entry := p.entryBytes()
	var added int64
	for s := 0; s < nsh; s++ {
		lo, hi := starts[s], starts[s+1]
		if lo == hi {
			continue
		}
		sh := &p.shards[s]
		sh.mu.Lock()
		for _, ei := range order[lo:hi] {
			e := &l.entries[ei]
			kb := l.arena[e.koff : e.koff+e.klen]
			// Allocation-free intern check: the map lookup with a
			// converted byte slice does not materialize a string.
			if gi, ok := sh.idx[string(kb)]; ok {
				merged := p.combine(sh.vals[gi], l.vals[ei])
				if p.dynV != nil {
					added += p.dynV(merged) - p.dynV(sh.vals[gi])
				}
				sh.vals[gi] = merged
			} else {
				key := string(kb) // interned exactly once per global key
				sh.idx[key] = len(sh.vals)
				sh.vals = append(sh.vals, l.vals[ei])
				added += entry + int64(len(key)) + dynOf(p.dynV, l.vals[ei])
			}
		}
		sh.mu.Unlock()
	}
	p.bytes.Add(added)
}

// recycle clears the local for reuse without releasing any storage:
// the index is re-emptied, the dense arrays and arena keep their
// capacity, and values are zeroed so stale references cannot pin heap.
func (l *flatLocal[V]) recycle() {
	for i := range l.table {
		l.table[i] = -1
	}
	l.entries = l.entries[:0]
	clear(l.vals)
	l.vals = l.vals[:0]
	l.arena = l.arena[:0]
}
