package container

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"supmr/internal/workload"
)

func TestFlatHashCounts(t *testing.T) {
	f := NewFlatHash[int64](8, sumInt64)
	l := f.NewLocal()
	for i := 0; i < 10; i++ {
		l.Emit("a", 1)
	}
	l.Emit("b", 5)
	l.Flush()
	got := collect[string, int64](f, reduceSum)
	if got["a"] != 10 || got["b"] != 5 {
		t.Errorf("counts = %v", got)
	}
	if f.Len() != 2 {
		t.Errorf("Len = %d, want 2", f.Len())
	}
}

func TestFlatHashRequiresCombiner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFlatHash(nil combiner) should panic")
		}
	}()
	NewFlatHash[int64](8, nil)
}

func TestFlatHashShardRounding(t *testing.T) {
	if p := NewFlatHash[int64](5, sumInt64).Partitions(); p != 8 {
		t.Errorf("5 shards should round to 8, got %d", p)
	}
	if p := NewFlatHash[int64](0, sumInt64).Partitions(); p != 1 {
		t.Errorf("0 shards should become 1, got %d", p)
	}
}

// Differential: for randomized emissions spread over many locals and
// multiple unflushed "rounds", the flat container and the map-backed
// hash container must reduce to identical key→count maps.
func TestFlatHashMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	flat := NewFlatHash[int64](8, sumInt64)
	ref := NewHash[string, int64](8, StringHasher, sumInt64)
	for round := 0; round < 5; round++ {
		fl, rl := flat.NewLocal(), ref.NewLocal()
		for i := 0; i < 3000; i++ {
			key := fmt.Sprintf("key-%d", rng.Intn(400))
			if rng.Intn(2) == 0 {
				fl.(*flatLocal[int64]).EmitBytes([]byte(key), 1)
			} else {
				fl.Emit(key, 1)
			}
			rl.Emit(key, 1)
			if rng.Intn(500) == 0 { // rotate locals mid-stream
				fl.Flush()
				rl.Flush()
				fl, rl = flat.NewLocal(), ref.NewLocal()
			}
		}
		fl.Flush()
		rl.Flush()
	}
	got := collect[string, int64](flat, reduceSum)
	want := collect[string, int64](ref, reduceSum)
	if len(got) != len(want) {
		t.Fatalf("distinct keys: flat %d, map %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q: flat %d, map %d", k, got[k], v)
		}
	}
	if flat.Len() != ref.Len() {
		t.Errorf("Len: flat %d, map %d", flat.Len(), ref.Len())
	}
}

// Growth: push enough distinct keys through one local to force several
// index doublings (512 initial slots → 10k keys crosses four rehashes)
// and verify nothing is lost or double-counted.
func TestFlatLocalGrowthRehash(t *testing.T) {
	const n = 10_000
	f := NewFlatHash[int64](4, sumInt64)
	l := f.NewLocal()
	for i := 0; i < n; i++ {
		l.Emit(fmt.Sprintf("key-%06d", i), 1)
		l.Emit(fmt.Sprintf("key-%06d", i), 2) // merge path after insert
	}
	l.Flush()
	got := collect[string, int64](f, reduceSum)
	if len(got) != n {
		t.Fatalf("distinct keys = %d, want %d", len(got), n)
	}
	for k, v := range got {
		if v != 3 {
			t.Fatalf("key %q = %d, want 3", k, v)
		}
	}
}

// Steady state: once a pooled local's table and arena are warm and the
// global shards hold the vocabulary, a full NewLocal→emit→Flush round
// must not allocate.
func TestFlatHashSteadyStateZeroAlloc(t *testing.T) {
	f := NewFlatHash[int64](8, sumInt64)
	keys := make([][]byte, 300)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%03d", i))
	}
	round := func() {
		l := f.NewLocal().(*flatLocal[int64])
		for rep := 0; rep < 4; rep++ {
			for _, k := range keys {
				l.EmitBytes(k, 1)
			}
		}
		l.Flush()
	}
	round() // warm the pooled local and intern the vocabulary
	if allocs := testing.AllocsPerRun(10, round); allocs > 2 {
		t.Errorf("steady-state round allocates %.0f objects, want <= 2", allocs)
	}
}

func TestFlatHashEmptyKey(t *testing.T) {
	f := NewFlatHash[int64](4, sumInt64)
	l := f.NewLocal().(*flatLocal[int64])
	l.EmitBytes(nil, 1)
	l.EmitBytes([]byte{}, 2)
	l.Emit("", 3)
	l.Emit("x", 1)
	l.Flush()
	got := collect[string, int64](f, reduceSum)
	if got[""] != 6 {
		t.Errorf("empty key = %d, want 6", got[""])
	}
	if got["x"] != 1 || f.Len() != 2 {
		t.Errorf("counts = %v, Len = %d", got, f.Len())
	}
}

// EmitBytes keys may alias caller memory that is reused after the call;
// the container must have copied them.
func TestFlatHashEmitBytesDoesNotRetainCallerBytes(t *testing.T) {
	f := NewFlatHash[int64](4, sumInt64)
	l := f.NewLocal().(*flatLocal[int64])
	buf := []byte("alpha")
	l.EmitBytes(buf, 1)
	copy(buf, "XXXXX")
	l.EmitBytes([]byte("alpha"), 1)
	l.Flush()
	got := collect[string, int64](f, reduceSum)
	if got["alpha"] != 2 || len(got) != 1 {
		t.Errorf("counts = %v, want alpha=2 only", got)
	}
}

func TestFlatHashConcurrentLocals(t *testing.T) {
	f := NewFlatHash[int64](16, sumInt64)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := f.NewLocal()
			for i := 0; i < perWorker; i++ {
				l.Emit(fmt.Sprintf("key-%d", i%50), 1)
			}
			l.Flush()
		}()
	}
	wg.Wait()
	got := collect[string, int64](f, reduceSum)
	var total int64
	for _, v := range got {
		total += v
	}
	if total != workers*perWorker {
		t.Errorf("total = %d, want %d", total, workers*perWorker)
	}
	if len(got) != 50 {
		t.Errorf("distinct keys = %d, want 50", len(got))
	}
}

func TestFlatHashSizeBytes(t *testing.T) {
	f := NewFlatHash[int64](4, sumInt64)
	if f.SizeBytes() != 0 {
		t.Fatalf("empty SizeBytes = %d", f.SizeBytes())
	}
	l := f.NewLocal()
	for i := 0; i < 100; i++ {
		l.Emit(fmt.Sprintf("key-%03d", i), 1)
	}
	l.Flush()
	size := f.SizeBytes()
	if size <= 0 {
		t.Fatalf("SizeBytes = %d after 100 keys", size)
	}
	// Re-emitting the same vocabulary merges in place: no new keys, no
	// growth for a fixed-size value type.
	l = f.NewLocal()
	for i := 0; i < 100; i++ {
		l.Emit(fmt.Sprintf("key-%03d", i), 1)
	}
	l.Flush()
	if got := f.SizeBytes(); got != size {
		t.Errorf("SizeBytes grew %d -> %d on merge-only flush", size, got)
	}
	f.Reset()
	if f.SizeBytes() != 0 || f.Len() != 0 {
		t.Errorf("Reset left SizeBytes=%d Len=%d", f.SizeBytes(), f.Len())
	}
}

func TestFlatHashPartitionBounds(t *testing.T) {
	f := NewFlatHash[int64](4, sumInt64)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range partition should panic")
		}
	}()
	f.Reduce(99, reduceSum, nil)
}

// Fuzz: tokenizer output fed through the flat bytes path must reduce
// identically to strings fed through the map-backed container.
func FuzzFlatCombiner(f *testing.F) {
	f.Add([]byte("the quick brown fox the lazy dog the end"))
	f.Add([]byte(""))
	f.Add([]byte("a a a a a a a a"))
	f.Add([]byte("x\ny\tz x\x00y"))
	f.Fuzz(func(t *testing.T, data []byte) {
		flat := NewFlatHash[int64](4, sumInt64)
		ref := NewHash[string, int64](4, StringHasher, sumInt64)
		fl := flat.NewLocal().(*flatLocal[int64])
		rl := ref.NewLocal()
		workload.Tokenize(data, func(w []byte) {
			fl.EmitBytes(w, 1)
			rl.Emit(string(w), 1)
		})
		fl.Flush()
		rl.Flush()
		got := collect[string, int64](flat, reduceSum)
		want := collect[string, int64](ref, reduceSum)
		if len(got) != len(want) {
			t.Fatalf("distinct keys: flat %d, map %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("key %q: flat %d, map %d", k, got[k], v)
			}
		}
	})
}
