package container

import "unsafe"

// Memory accounting for the spill layer (internal/spill): every
// container tracks the approximate resident heap bytes of its global
// state so the SupMR round loop can compare SizeBytes() against the
// job's memory budget between ingest rounds. The estimate is shallow
// struct size plus the referenced bytes of common dynamic key/value
// types; worker-local accumulators are transient and not counted.

// mapEntryOverhead approximates the per-entry bookkeeping of a Go map
// (bucket slot, tophash, growth slack) beyond the key and value bytes.
const mapEntryOverhead = 48

// sliceHeaderBytes is the inline size of a slice header.
const sliceHeaderBytes = int64(unsafe.Sizeof([]byte(nil)))

// shallowSize returns the inline representation size of T.
func shallowSize[T any]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// dynSizer returns a function measuring the heap bytes a value of T
// references beyond its inline representation, or nil when T carries
// none worth counting (numeric types). Covers the key/value types the
// benchmark applications store.
func dynSizer[T any]() func(T) int64 {
	var zero T
	switch any(zero).(type) {
	case string:
		return func(v T) int64 { return int64(len(any(v).(string))) }
	case []byte:
		return func(v T) int64 { return int64(len(any(v).([]byte))) }
	case []string:
		return func(v T) int64 {
			var n int64
			for _, s := range any(v).([]string) {
				n += int64(len(s)) + int64(unsafe.Sizeof(s))
			}
			return n
		}
	}
	return nil
}

// dynOf applies sizer to v, treating a nil sizer as zero.
func dynOf[T any](sizer func(T) int64, v T) int64 {
	if sizer == nil {
		return 0
	}
	return sizer(v)
}

// Unspillable marks containers the spill layer cannot drain to disk.
// The array container implements it: its footprint is fixed by the key
// width rather than by the data, so spilling cannot shrink it, and
// draining cells would abandon the dense-key layout that justifies the
// container in the first place.
type Unspillable interface {
	UnspillableContainer()
}
