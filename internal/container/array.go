package container

import (
	"fmt"
	"sync"

	"supmr/internal/kv"
)

// Array is the Phoenix++ array container: keys are dense integers in
// [0, width), stored in a flat array. Map workers fold into a local
// array; Flush merges stripes into the global array under striped locks.
// Ideal for histogram-like jobs where the key universe is small and
// known in advance.
type Array[V any] struct {
	width   int
	stripes int
	combine kv.Combine[V]

	mu      []sync.Mutex
	present []bool
	vals    []V
}

// NewArray builds an array container over keys [0, width) with combine
// folding values (required — an array cell holds exactly one value).
func NewArray[V any](width, stripes int, combine kv.Combine[V]) *Array[V] {
	if width <= 0 {
		panic(fmt.Sprintf("container: array width must be positive, got %d", width))
	}
	if combine == nil {
		panic("container: NewArray requires a combiner")
	}
	if stripes < 1 {
		stripes = 1
	}
	if stripes > width {
		stripes = width
	}
	a := &Array[V]{width: width, stripes: stripes, combine: combine}
	a.mu = make([]sync.Mutex, stripes)
	a.Reset()
	return a
}

// Reset clears all cells.
func (a *Array[V]) Reset() {
	a.present = make([]bool, a.width)
	a.vals = make([]V, a.width)
}

// SizeBytes returns the container footprint. It is fixed by the key
// width — the flat value and presence arrays exist whether or not cells
// are occupied — plus any heap bytes occupied values reference.
func (a *Array[V]) SizeBytes() int64 {
	size := int64(a.width) * (shallowSize[V]() + 1)
	dynV := dynSizer[V]()
	if dynV == nil {
		return size
	}
	for s := 0; s < a.stripes; s++ {
		lo, hi := a.stripeRange(s)
		a.mu[s].Lock()
		for i := lo; i < hi; i++ {
			if a.present[i] {
				size += dynV(a.vals[i])
			}
		}
		a.mu[s].Unlock()
	}
	return size
}

// UnspillableContainer marks the array container as unsupported by the
// spill layer: its footprint is width-bound, not data-bound, so
// spilling cannot shrink it.
func (a *Array[V]) UnspillableContainer() {}

// Fresh returns a new empty container with this one's width, stripe
// count and combiner (the container.Fresher extension).
func (a *Array[V]) Fresh() Container[int, V] {
	return NewArray[V](a.width, a.stripes, a.combine)
}

// Width returns the key-universe size.
func (a *Array[V]) Width() int { return a.width }

// Partitions returns the stripe count.
func (a *Array[V]) Partitions() int { return a.stripes }

// Len counts occupied cells.
func (a *Array[V]) Len() int {
	n := 0
	for s := 0; s < a.stripes; s++ {
		lo, hi := a.stripeRange(s)
		a.mu[s].Lock()
		for i := lo; i < hi; i++ {
			if a.present[i] {
				n++
			}
		}
		a.mu[s].Unlock()
	}
	return n
}

// PartitionLen counts occupied cells of stripe p, so the reduce phase
// can presize its output buffer.
func (a *Array[V]) PartitionLen(p int) int {
	lo, hi := a.stripeRange(p)
	a.mu[p].Lock()
	defer a.mu[p].Unlock()
	n := 0
	for i := lo; i < hi; i++ {
		if a.present[i] {
			n++
		}
	}
	return n
}

func (a *Array[V]) stripeRange(s int) (lo, hi int) {
	per := (a.width + a.stripes - 1) / a.stripes
	lo = s * per
	hi = lo + per
	if hi > a.width {
		hi = a.width
	}
	return lo, hi
}

func (a *Array[V]) stripeOf(key int) int {
	per := (a.width + a.stripes - 1) / a.stripes
	return key / per
}

// NewLocal returns a worker-local array accumulator.
func (a *Array[V]) NewLocal() Local[int, V] {
	return &arrayLocal[V]{
		parent:  a,
		present: make([]bool, a.width),
		vals:    make([]V, a.width),
	}
}

type arrayLocal[V any] struct {
	parent  *Array[V]
	present []bool
	vals    []V
}

// Emit folds val into the local cell for key.
func (l *arrayLocal[V]) Emit(key int, val V) {
	if key < 0 || key >= l.parent.width {
		panic(fmt.Sprintf("container: array key %d out of range [0,%d)", key, l.parent.width))
	}
	if l.present[key] {
		l.vals[key] = l.parent.combine(l.vals[key], val)
	} else {
		l.present[key] = true
		l.vals[key] = val
	}
}

// Flush merges local cells into the global array stripe by stripe.
func (l *arrayLocal[V]) Flush() {
	a := l.parent
	for s := 0; s < a.stripes; s++ {
		lo, hi := a.stripeRange(s)
		a.mu[s].Lock()
		for i := lo; i < hi; i++ {
			if !l.present[i] {
				continue
			}
			if a.present[i] {
				a.vals[i] = a.combine(a.vals[i], l.vals[i])
			} else {
				a.present[i] = true
				a.vals[i] = l.vals[i]
			}
		}
		a.mu[s].Unlock()
	}
	l.present, l.vals = nil, nil
}

// Reduce applies reduce over occupied cells of stripe p. Output pairs
// come out already key-ordered within the stripe (array order).
func (a *Array[V]) Reduce(p int, reduce func(k int, vs []V) V, out []kv.Pair[int, V]) []kv.Pair[int, V] {
	if p < 0 || p >= a.stripes {
		panic(fmt.Sprintf("container: array partition %d out of range [0,%d)", p, a.stripes))
	}
	lo, hi := a.stripeRange(p)
	a.mu[p].Lock()
	defer a.mu[p].Unlock()
	var one [1]V
	for i := lo; i < hi; i++ {
		if !a.present[i] {
			continue
		}
		one[0] = a.vals[i]
		out = append(out, kv.Pair[int, V]{Key: i, Val: reduce(i, one[:])})
	}
	return out
}
