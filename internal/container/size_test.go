package container

import (
	"fmt"
	"runtime"
	"testing"
)

func TestHashSizeBytesGrowsAndResets(t *testing.T) {
	h := NewHash[string, int64](4, StringHasher, sumInt64)
	if got := h.SizeBytes(); got != 0 {
		t.Fatalf("empty SizeBytes = %d, want 0", got)
	}
	l := h.NewLocal()
	for i := 0; i < 100; i++ {
		l.Emit(fmt.Sprintf("key-%04d", i), 1)
	}
	l.Flush()
	sz := h.SizeBytes()
	// 100 distinct keys of 8 bytes each: at least key bytes plus some
	// per-entry overhead, and not absurdly more than ~a few hundred
	// bytes per entry.
	if sz < 100*8 || sz > 100*1024 {
		t.Fatalf("SizeBytes = %d, want within [800, 102400]", sz)
	}
	// Re-emitting the same keys combines in place: no growth beyond the
	// existing entries (int64 values carry no heap bytes).
	l2 := h.NewLocal()
	for i := 0; i < 100; i++ {
		l2.Emit(fmt.Sprintf("key-%04d", i), 1)
	}
	l2.Flush()
	if got := h.SizeBytes(); got != sz {
		t.Errorf("SizeBytes after combining flush = %d, want unchanged %d", got, sz)
	}
	h.Reset()
	if got := h.SizeBytes(); got != 0 {
		t.Errorf("SizeBytes after Reset = %d, want 0", got)
	}
}

func TestHashSizeBytesNoCombiner(t *testing.T) {
	h := NewHash[string, int64](2, StringHasher, nil)
	l := h.NewLocal()
	for i := 0; i < 10; i++ {
		l.Emit("same", int64(i))
	}
	l.Flush()
	first := h.SizeBytes()
	if first <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", first)
	}
	// Another 10 values for the same key grow the value list but add no
	// new key entry: growth must be smaller than the first flush's.
	l2 := h.NewLocal()
	for i := 0; i < 10; i++ {
		l2.Emit("same", int64(i))
	}
	l2.Flush()
	growth := h.SizeBytes() - first
	if growth <= 0 || growth >= first {
		t.Errorf("second flush growth = %d, want in (0, %d)", growth, first)
	}
}

func TestKeyRangeSizeBytes(t *testing.T) {
	c := NewKeyRange[string, uint64](4)
	if got := c.SizeBytes(); got != 0 {
		t.Fatalf("empty SizeBytes = %d, want 0", got)
	}
	l := c.NewLocal()
	for i := 0; i < 50; i++ {
		l.Emit(fmt.Sprintf("k%08d", i), uint64(i))
	}
	l.Flush()
	sz := c.SizeBytes()
	// 50 pairs, each at least the 10-byte key plus the pair struct.
	if sz < 50*10 {
		t.Fatalf("SizeBytes = %d, want >= %d", sz, 50*10)
	}
	c.Reset()
	if got := c.SizeBytes(); got != 0 {
		t.Errorf("SizeBytes after Reset = %d, want 0", got)
	}
}

func TestArraySizeBytesFixedByWidth(t *testing.T) {
	a := NewArray[int64](1000, 4, sumInt64)
	empty := a.SizeBytes()
	if empty < 1000*8 {
		t.Fatalf("empty array SizeBytes = %d, want >= %d", empty, 1000*8)
	}
	l := a.NewLocal()
	for i := 0; i < 1000; i++ {
		l.Emit(i, 1)
	}
	l.Flush()
	if got := a.SizeBytes(); got != empty {
		t.Errorf("array SizeBytes grew with data: %d -> %d (footprint is width-bound)", empty, got)
	}
}

func TestArrayIsUnspillable(t *testing.T) {
	var c Container[int, int64] = NewArray[int64](8, 1, sumInt64)
	if _, ok := c.(Unspillable); !ok {
		t.Error("array container should implement Unspillable")
	}
	var h Container[string, int64] = NewHash[string, int64](4, StringHasher, sumInt64)
	if _, ok := h.(Unspillable); ok {
		t.Error("hash container should not implement Unspillable")
	}
}

// TestHashResetReallocates verifies Reset replaces the shard maps with
// fresh allocations instead of clearing in place: Go maps never shrink,
// so in-place clearing after a huge round would pin the bucket arrays
// for the rest of the job.
func TestHashResetReallocates(t *testing.T) {
	h := NewHash[string, int64](4, StringHasher, sumInt64)
	allocs := testing.AllocsPerRun(10, func() { h.Reset() })
	// One fresh map per shard, every run.
	if allocs < float64(h.Partitions()) {
		t.Errorf("Reset allocs/run = %.1f, want >= %d (fresh map per shard)", allocs, h.Partitions())
	}
}

// TestHashResetReleasesMemory fills the container with a large round's
// worth of keys and checks that Reset actually returns the heap to the
// runtime (within GC accounting slack).
func TestHashResetReleasesMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("heap-size assertion skipped in -short")
	}
	h := NewHash[string, int64](64, StringHasher, sumInt64)

	heapInUse := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapInuse
	}

	base := heapInUse()
	l := h.NewLocal()
	for i := 0; i < 500_000; i++ {
		l.Emit(fmt.Sprintf("word-%07d", i), 1)
	}
	l.Flush()
	full := heapInUse()
	if full <= base+(8<<20) {
		t.Skipf("container heap growth too small to measure: %d -> %d", base, full)
	}

	h.Reset()
	after := heapInUse()
	// The shard maps held tens of MB; after Reset at least half of the
	// growth must be back with the runtime.
	if after > base+(full-base)/2 {
		t.Errorf("heap after Reset = %d, want <= %d (base %d, full %d): Reset did not release shard maps",
			after, base+(full-base)/2, base, full)
	}
}
