package container

import (
	"fmt"
	"sync"

	"supmr/internal/kv"
)

// KeyRange is Phoenix's "unlocked" storage, the container SupMR selects
// for sort (§V-B): applications with unique keys let every map worker
// write to its own region of one shared result array with no
// synchronization. Each Local accumulates pairs in a private buffer;
// Flush publishes the buffer (a single short append, the analog of
// reserving a region in the shared array). The container presents a
// FIXED number of reduce partitions — equal segments of the logical
// array — regardless of how many map waves ran, matching Phoenix where
// the array geometry, not the task count, determines partitioning.
type KeyRange[K comparable, V any] struct {
	partitions int

	mu    sync.Mutex
	bufs  [][]kv.Pair[K, V]
	total int
	bytes int64 // approximate resident bytes, maintained at Flush
}

// DefaultKeyRangePartitions is the partition count when none is given.
const DefaultKeyRangePartitions = 64

// NewKeyRange builds an unlocked container with the given reduce
// partition count (<=0 selects the default).
func NewKeyRange[K comparable, V any](partitions int) *KeyRange[K, V] {
	if partitions <= 0 {
		partitions = DefaultKeyRangePartitions
	}
	return &KeyRange[K, V]{partitions: partitions}
}

// Reset discards all stored pairs.
func (c *KeyRange[K, V]) Reset() {
	c.mu.Lock()
	c.bufs = nil
	c.total = 0
	c.bytes = 0
	c.mu.Unlock()
}

// SizeBytes returns the approximate resident bytes of the published
// buffers.
func (c *KeyRange[K, V]) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Fresh returns a new empty container with this one's partition count
// (the container.Fresher extension).
func (c *KeyRange[K, V]) Fresh() Container[K, V] {
	return NewKeyRange[K, V](c.partitions)
}

// Partitions returns the fixed partition count (0 when empty).
func (c *KeyRange[K, V]) Partitions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.total == 0 {
		return 0
	}
	if c.total < c.partitions {
		return c.total
	}
	return c.partitions
}

// Len counts stored pairs.
func (c *KeyRange[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// NewLocal returns an unsynchronized buffer for one map worker.
func (c *KeyRange[K, V]) NewLocal() Local[K, V] {
	return &keyRangeLocal[K, V]{parent: c}
}

type keyRangeLocal[K comparable, V any] struct {
	parent *KeyRange[K, V]
	buf    []kv.Pair[K, V]
}

// Emit appends to the private buffer; no locks on the hot path.
func (l *keyRangeLocal[K, V]) Emit(key K, val V) {
	l.buf = append(l.buf, kv.Pair[K, V]{Key: key, Val: val})
}

// Flush publishes the buffer into the shared array.
func (l *keyRangeLocal[K, V]) Flush() {
	if len(l.buf) == 0 {
		l.buf = nil
		return
	}
	added := int64(len(l.buf)) * shallowSize[kv.Pair[K, V]]()
	if dynK, dynV := dynSizer[K](), dynSizer[V](); dynK != nil || dynV != nil {
		for _, pr := range l.buf {
			added += dynOf(dynK, pr.Key) + dynOf(dynV, pr.Val)
		}
	}
	p := l.parent
	p.mu.Lock()
	p.bufs = append(p.bufs, l.buf)
	p.total += len(l.buf)
	p.bytes += added
	p.mu.Unlock()
	l.buf = nil
}

// PartitionLen reports the number of pairs in partition p (keys are
// unique by contract, so pairs equal reduce outputs), letting the
// reduce phase presize its output buffer.
func (c *KeyRange[K, V]) PartitionLen(p int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	parts := c.partitions
	if c.total < parts {
		parts = c.total
	}
	if p < 0 || p >= parts {
		return 0
	}
	lo, hi := c.segment(p, parts)
	return hi - lo
}

// segment returns the logical-array range [lo, hi) of partition p.
func (c *KeyRange[K, V]) segment(p, parts int) (lo, hi int) {
	lo = p * c.total / parts
	hi = (p + 1) * c.total / parts
	return lo, hi
}

// Reduce applies reduce to each pair of partition p (keys are unique by
// contract, so every key has exactly one value). Partition p covers the
// p-th equal segment of the logical shared array.
func (c *KeyRange[K, V]) Reduce(p int, reduce func(k K, vs []V) V, out []kv.Pair[K, V]) []kv.Pair[K, V] {
	c.mu.Lock()
	parts := c.partitions
	if c.total < parts {
		parts = c.total
	}
	if p < 0 || p >= parts {
		c.mu.Unlock()
		panic(fmt.Sprintf("container: key-range partition %d out of range [0,%d)", p, parts))
	}
	lo, hi := c.segment(p, parts)
	// Snapshot the buffers covering [lo, hi).
	var view [][]kv.Pair[K, V]
	pos := 0
	for _, b := range c.bufs {
		bLo, bHi := pos, pos+len(b)
		pos = bHi
		if bHi <= lo {
			continue
		}
		if bLo >= hi {
			break
		}
		s, e := 0, len(b)
		if lo > bLo {
			s = lo - bLo
		}
		if hi < bHi {
			e = hi - bLo
		}
		view = append(view, b[s:e])
	}
	c.mu.Unlock()

	var one [1]V
	for _, seg := range view {
		for _, pr := range seg {
			one[0] = pr.Val
			out = append(out, kv.Pair[K, V]{Key: pr.Key, Val: reduce(pr.Key, one[:])})
		}
	}
	return out
}
