package container

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"supmr/internal/kv"
)

func sumInt64(a, b int64) int64 { return a + b }

// reduceSum is a reduce function summing values.
func reduceSum(_ string, vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}

// collect drains every partition of a container into a map.
func collect[K comparable, V any](c Container[K, V], reduce func(K, []V) V) map[K]V {
	out := make(map[K]V)
	for p := 0; p < c.Partitions(); p++ {
		for _, pr := range c.Reduce(p, reduce, nil) {
			out[pr.Key] = pr.Val
		}
	}
	return out
}

func TestHashCombinerCounts(t *testing.T) {
	h := NewHash[string, int64](8, StringHasher, sumInt64)
	l := h.NewLocal()
	for i := 0; i < 10; i++ {
		l.Emit("a", 1)
	}
	l.Emit("b", 5)
	l.Flush()
	got := collect[string, int64](h, reduceSum)
	if got["a"] != 10 || got["b"] != 5 {
		t.Errorf("counts = %v", got)
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d, want 2", h.Len())
	}
}

func TestHashNoCombinerRetainsValues(t *testing.T) {
	h := NewHash[string, int64](4, StringHasher, nil)
	l := h.NewLocal()
	l.Emit("k", 1)
	l.Emit("k", 2)
	l.Emit("k", 3)
	l.Flush()
	var gotVals []int64
	for p := 0; p < h.Partitions(); p++ {
		h.Reduce(p, func(_ string, vs []int64) int64 {
			gotVals = append(gotVals, vs...)
			return int64(len(vs))
		}, nil)
	}
	if len(gotVals) != 3 {
		t.Errorf("retained %d values, want 3: %v", len(gotVals), gotVals)
	}
}

func TestHashConcurrentLocals(t *testing.T) {
	h := NewHash[string, int64](16, StringHasher, sumInt64)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := h.NewLocal()
			for i := 0; i < perWorker; i++ {
				l.Emit(fmt.Sprintf("key-%d", i%50), 1)
			}
			l.Flush()
		}(w)
	}
	wg.Wait()
	got := collect[string, int64](h, reduceSum)
	var total int64
	for _, v := range got {
		total += v
	}
	if total != workers*perWorker {
		t.Errorf("total = %d, want %d", total, workers*perWorker)
	}
	if len(got) != 50 {
		t.Errorf("distinct keys = %d, want 50", len(got))
	}
}

func TestHashReset(t *testing.T) {
	h := NewHash[string, int64](4, StringHasher, sumInt64)
	l := h.NewLocal()
	l.Emit("x", 1)
	l.Flush()
	h.Reset()
	if h.Len() != 0 {
		t.Errorf("Len after Reset = %d", h.Len())
	}
}

func TestHashShardRounding(t *testing.T) {
	h := NewHash[string, int64](5, StringHasher, sumInt64)
	if h.Partitions() != 8 {
		t.Errorf("5 shards should round to 8, got %d", h.Partitions())
	}
	if p := NewHash[string, int64](0, StringHasher, sumInt64).Partitions(); p != 1 {
		t.Errorf("0 shards should become 1, got %d", p)
	}
}

func TestHashPartitionBounds(t *testing.T) {
	h := NewHash[string, int64](4, StringHasher, sumInt64)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range partition should panic")
		}
	}()
	h.Reduce(99, reduceSum, nil)
}

// Property: for any multiset of (key, value) emissions spread across
// locals, the hash container's reduced counts equal a reference map.
func TestHashMatchesReference(t *testing.T) {
	f := func(keys []uint8) bool {
		h := NewHash[string, int64](8, StringHasher, sumInt64)
		ref := make(map[string]int64)
		l := h.NewLocal()
		for i, k := range keys {
			key := fmt.Sprintf("k%d", k%32)
			ref[key]++
			l.Emit(key, 1)
			if i%7 == 0 { // rotate locals mid-stream
				l.Flush()
				l = h.NewLocal()
			}
		}
		l.Flush()
		got := collect[string, int64](h, reduceSum)
		if len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestArrayCounts(t *testing.T) {
	a := NewArray[int64](10, 4, sumInt64)
	l := a.NewLocal()
	l.Emit(0, 3)
	l.Emit(9, 1)
	l.Emit(0, 2)
	l.Flush()
	var got []kv.Pair[int, int64]
	for p := 0; p < a.Partitions(); p++ {
		got = a.Reduce(p, func(_ int, vs []int64) int64 { return vs[0] }, got)
	}
	if len(got) != 2 {
		t.Fatalf("occupied cells = %d, want 2", len(got))
	}
	if got[0].Key != 0 || got[0].Val != 5 {
		t.Errorf("cell 0 = %+v, want {0 5}", got[0])
	}
	if got[1].Key != 9 || got[1].Val != 1 {
		t.Errorf("cell 9 = %+v, want {9 1}", got[1])
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestArrayOrderedWithinStripes(t *testing.T) {
	a := NewArray[int64](100, 3, sumInt64)
	l := a.NewLocal()
	for k := 99; k >= 0; k-- {
		l.Emit(k, 1)
	}
	l.Flush()
	var keys []int
	for p := 0; p < a.Partitions(); p++ {
		for _, pr := range a.Reduce(p, func(_ int, vs []int64) int64 { return vs[0] }, nil) {
			keys = append(keys, pr.Key)
		}
	}
	if !sort.IntsAreSorted(keys) {
		t.Error("array reduce output not key-ordered across stripes")
	}
	if len(keys) != 100 {
		t.Errorf("cells = %d, want 100", len(keys))
	}
}

func TestArrayConcurrent(t *testing.T) {
	a := NewArray[int64](256, 8, sumInt64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := a.NewLocal()
			for i := 0; i < 256; i++ {
				l.Emit(i, 1)
			}
			l.Flush()
		}()
	}
	wg.Wait()
	var total int64
	for p := 0; p < a.Partitions(); p++ {
		for _, pr := range a.Reduce(p, func(_ int, vs []int64) int64 { return vs[0] }, nil) {
			total += pr.Val
		}
	}
	if total != 8*256 {
		t.Errorf("total = %d, want %d", total, 8*256)
	}
}

func TestArrayKeyOutOfRangePanics(t *testing.T) {
	a := NewArray[int64](4, 1, sumInt64)
	l := a.NewLocal()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range key should panic")
		}
	}()
	l.Emit(4, 1)
}

func TestKeyRangeRoundTrip(t *testing.T) {
	c := NewKeyRange[string, uint64](4)
	const n = 100
	l := c.NewLocal()
	for i := 0; i < n; i++ {
		l.Emit(fmt.Sprintf("key%03d", i), uint64(i))
	}
	l.Flush()
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	if c.Partitions() != 4 {
		t.Fatalf("Partitions = %d, want 4", c.Partitions())
	}
	seen := make(map[string]uint64)
	var perPart []int
	for p := 0; p < c.Partitions(); p++ {
		out := c.Reduce(p, func(_ string, vs []uint64) uint64 { return vs[0] }, nil)
		perPart = append(perPart, len(out))
		for _, pr := range out {
			seen[pr.Key] = pr.Val
		}
	}
	if len(seen) != n {
		t.Errorf("round-tripped %d keys, want %d", len(seen), n)
	}
	// Equal segments of the logical array.
	for p, got := range perPart {
		if got != n/4 {
			t.Errorf("partition %d holds %d pairs, want %d", p, got, n/4)
		}
	}
}

func TestKeyRangeFixedPartitionsAcrossWaves(t *testing.T) {
	c := NewKeyRange[string, uint64](8)
	// Simulate 20 map waves of 4 locals each: partition count must stay 8.
	for wave := 0; wave < 20; wave++ {
		for w := 0; w < 4; w++ {
			l := c.NewLocal()
			for i := 0; i < 10; i++ {
				l.Emit(fmt.Sprintf("w%dt%di%d", wave, w, i), 1)
			}
			l.Flush()
		}
	}
	if c.Partitions() != 8 {
		t.Errorf("partitions = %d after 80 flushes, want 8", c.Partitions())
	}
	if c.Len() != 20*4*10 {
		t.Errorf("Len = %d, want %d", c.Len(), 20*4*10)
	}
	total := 0
	for p := 0; p < c.Partitions(); p++ {
		total += len(c.Reduce(p, func(_ string, vs []uint64) uint64 { return vs[0] }, nil))
	}
	if total != 800 {
		t.Errorf("reduced %d pairs, want 800", total)
	}
}

func TestKeyRangeFewerPairsThanPartitions(t *testing.T) {
	c := NewKeyRange[string, uint64](64)
	l := c.NewLocal()
	l.Emit("only", 1)
	l.Flush()
	if c.Partitions() != 1 {
		t.Errorf("partitions = %d for 1 pair, want 1", c.Partitions())
	}
	out := c.Reduce(0, func(_ string, vs []uint64) uint64 { return vs[0] }, nil)
	if len(out) != 1 || out[0].Key != "only" {
		t.Errorf("Reduce(0) = %v", out)
	}
}

func TestKeyRangeEmpty(t *testing.T) {
	c := NewKeyRange[string, uint64](4)
	if c.Partitions() != 0 || c.Len() != 0 {
		t.Error("empty container should report 0 partitions and length")
	}
	l := c.NewLocal()
	l.Flush() // empty flush is a no-op
	if c.Partitions() != 0 {
		t.Error("empty flush should not create a partition")
	}
}

func TestKeyRangeReset(t *testing.T) {
	c := NewKeyRange[string, uint64](4)
	l := c.NewLocal()
	l.Emit("x", 1)
	l.Flush()
	c.Reset()
	if c.Len() != 0 || c.Partitions() != 0 {
		t.Error("Reset did not clear the container")
	}
}

func TestKeyRangePartitionBounds(t *testing.T) {
	c := NewKeyRange[string, uint64](2)
	l := c.NewLocal()
	l.Emit("x", 1)
	l.Flush()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range partition should panic")
		}
	}()
	c.Reduce(5, func(_ string, vs []uint64) uint64 { return vs[0] }, nil)
}

// Property: the key-range container conserves pairs across arbitrary
// flush patterns and partition counts.
func TestKeyRangeConservesPairs(t *testing.T) {
	f := func(sizes []uint8, partsRaw uint8) bool {
		parts := int(partsRaw%16) + 1
		c := NewKeyRange[int, int](parts)
		want := 0
		for wi, sz := range sizes {
			l := c.NewLocal()
			for i := 0; i < int(sz%40); i++ {
				l.Emit(wi*1000+i, i)
				want++
			}
			l.Flush()
		}
		got := 0
		for p := 0; p < c.Partitions(); p++ {
			got += len(c.Reduce(p, func(_ int, vs []int) int { return vs[0] }, nil))
		}
		return got == want && c.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestHashers(t *testing.T) {
	if StringHasher("abc") != StringHasher("abc") {
		t.Error("StringHasher not deterministic within process")
	}
	if StringHasher("abc") == StringHasher("abd") {
		t.Error("StringHasher collision on near keys (unlikely)")
	}
	if Uint64Hasher(1) == Uint64Hasher(2) {
		t.Error("Uint64Hasher collision")
	}
	if IntHasher(-1) == IntHasher(1) {
		t.Error("IntHasher collision")
	}
}

// Every built-in container must implement the Fresher extension and
// return an empty clone with the same partition geometry that works
// independently of the original.
func TestFresh(t *testing.T) {
	add := func(c Container[string, int64], key string) {
		l := c.NewLocal()
		l.Emit(key, 1)
		l.Flush()
	}
	sum := func(c Container[string, int64]) int {
		n := 0
		for p := 0; p < c.Partitions(); p++ {
			n += len(c.Reduce(p, func(_ string, vs []int64) int64 { return int64(len(vs)) }, nil))
		}
		return n
	}
	combine := func(a, b int64) int64 { return a + b }
	for name, c := range map[string]Container[string, int64]{
		"hash":     NewHash[string, int64](4, StringHasher, combine),
		"flat":     NewFlatHash[int64](4, combine),
		"keyrange": NewKeyRange[string, int64](4),
	} {
		fr, ok := any(c).(Fresher[string, int64])
		if !ok {
			t.Errorf("%s: no Fresher extension", name)
			continue
		}
		add(c, "a")
		f := fr.Fresh()
		if f.Len() != 0 {
			t.Errorf("%s: Fresh() not empty: %d entries", name, f.Len())
		}
		add(f, "b")
		add(f, "c")
		if got := sum(f); got != 2 {
			t.Errorf("%s: fresh clone holds %d keys, want 2", name, got)
		}
		if got := sum(c); got != 1 {
			t.Errorf("%s: original disturbed: %d keys, want 1", name, got)
		}
	}
	a := NewArray[int64](8, 2, combine)
	af, ok := any(a).(Fresher[int, int64])
	if !ok {
		t.Fatal("array: no Fresher extension")
	}
	if f := af.Fresh(); f.Partitions() != a.Partitions() || f.Len() != 0 {
		t.Fatal("array: Fresh() clone geometry or emptiness wrong")
	}
}
