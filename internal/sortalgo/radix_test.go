package sortalgo

// Property, fuzz, and regression coverage for the vectorized sort/merge
// path: RadixSortPairs against a stable comparison reference, the
// columnar and padded loser trees against each other and against a
// naive k-way reference with the (key, column) tie rule, MergeSources'
// equal-key source ordering, and the PairwiseMerge allocation bound.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"supmr/internal/exec"
	"supmr/internal/kv"
)

var strLess = kv.Less[string](func(a, b string) bool { return a < b })

// keyAlphabet includes the extremes so encoded prefixes exercise the
// all-zero and all-0xFF corners next to the exhaustion sentinel.
var keyAlphabet = []byte{0x00, 0x01, 'A', 'a', 'b', 0x7F, 0x80, 0xFE, 0xFF}

// fixedKeys builds n exact-width keys. shape: "random", "dup" (two-key
// alphabet, duplicate-heavy), "sorted", "reverse".
func fixedKeys(n, width int, seed int64, shape string) []kv.Pair[string, int] {
	rng := rand.New(rand.NewSource(seed))
	alpha := keyAlphabet
	if shape == "dup" {
		alpha = keyAlphabet[:2]
	}
	ps := make([]kv.Pair[string, int], n)
	buf := make([]byte, width)
	for i := range ps {
		for j := range buf {
			buf[j] = alpha[rng.Intn(len(alpha))]
		}
		ps[i] = kv.Pair[string, int]{Key: string(buf), Val: i}
	}
	switch shape {
	case "sorted":
		sort.SliceStable(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
	case "reverse":
		sort.SliceStable(ps, func(i, j int) bool { return ps[i].Key > ps[j].Key })
	}
	return ps
}

// stableRef is the ground truth the radix sort must reproduce exactly:
// stable comparison sort by key, preserving input order within ties.
func stableRef[K any, V any](ps []kv.Pair[K, V], less kv.Less[K]) []kv.Pair[K, V] {
	ref := append([]kv.Pair[K, V](nil), ps...)
	sort.SliceStable(ref, func(i, j int) bool { return less(ref[i].Key, ref[j].Key) })
	return ref
}

func samePairs[K comparable, V comparable](t *testing.T, got, want []kv.Pair[K, V], label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestRadixSortMatchesStableReference(t *testing.T) {
	for _, width := range []int{1, 4, 7, 8, 10, 16, 24} {
		for _, shape := range []string{"random", "dup", "sorted", "reverse"} {
			for _, n := range []int{radixMinLen, 257, 1500} {
				label := fmt.Sprintf("w=%d %s n=%d", width, shape, n)
				ps := fixedKeys(n, width, int64(width*1000+n), shape)
				want := stableRef(ps, strLess)
				if !RadixSortPairs(ps, kv.StringFixedKey(width)) {
					t.Fatalf("%s: RadixSortPairs declined", label)
				}
				samePairs(t, ps, want, label)
			}
		}
	}
}

func TestRadixSortIntKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := make([]kv.Pair[int, int], 2000)
	for i := range ps {
		ps[i] = kv.Pair[int, int]{Key: int(rng.Int63()) - (1 << 62), Val: i}
	}
	intLess := kv.Less[int](func(a, b int) bool { return a < b })
	want := stableRef(ps, intLess)
	if !RadixSortPairs(ps, kv.IntFixedKey()) {
		t.Fatal("RadixSortPairs declined int keys")
	}
	samePairs(t, ps, want, "int keys")

	us := make([]kv.Pair[uint64, int], 1000)
	for i := range us {
		us[i] = kv.Pair[uint64, int]{Key: rng.Uint64(), Val: i}
	}
	uwant := stableRef(us, u64Less)
	if !RadixSortPairs(us, kv.Uint64FixedKey()) {
		t.Fatal("RadixSortPairs declined uint64 keys")
	}
	samePairs(t, us, uwant, "uint64 keys")
}

func TestRadixSortDeclines(t *testing.T) {
	// Below the cutover the comparison sort wins; the radix must decline
	// without touching the slice.
	small := fixedKeys(radixMinLen-1, 8, 3, "random")
	cp := append([]kv.Pair[string, int](nil), small...)
	if RadixSortPairs(small, kv.StringFixedKey(8)) {
		t.Error("RadixSortPairs accepted a below-cutover slice")
	}
	samePairs(t, small, cp, "below cutover")

	// A key the codec cannot encode (wrong width) must abort the whole
	// sort pre-permutation, leaving the input byte-identical.
	bad := fixedKeys(200, 8, 4, "random")
	bad[137].Key = "short"
	cp = append([]kv.Pair[string, int](nil), bad...)
	if RadixSortPairs(bad, kv.StringFixedKey(8)) {
		t.Error("RadixSortPairs accepted an unencodable key")
	}
	samePairs(t, bad, cp, "unencodable key")
}

// sortedColumns builds k sorted fixed-width runs (possibly with empty
// and heavily overlapping columns) plus the merge reference: a stable
// sort of the concatenation, i.e. equal keys ordered by (column, index)
// — the tie rule every tree in this package implements.
func sortedColumns(k, per, width int, seed int64, shape string) ([][]kv.Pair[string, int], []kv.Pair[string, int]) {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]kv.Pair[string, int], k)
	var flat []kv.Pair[string, int]
	val := 0
	for c := range cols {
		n := per
		if shape == "ragged" {
			n = rng.Intn(per + 1) // includes empty columns
		}
		col := fixedKeys(n, width, seed+int64(c)*77, shape)
		sort.SliceStable(col, func(i, j int) bool { return col[i].Key < col[j].Key })
		for i := range col {
			col[i].Val = val
			val++
		}
		cols[c] = col
		flat = append(flat, col...)
	}
	return cols, stableRef(flat, strLess)
}

func TestColumnarMergeMatchesReference(t *testing.T) {
	for _, width := range []int{3, 8, 10, 16} {
		for _, k := range []int{2, 3, 5, 8, 13} {
			for _, shape := range []string{"random", "dup", "ragged"} {
				label := fmt.Sprintf("w=%d k=%d %s", width, k, shape)
				cols, want := sortedColumns(k, 400, width, int64(width*100+k), shape)
				got, ok := columnarMerge(cols, kv.StringFixedKey(width), nil)
				if !ok {
					t.Fatalf("%s: columnarMerge declined", label)
				}
				samePairs(t, got, want, "columnar "+label)
				// The generic padded tree must produce the identical
				// sequence — same tie rule, different representation.
				tree := loserTreeMerge(cols, strLess, nil)
				samePairs(t, tree, want, "losertree "+label)
			}
		}
	}
}

func TestColumnarMergeSentinelKeys(t *testing.T) {
	// All-0xFF keys collide with the exhaustion sentinel's prefix; the
	// tie ranks must still separate live columns from dead ones.
	hi := strings.Repeat("\xff", 10)
	lo := strings.Repeat("\x00", 10)
	cols := [][]kv.Pair[string, int]{
		{{Key: lo, Val: 0}, {Key: hi, Val: 1}, {Key: hi, Val: 2}},
		{{Key: hi, Val: 3}},
		{}, // empty column next to a padding leaf
		{{Key: lo, Val: 4}, {Key: hi, Val: 5}},
	}
	var flat []kv.Pair[string, int]
	for _, c := range cols {
		flat = append(flat, c...)
	}
	want := stableRef(flat, strLess)
	got, ok := columnarMerge(cols, kv.StringFixedKey(10), nil)
	if !ok {
		t.Fatal("columnarMerge declined")
	}
	samePairs(t, got, want, "sentinel keys")
}

func TestColumnarMergeEncodeFailureFallsBack(t *testing.T) {
	cols, _ := sortedColumns(3, 50, 8, 21, "random")
	cols[1][17].Key = "bad" // wrong width
	dst := make([]kv.Pair[string, int], 0, 8)
	got, ok := columnarMerge(cols, kv.StringFixedKey(8), dst)
	if ok {
		t.Fatal("columnarMerge accepted an unencodable key")
	}
	if len(got) != 0 {
		t.Fatalf("failed merge wrote %d pairs into dst", len(got))
	}
}

// TestMergeSourcesEqualKeyOrder pins the streaming tree's tie rule:
// when the same key is live in several sources, values must reach the
// reducer in source order — the contract the re-reduce of spilled
// partial runs depends on.
func TestMergeSourcesEqualKeyOrder(t *testing.T) {
	mk := func(ps ...kv.Pair[uint64, string]) Source[uint64, string] {
		return NewSliceSource(ps)
	}
	srcs := []Source[uint64, string]{
		mk(kv.Pair[uint64, string]{Key: 1, Val: "a0"}, kv.Pair[uint64, string]{Key: 2, Val: "a1"}),
		mk(kv.Pair[uint64, string]{Key: 1, Val: "b0"}, kv.Pair[uint64, string]{Key: 1, Val: "b1"}),
		mk(kv.Pair[uint64, string]{Key: 1, Val: "c0"}, kv.Pair[uint64, string]{Key: 3, Val: "c1"}),
	}
	reduce := func(_ uint64, vs []string) string { return strings.Join(vs, ",") }
	got, err := MergeSources(srcs, u64Less, reduce, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []kv.Pair[uint64, string]{
		{Key: 1, Val: "a0,b0,b1,c0"},
		{Key: 2, Val: "a1"},
		{Key: 3, Val: "c1"},
	}
	samePairs(t, got, want, "equal-key source order")
}

// TestPairwiseMergeAllocs pins the ping-pong buffer scheme: the whole
// multi-round merge must run in O(1) slice allocations (two flat
// buffers plus per-round bookkeeping), not a fresh destination per
// mergeTwo per round.
func TestPairwiseMergeAllocs(t *testing.T) {
	rs, _ := randomRuns(t, 32768, 16, 9)
	ex := exec.NewLocal(1)
	defer ex.Close()
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := PairwiseMerge(rs, u64Less, ex); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~63, dominated by executor bookkeeping for the 15 merge
	// tasks; the buffers themselves are 2 allocations. The old
	// per-mergeTwo-destination scheme added an O(total)-byte slice per
	// task on top, so the limit also guards bytes via count.
	if allocs > 120 {
		t.Errorf("PairwiseMerge allocates %.0f objs/op (limit 120)", allocs)
	}
}

// FuzzRadixVsReference drives random widths, shapes, and duplicate
// densities through the radix sort against the stable reference.
func FuzzRadixVsReference(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(0))
	f.Add(int64(99), uint8(8), uint8(1))
	f.Add(int64(7), uint8(1), uint8(2))
	f.Add(int64(123), uint8(24), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, widthRaw, shapeRaw uint8) {
		width := int(widthRaw%24) + 1
		shape := []string{"random", "dup", "sorted", "reverse"}[int(shapeRaw)%4]
		ps := fixedKeys(radixMinLen+int(uint(seed)%500), width, seed, shape)
		want := stableRef(ps, strLess)
		if !RadixSortPairs(ps, kv.StringFixedKey(width)) {
			t.Fatalf("RadixSortPairs declined w=%d n=%d", width, len(ps))
		}
		samePairs(t, ps, want, fmt.Sprintf("fuzz w=%d %s", width, shape))
	})
}

// FuzzMergeTreesVsReference checks all three merge trees — columnar,
// generic padded, and streaming sources — against the stable reference
// on the same fuzzed columns.
func FuzzMergeTreesVsReference(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(12), uint8(0))
	f.Add(int64(5), uint8(9), uint8(8), uint8(1))
	f.Add(int64(11), uint8(2), uint8(16), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, kRaw, widthRaw, shapeRaw uint8) {
		k := int(kRaw%16) + 2
		width := int(widthRaw%16) + 1
		shape := []string{"random", "dup", "ragged"}[int(shapeRaw)%3]
		cols, want := sortedColumns(k, 120, width, seed, shape)
		label := fmt.Sprintf("fuzz k=%d w=%d %s", k, width, shape)

		colCopy := make([][]kv.Pair[string, int], len(cols))
		copy(colCopy, cols)
		got, ok := columnarMerge(colCopy, kv.StringFixedKey(width), nil)
		if !ok {
			t.Fatalf("%s: columnarMerge declined", label)
		}
		samePairs(t, got, want, "columnar "+label)
		samePairs(t, loserTreeMerge(cols, strLess, nil), want, "losertree "+label)

		srcs := make([]Source[string, int], len(cols))
		for i, c := range cols {
			srcs[i] = NewSliceSource(c)
		}
		// Identity "reduce" keeps singletons; equal keys collapse in
		// source order, matching the stable reference's first element.
		streamed, err := MergeSources(srcs, strLess, func(_ string, vs []int) int { return vs[0] }, nil)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for _, w := range want {
			if i > 0 && streamed[i-1].Key == w.Key {
				continue // collapsed duplicate; first source's value won
			}
			if i >= len(streamed) || streamed[i] != w {
				t.Fatalf("%s: streamed[%d] mismatch", label, i)
			}
			i++
		}
		if i != len(streamed) {
			t.Fatalf("%s: streamed %d groups, want %d", label, len(streamed), i)
		}
	})
}
