// Package sortalgo implements the two merge-phase algorithms the paper
// contrasts, plus the parallel run-sorting step both share.
//
// The baseline is Phoenix's iterative pairwise merge sort: each round
// merges pairs of sorted runs, so round r uses half the workers of round
// r-1 and rescans every key — the "step" utilization decay of Fig. 1 and
// the O(N log R) key comparisons that dominate sort's merge phase.
//
// SupMR's replacement is OpenMP-style p-way merging (Salzberg): N ordered
// runs are merged into a single ordered array in ONE round by p
// processors. Sampled splitters cut every run at consistent keys, giving
// each processor an independent output range to fill with a loser-tree
// k-way merge — one scan of the data, full parallelism throughout.
//
// All algorithms run on the job's persistent executor (internal/exec)
// rather than spawning their own workers: parallelism comes from the
// pool's compute workers, utilization instrumentation from the pool's
// recorder, and cancellation/panic isolation from the pool's task
// dispatch.
package sortalgo

import (
	"slices"
	"sync/atomic"

	"supmr/internal/exec"
	"supmr/internal/kv"
	"supmr/internal/metrics"
)

// SortRuns sorts each run in place, in parallel on the executor. This is
// the high-utilization prefix both merge algorithms share ("all cores
// sorting small lists in parallel").
func SortRuns[K any, V any](runs [][]kv.Pair[K, V], less kv.Less[K], ex exec.Executor) error {
	_, err := SortRunsWith(runs, less, nil, ex)
	return err
}

// SortRunsWith is SortRuns with an optional fixed-key codec: runs whose
// keys encode at the codec's width are radix-sorted (see radix.go), the
// rest fall back to the comparison sort. Returns how many runs took the
// radix path. codec == nil is plain SortRuns.
func SortRunsWith[K any, V any](runs [][]kv.Pair[K, V], less kv.Less[K], codec *kv.FixedKeyCodec[K], ex exec.Executor) (int, error) {
	var radixRuns atomic.Int64
	_, err := ex.ForEach("sort", metrics.StateUser, len(runs), func(i int) error {
		if codec != nil && RadixSortPairs(runs[i], *codec) {
			radixRuns.Add(1)
			return nil
		}
		kv.SortPairs(runs[i], less)
		return nil
	})
	return int(radixRuns.Load()), err
}

// mergeTwo merges sorted a and b into dst (which must have capacity
// len(a)+len(b)) and returns dst.
func mergeTwo[K any, V any](a, b []kv.Pair[K, V], less kv.Less[K], dst []kv.Pair[K, V]) []kv.Pair[K, V] {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j].Key, a[i].Key) {
			dst = append(dst, b[j])
			j++
		} else {
			dst = append(dst, a[i])
			i++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// PairwiseMerge is the baseline Phoenix merge: repeatedly merge runs in
// pairs until one remains. Each round processes every key again, and the
// number of concurrently mergeable pairs (and hence busy workers) halves
// every round. Runs must already be sorted.
//
// All rounds write into two flat buffers allocated up front and
// ping-ponged: round r merges out of one buffer (or the input runs) into
// the other, so the per-round, per-pair `make` churn of the original
// Phoenix loop is gone. An odd leftover run is copied into the round's
// output buffer alongside the merges, keeping each round's live data
// confined to a single buffer and the rounds free of read/write
// aliasing.
func PairwiseMerge[K any, V any](runs [][]kv.Pair[K, V], less kv.Less[K], ex exec.Executor) ([]kv.Pair[K, V], error) {
	if len(runs) == 0 {
		return nil, nil
	}
	if len(runs) == 1 {
		return runs[0], nil
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	bufA := make([]kv.Pair[K, V], total)
	bufB := make([]kv.Pair[K, V], total)
	out, next := bufA, bufB
	cur := runs
	for len(cur) > 1 {
		pairs := len(cur) / 2
		odd := len(cur) % 2
		nextRuns := make([][]kv.Pair[K, V], pairs+odd)
		offs := make([]int, pairs+odd+1)
		for p := 0; p < pairs; p++ {
			offs[p+1] = offs[p] + len(cur[2*p]) + len(cur[2*p+1])
		}
		if odd == 1 {
			offs[pairs+1] = offs[pairs] + len(cur[len(cur)-1])
		}
		round := cur
		_, err := ex.ForEach("merge", metrics.StateUser, pairs+odd, func(p int) error {
			dst := out[offs[p]:offs[p]:offs[p+1]]
			if p == pairs {
				nextRuns[p] = append(dst, round[len(round)-1]...)
				return nil
			}
			nextRuns[p] = mergeTwo(round[2*p], round[2*p+1], less, dst)
			return nil
		})
		if err != nil {
			return nil, err
		}
		cur = nextRuns
		out, next = next, out
	}
	return cur[0], nil
}

// Rounds returns the number of pairwise merge rounds needed for n runs —
// the quantity SupMR's p-way merge avoids (Conclusion 3: the benefit
// depends on the number of merge rounds avoided).
func Rounds(n int) int {
	r := 0
	for n > 1 {
		n = (n + 1) / 2
		r++
	}
	return r
}

// samplesPerRun controls splitter quality for the p-way merge.
const samplesPerRun = 32

// PWayMerge merges sorted runs into one sorted array in a single round
// using the executor's compute workers. Sampled splitters partition the
// key space into one consistent range per worker; every worker
// loser-tree-merges its column of run slices into a disjoint region of
// the output.
func PWayMerge[K any, V any](runs [][]kv.Pair[K, V], less kv.Less[K], ex exec.Executor) ([]kv.Pair[K, V], error) {
	return PWayMergeWith(runs, less, nil, ex)
}

// PWayMergeWith is PWayMerge with an optional fixed-key codec: when
// present, each worker merges its column set through the columnar loser
// tree (columnar.go) — encoded key prefixes in recycled arenas, masked
// branch-free replay — falling back to the generic tree if any key fails
// to encode. Output is byte-identical either way.
func PWayMergeWith[K any, V any](runs [][]kv.Pair[K, V], less kv.Less[K], codec *kv.FixedKeyCodec[K], ex exec.Executor) ([]kv.Pair[K, V], error) {
	// Drop empty runs.
	var rs [][]kv.Pair[K, V]
	total := 0
	for _, r := range runs {
		if len(r) > 0 {
			rs = append(rs, r)
			total += len(r)
		}
	}
	if total == 0 {
		return nil, nil
	}
	if len(rs) == 1 {
		return rs[0], nil
	}
	p := ex.Workers()
	if p < 1 {
		p = 1
	}
	if p > total {
		p = total
	}

	// Sample keys across runs and choose p-1 splitters. The sample count
	// is known exactly from the run lengths, so the slice is allocated
	// once; slices.SortFunc sorts without the interface boxing and
	// reflection-based swaps of sort.Slice.
	nSamples := 0
	for _, r := range rs {
		step := len(r) / samplesPerRun
		if step == 0 {
			step = 1
		}
		nSamples += (len(r) + step - 1) / step
	}
	samples := make([]K, 0, nSamples)
	for _, r := range rs {
		step := len(r) / samplesPerRun
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(r); i += step {
			samples = append(samples, r[i].Key)
		}
	}
	slices.SortFunc(samples, func(a, b K) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		}
		return 0
	})
	splitters := make([]K, 0, p-1)
	for i := 1; i < p; i++ {
		splitters = append(splitters, samples[i*len(samples)/p])
	}

	// cut[r][s] = index in run r of the first key >= splitters[s]
	// (lower bound, applied uniformly, so ranges are consistent).
	cuts := make([][]int, len(rs))
	for ri, r := range rs {
		c := make([]int, len(splitters)+2)
		c[0] = 0
		for si, sp := range splitters {
			c[si+1] = lowerBound(r, sp, less)
		}
		c[len(splitters)+1] = len(r)
		// Lower bounds are monotone because splitters are sorted; enforce
		// monotonicity defensively for duplicate-heavy samples.
		for i := 1; i < len(c); i++ {
			if c[i] < c[i-1] {
				c[i] = c[i-1]
			}
		}
		cuts[ri] = c
	}

	// Output offsets per range.
	rangeLen := make([]int, p)
	for s := 0; s < p; s++ {
		for ri := range rs {
			rangeLen[s] += cuts[ri][s+1] - cuts[ri][s]
		}
	}
	offsets := make([]int, p+1)
	for s := 0; s < p; s++ {
		offsets[s+1] = offsets[s] + rangeLen[s]
	}

	out := make([]kv.Pair[K, V], total)
	_, err := ex.ForEach("merge", metrics.StateUser, p, func(s int) error {
		if rangeLen[s] == 0 {
			return nil
		}
		var cols [][]kv.Pair[K, V]
		for ri, r := range rs {
			if seg := r[cuts[ri][s]:cuts[ri][s+1]]; len(seg) > 0 {
				cols = append(cols, seg)
			}
		}
		dst := out[offsets[s]:offsets[s]:offsets[s+1]]
		if codec != nil && len(cols) >= 2 {
			if _, ok := columnarMerge(cols, *codec, dst); ok {
				return nil
			}
		}
		loserTreeMerge(cols, less, dst)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// lowerBound returns the index of the first element of r whose key is not
// less than key.
func lowerBound[K any, V any](r []kv.Pair[K, V], key K, less kv.Less[K]) int {
	lo, hi := 0, len(r)
	for lo < hi {
		mid := (lo + hi) / 2
		if less(r[mid].Key, key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// loserTreeMerge merges the sorted lists in cols into dst (an empty slice
// with sufficient capacity) using a tournament tree of losers, the
// classic structure for merging N ordered runs with ~log2(N) comparisons
// per output element (Salzberg 1989).
//
// The tree is padded to a power of two with sentinel leaves, so build
// and replay are uniform bottom-up loops with no -1 sentinels or
// first-visit branches: replay walks exactly log2(m) nodes via index
// halving. Equal keys resolve by column index (matching mergeTwo's
// preference for the left run and the columnar tree's tie rule), making
// every merge path emit duplicates in the same deterministic order.
func loserTreeMerge[K any, V any](cols [][]kv.Pair[K, V], less kv.Less[K], dst []kv.Pair[K, V]) []kv.Pair[K, V] {
	k := len(cols)
	switch k {
	case 0:
		return dst
	case 1:
		return append(dst, cols[0]...)
	case 2:
		return mergeTwo(cols[0], cols[1], less, dst)
	}
	m := 2
	for m < k {
		m <<= 1
	}
	// heads[c] is the next unconsumed index of cols[c]; columns past k
	// and exhausted columns act as +infinity sentinels.
	state := make([]int, 2*m)
	heads, nodes := state[:m], state[m:2*m]
	exhausted := func(c int) bool { return c >= k || heads[c] >= len(cols[c]) }
	// beats reports whether column a's head strictly precedes column
	// b's: by key, then by column index; sentinels always lose.
	beats := func(a, b int) bool {
		ea, eb := exhausted(a), exhausted(b)
		if ea || eb {
			return !ea || (eb && a < b)
		}
		ka, kb := cols[a][heads[a]].Key, cols[b][heads[b]].Key
		if less(ka, kb) {
			return true
		}
		if less(kb, ka) {
			return false
		}
		return a < b
	}

	// Build bottom-up: winners bubble toward the root, each internal
	// node keeps the loser of its match.
	winners := make([]int, 2*m)
	for i := 0; i < m; i++ {
		winners[m+i] = i
	}
	for node := m - 1; node >= 1; node-- {
		a, b := winners[2*node], winners[2*node+1]
		if beats(b, a) {
			a, b = b, a
		}
		winners[node] = a
		nodes[node] = b
	}
	w := winners[1]

	for !exhausted(w) {
		dst = append(dst, cols[w][heads[w]])
		heads[w]++
		// Replay from w's leaf to the root by index halving.
		for node := (m + w) >> 1; node > 0; node >>= 1 {
			if l := nodes[node]; beats(l, w) {
				nodes[node] = w
				w = l
			}
		}
	}
	return dst
}

// MergeAlgo selects the merge-phase implementation.
type MergeAlgo int

// Merge algorithm choices.
const (
	// MergePairwise is the original Phoenix iterative merge sort.
	MergePairwise MergeAlgo = iota
	// MergePWay is SupMR's single-round p-way merge.
	MergePWay
)

// String names the algorithm.
func (m MergeAlgo) String() string {
	switch m {
	case MergePairwise:
		return "pairwise"
	case MergePWay:
		return "p-way"
	default:
		return "unknown"
	}
}

// Merge dispatches to the selected algorithm. Runs must be sorted.
func Merge[K any, V any](algo MergeAlgo, runs [][]kv.Pair[K, V], less kv.Less[K], ex exec.Executor) ([]kv.Pair[K, V], error) {
	return MergeWith(algo, runs, less, nil, ex)
}

// MergeWith is Merge with an optional fixed-key codec, which routes the
// p-way merge through the columnar loser tree. The pairwise baseline
// stays comparison-based by design — it exists to measure the merge the
// paper replaces.
func MergeWith[K any, V any](algo MergeAlgo, runs [][]kv.Pair[K, V], less kv.Less[K], codec *kv.FixedKeyCodec[K], ex exec.Executor) ([]kv.Pair[K, V], error) {
	switch algo {
	case MergePWay:
		return PWayMergeWith(runs, less, codec, ex)
	default:
		return PairwiseMerge(runs, less, ex)
	}
}
