package sortalgo

// Columnar fixed-key merge: the cache-conscious counterpart of the radix
// run sort. Instead of striding over fat kv.Pair structs (string header +
// value = 24+ bytes apiece) for every comparison, the merge encodes each
// input column's keys once into recycled arenas:
//
//   - pre[i]:  the first 8 encoded key bytes as a big-endian uint64, so
//     the common-case comparison is one integer compare over a dense
//     array;
//   - tail[i]: the remaining Width-8 bytes (terasort: 2), consulted only
//     when prefixes collide.
//
// A sentinel-padded power-of-two loser tree merges the columns. The
// replay loop folds the comparison result into masked index arithmetic —
// no data-dependent branch on the winner/loser select — and each head
// advance touches the prefix a few cache lines ahead of the consumption
// point (run-head prefetch). Exhausted and padding columns carry a
// MaxUint64 prefix and a tie index pushed past every live column, so the
// loop needs no liveness branches either.
//
// Equal keys resolve by column index, matching mergeTwo's preference for
// the left run and the comparison loser tree's tie rule, so the columnar
// path is byte-identical to the generic one.

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"supmr/internal/kv"
)

// colPrefetchDist is how many keys ahead of the consuming head each
// advance touches — two cache lines of upcoming prefixes stay warm.
const colPrefetchDist = 16

var colPrePool sync.Pool // *[]uint64

// prefetchSink absorbs the prefetch touches so the loads cannot be
// dead-code eliminated; one atomic add per merge call.
var prefetchSink atomic.Uint64

func getScratchU64(n int) []uint64 {
	if v := colPrePool.Get(); v != nil {
		if b := *(v.(*[]uint64)); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]uint64, n)
}

func putScratchU64(b []uint64) {
	if cap(b) > 0 {
		colPrePool.Put(&b)
	}
}

// bePrefix returns the first min(w, 8) bytes of buf as a big-endian
// uint64, left-aligned (zero-padded) so fixed-width lexicographic order
// equals unsigned integer order.
func bePrefix(buf []byte, w int) uint64 {
	if w >= 8 {
		return binary.BigEndian.Uint64(buf)
	}
	var v uint64
	for i := 0; i < w; i++ {
		v = v<<8 | uint64(buf[i])
	}
	return v << (8 * uint(8-w))
}

// b2i returns 1 for true, 0 for false; the compiler lowers it to a
// flag-set instruction, not a branch.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// columnarMerge merges the sorted columns into dst via the columnar
// loser tree. Returns (dst, false) — with dst unwritten — when any key
// fails to encode; the caller falls back to the generic tree.
func columnarMerge[K any, V any](cols [][]kv.Pair[K, V], codec kv.FixedKeyCodec[K], dst []kv.Pair[K, V]) ([]kv.Pair[K, V], bool) {
	k := len(cols)
	if k == 0 {
		return dst, true
	}
	if k == 1 {
		return append(dst, cols[0]...), true
	}
	w := codec.Width
	tw := w - 8
	if tw < 0 {
		tw = 0
	}
	total := 0
	for _, c := range cols {
		total += len(c)
	}

	// Encode all keys into one prefix arena (plus a tail arena for
	// widths beyond 8 bytes); both recycle across merge calls.
	pre := getScratchU64(total)
	defer putScratchU64(pre)
	var tails []byte
	if tw > 0 {
		tails = getScratchBytes(total * tw)
		defer putScratchBytes(tails)
	}
	buf := make([]byte, w)
	ints := make([]int, 2*k)
	bases, ends := ints[:k], ints[k:2*k]
	pos := 0
	for c, col := range cols {
		bases[c] = pos
		for _, p := range col {
			if !codec.Put(buf, p.Key) {
				return dst, false
			}
			pre[pos] = bePrefix(buf, w)
			if tw > 0 {
				copy(tails[pos*tw:(pos+1)*tw], buf[8:w])
			}
			pos++
		}
		ends[c] = pos
	}

	// Sentinel-padded power-of-two tree state. cur[c] is column c's head
	// prefix (MaxUint64 once exhausted); tie[c] is the equal-key /
	// exhaustion rank: live columns rank by index, exhausted and padding
	// columns by index+m, so every live head outranks every dead one.
	m := 2
	for m < k {
		m <<= 1
	}
	state := make([]int, 3*m)
	heads, tie, nodes := state[:m], state[m:2*m], state[2*m:3*m]
	cur := getScratchU64(m)
	defer putScratchU64(cur)
	for c := 0; c < m; c++ {
		if c < k && bases[c] < ends[c] {
			heads[c] = bases[c]
			cur[c] = pre[bases[c]]
			tie[c] = c
		} else {
			cur[c] = math.MaxUint64
			tie[c] = c + m
		}
	}

	// tieLess breaks prefix ties: tail bytes first (when both columns
	// are live and the key extends past 8 bytes), then rank.
	tieLess := func(a, b int) bool {
		if tw > 0 && tie[a] < m && tie[b] < m {
			ta := tails[heads[a]*tw : (heads[a]+1)*tw]
			tb := tails[heads[b]*tw : (heads[b]+1)*tw]
			if c := bytes.Compare(ta, tb); c != 0 {
				return c < 0
			}
		}
		return tie[a] < tie[b]
	}

	// Build: play all leaves bottom-up, keeping losers in the nodes.
	winners := make([]int, 2*m)
	for i := 0; i < m; i++ {
		winners[m+i] = i
	}
	for node := m - 1; node >= 1; node-- {
		a, b := winners[2*node], winners[2*node+1]
		win, lose := a, b
		if cur[b] < cur[a] || (cur[b] == cur[a] && tieLess(b, a)) {
			win, lose = b, a
		}
		winners[node] = win
		nodes[node] = lose
	}
	winner := winners[1]

	var sink uint64
	for tie[winner] < m {
		wc := winner
		h := heads[wc]
		dst = append(dst, cols[wc][h-bases[wc]])
		h++
		if h == ends[wc] {
			cur[wc] = math.MaxUint64
			tie[wc] += m
		} else {
			heads[wc] = h
			cur[wc] = pre[h]
			if pf := h + colPrefetchDist; pf < ends[wc] {
				sink += pre[pf] // run-head prefetch
			}
		}
		// Replay from the leaf: the select is masked index arithmetic,
		// branch-free on the (overwhelmingly common) distinct-prefix
		// path; equal prefixes fall to the rare tie comparison.
		for node := (m + wc) >> 1; node > 0; node >>= 1 {
			l := nodes[node]
			cl, cw := cur[l], cur[wc]
			if cl != cw {
				mask := -b2i(cl < cw)
				nodes[node] = (wc & mask) | (l &^ mask)
				wc = (l & mask) | (wc &^ mask)
				continue
			}
			if tieLess(l, wc) {
				nodes[node] = wc
				wc = l
			}
		}
		winner = wc
	}
	prefetchSink.Add(sink)
	return dst, true
}
