package sortalgo

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"supmr/internal/exec"
	"supmr/internal/kv"
)

func intLess(a, b int) bool { return a < b }

func sumReduce(_ int, vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}

func TestMergeSourcesEmpty(t *testing.T) {
	out, err := MergeSources[int, int64](nil, intLess, sumReduce, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("MergeSources(nil) = %v, %v", out, err)
	}
}

func TestMergeSourcesSingleRun(t *testing.T) {
	run := []kv.Pair[int, int64]{{Key: 1, Val: 10}, {Key: 3, Val: 30}, {Key: 9, Val: 90}}
	out, err := MergeSources([]Source[int, int64]{NewSliceSource(run)}, intLess, sumReduce, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0].Key != 1 || out[2].Val != 90 {
		t.Fatalf("single-run merge = %v", out)
	}
}

func TestMergeSourcesGroupsAcrossRuns(t *testing.T) {
	// The same key appears in multiple runs (partial combiner state from
	// different spills): values must be grouped and reduced once.
	a := []kv.Pair[int, int64]{{Key: 1, Val: 1}, {Key: 2, Val: 2}, {Key: 5, Val: 5}}
	b := []kv.Pair[int, int64]{{Key: 2, Val: 20}, {Key: 5, Val: 50}}
	c := []kv.Pair[int, int64]{{Key: 5, Val: 500}, {Key: 7, Val: 7}}
	out, err := MergeSources([]Source[int, int64]{
		NewSliceSource(a), NewSliceSource(b), NewSliceSource(c),
	}, intLess, sumReduce, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []kv.Pair[int, int64]{{Key: 1, Val: 1}, {Key: 2, Val: 22}, {Key: 5, Val: 555}, {Key: 7, Val: 7}}
	if fmt.Sprint(out) != fmt.Sprint(want) {
		t.Fatalf("merge = %v, want %v", out, want)
	}
}

func TestMergeSourcesSingletonGroupsNotReduced(t *testing.T) {
	// reduce panics when invoked: unique keys must pass through without
	// re-reduction, matching the in-memory merge path.
	boom := func(int, []int64) int64 { panic("reduce called for singleton group") }
	a := []kv.Pair[int, int64]{{Key: 1, Val: 1}, {Key: 3, Val: 3}}
	b := []kv.Pair[int, int64]{{Key: 2, Val: 2}, {Key: 4, Val: 4}}
	out, err := MergeSources([]Source[int, int64]{NewSliceSource(a), NewSliceSource(b)}, intLess, boom, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("merged %d pairs, want 4", len(out))
	}
}

func TestMergeSourcesMatchesPWayOnUniqueKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(5000)
	var runs [][]kv.Pair[int, int64]
	for start := 0; start < len(perm); start += 500 {
		run := make([]kv.Pair[int, int64], 0, 500)
		for _, k := range perm[start : start+500] {
			run = append(run, kv.Pair[int, int64]{Key: k, Val: int64(k) * 3})
		}
		sort.Slice(run, func(i, j int) bool { return run[i].Key < run[j].Key })
		runs = append(runs, run)
	}

	srcs := make([]Source[int, int64], len(runs))
	for i, r := range runs {
		srcs[i] = NewSliceSource(r)
	}
	streamed, err := MergeSources(srcs, intLess, sumReduce, nil)
	if err != nil {
		t.Fatal(err)
	}

	ex := exec.NewLocal(4)
	defer ex.Close()
	inMem, err := PWayMerge(runs, intLess, ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(inMem) {
		t.Fatalf("streamed %d pairs, in-memory %d", len(streamed), len(inMem))
	}
	for i := range streamed {
		if streamed[i] != inMem[i] {
			t.Fatalf("pair %d: streamed %v, in-memory %v", i, streamed[i], inMem[i])
		}
	}
}

type failingSource struct{ after int }

func (f *failingSource) Next() (kv.Pair[int, int64], bool, error) {
	if f.after <= 0 {
		return kv.Pair[int, int64]{}, false, errors.New("run file corrupted")
	}
	f.after--
	return kv.Pair[int, int64]{Key: 100 - f.after, Val: 1}, true, nil
}

func TestMergeSourcesPropagatesError(t *testing.T) {
	srcs := []Source[int, int64]{
		NewSliceSource([]kv.Pair[int, int64]{{Key: 1, Val: 1}}),
		&failingSource{after: 2},
	}
	if _, err := MergeSources(srcs, intLess, sumReduce, nil); err == nil {
		t.Fatal("error from a source was swallowed")
	}
}
