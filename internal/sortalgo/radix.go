package sortalgo

// LSD radix partitioning for fixed-width keys: the vectorized run-sort
// fast path. Apps with a kv.FixedKeyCodec (terasort's 10-byte records,
// integer bucket ids) have their runs sorted by counting passes over
// digit bytes instead of comparison sorting — O(w·n) sequential array
// traffic with no branches on key values, versus O(n log n) unpredictable
// comparisons. Two details matter for the hot path:
//
//   - Keys are encoded once into a recycled row-major byte arena, so each
//     digit pass reads one byte per element from a dense array and the
//     final permutation is applied to the fat kv.Pair structs exactly
//     once, by cycle-walking in place.
//
//   - Digit positions that are constant across the whole run are skipped.
//     Range-partitioned runs (KeyRange containers, p-way splitter ranges)
//     share long key prefixes, so most passes vanish.
//
// The sort is stable (counting passes preserve ties in input order).
// kv.SortPairs is not, so byte-identical -radixsort=off ablation output
// relies on keys being unique within each run — true for post-reduce
// runs, where containers emit one pair per key per partition.

import (
	"sync"

	"supmr/internal/kv"
)

// radixMinLen is the run length below which the comparison sort's
// constant factors beat the encode + count passes.
const radixMinLen = 48

// Recycled scratch arenas: encoded key rows and permutation index
// buffers survive across runs and rounds (PR 3 freelist discipline).
var (
	radixBytePool sync.Pool // *[]byte
	radixIdxPool  sync.Pool // *[]uint32
)

func getScratchBytes(n int) []byte {
	if v := radixBytePool.Get(); v != nil {
		if b := *(v.(*[]byte)); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putScratchBytes(b []byte) {
	if cap(b) > 0 {
		radixBytePool.Put(&b)
	}
}

func getScratchIdx(n int) []uint32 {
	if v := radixIdxPool.Get(); v != nil {
		if b := *(v.(*[]uint32)); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]uint32, n)
}

func putScratchIdx(b []uint32) {
	if cap(b) > 0 {
		radixIdxPool.Put(&b)
	}
}

// RadixSortPairs sorts ps in place by the codec's fixed-width key
// encoding, least-significant digit first. It returns false — leaving ps
// untouched — when the run is too small to benefit or any key fails to
// encode; the caller falls back to kv.SortPairs.
func RadixSortPairs[K any, V any](ps []kv.Pair[K, V], codec kv.FixedKeyCodec[K]) bool {
	n := len(ps)
	w := codec.Width
	if n < radixMinLen || w <= 0 || n >= 1<<31 {
		return false
	}

	keys := getScratchBytes(n * w)
	defer putScratchBytes(keys)

	// Encode every key into its row, recording which digit positions
	// actually vary relative to the first key.
	diff := make([]byte, w)
	first := keys[:w]
	if !codec.Put(first, ps[0].Key) {
		return false
	}
	for i := 1; i < n; i++ {
		row := keys[i*w : i*w+w]
		if !codec.Put(row, ps[i].Key) {
			return false
		}
		for d := 0; d < w; d++ {
			diff[d] |= row[d] ^ first[d]
		}
	}

	idx := getScratchIdx(2 * n)
	defer putScratchIdx(idx)
	a, b := idx[:n], idx[n:2*n]
	for i := range a {
		a[i] = uint32(i)
	}

	// LSD counting passes over the varying digits only. Each pass is
	// stable, so the final order is (key bytes, original index).
	var count [256]uint32
	for d := w - 1; d >= 0; d-- {
		if diff[d] == 0 {
			continue
		}
		count = [256]uint32{}
		for _, id := range a {
			count[keys[int(id)*w+d]]++
		}
		pos := uint32(0)
		for i := 0; i < 256; i++ {
			c := count[i]
			count[i] = pos
			pos += c
		}
		for _, id := range a {
			digit := keys[int(id)*w+d]
			b[count[digit]] = id
			count[digit]++
		}
		a, b = b, a
	}

	// Apply the permutation (sorted[j] = ps[a[j]]) in place by walking
	// its cycles; the high bit marks visited entries, so no pair scratch
	// buffer is needed.
	const visited = 1 << 31
	for i := 0; i < n; i++ {
		if a[i]&visited != 0 || int(a[i]) == i {
			continue
		}
		tmp := ps[i]
		cur := i
		for {
			nxt := int(a[cur])
			a[cur] |= visited
			if nxt == i {
				ps[cur] = tmp
				break
			}
			ps[cur] = ps[nxt]
			cur = nxt
		}
	}
	return true
}
