package sortalgo

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"supmr/internal/exec"
	"supmr/internal/kv"
)

var u64Less = kv.Less[uint64](func(a, b uint64) bool { return a < b })

// randomRuns builds `runs` sorted runs totalling `total` pairs, plus the
// reference sorted key slice.
func randomRuns(t testing.TB, total, runs int, seed int64) ([][]kv.Pair[uint64, int], []uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	all := make([]uint64, 0, total)
	out := make([][]kv.Pair[uint64, int], runs)
	per := total / runs
	idx := 0
	for r := 0; r < runs; r++ {
		n := per
		if r == runs-1 {
			n = total - per*(runs-1)
		}
		run := make([]kv.Pair[uint64, int], n)
		for i := range run {
			k := uint64(rng.Intn(total * 2)) // deliberate duplicates
			run[i] = kv.Pair[uint64, int]{Key: k, Val: idx}
			all = append(all, k)
			idx++
		}
		kv.SortPairs(run, u64Less)
		out[r] = run
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return out, all
}

// pairwise / pway run a merge on a transient p-worker pool, failing the
// test on error.
func pairwise(t testing.TB, rs [][]kv.Pair[uint64, int], p int) []kv.Pair[uint64, int] {
	t.Helper()
	ex := exec.NewLocal(p)
	defer ex.Close()
	got, err := PairwiseMerge(rs, u64Less, ex)
	if err != nil {
		t.Fatalf("PairwiseMerge: %v", err)
	}
	return got
}

func pway(t testing.TB, rs [][]kv.Pair[uint64, int], p int) []kv.Pair[uint64, int] {
	t.Helper()
	ex := exec.NewLocal(p)
	defer ex.Close()
	got, err := PWayMerge(rs, u64Less, ex)
	if err != nil {
		t.Fatalf("PWayMerge: %v", err)
	}
	return got
}

func checkMerged(t *testing.T, got []kv.Pair[uint64, int], want []uint64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: merged %d pairs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i] {
			t.Fatalf("%s: key %d = %d, want %d", label, i, got[i].Key, want[i])
		}
	}
	// Every original element appears exactly once.
	seen := make(map[int]bool, len(got))
	for _, p := range got {
		if seen[p.Val] {
			t.Fatalf("%s: element %d duplicated", label, p.Val)
		}
		seen[p.Val] = true
	}
}

func TestPairwiseMergeCorrect(t *testing.T) {
	for _, runs := range []int{1, 2, 3, 7, 16, 33} {
		rs, want := randomRuns(t, 5000, runs, int64(runs))
		got := pairwise(t, rs, 4)
		checkMerged(t, got, want, fmt.Sprintf("pairwise runs=%d", runs))
	}
}

func TestPWayMergeCorrect(t *testing.T) {
	for _, runs := range []int{1, 2, 3, 7, 16, 33, 200} {
		for _, p := range []int{1, 2, 4, 16} {
			rs, want := randomRuns(t, 5000, runs, int64(runs*31+p))
			got := pway(t, rs, p)
			checkMerged(t, got, want, fmt.Sprintf("pway runs=%d p=%d", runs, p))
		}
	}
}

func TestMergeEmptyAndSingleton(t *testing.T) {
	if got := pairwise(t, nil, 4); got != nil {
		t.Errorf("pairwise(nil) = %v", got)
	}
	if got := pway(t, nil, 4); got != nil {
		t.Errorf("pway(nil) = %v", got)
	}
	one := [][]kv.Pair[uint64, int]{{{Key: 1}, {Key: 2}}}
	if got := pway(t, one, 4); len(got) != 2 {
		t.Errorf("pway(single run) = %v", got)
	}
	// All-empty runs.
	empty := [][]kv.Pair[uint64, int]{{}, {}, {}}
	if got := pway(t, empty, 4); got != nil {
		t.Errorf("pway(empty runs) = %v", got)
	}
}

func TestPWayMergeSkewedRuns(t *testing.T) {
	// Highly uneven run sizes and disjoint key ranges stress the
	// splitter logic.
	runs := [][]kv.Pair[uint64, int]{
		make([]kv.Pair[uint64, int], 10000),
		make([]kv.Pair[uint64, int], 3),
		make([]kv.Pair[uint64, int], 500),
	}
	idx := 0
	for r := range runs {
		for i := range runs[r] {
			runs[r][i] = kv.Pair[uint64, int]{Key: uint64(r*1_000_000 + i), Val: idx}
			idx++
		}
	}
	got := pway(t, runs, 8)
	if len(got) != idx {
		t.Fatalf("merged %d, want %d", len(got), idx)
	}
	if !kv.IsSortedPairs(got, u64Less) {
		t.Error("skewed merge output unsorted")
	}
}

func TestPWayMergeAllEqualKeys(t *testing.T) {
	runs := make([][]kv.Pair[uint64, int], 8)
	idx := 0
	for r := range runs {
		runs[r] = make([]kv.Pair[uint64, int], 100)
		for i := range runs[r] {
			runs[r][i] = kv.Pair[uint64, int]{Key: 42, Val: idx}
			idx++
		}
	}
	got := pway(t, runs, 4)
	if len(got) != idx {
		t.Fatalf("merged %d of %d equal-key pairs", len(got), idx)
	}
}

// Property: both merges agree with each other and with a flat sort.
func TestMergesAgree(t *testing.T) {
	f := func(seed int64, runsRaw, pRaw uint8) bool {
		runs := int(runsRaw%20) + 1
		p := int(pRaw%8) + 1
		rs, want := randomRuns(t, 800, runs, seed)
		rs2 := make([][]kv.Pair[uint64, int], len(rs))
		for i := range rs {
			rs2[i] = append([]kv.Pair[uint64, int](nil), rs[i]...)
		}
		ex := exec.NewLocal(p)
		defer ex.Close()
		a, errA := PairwiseMerge(rs, u64Less, ex)
		b, errB := PWayMerge(rs2, u64Less, ex)
		if errA != nil || errB != nil {
			return false
		}
		if len(a) != len(want) || len(b) != len(want) {
			return false
		}
		for i := range want {
			if a[i].Key != want[i] || b[i].Key != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSortRuns(t *testing.T) {
	rs, _ := randomRuns(t, 2000, 8, 1)
	// Shuffle each run, then re-sort through SortRuns.
	rng := rand.New(rand.NewSource(2))
	for _, r := range rs {
		rng.Shuffle(len(r), func(i, j int) { r[i], r[j] = r[j], r[i] })
	}
	ex := exec.NewLocal(4)
	defer ex.Close()
	if err := SortRuns(rs, u64Less, ex); err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if !kv.IsSortedPairs(r, u64Less) {
			t.Errorf("run %d unsorted after SortRuns", i)
		}
	}
}

func TestRounds(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 256: 8}
	for n, want := range cases {
		if got := Rounds(n); got != want {
			t.Errorf("Rounds(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMergeDispatchAndString(t *testing.T) {
	if MergePairwise.String() != "pairwise" || MergePWay.String() != "p-way" {
		t.Error("MergeAlgo String wrong")
	}
	if MergeAlgo(9).String() != "unknown" {
		t.Error("unknown algo string wrong")
	}
	rs, want := randomRuns(t, 500, 4, 3)
	ex := exec.NewLocal(2)
	defer ex.Close()
	got, err := Merge(MergePWay, rs, u64Less, ex)
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, got, want, "dispatch")
}

func TestExecutorInstrumentation(t *testing.T) {
	// The executor's per-phase task stats replace the old Tracker: one
	// "sort" task per run, plus "merge" tasks from both algorithms.
	rs, _ := randomRuns(t, 1000, 8, 4)
	ex := exec.NewLocal(4)
	defer ex.Close()
	if err := SortRuns(rs, u64Less, ex); err != nil {
		t.Fatal(err)
	}
	if got := ex.TaskStats()["sort"].Tasks; got != 8 {
		t.Errorf("SortRuns ran %d sort tasks, want 8 (one per run)", got)
	}
	if _, err := PairwiseMerge(rs, u64Less, ex); err != nil {
		t.Fatal(err)
	}
	if got := ex.TaskStats()["merge"].Tasks; got == 0 {
		t.Error("PairwiseMerge recorded no merge tasks")
	}
	ex2 := exec.NewLocal(4)
	defer ex2.Close()
	rs2, _ := randomRuns(t, 1000, 8, 5)
	if _, err := PWayMerge(rs2, u64Less, ex2); err != nil {
		t.Fatal(err)
	}
	if got := ex2.TaskStats()["merge"].Tasks; got == 0 {
		t.Error("PWayMerge recorded no merge tasks")
	}
}

func TestLoserTreeMergeDirect(t *testing.T) {
	// Exercise loserTreeMerge through PWayMerge with p=1 so a single
	// worker merges many columns via the tree.
	for _, k := range []int{3, 4, 5, 6, 9, 17} {
		rs, want := randomRuns(t, 3000, k, int64(100+k))
		got := pway(t, rs, 1)
		checkMerged(t, got, want, fmt.Sprintf("losertree k=%d", k))
	}
}

// Regression: duplicate-heavy runs make nearly every sampled splitter
// the same key, so uncorrected lower-bound cuts could go non-monotone;
// the clamp must keep every run's cut sequence ordered and the merge
// exact. Exercised across worker counts so the splitter count varies.
func TestPWayMergeDuplicateHeavySplitters(t *testing.T) {
	const total, runs = 6000, 12
	rng := rand.New(rand.NewSource(99))
	rs := make([][]kv.Pair[uint64, int], runs)
	var all []uint64
	idx := 0
	for r := range rs {
		n := total / runs
		run := make([]kv.Pair[uint64, int], n)
		for i := range run {
			// ~95% of keys are the single value 7; the rest spread thinly
			// on both sides so every splitter lands on the duplicate.
			k := uint64(7)
			if rng.Intn(20) == 0 {
				k = uint64(rng.Intn(15))
			}
			run[i] = kv.Pair[uint64, int]{Key: k, Val: idx}
			all = append(all, k)
			idx++
		}
		kv.SortPairs(run, u64Less)
		rs[r] = run
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, p := range []int{1, 2, 4, 8} {
		cp := make([][]kv.Pair[uint64, int], len(rs))
		for i := range rs {
			cp[i] = append([]kv.Pair[uint64, int](nil), rs[i]...)
		}
		got := pway(t, cp, p)
		checkMerged(t, got, all, fmt.Sprintf("dup-heavy p=%d", p))
	}
}
