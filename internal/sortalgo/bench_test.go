package sortalgo

import (
	"fmt"
	"testing"

	"supmr/internal/exec"
	"supmr/internal/kv"
)

// Micro-benchmarks of the two merge algorithms across run counts — the
// in-memory heart of the Conclusion 3 ablation, without runtime or
// device overheads.

func benchRuns(total, runs int) [][]kv.Pair[uint64, uint64] {
	per := total / runs
	out := make([][]kv.Pair[uint64, uint64], runs)
	x := uint64(99)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for r := range out {
		n := per
		if r == runs-1 {
			n = total - per*(runs-1)
		}
		run := make([]kv.Pair[uint64, uint64], n)
		for i := range run {
			run[i] = kv.Pair[uint64, uint64]{Key: next(), Val: uint64(i)}
		}
		kv.SortPairs(run, func(a, b uint64) bool { return a < b })
		out[r] = run
	}
	return out
}

func BenchmarkMerge(b *testing.B) {
	const total = 1 << 18
	less := kv.Less[uint64](func(a, c uint64) bool { return a < c })
	for _, runs := range []int{8, 64, 512} {
		base := benchRuns(total, runs)
		for _, algo := range []MergeAlgo{MergePairwise, MergePWay} {
			b.Run(fmt.Sprintf("%s/runs=%d", algo, runs), func(b *testing.B) {
				ex := exec.NewLocal(4)
				defer ex.Close()
				b.ReportAllocs()
				b.SetBytes(int64(total * 16))
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					rs := make([][]kv.Pair[uint64, uint64], len(base))
					for j := range base {
						rs[j] = append([]kv.Pair[uint64, uint64](nil), base[j]...)
					}
					b.StartTimer()
					out, err := Merge(algo, rs, less, ex)
					if err != nil || len(out) != total {
						b.Fatal("bad merge", err)
					}
				}
			})
		}
	}
}

func BenchmarkSortRuns(b *testing.B) {
	const total = 1 << 17
	base := benchRuns(total, 32)
	less := kv.Less[uint64](func(a, c uint64) bool { return a < c })
	ex := exec.NewLocal(4)
	defer ex.Close()
	b.ReportAllocs()
	b.SetBytes(int64(total * 16))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rs := make([][]kv.Pair[uint64, uint64], len(base))
		for j := range base {
			rs[j] = append([]kv.Pair[uint64, uint64](nil), base[j]...)
		}
		b.StartTimer()
		if err := SortRuns(rs, less, ex); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoserTreeWidth(b *testing.B) {
	// One worker merging k columns: the loser tree's log2(k) scaling.
	const total = 1 << 17
	less := kv.Less[uint64](func(a, c uint64) bool { return a < c })
	for _, k := range []int{4, 16, 64, 256} {
		base := benchRuns(total, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			ex := exec.NewLocal(1)
			defer ex.Close()
			b.SetBytes(int64(total * 16))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rs := make([][]kv.Pair[uint64, uint64], len(base))
				for j := range base {
					rs[j] = append([]kv.Pair[uint64, uint64](nil), base[j]...)
				}
				b.StartTimer()
				out, err := PWayMerge(rs, less, ex)
				if err != nil || len(out) != total {
					b.Fatal("bad merge", err)
				}
			}
		})
	}
}
