package sortalgo

import (
	"supmr/internal/kv"
)

// This file extends the merge phase to out-of-core inputs: a Source
// streams one sorted run — an in-memory slice or an on-disk spill run
// decoded incrementally — and MergeSources consumes any mix of them in
// a single loser-tree round. This is the external counterpart of
// PWayMerge: same single-round structure (Conclusion 3), but run heads
// are pulled on demand instead of indexed, so merging never needs all
// runs resident. The spill layer (internal/spill) provides Sources over
// its run files.

// Source streams one key-sorted run. Implementations are consumed by a
// single goroutine; Next returns ok=false when the run is exhausted.
type Source[K any, V any] interface {
	Next() (p kv.Pair[K, V], ok bool, err error)
}

// sliceSource adapts an in-memory sorted run.
type sliceSource[K any, V any] struct {
	ps []kv.Pair[K, V]
	i  int
}

// NewSliceSource returns a Source over an in-memory sorted run.
func NewSliceSource[K any, V any](ps []kv.Pair[K, V]) Source[K, V] {
	return &sliceSource[K, V]{ps: ps}
}

func (s *sliceSource[K, V]) Next() (kv.Pair[K, V], bool, error) {
	if s.i >= len(s.ps) {
		var zero kv.Pair[K, V]
		return zero, false, nil
	}
	p := s.ps[s.i]
	s.i++
	return p, true, nil
}

// sourceTree is a tournament tree of losers over streaming sources: the
// sentinel-padded power-of-two structure loserTreeMerge uses for slices,
// with two buffered pairs per source. The second buffer is the run-head
// prefetch: the next record is pulled from a source one pop before it is
// compared, so incremental spill-run decoding happens off the
// comparison's critical path. Equal keys resolve by source index, the
// same tie rule as the in-memory trees, so spill-run groups form in
// deterministic run order.
type sourceTree[K any, V any] struct {
	srcs   []Source[K, V]
	heads  []kv.Pair[K, V] // current head per source (padded to m)
	nexts  []kv.Pair[K, V] // prefetched following record per source
	live   []bool          // head valid (source not exhausted)
	nlive  []bool          // prefetched record valid
	nodes  []int           // nodes[1..m-1] hold loser ids
	winner int
	m      int // power-of-two leaf count; [k, m) are sentinels
	less   kv.Less[K]
}

func newSourceTree[K any, V any](srcs []Source[K, V], less kv.Less[K]) (*sourceTree[K, V], error) {
	k := len(srcs)
	m := 2
	for m < k {
		m <<= 1
	}
	t := &sourceTree[K, V]{
		srcs:  srcs,
		heads: make([]kv.Pair[K, V], m),
		nexts: make([]kv.Pair[K, V], m),
		live:  make([]bool, m),
		nlive: make([]bool, m),
		nodes: make([]int, m),
		m:     m,
		less:  less,
	}
	for c := 0; c < k; c++ {
		p, ok, err := srcs[c].Next()
		if err != nil {
			return nil, err
		}
		t.heads[c], t.live[c] = p, ok
		if ok {
			p, ok, err = srcs[c].Next()
			if err != nil {
				return nil, err
			}
			t.nexts[c], t.nlive[c] = p, ok
		}
	}
	// Build bottom-up: winners bubble toward the root, each internal
	// node keeps the loser of its match.
	winners := make([]int, 2*m)
	for i := 0; i < m; i++ {
		winners[m+i] = i
	}
	for node := m - 1; node >= 1; node-- {
		a, b := winners[2*node], winners[2*node+1]
		if t.beats(b, a) {
			a, b = b, a
		}
		winners[node] = a
		t.nodes[node] = b
	}
	t.winner = winners[1]
	return t, nil
}

// beats reports whether source a's head strictly precedes source b's: by
// key, then by source index; exhausted sources and sentinels always
// lose.
func (t *sourceTree[K, V]) beats(a, b int) bool {
	la, lb := t.live[a], t.live[b]
	if !la || !lb {
		return la || (!lb && a < b)
	}
	ka, kb := t.heads[a].Key, t.heads[b].Key
	if t.less(ka, kb) {
		return true
	}
	if t.less(kb, ka) {
		return false
	}
	return a < b
}

// pop removes and returns the globally smallest head, promoting the
// prefetched record, refilling the prefetch slot, and replaying the tree
// from the winner's leaf by index halving. ok=false when every source is
// dry.
func (t *sourceTree[K, V]) pop() (kv.Pair[K, V], bool, error) {
	w := t.winner
	if !t.live[w] {
		var zero kv.Pair[K, V]
		return zero, false, nil
	}
	out := t.heads[w]
	t.heads[w], t.live[w] = t.nexts[w], t.nlive[w]
	if t.nlive[w] {
		p, ok, err := t.srcs[w].Next()
		if err != nil {
			var zero kv.Pair[K, V]
			return zero, false, err
		}
		t.nexts[w], t.nlive[w] = p, ok
	}
	for node := (t.m + w) >> 1; node > 0; node >>= 1 {
		if l := t.nodes[node]; t.beats(l, w) {
			t.nodes[node] = w
			w = l
		}
	}
	t.winner = w
	return out, true, nil
}

// MergeSources merges key-sorted sources into out in a single streaming
// loser-tree round, grouping equal keys as they surface and applying
// reduce to each multi-value group — so reduce output never needs all
// runs resident. Keys repeat across sources when the spill layer wrote
// partial combiner state for the same key into different runs; reduce
// must therefore be associative and accept already-reduced values.
// Groups of one value pass through un-reduced, matching the in-memory
// merge path, which never re-reduces.
func MergeSources[K any, V any](srcs []Source[K, V], less kv.Less[K], reduce func(K, []V) V, out []kv.Pair[K, V]) ([]kv.Pair[K, V], error) {
	if len(srcs) == 0 {
		return out, nil
	}
	tree, err := newSourceTree(srcs, less)
	if err != nil {
		return nil, err
	}

	var (
		groupKey  K
		groupVals []V
		inGroup   bool
	)
	flush := func() {
		if !inGroup {
			return
		}
		v := groupVals[0]
		if len(groupVals) > 1 {
			v = reduce(groupKey, groupVals)
		}
		out = append(out, kv.Pair[K, V]{Key: groupKey, Val: v})
		groupVals = groupVals[:0]
		inGroup = false
	}
	for {
		p, ok, err := tree.pop()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		// Keys arrive globally sorted: a new group starts whenever the
		// key order strictly advances.
		if inGroup && less(groupKey, p.Key) {
			flush()
		}
		if !inGroup {
			groupKey = p.Key
			inGroup = true
		}
		groupVals = append(groupVals, p.Val)
	}
	flush()
	return out, nil
}
