package sortalgo

import (
	"supmr/internal/kv"
)

// This file extends the merge phase to out-of-core inputs: a Source
// streams one sorted run — an in-memory slice or an on-disk spill run
// decoded incrementally — and MergeSources consumes any mix of them in
// a single loser-tree round. This is the external counterpart of
// PWayMerge: same single-round structure (Conclusion 3), but run heads
// are pulled on demand instead of indexed, so merging never needs all
// runs resident. The spill layer (internal/spill) provides Sources over
// its run files.

// Source streams one key-sorted run. Implementations are consumed by a
// single goroutine; Next returns ok=false when the run is exhausted.
type Source[K any, V any] interface {
	Next() (p kv.Pair[K, V], ok bool, err error)
}

// sliceSource adapts an in-memory sorted run.
type sliceSource[K any, V any] struct {
	ps []kv.Pair[K, V]
	i  int
}

// NewSliceSource returns a Source over an in-memory sorted run.
func NewSliceSource[K any, V any](ps []kv.Pair[K, V]) Source[K, V] {
	return &sliceSource[K, V]{ps: ps}
}

func (s *sliceSource[K, V]) Next() (kv.Pair[K, V], bool, error) {
	if s.i >= len(s.ps) {
		var zero kv.Pair[K, V]
		return zero, false, nil
	}
	p := s.ps[s.i]
	s.i++
	return p, true, nil
}

// sourceTree is a tournament tree of losers over streaming sources: the
// same structure loserTreeMerge uses for slices, with heads held as
// buffered pairs pulled from each source on demand.
type sourceTree[K any, V any] struct {
	srcs  []Source[K, V]
	heads []kv.Pair[K, V] // current head per source
	live  []bool          // head valid (source not exhausted)
	tree  []int           // tree[1..k-1] losers, tree[0] winner
	less  kv.Less[K]
}

func newSourceTree[K any, V any](srcs []Source[K, V], less kv.Less[K]) (*sourceTree[K, V], error) {
	k := len(srcs)
	t := &sourceTree[K, V]{
		srcs:  srcs,
		heads: make([]kv.Pair[K, V], k),
		live:  make([]bool, k),
		tree:  make([]int, k),
		less:  less,
	}
	for c := 0; c < k; c++ {
		p, ok, err := srcs[c].Next()
		if err != nil {
			return nil, err
		}
		t.heads[c], t.live[c] = p, ok
	}
	// Build the tree by playing each column up from its leaf.
	for i := range t.tree {
		t.tree[i] = -1
	}
	for c := 0; c < k; c++ {
		winner := c
		for node := (k + c) / 2; node >= 1; node /= 2 {
			if t.tree[node] == -1 {
				t.tree[node] = winner
				winner = -1
				break
			}
			if t.beats(t.tree[node], winner) {
				winner, t.tree[node] = t.tree[node], winner
			}
		}
		if winner != -1 {
			t.tree[0] = winner
		}
	}
	return t, nil
}

// beats reports whether source a's head wins (is less than) source b's;
// exhausted sources always lose.
func (t *sourceTree[K, V]) beats(a, b int) bool {
	if !t.live[a] {
		return false
	}
	if !t.live[b] {
		return true
	}
	return t.less(t.heads[a].Key, t.heads[b].Key)
}

// pop removes and returns the globally smallest head, refilling from its
// source and replaying the tree. ok=false when every source is dry.
func (t *sourceTree[K, V]) pop() (kv.Pair[K, V], bool, error) {
	w := t.tree[0]
	if !t.live[w] {
		var zero kv.Pair[K, V]
		return zero, false, nil
	}
	out := t.heads[w]
	p, ok, err := t.srcs[w].Next()
	if err != nil {
		var zero kv.Pair[K, V]
		return zero, false, err
	}
	t.heads[w], t.live[w] = p, ok
	// Replay w from its leaf to the root.
	k := len(t.srcs)
	winner := w
	for node := (k + w) / 2; node >= 1; node /= 2 {
		if t.beats(t.tree[node], winner) {
			winner, t.tree[node] = t.tree[node], winner
		}
	}
	t.tree[0] = winner
	return out, true, nil
}

// MergeSources merges key-sorted sources into out in a single streaming
// loser-tree round, grouping equal keys as they surface and applying
// reduce to each multi-value group — so reduce output never needs all
// runs resident. Keys repeat across sources when the spill layer wrote
// partial combiner state for the same key into different runs; reduce
// must therefore be associative and accept already-reduced values.
// Groups of one value pass through un-reduced, matching the in-memory
// merge path, which never re-reduces.
func MergeSources[K any, V any](srcs []Source[K, V], less kv.Less[K], reduce func(K, []V) V, out []kv.Pair[K, V]) ([]kv.Pair[K, V], error) {
	if len(srcs) == 0 {
		return out, nil
	}
	tree, err := newSourceTree(srcs, less)
	if err != nil {
		return nil, err
	}

	var (
		groupKey  K
		groupVals []V
		inGroup   bool
	)
	flush := func() {
		if !inGroup {
			return
		}
		v := groupVals[0]
		if len(groupVals) > 1 {
			v = reduce(groupKey, groupVals)
		}
		out = append(out, kv.Pair[K, V]{Key: groupKey, Val: v})
		groupVals = groupVals[:0]
		inGroup = false
	}
	for {
		p, ok, err := tree.pop()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		// Keys arrive globally sorted: a new group starts whenever the
		// key order strictly advances.
		if inGroup && less(groupKey, p.Key) {
			flush()
		}
		if !inGroup {
			groupKey = p.Key
			inGroup = true
		}
		groupVals = append(groupVals, p.Val)
	}
	flush()
	return out, nil
}
