package chunk

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"supmr/internal/storage"
)

// FuzzInterFileCoverage feeds arbitrary data and chunk sizes through the
// inter-file chunker and checks the two invariants that matter: every
// input byte appears exactly once across chunks (in order), and no
// chunk except the last ends mid-record.
func FuzzInterFileCoverage(f *testing.F) {
	f.Add([]byte("alpha beta\ngamma\n"), int64(4))
	f.Add([]byte("no newline at all"), int64(3))
	f.Add([]byte("\n\n\n"), int64(1))
	f.Add(bytes.Repeat([]byte("word\n"), 100), int64(7))
	f.Fuzz(func(t *testing.T, data []byte, chunkSize int64) {
		if chunkSize <= 0 || chunkSize > int64(len(data))+10 {
			chunkSize = int64(len(data)%97) + 1
		}
		file := storage.BytesFile("f", data, storage.NewNullDevice(storage.NewFakeClock()))
		s, err := NewInterFile(file, chunkSize, NewlineBoundary{})
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		var chunks [][]byte
		for {
			c, err := s.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, c.Data...)
			chunks = append(chunks, c.Data)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("coverage broken: %d bytes in, %d out", len(data), len(got))
		}
		for i, c := range chunks[:max(0, len(chunks)-1)] {
			if len(c) > 0 && c[len(c)-1] != '\n' {
				t.Fatalf("chunk %d of %d ends mid-record", i, len(chunks))
			}
		}
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FuzzSplitBuffer checks that in-memory splitting covers the buffer
// exactly and respects record boundaries.
func FuzzSplitBuffer(f *testing.F) {
	f.Add([]byte("a b c\nd e\n"), 3)
	f.Add([]byte(""), 5)
	f.Add([]byte("unterminated tail"), 2)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 {
			n = -n
		}
		n = n%32 + 1
		splits := SplitBuffer(data, n, NewlineBoundary{})
		var got []byte
		for i, sp := range splits {
			if len(sp) == 0 {
				t.Fatalf("split %d empty", i)
			}
			got = append(got, sp...)
			if i < len(splits)-1 && sp[len(sp)-1] != '\n' {
				t.Fatalf("split %d cut mid-record", i)
			}
		}
		if !bytes.Equal(got, data) {
			t.Fatal("splits do not cover the buffer")
		}
	})
}

// crlfRecords cuts data into its \r\n-terminated records; the tail
// after the last terminator (if any) is one final unterminated record.
func crlfRecords(data []byte) [][]byte {
	var recs [][]byte
	start := 0
	for i := 1; i < len(data); i++ {
		if data[i] == '\n' && data[i-1] == '\r' {
			recs = append(recs, data[start:i+1])
			start = i + 1
		}
	}
	if start < len(data) {
		recs = append(recs, data[start:])
	}
	return recs
}

// FuzzInterFileCRLFRecords is the record-level invariant for CRLF
// inter-file chunking: no record is ever dropped, duplicated, or split
// across chunks. Byte coverage plus every non-final chunk ending
// exactly at a record boundary (Complete — which a chunk ending in a
// bare \r fails) implies each record lands whole in exactly one chunk;
// the per-chunk record recount makes the claim direct.
func FuzzInterFileCRLFRecords(f *testing.F) {
	f.Add([]byte("aaaa\r\nbb\r\ncccccc\r\n"), int64(5))
	f.Add([]byte("x\r\r\n\r\ny"), int64(2))             // bare \r inside a record
	f.Add([]byte("unterminated tail record"), int64(7)) // no CRLF at all
	f.Add([]byte("a\nb\nc\r\n"), int64(3))              // lone \n is not a terminator
	f.Add(bytes.Repeat([]byte("rec\r\n"), 64), int64(9))
	f.Fuzz(func(t *testing.T, data []byte, chunkSize int64) {
		if chunkSize <= 0 || chunkSize > int64(len(data))+10 {
			chunkSize = int64(len(data)%89) + 1
		}
		file := storage.BytesFile("f", data, storage.NewNullDevice(storage.NewFakeClock()))
		s, err := NewInterFile(file, chunkSize, CRLFBoundary{})
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		var chunks [][]byte
		for {
			c, err := s.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, c.Data...)
			chunks = append(chunks, c.Data)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("coverage broken: %d bytes in, %d out (records dropped or duplicated)", len(data), len(got))
		}
		b := CRLFBoundary{}
		for i, c := range chunks[:max(0, len(chunks)-1)] {
			if !b.Complete(c) {
				t.Fatalf("chunk %d of %d does not end at a record boundary (record split): trailing %q",
					i, len(chunks), c[max(0, len(c)-3):])
			}
		}
		// Recount: the records of the chunks, concatenated in order, must
		// be exactly the records of the input.
		want := crlfRecords(data)
		var have [][]byte
		for _, c := range chunks {
			have = append(have, crlfRecords(c)...)
		}
		if len(have) != len(want) {
			t.Fatalf("record count changed: %d in input, %d across chunks", len(want), len(have))
		}
		for i := range want {
			if !bytes.Equal(want[i], have[i]) {
				t.Fatalf("record %d differs: input %q, chunked %q", i, want[i], have[i])
			}
		}
	})
}

// FuzzCRLFBoundary checks the two-byte terminator logic never splits a
// \r\n pair across chunks.
func FuzzCRLFBoundary(f *testing.F) {
	f.Add([]byte("ab\r\ncd\r\n"), int64(3))
	f.Add([]byte("\r\r\n\r\n"), int64(2))
	f.Add([]byte("xx\rqq\nzz\r\n"), int64(4))
	f.Fuzz(func(t *testing.T, data []byte, chunkSize int64) {
		if chunkSize <= 0 {
			chunkSize = 1
		}
		if chunkSize > 1<<16 {
			chunkSize = 1 << 16
		}
		file := storage.BytesFile("f", data, storage.NewNullDevice(storage.NewFakeClock()))
		s, err := NewInterFile(file, chunkSize, CRLFBoundary{})
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		var prev *Chunk
		for {
			c, err := s.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if prev != nil && len(prev.Data) > 0 && len(c.Data) > 0 {
				// A \r at the end of one chunk followed by \n at the start
				// of the next would be a split terminator.
				if prev.Data[len(prev.Data)-1] == '\r' && c.Data[0] == '\n' {
					t.Fatal("\\r\\n pair split across chunks")
				}
			}
			got = append(got, c.Data...)
			prev = c
		}
		if !bytes.Equal(got, data) {
			t.Fatal("coverage broken")
		}
	})
}
