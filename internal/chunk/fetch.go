package chunk

import (
	"io"
	"sync"
)

// IssueReader is the two-phase read contract of the multi-lane ingest
// path, implemented by storage.File, hdfs.File and the fault/retry
// wrappers in internal/faults. IssueReadAt books the read — device
// reservations, fault-injection decisions, retry backoff — on the
// calling goroutine, in call order; the returned wait completes the
// transfer (filling p, sleeping out the device time) and may run on any
// goroutine. A non-nil error means the read failed at issue and no wait
// is returned.
//
// The split is what keeps segmented reads deterministic: the fetcher
// issues every segment serially from the single ingest thread, so the
// per-site operation order any fault plan sees is a pure function of
// the input — independent of how many IO lanes execute the waits.
type IssueReader interface {
	IssueReadAt(p []byte, off int64) (wait func() (int, error), err error)
}

// Dispatch runs fn asynchronously on an IO lane and returns a join
// function that blocks until fn has finished. bytes is the payload size
// for per-lane throughput attribution. A non-nil join error (panic in
// fn, pool shutdown) means fn's effects must be discarded. The SupMR
// pipeline backs Dispatch with exec.Pool.GoIOSized.
type Dispatch func(bytes int64, fn func()) (join func() error)

// minSegment is the smallest read the fetcher will split off: segments
// below this are not worth a lane round-trip.
const minSegment = 4096

// FreeList is the chunk-buffer freelist: released chunks park here and
// back future chunks, so steady-state ingest allocates O(ring depth)
// buffers, not O(chunks). It is safe for concurrent use and may be
// shared across many streams — a multi-job engine hands every job's
// fetcher the same list, so chunk buffers recycle across jobs instead
// of each job growing its own pool. A nil *FreeList allocates fresh
// chunks and drops releases.
type FreeList struct {
	mu     sync.Mutex
	free   []*Chunk
	gets   int64 // chunks handed out
	reuses int64 // handed-out chunks that came from the list
}

// NewFreeList builds an empty freelist.
func NewFreeList() *FreeList { return &FreeList{} }

// Stats reports chunks handed out and how many were recycled buffers.
func (l *FreeList) Stats() (gets, reuses int64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gets, l.reuses
}

// acquire returns a pooled chunk whose backing buffer has at least
// capHint capacity, allocating one when the list is empty.
func (l *FreeList) acquire(capHint int64) *Chunk {
	if l == nil {
		return &Chunk{}
	}
	l.mu.Lock()
	var c *Chunk
	if n := len(l.free); n > 0 {
		c = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		l.reuses++
	}
	l.gets++
	l.mu.Unlock()
	if c == nil {
		c = &Chunk{}
	}
	if int64(cap(c.backing)) < capHint {
		c.backing = make([]byte, 0, capHint)
	}
	c.Data = nil
	// Files gets a fresh slice per chunk, never a truncated reuse:
	// applications may retain it past the map wave (the inverted index
	// emits it into the container as posting lists).
	c.Files = nil
	c.HasSum = false
	c.free = l
	return c
}

// release returns a chunk to the list (called via Chunk.Release).
func (l *FreeList) release(c *Chunk) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.free = append(l.free, c)
	l.mu.Unlock()
}

// Fetcher gives chunkers striped multi-lane reads and a chunk-buffer
// freelist. A nil *Fetcher (the default everywhere) degrades every
// method to the original single-stream, freshly-allocated behaviour, so
// streams carry one unconditionally.
//
// Buffer lifecycle: chunkers acquire a pooled chunk per Next, fill its
// backing buffer, and emit it; the consumer calls Chunk.Release when
// the map wave is done with the bytes, returning the buffer for a
// future chunk.
type Fetcher struct {
	lanes    int
	dispatch Dispatch
	list     *FreeList
}

// NewFetcher builds a fetcher reading across lanes IO lanes through
// dispatch, with a private freelist. lanes <= 1 or a nil dispatch
// disables segmentation but keeps the buffer freelist.
func NewFetcher(lanes int, dispatch Dispatch) *Fetcher {
	return NewFetcherShared(lanes, dispatch, NewFreeList())
}

// NewFetcherShared is NewFetcher over a caller-owned freelist, the
// multi-job configuration: every job's fetcher draws from and releases
// to the same list.
func NewFetcherShared(lanes int, dispatch Dispatch, list *FreeList) *Fetcher {
	if lanes < 1 {
		lanes = 1
	}
	return &Fetcher{lanes: lanes, dispatch: dispatch, list: list}
}

// Lanes returns the fetcher's lane count (1 for a nil fetcher).
func (f *Fetcher) Lanes() int {
	if f == nil {
		return 1
	}
	return f.lanes
}

// acquire returns a pooled chunk whose backing buffer has at least
// capHint capacity, allocating one when the freelist is empty.
func (f *Fetcher) acquire(capHint int64) *Chunk {
	if f == nil {
		return &Chunk{}
	}
	return f.list.acquire(capHint)
}

// seg is one outstanding portion of a segmented read.
type seg struct {
	buf []byte
	off int64
}

// fetchInto fills buf from in starting at off. With a single lane (or
// no dispatch, or a nil fetcher) it is exactly the serial readFull;
// otherwise buf is split into up to Lanes segments whose waits execute
// concurrently across the IO lanes while every issue — including
// short-read remainders — happens here, serially, in offset order.
//
// Error semantics mirror readFull: a read that made progress has its
// remainder retried regardless of the error; a read that returned zero
// bytes fails the fetch (io.ErrUnexpectedEOF when it reported no
// error). When several segments fail in one round the lowest-offset
// failure wins, which is the same error the serial path would have hit
// first — and, like the serial path, segments past a failed issue are
// never issued.
func (f *Fetcher) fetchInto(in Input, buf []byte, off int64) error {
	if f == nil || f.lanes <= 1 || f.dispatch == nil || len(buf) < 2*minSegment {
		return readFull(in, buf, off)
	}
	ir, _ := in.(IssueReader)
	if ir == nil {
		// No issue/wait split: the input cannot guarantee a deterministic
		// operation order under concurrency, so read it serially.
		return readFull(in, buf, off)
	}

	work := splitSegments(buf, off, f.lanes)
	for len(work) > 0 {
		type flight struct {
			s    seg
			n    int
			err  error
			join func() error
		}
		// Fixed capacity: dispatched closures hold pointers into this
		// slice, so it must never reallocate.
		flights := make([]flight, 0, len(work))
		var issueErr error
		for _, s := range work {
			wait, err := ir.IssueReadAt(s.buf, s.off)
			if err != nil {
				issueErr = err
				break
			}
			flights = append(flights, flight{s: s})
			fl := &flights[len(flights)-1]
			fl.join = f.dispatch(int64(len(s.buf)), func() { fl.n, fl.err = wait() })
		}
		// Join every dispatched wait before touching buf or returning:
		// segment waits write into the caller's buffer and must not
		// outlive this call, error or not.
		for i := range flights {
			if jErr := flights[i].join(); jErr != nil {
				flights[i].n, flights[i].err = 0, jErr
			}
		}
		if issueErr != nil {
			return issueErr
		}
		next := work[:0]
		for i := range flights {
			fl := &flights[i]
			switch {
			case fl.n >= len(fl.s.buf):
				// Segment complete.
			case fl.n > 0:
				next = append(next, seg{buf: fl.s.buf[fl.n:], off: fl.s.off + int64(fl.n)})
			case fl.err != nil:
				return fl.err
			default:
				return io.ErrUnexpectedEOF
			}
		}
		work = next
	}
	return nil
}

// splitSegments cuts [off, off+len(buf)) into at most lanes segments of
// near-equal size, each at least minSegment bytes, in offset order.
func splitSegments(buf []byte, off int64, lanes int) []seg {
	n := len(buf)
	if max := n / minSegment; lanes > max {
		lanes = max
	}
	if lanes < 1 {
		lanes = 1
	}
	segs := make([]seg, 0, lanes)
	start := 0
	for i := 0; i < lanes; i++ {
		end := n * (i + 1) / lanes
		if end <= start {
			continue
		}
		segs = append(segs, seg{buf: buf[start:end], off: off + int64(start)})
		start = end
	}
	return segs
}

// FetcherAware is implemented by streams that can ingest through a
// Fetcher; the SupMR pipeline installs one before the first Next.
type FetcherAware interface {
	SetFetcher(*Fetcher)
}
