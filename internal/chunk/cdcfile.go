package chunk

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"supmr/internal/cdc"
)

// CDCFile splits one large file at content-defined boundaries instead
// of a fixed nominal size: a gear-hash chunker (internal/cdc) places
// each cut as a function of the bytes themselves, and the cut is then
// extended forward to the next record boundary exactly as InterFile
// does, so no record straddles two chunks. Both steps depend only on
// content at and before the cut, which gives the memoization layer its
// key property: appending bytes to the input, or editing bytes within
// one chunk, changes only the affected chunks' hashes — every other
// chunk keeps its identity and its cached map output stays valid.
//
// Each emitted chunk carries the SHA-256 of its payload (Chunk.Sum),
// computed here on the ingest path — the pump goroutine or IO lane that
// runs Next — so hashing overlaps map work like the rest of ingest.
type CDCFile struct {
	file     Input
	chunker  *cdc.Chunker
	boundary Boundary
	off      int64  // next unread file offset
	emitted  int64  // total bytes already emitted in chunks
	carry    []byte // bytes read past the previous cut (persistent scratch)
	index    int
	fetcher  *Fetcher
}

// NewCDCFile builds the content-defined chunker. min/avg/max are the
// gear-hash policy in bytes (see cdc.New); records are kept whole with
// b, so chunks may exceed max by up to one record.
func NewCDCFile(file Input, min, avg, max int64, b Boundary) (*CDCFile, error) {
	if file == nil {
		return nil, errors.New("chunk: cdc chunker requires a file")
	}
	if b == nil {
		return nil, errors.New("chunk: cdc chunker requires a boundary")
	}
	ck, err := cdc.New(int(min), int(avg), int(max))
	if err != nil {
		return nil, err
	}
	return &CDCFile{file: file, chunker: ck, boundary: b}, nil
}

// SetFetcher installs the multi-lane fetcher subsequent Next calls read
// and pool buffers through.
func (c *CDCFile) SetFetcher(f *Fetcher) { c.fetcher = f }

// TotalBytes returns the file size.
func (c *CDCFile) TotalBytes() int64 { return c.file.Size() }

// fetch appends up to want more bytes from the file to buf.
func (c *CDCFile) fetch(buf []byte, want int64) ([]byte, error) {
	if rest := c.file.Size() - c.off; want > rest {
		want = rest
	}
	if want <= 0 {
		return buf, nil
	}
	start := len(buf)
	buf = growTo(buf, int(want))
	if err := c.fetcher.fetchInto(c.file, buf[start:], c.off); err != nil {
		return nil, fmt.Errorf("chunk: cdc ingest of chunk %d failed: %w", c.index, err)
	}
	c.off += want
	return buf, nil
}

// Next ingests the next content-defined chunk: fill to the chunker's
// max, let the gear hash pick the cut, extend it to the record
// boundary, hash the payload, and carry the over-read remainder.
func (c *CDCFile) Next() (*Chunk, error) {
	size := c.file.Size()
	if c.off >= size && len(c.carry) == 0 {
		return nil, io.EOF
	}
	max := int64(c.chunker.Max)
	ch := c.fetcher.acquire(max + extendStep)
	buf := append(ch.backing[:0], c.carry...)
	c.carry = c.carry[:0]

	if int64(len(buf)) < max {
		var err error
		buf, err = c.fetch(buf, max-int64(len(buf)))
		if err != nil {
			return nil, err
		}
	}
	atEOF := c.off >= size
	cut := c.chunker.Cut(buf, atEOF)
	if cut < 0 {
		// Unreachable: buf holds max bytes or the whole remainder.
		return nil, fmt.Errorf("chunk: cdc cut undecided with %d buffered bytes", len(buf))
	}

	// Extend the content-defined cut to the end of the record in
	// progress, mirroring InterFile: exact for fixed-width records, a
	// forward scan for delimiter-terminated ones. The extension reads
	// only bytes up to the next terminator, so it too is a function of
	// local content — boundary stability survives.
	if cut < len(buf) || c.off < size {
		switch {
		case c.boundary.Complete(buf[:cut]):
			// Already on a record boundary.
		default:
			if need := c.boundary.Need(c.emitted + int64(cut)); need >= 0 {
				cut += int(need)
				for len(buf) < cut && c.off < size {
					var err error
					buf, err = c.fetch(buf, int64(cut-len(buf)))
					if err != nil {
						return nil, err
					}
				}
				if cut > len(buf) {
					cut = len(buf)
				}
			} else {
				scanFrom := cut - 1
				if scanFrom < 0 {
					scanFrom = 0
				}
				for {
					if i := c.boundary.Scan(buf[scanFrom:]); i >= 0 {
						cut = scanFrom + i
						break
					}
					if c.off >= size {
						cut = len(buf) // unterminated tail: last chunk keeps it
						break
					}
					scanFrom = len(buf) - 1
					var err error
					buf, err = c.fetch(buf, extendStep)
					if err != nil {
						return nil, err
					}
				}
			}
		}
	}

	if cut < len(buf) {
		c.carry = append(c.carry[:0], buf[cut:]...)
	}
	c.emitted += int64(cut)
	ch.backing = buf
	ch.Index = c.index
	ch.Data = buf[:cut:cut]
	ch.Files = append(ch.Files, c.file.Name())
	ch.Sum = sha256.Sum256(ch.Data)
	ch.HasSum = true
	c.index++
	return ch, nil
}
