package chunk

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"supmr/internal/storage"
	"supmr/internal/workload"
)

func memFile(t *testing.T, name string, data []byte) *storage.File {
	t.Helper()
	return storage.BytesFile(name, data, storage.NewNullDevice(storage.NewFakeClock()))
}

// drain collects every chunk of a stream.
func drain(t *testing.T, s Stream) []*Chunk {
	t.Helper()
	var out []*Chunk
	for {
		c, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
}

func TestInterFileReassemblesInput(t *testing.T) {
	text := []byte(strings.Repeat("alpha beta gamma delta\n", 500))
	for _, chunkSize := range []int64{64, 1000, 5000, int64(len(text)), int64(len(text)) * 2} {
		s, err := NewInterFile(memFile(t, "f", text), chunkSize, NewlineBoundary{})
		if err != nil {
			t.Fatal(err)
		}
		chunks := drain(t, s)
		var got []byte
		for i, c := range chunks {
			if c.Index != i {
				t.Errorf("chunk %d has index %d", i, c.Index)
			}
			got = append(got, c.Data...)
		}
		if !bytes.Equal(got, text) {
			t.Fatalf("chunkSize %d: reassembled input differs (%d vs %d bytes)",
				chunkSize, len(got), len(text))
		}
	}
}

func TestInterFileNeverSplitsRecords(t *testing.T) {
	text := []byte(strings.Repeat("some words here\n", 300))
	s, err := NewInterFile(memFile(t, "f", text), 100, NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, s)
	if len(chunks) < 2 {
		t.Fatalf("expected several chunks, got %d", len(chunks))
	}
	for i, c := range chunks {
		if c.Data[len(c.Data)-1] != '\n' {
			t.Errorf("chunk %d does not end at a record boundary", i)
		}
		if int64(len(c.Data)) < 100 && i != len(chunks)-1 {
			t.Errorf("chunk %d smaller than nominal: %d", i, len(c.Data))
		}
	}
}

func TestInterFileCRLFRecords(t *testing.T) {
	const records = 200
	data := make([]byte, records*workload.TeraRecordSize)
	workload.TeraGen{Seed: 1}.Fill()(0, data)
	// A chunk size that lands mid-record forces boundary extension.
	s, err := NewInterFile(memFile(t, "tera", data), 1037, CRLFBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range drain(t, s) {
		n, err := workload.ParseTeraRecords(c.Data, func([]byte) {})
		if err != nil {
			t.Fatalf("chunk holds partial records: %v", err)
		}
		total += n
	}
	if total != records {
		t.Errorf("records across chunks = %d, want %d", total, records)
	}
}

func TestInterFileFixedBoundary(t *testing.T) {
	data := make([]byte, 100*50) // 50 fixed records of 100 bytes
	s, err := NewInterFile(memFile(t, "fixed", data), 333, FixedBoundary{Width: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range drain(t, s) {
		if len(c.Data)%100 != 0 {
			t.Errorf("chunk %d length %d not a record multiple", i, len(c.Data))
		}
	}
}

func TestInterFileUnterminatedTail(t *testing.T) {
	// Input whose final record has no terminator: the last chunk keeps it.
	text := []byte("one\ntwo\nthree") // no trailing newline
	s, err := NewInterFile(memFile(t, "f", text), 5, NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, s)
	var got []byte
	for _, c := range chunks {
		got = append(got, c.Data...)
	}
	if !bytes.Equal(got, text) {
		t.Errorf("reassembly with unterminated tail failed: %q", got)
	}
}

func TestInterFileValidation(t *testing.T) {
	f := memFile(t, "f", []byte("x"))
	if _, err := NewInterFile(nil, 10, NewlineBoundary{}); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := NewInterFile(f, 0, NewlineBoundary{}); err == nil {
		t.Error("zero chunk size accepted")
	}
	if _, err := NewInterFile(f, 10, nil); err == nil {
		t.Error("nil boundary accepted")
	}
}

// Property: for random text and random chunk sizes, inter-file chunking
// conserves bytes and cuts only at newlines.
func TestInterFileProperty(t *testing.T) {
	f := func(seed int64, chunkRaw uint16) bool {
		gen := workload.TextGen{Seed: seed, BlockSize: 512}
		data := make([]byte, 8192)
		gen.Fill()(0, data)
		chunkSize := int64(chunkRaw)%2000 + 1
		s, err := NewInterFile(memFile(t, "p", data), chunkSize, NewlineBoundary{})
		if err != nil {
			return false
		}
		var got []byte
		for {
			c, err := s.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return false
			}
			got = append(got, c.Data...)
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIntraFileGrouping(t *testing.T) {
	// 30 files at 4 per chunk -> 7 chunks of 4 and 1 chunk of 2 (§III-A1).
	var files []Input
	for i := 0; i < 30; i++ {
		files = append(files, memFile(t, "f", []byte(strings.Repeat("x", 10))))
	}
	s, err := NewIntraFile(files, 4)
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, s)
	if len(chunks) != 8 {
		t.Fatalf("got %d chunks, want 8", len(chunks))
	}
	for i := 0; i < 7; i++ {
		if len(chunks[i].Files) != 4 || len(chunks[i].Data) != 40 {
			t.Errorf("chunk %d: %d files, %d bytes; want 4 files, 40 bytes",
				i, len(chunks[i].Files), len(chunks[i].Data))
		}
	}
	if last := chunks[7]; len(last.Files) != 2 || len(last.Data) != 20 {
		t.Errorf("last chunk: %d files, %d bytes; want 2 files, 20 bytes",
			len(last.Files), len(last.Data))
	}
}

func TestIntraFileContent(t *testing.T) {
	a := memFile(t, "a", []byte("AAAA"))
	b := memFile(t, "b", []byte("BB"))
	s, err := NewIntraFile([]Input{a, b}, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, s)
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	if string(chunks[0].Data) != "AAAABB" {
		t.Errorf("coalesced data = %q", chunks[0].Data)
	}
	if chunks[0].Files[0] != "a" || chunks[0].Files[1] != "b" {
		t.Errorf("files = %v", chunks[0].Files)
	}
	if s.TotalBytes() != 6 {
		t.Errorf("TotalBytes = %d, want 6", s.TotalBytes())
	}
}

func TestIntraFileValidation(t *testing.T) {
	if _, err := NewIntraFile(nil, 2); err == nil {
		t.Error("empty file list accepted")
	}
	if _, err := NewIntraFile([]Input{memFile(t, "f", nil)}, 0); err == nil {
		t.Error("zero files-per-chunk accepted")
	}
}

func TestWholeInput(t *testing.T) {
	text := []byte(strings.Repeat("line\n", 100))
	inner, err := NewInterFile(memFile(t, "f", text), 64, NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWholeInput(inner)
	chunks := drain(t, s)
	if len(chunks) != 1 {
		t.Fatalf("whole input produced %d chunks", len(chunks))
	}
	if !bytes.Equal(chunks[0].Data, text) {
		t.Error("whole input data mismatch")
	}
}

func TestSplitBuffer(t *testing.T) {
	text := []byte(strings.Repeat("word one two\n", 100))
	splits := SplitBuffer(text, 8, NewlineBoundary{})
	if len(splits) == 0 || len(splits) > 8 {
		t.Fatalf("got %d splits", len(splits))
	}
	var got []byte
	for i, sp := range splits {
		got = append(got, sp...)
		if sp[len(sp)-1] != '\n' {
			t.Errorf("split %d cut mid-record", i)
		}
	}
	if !bytes.Equal(got, text) {
		t.Error("splits do not cover the buffer")
	}
}

func TestSplitBufferEdgeCases(t *testing.T) {
	if got := SplitBuffer(nil, 4, NewlineBoundary{}); got != nil {
		t.Errorf("nil buffer: %v", got)
	}
	one := SplitBuffer([]byte("abc\n"), 1, NewlineBoundary{})
	if len(one) != 1 {
		t.Errorf("n=1: %d splits", len(one))
	}
	// More splits than records.
	tiny := SplitBuffer([]byte("a\nb\n"), 16, NewlineBoundary{})
	var got []byte
	for _, s := range tiny {
		got = append(got, s...)
	}
	if string(got) != "a\nb\n" {
		t.Errorf("tiny coverage: %q", got)
	}
}

func TestBoundaries(t *testing.T) {
	nb := NewlineBoundary{}
	if !nb.Complete([]byte("x\n")) || nb.Complete([]byte("x")) || !nb.Complete(nil) {
		t.Error("newline Complete wrong")
	}
	if nb.Scan([]byte("ab\ncd")) != 3 || nb.Scan([]byte("abcd")) != -1 {
		t.Error("newline Scan wrong")
	}
	cb := CRLFBoundary{}
	if !cb.Complete([]byte("x\r\n")) || cb.Complete([]byte("x\n")) {
		t.Error("CRLF Complete wrong")
	}
	if cb.Scan([]byte("ab\r\ncd")) != 4 || cb.Scan([]byte("ab\rcd")) != -1 {
		t.Error("CRLF Scan wrong")
	}
	fb := FixedBoundary{Width: 10}
	if !fb.Complete(make([]byte, 20)) || fb.Complete(make([]byte, 15)) {
		t.Error("fixed Complete wrong")
	}
	if fb.Need(15) != 5 || fb.Need(20) != 0 {
		t.Error("fixed Need wrong")
	}
}

func TestInputsFromSet(t *testing.T) {
	clock := storage.NewFakeClock()
	dev := storage.NewNullDevice(clock)
	set := storage.NewFileSet([]*storage.File{
		storage.BytesFile("a", []byte("1"), dev),
		storage.BytesFile("b", []byte("2"), dev),
	})
	inputs := InputsFromSet(set)
	if len(inputs) != 2 || inputs[0].Name() != "a" {
		t.Errorf("InputsFromSet = %v", inputs)
	}
}
