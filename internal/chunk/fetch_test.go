package chunk

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// goDispatch runs waits on fresh goroutines — the concurrency shape of
// the pool-backed dispatch, without needing a pool.
func goDispatch(_ int64, fn func()) func() error {
	done := make(chan struct{})
	go func() { defer close(done); fn() }()
	return func() error { <-done; return nil }
}

// laneInput is an in-memory IssueReader with a per-request byte cap
// (forcing short-read remainder rounds) and a scheduled issue failure,
// for exercising the segmented fetch without a storage device.
type laneInput struct {
	name    string
	data    []byte
	maxRead int // cap bytes served per request (0 = unlimited)
	failAt  int // fail the k-th issue, 1-based (0 = never)
	issues  int
}

func (l *laneInput) Name() string { return l.name }
func (l *laneInput) Size() int64  { return int64(len(l.data)) }

func (l *laneInput) ReadAt(p []byte, off int64) (int, error) {
	w, err := l.IssueReadAt(p, off)
	if err != nil {
		return 0, err
	}
	return w()
}

func (l *laneInput) IssueReadAt(p []byte, off int64) (func() (int, error), error) {
	l.issues++
	if l.failAt > 0 && l.issues == l.failAt {
		return nil, errors.New("issue failed")
	}
	if off >= int64(len(l.data)) {
		return nil, io.EOF
	}
	n := len(p)
	if rem := int(int64(len(l.data)) - off); n > rem {
		n = rem
	}
	if l.maxRead > 0 && n > l.maxRead {
		n = l.maxRead
	}
	q := p[:n]
	return func() (int, error) {
		copy(q, l.data[off:off+int64(n)])
		return n, nil
	}, nil
}

func laneData(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i % 251)
	}
	return data
}

func TestFetchIntoSegmentedMatchesSerial(t *testing.T) {
	data := laneData(64 << 10)
	for _, tc := range []struct {
		name    string
		lanes   int
		maxRead int
		off     int64
		n       int
	}{
		{"whole-4-lanes", 4, 0, 0, 64 << 10},
		{"offset-read", 4, 0, 1000, 40 << 10},
		{"short-read-rounds", 4, 3000, 0, 64 << 10},
		{"more-lanes-than-segments", 16, 0, 0, 9 << 10},
		{"below-segmentation-floor", 4, 0, 5, 2 * minSegment / 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := &laneInput{name: "in", data: data, maxRead: tc.maxRead}
			f := NewFetcher(tc.lanes, goDispatch)
			buf := make([]byte, tc.n)
			if err := f.fetchInto(in, buf, tc.off); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, data[tc.off:tc.off+int64(tc.n)]) {
				t.Fatal("segmented fetch differs from the input bytes")
			}
		})
	}
}

func TestFetchIntoStopsIssuingAfterIssueError(t *testing.T) {
	// Serial-issue semantics: segments past a failed issue are never
	// issued — exactly where a serial read would have stopped — so a
	// fault plan sees the same per-site operation count at any lane
	// count.
	in := &laneInput{name: "in", data: laneData(32 << 10), failAt: 2}
	f := NewFetcher(4, goDispatch)
	err := f.fetchInto(in, make([]byte, 32<<10), 0)
	if err == nil || !strings.Contains(err.Error(), "issue failed") {
		t.Fatalf("err = %v, want the issue failure", err)
	}
	if in.issues != 2 {
		t.Errorf("issued %d reads after a failure at issue 2, want exactly 2", in.issues)
	}
}

func TestFetchIntoJoinErrorWins(t *testing.T) {
	// A dispatch join error (lane panic, pool shutdown) must discard the
	// segment's effects and fail the fetch, even though the wait itself
	// reported success.
	in := &laneInput{name: "in", data: laneData(32 << 10)}
	boom := errors.New("lane died")
	deadDispatch := func(_ int64, fn func()) func() error {
		fn()
		return func() error { return boom }
	}
	f := NewFetcher(4, deadDispatch)
	if err := f.fetchInto(in, make([]byte, 32<<10), 0); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the join error", err)
	}
}

// zeroInput's waits deliver no bytes and no error.
type zeroInput struct{ laneInput }

func (z *zeroInput) IssueReadAt(p []byte, off int64) (func() (int, error), error) {
	return func() (int, error) { return 0, nil }, nil
}

func TestFetchIntoZeroProgressIsUnexpectedEOF(t *testing.T) {
	z := &zeroInput{laneInput{name: "z", data: laneData(32 << 10)}}
	f := NewFetcher(4, goDispatch)
	if err := f.fetchInto(z, make([]byte, 32<<10), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFreelistRecyclesBackingNeverFiles(t *testing.T) {
	f := NewFetcher(1, nil)
	c := f.acquire(1 << 10)
	c.backing = c.backing[:cap(c.backing)]
	c.Data = c.backing
	c.Files = append(c.Files, "a.txt")
	retained := c.Files // what an application keeps past the map wave
	first := &c.backing[0]
	c.Release()

	c2 := f.acquire(512)
	if &c2.backing[:1][0] != first {
		t.Error("freelist did not recycle the backing buffer")
	}
	if c2.Data != nil {
		t.Error("recycled chunk leaked Data")
	}
	// Files must be a fresh slice per chunk: applications may retain the
	// previous chunk's slice past its map wave (the inverted index emits
	// it into the container as posting-list values).
	if c2.Files != nil {
		t.Error("recycled chunk reused the Files slice")
	}
	c2.Files = append(c2.Files, "b.txt")
	if retained[0] != "a.txt" {
		t.Error("new chunk's Files overwrote a slice retained from the released chunk")
	}

	// Release is idempotent and nil-fetcher chunks are release-safe.
	c2.Release()
	c2.Release()
	if got := len(f.list.free); got != 1 {
		t.Errorf("double release grew the freelist to %d", got)
	}
	(&Chunk{}).Release()

	var nilF *Fetcher
	if nilF.Lanes() != 1 {
		t.Error("nil fetcher lanes != 1")
	}
	if c := nilF.acquire(64); c == nil || c.free != nil {
		t.Error("nil fetcher acquire broken")
	}
}

func TestGrowTo(t *testing.T) {
	buf := append(make([]byte, 0, 8), "abc"...)
	grown := growTo(buf, 100)
	if len(grown) != 103 {
		t.Fatalf("len = %d, want 103", len(grown))
	}
	if string(grown[:3]) != "abc" {
		t.Error("growTo lost the existing prefix")
	}
	// Within capacity: no reallocation.
	big := make([]byte, 3, 256)
	if g := growTo(big, 100); cap(g) != 256 || &g[0] != &big[0] {
		t.Error("growTo reallocated within capacity")
	}
	// Doubling: repeated small growth must not reallocate every call.
	var reallocs int
	b := make([]byte, 0, 1)
	for i := 0; i < 1024; i++ {
		before := cap(b)
		b = growTo(b, 1)
		if cap(b) != before {
			reallocs++
		}
	}
	if reallocs > 12 {
		t.Errorf("%d reallocations growing to 1 KiB byte-by-byte — not amortized", reallocs)
	}
}

func TestInterFileWithFetcherRecyclesBuffers(t *testing.T) {
	text := []byte(strings.Repeat("alpha beta gamma delta epsilon\n", 4000))
	s, err := NewInterFile(memFile(t, "f", text), 16<<10, NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetFetcher(NewFetcher(4, goDispatch))
	var got []byte
	backings := map[*byte]bool{}
	for {
		c, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		backings[&c.backing[:1][0]] = true
		got = append(got, c.Data...)
		c.Release()
	}
	if !bytes.Equal(got, text) {
		t.Fatal("fetcher-backed stream reassembly differs from the input")
	}
	// Serial consume-then-release must cycle O(1) buffers, not one per
	// chunk (the stream also keeps a persistent carry scratch).
	if len(backings) > 2 {
		t.Errorf("%d distinct chunk buffers for %d bytes — freelist not recycling", len(backings), len(text))
	}
}
