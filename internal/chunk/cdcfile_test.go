package chunk

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"

	"supmr/internal/workload"
)

func newCDC(t *testing.T, data []byte, min, avg, max int64) *CDCFile {
	t.Helper()
	s, err := NewCDCFile(memFile(t, "f", data), min, avg, max, NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cdcText(n int) []byte {
	buf := make([]byte, n)
	workload.TextGen{Seed: 9}.Fill()(0, buf)
	return buf
}

func TestCDCFileReassemblesInput(t *testing.T) {
	text := cdcText(96 << 10)
	s := newCDC(t, text, 1<<10, 2<<10, 8<<10)
	chunks := drain(t, s)
	var got []byte
	for i, c := range chunks {
		if c.Index != i {
			t.Errorf("chunk %d has index %d", i, c.Index)
		}
		if !c.HasSum {
			t.Errorf("chunk %d missing content hash", i)
		}
		if c.Sum != sha256.Sum256(c.Data) {
			t.Errorf("chunk %d hash does not match its payload", i)
		}
		got = append(got, c.Data...)
	}
	if !bytes.Equal(got, text) {
		t.Fatalf("reassembled input differs (%d vs %d bytes)", len(got), len(text))
	}
	if len(chunks) < 4 {
		t.Fatalf("only %d chunks from %d bytes at avg 2k", len(chunks), len(text))
	}
}

func TestCDCFileKeepsRecordsWhole(t *testing.T) {
	text := []byte(strings.Repeat("a few words per line here\n", 3000))
	s := newCDC(t, text, 512, 1024, 4096)
	chunks := drain(t, s)
	for i, c := range chunks {
		if len(c.Data) == 0 || c.Data[len(c.Data)-1] != '\n' {
			t.Fatalf("chunk %d of %d does not end on a record boundary", i, len(chunks))
		}
	}
}

func TestCDCFileCRLFRecordsWhole(t *testing.T) {
	var b bytes.Buffer
	for i := 0; i < 4000; i++ {
		b.WriteString("key0123456789value")
		b.WriteString("\r\n")
	}
	s, err := NewCDCFile(memFile(t, "f", b.Bytes()), 512, 1024, 4096, CRLFBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range drain(t, s) {
		d := c.Data
		if len(d) < 2 || d[len(d)-2] != '\r' || d[len(d)-1] != '\n' {
			t.Fatalf("chunk %d does not end with CRLF", i)
		}
	}
}

// TestCDCFileAppendStability is the property the memo cache rests on:
// appending bytes to the input must keep every chunk hash before the
// original final chunk identical, so a re-run after an append hits the
// cache for all but the tail.
func TestCDCFileAppendStability(t *testing.T) {
	base := cdcText(128 << 10)
	grown := append(append([]byte{}, base...), cdcText(2<<10)...)

	sums := func(data []byte) [][32]byte {
		var out [][32]byte
		for _, c := range drain(t, newCDC(t, data, 1<<10, 2<<10, 8<<10)) {
			out = append(out, c.Sum)
		}
		return out
	}
	before, after := sums(base), sums(grown)
	if len(before) < 3 {
		t.Fatalf("need several chunks, got %d", len(before))
	}
	stable := before[:len(before)-1]
	if len(after) < len(stable) {
		t.Fatalf("append shrank the chunk list: %d -> %d", len(before), len(after))
	}
	for i, sum := range stable {
		if after[i] != sum {
			t.Fatalf("append shifted content hash of chunk %d (of %d)", i, len(before))
		}
	}
}

// TestCDCFileDeterministicHashes pins that two ingests of identical
// content produce identical chunk hash sequences — the other half of
// the memo key contract.
func TestCDCFileDeterministicHashes(t *testing.T) {
	text := cdcText(64 << 10)
	a := drain(t, newCDC(t, text, 1<<10, 2<<10, 8<<10))
	b := drain(t, newCDC(t, text, 1<<10, 2<<10, 8<<10))
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Sum != b[i].Sum {
			t.Fatalf("chunk %d hashes differ across identical ingests", i)
		}
	}
}

// TestFreeListClearsSum pins that recycled chunk buffers never leak a
// previous chunk's content hash.
func TestFreeListClearsSum(t *testing.T) {
	l := NewFreeList()
	c := l.acquire(16)
	c.Sum = sha256.Sum256([]byte("old"))
	c.HasSum = true
	c.Release()
	c2 := l.acquire(16)
	if c2.HasSum {
		t.Fatal("recycled chunk kept a stale HasSum")
	}
}

func TestCDCFileThroughFetcher(t *testing.T) {
	text := cdcText(64 << 10)
	s := newCDC(t, text, 1<<10, 2<<10, 8<<10)
	s.SetFetcher(NewFetcher(1, nil))
	var got []byte
	var prev *Chunk
	for _, c := range drain(t, Stream(s)) {
		got = append(got, c.Data...)
		if prev != nil {
			prev.Release()
		}
		prev = c
	}
	if !bytes.Equal(got, text) {
		t.Fatal("fetcher-backed cdc stream corrupted the payload")
	}
}
