// Package chunk implements SupMR's ingest chunk management: the
// partitioning of the input into small, similarly-sized units that the
// ingest chunk pipeline streams through the runtime. Both chunking
// strategies from the paper are provided — inter-file chunking (one big
// file split at a user-defined size with record-boundary adjustment) and
// intra-file chunking (several small files coalesced per chunk) — plus
// the in-memory split of an ingested chunk into per-mapper input splits.
package chunk

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"supmr/internal/storage"
)

// Chunk is one ingested unit of input: the unit of the n+1-round SupMR
// pipeline. Data holds the raw bytes after ingest; Files names the input
// files coalesced into the chunk under intra-file chunking.
type Chunk struct {
	Index int
	Data  []byte
	Files []string

	// Sum is the SHA-256 of Data, computed on the ingest path when the
	// stream hashes chunks (CDC ingest for the memo cache). HasSum
	// distinguishes a real hash from a zero value.
	Sum    [32]byte
	HasSum bool

	backing []byte    // full pooled buffer backing Data
	free    *FreeList // freelist to return to on Release; nil when unpooled
}

// Size returns the chunk payload size.
func (c *Chunk) Size() int64 { return int64(len(c.Data)) }

// Release returns the chunk's buffer to its stream's freelist once the
// consumer is done with the bytes — after the map wave that ran over
// Data, or after copying Data elsewhere. Nil-safe and idempotent;
// chunks from streams without a fetcher release as a no-op. After
// Release, Data and Files must no longer be read: the buffer and the
// chunk header are reused for a future chunk.
func (c *Chunk) Release() {
	if c == nil || c.free == nil {
		return
	}
	f := c.free
	c.free = nil
	c.Data = nil
	f.release(c)
}

// Input is any byte source chunkers can ingest from: a simulated local
// file (storage.File), an HDFS file behind a network link (hdfs.File), or
// anything else with a name, a size and positioned reads.
type Input interface {
	Name() string
	Size() int64
	io.ReaderAt
}

// Stream produces the sequence of ingest chunks. Next performs the
// actual (device-throttled) read, so calling Next concurrently with map
// work is exactly the paper's double-buffering. Implementations are not
// safe for concurrent Next calls; the pipeline has a single ingest thread.
type Stream interface {
	// Next ingests and returns the next chunk, or nil, io.EOF when the
	// input is exhausted.
	Next() (*Chunk, error)
	// TotalBytes returns the total input size in bytes.
	TotalBytes() int64
}

// Boundary knows where records end, so that chunking never separates a
// key or value across chunks. The paper's runtime seeks to the nominal
// chunk size and then extends the split point to the end of the value.
type Boundary interface {
	// Complete reports whether buf ends exactly at a record boundary.
	Complete(buf []byte) bool
	// Scan returns the index just past the first record terminator in p,
	// or -1 if p contains none.
	Scan(p []byte) int
	// Need returns the exact number of extra bytes required to finish the
	// record in progress after cur bytes, or -1 when the answer depends
	// on content (delimiter-terminated records).
	Need(cur int64) int64
}

// NewlineBoundary treats '\n' as the record terminator (word count text).
type NewlineBoundary struct{}

// Complete reports whether buf ends with a newline.
func (NewlineBoundary) Complete(buf []byte) bool {
	return len(buf) == 0 || buf[len(buf)-1] == '\n'
}

// Scan finds the first newline.
func (NewlineBoundary) Scan(p []byte) int {
	if i := bytes.IndexByte(p, '\n'); i >= 0 {
		return i + 1
	}
	return -1
}

// Need is content-dependent for newline records.
func (NewlineBoundary) Need(int64) int64 { return -1 }

// CRLFBoundary treats "\r\n" as the terminator, the terasort convention
// the paper cites ("each key-value pair ... is terminated with \r\n").
type CRLFBoundary struct{}

// Complete reports whether buf ends with \r\n.
func (CRLFBoundary) Complete(buf []byte) bool {
	n := len(buf)
	return n == 0 || (n >= 2 && buf[n-2] == '\r' && buf[n-1] == '\n')
}

// Scan finds the first \r\n pair.
func (CRLFBoundary) Scan(p []byte) int {
	for i := 0; i+1 < len(p); i++ {
		if p[i] == '\r' && p[i+1] == '\n' {
			return i + 2
		}
	}
	return -1
}

// Need is content-dependent for delimiter-terminated records.
func (CRLFBoundary) Need(int64) int64 { return -1 }

// FixedBoundary is for fixed-width records (width bytes each): the extra
// bytes needed after a nominal cut are computable without scanning.
type FixedBoundary struct{ Width int64 }

// Complete reports whether buf is a whole number of records.
func (b FixedBoundary) Complete(buf []byte) bool {
	return b.Width <= 0 || int64(len(buf))%b.Width == 0
}

// Scan returns -1; Need is always exact for fixed-width records.
func (b FixedBoundary) Scan(p []byte) int { return -1 }

// Need returns the bytes required to complete the record in progress.
func (b FixedBoundary) Need(cur int64) int64 {
	if b.Width <= 0 {
		return 0
	}
	return (b.Width - cur%b.Width) % b.Width
}

// extendStep is how many bytes the inter-file chunker reads at a time
// while hunting for the record terminator past the nominal cut.
const extendStep = 4096

// InterFile splits one large file into chunks of a nominal size, adjusting
// each split point forward to the next record boundary ("it seeks to the
// user-defined chunk size, checks to see if it is in the middle of a key
// or value, and then continually increases the split point until reaching
// the end of the value", §III-A1). Bytes read past a cut are carried into
// the next chunk, so every input byte crosses the device exactly once.
type InterFile struct {
	file      Input
	chunkSize int64
	boundary  Boundary
	off       int64  // next unread file offset
	emitted   int64  // total bytes already emitted in chunks
	carry     []byte // bytes read past the previous cut (persistent scratch)
	index     int
	fetcher   *Fetcher // optional multi-lane reads + buffer freelist
}

// SetFetcher installs the multi-lane fetcher subsequent Next calls read
// and pool buffers through.
func (c *InterFile) SetFetcher(f *Fetcher) { c.fetcher = f }

// NewInterFile builds the inter-file chunker. chunkSize is the
// user-specified nominal chunk size in bytes.
func NewInterFile(file Input, chunkSize int64, b Boundary) (*InterFile, error) {
	if file == nil {
		return nil, errors.New("chunk: inter-file chunker requires a file")
	}
	if chunkSize <= 0 {
		return nil, fmt.Errorf("chunk: chunk size must be positive, got %d", chunkSize)
	}
	if b == nil {
		return nil, errors.New("chunk: inter-file chunker requires a boundary")
	}
	return &InterFile{file: file, chunkSize: chunkSize, boundary: b}, nil
}

// TotalBytes returns the file size.
func (c *InterFile) TotalBytes() int64 { return c.file.Size() }

// ChunkSize returns the current nominal chunk size.
func (c *InterFile) ChunkSize() int64 { return c.chunkSize }

// SetChunkSize changes the nominal size of subsequent chunks — the hook
// the adaptive chunk-size feedback loop (internal/tuner) drives.
// Non-positive sizes are ignored.
func (c *InterFile) SetChunkSize(n int64) {
	if n > 0 {
		c.chunkSize = n
	}
}

// fetch appends up to want more bytes from the file to buf.
func (c *InterFile) fetch(buf []byte, want int64) ([]byte, error) {
	if rest := c.file.Size() - c.off; want > rest {
		want = rest
	}
	if want <= 0 {
		return buf, nil
	}
	start := len(buf)
	buf = growTo(buf, int(want))
	if err := c.fetcher.fetchInto(c.file, buf[start:], c.off); err != nil {
		return nil, fmt.Errorf("chunk: ingest of chunk %d failed: %w", c.index, err)
	}
	c.off += want
	return buf, nil
}

// Next ingests the next chunk. The device is asked for the nominal chunk
// plus a small margin in one request; the cut lands on the first record
// boundary at or past the nominal size and the remainder carries forward.
func (c *InterFile) Next() (*Chunk, error) {
	size := c.file.Size()
	if c.off >= size && len(c.carry) == 0 {
		return nil, io.EOF
	}
	ch := c.fetcher.acquire(c.chunkSize + extendStep)
	buf := append(ch.backing[:0], c.carry...)
	c.carry = c.carry[:0]

	// One read covering the nominal chunk plus the boundary-hunt margin.
	if int64(len(buf)) < c.chunkSize+extendStep {
		var err error
		buf, err = c.fetch(buf, c.chunkSize+extendStep-int64(len(buf)))
		if err != nil {
			return nil, err
		}
	}

	cut := len(buf)
	if int64(len(buf)) > c.chunkSize {
		nominal := int(c.chunkSize)
		switch {
		case c.boundary.Complete(buf[:nominal]):
			cut = nominal
		default:
			if need := c.boundary.Need(c.emitted + c.chunkSize); need >= 0 {
				// Fixed-width records: exact extension, no scanning.
				cut = nominal + int(need)
				for int64(len(buf)) < int64(cut) && c.off < size {
					var err error
					buf, err = c.fetch(buf, int64(cut-len(buf)))
					if err != nil {
						return nil, err
					}
				}
				if cut > len(buf) {
					cut = len(buf)
				}
			} else {
				// Delimiter-terminated records: scan forward (with one
				// byte of overlap for multi-byte terminators), reading
				// more as needed.
				scanFrom := nominal - 1
				if scanFrom < 0 {
					scanFrom = 0
				}
				for {
					if i := c.boundary.Scan(buf[scanFrom:]); i >= 0 {
						cut = scanFrom + i
						break
					}
					if c.off >= size {
						cut = len(buf) // unterminated tail: last chunk keeps it
						break
					}
					scanFrom = len(buf) - 1
					var err error
					buf, err = c.fetch(buf, extendStep)
					if err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Carry the over-read remainder into the next chunk. Copy it into the
	// persistent carry scratch: the chunk's data slice shares buf's
	// backing array and is handed to mapper threads that run concurrently
	// with the next ingest.
	if cut < len(buf) {
		c.carry = append(c.carry[:0], buf[cut:]...)
	}
	c.emitted += int64(cut)
	ch.backing = buf
	ch.Index = c.index
	ch.Data = buf[:cut:cut]
	ch.Files = append(ch.Files, c.file.Name())
	c.index++
	return ch, nil
}

// IntraFile coalesces filesPerChunk small files into each chunk. If the
// user-defined count exceeds the files left, the last chunk is smaller
// than the rest (30 files at 4 per chunk produce 7 full chunks and one
// chunk of 2, per §III-A1).
type IntraFile struct {
	files         []Input
	filesPerChunk int
	next          int
	index         int
	fetcher       *Fetcher
}

// SetFetcher installs the multi-lane fetcher subsequent Next calls read
// and pool buffers through.
func (c *IntraFile) SetFetcher(f *Fetcher) { c.fetcher = f }

// NewIntraFile builds the intra-file chunker.
func NewIntraFile(files []Input, filesPerChunk int) (*IntraFile, error) {
	if len(files) == 0 {
		return nil, errors.New("chunk: intra-file chunker requires at least one file")
	}
	if filesPerChunk <= 0 {
		return nil, fmt.Errorf("chunk: files per chunk must be positive, got %d", filesPerChunk)
	}
	return &IntraFile{files: files, filesPerChunk: filesPerChunk}, nil
}

// InputsFromSet adapts a storage.FileSet to the chunker input slice.
func InputsFromSet(set *storage.FileSet) []Input {
	inputs := make([]Input, set.Len())
	for i := range inputs {
		inputs[i] = set.At(i)
	}
	return inputs
}

// TotalBytes sums the file set.
func (c *IntraFile) TotalBytes() int64 {
	var t int64
	for _, f := range c.files {
		t += f.Size()
	}
	return t
}

// Next ingests the next group of files into one chunk, growing the
// allocation as files are appended so the whole chunk is collocated in
// RAM.
func (c *IntraFile) Next() (*Chunk, error) {
	if c.next >= len(c.files) {
		return nil, io.EOF
	}
	// Start from space equal to one file and grow in place, as the
	// runtime described in §III-A1 does; the pooled buffer keeps its
	// high-water capacity across chunks, so steady-state rounds reuse one
	// allocation instead of re-growing per group.
	first := c.files[c.next]
	ch := c.fetcher.acquire(first.Size())
	buf := ch.backing[:0]
	for k := 0; k < c.filesPerChunk && c.next < len(c.files); k++ {
		f := c.files[c.next]
		start := len(buf)
		buf = growTo(buf, int(f.Size()))
		if err := c.fetcher.fetchInto(f, buf[start:], 0); err != nil {
			return nil, fmt.Errorf("chunk: ingest of file %q failed: %w", f.Name(), err)
		}
		ch.Files = append(ch.Files, f.Name())
		c.next++
	}
	ch.backing = buf
	ch.Index = c.index
	ch.Data = buf
	c.index++
	return ch, nil
}

// WholeInput delivers the entire input as a single chunk: the traditional
// runtime's ingest phase ("none" rows of Table II).
type WholeInput struct {
	inner Stream
	done  bool
}

// NewWholeInput wraps any stream, concatenating everything it produces
// into one chunk.
func NewWholeInput(inner Stream) *WholeInput { return &WholeInput{inner: inner} }

// TotalBytes returns the wrapped stream's size.
func (c *WholeInput) TotalBytes() int64 { return c.inner.TotalBytes() }

// Next ingests the whole input at once.
func (c *WholeInput) Next() (*Chunk, error) {
	if c.done {
		return nil, io.EOF
	}
	c.done = true
	var buf []byte
	var names []string
	for {
		ch, err := c.inner.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		buf = append(buf, ch.Data...)
		names = append(names, ch.Files...)
		ch.Release()
	}
	return &Chunk{Index: 0, Data: buf, Files: names}, nil
}

// growTo extends buf by n bytes, reallocating with amortized doubling
// when capacity runs out. Unlike append(buf, make([]byte, n)...), it
// never materializes a temporary n-byte slice.
func growTo(buf []byte, n int) []byte {
	need := len(buf) + n
	if cap(buf) < need {
		c := 2 * cap(buf)
		if c < need {
			c = need
		}
		nb := make([]byte, len(buf), c)
		copy(nb, buf)
		buf = nb
	}
	return buf[:need]
}

// readFull fills buf from f starting at off.
func readFull(f Input, buf []byte, off int64) error {
	for len(buf) > 0 {
		n, err := f.ReadAt(buf, off)
		if n > 0 {
			buf = buf[n:]
			off += int64(n)
			continue
		}
		if err != nil {
			return err
		}
		return io.ErrUnexpectedEOF
	}
	return nil
}

// SplitBuffer cuts an in-memory chunk into at most n input splits on
// record boundaries (the traditional MapReduce input splits mappers work
// on). Splits are views into buf, not copies. All bytes of buf appear in
// exactly one split.
func SplitBuffer(buf []byte, n int, b Boundary) [][]byte {
	if n <= 1 || len(buf) == 0 {
		if len(buf) == 0 {
			return nil
		}
		return [][]byte{buf}
	}
	splits := make([][]byte, 0, n)
	target := len(buf) / n
	if target == 0 {
		target = 1
	}
	start := 0
	for i := 0; i < n-1 && start < len(buf); i++ {
		end := start + target
		if end >= len(buf) {
			break
		}
		// Advance to a record boundary.
		if need := b.Need(int64(end)); need >= 0 {
			end += int(need)
		} else if j := b.Scan(buf[end:]); j >= 0 {
			end += j
		} else {
			end = len(buf)
		}
		if end > len(buf) {
			end = len(buf)
		}
		if end > start {
			splits = append(splits, buf[start:end])
			start = end
		}
	}
	if start < len(buf) {
		splits = append(splits, buf[start:])
	}
	return splits
}

// Resizable is implemented by streams whose chunk granularity can be
// changed mid-job; the SupMR pipeline uses it to apply the adaptive
// chunk-size feedback loop.
type Resizable interface {
	Stream
	ChunkSize() int64
	SetChunkSize(n int64)
}

// Hybrid combines inter- and intra-file chunking (the "hybrid
// inter/intra-file chunking approach" §III-A1 mentions but does not
// implement): small files coalesce until a chunk reaches the nominal
// size, while files larger than the nominal size are split inter-file.
// Chunks therefore have similar sizes regardless of the input's file
// size distribution.
type Hybrid struct {
	files     []Input
	chunkSize int64
	boundary  Boundary

	next    int
	cur     *InterFile // active splitter for an oversized file
	index   int
	fetcher *Fetcher
}

// SetFetcher installs the multi-lane fetcher subsequent Next calls read
// and pool buffers through; an active inter-file splitter inherits it.
func (h *Hybrid) SetFetcher(f *Fetcher) {
	h.fetcher = f
	if h.cur != nil {
		h.cur.SetFetcher(f)
	}
}

// NewHybrid builds the hybrid chunker.
func NewHybrid(files []Input, chunkSize int64, b Boundary) (*Hybrid, error) {
	if len(files) == 0 {
		return nil, errors.New("chunk: hybrid chunker requires at least one file")
	}
	if chunkSize <= 0 {
		return nil, fmt.Errorf("chunk: chunk size must be positive, got %d", chunkSize)
	}
	if b == nil {
		return nil, errors.New("chunk: hybrid chunker requires a boundary")
	}
	return &Hybrid{files: files, chunkSize: chunkSize, boundary: b}, nil
}

// TotalBytes sums the file set.
func (h *Hybrid) TotalBytes() int64 {
	var t int64
	for _, f := range h.files {
		t += f.Size()
	}
	return t
}

// Next produces the next similarly-sized chunk.
func (h *Hybrid) Next() (*Chunk, error) {
	// Continue splitting an oversized file if one is active.
	if h.cur != nil {
		c, err := h.cur.Next()
		if err == nil {
			c.Index = h.index
			h.index++
			return c, nil
		}
		if !errors.Is(err, io.EOF) {
			return nil, err
		}
		h.cur = nil
	}
	if h.next >= len(h.files) {
		return nil, io.EOF
	}
	f := h.files[h.next]
	if f.Size() > h.chunkSize {
		// Oversized file: split it inter-file.
		h.next++
		inter, err := NewInterFile(f, h.chunkSize, h.boundary)
		if err != nil {
			return nil, err
		}
		inter.SetFetcher(h.fetcher)
		h.cur = inter
		return h.Next()
	}
	// Coalesce small files until the nominal size is reached.
	ch := h.fetcher.acquire(h.chunkSize)
	buf := ch.backing[:0]
	for h.next < len(h.files) {
		g := h.files[h.next]
		if g.Size() > h.chunkSize {
			break // oversized file starts its own chunks
		}
		if len(ch.Files) > 0 && int64(len(buf))+g.Size() > h.chunkSize {
			break
		}
		start := len(buf)
		buf = growTo(buf, int(g.Size()))
		if err := h.fetcher.fetchInto(g, buf[start:], 0); err != nil {
			return nil, fmt.Errorf("chunk: hybrid ingest of %q failed: %w", g.Name(), err)
		}
		ch.Files = append(ch.Files, g.Name())
		h.next++
	}
	ch.backing = buf
	ch.Index = h.index
	ch.Data = buf
	h.index++
	return ch, nil
}
