package chunk

import (
	"bytes"
	"strings"
	"testing"
)

func TestHybridCoalescesSmallFiles(t *testing.T) {
	// Four 10-byte files with a 25-byte chunk: two files per chunk.
	var files []Input
	for i := 0; i < 4; i++ {
		files = append(files, memFile(t, "small", []byte("aaaa bbbb\n")))
	}
	h, err := NewHybrid(files, 25, NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, h)
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks, want 2", len(chunks))
	}
	for i, c := range chunks {
		if len(c.Files) != 2 || len(c.Data) != 20 {
			t.Errorf("chunk %d: %d files, %d bytes", i, len(c.Files), len(c.Data))
		}
	}
}

func TestHybridSplitsOversizedFiles(t *testing.T) {
	big := []byte(strings.Repeat("0123456789abcde\n", 64)) // 1024 B
	small := []byte("tiny file one\n")
	files := []Input{
		memFile(t, "small1", small),
		memFile(t, "big", big),
		memFile(t, "small2", small),
	}
	h, err := NewHybrid(files, 256, NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, h)
	// small1 alone (next file is oversized), ~4 chunks of big, small2.
	if len(chunks) < 5 {
		t.Fatalf("got %d chunks, want >= 5", len(chunks))
	}
	var got []byte
	for _, c := range chunks {
		got = append(got, c.Data...)
	}
	want := append(append(append([]byte(nil), small...), big...), small...)
	if !bytes.Equal(got, want) {
		t.Error("hybrid reassembly mismatch")
	}
	// The big file's chunks must end at record boundaries.
	for i, c := range chunks {
		if c.Data[len(c.Data)-1] != '\n' {
			t.Errorf("chunk %d cut mid-record", i)
		}
	}
	// Chunk indices are sequential across modes.
	for i, c := range chunks {
		if c.Index != i {
			t.Errorf("chunk %d has index %d", i, c.Index)
		}
	}
}

func TestHybridSimilarSizes(t *testing.T) {
	// Mixed file sizes: resulting chunk sizes must cluster near nominal
	// (within a factor of ~2 except the tails).
	var files []Input
	for i := 0; i < 10; i++ {
		files = append(files, memFile(t, "s", []byte(strings.Repeat("w\n", 50)))) // 100 B
	}
	files = append(files, memFile(t, "big", []byte(strings.Repeat("word\n", 400)))) // 2000 B
	h, err := NewHybrid(files, 500, NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, h)
	var total int64
	for _, c := range chunks {
		total += c.Size()
		if c.Size() > 1100 {
			t.Errorf("chunk of %d bytes far exceeds nominal 500", c.Size())
		}
	}
	if total != h.TotalBytes() {
		t.Errorf("bytes conserved: got %d, want %d", total, h.TotalBytes())
	}
}

func TestHybridValidation(t *testing.T) {
	f := memFile(t, "f", []byte("x\n"))
	if _, err := NewHybrid(nil, 10, NewlineBoundary{}); err == nil {
		t.Error("empty file list accepted")
	}
	if _, err := NewHybrid([]Input{f}, 0, NewlineBoundary{}); err == nil {
		t.Error("zero chunk size accepted")
	}
	if _, err := NewHybrid([]Input{f}, 10, nil); err == nil {
		t.Error("nil boundary accepted")
	}
}

func TestInterFileResize(t *testing.T) {
	text := []byte(strings.Repeat("0123456789abcde\n", 256)) // 4096 B
	s, err := NewInterFile(memFile(t, "f", text), 256, NewlineBoundary{})
	if err != nil {
		t.Fatal(err)
	}
	if s.ChunkSize() != 256 {
		t.Errorf("ChunkSize = %d", s.ChunkSize())
	}
	first, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	s.SetChunkSize(1024)
	s.SetChunkSize(0) // ignored
	if s.ChunkSize() != 1024 {
		t.Errorf("ChunkSize after resize = %d", s.ChunkSize())
	}
	second, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if second.Size() <= first.Size() {
		t.Errorf("resized chunk %d not larger than first %d", second.Size(), first.Size())
	}
	// Full coverage still holds.
	got := append(append([]byte(nil), first.Data...), second.Data...)
	for _, c := range drain(t, s) {
		got = append(got, c.Data...)
	}
	if !bytes.Equal(got, text) {
		t.Error("resized stream lost bytes")
	}
}

var _ Resizable = (*InterFile)(nil)
