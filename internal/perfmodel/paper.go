package perfmodel

import (
	"fmt"
	"strings"
	"time"

	"supmr/internal/metrics"
)

// PaperRow is one row of the paper's Table II, in seconds.
type PaperRow struct {
	App     string
	Label   string // chunk size label
	Total   float64
	Read    float64 // read, or fused read+map for SupMR rows
	Map     float64 // 0 when fused
	Reduce  float64
	Merge   float64
	Fused   bool
	ChunkGB int64 // 0 = none
}

// PaperTable2 is the paper's Table II verbatim.
var PaperTable2 = []PaperRow{
	{App: "wordcount", Label: "none", Total: 471.75, Read: 403.90, Map: 67.41, Reduce: 0.03, Merge: 0.01},
	{App: "wordcount", Label: "1GB", Total: 407.58, Read: 406.14, Reduce: 1.08, Merge: 0.01, Fused: true, ChunkGB: 1},
	{App: "wordcount", Label: "50GB", Total: 429.76, Read: 423.51, Reduce: 0.08, Merge: 0.01, Fused: true, ChunkGB: 50},
	{App: "sort", Label: "none", Total: 397.31, Read: 182.78, Map: 6.33, Reduce: 7.72, Merge: 191.23},
	{App: "sort", Label: "1GB", Total: 272.58, Read: 196.86, Reduce: 9.04, Merge: 61.14, Fused: true, ChunkGB: 1},
}

// ModelRow pairs a paper row with the model's prediction for the same
// configuration.
type ModelRow struct {
	Paper PaperRow
	Model *JobModel
}

// ModelTable2 runs the model for every Table II configuration.
func ModelTable2() []ModelRow {
	m := Testbed()
	var rows []ModelRow
	for _, pr := range PaperTable2 {
		var p Profile
		var size int64
		switch pr.App {
		case "wordcount":
			p, size = WordCount(), int64(WordCountInputBytes)
		case "sort":
			p, size = Sort(), int64(SortInputBytes)
		}
		var j *JobModel
		if pr.ChunkGB == 0 && !pr.Fused {
			j = Baseline(p, m, size)
		} else {
			j = SupMR(p, m, size, pr.ChunkGB*GB)
		}
		rows = append(rows, ModelRow{Paper: pr, Model: j})
	}
	return rows
}

// modelPhase extracts the model's value for a paper column.
func modelPhase(j *JobModel, fused bool) (read, mp, reduce, merge float64) {
	if fused {
		read = j.Times.Get(metrics.PhaseReadMap).Seconds()
	} else {
		read = j.Times.Get(metrics.PhaseRead).Seconds()
		mp = j.Times.Get(metrics.PhaseMap).Seconds()
	}
	reduce = j.Times.Get(metrics.PhaseReduce).Seconds()
	merge = j.Times.Get(metrics.PhaseMerge).Seconds()
	return
}

// FormatComparison renders a paper-vs-model table for EXPERIMENTS.md.
func FormatComparison(rows []ModelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s | %9s %9s | %9s %9s | %8s %8s | %8s %8s | %8s %8s\n",
		"app", "chunk", "total(P)", "total(M)", "read(P)", "read(M)", "map(P)", "map(M)", "red(P)", "red(M)", "mrg(P)", "mrg(M)")
	for _, r := range rows {
		read, mp, red, mrg := modelPhase(r.Model, r.Paper.Fused)
		mapP, mapM := fmtCell(r.Paper.Map), fmtCell(mp)
		if r.Paper.Fused {
			mapP, mapM = "(fused)", "(fused)"
		}
		fmt.Fprintf(&b, "%-10s %-6s | %8.2fs %8.2fs | %8.2fs %8.2fs | %8s %8s | %7.2fs %7.2fs | %7.2fs %7.2fs\n",
			r.Paper.App, r.Paper.Label,
			r.Paper.Total, r.Model.Times.Total.Seconds(),
			r.Paper.Read, read,
			mapP, mapM,
			r.Paper.Reduce, red,
			r.Paper.Merge, mrg)
	}
	return b.String()
}

func fmtCell(v float64) string { return fmt.Sprintf("%.2fs", v) }

// RelErr returns |model-paper|/paper, guarding small denominators.
func RelErr(paper, model float64) float64 {
	if paper < 0.5 {
		// Sub-half-second cells carry one significant digit in the paper;
		// compare absolutely instead.
		d := model - paper
		if d < 0 {
			d = -d
		}
		return d
	}
	d := model - paper
	if d < 0 {
		d = -d
	}
	return d / paper
}

// PaperSpeedups are the headline claims (§VI) the reproduction must
// preserve in shape.
type PaperSpeedups struct {
	WCTotalMin, WCTotalMax     float64 // 1.10x - 1.16x total
	SortTotal                  float64 // 1.46x total
	SortMerge                  float64 // ~3.13x merge
	WCReadMapMin, WCReadMapMax float64 // 1.12x - 1.16x ingest/map
}

// Claims returns the paper's reported speedup band.
func Claims() PaperSpeedups {
	return PaperSpeedups{
		WCTotalMin: 1.10, WCTotalMax: 1.16,
		SortTotal: 1.46, SortMerge: 3.13,
		WCReadMapMin: 1.12, WCReadMapMax: 1.16,
	}
}

// Fig7LinkBW is the case study's shared 1 Gbit link in bytes/sec.
const Fig7LinkBW = 125e6

// Fig7Chunk is the chunk size used for the modeled Fig. 7 pipeline run.
const Fig7Chunk = 1 * GB

// ModelFig7 returns the modeled baseline and SupMR runs of the case
// study and the resulting speedup in seconds.
func ModelFig7() (baseline, supmr *JobModel, savedSeconds float64) {
	b, s := HDFSCase(WordCount(), Testbed(), int64(HDFSInputBytes), Fig7Chunk, Fig7LinkBW)
	return b, s, b.Times.Total.Seconds() - s.Times.Total.Seconds()
}

// Fig3Durations returns the modeled OpenMP-vs-MapReduce sort comparison:
// the MapReduce baseline total, the OpenMP total, and the compute-phase
// difference (the paper reports the MapReduce compute phase 214 s longer
// yet total time-to-result 192 s shorter... for OpenMP 192 s slower).
func Fig3Durations() (mrTotal, ompTotal time.Duration, computeDelta, totalDelta time.Duration) {
	p, m := Sort(), Testbed()
	mr := Baseline(p, m, int64(SortInputBytes))
	omp := OpenMP(p, m, int64(SortInputBytes))
	mrCompute := mr.Times.Total - mr.Times.Get(metrics.PhaseRead)
	ompCompute := omp.Times.Get(metrics.PhaseMerge)
	return mr.Times.Total, omp.Times.Total, mrCompute - ompCompute, omp.Times.Total - mr.Times.Total
}
