// Package perfmodel is an analytic/discrete-event model of both runtimes
// at full paper scale. The execution packages (internal/core,
// internal/mapreduce) run real computations against scaled-down inputs;
// this package complements them by running the paper's exact
// configurations — 155 GB word count and 60 GB sort on a 32-context
// machine over a 384 MB/s RAID-0, and the 30 GB / 1 Gbit HDFS case
// study — in microseconds, reproducing the phase times of Table II and
// synthesizing the utilization traces of Figures 1, 3, 5, 6 and 7.
//
// Rates are calibrated from the paper's own measurements (each constant
// cites the Table II cell or figure it derives from). The model's value
// is the *structure*: the n+1-round pipeline recurrence, the halving
// worker counts of the pairwise merge, and the single full-width round of
// the p-way merge all follow the algorithms, so chunk-size sweeps and
// crossovers are predictions, not curve fits.
package perfmodel

import (
	"fmt"
	"time"

	"supmr/internal/metrics"
)

// Machine describes the modeled hardware.
type Machine struct {
	// Contexts is the number of hardware contexts (testbed: 2x8 cores
	// with hyperthreading = 32).
	Contexts int
	// ReadBW is the primary-storage sequential read bandwidth in
	// bytes/sec (testbed RAID-0: 384 MB/s reported maximum).
	ReadBW float64
	// RoundOverhead is the per-round cost of the ingest pipeline's
	// thread create/destroy and synchronization. Calibrated from Table
	// II word count: read+map with 1 GB chunks is 406.14 s vs 403.90 s of
	// raw read + one chunk's map, leaving ~1.8 s over 155 rounds.
	RoundOverhead time.Duration
}

// Testbed returns the paper's machine.
func Testbed() Machine {
	return Machine{
		Contexts:      32,
		ReadBW:        384e6,
		RoundOverhead: 12 * time.Millisecond,
	}
}

// Profile holds the per-application calibrated rates.
type Profile struct {
	Name string
	// ReadEff scales the machine read bandwidth for this input (the
	// sort input streams slightly slower than word count's on the
	// testbed: 60e9/182.78s = 328 MB/s vs 155e9/403.9s = 384 MB/s).
	ReadEff float64
	// MapAggRate is the aggregate map throughput in bytes/sec with all
	// contexts mapping.
	MapAggRate float64
	// ParseRate1T is the single-threaded parse rate (bytes/sec) of the
	// OpenMP-style baseline, which ingests and parses with one thread.
	ParseRate1T float64
	// RecordBytes is bytes per input record (terasort: 100).
	RecordBytes int64
	// IntermediatePerByte is intermediate records entering merge per
	// input byte (sort: 1/100; word count: ~0 — vocabulary-sized).
	IntermediatePerByte float64
	// IntermediateFloor is the minimum intermediate record count
	// (word count: vocabulary size).
	IntermediateFloor int64
	// ReduceBase is the fixed reduce-phase time.
	ReduceBase time.Duration
	// ReducePerWave is added per map wave: the persistent container
	// accumulates per-wave bookkeeping reducers must walk (Table II
	// word count: reduce grows 0.03 s -> 1.08 s over 155 waves).
	ReducePerWave time.Duration
	// Runs is the number of sorted runs entering the merge phase
	// (≈ reduce partitions).
	Runs int
	// SortRunsTime is the parallel sort-small-lists prefix of the merge
	// phase (the initial high-utilization plateau of Fig. 1's merge).
	SortRunsTime time.Duration
	// MergeElem is the pairwise-merge cost per element per round on one
	// thread. Calibrated from Table II sort: 191.23 s total merge.
	MergeElem time.Duration
	// PWayRate is the aggregate p-way merge throughput in records/sec
	// (Table II sort: 61.14 s for 600 M records less the run-sort
	// prefix).
	PWayRate float64
	// CleanupBase is the fixed setup+cleanup time the paper excludes
	// from its phase columns but includes in the total ("all job
	// execution times do not add up to the total execution time").
	CleanupBase time.Duration
	// AllocPerByte charges setup/cleanup time proportional to the
	// largest single ingest allocation (zeroing and later freeing a
	// 60 GB buffer is not free; chunked ingest allocates per chunk).
	AllocPerByte float64 // seconds per byte
	// OverlapReadPenalty is the fractional ingest slowdown while map
	// workers run concurrently — the memory-bandwidth contention of the
	// paper's title. Sort's mappers move every ingested byte again
	// (building the key-pointer array), slowing overlapped reads ~7%
	// (Table II: fused read+map 196.86 s vs 182.78 s raw read);
	// word count's mappers touch far less memory per input byte.
	OverlapReadPenalty float64
}

// WordCount returns the calibrated word count profile (155 GB input).
func WordCount() Profile {
	return Profile{
		Name:    "wordcount",
		ReadEff: 1.0,
		// Table II: map 67.41 s over 155e9 bytes = 2.30 GB/s aggregate.
		MapAggRate:  155e9 / 67.41,
		ParseRate1T: 156e6,
		RecordBytes: 8, // ~average word+separator
		// Combiner collapses the input to the vocabulary.
		IntermediatePerByte: 0,
		IntermediateFloor:   50000,
		ReduceBase:          30 * time.Millisecond,
		// 0.03 s -> 1.08 s over 155 waves: ~6.8 ms/wave.
		ReducePerWave: 6800 * time.Microsecond,
		Runs:          64,
		SortRunsTime:  5 * time.Millisecond,
		MergeElem:     100 * time.Nanosecond,
		PWayRate:      20e6,
		// Table II totals exceed the phase sums by ~0.4 s for all word
		// count rows.
		CleanupBase:        370 * time.Millisecond,
		AllocPerByte:       0,
		OverlapReadPenalty: 0,
	}
}

// Sort returns the calibrated sort profile (60 GB input, 600 M records).
func Sort() Profile {
	return Profile{
		Name: "sort",
		// 60e9 / 182.78 s = 328 MB/s vs the 384 MB/s nominal.
		ReadEff: (60e9 / 182.78) / 384e6,
		// Table II: map 6.33 s over 60e9 bytes = 9.5 GB/s (key extraction).
		MapAggRate: 60e9 / 6.33,
		// Calibrated so the OpenMP total lands 192 s above the MapReduce
		// baseline (Fig. 3): single-threaded parse of 60e9 bytes in ~366 s.
		ParseRate1T:         163.9e6,
		RecordBytes:         100,
		IntermediatePerByte: 1.0 / 100,
		IntermediateFloor:   0,
		// Table II: reduce 7.72 s baseline.
		ReduceBase:    7720 * time.Millisecond,
		ReducePerWave: 22 * time.Millisecond,
		Runs:          256,
		// Fig. 1: the merge interval opens with a high-utilization
		// parallel sort of the small lists.
		SortRunsTime: 30 * time.Second,
		// Remaining 161.2 s of pairwise merging over 600 M records:
		// sum over rounds of N*c/active with active halving from 32
		// (see pairwiseMergeTime) gives c ≈ 132 ns.
		MergeElem: 132 * time.Nanosecond,
		// 61.14 s total p-way merge - 30 s run sort = 31.1 s for 600 M
		// records ≈ 19.3 M records/s aggregate.
		PWayRate: 19.3e6,
		// Sort totals exceed phase sums by 9.25 s (baseline, one 60 GB
		// ingest buffer) and 5.54 s (1 GB chunks): base 5.43 s plus
		// ~64 ms per GB of the largest single allocation.
		CleanupBase:        5430 * time.Millisecond,
		AllocPerByte:       0.0636e-9,
		OverlapReadPenalty: 0.0734,
	}
}

// JobModel is the model's output for one configuration.
type JobModel struct {
	Label    string
	Times    metrics.PhaseTimes
	Segments []Segment // utilization segments for trace synthesis
	Waves    int       // map waves (rounds)
	Rounds   int       // merge rounds performed
}

// Trace synthesizes the collectl-style utilization trace of the modeled
// run with the given bucket width.
func (j *JobModel) Trace(m Machine, bucket time.Duration) *metrics.Trace {
	return BuildTrace(j.Segments, m.Contexts, bucket, j.Times.Total)
}

func (p Profile) readTime(m Machine, bytes int64) time.Duration {
	return time.Duration(float64(bytes) / (m.ReadBW * p.ReadEff) * float64(time.Second))
}

func (p Profile) mapTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / p.MapAggRate * float64(time.Second))
}

func (p Profile) intermediate(bytes int64) int64 {
	n := int64(float64(bytes) * p.IntermediatePerByte)
	if n < p.IntermediateFloor {
		n = p.IntermediateFloor
	}
	return n
}

// pairwiseMergeTime models the iterative merge: every round rescans all
// n elements; the number of concurrently mergeable pairs halves each
// round, so active workers are min(contexts, pairs). Returns total time,
// per-round durations and active-worker counts (for the trace's "step"
// curve).
func pairwiseMergeTime(n int64, runs, contexts int, elem time.Duration) (time.Duration, []time.Duration, []int) {
	var total time.Duration
	var durs []time.Duration
	var active []int
	for r := runs; r > 1; r = (r + 1) / 2 {
		pairs := r / 2
		workers := contexts
		if pairs < workers {
			workers = pairs
		}
		d := time.Duration(float64(n) * elem.Seconds() / float64(workers) * float64(time.Second))
		durs = append(durs, d)
		active = append(active, workers)
		total += d
	}
	return total, durs, active
}

// pwayMergeTime models SupMR's single-round p-way merge.
func pwayMergeTime(n int64, p Profile) time.Duration {
	return time.Duration(float64(n) / p.PWayRate * float64(time.Second))
}

// Baseline models the traditional runtime (Table II "none" rows):
// sequential ingest, one map wave, reduce, iterative pairwise merge.
func Baseline(p Profile, m Machine, bytes int64) *JobModel {
	j := &JobModel{Label: "none", Waves: 1}
	var t time.Duration

	read := p.readTime(m, bytes)
	j.Times.Set(metrics.PhaseRead, read)
	j.Segments = append(j.Segments, Segment{Start: t, End: t + read, IOWait: 1, Sys: 0.3})
	t += read

	mp := p.mapTime(bytes)
	j.Times.Set(metrics.PhaseMap, mp)
	j.Segments = append(j.Segments, Segment{Start: t, End: t + mp, User: float64(m.Contexts)})
	t += mp

	red := p.ReduceBase
	j.Times.Set(metrics.PhaseReduce, red)
	j.Segments = append(j.Segments, Segment{Start: t, End: t + red, User: float64(m.Contexts)})
	t += red

	n := p.intermediate(bytes)
	mergePair, durs, active := pairwiseMergeTime(n, p.Runs, m.Contexts, p.MergeElem)
	merge := p.SortRunsTime + mergePair
	j.Times.Set(metrics.PhaseMerge, merge)
	j.Rounds = len(durs)
	// Run-sorting prefix at full width, then the halving steps.
	j.Segments = append(j.Segments, Segment{Start: t, End: t + p.SortRunsTime, User: float64(m.Contexts)})
	t += p.SortRunsTime
	for i, d := range durs {
		j.Segments = append(j.Segments, Segment{Start: t, End: t + d, User: float64(active[i])})
		t += d
	}
	t += p.cleanup(bytes, j)
	j.Times.Total = t
	return j
}

// cleanup returns the setup+cleanup time for a run whose largest single
// ingest allocation covers largestAlloc bytes, recording it on the job.
func (p Profile) cleanup(largestAlloc int64, j *JobModel) time.Duration {
	d := p.CleanupBase + time.Duration(p.AllocPerByte*float64(largestAlloc)*float64(time.Second))
	j.Times.Set(metrics.PhaseCleanup, d)
	return d
}

// SupMR models the ingest chunk pipeline (n+1 rounds) with the p-way
// merge. chunkBytes <= 0 degenerates to a single chunk.
func SupMR(p Profile, m Machine, bytes, chunkBytes int64) *JobModel {
	if chunkBytes <= 0 || chunkBytes > bytes {
		chunkBytes = bytes
	}
	j := &JobModel{Label: fmt.Sprintf("%dB-chunks", chunkBytes)}
	var chunks []int64
	for rem := bytes; rem > 0; {
		c := chunkBytes
		if c > rem {
			c = rem
		}
		chunks = append(chunks, c)
		rem -= c
	}
	n := len(chunks)
	j.Waves = n

	var t time.Duration
	start := t
	// Round 0: serial ingest of the first chunk.
	d0 := p.readTime(m, chunks[0])
	j.Segments = append(j.Segments, Segment{Start: t, End: t + d0, IOWait: 1, Sys: 0.3})
	t += d0
	// Rounds 1..n-1: ingest chunk i+1 while mapping chunk i. Overlapped
	// ingest pays the memory-bandwidth contention penalty.
	for i := 0; i < n-1; i++ {
		ing := time.Duration(float64(p.readTime(m, chunks[i+1])) * (1 + p.OverlapReadPenalty))
		mp := p.mapTime(chunks[i])
		round := ing
		if mp > round {
			round = mp
		}
		round += m.RoundOverhead
		j.Segments = append(j.Segments,
			Segment{Start: t, End: t + ing, IOWait: 1, Sys: 0.3},
			Segment{Start: t, End: t + mp, User: float64(m.Contexts)},
		)
		t += round
	}
	// Final round: map the last chunk.
	mp := p.mapTime(chunks[n-1])
	j.Segments = append(j.Segments, Segment{Start: t, End: t + mp, User: float64(m.Contexts)})
	t += mp
	j.Times.Set(metrics.PhaseReadMap, t-start)

	red := p.ReduceBase + time.Duration(n)*p.ReducePerWave
	j.Times.Set(metrics.PhaseReduce, red)
	j.Segments = append(j.Segments, Segment{Start: t, End: t + red, User: float64(m.Contexts)})
	t += red

	inter := p.intermediate(bytes)
	merge := p.SortRunsTime + pwayMergeTime(inter, p)
	j.Times.Set(metrics.PhaseMerge, merge)
	j.Rounds = 1
	j.Segments = append(j.Segments, Segment{Start: t, End: t + merge, User: float64(m.Contexts)})
	t += merge

	t += p.cleanup(chunkBytes, j)
	j.Times.Total = t
	return j
}

// OpenMP models the Fig. 3 thread-library sort baseline: sequential
// ingest, sequential single-threaded parse, then a fast parallel sort.
func OpenMP(p Profile, m Machine, bytes int64) *JobModel {
	j := &JobModel{Label: "openmp", Waves: 1, Rounds: 1}
	var t time.Duration

	read := p.readTime(m, bytes)
	j.Times.Set(metrics.PhaseRead, read)
	j.Segments = append(j.Segments, Segment{Start: t, End: t + read, IOWait: 1, Sys: 0.3})
	t += read

	parse := time.Duration(float64(bytes) / p.ParseRate1T * float64(time.Second))
	j.Times.Set(metrics.PhaseMap, parse)
	j.Segments = append(j.Segments, Segment{Start: t, End: t + parse, User: 1})
	t += parse

	n := p.intermediate(bytes)
	sortT := time.Duration(float64(n) / p.PWayRate * float64(time.Second))
	j.Times.Set(metrics.PhaseMerge, sortT)
	j.Segments = append(j.Segments, Segment{Start: t, End: t + sortT, User: float64(m.Contexts)})
	t += sortT

	t += p.cleanup(bytes, j)
	j.Times.Total = t
	return j
}

// HDFSCase models Fig. 7: word count over a 32-node HDFS behind one
// 1 Gbit link. The baseline copies everything to the compute node first
// (the copied data is then in memory, so no second read is paid); SupMR
// pipelines ingest chunks from HDFS with map waves. linkBW is the shared
// link bandwidth in bytes/sec.
func HDFSCase(p Profile, m Machine, bytes, chunkBytes int64, linkBW float64) (baseline, supmr *JobModel) {
	// Substitute the link for the storage path. Each pipelined chunk
	// pays extra per-round overhead for libhdfs session setup and block
	// location lookups against the namenode.
	hm := m
	hm.ReadBW = linkBW
	hm.RoundOverhead = 180 * time.Millisecond
	hp := p
	hp.ReadEff = 1.0

	baseline = Baseline(hp, hm, bytes)
	baseline.Label = "copy-then-compute"
	supmr = SupMR(hp, hm, bytes, chunkBytes)
	supmr.Label = "pipelined"
	return baseline, supmr
}

// Paper input sizes (the paper uses decimal gigabytes: 155e9/403.90 s
// reproduces the 384 MB/s RAID figure exactly).
const (
	WordCountInputBytes = 155e9
	SortInputBytes      = 60e9
	HDFSInputBytes      = 30e9
	GB                  = int64(1e9)
)
