package perfmodel

import (
	"strings"
	"testing"
)

func TestChunkSweepShape(t *testing.T) {
	m := Testbed()
	p := WordCount()
	size := int64(WordCountInputBytes)
	grid := DefaultChunkGrid(256<<20, size/2, 9)
	pts, base := ChunkSweep(p, m, size, grid)
	if len(pts) != 9 {
		t.Fatalf("got %d points", len(pts))
	}
	// Every chunked configuration beats the baseline at these sizes.
	for _, pt := range pts {
		if pt.Total >= base {
			t.Errorf("chunk %d: total %v not below baseline %v", pt.ChunkBytes, pt.Total, base)
		}
		if pt.Speedup <= 1 {
			t.Errorf("chunk %d: speedup %.3f", pt.ChunkBytes, pt.Speedup)
		}
	}
	// U-shape: the best point is strictly inside the grid and the
	// extremes are worse than the optimum.
	best := 0
	for i, pt := range pts {
		if pt.Total < pts[best].Total {
			best = i
		}
	}
	if best == 0 || best == len(pts)-1 {
		t.Errorf("optimum at grid edge (index %d) — expected interior optimum", best)
	}
	if pts[len(pts)-1].Total <= pts[best].Total {
		t.Error("largest chunk should be worse than the optimum")
	}
	// Waves decrease monotonically with chunk size.
	for i := 1; i < len(pts); i++ {
		if pts[i].Waves > pts[i-1].Waves {
			t.Errorf("waves increased with chunk size at %d", i)
		}
	}
}

func TestDefaultChunkGrid(t *testing.T) {
	g := DefaultChunkGrid(100, 10000, 5)
	if len(g) != 5 || g[0] != 100 {
		t.Fatalf("grid = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Errorf("grid not increasing: %v", g)
		}
	}
	if g[4] < 9900 || g[4] > 10000 {
		t.Errorf("grid end = %d, want ~10000", g[4])
	}
	// Degenerate inputs.
	if g := DefaultChunkGrid(100, 50, 5); len(g) != 1 {
		t.Errorf("inverted range grid = %v", g)
	}
}

func TestMergeCrossoverMonotone(t *testing.T) {
	pts := MergeCrossover(Sort(), Testbed(), 600e6, []int{2, 8, 32, 256})
	for i, pt := range pts {
		if pt.Speedup <= 1 {
			t.Errorf("runs=%d: p-way should win at paper scale (speedup %.2f)", pt.Runs, pt.Speedup)
		}
		if i > 0 && pt.Pairwise < pts[i-1].Pairwise {
			t.Errorf("pairwise time decreased with more runs at %d", pt.Runs)
		}
		if pt.PWay != pts[0].PWay {
			t.Errorf("p-way time should not depend on run count (%v vs %v)", pt.PWay, pts[0].PWay)
		}
	}
	// At 256 runs the model should land near the paper's 3.13x TOTAL
	// merge-phase ratio once the run-sort prefix is included; the raw
	// merge-pass ratio here is larger (~5x).
	if last := pts[len(pts)-1]; last.Speedup < 4 || last.Speedup > 6 {
		t.Errorf("256-run speedup = %.2f, want ~5", last.Speedup)
	}
}

func TestFormatters(t *testing.T) {
	pts, base := ChunkSweep(WordCount(), Testbed(), int64(WordCountInputBytes), []int64{GB})
	out := FormatChunkSweep(pts, base)
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "1.0GB") {
		t.Errorf("sweep format:\n%s", out)
	}
	mc := MergeCrossover(Sort(), Testbed(), 1e6, []int{4})
	if !strings.Contains(FormatMergeCrossover(mc), "runs") {
		t.Error("crossover format missing header")
	}
	if fmtBytes(512) != "512B" || fmtBytes(2048) != "2.0KB" || fmtBytes(3<<20) != "3.1MB" {
		t.Errorf("fmtBytes: %s %s %s", fmtBytes(512), fmtBytes(2048), fmtBytes(3<<20))
	}
}
