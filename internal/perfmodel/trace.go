package perfmodel

import (
	"time"

	"supmr/internal/metrics"
)

// Segment is one interval of modeled machine activity: how many worker
// contexts are in each state between Start and End. Fractional counts are
// allowed (e.g. the ingest thread charges 0.3 contexts of sys time for
// the kernel-side copy of incoming data).
type Segment struct {
	Start, End time.Duration
	User       float64
	Sys        float64
	IOWait     float64
}

// BuildTrace integrates segments into a collectl-style utilization trace
// normalized to contexts, with the given bucket width, covering [0, end).
func BuildTrace(segs []Segment, contexts int, bucket, end time.Duration) *metrics.Trace {
	if bucket <= 0 {
		bucket = time.Second
	}
	if contexts <= 0 {
		contexts = 1
	}
	if end <= 0 {
		for _, s := range segs {
			if s.End > end {
				end = s.End
			}
		}
		if end <= 0 {
			end = bucket
		}
	}
	n := int((end + bucket - 1) / bucket)
	if n == 0 {
		n = 1
	}
	type acc struct{ user, sys, iowait float64 } // context-seconds
	buckets := make([]acc, n)

	add := func(from, to time.Duration, user, sys, iowait float64) {
		if to > end {
			to = end
		}
		for t := from; t < to; {
			bi := int(t / bucket)
			if bi < 0 {
				t = 0
				continue
			}
			if bi >= n {
				break
			}
			bEnd := time.Duration(bi+1) * bucket
			seg := bEnd - t
			if to-t < seg {
				seg = to - t
			}
			s := seg.Seconds()
			buckets[bi].user += user * s
			buckets[bi].sys += sys * s
			buckets[bi].iowait += iowait * s
			t += seg
		}
	}
	for _, s := range segs {
		if s.End <= s.Start {
			continue
		}
		add(s.Start, s.End, s.User, s.Sys, s.IOWait)
	}

	capacity := float64(contexts) * bucket.Seconds()
	tr := &metrics.Trace{Bucket: bucket, Samples: make([]metrics.Sample, n)}
	for i := range buckets {
		tr.Samples[i] = metrics.Sample{
			T:      time.Duration(i) * bucket,
			User:   clampPct(100 * buckets[i].user / capacity),
			Sys:    clampPct(100 * buckets[i].sys / capacity),
			IOWait: clampPct(100 * buckets[i].iowait / capacity),
		}
	}
	return tr
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
