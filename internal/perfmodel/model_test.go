package perfmodel

import (
	"strings"
	"testing"
	"time"

	"supmr/internal/metrics"
)

// Tolerances for paper-vs-model agreement. Most cells land within a
// fraction of a percent; the word count 50 GB row is a known ~4%
// deviation (see EXPERIMENTS.md).
const (
	tightTol = 0.02
	looseTol = 0.05
)

func TestModelReproducesTable2(t *testing.T) {
	for _, r := range ModelTable2() {
		tol := tightTol
		if r.Paper.App == "wordcount" && r.Paper.Label == "50GB" {
			tol = looseTol
		}
		gotTotal := r.Model.Times.Total.Seconds()
		if e := RelErr(r.Paper.Total, gotTotal); e > tol {
			t.Errorf("%s/%s total: model %.2fs vs paper %.2fs (err %.1f%%)",
				r.Paper.App, r.Paper.Label, gotTotal, r.Paper.Total, e*100)
		}
		read, mp, red, mrg := modelPhase(r.Model, r.Paper.Fused)
		if e := RelErr(r.Paper.Read, read); e > tol {
			t.Errorf("%s/%s read: model %.2fs vs paper %.2fs", r.Paper.App, r.Paper.Label, read, r.Paper.Read)
		}
		if !r.Paper.Fused {
			if e := RelErr(r.Paper.Map, mp); e > tol {
				t.Errorf("%s/%s map: model %.2fs vs paper %.2fs", r.Paper.App, r.Paper.Label, mp, r.Paper.Map)
			}
		}
		if e := RelErr(r.Paper.Reduce, red); e > 0.3 { // sub-second cells
			t.Errorf("%s/%s reduce: model %.2fs vs paper %.2fs", r.Paper.App, r.Paper.Label, red, r.Paper.Reduce)
		}
		if e := RelErr(r.Paper.Merge, mrg); e > tol {
			t.Errorf("%s/%s merge: model %.2fs vs paper %.2fs", r.Paper.App, r.Paper.Label, mrg, r.Paper.Merge)
		}
	}
}

func TestModelSpeedupClaims(t *testing.T) {
	m := Testbed()
	claims := Claims()

	// Word count total speedup band 1.10x - 1.16x (paper §VI-B).
	wcBase := Baseline(WordCount(), m, int64(WordCountInputBytes))
	wc1 := SupMR(WordCount(), m, int64(WordCountInputBytes), 1*GB)
	sp := wcBase.Times.Total.Seconds() / wc1.Times.Total.Seconds()
	if sp < claims.WCTotalMin-0.02 || sp > claims.WCTotalMax+0.02 {
		t.Errorf("wc total speedup = %.3f, want in [%.2f, %.2f]", sp, claims.WCTotalMin, claims.WCTotalMax)
	}

	// Sort total 1.46x, merge ~3.13x.
	sBase := Baseline(Sort(), m, int64(SortInputBytes))
	s1 := SupMR(Sort(), m, int64(SortInputBytes), 1*GB)
	spTotal := sBase.Times.Total.Seconds() / s1.Times.Total.Seconds()
	if spTotal < 1.40 || spTotal > 1.52 {
		t.Errorf("sort total speedup = %.3f, want ~1.46", spTotal)
	}
	spMerge := sBase.Times.Get(metrics.PhaseMerge).Seconds() / s1.Times.Get(metrics.PhaseMerge).Seconds()
	if spMerge < 2.9 || spMerge > 3.4 {
		t.Errorf("sort merge speedup = %.3f, want ~3.13", spMerge)
	}
}

func TestModelChunkSizeOrdering(t *testing.T) {
	// Small chunks beat large chunks for word count (Fig. 5 conclusion),
	// and any chunking beats none.
	m := Testbed()
	p := WordCount()
	base := Baseline(p, m, int64(WordCountInputBytes)).Times.Total
	c1 := SupMR(p, m, int64(WordCountInputBytes), 1*GB).Times.Total
	c50 := SupMR(p, m, int64(WordCountInputBytes), 50*GB).Times.Total
	if !(c1 < c50 && c50 < base) {
		t.Errorf("ordering violated: 1GB=%v 50GB=%v none=%v", c1, c50, base)
	}
}

func TestModelPipelineDegenerate(t *testing.T) {
	m := Testbed()
	p := WordCount()
	// chunk >= input: single chunk, no overlap — read+map ~ read + map.
	j := SupMR(p, m, int64(WordCountInputBytes), 2*int64(WordCountInputBytes))
	if j.Waves != 1 {
		t.Errorf("oversized chunk ran %d waves", j.Waves)
	}
	fused := j.Times.Get(metrics.PhaseReadMap)
	want := p.readTime(m, int64(WordCountInputBytes)) + p.mapTime(int64(WordCountInputBytes))
	if d := fused - want; d < -time.Second || d > time.Second {
		t.Errorf("degenerate pipeline fused=%v, want ~%v", fused, want)
	}
	// chunk <= 0 behaves the same.
	j2 := SupMR(p, m, int64(WordCountInputBytes), 0)
	if j2.Waves != 1 {
		t.Errorf("zero chunk ran %d waves", j2.Waves)
	}
}

func TestModelMergeRoundsStructure(t *testing.T) {
	m := Testbed()
	base := Baseline(Sort(), m, int64(SortInputBytes))
	if base.Rounds != 8 { // 256 runs -> log2 = 8 rounds
		t.Errorf("baseline merge rounds = %d, want 8", base.Rounds)
	}
	sup := SupMR(Sort(), m, int64(SortInputBytes), GB)
	if sup.Rounds != 1 {
		t.Errorf("p-way merge rounds = %d, want 1", sup.Rounds)
	}
}

func TestModelFig7(t *testing.T) {
	base, sup, saved := ModelFig7()
	if saved < 4 || saved > 12 {
		t.Errorf("Fig 7 speedup = %.1fs, want ~7s", saved)
	}
	// Ingest dominates: the pipelined run is only slightly faster.
	if frac := saved / base.Times.Total.Seconds(); frac > 0.05 {
		t.Errorf("speedup fraction %.3f too large — map should be ≪ ingest", frac)
	}
	if sup.Times.Total >= base.Times.Total {
		t.Error("pipelined run should beat copy-then-compute")
	}
}

func TestModelFig3(t *testing.T) {
	mr, omp, computeDelta, totalDelta := Fig3Durations()
	// Paper: OpenMP total 192 s slower despite a faster compute phase.
	if d := totalDelta.Seconds(); d < 150 || d > 230 {
		t.Errorf("OpenMP total delta = %.1fs, want ~192s", d)
	}
	if computeDelta <= 0 {
		t.Error("MapReduce compute phase should be longer than OpenMP's sort")
	}
	if omp <= mr {
		t.Error("OpenMP total should exceed the MapReduce total")
	}
}

func TestTraceSynthesis(t *testing.T) {
	m := Testbed()
	j := Baseline(Sort(), m, int64(SortInputBytes))
	tr := j.Trace(m, 2*time.Second)
	if len(tr.Samples) == 0 {
		t.Fatal("empty trace")
	}
	// Early buckets: ingest — IO wait visible, low user.
	early := tr.Samples[5]
	if early.IOWait <= 0 {
		t.Error("ingest buckets show no IO wait")
	}
	if early.User > 10 {
		t.Errorf("ingest buckets show %.0f%% user", early.User)
	}
	// Merge "step" decay: find the max-user bucket after ingest and check
	// user% decreases towards the end (halving workers).
	maxIdx, maxUser := 0, 0.0
	for i, s := range tr.Samples {
		if s.User > maxUser {
			maxIdx, maxUser = i, s.User
		}
	}
	if maxUser < 90 {
		t.Errorf("peak utilization %.0f%%, want ~100%%", maxUser)
	}
	last := tr.Samples[len(tr.Samples)-2]
	if last.User >= maxUser/2 {
		t.Errorf("tail utilization %.0f%% does not show the merge step decay (peak %.0f%% at %d)",
			last.User, maxUser, maxIdx)
	}
}

func TestTraceFig5Density(t *testing.T) {
	// Smaller chunks -> higher mean utilization (denser spikes).
	m := Testbed()
	p := WordCount()
	small := SupMR(p, m, int64(WordCountInputBytes), 1*GB).Trace(m, 2*time.Second)
	large := SupMR(p, m, int64(WordCountInputBytes), 50*GB).Trace(m, 2*time.Second)
	if small.MeanUser() <= large.MeanUser() {
		t.Errorf("mean user: small=%.2f%% large=%.2f%% — small chunks should be denser",
			small.MeanUser(), large.MeanUser())
	}
}

func TestBuildTraceEdgeCases(t *testing.T) {
	tr := BuildTrace(nil, 4, time.Second, 0)
	if len(tr.Samples) != 1 {
		t.Errorf("empty segments: %d samples", len(tr.Samples))
	}
	// Zero-length and inverted segments are skipped.
	segs := []Segment{{Start: 5, End: 5, User: 3}, {Start: 10, End: 2, User: 1}}
	tr = BuildTrace(segs, 4, time.Second, 2*time.Second)
	for _, s := range tr.Samples {
		if s.User != 0 {
			t.Error("degenerate segments contributed utilization")
		}
	}
	// Clamping: overcommitted segment cannot exceed 100%.
	tr = BuildTrace([]Segment{{Start: 0, End: time.Second, User: 100}}, 4, time.Second, time.Second)
	if tr.Samples[0].User > 100 {
		t.Errorf("clamp failed: %v", tr.Samples[0].User)
	}
}

func TestFormatComparison(t *testing.T) {
	out := FormatComparison(ModelTable2())
	for _, want := range []string{"wordcount", "sort", "(fused)", "471.75"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(100, 102) != 0.02 {
		t.Errorf("RelErr(100,102) = %v", RelErr(100, 102))
	}
	// Sub-half-second cells compare absolutely.
	if RelErr(0.03, 0.05) > 0.021 {
		t.Errorf("RelErr small = %v", RelErr(0.03, 0.05))
	}
}

func TestPaperTableShape(t *testing.T) {
	if len(PaperTable2) != 5 {
		t.Fatalf("Table II has %d rows", len(PaperTable2))
	}
	// The transcription matches the published speedups.
	wcNone, wc1 := PaperTable2[0], PaperTable2[1]
	if sp := wcNone.Total / wc1.Total; sp < 1.15 || sp > 1.17 {
		t.Errorf("paper wc speedup = %.3f, expected ~1.16", sp)
	}
	sNone, s1 := PaperTable2[3], PaperTable2[4]
	if sp := sNone.Total / s1.Total; sp < 1.45 || sp > 1.47 {
		t.Errorf("paper sort speedup = %.3f, expected ~1.46", sp)
	}
	if sp := sNone.Merge / s1.Merge; sp < 3.1 || sp > 3.2 {
		t.Errorf("paper merge speedup = %.3f, expected ~3.13", sp)
	}
}

func TestModelFig5UtilizationGain(t *testing.T) {
	// §VIII: "50 - 100% more CPU utilization" for the optimized phases.
	// Compare mean utilization across the ingest/map interval: baseline
	// (read then map) vs the 1 GB pipelined run.
	m := Testbed()
	p := WordCount()
	base := Baseline(p, m, int64(WordCountInputBytes))
	sup := SupMR(p, m, int64(WordCountInputBytes), 1*GB)
	// Restrict to the ingest-dominated prefix: use each run's read(-map)
	// duration as the window.
	baseTr := BuildTrace(base.Segments, m.Contexts, 2*time.Second, base.Times.Get(metrics.PhaseRead))
	supTr := BuildTrace(sup.Segments, m.Contexts, 2*time.Second, sup.Times.Get(metrics.PhaseReadMap))
	gain := supTr.MeanTotal() / baseTr.MeanTotal()
	// The paper reports "50-100% more CPU utilization" without pinning
	// the interval; over the ingest window the model shows an even
	// larger relative gain (1 IO thread vs overlapped map bursts).
	// Assert the direction and that the gain is substantial.
	if gain < 1.5 {
		t.Errorf("ingest-interval utilization gain = %.2fx, want at least 1.5x", gain)
	}
}
