package perfmodel

import (
	"fmt"
	"math"
	"strings"
	"time"

	"supmr/internal/metrics"
)

// SweepPoint is one configuration of a parameter sweep.
type SweepPoint struct {
	ChunkBytes int64
	Total      time.Duration
	ReadMap    time.Duration
	Waves      int
	MeanUtil   float64 // mean stacked utilization, %
	Speedup    float64 // baseline total / this total
}

// ChunkSweep evaluates SupMR across chunk sizes for profile p at the
// given input size, returning one point per chunk size plus the
// baseline ("none") total it is compared against. This is the curve
// behind Conclusion 2: totals fall as chunks shrink until per-round
// overhead turns them back up.
func ChunkSweep(p Profile, m Machine, inputBytes int64, chunks []int64) (points []SweepPoint, baseline time.Duration) {
	base := Baseline(p, m, inputBytes)
	baseline = base.Times.Total
	for _, c := range chunks {
		j := SupMR(p, m, inputBytes, c)
		tr := j.Trace(m, 2*time.Second)
		points = append(points, SweepPoint{
			ChunkBytes: c,
			Total:      j.Times.Total,
			ReadMap:    j.Times.Get(metrics.PhaseReadMap),
			Waves:      j.Waves,
			MeanUtil:   tr.MeanTotal(),
			Speedup:    baseline.Seconds() / j.Times.Total.Seconds(),
		})
	}
	return points, baseline
}

// DefaultChunkGrid returns a geometric grid of chunk sizes from min to
// max (inclusive-ish), n points.
func DefaultChunkGrid(min, max int64, n int) []int64 {
	if n < 2 || min <= 0 || max <= min {
		return []int64{min}
	}
	ratio := float64(max) / float64(min)
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		f := float64(min) * math.Pow(ratio, float64(i)/float64(n-1))
		out = append(out, int64(f))
	}
	return out
}

// FormatChunkSweep renders the sweep as an aligned table.
func FormatChunkSweep(points []SweepPoint, baseline time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline (no chunks): %.2fs\n", baseline.Seconds())
	fmt.Fprintf(&b, "%14s %8s %10s %10s %10s %9s\n", "chunk", "waves", "read+map", "total", "speedup", "util")
	for _, pt := range points {
		fmt.Fprintf(&b, "%14s %8d %9.2fs %9.2fs %9.3fx %8.1f%%\n",
			fmtBytes(pt.ChunkBytes), pt.Waves, pt.ReadMap.Seconds(), pt.Total.Seconds(), pt.Speedup, pt.MeanUtil)
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fGB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fMB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fKB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// MergeCrossoverPoint is one run-count of the merge comparison.
type MergeCrossoverPoint struct {
	Runs     int
	Pairwise time.Duration
	PWay     time.Duration
	Speedup  float64
}

// MergeCrossover models both merge algorithms across sorted-run counts
// at fixed intermediate volume — Conclusion 3 quantified: the p-way
// advantage grows with the number of pairwise rounds avoided.
func MergeCrossover(p Profile, m Machine, records int64, runCounts []int) []MergeCrossoverPoint {
	var out []MergeCrossoverPoint
	for _, r := range runCounts {
		pw, _, _ := pairwiseMergeTimeForRuns(records, r, m.Contexts, p.MergeElem)
		pway := pwayMergeTime(records, p)
		out = append(out, MergeCrossoverPoint{
			Runs:     r,
			Pairwise: pw,
			PWay:     pway,
			Speedup:  pw.Seconds() / pway.Seconds(),
		})
	}
	return out
}

func pairwiseMergeTimeForRuns(n int64, runs, contexts int, elem time.Duration) (time.Duration, []time.Duration, []int) {
	return pairwiseMergeTime(n, runs, contexts, elem)
}

// FormatMergeCrossover renders the crossover table.
func FormatMergeCrossover(points []MergeCrossoverPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %12s %12s %10s\n", "runs", "pairwise", "p-way", "speedup")
	for _, pt := range points {
		fmt.Fprintf(&b, "%8d %11.2fs %11.2fs %9.2fx\n",
			pt.Runs, pt.Pairwise.Seconds(), pt.PWay.Seconds(), pt.Speedup)
	}
	return b.String()
}
