// Package memo is the content-addressed result cache behind incremental
// recompute. Each ingest chunk, identified by the content hash the CDC
// ingest path computes, maps to the serialized map/combine output that
// chunk produced on a previous run. On re-run a hit replays the cached
// output straight into the merge path — the chunk's bytes are read and
// hashed but never mapped — turning a mostly-unchanged job into
// O(delta) map work.
//
// The store lives on the simulated storage substrate: payload bytes
// occupy a device address range and every read and write is charged to
// the device block by block, so memo traffic contends for the same
// bandwidth as ingest and spill. Entries carry a digest of their
// payload recorded at publish time from the bytes in memory; a read
// that does not reproduce the digest (a torn write that landed only a
// prefix, a corrupted backing) is detected, counted, evicted and
// reported as an error the caller treats as a miss — a damaged cache
// can cost time, never correctness.
package memo

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"supmr/internal/spill"
	"supmr/internal/storage"
)

// DefaultBlockSize is the IO granularity for memo payloads.
const DefaultBlockSize = 64 << 10

// Key addresses one cache entry: a SHA-256 over the key space and the
// chunk content hash (see Cache.Key).
type Key [32]byte

// Config configures a Store.
type Config struct {
	// Device charges memo IO time. Required.
	Device storage.Device
	// BlockSize is the IO granularity in bytes (DefaultBlockSize when 0).
	BlockSize int64
	// Budget caps resident payload bytes; least-recently-used entries
	// are evicted to stay under it. 0 means unbounded.
	Budget int64
	// Backing holds entry payloads (spill.MemBacking when nil). Wrap it
	// to inject write faults.
	Backing spill.Backing
}

// Stats summarizes cache traffic. Hits/Misses count Get outcomes;
// Torn counts digest mismatches detected on read (each also surfaces
// as a ReadError and evicts the entry).
type Stats struct {
	Hits        int64
	Misses      int64
	Stored      int64 // successful Puts
	Evicted     int64 // LRU evictions (budget pressure)
	Torn        int64 // digest mismatches detected on read
	ReadErrors  int64 // failed Gets of present entries (faults + torn)
	WriteErrors int64 // failed Puts
	Entries     int   // resident entries
	Bytes       int64 // resident payload bytes
}

// entry is one cached payload. prev/next thread the LRU list (most
// recent at head).
type entry struct {
	key     Key
	data    spill.RunData
	devOff  int64
	size    int64
	records int64
	digest  [32]byte // of the payload, computed at publish from memory

	refs int // in-flight readers holding the backing open
	gone bool
	prev *entry
	next *entry
}

// Store is the content-addressed blob store. All methods are safe for
// concurrent use; device time is never slept on while the lock is held.
type Store struct {
	dev       storage.Device
	blockSize int64
	budget    int64
	backing   spill.Backing

	mu      sync.Mutex
	entries map[Key]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	nextOff int64
	nextID  int
	stats   Stats
}

// NewStore builds a memo store over cfg.Device.
func NewStore(cfg Config) (*Store, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("memo: store requires a device")
	}
	if cfg.BlockSize < 0 {
		return nil, fmt.Errorf("memo: block size must be non-negative, got %d", cfg.BlockSize)
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("memo: budget must be non-negative, got %d", cfg.Budget)
	}
	if cfg.Backing == nil {
		cfg.Backing = spill.MemBacking{}
	}
	return &Store{
		dev:       cfg.Device,
		blockSize: cfg.BlockSize,
		budget:    cfg.Budget,
		backing:   cfg.Backing,
		entries:   make(map[Key]*entry),
	}, nil
}

// Device returns the device charged for memo IO.
func (s *Store) Device() storage.Device { return s.dev }

// Stats snapshots the cache counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// lruUnlink removes e from the LRU list. Caller holds s.mu.
func (s *Store) lruUnlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// lruPush makes e the most recently used. Caller holds s.mu.
func (s *Store) lruPush(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// dropLocked removes e from the index and LRU and returns its backing
// for closing — deferred while readers still hold it. Caller holds s.mu.
func (s *Store) dropLocked(e *entry) spill.RunData {
	delete(s.entries, e.key)
	s.lruUnlink(e)
	e.gone = true
	s.stats.Entries--
	s.stats.Bytes -= e.size
	if e.refs == 0 {
		return e.data
	}
	return nil
}

// Get returns the payload published under k, charging the device read
// path. A (nil, 0, nil) return is a clean miss. A non-nil error means
// the entry was present but unreadable — an injected device fault or a
// torn write caught by the digest — and the caller must fall back to
// recomputing; the damaged entry is evicted.
func (s *Store) Get(k Key) ([]byte, int64, error) {
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, 0, nil
	}
	s.lruUnlink(e)
	s.lruPush(e)
	e.refs++
	s.mu.Unlock()

	payload, err := s.readPayload(e)
	if err == nil && sha256.Sum256(payload) != e.digest {
		err = fmt.Errorf("memo: entry %x: payload digest mismatch (torn write)", k[:4])
		s.mu.Lock()
		s.stats.Torn++
		s.mu.Unlock()
	}

	s.mu.Lock()
	e.refs--
	var toClose spill.RunData
	if err != nil {
		s.stats.ReadErrors++
		if !e.gone {
			toClose = s.dropLocked(e)
		}
	}
	if e.gone && e.refs == 0 && toClose == nil {
		toClose = e.data
	}
	if err == nil {
		s.stats.Hits++
	}
	s.mu.Unlock()
	if toClose != nil {
		toClose.Close()
	}
	if err != nil {
		return nil, 0, err
	}
	return payload, e.records, nil
}

// readPayload reserves the entry's device extent block by block (the
// fallible read path — injected faults surface here), sleeps once on
// the latest deadline, then copies the bytes out of the backing.
func (s *Store) readPayload(e *entry) ([]byte, error) {
	deadline := s.dev.Clock().Now()
	for off := int64(0); off < e.size; off += s.blockSize {
		n := s.blockSize
		if rem := e.size - off; n > rem {
			n = rem
		}
		dl, err := storage.TryReserve(s.dev, e.devOff+off, n)
		if err != nil {
			return nil, fmt.Errorf("memo: read entry %x: %w", e.key[:4], err)
		}
		if dl > deadline {
			deadline = dl
		}
	}
	s.dev.Clock().SleepUntil(deadline)
	buf := make([]byte, e.size)
	if err := readFull(e.data, buf); err != nil {
		return nil, fmt.Errorf("memo: read entry %x: %w", e.key[:4], err)
	}
	return buf, nil
}

// readFull fills buf from data at offset 0, looping over short reads.
func readFull(data spill.RunData, buf []byte) error {
	off := int64(0)
	for len(buf) > 0 {
		n, err := data.ReadAt(buf, off)
		if n > 0 {
			buf = buf[n:]
			off += int64(n)
			continue
		}
		if err != nil {
			return err
		}
		return fmt.Errorf("memo: backing returned no progress at offset %d", off)
	}
	return nil
}

// Put publishes payload under k, charging the device write path. The
// digest is computed from payload here — before the fallible backing
// write — so a tear that lands only a prefix is caught at the next Get.
// Replacing an existing key drops the old entry. An error leaves the
// cache unchanged (beyond counters); callers skip publication and move
// on — a failed Put never fails the job.
func (s *Store) Put(k Key, payload []byte, records int64) error {
	if int64(len(payload)) > s.budget && s.budget > 0 {
		// Larger than the whole budget: storing it would immediately
		// evict everything including itself. Count it as a write miss.
		s.mu.Lock()
		s.stats.WriteErrors++
		s.mu.Unlock()
		return fmt.Errorf("memo: payload %d bytes exceeds budget %d", len(payload), s.budget)
	}
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()

	data, err := s.backing.NewRun(id)
	if err != nil {
		s.mu.Lock()
		s.stats.WriteErrors++
		s.mu.Unlock()
		return fmt.Errorf("memo: allocate entry: %w", err)
	}
	digest := sha256.Sum256(payload)
	if err := writeFull(data, payload); err != nil {
		data.Close()
		s.mu.Lock()
		s.stats.WriteErrors++
		s.mu.Unlock()
		return fmt.Errorf("memo: write entry %x: %w", k[:4], err)
	}

	size := int64(len(payload))
	s.mu.Lock()
	base := s.nextOff
	s.nextOff += size
	e := &entry{key: k, data: data, devOff: base, size: size, records: records, digest: digest}
	var closers []spill.RunData
	if old, ok := s.entries[k]; ok {
		if c := s.dropLocked(old); c != nil {
			closers = append(closers, c)
		}
	}
	s.entries[k] = e
	s.lruPush(e)
	s.stats.Entries++
	s.stats.Bytes += size
	s.stats.Stored++
	for s.budget > 0 && s.stats.Bytes > s.budget && s.tail != nil && s.tail != e {
		victim := s.tail
		if c := s.dropLocked(victim); c != nil {
			closers = append(closers, c)
		}
		s.stats.Evicted++
	}
	s.mu.Unlock()
	for _, c := range closers {
		c.Close()
	}

	// Charge the device write path for the published extent, block by
	// block, after the metadata is in place — the sleep happens off-lock.
	deadline := s.dev.Clock().Now()
	for off := int64(0); off < size; off += s.blockSize {
		n := s.blockSize
		if rem := size - off; n > rem {
			n = rem
		}
		if dl := storage.ReserveWrite(s.dev, base+off, n); dl > deadline {
			deadline = dl
		}
	}
	s.dev.Clock().SleepUntil(deadline)
	return nil
}

// writeFull writes payload to data at offset 0, looping over short
// writes.
func writeFull(data spill.RunData, payload []byte) error {
	off := int64(0)
	for len(payload) > 0 {
		n, err := data.WriteAt(payload, off)
		if err != nil {
			return err
		}
		if n <= 0 {
			return fmt.Errorf("memo: backing accepted no bytes at offset %d", off)
		}
		payload = payload[n:]
		off += int64(n)
	}
	return nil
}

// Close releases every entry's backing storage.
func (s *Store) Close() error {
	s.mu.Lock()
	var closers []spill.RunData
	for _, e := range s.entries {
		e.gone = true
		if e.refs == 0 {
			closers = append(closers, e.data)
		}
	}
	s.entries = make(map[Key]*entry)
	s.head, s.tail = nil, nil
	s.stats.Entries = 0
	s.stats.Bytes = 0
	s.mu.Unlock()
	var first error
	for _, c := range closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
