package memo

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"

	"supmr/internal/kv"
	"supmr/internal/spill"
	"supmr/internal/storage"
)

func newStore(t *testing.T, budget int64) *Store {
	t.Helper()
	s, err := NewStore(Config{Device: storage.NewNullDevice(storage.NewFakeClock()), Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func keyOf(s string) Key { return Key(sha256.Sum256([]byte(s))) }

func TestStoreRoundtrip(t *testing.T) {
	s := newStore(t, 0)
	payload := bytes.Repeat([]byte("abc123"), 10_000)
	if err := s.Put(keyOf("k1"), payload, 7); err != nil {
		t.Fatal(err)
	}
	got, records, err := s.Get(keyOf("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) || records != 7 {
		t.Fatalf("roundtrip mismatch: %d bytes, %d records", len(got), records)
	}
	if miss, _, err := s.Get(keyOf("absent")); err != nil || miss != nil {
		t.Fatalf("absent key: payload=%v err=%v, want clean miss", miss != nil, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stored != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != int64(len(payload)) {
		t.Fatalf("resident bytes = %d, want %d", st.Bytes, len(payload))
	}
}

func TestStoreChargesDevice(t *testing.T) {
	clk := storage.NewFakeClock()
	dev, err := storage.NewDisk(storage.DiskConfig{Name: "m", Bandwidth: 1 << 20}, clk)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := make([]byte, 1<<19) // half the bandwidth: ~0.5 virtual s per pass
	if err := s.Put(keyOf("k"), payload, 1); err != nil {
		t.Fatal(err)
	}
	afterPut := clk.Now()
	if afterPut <= 0 {
		t.Fatal("Put charged no device time")
	}
	if _, _, err := s.Get(keyOf("k")); err != nil {
		t.Fatal(err)
	}
	if clk.Now() <= afterPut {
		t.Fatal("Get charged no device time")
	}
}

func TestLRUEviction(t *testing.T) {
	s := newStore(t, 100)
	pay := func(n int) []byte { return bytes.Repeat([]byte{'x'}, n) }
	for i := 0; i < 3; i++ {
		if err := s.Put(keyOf(fmt.Sprintf("k%d", i)), pay(40), 1); err != nil {
			t.Fatal(err)
		}
	}
	// 3x40 > 100: k0 (least recent) must be gone, k1/k2 resident.
	if p, _, _ := s.Get(keyOf("k0")); p != nil {
		t.Fatal("k0 survived eviction")
	}
	for _, k := range []string{"k1", "k2"} {
		if p, _, err := s.Get(keyOf(k)); err != nil || p == nil {
			t.Fatalf("%s evicted or unreadable (err=%v)", k, err)
		}
	}
	// Touch k1, then add k3: k2 is now least recent and must go.
	if _, _, err := s.Get(keyOf("k1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyOf("k3"), pay(40), 1); err != nil {
		t.Fatal(err)
	}
	if p, _, _ := s.Get(keyOf("k2")); p != nil {
		t.Fatal("k2 survived eviction despite being least recent")
	}
	if p, _, err := s.Get(keyOf("k1")); err != nil || p == nil {
		t.Fatalf("recently-used k1 evicted (err=%v)", err)
	}
	if st := s.Stats(); st.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", st.Evicted)
	}
	if err := s.Put(keyOf("huge"), pay(200), 1); err == nil {
		t.Fatal("over-budget payload accepted")
	}
}

// tornBacking persists only a prefix of every write but reports full
// success — the silent tear the digest check must catch.
type tornBacking struct{ keep int }

func (b tornBacking) NewRun(id int) (spill.RunData, error) {
	inner, _ := spill.MemBacking{}.NewRun(id)
	return tornRun{inner: inner, keep: b.keep}, nil
}

type tornRun struct {
	inner spill.RunData
	keep  int
}

func (r tornRun) WriteAt(p []byte, off int64) (int, error) {
	q := p
	if len(q) > r.keep {
		q = q[:r.keep]
	}
	if _, err := r.inner.WriteAt(q, off); err != nil {
		return 0, err
	}
	// Pad the tail so reads see zeros where the tear lost data.
	if len(p) > len(q) {
		if _, err := r.inner.WriteAt(make([]byte, len(p)-len(q)), off+int64(len(q))); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}
func (r tornRun) ReadAt(p []byte, off int64) (int, error) { return r.inner.ReadAt(p, off) }
func (r tornRun) Close() error                            { return r.inner.Close() }

func TestTornWriteDetectedAsMiss(t *testing.T) {
	s, err := NewStore(Config{
		Device:  storage.NewNullDevice(storage.NewFakeClock()),
		Backing: tornBacking{keep: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := bytes.Repeat([]byte("payload!"), 100)
	if err := s.Put(keyOf("k"), payload, 1); err != nil {
		t.Fatalf("the tear is silent; Put must succeed: %v", err)
	}
	got, _, err := s.Get(keyOf("k"))
	if err == nil {
		t.Fatalf("torn entry read back without error (%d bytes)", len(got))
	}
	st := s.Stats()
	if st.Torn != 1 || st.ReadErrors != 1 {
		t.Fatalf("stats = %+v, want Torn=1 ReadErrors=1", st)
	}
	// The damaged entry must be evicted: the next Get is a clean miss.
	if p, _, err := s.Get(keyOf("k")); err != nil || p != nil {
		t.Fatalf("damaged entry not evicted: payload=%v err=%v", p != nil, err)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d after eviction, want 0", st.Entries)
	}
}

func TestPutReplacesExisting(t *testing.T) {
	s := newStore(t, 0)
	if err := s.Put(keyOf("k"), []byte("old"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyOf("k"), []byte("newer"), 2); err != nil {
		t.Fatal(err)
	}
	got, records, err := s.Get(keyOf("k"))
	if err != nil || string(got) != "newer" || records != 2 {
		t.Fatalf("got %q records=%d err=%v", got, records, err)
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("stats = %+v, want 1 entry of 5 bytes", st)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := newStore(t, 10_000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keyOf(fmt.Sprintf("k%d", i%20))
				if i%3 == 0 {
					payload := bytes.Repeat([]byte{byte(i)}, 100+i)
					if err := s.Put(k, payload, int64(i)); err != nil {
						t.Error(err)
						return
					}
				} else if _, _, err := s.Get(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCacheRoundtripAndKeySpaces(t *testing.T) {
	s := newStore(t, 0)
	c, err := NewCache[string, int64](s, "wordcount")
	if err != nil {
		t.Fatal(err)
	}
	pairs := []kv.Pair[string, int64]{{Key: "alpha", Val: 3}, {Key: "beta", Val: 1}, {Key: "gamma", Val: 9}}
	sum := sha256.Sum256([]byte("chunk content"))
	if err := c.Put(c.Key(sum), pairs); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(c.Key(sum))
	if err != nil || !ok {
		t.Fatalf("hit failed: ok=%v err=%v", ok, err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("got %d pairs, want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, got[i], pairs[i])
		}
	}
	// A different key space must not see the entry.
	other, err := NewCache[string, int64](s, "grep:ERROR")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := other.Get(other.Key(sum)); ok || err != nil {
		t.Fatalf("cross-space hit: ok=%v err=%v", ok, err)
	}
	if c.PayloadBytes(pairs) == 0 {
		t.Fatal("PayloadBytes reported zero for non-empty pairs")
	}
}

func TestCacheRejectsUncodableTypes(t *testing.T) {
	s := newStore(t, 0)
	if _, err := NewCache[string, []string](s, "invindex"); err == nil {
		t.Fatal("[]string values have no codec; NewCache must refuse")
	}
}

func TestCacheEmptyPairs(t *testing.T) {
	s := newStore(t, 0)
	c, err := NewCache[string, int64](s, "wc")
	if err != nil {
		t.Fatal(err)
	}
	k := c.Key(sha256.Sum256([]byte("empty chunk")))
	if err := c.Put(k, nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(k)
	if err != nil || !ok || len(got) != 0 {
		t.Fatalf("empty entry: pairs=%d ok=%v err=%v", len(got), ok, err)
	}
}
