package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"supmr/internal/kv"
	"supmr/internal/spill"
)

// Cache is the typed view over a Store for one job type: it derives
// entry keys from chunk content hashes under a key space, and
// serializes per-chunk map/combine output with the spill run codecs
// (uvarint-framed key/value records, identical to spill run files).
// Jobs whose key or value types have no codec cannot memoize; NewCache
// refuses up front.
type Cache[K comparable, V any] struct {
	store *Store
	space []byte
	kc    spill.Codec[K]
	vc    spill.Codec[V]
}

// NewCache builds the typed layer. space namespaces keys so different
// applications (or explicitly separated key spaces) sharing one store
// never collide: the same chunk content yields different entry keys
// under different spaces.
func NewCache[K comparable, V any](store *Store, space string) (*Cache[K, V], error) {
	if store == nil {
		return nil, fmt.Errorf("memo: cache requires a store")
	}
	kc, err := spill.CodecFor[K]()
	if err != nil {
		return nil, fmt.Errorf("memo: key %w", err)
	}
	vc, err := spill.CodecFor[V]()
	if err != nil {
		return nil, fmt.Errorf("memo: value %w", err)
	}
	return &Cache[K, V]{store: store, space: []byte(space), kc: kc, vc: vc}, nil
}

// Key derives the entry key for one chunk's content hash: a SHA-256
// over the key space and the content sum, length-framed so distinct
// (space, sum) inputs cannot collide by concatenation.
func (c *Cache[K, V]) Key(sum [32]byte) Key {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(c.space)))
	h.Write(n[:])
	h.Write(c.space)
	h.Write(sum[:])
	var k Key
	h.Sum(k[:0])
	return k
}

// Get fetches and decodes the cached pairs for k. ok reports a usable
// hit; a present-but-unreadable entry (fault, torn write, corrupt
// frame) returns ok=false with the error for accounting — the caller
// recomputes either way.
func (c *Cache[K, V]) Get(k Key) (pairs []kv.Pair[K, V], ok bool, err error) {
	payload, records, err := c.store.Get(k)
	if err != nil {
		return nil, false, err
	}
	if payload == nil {
		return nil, false, nil
	}
	pairs = make([]kv.Pair[K, V], 0, records)
	for pos := 0; pos < len(payload); {
		kb, n, err := frame(payload, pos)
		if err != nil {
			return nil, false, fmt.Errorf("memo: entry %x: %w", k[:4], err)
		}
		pos = n
		vb, n, err := frame(payload, pos)
		if err != nil {
			return nil, false, fmt.Errorf("memo: entry %x: %w", k[:4], err)
		}
		pos = n
		key, err := c.kc.Decode(kb)
		if err != nil {
			return nil, false, fmt.Errorf("memo: entry %x: %w", k[:4], err)
		}
		val, err := c.vc.Decode(vb)
		if err != nil {
			return nil, false, fmt.Errorf("memo: entry %x: %w", k[:4], err)
		}
		pairs = append(pairs, kv.Pair[K, V]{Key: key, Val: val})
	}
	return pairs, true, nil
}

// frame decodes one uvarint-framed field of payload at pos, returning
// the field bytes and the position after it.
func frame(payload []byte, pos int) ([]byte, int, error) {
	u, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("corrupt length prefix at %d", pos)
	}
	pos += n
	if u > uint64(len(payload)-pos) {
		return nil, 0, fmt.Errorf("field length %d exceeds remaining %d bytes", u, len(payload)-pos)
	}
	return payload[pos : pos+int(u)], pos + int(u), nil
}

// Put serializes pairs and publishes them under k. The pairs should be
// the chunk's full combined output in its stable (key-sorted) order, so
// a later hit replays them as a ready-sorted merge source.
func (c *Cache[K, V]) Put(k Key, pairs []kv.Pair[K, V]) error {
	var buf []byte
	var scratch []byte
	for _, p := range pairs {
		scratch = c.kc.Append(scratch[:0], p.Key)
		buf = binary.AppendUvarint(buf, uint64(len(scratch)))
		buf = append(buf, scratch...)
		scratch = c.vc.Append(scratch[:0], p.Val)
		buf = binary.AppendUvarint(buf, uint64(len(scratch)))
		buf = append(buf, scratch...)
	}
	return c.store.Put(k, buf, int64(len(pairs)))
}

// PayloadBytes reports how large pairs would serialize, without
// publishing — used to attribute IO-lane op cost before a Put.
func (c *Cache[K, V]) PayloadBytes(pairs []kv.Pair[K, V]) int64 {
	var scratch []byte
	var total int64
	for _, p := range pairs {
		scratch = c.kc.Append(scratch[:0], p.Key)
		total += int64(uvarintLen(uint64(len(scratch)))) + int64(len(scratch))
		scratch = c.vc.Append(scratch[:0], p.Val)
		total += int64(uvarintLen(uint64(len(scratch)))) + int64(len(scratch))
	}
	return total
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
