// Package storage simulates the primary-storage substrate of the SupMR
// testbed: individual disks with finite bandwidth and seek latency, a
// RAID-0 array that stripes requests across member disks, and files whose
// contents are produced by deterministic generators so that multi-gigabyte
// inputs never need to reside in memory.
//
// The paper's machine serves reads from a 3-disk RAID-0 at 384 MB/s; the
// ingest bottleneck it studies is purely a bandwidth phenomenon. The
// simulation therefore models service time, not media: a read of n bytes
// occupies the device for n/bandwidth seconds (plus seek latency on
// discontiguous access) and the caller sleeps until the device completes.
// Because waiting is real wall-clock sleeping (under RealClock), ingest
// genuinely overlaps with computation exactly as it would against a real
// disk, which is what the SupMR ingest chunk pipeline exploits.
package storage

import (
	"runtime"
	"sync"
	"time"
)

// Clock abstracts time so that unit tests can run the bandwidth arithmetic
// instantly and deterministically while production runs sleep for real.
type Clock interface {
	// Now returns the elapsed duration since the clock's epoch.
	Now() time.Duration
	// SleepUntil blocks the caller until Now() >= t.
	SleepUntil(t time.Duration)
}

// RealClock is a Clock backed by the wall clock. The zero value is not
// usable; construct with NewRealClock so the epoch is fixed.
type RealClock struct {
	epoch time.Time
}

// NewRealClock returns a Clock whose epoch is the moment of the call.
func NewRealClock() *RealClock {
	return &RealClock{epoch: time.Now()}
}

// Now returns the wall-clock duration since the epoch.
func (c *RealClock) Now() time.Duration { return time.Since(c.epoch) }

// spinThreshold is the tail of each wait that is yielded through rather
// than slept: OS timers overshoot by ~0.1-1 ms, which would add a
// systematic per-read error to fine-grained chunk pipelines (hundreds of
// device waits per run).
const spinThreshold = 500 * time.Microsecond

// SleepUntil sleeps until the wall clock passes t, finishing the last
// half millisecond with sched-yields so device waits land on time.
func (c *RealClock) SleepUntil(t time.Duration) {
	for {
		d := t - c.Now()
		if d <= 0 {
			return
		}
		if d > spinThreshold {
			time.Sleep(d - spinThreshold)
			continue
		}
		runtime.Gosched()
	}
}

// FakeClock is a deterministic Clock for tests. SleepUntil advances the
// clock immediately instead of blocking, so device-time arithmetic can be
// verified without waiting. It is safe for concurrent use, but note that
// with concurrent sleepers virtual time advances to the maximum requested
// deadline; it does not implement a full event queue (the perfmodel
// package owns the discrete-event machinery).
type FakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewFakeClock returns a FakeClock starting at zero.
func NewFakeClock() *FakeClock { return &FakeClock{} }

// Now returns the current virtual time.
func (c *FakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// SleepUntil advances virtual time to t if t is in the future.
func (c *FakeClock) SleepUntil(t time.Duration) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// Advance moves virtual time forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}
