package storage

import (
	"fmt"
	"sync"
	"time"
)

// Cache is an LRU block cache in front of a Device — the page-cache /
// MixApart-style caching layer the paper's related work discusses
// (§VII) and the reason the Fig. 7 baseline's compute phase is fast
// after copying: blocks already in memory cost no device time.
//
// Reads covered by cached blocks complete immediately; misses reserve
// device time for the missing blocks only and then populate the cache,
// evicting least-recently-used blocks beyond the capacity.
type Cache struct {
	dev       Device
	blockSize int64
	capacity  int // blocks

	mu     sync.Mutex
	blocks map[int64]*cacheEntry // block index -> entry
	head   *cacheEntry           // most recently used
	tail   *cacheEntry           // least recently used
	stats  CacheStats
}

type cacheEntry struct {
	block      int64
	prev, next *cacheEntry
}

// CacheStats counts cache behaviour.
type CacheStats struct {
	Hits          int64 // block lookups served from cache
	Misses        int64 // block lookups that reserved device time
	Evictions     int64
	Invalidations int64 // blocks dropped because a write covered them
}

// NewCache wraps dev with an LRU block cache of capacity blocks of
// blockSize bytes each.
func NewCache(dev Device, blockSize int64, capacity int) (*Cache, error) {
	if dev == nil {
		return nil, fmt.Errorf("storage: cache requires a device")
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("storage: cache block size must be positive, got %d", blockSize)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: cache capacity must be positive, got %d", capacity)
	}
	return &Cache{
		dev:       dev,
		blockSize: blockSize,
		capacity:  capacity,
		blocks:    make(map[int64]*cacheEntry),
	}, nil
}

// Clock returns the underlying device clock.
func (c *Cache) Clock() Clock { return c.dev.Clock() }

// Bandwidth reports the underlying device bandwidth (the cache itself
// is "free").
func (c *Cache) Bandwidth() float64 { return c.dev.Bandwidth() }

// Stats returns the underlying device counters (bytes that actually hit
// the device).
func (c *Cache) Stats() DeviceStats { return c.dev.Stats() }

// CacheStats returns hit/miss/eviction counters.
func (c *Cache) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// touch moves e to the MRU position (c.mu held).
func (c *Cache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	// unlink
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	// push front
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// insert adds block as MRU, evicting if needed (c.mu held).
func (c *Cache) insert(block int64) {
	if _, ok := c.blocks[block]; ok {
		return
	}
	if len(c.blocks) >= c.capacity {
		lru := c.tail
		if lru != nil {
			if lru.prev != nil {
				lru.prev.next = nil
			}
			c.tail = lru.prev
			if c.head == lru {
				c.head = nil
			}
			delete(c.blocks, lru.block)
			c.stats.Evictions++
		}
	}
	e := &cacheEntry{block: block}
	c.blocks[block] = e
	c.touch(e)
}

// Reserve charges device time only for the uncached blocks that overlap
// [off, off+n) and marks all covered blocks cached. It implements
// Device, so a Cache can stand wherever a Disk or RAID0 does. Over a
// fallible inner device (fault injection), read through TryReserve
// instead — this infallible path has no way to report the failure.
func (c *Cache) Reserve(off, n int64) time.Duration {
	d, err := c.TryReserve(off, n)
	if err != nil {
		// The failed blocks were not cached; all this error-less path
		// can do is charge no time.
		return c.dev.Clock().Now()
	}
	return d
}

// TryReserve is Reserve with the inner device's error path (it makes
// Cache a FallibleDevice). A block becomes cached only after the
// device reservation covering it succeeds: when a multi-block fill
// fails partway, the blocks of the failed read are NOT retained, so a
// later read cannot be served stale bytes for free — it pays device
// time (and sees the error) again. Blocks whose reservations completed
// before the failure stay cached; their data was served.
func (c *Cache) TryReserve(off, n int64) (time.Duration, error) {
	if n <= 0 {
		return c.dev.Clock().Now(), nil
	}
	first := off / c.blockSize
	last := (off + n - 1) / c.blockSize

	deadline := c.dev.Clock().Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Collect runs of consecutive missing blocks so the device sees
	// large sequential requests, not per-block dribble.
	var runStart int64 = -1
	flush := func(endExclusive int64) error {
		if runStart < 0 {
			return nil
		}
		devOff := runStart * c.blockSize
		devN := (endExclusive - runStart) * c.blockSize
		d, err := TryReserve(c.dev, devOff, devN)
		if err != nil {
			return err
		}
		if d > deadline {
			deadline = d
		}
		for b := runStart; b < endExclusive; b++ {
			c.insert(b)
		}
		runStart = -1
		return nil
	}
	for b := first; b <= last; b++ {
		if e, ok := c.blocks[b]; ok {
			c.stats.Hits++
			c.touch(e)
			if err := flush(b); err != nil {
				return 0, err
			}
			continue
		}
		c.stats.Misses++
		if runStart < 0 {
			runStart = b
		}
	}
	if err := flush(last + 1); err != nil {
		return 0, err
	}
	return deadline, nil
}

// ReserveWrite invalidates every cached block overlapping [off, off+n)
// and forwards the write to the underlying device. A writer — the spill
// layer rewriting a run region, most importantly — must not leave stale
// blocks behind: a subsequent read of the written range has to pay
// device time again rather than being served from pre-write cache
// state. The invalidation and the device reservation happen under one
// lock acquisition relative to concurrent Reserve calls on this cache,
// so a reader can never re-insert a covered block between the
// invalidation and the write reservation.
func (c *Cache) ReserveWrite(off, n int64) time.Duration {
	if n <= 0 {
		return c.dev.Clock().Now()
	}
	first := off / c.blockSize
	last := (off + n - 1) / c.blockSize
	c.mu.Lock()
	for b := first; b <= last; b++ {
		e, ok := c.blocks[b]
		if !ok {
			continue
		}
		// Unlink from the LRU list and drop the block.
		if e.prev != nil {
			e.prev.next = e.next
		}
		if e.next != nil {
			e.next.prev = e.prev
		}
		if c.head == e {
			c.head = e.next
		}
		if c.tail == e {
			c.tail = e.prev
		}
		delete(c.blocks, b)
		c.stats.Invalidations++
	}
	deadline := ReserveWrite(c.dev, off, n)
	c.mu.Unlock()
	return deadline
}

// Contains reports whether the block holding byte offset off is cached.
func (c *Cache) Contains(off int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.blocks[off/c.blockSize]
	return ok
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blocks)
}
