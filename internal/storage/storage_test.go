package storage

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func newTestDisk(t *testing.T, bw float64, seek time.Duration) (*Disk, *FakeClock) {
	t.Helper()
	clock := NewFakeClock()
	d, err := NewDisk(DiskConfig{Name: "d0", Bandwidth: bw, SeekTime: seek}, clock)
	if err != nil {
		t.Fatal(err)
	}
	return d, clock
}

func TestDiskServiceTime(t *testing.T) {
	d, clock := newTestDisk(t, 1e6, 0) // 1 MB/s
	deadline := d.Reserve(0, 1e6)
	if deadline != time.Second {
		t.Errorf("1 MB at 1 MB/s should take 1s, got %v", deadline)
	}
	clock.SleepUntil(deadline)
	// A second sequential read queues behind the first.
	deadline2 := d.Reserve(1e6, 5e5)
	if deadline2 != 1500*time.Millisecond {
		t.Errorf("sequential follow-up should finish at 1.5s, got %v", deadline2)
	}
}

func TestDiskSeekPenalty(t *testing.T) {
	const seek = 10 * time.Millisecond
	d, _ := newTestDisk(t, 1e6, seek)
	// First request pays an initial seek.
	d1 := d.Reserve(0, 1e6)
	if want := time.Second + seek; d1 != want {
		t.Errorf("first read deadline %v, want %v", d1, want)
	}
	// Sequential continuation: no seek.
	d2 := d.Reserve(1e6, 1e6)
	if want := 2*time.Second + seek; d2 != want {
		t.Errorf("sequential read deadline %v, want %v", d2, want)
	}
	// Discontiguous request: extra seek.
	d3 := d.Reserve(0, 1e6)
	if want := 3*time.Second + 2*seek; d3 != want {
		t.Errorf("random read deadline %v, want %v", d3, want)
	}
	s := d.Stats()
	if s.Seeks != 2 {
		t.Errorf("seeks = %d, want 2", s.Seeks)
	}
	if s.BytesRead != 3e6 {
		t.Errorf("bytes read = %d, want 3e6", s.BytesRead)
	}
}

func TestDiskIdleGap(t *testing.T) {
	d, clock := newTestDisk(t, 1e6, 0)
	d.Reserve(0, 1e6)
	// Let the disk go idle for 5s, then request: service starts now, not
	// at the old horizon.
	clock.SleepUntil(6 * time.Second)
	deadline := d.Reserve(1e6, 1e6)
	if want := 7 * time.Second; deadline != want {
		t.Errorf("post-idle deadline %v, want %v", deadline, want)
	}
}

func TestDiskValidation(t *testing.T) {
	clock := NewFakeClock()
	if _, err := NewDisk(DiskConfig{Bandwidth: 0}, clock); err == nil {
		t.Error("zero bandwidth should be rejected")
	}
	if _, err := NewDisk(DiskConfig{Bandwidth: 1, SeekTime: -time.Second}, clock); err == nil {
		t.Error("negative seek should be rejected")
	}
	if _, err := NewDisk(DiskConfig{Bandwidth: 1}, nil); err == nil {
		t.Error("nil clock should be rejected")
	}
}

func TestRAID0AggregateBandwidth(t *testing.T) {
	clock := NewFakeClock()
	var members []*Disk
	for i := 0; i < 3; i++ {
		d, err := NewDisk(DiskConfig{Name: "m", Bandwidth: 1e6}, clock)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, d)
	}
	r, err := NewRAID0(members, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bandwidth() != 3e6 {
		t.Errorf("aggregate bandwidth %v, want 3e6", r.Bandwidth())
	}
	// A large aligned read should take ~n/(3*bw).
	deadline := r.Reserve(0, 3e6)
	if deadline < 990*time.Millisecond || deadline > 1100*time.Millisecond {
		t.Errorf("3 MB over 3x1MB/s should take ~1s, got %v", deadline)
	}
	s := r.Stats()
	if s.BytesRead != 3e6 {
		t.Errorf("stats bytes %d, want 3e6", s.BytesRead)
	}
}

func TestRAID0StripeMapping(t *testing.T) {
	clock := NewFakeClock()
	var members []*Disk
	for i := 0; i < 2; i++ {
		d, err := NewDisk(DiskConfig{Name: "m", Bandwidth: 1e6}, clock)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, d)
	}
	r, err := NewRAID0(members, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Bytes [0,100) -> disk0, [100,200) -> disk1, [200,300) -> disk0...
	r.Reserve(0, 300)
	s0, s1 := members[0].Stats(), members[1].Stats()
	if s0.BytesRead != 200 || s1.BytesRead != 100 {
		t.Errorf("stripe distribution = %d/%d, want 200/100", s0.BytesRead, s1.BytesRead)
	}
}

func TestRAID0Validation(t *testing.T) {
	if _, err := NewRAID0(nil, 100); err == nil {
		t.Error("empty member list should be rejected")
	}
	clock := NewFakeClock()
	d, _ := NewDisk(DiskConfig{Name: "m", Bandwidth: 1}, clock)
	if _, err := NewRAID0([]*Disk{d}, 0); err == nil {
		t.Error("zero stripe unit should be rejected")
	}
	other, _ := NewDisk(DiskConfig{Name: "o", Bandwidth: 1}, NewFakeClock())
	if _, err := NewRAID0([]*Disk{d, other}, 100); err == nil {
		t.Error("mismatched clocks should be rejected")
	}
}

func TestTestbedRAID(t *testing.T) {
	clock := NewFakeClock()
	r, err := TestbedRAID(clock, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Bandwidth(), float64(384<<20); got < want*0.999 || got > want*1.001 {
		t.Errorf("testbed bandwidth = %v, want %v", got, want)
	}
	if r.Members() != 3 {
		t.Errorf("testbed members = %d, want 3", r.Members())
	}
	if _, err := TestbedRAID(clock, 0); err == nil {
		t.Error("zero factor should be rejected")
	}
}

func TestFileReadAt(t *testing.T) {
	clock := NewFakeClock()
	data := []byte("hello, storage world")
	f := BytesFile("f", data, NewNullDevice(clock))
	buf := make([]byte, 5)
	n, err := f.ReadAt(buf, 7)
	if err != nil || n != 5 || string(buf) != "stora" {
		t.Errorf("ReadAt(7,5) = %q, %d, %v", buf[:n], n, err)
	}
	// EOF behaviour.
	n, err = f.ReadAt(buf, int64(len(data))-2)
	if n != 2 || err != io.EOF {
		t.Errorf("short read at EOF = %d, %v; want 2, EOF", n, err)
	}
	if _, err = f.ReadAt(buf, int64(len(data))); err != io.EOF {
		t.Errorf("read past EOF = %v, want EOF", err)
	}
	if _, err = f.ReadAt(buf, -1); err == nil {
		t.Error("negative offset should error")
	}
}

func TestFileReaderSequential(t *testing.T) {
	clock := NewFakeClock()
	data := bytes.Repeat([]byte("abc"), 100)
	f := BytesFile("f", data, NewNullDevice(clock))
	r := f.NewReader()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("sequential read mismatch")
	}
	if r.Offset() != int64(len(data)) {
		t.Errorf("offset %d, want %d", r.Offset(), len(data))
	}
}

func TestFileChargesDevice(t *testing.T) {
	d, _ := newTestDisk(t, 1e6, 0)
	data := make([]byte, 1000)
	f, err := NewFile("f", int64(len(data)), 0, func(off int64, p []byte) {
		copy(p, data[off:])
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 500)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().BytesRead; got != 500 {
		t.Errorf("device charged %d bytes, want 500", got)
	}
	// The fake clock advanced by the service time.
	if now := d.Clock().Now(); now != 500*time.Microsecond {
		t.Errorf("clock advanced %v, want 500µs", now)
	}
}

func TestFileValidation(t *testing.T) {
	clock := NewFakeClock()
	dev := NewNullDevice(clock)
	if _, err := NewFile("f", -1, 0, func(int64, []byte) {}, dev); err == nil {
		t.Error("negative size should be rejected")
	}
	if _, err := NewFile("f", 1, 0, nil, dev); err == nil {
		t.Error("nil fill should be rejected")
	}
	if _, err := NewFile("f", 1, 0, func(int64, []byte) {}, nil); err == nil {
		t.Error("nil device should be rejected")
	}
}

func TestFileSet(t *testing.T) {
	clock := NewFakeClock()
	dev := NewNullDevice(clock)
	fs := NewFileSet([]*File{
		BytesFile("a", make([]byte, 10), dev),
		BytesFile("b", make([]byte, 20), dev),
	})
	if fs.Len() != 2 || fs.TotalSize() != 30 {
		t.Errorf("fileset len=%d total=%d, want 2, 30", fs.Len(), fs.TotalSize())
	}
	if fs.At(1).Name() != "b" {
		t.Errorf("At(1) = %q, want b", fs.At(1).Name())
	}
}

func TestFakeClock(t *testing.T) {
	c := NewFakeClock()
	c.SleepUntil(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", c.Now())
	}
	c.SleepUntil(time.Second) // past deadline: no-op
	if c.Now() != 5*time.Second {
		t.Errorf("Now = %v after past sleep, want 5s", c.Now())
	}
	c.Advance(time.Second)
	if c.Now() != 6*time.Second {
		t.Errorf("Now = %v after advance, want 6s", c.Now())
	}
}

func TestRealClockMonotonic(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	c.SleepUntil(a + 2*time.Millisecond)
	b := c.Now()
	if b < a+2*time.Millisecond {
		t.Errorf("SleepUntil returned early: %v -> %v", a, b)
	}
	if b > a+50*time.Millisecond {
		t.Errorf("SleepUntil overshot wildly: %v -> %v", a, b)
	}
}

// Property: RAID0 striping conserves bytes — whatever range is requested,
// member byte counts sum to the request size.
func TestRAID0ConservesBytes(t *testing.T) {
	f := func(offRaw uint32, nRaw uint16, membersRaw, unitRaw uint8) bool {
		members := int(membersRaw%4) + 1
		unit := int64(unitRaw%64) + 1
		off := int64(offRaw % 10000)
		n := int64(nRaw % 4096)
		clock := NewFakeClock()
		var ds []*Disk
		for i := 0; i < members; i++ {
			d, err := NewDisk(DiskConfig{Name: "m", Bandwidth: 1e9}, clock)
			if err != nil {
				return false
			}
			ds = append(ds, d)
		}
		r, err := NewRAID0(ds, unit)
		if err != nil {
			return false
		}
		r.Reserve(off, n)
		var sum int64
		for _, d := range ds {
			sum += d.Stats().BytesRead
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
