package storage

import "time"

// FallibleDevice is a Device whose read reservations can fail — the
// seam the fault-injection layer (internal/faults) plugs into. Real
// simulated devices never fail; wrappers that inject errors implement
// TryReserve and return them there, leaving the plain Reserve path
// (which has no error channel) for latency-only degradation.
type FallibleDevice interface {
	Device
	// TryReserve is Reserve with an error path: it books service time
	// for reading n bytes at off, or reports why the device could not.
	TryReserve(off, n int64) (time.Duration, error)
}

// TryReserve books read service time on dev, surfacing reservation
// failures from fallible devices. Infallible devices never fail; the
// call degrades to dev.Reserve.
func TryReserve(dev Device, off, n int64) (time.Duration, error) {
	if fd, ok := dev.(FallibleDevice); ok {
		return fd.TryReserve(off, n)
	}
	return dev.Reserve(off, n), nil
}
