package storage

import (
	"fmt"
	"time"
)

// RAID0 stripes reads across member disks in fixed-size stripe units, the
// way the testbed's 3-HDD RAID-0 aggregates the bandwidth of its members.
// A request covering k stripe units is decomposed into per-disk extents;
// each member disk reserves its share concurrently and the request
// completes when the slowest member does, so aggregate sequential
// bandwidth approaches the sum of the members'.
type RAID0 struct {
	members    []*Disk
	stripeUnit int64
	clock      Clock
}

// NewRAID0 builds a RAID-0 array over members with the given stripe unit
// in bytes. All members must share one clock.
func NewRAID0(members []*Disk, stripeUnit int64) (*RAID0, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("storage: RAID0 requires at least one member disk")
	}
	if stripeUnit <= 0 {
		return nil, fmt.Errorf("storage: RAID0 stripe unit must be positive, got %d", stripeUnit)
	}
	clock := members[0].Clock()
	for _, m := range members[1:] {
		if m.Clock() != clock {
			return nil, fmt.Errorf("storage: RAID0 members must share a clock")
		}
	}
	return &RAID0{members: members, stripeUnit: stripeUnit, clock: clock}, nil
}

// Clock returns the array's scheduling clock.
func (r *RAID0) Clock() Clock { return r.clock }

// Bandwidth returns the aggregate sequential bandwidth of the array.
func (r *RAID0) Bandwidth() float64 {
	var sum float64
	for _, m := range r.members {
		sum += m.Bandwidth()
	}
	return sum
}

// Members returns the number of member disks.
func (r *RAID0) Members() int { return len(r.members) }

// StripeUnit returns the stripe unit size in bytes.
func (r *RAID0) StripeUnit() int64 { return r.stripeUnit }

// Reserve decomposes [off, off+n) into stripe units, reserves the mapped
// extent on each member, and returns the latest member deadline.
func (r *RAID0) Reserve(off, n int64) time.Duration {
	return r.reserve(off, n, false)
}

// ReserveWrite decomposes a write the same way, reserving the write path
// of each member disk.
func (r *RAID0) ReserveWrite(off, n int64) time.Duration {
	return r.reserve(off, n, true)
}

func (r *RAID0) reserve(off, n int64, write bool) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("storage: negative request size %d on RAID0", n))
	}
	if n == 0 {
		return r.clock.Now()
	}
	// Walk the request stripe unit by stripe unit, accumulating one
	// contiguous extent per member disk, then reserve each extent once.
	// Within a single striped request each member's extent is contiguous
	// in the member's own address space.
	type extent struct {
		off, n int64
		used   bool
	}
	extents := make([]extent, len(r.members))
	for cur := off; cur < off+n; {
		unit := cur / r.stripeUnit
		member := int(unit % int64(len(r.members)))
		memberRow := unit / int64(len(r.members))
		inUnit := cur - unit*r.stripeUnit
		take := r.stripeUnit - inUnit
		if rem := off + n - cur; take > rem {
			take = rem
		}
		mOff := memberRow*r.stripeUnit + inUnit
		e := &extents[member]
		if !e.used {
			e.off, e.n, e.used = mOff, take, true
		} else {
			// Extend the member extent; rows are visited in order so the
			// extent stays contiguous per member.
			e.n += take
		}
		cur += take
	}
	deadline := r.clock.Now()
	for i, e := range extents {
		if !e.used {
			continue
		}
		var d time.Duration
		if write {
			d = r.members[i].ReserveWrite(e.off, e.n)
		} else {
			d = r.members[i].Reserve(e.off, e.n)
		}
		if d > deadline {
			deadline = d
		}
	}
	return deadline
}

// Stats sums the member disks' counters.
func (r *RAID0) Stats() DeviceStats {
	var total DeviceStats
	for _, m := range r.members {
		s := m.Stats()
		total.BytesRead += s.BytesRead
		total.Reads += s.Reads
		total.BytesWritten += s.BytesWritten
		total.Writes += s.Writes
		total.Seeks += s.Seeks
		if s.BusyTime > total.BusyTime {
			total.BusyTime = s.BusyTime // array busy ~ slowest member
		}
	}
	return total
}

// TestbedRAID constructs the paper's storage configuration scaled by
// factor: three identical disks whose aggregate bandwidth is
// 384 MB/s * factor. factor 1.0 reproduces the testbed; small factors
// make wall-clock experiments fast while preserving every ratio.
func TestbedRAID(clock Clock, factor float64) (*RAID0, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("storage: testbed scale factor must be positive, got %v", factor)
	}
	const aggregate = 384 << 20 // bytes/sec
	per := float64(aggregate) / 3 * factor
	members := make([]*Disk, 3)
	for i := range members {
		d, err := NewDisk(DiskConfig{
			Name:      fmt.Sprintf("hdd%d", i),
			Bandwidth: per,
			SeekTime:  0, // RAID sequential streams; seeks negligible at this grain
		}, clock)
		if err != nil {
			return nil, err
		}
		members[i] = d
	}
	return NewRAID0(members, 64<<10)
}
