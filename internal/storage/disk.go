package storage

import (
	"fmt"
	"sync"
	"time"
)

// Device models a block device that takes time to serve reads. Reserve
// books the service time for a request and returns the virtual/real
// completion deadline; callers then sleep on the device's clock until the
// deadline. Splitting reservation from sleeping lets RAID0 reserve on all
// member disks first and sleep once on the latest deadline.
type Device interface {
	// Reserve books service time for reading n bytes at byte offset off
	// and returns the completion deadline on the device clock.
	Reserve(off, n int64) time.Duration
	// Clock returns the clock the device schedules against.
	Clock() Clock
	// Bandwidth returns the nominal sequential read bandwidth in
	// bytes per second.
	Bandwidth() float64
	// Stats returns a snapshot of cumulative device counters.
	Stats() DeviceStats
}

// DeviceStats are cumulative counters for a device.
type DeviceStats struct {
	BytesRead    int64         // total payload bytes served to readers
	Reads        int64         // number of read requests
	BytesWritten int64         // total payload bytes accepted from writers
	Writes       int64         // number of write requests
	Seeks        int64         // requests that paid a seek penalty
	BusyTime     time.Duration // total time the device was occupied
}

// Writer is implemented by devices that model a write path: ReserveWrite
// books service time for writing n bytes at offset off, exactly as
// Reserve does for reads (same bandwidth, same FIFO queue, same seek
// accounting), and returns the completion deadline. The spill layer
// writes intermediate runs through it so spill IO is bandwidth-accounted
// against the same device serving ingest.
type Writer interface {
	ReserveWrite(off, n int64) time.Duration
}

// ReserveWrite books write service time on dev, falling back to the read
// path for devices that do not model writes separately (the timing is
// identical; only the stats attribution differs).
func ReserveWrite(dev Device, off, n int64) time.Duration {
	if w, ok := dev.(Writer); ok {
		return w.ReserveWrite(off, n)
	}
	return dev.Reserve(off, n)
}

// DiskConfig describes a simulated disk.
type DiskConfig struct {
	Name      string        // for diagnostics
	Bandwidth float64       // sequential read bandwidth, bytes/sec
	SeekTime  time.Duration // penalty for a discontiguous request
	// StreamBandwidth, when positive and below Bandwidth, caps the rate a
	// single request is delivered at: one outstanding request completes at
	// StreamBandwidth while the device as a whole still services queued
	// requests at Bandwidth. This models command-queued devices (NCQ
	// disks, multi-queue SSDs, RAID members behind a striping controller)
	// where a lone sequential reader cannot saturate the aggregate — the
	// gap the multi-lane ingest path exists to close. Zero (the default)
	// means a single request sees the full Bandwidth, the original
	// single-stream model.
	StreamBandwidth float64
}

// Disk is a single simulated spindle. Requests are serviced in FIFO
// order: each reservation begins when the previous one completes (or now,
// if the disk is idle) and lasts n/bandwidth, plus SeekTime when the
// request does not continue the previous request's byte range.
type Disk struct {
	cfg   DiskConfig
	clock Clock

	mu       sync.Mutex
	busyTill time.Duration // when the last accepted request completes
	nextOff  int64         // offset one past the last served byte
	stats    DeviceStats
}

// NewDisk builds a disk from cfg scheduling against clock.
func NewDisk(cfg DiskConfig, clock Clock) (*Disk, error) {
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("storage: disk %q bandwidth must be positive, got %v", cfg.Name, cfg.Bandwidth)
	}
	if cfg.SeekTime < 0 {
		return nil, fmt.Errorf("storage: disk %q seek time must be non-negative, got %v", cfg.Name, cfg.SeekTime)
	}
	if cfg.StreamBandwidth < 0 {
		return nil, fmt.Errorf("storage: disk %q stream bandwidth must be non-negative, got %v", cfg.Name, cfg.StreamBandwidth)
	}
	if clock == nil {
		return nil, fmt.Errorf("storage: disk %q requires a clock", cfg.Name)
	}
	return &Disk{cfg: cfg, clock: clock, nextOff: -1}, nil
}

// Clock returns the disk's scheduling clock.
func (d *Disk) Clock() Clock { return d.clock }

// Bandwidth returns the configured sequential bandwidth in bytes/sec.
func (d *Disk) Bandwidth() float64 { return d.cfg.Bandwidth }

// Name returns the configured device name.
func (d *Disk) Name() string { return d.cfg.Name }

// Reserve books the service time for n bytes at off and returns the
// completion deadline. n == 0 reserves no time and returns the current
// deadline horizon.
func (d *Disk) Reserve(off, n int64) time.Duration {
	return d.reserve(off, n, false)
}

// ReserveWrite books service time for writing n bytes at off. Writes
// share the read path's FIFO queue and head position: a spill write
// interleaved with ingest reads pays the same contention a real spindle
// would.
func (d *Disk) ReserveWrite(off, n int64) time.Duration {
	return d.reserve(off, n, true)
}

func (d *Disk) reserve(off, n int64, write bool) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("storage: negative request size %d on disk %q", n, d.cfg.Name))
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	now := d.clock.Now()
	start := d.busyTill
	if start < now {
		start = now
	}
	var service, seek time.Duration
	if n > 0 {
		if d.nextOff != off && d.nextOff >= 0 {
			seek = d.cfg.SeekTime
			d.stats.Seeks++
		} else if d.nextOff < 0 && d.cfg.SeekTime > 0 {
			// First request ever pays an initial seek.
			seek = d.cfg.SeekTime
			d.stats.Seeks++
		}
		service = seek + durationFor(n, d.cfg.Bandwidth)
		d.nextOff = off + n
		if write {
			d.stats.Writes++
			d.stats.BytesWritten += n
		} else {
			d.stats.Reads++
			d.stats.BytesRead += n
		}
		d.stats.BusyTime += service
	}
	// The device head is occupied for `service` at the aggregate
	// bandwidth; the next queued request can start then. The *caller's*
	// completion deadline may be later: a single stream drains at
	// StreamBandwidth, so a lone request finishes at the stream rate while
	// concurrent requests pipeline behind each other and together approach
	// the aggregate rate.
	d.busyTill = start + service
	complete := d.busyTill
	if n > 0 && d.cfg.StreamBandwidth > 0 && d.cfg.StreamBandwidth < d.cfg.Bandwidth {
		if c := start + seek + durationFor(n, d.cfg.StreamBandwidth); c > complete {
			complete = c
		}
	}
	return complete
}

// Stats returns a snapshot of the disk's counters.
func (d *Disk) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// durationFor converts a byte count at a bandwidth into service time.
func durationFor(n int64, bytesPerSec float64) time.Duration {
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}

// NullDevice is a Device with infinite bandwidth: reservations complete
// immediately. Useful for isolating compute behaviour in tests and for
// the "input already in memory" configurations.
type NullDevice struct {
	clock Clock
	mu    sync.Mutex
	stats DeviceStats
}

// NewNullDevice returns an infinitely fast device on clock.
func NewNullDevice(clock Clock) *NullDevice { return &NullDevice{clock: clock} }

// Reserve accounts the read and completes immediately.
func (d *NullDevice) Reserve(off, n int64) time.Duration {
	d.mu.Lock()
	d.stats.Reads++
	d.stats.BytesRead += n
	d.mu.Unlock()
	return d.clock.Now()
}

// ReserveWrite accounts the write and completes immediately.
func (d *NullDevice) ReserveWrite(off, n int64) time.Duration {
	d.mu.Lock()
	d.stats.Writes++
	d.stats.BytesWritten += n
	d.mu.Unlock()
	return d.clock.Now()
}

// Clock returns the device clock.
func (d *NullDevice) Clock() Clock { return d.clock }

// Bandwidth reports a very large finite number to keep ratio arithmetic
// in callers well-defined.
func (d *NullDevice) Bandwidth() float64 { return 1 << 50 }

// Stats returns a snapshot of counters.
func (d *NullDevice) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
