package storage

import (
	"fmt"
	"io"
)

// Fill deterministically produces the contents of a simulated file:
// it must write len(p) bytes of the file's content starting at byte
// offset off. Generators in internal/workload provide Fill functions so
// that arbitrarily large inputs exist without being materialized.
type Fill func(off int64, p []byte)

// File is a named, fixed-size file whose bytes come from a Fill function
// and whose read timing comes from a Device. It implements io.ReaderAt.
type File struct {
	name string
	size int64
	base int64 // byte offset of the file on the device, for striping
	fill Fill
	dev  Device
}

// NewFile creates a simulated file. base is the file's starting offset on
// the device (files laid out at distinct bases model distinct extents).
func NewFile(name string, size, base int64, fill Fill, dev Device) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("storage: file %q size must be non-negative, got %d", name, size)
	}
	if fill == nil {
		return nil, fmt.Errorf("storage: file %q requires a fill function", name)
	}
	if dev == nil {
		return nil, fmt.Errorf("storage: file %q requires a device", name)
	}
	return &File{name: name, size: size, base: base, fill: fill, dev: dev}, nil
}

// BytesFile builds a File over an in-memory byte slice (for tests and
// small inputs) on dev at base offset 0.
func BytesFile(name string, data []byte, dev Device) *File {
	f, err := NewFile(name, int64(len(data)), 0, func(off int64, p []byte) {
		copy(p, data[off:])
	}, dev)
	if err != nil {
		// BytesFile's arguments cannot trigger validation failures.
		panic(err)
	}
	return f
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// Device returns the device that serves this file.
func (f *File) Device() Device { return f.dev }

// ReadAt fills p with file contents starting at off, charging the device
// for the transfer and sleeping until the device completes. It satisfies
// io.ReaderAt: short reads at EOF return io.EOF.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	wait, err := f.IssueReadAt(p, off)
	if err != nil {
		return 0, err
	}
	return wait()
}

// IssueReadAt is the two-phase read the multi-lane ingest path uses: the
// issue step books the device reservation (in deterministic FIFO order on
// the caller's goroutine) and the returned wait completes the transfer —
// filling p and sleeping until the reserved deadline — possibly on
// another goroutine. A non-nil error means the read failed at issue and
// no bytes will be delivered; issuing reads in a fixed order keeps the
// device timeline (and any fault-injection schedule layered on the
// device) independent of how many lanes execute the waits.
func (f *File) IssueReadAt(p []byte, off int64) (func() (int, error), error) {
	if off < 0 {
		return nil, fmt.Errorf("storage: negative offset %d reading %q", off, f.name)
	}
	if off >= f.size {
		return nil, io.EOF
	}
	n := int64(len(p))
	if off+n > f.size {
		n = f.size - off
	}
	deadline, err := TryReserve(f.dev, f.base+off, n)
	if err != nil {
		return nil, fmt.Errorf("storage: read %q at %d: %w", f.name, off, err)
	}
	return func() (int, error) {
		f.fill(off, p[:n])
		f.dev.Clock().SleepUntil(deadline)
		if n < int64(len(p)) {
			return int(n), io.EOF
		}
		return int(n), nil
	}, nil
}

// NewReader returns a sequential reader over the whole file.
func (f *File) NewReader() *Reader { return &Reader{f: f} }

// Reader is a sequential io.Reader over a File.
type Reader struct {
	f   *File
	off int64
}

// Read reads the next chunk of the file.
func (r *Reader) Read(p []byte) (int, error) {
	if r.off >= r.f.size {
		return 0, io.EOF
	}
	n, err := r.f.ReadAt(p, r.off)
	r.off += int64(n)
	return n, err
}

// Offset returns the current sequential position.
func (r *Reader) Offset() int64 { return r.off }

// FileSet is an ordered collection of files on one device, the shape of a
// many-small-files word-count input (Hadoop-style) used by intra-file
// chunking.
type FileSet struct {
	files []*File
}

// NewFileSet wraps files preserving order.
func NewFileSet(files []*File) *FileSet { return &FileSet{files: files} }

// Len returns the number of files.
func (s *FileSet) Len() int { return len(s.files) }

// At returns the i-th file.
func (s *FileSet) At(i int) *File { return s.files[i] }

// TotalSize sums all file sizes.
func (s *FileSet) TotalSize() int64 {
	var t int64
	for _, f := range s.files {
		t += f.Size()
	}
	return t
}
