package storage

import (
	"sync"
	"testing"
	"time"
)

func cachedDisk(t *testing.T, bw float64, blockSize int64, capacity int) (*Cache, *Disk, *FakeClock) {
	t.Helper()
	clock := NewFakeClock()
	d, err := NewDisk(DiskConfig{Name: "d", Bandwidth: bw}, clock)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(d, blockSize, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c, d, clock
}

func TestCacheValidation(t *testing.T) {
	clock := NewFakeClock()
	d, _ := NewDisk(DiskConfig{Name: "d", Bandwidth: 1}, clock)
	if _, err := NewCache(nil, 10, 1); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := NewCache(d, 0, 1); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewCache(d, 10, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestCacheHitCostsNothing(t *testing.T) {
	c, d, clock := cachedDisk(t, 1e6, 1024, 16)
	// First read: miss, charged.
	dl := c.Reserve(0, 1024)
	if dl <= 0 {
		t.Fatal("miss should cost device time")
	}
	clock.SleepUntil(dl)
	before := d.Stats().BytesRead
	// Second read of the same block: free.
	dl2 := c.Reserve(0, 1024)
	if dl2 > clock.Now() {
		t.Errorf("cache hit cost device time: deadline %v > now %v", dl2, clock.Now())
	}
	if d.Stats().BytesRead != before {
		t.Error("cache hit reached the device")
	}
	cs := c.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("stats = %+v", cs)
	}
}

func TestCachePartialOverlap(t *testing.T) {
	c, d, _ := cachedDisk(t, 1e9, 1024, 16)
	c.Reserve(0, 1024) // cache block 0
	// Read blocks 0..3: only 1..3 hit the device.
	c.Reserve(0, 4*1024)
	if got := d.Stats().BytesRead; got != 4*1024 {
		t.Errorf("device read %d bytes, want 4096 (1 cached + 3 fetched of 4)", got)
	}
	cs := c.CacheStats()
	if cs.Hits != 1 || cs.Misses != 4 {
		t.Errorf("stats = %+v", cs)
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	c, _, _ := cachedDisk(t, 1e9, 1024, 2)
	c.Reserve(0, 1024)      // block 0
	c.Reserve(1024, 1024)   // block 1
	c.Reserve(0, 1024)      // touch block 0 (now MRU)
	c.Reserve(2*1024, 1024) // block 2: evicts block 1 (LRU)
	if !c.Contains(0) {
		t.Error("recently-used block 0 evicted")
	}
	if c.Contains(1024) {
		t.Error("LRU block 1 not evicted")
	}
	if !c.Contains(2 * 1024) {
		t.Error("new block 2 missing")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d blocks, want 2", c.Len())
	}
	if c.CacheStats().Evictions != 1 {
		t.Errorf("evictions = %d", c.CacheStats().Evictions)
	}
}

func TestCacheMissRunsCoalesce(t *testing.T) {
	c, d, _ := cachedDisk(t, 1e9, 1024, 64)
	c.Reserve(0, 16*1024) // 16 consecutive missing blocks
	if got := d.Stats().Reads; got != 1 {
		t.Errorf("device saw %d requests, want 1 coalesced run", got)
	}
}

func TestCacheAsFileDevice(t *testing.T) {
	clock := NewFakeClock()
	d, err := NewDisk(DiskConfig{Name: "d", Bandwidth: 1e6}, clock)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewCache(d, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i)
	}
	f, err := NewFile("f", int64(len(data)), 0, func(off int64, p []byte) { copy(p, data[off:]) }, cache)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	// Cold read takes device time.
	t0 := clock.Now()
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	cold := clock.Now() - t0
	// Warm read is near-free.
	t1 := clock.Now()
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	warm := clock.Now() - t1
	if cold < 60*time.Millisecond {
		t.Errorf("cold read took %v, want ~65ms", cold)
	}
	if warm > time.Millisecond {
		t.Errorf("warm read took %v, want ~0", warm)
	}
}

func TestCacheZeroLengthReserve(t *testing.T) {
	c, _, _ := cachedDisk(t, 1e9, 1024, 4)
	c.Reserve(100, 0)
	if c.Len() != 0 {
		t.Error("zero-length reserve cached blocks")
	}
}

func TestCacheWriteInvalidatesCoveredBlocks(t *testing.T) {
	c, d, _ := cachedDisk(t, 1000, 10, 64)

	// Populate blocks 0..3 (bytes 0..40).
	c.Reserve(0, 40)
	if !c.Contains(0) || !c.Contains(35) {
		t.Fatal("blocks not cached after read")
	}
	readBefore := d.Stats().BytesRead

	// A spill write over bytes 15..34 covers blocks 1, 2 and 3.
	c.ReserveWrite(15, 20)
	if c.Contains(15) || c.Contains(25) || c.Contains(30) {
		t.Error("write left stale cached blocks behind")
	}
	if !c.Contains(0) {
		t.Error("write invalidated an uncovered block")
	}
	if got := c.CacheStats().Invalidations; got != 3 {
		t.Errorf("Invalidations = %d, want 3", got)
	}
	if got := d.Stats().BytesWritten; got != 20 {
		t.Errorf("device BytesWritten = %d, want 20", got)
	}

	// Reading the written range back must pay device time again.
	c.Reserve(15, 20)
	if got := d.Stats().BytesRead - readBefore; got != 30 {
		t.Errorf("re-read after write hit the device for %d bytes, want 30 (blocks 1-3)", got)
	}
}

// TestCacheConcurrentReadersWithSpillWriter hammers the cache with
// concurrent readers while a spill writer repeatedly rewrites (and so
// invalidates) a sub-range. Run under -race this checks the locking of
// the invalidation path; the final assertions check that no stale block
// survives the last write.
func TestCacheConcurrentReadersWithSpillWriter(t *testing.T) {
	c, d, _ := cachedDisk(t, 1e9, 16, 1024)
	const span = 16 * 256 // 256 blocks

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			off := seed
			for i := 0; i < 500; i++ {
				off = (off*1103515245 + 12345) % span
				if off < 0 {
					off += span
				}
				c.Reserve(off, 48)
				c.Contains(off)
			}
		}(int64(r + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			c.ReserveWrite(int64(i%200)*16, 64)
		}
	}()
	wg.Wait()

	// Final write over the whole span: every block must be gone, and a
	// full re-read must hit the device for every byte.
	c.ReserveWrite(0, span)
	for b := int64(0); b < span; b += 16 {
		if c.Contains(b) {
			t.Fatalf("stale cached block at offset %d after covering write", b)
		}
	}
	readBefore := d.Stats().BytesRead
	c.Reserve(0, span)
	if got := d.Stats().BytesRead - readBefore; got != span {
		t.Errorf("re-read after covering write cost %d device bytes, want %d", got, span)
	}
}
