package storage

import (
	"errors"
	"testing"
	"time"
)

// flakyDevice fails TryReserve for requests starting at the configured
// offset — a stand-in for the fault-injection wrapper.
type flakyDevice struct {
	Device
	failOff int64
	errs    int
}

var errFlaky = errors.New("flaky device read failure")

func (d *flakyDevice) TryReserve(off, n int64) (time.Duration, error) {
	if off == d.failOff {
		d.errs++
		return 0, errFlaky
	}
	return d.Device.Reserve(off, n), nil
}

func TestTryReserveFallsBackToReserve(t *testing.T) {
	clk := NewFakeClock()
	dev := NewNullDevice(clk)
	if _, err := TryReserve(dev, 0, 100); err != nil {
		t.Fatalf("infallible device errored: %v", err)
	}
	if got := dev.Stats().Reads; got != 1 {
		t.Fatalf("fallback did not reach Reserve: %d reads", got)
	}
}

// A mid-fill failure must propagate out of the cache AND must not
// retain the blocks of the failed read: a later read of that range has
// to hit the device again instead of being served stale for free.
func TestCacheMidFillFailureDoesNotRetainBlocks(t *testing.T) {
	clk := NewFakeClock()
	const bs = 16
	flaky := &flakyDevice{Device: NewNullDevice(clk), failOff: 2 * bs}
	c, err := NewCache(flaky, bs, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Warm block 1 so the failing request [0,48) splits into two runs:
	// [0,16) succeeds, [32,48) fails.
	if _, err := c.TryReserve(bs, bs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TryReserve(0, 3*bs); !errors.Is(err, errFlaky) {
		t.Fatalf("mid-fill failure did not propagate: %v", err)
	}
	if !c.Contains(0) {
		t.Error("block 0 served before the failure should stay cached")
	}
	if c.Contains(2 * bs) {
		t.Error("block 2 cached although its device read failed")
	}
	// A retry of the failed range must reach the device again.
	before := flaky.errs
	if _, err := c.TryReserve(2*bs, bs); !errors.Is(err, errFlaky) {
		t.Fatalf("retry of failed range: %v", err)
	}
	if flaky.errs != before+1 {
		t.Error("retry of the failed range was served from cache")
	}
}

// The error must also surface through File.ReadAt — the path ingest
// actually takes.
func TestFileReadAtPropagatesDeviceFailure(t *testing.T) {
	clk := NewFakeClock()
	flaky := &flakyDevice{Device: NewNullDevice(clk), failOff: 0}
	f := BytesFile("in", []byte("0123456789"), flaky)
	if _, err := f.ReadAt(make([]byte, 4), 0); !errors.Is(err, errFlaky) {
		t.Fatalf("File.ReadAt swallowed the device failure: %v", err)
	}
}

// The infallible Reserve path over a fallible inner device degrades to
// charging no time — and still must not cache the failed blocks.
func TestCacheReserveOverFallibleInner(t *testing.T) {
	clk := NewFakeClock()
	const bs = 16
	flaky := &flakyDevice{Device: NewNullDevice(clk), failOff: 0}
	c, err := NewCache(flaky, bs, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.Reserve(0, bs)
	if c.Contains(0) {
		t.Error("failed block cached through the infallible Reserve path")
	}
}
