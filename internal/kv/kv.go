// Package kv defines the fundamental key-value types shared by the
// MapReduce runtimes, the intermediate containers, and the merge
// algorithms. It sits at the bottom of the dependency graph so that the
// container and runtime packages can exchange values without importing
// each other.
package kv

// Pair is a single key-value pair flowing through the system: emitted by
// mappers, stored in intermediate containers, reduced, and finally merged
// into sorted output.
type Pair[K any, V any] struct {
	Key K
	Val V
}

// Emitter receives key-value pairs from a user Map function. Each map
// worker is handed its own Emitter; implementations need not be
// synchronized across workers.
type Emitter[K any, V any] interface {
	Emit(key K, val V)
}

// EmitFunc adapts a function to the Emitter interface.
type EmitFunc[K any, V any] func(key K, val V)

// Emit calls f(key, val).
func (f EmitFunc[K, V]) Emit(key K, val V) { f(key, val) }

// BytesEmitter is the allocation-free fast path for byte-keyed
// workloads: container locals that can consume keys as raw byte slices
// implement it alongside Emitter. The key is only valid for the
// duration of the call — it typically aliases the input split — so
// implementations must copy any bytes they retain.
type BytesEmitter[V any] interface {
	EmitBytes(key []byte, val V)
}

// BytesEmitFunc adapts a function to the BytesEmitter interface.
type BytesEmitFunc[V any] func(key []byte, val V)

// EmitBytes calls f(key, val).
func (f BytesEmitFunc[V]) EmitBytes(key []byte, val V) { f(key, val) }

// BytesApp is an optional extension of App[string, V]: applications
// whose keys are substrings of the input implement MapBytes so the map
// hot path can emit token slices directly, without materializing a
// string per emission. The runtime uses it only when the destination
// local also implements BytesEmitter; MapBytes must emit exactly the
// pairs Map would (with keys as their byte representations), so the two
// paths produce identical job output.
type BytesApp[V any] interface {
	MapBytes(split []byte, emit BytesEmitter[V])
}

// Less is a strict weak ordering over keys, used by the reduce and merge
// phases to produce globally sorted output.
type Less[K any] func(a, b K) bool

// Combine merges two values associated with the same key. It must be
// associative; the runtime applies it in arbitrary grouping order.
type Combine[V any] func(a, b V) V

// App is the user-supplied application: the analog of the map/reduce
// callbacks a Phoenix++ application registers with the runtime.
//
// Map parses one input split (raw bytes) into key-value pairs.
// Reduce coalesces all values observed for one key into the final value.
type App[K comparable, V any] interface {
	// Map transforms one input split into key-value pairs.
	Map(split []byte, emit Emitter[K, V])
	// Reduce folds the values collected for key into a single output
	// value. For combiner-backed containers vals often has length 1.
	Reduce(key K, vals []V) V
	// Less orders keys for the merge phase.
	Less(a, b K) bool
}

// Combiner is an optional extension of App. When an application
// implements it, hash and array containers fold values eagerly at
// insertion time (Phoenix++ "combiner objects"), shrinking the
// intermediate set.
type Combiner[V any] interface {
	Combine(a, b V) V
}

// FixedKeyCodec describes a fixed-width, order-preserving byte encoding
// for an app's keys: Put writes exactly Width bytes into dst such that
// lexicographic (big-endian, unsigned) byte order equals the app's Less
// order. Apps with such keys — 10-byte terasort records, integer bucket
// ids — opt into the radix-partitioned run sort and the columnar
// loser-tree merge; everything else stays on the comparison path.
//
// Put returns false when the key cannot be encoded in Width bytes (for
// example a string of unexpected length); the caller then falls back to
// the comparison sort for that run. The encoding must be injective for
// keys that compare unequal, and equal bytes for keys that compare
// equal, so the radix path orders keys exactly like Less. Byte-identical
// output between the two paths additionally requires keys to be unique
// within each run (true for post-reduce runs: containers emit one pair
// per key per partition), because the radix sort is stable while
// SortPairs is not.
type FixedKeyCodec[K any] struct {
	// Width is the encoded key size in bytes; must be > 0.
	Width int
	// Put encodes k into dst[:Width]. len(dst) >= Width is the
	// caller's responsibility.
	Put func(dst []byte, k K) bool
}

// FixedKeyApp is the opt-in trait: apps whose keys have a fixed-width
// order-preserving encoding return the codec here.
type FixedKeyApp[K any] interface {
	FixedKey() FixedKeyCodec[K]
}

// FixedKeyOf returns the app's fixed-key codec, or nil when the app does
// not opt in (or returns a malformed codec).
func FixedKeyOf[K comparable, V any](app App[K, V]) *FixedKeyCodec[K] {
	fa, ok := app.(FixedKeyApp[K])
	if !ok {
		return nil
	}
	c := fa.FixedKey()
	if c.Width <= 0 || c.Put == nil {
		return nil
	}
	return &c
}

// StringFixedKey encodes width-byte strings as their raw bytes. Strings
// of any other length are rejected (Put returns false), which routes the
// containing run to the comparison sort.
func StringFixedKey(width int) FixedKeyCodec[string] {
	return FixedKeyCodec[string]{
		Width: width,
		Put: func(dst []byte, k string) bool {
			if len(k) != width {
				return false
			}
			copy(dst[:width], k)
			return true
		},
	}
}

// IntFixedKey encodes ints as 8 big-endian bytes with the sign bit
// flipped, so unsigned byte order equals signed integer order.
func IntFixedKey() FixedKeyCodec[int] {
	return FixedKeyCodec[int]{
		Width: 8,
		Put: func(dst []byte, k int) bool {
			u := uint64(k) ^ (1 << 63)
			dst[0] = byte(u >> 56)
			dst[1] = byte(u >> 48)
			dst[2] = byte(u >> 40)
			dst[3] = byte(u >> 32)
			dst[4] = byte(u >> 24)
			dst[5] = byte(u >> 16)
			dst[6] = byte(u >> 8)
			dst[7] = byte(u)
			return true
		},
	}
}

// Uint64FixedKey encodes uint64 keys as 8 big-endian bytes.
func Uint64FixedKey() FixedKeyCodec[uint64] {
	return FixedKeyCodec[uint64]{
		Width: 8,
		Put: func(dst []byte, k uint64) bool {
			dst[0] = byte(k >> 56)
			dst[1] = byte(k >> 48)
			dst[2] = byte(k >> 40)
			dst[3] = byte(k >> 32)
			dst[4] = byte(k >> 24)
			dst[5] = byte(k >> 16)
			dst[6] = byte(k >> 8)
			dst[7] = byte(k)
			return true
		},
	}
}

// SortPairs sorts ps in place by key using less (pdq-free, simple
// introsort-style quicksort with insertion sort for small ranges). The
// standard library sort is interface-based; this generic version avoids
// the boxing cost on the hot merge path.
func SortPairs[K any, V any](ps []Pair[K, V], less Less[K]) {
	sortRange(ps, less, maxDepth(len(ps)))
}

func maxDepth(n int) int {
	d := 0
	for i := n; i > 0; i >>= 1 {
		d++
	}
	return d * 2
}

func sortRange[K any, V any](ps []Pair[K, V], less Less[K], depth int) {
	for len(ps) > 12 {
		if depth == 0 {
			heapSort(ps, less)
			return
		}
		depth--
		p := medianOfThree(ps, less)
		// Hoare partition around pivot value.
		pivot := ps[p]
		ps[p], ps[len(ps)-1] = ps[len(ps)-1], ps[p]
		store := 0
		for i := 0; i < len(ps)-1; i++ {
			if less(ps[i].Key, pivot.Key) {
				ps[i], ps[store] = ps[store], ps[i]
				store++
			}
		}
		ps[store], ps[len(ps)-1] = ps[len(ps)-1], ps[store]
		// Recurse on smaller side, loop on larger to bound stack.
		if store < len(ps)-store-1 {
			sortRange(ps[:store], less, depth)
			ps = ps[store+1:]
		} else {
			sortRange(ps[store+1:], less, depth)
			ps = ps[:store]
		}
	}
	insertionSort(ps, less)
}

func medianOfThree[K any, V any](ps []Pair[K, V], less Less[K]) int {
	lo, mid, hi := 0, len(ps)/2, len(ps)-1
	if less(ps[mid].Key, ps[lo].Key) {
		lo, mid = mid, lo
	}
	if less(ps[hi].Key, ps[mid].Key) {
		mid = hi
		if less(ps[mid].Key, ps[lo].Key) {
			mid = lo
		}
	}
	return mid
}

func insertionSort[K any, V any](ps []Pair[K, V], less Less[K]) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j].Key, ps[j-1].Key); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func heapSort[K any, V any](ps []Pair[K, V], less Less[K]) {
	n := len(ps)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(ps, i, n, less)
	}
	for i := n - 1; i > 0; i-- {
		ps[0], ps[i] = ps[i], ps[0]
		siftDown(ps, 0, i, less)
	}
}

func siftDown[K any, V any](ps []Pair[K, V], root, n int, less Less[K]) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && less(ps[child].Key, ps[child+1].Key) {
			child++
		}
		if !less(ps[root].Key, ps[child].Key) {
			return
		}
		ps[root], ps[child] = ps[child], ps[root]
		root = child
	}
}

// IsSortedPairs reports whether ps is non-decreasing under less.
func IsSortedPairs[K any, V any](ps []Pair[K, V], less Less[K]) bool {
	for i := 1; i < len(ps); i++ {
		if less(ps[i].Key, ps[i-1].Key) {
			return false
		}
	}
	return true
}
