package kv

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestSortPairsSmall(t *testing.T) {
	cases := [][]int{
		nil,
		{1},
		{2, 1},
		{1, 2, 3},
		{3, 2, 1},
		{5, 5, 5, 5},
		{9, 1, 8, 2, 7, 3, 6, 4, 5},
	}
	for _, keys := range cases {
		ps := make([]Pair[int, string], len(keys))
		for i, k := range keys {
			ps[i] = Pair[int, string]{Key: k, Val: "v"}
		}
		SortPairs(ps, intLess)
		if !IsSortedPairs(ps, intLess) {
			t.Errorf("SortPairs(%v) not sorted: %v", keys, ps)
		}
	}
}

func TestSortPairsMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(2000)
		keys := make([]int, n)
		ps := make([]Pair[int, int], n)
		for i := range ps {
			k := rng.Intn(500) // plenty of duplicates
			keys[i] = k
			ps[i] = Pair[int, int]{Key: k, Val: i}
		}
		SortPairs(ps, intLess)
		sort.Ints(keys)
		for i := range ps {
			if ps[i].Key != keys[i] {
				t.Fatalf("trial %d: key %d = %d, want %d", trial, i, ps[i].Key, keys[i])
			}
		}
	}
}

func TestSortPairsPermutation(t *testing.T) {
	// Property: sorting preserves the multiset of (key, val) pairs.
	f := func(keys []uint16) bool {
		ps := make([]Pair[uint16, int], len(keys))
		counts := make(map[Pair[uint16, int]]int)
		for i, k := range keys {
			p := Pair[uint16, int]{Key: k, Val: int(k) * 3}
			ps[i] = p
			counts[p]++
		}
		SortPairs(ps, func(a, b uint16) bool { return a < b })
		for _, p := range ps {
			counts[p]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return IsSortedPairs(ps, func(a, b uint16) bool { return a < b })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortPairsAdversarialDepth(t *testing.T) {
	// Already-sorted, reverse-sorted and organ-pipe inputs exercise the
	// heapsort fallback path.
	n := 4096
	shapes := map[string]func(i int) int{
		"sorted":    func(i int) int { return i },
		"reverse":   func(i int) int { return n - i },
		"organpipe": func(i int) int { return min(i, n-i) },
		"constant":  func(i int) int { return 42 },
	}
	for name, gen := range shapes {
		ps := make([]Pair[int, int], n)
		for i := range ps {
			ps[i] = Pair[int, int]{Key: gen(i), Val: i}
		}
		SortPairs(ps, intLess)
		if !IsSortedPairs(ps, intLess) {
			t.Errorf("%s input not sorted", name)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestIsSortedPairs(t *testing.T) {
	sorted := []Pair[int, int]{{1, 0}, {2, 0}, {2, 0}, {3, 0}}
	if !IsSortedPairs(sorted, intLess) {
		t.Error("sorted slice reported unsorted")
	}
	unsorted := []Pair[int, int]{{2, 0}, {1, 0}}
	if IsSortedPairs(unsorted, intLess) {
		t.Error("unsorted slice reported sorted")
	}
	if !IsSortedPairs([]Pair[int, int](nil), intLess) {
		t.Error("nil slice should count as sorted")
	}
}

func TestEmitFunc(t *testing.T) {
	var gotK string
	var gotV int
	e := EmitFunc[string, int](func(k string, v int) { gotK, gotV = k, v })
	e.Emit("x", 7)
	if gotK != "x" || gotV != 7 {
		t.Errorf("EmitFunc passed (%q, %d), want (x, 7)", gotK, gotV)
	}
}
