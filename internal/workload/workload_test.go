package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"supmr/internal/storage"
)

func TestTeraRecordStructure(t *testing.T) {
	g := TeraGen{Seed: 1}
	var rec [TeraRecordSize]byte
	g.Record(0, rec[:])
	if rec[TeraRecordSize-2] != '\r' || rec[TeraRecordSize-1] != '\n' {
		t.Error("record not \\r\\n terminated")
	}
	for i := 0; i < TeraKeySize; i++ {
		if !strings.ContainsRune(keyAlphabet, rune(rec[i])) {
			t.Errorf("key byte %d = %q not in alphabet", i, rec[i])
		}
	}
}

func TestTeraRecordDeterministic(t *testing.T) {
	g := TeraGen{Seed: 7}
	var a, b [TeraRecordSize]byte
	g.Record(12345, a[:])
	g.Record(12345, b[:])
	if a != b {
		t.Error("same (seed, index) produced different records")
	}
	g2 := TeraGen{Seed: 8}
	g2.Record(12345, b[:])
	if a == b {
		t.Error("different seeds produced identical records")
	}
}

func TestTeraFillRandomAccessConsistency(t *testing.T) {
	// Property: Fill(off, p) matches the same bytes produced by a full
	// sequential fill, for any offset/length.
	g := TeraGen{Seed: 3}
	const records = 50
	whole := make([]byte, records*TeraRecordSize)
	g.Fill()(0, whole)

	f := func(offRaw, nRaw uint16) bool {
		off := int64(offRaw) % int64(len(whole))
		n := int(nRaw)%500 + 1
		if off+int64(n) > int64(len(whole)) {
			n = len(whole) - int(off)
		}
		part := make([]byte, n)
		g.Fill()(off, part)
		return bytes.Equal(part, whole[off:off+int64(n)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseTeraRecords(t *testing.T) {
	g := TeraGen{Seed: 2}
	buf := make([]byte, 10*TeraRecordSize)
	g.Fill()(0, buf)
	var keys []string
	n, err := ParseTeraRecords(buf, func(rec []byte) {
		keys = append(keys, KeyOf(rec))
	})
	if err != nil || n != 10 {
		t.Fatalf("parsed %d records, err %v", n, err)
	}
	if len(keys) != 10 {
		t.Fatalf("got %d keys", len(keys))
	}
	for _, k := range keys {
		if len(k) != TeraKeySize {
			t.Errorf("key %q has length %d", k, len(k))
		}
	}
	// Misaligned buffers are rejected.
	if _, err := ParseTeraRecords(buf[:150], func([]byte) {}); err == nil {
		t.Error("misaligned buffer should error")
	}
	// Corrupted terminator detected.
	bad := append([]byte(nil), buf...)
	bad[TeraRecordSize-1] = 'X'
	if _, err := ParseTeraRecords(bad, func([]byte) {}); err == nil {
		t.Error("corrupt terminator should error")
	}
}

func TestUint64KeyPreservesOrder(t *testing.T) {
	f := func(a, b [8]byte) bool {
		cmp := bytes.Compare(a[:], b[:])
		ka, kb := Uint64Key(a[:]), Uint64Key(b[:])
		switch {
		case cmp < 0:
			return ka < kb
		case cmp > 0:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTeraFile(t *testing.T) {
	clock := storage.NewFakeClock()
	f, err := TeraGen{Seed: 1}.File("t", 100, storage.NewNullDevice(clock))
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100*TeraRecordSize {
		t.Errorf("file size %d, want %d", f.Size(), 100*TeraRecordSize)
	}
}

func TestWordDeterministicAndDistinct(t *testing.T) {
	seen := make(map[string]int)
	for r := 0; r < 5000; r++ {
		w := Word(r)
		if w == "" {
			t.Fatalf("rank %d produced empty word", r)
		}
		if prev, dup := seen[w]; dup {
			t.Fatalf("ranks %d and %d both map to %q", prev, r, w)
		}
		seen[w] = r
	}
	if Word(3) != Word(3) {
		t.Error("Word not deterministic")
	}
}

func TestTextBlockEndsAtWordBoundary(t *testing.T) {
	g := TextGen{Seed: 5}
	block := make([]byte, g.block())
	for bi := int64(0); bi < 20; bi++ {
		g.fillBlock(bi, block)
		last := block[len(block)-1]
		if last != '\n' && last != ' ' {
			t.Errorf("block %d ends mid-word with %q", bi, last)
		}
	}
}

func TestTextFillRandomAccessConsistency(t *testing.T) {
	g := TextGen{Seed: 9}
	whole := make([]byte, 5*DefaultTextBlock)
	g.Fill()(0, whole)
	part := make([]byte, 1000)
	g.Fill()(3000, part)
	if !bytes.Equal(part, whole[3000:4000]) {
		t.Error("random-access text differs from sequential text")
	}
}

func TestTextZipfSkew(t *testing.T) {
	// The most frequent word should dominate: Zipf text is very skewed.
	g := TextGen{Seed: 11}
	buf := make([]byte, 256<<10)
	g.Fill()(0, buf)
	counts := make(map[string]int)
	total := 0
	Tokenize(buf, func(w []byte) {
		counts[string(w)]++
		total++
	})
	if total == 0 {
		t.Fatal("no words generated")
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if ratio := float64(max) / float64(total); ratio < 0.05 {
		t.Errorf("top word frequency %.3f, want skewed (>0.05)", ratio)
	}
	if len(counts) < 100 {
		t.Errorf("vocabulary too small: %d distinct words", len(counts))
	}
}

func TestTokenize(t *testing.T) {
	var words []string
	Tokenize([]byte("  foo bar\nbaz\tqux  "), func(w []byte) {
		words = append(words, string(w))
	})
	want := []string{"foo", "bar", "baz", "qux"}
	if len(words) != len(want) {
		t.Fatalf("got %v, want %v", words, want)
	}
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("got %v, want %v", words, want)
		}
	}
	// Trailing word without separator.
	words = nil
	Tokenize([]byte("tail"), func(w []byte) { words = append(words, string(w)) })
	if len(words) != 1 || words[0] != "tail" {
		t.Errorf("trailing word: %v", words)
	}
	// Empty input.
	Tokenize(nil, func(w []byte) { t.Error("callback on empty input") })
}

func TestFileSetGeneration(t *testing.T) {
	clock := storage.NewFakeClock()
	dev := storage.NewNullDevice(clock)
	set, err := TextGen{Seed: 1}.FileSet("part", 5, 1024, dev)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 5 || set.TotalSize() != 5*1024 {
		t.Errorf("fileset len=%d total=%d", set.Len(), set.TotalSize())
	}
	if set.At(3).Name() != "part-3" {
		t.Errorf("name = %q, want part-3", set.At(3).Name())
	}
	// Distinct files should have distinct content (different sub-seeds).
	a := make([]byte, 256)
	b := make([]byte, 256)
	if _, err := set.At(0).ReadAt(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := set.At(1).ReadAt(b, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("files 0 and 1 have identical content")
	}
}

func TestValidateSorted(t *testing.T) {
	feed := func(keys []string) func() (string, bool) {
		i := 0
		return func() (string, bool) {
			if i >= len(keys) {
				return "", false
			}
			k := keys[i]
			i++
			return k, true
		}
	}
	ok := ValidateSorted(feed([]string{"a", "b", "b", "c"}))
	if !ok.Ordered || ok.Records != 4 || ok.FirstKey != "a" || ok.LastKey != "c" {
		t.Errorf("sorted check = %+v", ok)
	}
	bad := ValidateSorted(feed([]string{"b", "a"}))
	if bad.Ordered {
		t.Error("out-of-order keys reported ordered")
	}
	// Checksum is order-independent: permutations match.
	s1 := ValidateSorted(feed([]string{"x", "y", "z"}))
	s2 := ValidateSorted(feed([]string{"z", "x", "y"}))
	if s1.Sum != s2.Sum {
		t.Error("checksum should be order-independent")
	}
	// Different multisets differ (overwhelmingly likely).
	s3 := ValidateSorted(feed([]string{"x", "y", "q"}))
	if s3.Sum == s1.Sum {
		t.Error("different key sets share a checksum")
	}
	empty := ValidateSorted(feed(nil))
	if !empty.Ordered || empty.Records != 0 {
		t.Errorf("empty check = %+v", empty)
	}
}
