package workload

import (
	"math/rand"
	"strings"

	"supmr/internal/storage"
)

// TextGen produces word-count input: space/newline-separated words drawn
// from a Zipf-distributed vocabulary, the skew real text exhibits (and
// what makes the hash container's combiner effective: a huge input set
// shrinks to a small intermediate set).
//
// Content is generated in fixed-size blocks so any byte range is a pure
// function of (Seed, block index). Every block ends at a word boundary
// (padded with newlines), so blocks never split words; chunk boundary
// adjustment is still exercised because chunks cut blocks mid-word.
type TextGen struct {
	Seed      int64
	Vocab     int     // vocabulary size; 0 means DefaultVocab
	ZipfS     float64 // Zipf skew; 0 means 1.2
	BlockSize int     // generation block; 0 means 4096
}

// Default text generation parameters.
const (
	DefaultVocab     = 50000
	DefaultZipfS     = 1.2
	DefaultTextBlock = 4096
)

func (g TextGen) vocab() int {
	if g.Vocab > 0 {
		return g.Vocab
	}
	return DefaultVocab
}

func (g TextGen) zipfS() float64 {
	if g.ZipfS > 1.0 {
		return g.ZipfS
	}
	return DefaultZipfS
}

func (g TextGen) block() int {
	if g.BlockSize > 0 {
		return g.BlockSize
	}
	return DefaultTextBlock
}

// syllables compose pronounceable deterministic words.
var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
	"ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
	"ta", "te", "ti", "to", "tu", "za", "ze", "zi", "zo", "zu",
}

// Word returns vocabulary entry rank (0 = most frequent). Words get
// longer as rank grows, mimicking natural lexicons.
func Word(rank int) string {
	var b strings.Builder
	n := 2
	for r := rank; r >= len(syllables)*len(syllables); r /= len(syllables) {
		n++
	}
	x := rank
	for i := 0; i < n; i++ {
		b.WriteString(syllables[x%len(syllables)])
		x /= len(syllables)
	}
	return b.String()
}

// fillBlock writes exactly blockSize bytes of text for block bi into dst.
func (g TextGen) fillBlock(bi int64, dst []byte) {
	rng := rand.New(rand.NewSource(g.Seed ^ (bi+1)*0x5851f42d4c957f2d))
	zipf := rand.NewZipf(rng, g.zipfS(), 1, uint64(g.vocab()-1))
	pos := 0
	wordsOnLine := 0
	for {
		w := Word(int(zipf.Uint64()))
		sep := byte(' ')
		wordsOnLine++
		if wordsOnLine >= 12 {
			sep = '\n'
			wordsOnLine = 0
		}
		if pos+len(w)+1 > len(dst) {
			break
		}
		copy(dst[pos:], w)
		pos += len(w)
		dst[pos] = sep
		pos++
	}
	// Pad the tail with newlines so the block ends on a word boundary.
	for ; pos < len(dst); pos++ {
		dst[pos] = '\n'
	}
}

// Fill returns a storage.Fill over the infinite text stream.
func (g TextGen) Fill() storage.Fill {
	bs := g.block()
	return func(off int64, p []byte) {
		block := make([]byte, bs)
		for len(p) > 0 {
			bi := off / int64(bs)
			in := off % int64(bs)
			g.fillBlock(bi, block)
			n := copy(p, block[in:])
			p = p[n:]
			off += int64(n)
		}
	}
}

// File creates a simulated text file of size bytes on dev.
func (g TextGen) File(name string, size int64, dev storage.Device) (*storage.File, error) {
	return storage.NewFile(name, size, 0, g.Fill(), dev)
}

// FileSet creates count text files of fileSize bytes each on dev, laid
// out at distinct device extents — the many-small-files shape of a
// Hadoop-style word count input for intra-file chunking.
func (g TextGen) FileSet(prefix string, count int, fileSize int64, dev storage.Device) (*storage.FileSet, error) {
	files := make([]*storage.File, count)
	for i := range files {
		sub := TextGen{Seed: g.Seed + int64(i)*7919, Vocab: g.Vocab, ZipfS: g.ZipfS, BlockSize: g.BlockSize}
		f, err := storage.NewFile(
			nameIndexed(prefix, i), fileSize, int64(i)*fileSize, sub.Fill(), dev)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	return storage.NewFileSet(files), nil
}

func nameIndexed(prefix string, i int) string {
	return prefix + "-" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// Tokenize splits text into words on ASCII whitespace, calling fn for
// each word. It allocates nothing: fn receives sub-slices of buf.
func Tokenize(buf []byte, fn func(word []byte)) {
	start := -1
	for i, c := range buf {
		if c == ' ' || c == '\n' || c == '\r' || c == '\t' {
			if start >= 0 {
				fn(buf[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		fn(buf[start:])
	}
}
