// Package workload generates the paper's two benchmark inputs
// deterministically and with random access: terasort-style fixed-width
// records for the sort application and Zipf-distributed text for word
// count, plus many-small-file sets for intra-file chunking. Generators
// expose storage.Fill functions so inputs of any size exist without being
// materialized in memory.
package workload

import (
	"encoding/binary"
	"fmt"

	"supmr/internal/storage"
)

// Terasort record geometry. The paper notes each key-value pair in the
// sort input is terminated with \r\n; we use the classic 100-byte record:
// a 10-byte key, an 88-byte payload, and the 2-byte terminator.
const (
	TeraRecordSize  = 100
	TeraKeySize     = 10
	TeraPayloadSize = TeraRecordSize - TeraKeySize - 2
)

// TeraGen produces terasort-style records. Record i is a pure function of
// (Seed, i), so any byte range of the input can be generated on demand.
type TeraGen struct {
	Seed uint64
}

// splitmix64 is a strong 64-bit mixer; each call advances the state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// keyAlphabet is the printable alphabet terasort keys draw from.
const keyAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// Record writes the 100-byte record with index idx into dst, which must
// have length >= TeraRecordSize.
func (g TeraGen) Record(idx int64, dst []byte) {
	state := g.Seed ^ uint64(idx)*0x9e3779b97f4a7c15
	r1 := splitmix64(&state)
	r2 := splitmix64(&state)
	// 10-byte printable key.
	for i := 0; i < TeraKeySize; i++ {
		var bits uint64
		if i < 5 {
			bits = r1 >> (i * 12)
		} else {
			bits = r2 >> ((i - 5) * 12)
		}
		dst[i] = keyAlphabet[bits%uint64(len(keyAlphabet))]
	}
	// Payload: record index in decimal (useful for debugging) padded with
	// a repeating filler derived from the index, terasort-style.
	pay := dst[TeraKeySize : TeraKeySize+TeraPayloadSize]
	n := copy(pay, fmt.Sprintf("%020d", idx))
	fill := byte('A' + idx%26)
	for i := n; i < len(pay); i++ {
		pay[i] = fill
	}
	dst[TeraRecordSize-2] = '\r'
	dst[TeraRecordSize-1] = '\n'
}

// Fill returns a storage.Fill producing the concatenated record stream.
func (g TeraGen) Fill() storage.Fill {
	return func(off int64, p []byte) {
		var rec [TeraRecordSize]byte
		for len(p) > 0 {
			idx := off / TeraRecordSize
			in := off % TeraRecordSize
			g.Record(idx, rec[:])
			n := copy(p, rec[in:])
			p = p[n:]
			off += int64(n)
		}
	}
}

// File creates a simulated terasort input of exactly records records on
// dev.
func (g TeraGen) File(name string, records int64, dev storage.Device) (*storage.File, error) {
	return storage.NewFile(name, records*TeraRecordSize, 0, g.Fill(), dev)
}

// KeyOf extracts the 10-byte key of a record as a string.
func KeyOf(record []byte) string {
	if len(record) < TeraKeySize {
		return string(record)
	}
	return string(record[:TeraKeySize])
}

// ParseTeraRecords walks a buffer of whole \r\n-terminated records,
// invoking fn with each record (terminator included). It returns the
// number of records seen and an error if the buffer does not consist of
// whole records — chunk boundary adjustment guarantees it always does.
func ParseTeraRecords(buf []byte, fn func(record []byte)) (int64, error) {
	if len(buf)%TeraRecordSize != 0 {
		return 0, fmt.Errorf("workload: buffer of %d bytes is not a whole number of %d-byte records", len(buf), TeraRecordSize)
	}
	var n int64
	for off := 0; off < len(buf); off += TeraRecordSize {
		rec := buf[off : off+TeraRecordSize]
		if rec[TeraRecordSize-2] != '\r' || rec[TeraRecordSize-1] != '\n' {
			return n, fmt.Errorf("workload: record %d missing \\r\\n terminator", n)
		}
		fn(rec)
		n++
	}
	return n, nil
}

// Uint64Key packs the first 8 bytes of a terasort key into a uint64 that
// preserves lexicographic order, letting the sort app compare keys with
// one integer comparison.
func Uint64Key(key []byte) uint64 {
	var b [8]byte
	copy(b[:], key)
	return binary.BigEndian.Uint64(b[:])
}

// SortChecksum summarizes a sorted output the way terasort's valsort
// does: it verifies the keys are non-decreasing and folds every key
// into an order-independent checksum, so a baseline run and a SupMR run
// can be compared without materializing both outputs.
type SortChecksum struct {
	Records  int64
	Sum      uint64 // order-independent key checksum
	Ordered  bool   // keys non-decreasing
	FirstKey string
	LastKey  string
}

// ValidateSorted checks ordering over a stream of keys delivered in
// output order via next (which returns "", false at the end).
func ValidateSorted(next func() (string, bool)) SortChecksum {
	out := SortChecksum{Ordered: true}
	prev := ""
	for {
		k, ok := next()
		if !ok {
			return out
		}
		if out.Records == 0 {
			out.FirstKey = k
		} else if k < prev {
			out.Ordered = false
		}
		out.LastKey = k
		prev = k
		out.Records++
		// Order-independent fold: sum of mixed key hashes.
		var h uint64 = 1469598103934665603
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= 1099511628211
		}
		out.Sum += h
	}
}
