package workload

import (
	"supmr/internal/storage"
)

// SeqGen produces the self-indexed numeric input of the 2-round prefix
// sum example: fixed 16-byte records "iiiiiii vvvvvvv\n" where i is the
// record index and v a deterministic pseudo-random value, both
// zero-padded to 7 digits. Records carry their own index, so the
// per-block partial sums of round 1 are a pure function of content —
// independent of chunking, lane count and node routing.
type SeqGen struct {
	Seed int64
}

// SeqRecordWidth is the fixed record width in bytes.
const SeqRecordWidth = 16

// seqValueMod bounds values to the 7 digits the record format holds.
const seqValueMod = 10000000

// Value returns record i's deterministic value in [0, 10^7).
func (g SeqGen) Value(i int64) int64 {
	// splitmix64-style mixing over (seed, index).
	x := uint64(g.Seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x % seqValueMod)
}

// fillRecord renders record i into dst[:SeqRecordWidth].
func (g SeqGen) fillRecord(i int64, dst []byte) {
	put7 := func(at int, v int64) {
		for k := 6; k >= 0; k-- {
			dst[at+k] = byte('0' + v%10)
			v /= 10
		}
	}
	put7(0, i%seqValueMod)
	dst[7] = ' '
	put7(8, g.Value(i))
	dst[15] = '\n'
}

// Fill returns a storage.Fill over the infinite record stream.
func (g SeqGen) Fill() storage.Fill {
	return func(off int64, p []byte) {
		var rec [SeqRecordWidth]byte
		for len(p) > 0 {
			i := off / SeqRecordWidth
			in := off % SeqRecordWidth
			g.fillRecord(i, rec[:])
			n := copy(p, rec[in:])
			p = p[n:]
			off += int64(n)
		}
	}
}

// File creates a simulated file of records 16-byte records on dev.
func (g SeqGen) File(name string, records int64, dev storage.Device) (*storage.File, error) {
	return storage.NewFile(name, records*SeqRecordWidth, 0, g.Fill(), dev)
}

// BlockSums returns the expected per-block value sums for records
// grouped block records apiece — the reference round-1 output tests
// diff the pipeline against.
func (g SeqGen) BlockSums(records, block int64) []int64 {
	if block <= 0 || records <= 0 {
		return nil
	}
	sums := make([]int64, (records+block-1)/block)
	for i := int64(0); i < records; i++ {
		sums[i/block] += g.Value(i)
	}
	return sums
}
