package egress

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"supmr/internal/exec"
	"supmr/internal/faults"
	"supmr/internal/metrics"
	"supmr/internal/spill"
	"supmr/internal/storage"
)

// DefaultExtentBytes is the extent size when Config.ExtentBytes is 0.
const DefaultExtentBytes = 256 << 10

// Config describes one parallel egress.
type Config struct {
	// Pool dispatches extent writes onto the IO lanes. Required.
	Pool exec.Executor
	// Lanes bounds how many extent writes are in flight at once:
	// the egress "parallel restore" width. <= 1 is the serial writer —
	// extents written strictly one after another — which the manifest
	// guarantees is byte-identical to any wider setting.
	Lanes int
	// ExtentBytes is the extent size (DefaultExtentBytes when 0).
	ExtentBytes int64
	// Device, when set, charges each extent write's IO time through the
	// device write path, so egress contends for the same simulated
	// bandwidth as ingest and spill. Nil models a free output device.
	Device storage.Device
	// Backing holds extent payloads (spill.MemBacking when nil).
	Backing spill.Backing
	// Injector, when set, wraps each extent's payload as fault site
	// "egress<i>": write faults tear the extent mid-write. Sites are
	// per-extent, so the fault schedule is a pure function of the plan
	// and the extent sequence — independent of lane interleaving.
	Injector *faults.Injector
	// Retry recovers transient extent faults by rewriting the whole
	// extent (the payload is retained until the write verifies), with
	// the policy's capped backoff on Clock. The zero policy fails on
	// the first fault.
	Retry faults.RetryPolicy
	// Clock times retry backoff; defaults to Device's clock, else real.
	Clock storage.Clock
	// Counters receives retry/recover counts (may be nil).
	Counters *faults.Counters
	// Name names the materialized output (default "egress").
	Name string
}

func (c Config) extentBytes() int64 {
	if c.ExtentBytes > 0 {
		return c.ExtentBytes
	}
	return DefaultExtentBytes
}

func (c Config) lanes() int {
	if c.Lanes > 1 {
		return c.Lanes
	}
	return 1
}

func (c Config) clock() storage.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	if c.Device != nil {
		return c.Device.Clock()
	}
	return storage.NewRealClock()
}

func (c Config) name() string {
	if c.Name != "" {
		return c.Name
	}
	return "egress"
}

// extent is one dispatched output extent.
type extent struct {
	data spill.RunData // raw payload storage, read by Output after the write verifies
	len  int64
	crc  uint32
}

// Writer cuts the encoded output stream into fixed-size extents and
// writes them concurrently. The caller streams the output through
// Write from a single goroutine; Close flushes the tail extent, joins
// every in-flight write and returns the stitched Output. Extent
// boundaries depend only on the byte stream and ExtentBytes, so the
// manifest — and the stitched bytes — are identical at any lane count.
type Writer struct {
	cfg     Config
	retrier *faults.Retrier
	cur     []byte
	extents []extent
	pending []*exec.Handle // in-flight extent writes, oldest first
	total   int64
	err     error // first dispatch/write error; poisons further dispatch
	closed  bool
}

// NewWriter builds a Writer over cfg.
func NewWriter(cfg Config) (*Writer, error) {
	if cfg.Pool == nil {
		return nil, errors.New("egress: writer requires an executor pool")
	}
	if cfg.ExtentBytes < 0 {
		return nil, fmt.Errorf("egress: extent size must be positive, got %d", cfg.ExtentBytes)
	}
	if cfg.Lanes < 0 {
		return nil, fmt.Errorf("egress: lane count must be positive, got %d", cfg.Lanes)
	}
	if cfg.Backing == nil {
		cfg.Backing = spill.MemBacking{}
	}
	w := &Writer{cfg: cfg}
	if cfg.Retry.Enabled() {
		w.retrier = faults.NewRetrier(cfg.Retry, cfg.clock(), cfg.Counters)
	}
	return w, nil
}

// Write streams output bytes into the extent cutter. It never fails
// mid-stream — write errors surface at Close, after every extent has
// been joined — but stops dispatching new extents once one has failed.
func (w *Writer) Write(p []byte) (int, error) {
	n := len(p)
	size := int(w.cfg.extentBytes())
	for len(p) > 0 {
		if w.cur == nil {
			w.cur = make([]byte, 0, size)
		}
		c := copy(w.cur[len(w.cur):size], p)
		w.cur = w.cur[:len(w.cur)+c]
		p = p[c:]
		if len(w.cur) == size {
			w.dispatch(w.cur)
			w.cur = nil
		}
	}
	return n, nil
}

// dispatch seals one extent and hands it to an IO lane, blocking while
// the in-flight window is full so at most Lanes writes overlap.
func (w *Writer) dispatch(payload []byte) {
	idx := len(w.extents)
	ext := extent{len: int64(len(payload)), crc: crc32.Checksum(payload, castagnoli)}
	off := w.total
	w.total += ext.len
	if w.err != nil {
		w.extents = append(w.extents, ext)
		return
	}
	data, err := w.cfg.Backing.NewRun(idx)
	if err != nil {
		w.err = fmt.Errorf("egress: extent %d: %w", idx, err)
		w.extents = append(w.extents, ext)
		return
	}
	ext.data = data
	w.extents = append(w.extents, ext)
	dst := faults.BlockFile(data)
	if w.cfg.Injector != nil {
		dst = w.cfg.Injector.WrapBlockFile(fmt.Sprintf("egress%d", idx), data)
	}
	for len(w.pending) >= w.cfg.lanes() {
		w.join(1)
		if w.err != nil {
			return
		}
	}
	// Reserve the device here, not in the lane: the single producer books
	// write service in extent order once a lane slot frees, so up to Lanes
	// reservations queue at the device and pipeline toward its aggregate
	// bandwidth, while the serial writer re-reserves only after each
	// extent completes and stays at the single-stream rate. The virtual
	// timeline is then a pure function of the extent sequence and lane
	// count, not of goroutine interleaving.
	var deadline time.Duration
	if w.cfg.Device != nil {
		deadline = storage.ReserveWrite(w.cfg.Device, off, ext.len)
	}
	h := w.cfg.Pool.GoIOSized("egress", metrics.StateIOWait, ext.len, func() error {
		return w.writeExtent(idx, dst, payload, off, ext.crc, deadline)
	})
	w.pending = append(w.pending, h)
}

// writeExtent is one extent's write task, run on an IO lane: write the
// whole payload, charge the device, read it back and verify the CRC.
// A fault anywhere — including a torn write that left half the payload
// — retries the whole extent; the payload stays resident until the
// read-back verifies, so a retry always rewrites from the original
// bytes, never from torn state.
func (w *Writer) writeExtent(idx int, dst faults.BlockFile, payload []byte, off int64, crc uint32, deadline time.Duration) error {
	first := true
	op := func() error {
		if _, err := dst.WriteAt(payload, 0); err != nil {
			return err
		}
		if w.cfg.Device != nil {
			// The first attempt's service time was reserved at dispatch;
			// a retry rewrites the extent, so it re-reserves here.
			d := deadline
			if !first {
				d = storage.ReserveWrite(w.cfg.Device, off, int64(len(payload)))
			}
			first = false
			w.cfg.Device.Clock().SleepUntil(d)
		}
		back := make([]byte, len(payload))
		if err := readFull(dst, back, 0); err != nil {
			return err
		}
		if got := crc32.Checksum(back, castagnoli); got != crc {
			return corruptf("extent %d read back with checksum %08x, want %08x", idx, got, crc)
		}
		return nil
	}
	if err := w.retrier.Do(op); err != nil {
		return fmt.Errorf("egress: extent %d: %w", idx, err)
	}
	return nil
}

// join waits for up to n of the oldest in-flight writes, keeping the
// first error.
func (w *Writer) join(n int) {
	for ; n > 0 && len(w.pending) > 0; n-- {
		if err := w.pending[0].Wait(); err != nil && w.err == nil {
			w.err = err
		}
		w.pending = w.pending[1:]
	}
}

// Close flushes the tail extent, joins every in-flight write, and
// returns the materialized Output. On error the extent storage is
// released and no Output is returned.
func (w *Writer) Close() (*Output, error) {
	if w.closed {
		return nil, errors.New("egress: writer already closed")
	}
	w.closed = true
	if len(w.cur) > 0 {
		w.dispatch(w.cur)
		w.cur = nil
	}
	w.join(len(w.pending))
	if w.err != nil {
		for _, e := range w.extents {
			if e.data != nil {
				e.data.Close()
			}
		}
		return nil, w.err
	}
	m := Manifest{ExtentBytes: w.cfg.extentBytes(), Total: w.total}
	o := &Output{name: w.cfg.name(), man: m, extents: w.extents}
	var off int64
	for _, e := range w.extents {
		o.man.Extents = append(o.man.Extents, Extent{Off: off, Len: e.len, CRC: e.crc})
		off += e.len
	}
	return o, nil
}

// Output is a materialized egress: the stitched view over the written
// extents plus their manifest. It implements chunk.Input (Name, Size,
// ReadAt and the two-phase IssueReadAt), so it can feed a subsequent
// job's ingest pipeline directly — the zero-copy pipe internal/dag
// chains rounds with.
type Output struct {
	name    string
	man     Manifest
	extents []extent
}

// Name names the output.
func (o *Output) Name() string { return o.name }

// Size returns the stitched output size in bytes.
func (o *Output) Size() int64 { return o.man.Total }

// Extents returns the extent count.
func (o *Output) Extents() int { return len(o.extents) }

// Manifest returns the stitching manifest.
func (o *Output) Manifest() Manifest { return o.man }

// ReadAt reads the stitched output at off, crossing extent boundaries
// as needed. All extents but the last are exactly ExtentBytes, so the
// covering extent is located by division.
func (o *Output) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("egress: negative read offset %d", off)
	}
	read := 0
	for len(p) > 0 {
		if off >= o.man.Total {
			return read, io.EOF
		}
		i := off / o.man.ExtentBytes
		e := o.extents[i]
		in := off - i*o.man.ExtentBytes
		want := int64(len(p))
		if rest := e.len - in; want > rest {
			want = rest
		}
		n, err := e.data.ReadAt(p[:want], in)
		read += n
		off += int64(n)
		p = p[n:]
		if err != nil {
			return read, err
		}
		if int64(n) < want {
			return read, io.ErrUnexpectedEOF
		}
	}
	return read, nil
}

// IssueReadAt is the two-phase read the multi-lane fetcher prefers:
// extent storage is plain memory, so the read completes at issue time
// and the wait is immediate.
func (o *Output) IssueReadAt(p []byte, off int64) (func() (int, error), error) {
	n, err := o.ReadAt(p, off)
	return func() (int, error) { return n, err }, nil
}

// Bytes stitches and returns the full output, validating every extent
// against the manifest. Corruption — a checksum mismatch, a length
// drift — yields a *CorruptError, never silently wrong bytes.
func (o *Output) Bytes() ([]byte, error) {
	buf := make([]byte, 0, o.man.Total)
	for i, e := range o.extents {
		start := len(buf)
		buf = buf[:start+int(e.len)]
		if err := readFull(e.data, buf[start:], 0); err != nil {
			return nil, fmt.Errorf("egress: extent %d: %w", i, err)
		}
		if got := crc32.Checksum(buf[start:], castagnoli); got != o.man.Extents[i].CRC {
			return nil, corruptf("extent %d checksum %08x, want %08x", i, got, o.man.Extents[i].CRC)
		}
	}
	if int64(len(buf)) != o.man.Total {
		return nil, corruptf("stitched %d bytes, manifest total %d", len(buf), o.man.Total)
	}
	return buf, nil
}

// Close releases every extent's backing storage. The Output must not
// be read afterwards.
func (o *Output) Close() error {
	var first error
	for _, e := range o.extents {
		if e.data == nil {
			continue
		}
		if err := e.data.Close(); err != nil && first == nil {
			first = err
		}
	}
	o.extents = nil
	return first
}

// readFull fills buf from r starting at off.
func readFull(r interface {
	ReadAt(p []byte, off int64) (int, error)
}, buf []byte, off int64) error {
	for len(buf) > 0 {
		n, err := r.ReadAt(buf, off)
		if n > 0 {
			buf = buf[n:]
			off += int64(n)
			continue
		}
		if err != nil {
			return err
		}
		return io.ErrUnexpectedEOF
	}
	return nil
}
