package egress

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"supmr/internal/exec"
	"supmr/internal/faults"
	"supmr/internal/storage"
)

// testStream returns size deterministic pseudo-random bytes.
func testStream(size int) []byte {
	buf := make([]byte, size)
	x := uint64(0x243F6A8885A308D3)
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
	return buf
}

// egressAll streams data through a Writer in odd-sized writes and
// returns the closed Output.
func egressAll(t *testing.T, cfg Config, data []byte) *Output {
	t.Helper()
	w, err := NewWriter(cfg)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for off := 0; off < len(data); {
		n := 7777
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := w.Write(data[off : off+n]); err != nil {
			t.Fatalf("Write: %v", err)
		}
		off += n
	}
	out, err := w.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	return out
}

func newPool(t *testing.T, ioWorkers int) *exec.Pool {
	t.Helper()
	p := exec.NewPool(context.Background(), exec.Config{Workers: 2, IOWorkers: ioWorkers})
	t.Cleanup(p.Close)
	return p
}

func TestLaneCountsByteIdentical(t *testing.T) {
	data := testStream(1<<20 + 12345) // non-multiple: forces a short tail extent
	const extent = 64 << 10

	var ref []byte
	var refMan Manifest
	for _, lanes := range []int{1, 2, 4} {
		pool := newPool(t, lanes)
		out := egressAll(t, Config{Pool: pool, Lanes: lanes, ExtentBytes: extent}, data)
		got, err := out.Bytes()
		if err != nil {
			t.Fatalf("lanes=%d: Bytes: %v", lanes, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("lanes=%d: stitched output differs from input", lanes)
		}
		if lanes == 1 {
			ref, refMan = got, out.Manifest()
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("lanes=%d: output differs from serial writer", lanes)
		}
		if !bytes.Equal(out.Manifest().Encode(), refMan.Encode()) {
			t.Fatalf("lanes=%d: manifest differs from serial writer", lanes)
		}
		out.Close()
	}

	// Manifest shape: all extents but the last are exactly ExtentBytes,
	// the last carries the remainder.
	wantExtents := (len(data) + extent - 1) / extent
	if len(refMan.Extents) != wantExtents {
		t.Fatalf("extents = %d, want %d", len(refMan.Extents), wantExtents)
	}
	for i, e := range refMan.Extents[:len(refMan.Extents)-1] {
		if e.Len != extent || e.Off != int64(i)*extent {
			t.Fatalf("extent %d = %+v, want len %d off %d", i, e, extent, i*extent)
		}
	}
	if last := refMan.Extents[len(refMan.Extents)-1]; last.Len != int64(len(data)%extent) {
		t.Fatalf("tail extent len = %d, want %d", last.Len, len(data)%extent)
	}
}

func TestOutputReadAt(t *testing.T) {
	data := testStream(200_000)
	pool := newPool(t, 2)
	out := egressAll(t, Config{Pool: pool, Lanes: 2, ExtentBytes: 64 << 10}, data)
	defer out.Close()

	if out.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", out.Size(), len(data))
	}
	// Reads crossing extent boundaries.
	for _, c := range []struct{ off, n int }{
		{0, 100}, {64<<10 - 50, 100}, {128<<10 - 1, 3}, {199_000, 1000},
	} {
		got := make([]byte, c.n)
		n, err := out.ReadAt(got, int64(c.off))
		if err != nil || n != c.n {
			t.Fatalf("ReadAt(%d, %d) = %d, %v", c.off, c.n, n, err)
		}
		if !bytes.Equal(got, data[c.off:c.off+c.n]) {
			t.Fatalf("ReadAt(%d, %d): wrong bytes", c.off, c.n)
		}
	}
	// Read past the end returns the available prefix and io.EOF.
	got := make([]byte, 100)
	n, err := out.ReadAt(got, int64(len(data)-30))
	if n != 30 || err != io.EOF {
		t.Fatalf("tail ReadAt = %d, %v; want 30, EOF", n, err)
	}
	if !bytes.Equal(got[:30], data[len(data)-30:]) {
		t.Fatalf("tail ReadAt: wrong bytes")
	}
	// Two-phase read completes at issue.
	wait, err := out.IssueReadAt(got[:10], 0)
	if err != nil {
		t.Fatalf("IssueReadAt: %v", err)
	}
	if n, err := wait(); n != 10 || err != nil {
		t.Fatalf("IssueReadAt wait = %d, %v", n, err)
	}
}

func TestTornWriteRetryDeterministic(t *testing.T) {
	data := testStream(512 << 10) // 8 extents of 64 KiB
	plan := faults.Plan{Seed: 7, WriteErrProb: 0.4}
	policy := faults.RetryPolicy{MaxAttempts: 8}

	var ref []byte
	var refFaults string
	for _, lanes := range []int{1, 4} {
		clock := storage.NewRealClock()
		inj := faults.New(plan, clock)
		pool := newPool(t, lanes)
		out := egressAll(t, Config{
			Pool: pool, Lanes: lanes, ExtentBytes: 64 << 10,
			Injector: inj, Retry: policy, Clock: clock, Counters: inj.Counters(),
		}, data)
		got, err := out.Bytes()
		if err != nil {
			t.Fatalf("lanes=%d: Bytes: %v", lanes, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("lanes=%d: faulted egress diverged from input", lanes)
		}
		snap := inj.Counters().Snapshot()
		if snap.Injected == 0 || snap.Retried == 0 || snap.Recovered == 0 {
			t.Fatalf("lanes=%d: no faults exercised: %+v", lanes, snap)
		}
		fs := snap.String()
		if lanes == 1 {
			ref, refFaults = got, fs
			continue
		}
		// Per-extent fault sites make the schedule — and so the exact
		// counter totals — independent of lane interleaving.
		if fs != refFaults {
			t.Fatalf("fault counters depend on lane count: %q vs %q", fs, refFaults)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("lanes=%d: faulted output differs from serial", lanes)
		}
		out.Close()
	}
}

func TestFaultWithoutRetryFails(t *testing.T) {
	data := testStream(256 << 10)
	clock := storage.NewRealClock()
	inj := faults.New(faults.Plan{Seed: 1, WriteErrProb: 1}, clock)
	pool := newPool(t, 2)
	w, err := NewWriter(Config{Pool: pool, Lanes: 2, ExtentBytes: 64 << 10, Injector: inj})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := w.Close(); err == nil {
		t.Fatalf("Close succeeded with every write faulted and no retry policy")
	}
}

func TestDeviceChargesWriteTime(t *testing.T) {
	clock := storage.NewFakeClock()
	disk, err := storage.NewDisk(storage.DiskConfig{Name: "out", Bandwidth: 1 << 20}, clock)
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	data := testStream(1 << 20)
	pool := newPool(t, 1)
	before := clock.Now()
	out := egressAll(t, Config{Pool: pool, Lanes: 1, ExtentBytes: 256 << 10, Device: disk}, data)
	defer out.Close()
	if elapsed := clock.Now() - before; elapsed <= 0 {
		t.Fatalf("egress through a 1 MB/s disk advanced no device time")
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(Config{}); err == nil || !strings.Contains(err.Error(), "pool") {
		t.Fatalf("nil pool accepted: %v", err)
	}
	pool := newPool(t, 1)
	if _, err := NewWriter(Config{Pool: pool, ExtentBytes: -1}); err == nil {
		t.Fatalf("negative extent size accepted")
	}
	if _, err := NewWriter(Config{Pool: pool, Lanes: -1}); err == nil {
		t.Fatalf("negative lane count accepted")
	}
	w, err := NewWriter(Config{Pool: pool})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if _, err := w.Close(); err != nil {
		t.Fatalf("empty Close: %v", err)
	}
	if _, err := w.Close(); err == nil {
		t.Fatalf("double Close accepted")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{ExtentBytes: 1024, Total: 2500, Extents: []Extent{
		{Off: 0, Len: 1024, CRC: 0xDEADBEEF},
		{Off: 1024, Len: 1024, CRC: 0x12345678},
		{Off: 2048, Len: 452, CRC: 0xCAFEBABE},
	}}
	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if !bytes.Equal(got.Encode(), m.Encode()) {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, m)
	}

	empty := Manifest{ExtentBytes: 1024}
	if _, err := DecodeManifest(empty.Encode()); err != nil {
		t.Fatalf("empty manifest: %v", err)
	}
}

// TestManifestCorruptionTyped is the deterministic core of the fuzz
// target: every truncation and every single-bit flip of a valid
// encoding must surface as a *CorruptError, never as silently wrong
// data (the trailing CRC-32C makes this exhaustive).
func TestManifestCorruptionTyped(t *testing.T) {
	m := Manifest{ExtentBytes: 512, Total: 1500, Extents: []Extent{
		{Off: 0, Len: 512, CRC: 1}, {Off: 512, Len: 512, CRC: 2}, {Off: 1024, Len: 476, CRC: 3},
	}}
	enc := m.Encode()

	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeManifest(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: untyped error %v", cut, err)
		}
	}
	for bit := 0; bit < len(enc)*8; bit++ {
		mut := bytes.Clone(enc)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := DecodeManifest(mut); err == nil {
			t.Fatalf("bit flip %d decoded", bit)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip %d: untyped error %v", bit, err)
		}
		var ce *CorruptError
		if _, err := DecodeManifest(mut); !errors.As(err, &ce) {
			t.Fatalf("bit flip %d: not a *CorruptError", bit)
		}
	}
}

func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Manifest{ExtentBytes: 1024}.Encode())
	f.Add(Manifest{ExtentBytes: 64, Total: 100, Extents: []Extent{
		{Off: 0, Len: 64, CRC: 9}, {Off: 64, Len: 36, CRC: 8},
	}}.Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeManifest(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error not typed: %v", err)
			}
			return
		}
		// A successful decode must re-encode to the exact input (the
		// encoding is canonical) and be internally consistent.
		if !bytes.Equal(m.Encode(), b) {
			t.Fatalf("accepted non-canonical encoding")
		}
		var sum int64
		for i, e := range m.Extents {
			if e.Off != sum {
				t.Fatalf("extent %d offset %d, want %d", i, e.Off, sum)
			}
			sum += e.Len
		}
		if sum != m.Total {
			t.Fatalf("lengths sum %d != total %d", sum, m.Total)
		}
	})
}
