// Package egress materializes a job's merged output in parallel across
// the IO lanes: the encoded output stream is cut into fixed-size
// extents, each extent is written concurrently as its own IO-lane task
// (with per-lane byte attribution and whole-extent retry of torn
// writes), and a deterministic extent manifest stitches the pieces back
// together. Because extent boundaries are fixed byte ranges of the
// encoded stream — extent i covers [i*ExtentBytes, (i+1)*ExtentBytes)
// regardless of lane count or completion order — the materialized
// output is byte-identical to a serial writer at any lane count.
//
// The completed Output implements chunk.Input, so one job's egressed
// output can feed the next job's ingest pipeline (prefetch ring,
// freelist, multi-lane fetch) without a round-trip through a
// materialized file; internal/dag chains jobs this way.
package egress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC-32C table used for extent and manifest
// checksums (the polynomial storage systems conventionally use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel every manifest/extent corruption error
// wraps: a truncated or bit-flipped manifest decodes to a typed error
// matching errors.Is(err, ErrCorrupt), never to silently wrong data.
var ErrCorrupt = errors.New("egress: corrupt")

// CorruptError reports a manifest or extent that failed validation.
type CorruptError struct {
	Reason string
}

// Error describes the corruption.
func (e *CorruptError) Error() string { return "egress: corrupt: " + e.Reason }

// Unwrap ties CorruptError to the ErrCorrupt sentinel.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// Extent describes one manifest entry: a fixed byte range of the
// output stream and the CRC-32C of its payload.
type Extent struct {
	Off int64  // byte offset of the extent in the stitched output
	Len int64  // payload length (ExtentBytes for all but the last)
	CRC uint32 // CRC-32C over the payload
}

// Manifest is the deterministic stitching recipe for a parallel egress:
// extent i covers output bytes [i*ExtentBytes, i*ExtentBytes+Len_i).
// The manifest is a pure function of the output bytes and ExtentBytes —
// independent of lane count, completion order and fault schedule — so
// two byte-identical outputs always carry byte-identical manifests.
type Manifest struct {
	ExtentBytes int64
	Total       int64 // sum of extent lengths
	Extents     []Extent
}

// manifestMagic versions the binary manifest encoding.
var manifestMagic = [4]byte{'S', 'M', 'X', '1'}

// Encode renders the manifest in its binary form: magic, uvarint
// ExtentBytes, uvarint Total, uvarint extent count, per-extent uvarint
// length + little-endian CRC-32C, and a trailing CRC-32C over all
// preceding bytes. Offsets are not stored; they are recomputed as
// running sums on decode.
func (m Manifest) Encode() []byte {
	buf := make([]byte, 0, 16+len(m.Extents)*9)
	buf = append(buf, manifestMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(m.ExtentBytes))
	buf = binary.AppendUvarint(buf, uint64(m.Total))
	buf = binary.AppendUvarint(buf, uint64(len(m.Extents)))
	for _, e := range m.Extents {
		buf = binary.AppendUvarint(buf, uint64(e.Len))
		buf = binary.LittleEndian.AppendUint32(buf, e.CRC)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// DecodeManifest parses and validates a binary manifest. Any
// truncation or bit flip yields a *CorruptError (wrapping ErrCorrupt);
// a nil error guarantees the returned manifest is internally
// consistent: all extents but the last are exactly ExtentBytes, the
// last is non-empty and no larger, offsets are the running sum, and
// the lengths sum to Total.
func DecodeManifest(b []byte) (Manifest, error) {
	var m Manifest
	if len(b) < len(manifestMagic)+4 {
		return m, corruptf("manifest truncated at %d bytes", len(b))
	}
	body, foot := b[:len(b)-4], b[len(b)-4:]
	if got, want := binary.LittleEndian.Uint32(foot), crc32.Checksum(body, castagnoli); got != want {
		return m, corruptf("manifest checksum mismatch: stored %08x, computed %08x", got, want)
	}
	if [4]byte(body[:4]) != manifestMagic {
		return m, corruptf("bad manifest magic %q", body[:4])
	}
	rest := body[4:]
	next := func(field string) (int64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, corruptf("manifest %s field unreadable", field)
		}
		rest = rest[n:]
		if v > 1<<62 {
			return 0, corruptf("manifest %s %d out of range", field, v)
		}
		return int64(v), nil
	}
	var err error
	if m.ExtentBytes, err = next("extent-bytes"); err != nil {
		return Manifest{}, err
	}
	if m.Total, err = next("total"); err != nil {
		return Manifest{}, err
	}
	count, err := next("count")
	if err != nil {
		return Manifest{}, err
	}
	if m.ExtentBytes <= 0 && count > 0 {
		return Manifest{}, corruptf("manifest extent size %d with %d extents", m.ExtentBytes, count)
	}
	// Each extent needs at least 5 encoded bytes; reject counts the
	// remaining bytes cannot possibly hold before allocating.
	if count > int64(len(rest))/5 {
		return Manifest{}, corruptf("manifest claims %d extents in %d bytes", count, len(rest))
	}
	m.Extents = make([]Extent, 0, count)
	var off int64
	for i := int64(0); i < count; i++ {
		l, err := next("extent length")
		if err != nil {
			return Manifest{}, err
		}
		if len(rest) < 4 {
			return Manifest{}, corruptf("manifest truncated in extent %d checksum", i)
		}
		crc := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		switch {
		case i < count-1 && l != m.ExtentBytes:
			return Manifest{}, corruptf("extent %d length %d, want extent size %d", i, l, m.ExtentBytes)
		case i == count-1 && (l <= 0 || l > m.ExtentBytes):
			return Manifest{}, corruptf("last extent length %d, want 1..%d", l, m.ExtentBytes)
		}
		m.Extents = append(m.Extents, Extent{Off: off, Len: l, CRC: crc})
		off += l
	}
	if len(rest) != 0 {
		return Manifest{}, corruptf("%d trailing manifest bytes", len(rest))
	}
	if off != m.Total {
		return Manifest{}, corruptf("extent lengths sum to %d, manifest total %d", off, m.Total)
	}
	return m, nil
}
