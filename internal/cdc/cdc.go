// Package cdc implements content-defined chunking with a gear rolling
// hash. A Chunker places chunk boundaries at positions where a hash of
// the recent bytes matches a mask, so the boundaries are a function of
// the content alone: appending bytes to an input, or editing bytes
// inside one chunk, never shifts a boundary in the unchanged prefix.
// That stability is what makes per-chunk memoization O(delta) on
// re-runs instead of O(input) — see internal/memo.
//
// The scheme follows FastCDC's shape: hashing restarts at every chunk,
// no boundary is accepted before Min bytes, a boundary is declared when
// the masked gear hash is zero, and a cut is forced at Max bytes so a
// pathological input cannot produce unbounded chunks. The expected
// chunk length is Min + Avg for content that behaves randomly.
package cdc

import "fmt"

// gearTable is the 256-entry byte-to-random mapping driving the gear
// hash. It is generated once, deterministically, from a fixed seed with
// a splitmix64 generator, so chunk boundaries — and therefore every
// content hash keyed off them — are identical across processes and
// runs.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	s := uint64(0x9e3779b97f4a7c15)
	for i := range t {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// Chunker holds the boundary policy. Min and Max bound every emitted
// chunk (except a final short chunk at end of input); Avg sets the mask
// width, so the expected gap between content boundaries is roughly Avg
// bytes past Min.
type Chunker struct {
	Min int // no boundary before this many bytes
	Avg int // target content-defined gap; rounded down to a power of two
	Max int // forced boundary at this many bytes

	mask uint64
}

// New validates the policy and precomputes the hash mask.
func New(min, avg, max int) (*Chunker, error) {
	if min <= 0 || avg <= 0 || max <= 0 {
		return nil, fmt.Errorf("cdc: sizes must be positive (min=%d avg=%d max=%d)", min, avg, max)
	}
	if min > avg || avg > max {
		return nil, fmt.Errorf("cdc: need min <= avg <= max (min=%d avg=%d max=%d)", min, avg, max)
	}
	c := &Chunker{Min: min, Avg: avg, Max: max}
	c.mask = maskFor(avg)
	return c, nil
}

// maskFor picks the widest power-of-two mask not exceeding avg, so a
// random hash matches once every ~2^bits positions.
func maskFor(avg int) uint64 {
	bits := 0
	for v := avg; v > 1; v >>= 1 {
		bits++
	}
	if bits == 0 {
		return 0
	}
	return (1 << uint(bits)) - 1
}

// Cut returns the length of the next chunk at the front of data, or -1
// when more bytes are needed to decide. The decision depends only on
// data[:cut] — never on bytes past the returned boundary — which is the
// property the boundary-stability fuzz test pins: feeding a longer
// buffer with the same prefix yields the same cut.
//
// atEOF marks data as the complete remainder of the input; the final
// (possibly short) chunk is then cut at len(data).
func (c *Chunker) Cut(data []byte, atEOF bool) int {
	n := len(data)
	if n == 0 {
		if atEOF {
			return 0
		}
		return -1
	}
	if n <= c.Min {
		if atEOF {
			return n
		}
		if n == c.Max { // Min == Max: fixed-size chunking degenerate case
			return n
		}
		return -1
	}
	limit := n
	if limit > c.Max {
		limit = c.Max
	}
	var h uint64
	// The hash warms up over the Min prefix so the boundary test at
	// position Min already sees Min bytes of context; gear's h<<1 decay
	// means only the last ~64 bytes matter, keeping the decision local.
	warm := c.Min - 64
	if warm < 0 {
		warm = 0
	}
	for i := warm; i < c.Min; i++ {
		h = h<<1 + gearTable[data[i]]
	}
	for i := c.Min; i < limit; i++ {
		h = h<<1 + gearTable[data[i]]
		if h&c.mask == 0 {
			return i + 1
		}
	}
	if limit == c.Max {
		return c.Max
	}
	if atEOF {
		return n
	}
	return -1
}

// Split returns every chunk length of data, in order. It is the
// whole-buffer convenience over Cut, used by tests and tools.
func (c *Chunker) Split(data []byte) []int {
	var cuts []int
	for len(data) > 0 {
		n := c.Cut(data, true)
		cuts = append(cuts, n)
		data = data[n:]
	}
	return cuts
}
