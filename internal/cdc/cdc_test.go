package cdc

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
)

func newT(t *testing.T, min, avg, max int) *Chunker {
	t.Helper()
	c, err := New(min, avg, max)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadPolicies(t *testing.T) {
	cases := [][3]int{{0, 4, 8}, {4, 0, 8}, {4, 8, 0}, {-1, 4, 8}, {8, 4, 16}, {4, 16, 8}}
	for _, c := range cases {
		if _, err := New(c[0], c[1], c[2]); err == nil {
			t.Errorf("New(%d,%d,%d) accepted a bad policy", c[0], c[1], c[2])
		}
	}
	if _, err := New(64, 256, 1024); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

func TestSplitCoversInputWithinBounds(t *testing.T) {
	c := newT(t, 256, 1024, 4096)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(7)).Read(data)
	cuts := c.Split(data)
	total := 0
	for i, n := range cuts {
		total += n
		last := i == len(cuts)-1
		if n > c.Max {
			t.Fatalf("chunk %d is %d bytes, above max %d", i, n, c.Max)
		}
		if !last && n < c.Min {
			t.Fatalf("non-final chunk %d is %d bytes, below min %d", i, n, c.Min)
		}
	}
	if total != len(data) {
		t.Fatalf("chunks cover %d bytes of %d", total, len(data))
	}
	if len(cuts) < 3 {
		t.Fatalf("only %d chunks over 1 MiB with avg 1 KiB — mask not matching", len(cuts))
	}
	// The average should be in the right ballpark: between Min and Max,
	// and within a loose factor of Min+Avg for random content.
	avg := total / len(cuts)
	if avg < c.Min || avg > c.Max {
		t.Fatalf("mean chunk %d outside [min=%d, max=%d]", avg, c.Min, c.Max)
	}
}

func TestCutNeedsMoreData(t *testing.T) {
	c := newT(t, 256, 1024, 4096)
	data := make([]byte, 100) // below Min
	if got := c.Cut(data, false); got != -1 {
		t.Fatalf("Cut below Min without EOF = %d, want -1", got)
	}
	if got := c.Cut(data, true); got != len(data) {
		t.Fatalf("Cut below Min at EOF = %d, want %d", got, len(data))
	}
	if got := c.Cut(nil, true); got != 0 {
		t.Fatalf("Cut(nil, true) = %d, want 0", got)
	}
	if got := c.Cut(nil, false); got != -1 {
		t.Fatalf("Cut(nil, false) = %d, want -1", got)
	}
}

func TestForcedCutAtMax(t *testing.T) {
	c := newT(t, 64, 128, 512)
	// Constant data: the gear hash never masks to zero on a single
	// repeated byte (with overwhelming probability for this table), so
	// every cut is the forced Max cut.
	data := bytes.Repeat([]byte{'x'}, 4096)
	cuts := c.Split(data)
	for i, n := range cuts[:len(cuts)-1] {
		if n != c.Max {
			t.Fatalf("chunk %d on constant input = %d, want forced max %d", i, n, c.Max)
		}
	}
}

func TestDeterministicAcrossChunkers(t *testing.T) {
	a := newT(t, 256, 1024, 4096)
	b := newT(t, 256, 1024, 4096)
	data := make([]byte, 1<<18)
	rand.New(rand.NewSource(11)).Read(data)
	ca, cb := a.Split(data), b.Split(data)
	if len(ca) != len(cb) {
		t.Fatalf("chunk counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("cut %d differs: %d vs %d", i, ca[i], cb[i])
		}
	}
}

// chunkHashes splits data and hashes each chunk's content.
func chunkHashes(c *Chunker, data []byte) [][32]byte {
	var hs [][32]byte
	for _, n := range c.Split(data) {
		hs = append(hs, sha256.Sum256(data[:n]))
		data = data[n:]
	}
	return hs
}

// TestAppendStability is the deterministic core of the fuzz property:
// appending bytes must not move any boundary before the final chunk of
// the original input, so every non-final chunk hash is preserved.
func TestAppendStability(t *testing.T) {
	c := newT(t, 128, 512, 2048)
	base := make([]byte, 200<<10)
	rand.New(rand.NewSource(3)).Read(base)
	suffix := make([]byte, 2<<10)
	rand.New(rand.NewSource(4)).Read(suffix)

	before := chunkHashes(c, base)
	after := chunkHashes(c, append(append([]byte{}, base...), suffix...))
	if len(before) < 2 {
		t.Fatal("need at least two chunks for the property to bite")
	}
	stable := before[:len(before)-1]
	if len(after) < len(stable) {
		t.Fatalf("append shrank the chunk list: %d -> %d", len(before), len(after))
	}
	for i, h := range stable {
		if after[i] != h {
			t.Fatalf("append shifted boundary of chunk %d", i)
		}
	}
}

// FuzzBoundaryStability proves the two CDC invariants on arbitrary
// content: (1) appending bytes never shifts a boundary before the final
// chunk of the original input, and (2) identical content always
// produces identical chunk hashes.
func FuzzBoundaryStability(f *testing.F) {
	f.Add([]byte("hello world, this is a seed corpus entry"), []byte("tail"))
	f.Add(bytes.Repeat([]byte{0}, 3000), []byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte("abcd"), 1000), bytes.Repeat([]byte{'z'}, 600))
	f.Fuzz(func(t *testing.T, base, suffix []byte) {
		c, err := New(64, 256, 1024)
		if err != nil {
			t.Fatal(err)
		}
		before := chunkHashes(c, base)
		again := chunkHashes(c, append([]byte{}, base...))
		if len(again) != len(before) {
			t.Fatalf("identical content produced %d vs %d chunks", len(again), len(before))
		}
		for i := range before {
			if again[i] != before[i] {
				t.Fatalf("identical content produced different hash for chunk %d", i)
			}
		}
		if len(before) == 0 {
			return
		}
		after := chunkHashes(c, append(append([]byte{}, base...), suffix...))
		stable := before[:len(before)-1]
		if len(after) < len(stable) {
			t.Fatalf("append shrank the chunk list: %d -> %d", len(before), len(after))
		}
		for i, h := range stable {
			if after[i] != h {
				t.Fatalf("append shifted boundary of chunk %d (of %d)", i, len(before))
			}
		}
		// Coverage: every chunk within bounds.
		rest := base
		for i, n := range c.Split(base) {
			if n > c.Max || (n < c.Min && n != len(rest)) {
				t.Fatalf("chunk %d length %d violates [min=%d,max=%d]", i, n, c.Min, c.Max)
			}
			rest = rest[n:]
		}
	})
}
