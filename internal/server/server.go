// Package server is the supmrd job server: a long-running process
// owning one shared supmr.Engine, accepting job submissions over a
// local unix socket and multiplexing them onto the engine's substrate.
// The protocol is newline-delimited JSON — one Request per line, one
// Response per line — so the client side stays a thin wrapper around a
// net.Conn (see Client) and the wire format is inspectable with nc.
//
// Operations: submit (enqueue a jobspec.Spec, returns a job id),
// status (one job's state), wait (block until a job finishes), cancel
// (abort a running or queued job), list (all jobs), stats (engine
// snapshot: admission occupancy, budget, freelist recycling, per-tenant
// rollup).
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"supmr"
	"supmr/internal/jobspec"
)

// Request is one protocol message from client to server.
type Request struct {
	// Op is the operation: submit | status | wait | cancel | list | stats.
	Op string `json:"op"`
	// Spec is the job description (submit only).
	Spec *jobspec.Spec `json:"spec,omitempty"`
	// Graph is a multi-round pipeline (internal/dag). The server does
	// not run pipelines — rounds chain through in-process egress
	// outputs, which cannot cross the socket — so a submit carrying one
	// is rejected with CodeDAGUnsupported; run it client-side with
	// `supmr pipeline`.
	Graph json.RawMessage `json:"graph,omitempty"`
	// ID addresses a job (status, wait, cancel).
	ID int64 `json:"id,omitempty"`
}

// Response is one protocol message from server to client.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code classifies a rejection so scripted clients can branch on it
	// (and the CLI can exit with a distinct status) without parsing the
	// message text. Empty on success and on unclassified errors.
	Code  string             `json:"code,omitempty"`
	ID    int64              `json:"id,omitempty"`
	Job   *JobView           `json:"job,omitempty"`
	Jobs  []JobView          `json:"jobs,omitempty"`
	Stats *supmr.EngineStats `json:"stats,omitempty"`
}

// Rejection codes a Response.Code can carry.
const (
	// CodeNodesUnsupported rejects a submit with Spec.Nodes > 0: the
	// engine schedules operations on one shared substrate, so a
	// multi-node simulation can never start server-side.
	CodeNodesUnsupported = "nodes_unsupported"
	// CodeDAGUnsupported rejects a submit carrying a pipeline graph:
	// chained rounds pipe in-process egress outputs, which cannot cross
	// the socket boundary.
	CodeDAGUnsupported = "dag_unsupported"
)

// ProtocolError is a server rejection surfaced by the Client: the
// response's code and message, with the exit status the CLI maps it
// to.
type ProtocolError struct {
	Code    string
	Message string
}

// Error renders the rejection.
func (e *ProtocolError) Error() string {
	if e.Code == "" {
		return "server error: " + e.Message
	}
	return fmt.Sprintf("server error (%s): %s", e.Code, e.Message)
}

// ExitCode maps the rejection to a distinct process exit status
// (cliutil.ExitCode consumes this via the ExitCoder interface): 3 for
// multi-node rejections, 4 for pipeline rejections, 1 otherwise.
func (e *ProtocolError) ExitCode() int {
	switch e.Code {
	case CodeNodesUnsupported:
		return 3
	case CodeDAGUnsupported:
		return 4
	default:
		return 1
	}
}

// Job states.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobView is a job's externally visible state.
type JobView struct {
	ID     int64           `json:"id"`
	App    string          `json:"app"`
	Tenant string          `json:"tenant,omitempty"`
	State  string          `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result *jobspec.Result `json:"result,omitempty"`
}

// errCancelled is the cancellation cause a client cancel installs.
var errCancelled = errors.New("cancelled by client")

// job is the server-side record of one submission.
type job struct {
	id     int64
	spec   jobspec.Spec
	cancel context.CancelCauseFunc
	done   chan struct{} // closed when the run returns

	mu        sync.Mutex
	state     string
	err       string
	result    *jobspec.Result
	cancelled bool
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:     j.id,
		App:    j.spec.App,
		Tenant: j.spec.Tenant,
		State:  j.state,
		Error:  j.err,
		Result: j.result,
	}
}

// Config configures a Server.
type Config struct {
	// Socket is the unix socket path to listen on. A stale socket file
	// left by a dead server is removed; a live listener makes New fail.
	Socket string
	// Engine sizes the shared substrate.
	Engine supmr.EngineConfig
}

// Server owns the engine and the job table.
type Server struct {
	eng *supmr.Engine
	ln  net.Listener

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	nextID int64
	jobs   map[int64]*job
	closed bool

	conns sync.WaitGroup // connection handlers
	runs  sync.WaitGroup // in-flight job runs
}

// New builds the engine and binds the socket.
func New(cfg Config) (*Server, error) {
	if cfg.Socket == "" {
		return nil, errors.New("server: empty socket path")
	}
	ln, err := net.Listen("unix", cfg.Socket)
	if err != nil {
		// A stale socket file from a dead server blocks the bind; probe
		// it and reclaim the path if nothing is listening.
		if conn, derr := net.DialTimeout("unix", cfg.Socket, 100*time.Millisecond); derr == nil {
			conn.Close()
			return nil, fmt.Errorf("server: %s already has a live server: %w", cfg.Socket, err)
		}
		if rerr := os.Remove(cfg.Socket); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			return nil, err
		}
		if ln, err = net.Listen("unix", cfg.Socket); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		eng:    supmr.NewEngine(cfg.Engine),
		ln:     ln,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[int64]*job),
	}, nil
}

// Addr returns the bound socket path.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Close. It returns nil on a clean
// shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.ctx.Done():
				return nil
			default:
				return err
			}
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			s.handle(conn)
		}()
	}
}

// Close shuts the server down: stop accepting, cancel every running
// job, wait for runs and connection handlers, close the engine.
// Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.ln.Close()
	s.runs.Wait()
	s.conns.Wait()
	s.eng.Close()
}

// handle serves one connection: a sequence of JSON request lines.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.dispatch(req)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case "submit":
		return s.submit(req)
	case "status":
		return s.status(req.ID)
	case "wait":
		return s.wait(req.ID)
	case "cancel":
		return s.cancelJob(req.ID)
	case "list":
		return s.list()
	case "stats":
		st := s.eng.Stats()
		return Response{OK: true, Stats: &st}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// submit validates the spec, registers the job and starts its run.
func (s *Server) submit(req Request) Response {
	if len(req.Graph) > 0 {
		// Rejected at submission rather than as a failed job: pipeline
		// rounds chain in-process egress outputs, which cannot cross the
		// socket; run the graph client-side with `supmr pipeline`.
		return Response{
			Code:  CodeDAGUnsupported,
			Error: "submit: pipelines run client-side (supmr pipeline); chained rounds pipe in-process egress outputs the socket cannot carry",
		}
	}
	if req.Spec == nil {
		return Response{Error: "submit: missing spec"}
	}
	spec := *req.Spec
	if err := spec.Validate(); err != nil {
		return Response{Error: err.Error()}
	}
	if spec.Nodes > 0 {
		// Rejected at submission rather than as a failed job: the engine
		// schedules operations on one shared substrate, so a multi-node
		// run can never start here.
		return Response{
			Code:  CodeNodesUnsupported,
			Error: "submit: nodes requires a solo run (supmr -nodes); the engine schedules operations on one shared substrate",
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Response{Error: supmr.ErrEngineClosed.Error()}
	}
	s.nextID++
	id := s.nextID
	jctx, cancel := context.WithCancelCause(s.ctx)
	j := &job{id: id, spec: spec, cancel: cancel, done: make(chan struct{}), state: StateRunning}
	s.jobs[id] = j
	s.runs.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.runs.Done()
		defer cancel(nil)
		res, err := jobspec.Run(jctx, spec, s.eng)
		j.mu.Lock()
		defer j.mu.Unlock()
		defer close(j.done)
		if err != nil {
			if j.cancelled || errors.Is(err, errCancelled) {
				j.state = StateCancelled
			} else {
				j.state = StateFailed
			}
			j.err = err.Error()
			return
		}
		j.state = StateDone
		j.result = res
	}()
	return Response{OK: true, ID: id}
}

func (s *Server) lookup(id int64) (*job, Response) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, Response{Error: fmt.Sprintf("no job %d", id)}
	}
	return j, Response{}
}

func (s *Server) status(id int64) Response {
	j, errResp := s.lookup(id)
	if j == nil {
		return errResp
	}
	v := j.view()
	return Response{OK: true, ID: id, Job: &v}
}

// wait blocks until the job finishes (or the server shuts down), then
// reports its final state.
func (s *Server) wait(id int64) Response {
	j, errResp := s.lookup(id)
	if j == nil {
		return errResp
	}
	select {
	case <-j.done:
	case <-s.ctx.Done():
	}
	v := j.view()
	return Response{OK: true, ID: id, Job: &v}
}

// cancelJob aborts a running job; cancelling a finished job is a no-op
// that reports its final state.
func (s *Server) cancelJob(id int64) Response {
	j, errResp := s.lookup(id)
	if j == nil {
		return errResp
	}
	j.mu.Lock()
	if j.state == StateRunning {
		j.cancelled = true
	}
	j.mu.Unlock()
	j.cancel(errCancelled)
	v := j.view()
	return Response{OK: true, ID: id, Job: &v}
}

func (s *Server) list() Response {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	s.mu.Unlock()
	sort.Slice(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	return Response{OK: true, Jobs: views}
}
