package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"supmr"
	"supmr/internal/cliutil"
	"supmr/internal/jobspec"
)

// startServer brings up a server on a per-test socket and returns a
// connected client plus the socket path. Everything is torn down with
// the test.
func startServer(t *testing.T, ec supmr.EngineConfig) (*Client, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "supmrd.sock")
	srv, err := New(Config{Socket: sock, Engine: ec})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	c, err := Dial(sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c, sock
}

// TestServerDigestsMatchDirectRuns is the protocol end-to-end: two jobs
// submitted concurrently over the socket produce digests identical to
// the same specs run directly (no engine, no server).
func TestServerDigestsMatchDirectRuns(t *testing.T) {
	specs := []jobspec.Spec{
		{App: "wordcount", Size: 96 << 10, Seed: 3, ChunkBytes: 16 << 10, Tenant: "alice"},
		{App: "sort", Size: 80 << 10, Seed: 23, ChunkBytes: 20 << 10, Tenant: "bob"},
	}
	direct := make([]*jobspec.Result, len(specs))
	for i, s := range specs {
		res, err := jobspec.Run(context.Background(), s, nil)
		if err != nil {
			t.Fatalf("direct %s: %v", s.App, err)
		}
		direct[i] = res
	}

	c, sock := startServer(t, supmr.EngineConfig{Workers: 4, MaxJobs: 2})
	ids := make([]int64, len(specs))
	for i, s := range specs {
		id, err := c.Submit(s)
		if err != nil {
			t.Fatalf("submit %s: %v", s.App, err)
		}
		ids[i] = id
	}
	// Both jobs run concurrently on the engine; wait for each on its own
	// client so neither wait serializes the other.
	var wg sync.WaitGroup
	views := make([]*JobView, len(specs))
	errs := make([]error, len(specs))
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wc, err := Dial(sock)
			if err != nil {
				errs[i] = err
				return
			}
			defer wc.Close()
			views[i], errs[i] = wc.Wait(ids[i])
		}(i)
	}
	wg.Wait()
	for i, s := range specs {
		if errs[i] != nil {
			t.Fatalf("wait %s: %v", s.App, errs[i])
		}
		v := views[i]
		if v.State != StateDone {
			t.Fatalf("%s: state %s, error %q", s.App, v.State, v.Error)
		}
		if v.Result == nil || v.Result.Digest == "" {
			t.Fatalf("%s: missing result/digest: %+v", s.App, v)
		}
		if v.Result.Digest != direct[i].Digest {
			t.Errorf("%s: server digest %s != direct digest %s", s.App, v.Result.Digest, direct[i].Digest)
		}
		if v.Result.OutputPairs != direct[i].OutputPairs {
			t.Errorf("%s: server pairs %d != direct pairs %d", s.App, v.Result.OutputPairs, direct[i].OutputPairs)
		}
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Completed != 2 {
		t.Errorf("engine completed %d jobs, want 2", stats.Completed)
	}
	if _, ok := stats.Tenants["alice"]; !ok {
		t.Errorf("tenant rollup missing alice: %v", stats.Tenants)
	}
	jobs, err := c.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(jobs) != 2 || jobs[0].ID >= jobs[1].ID {
		t.Errorf("list returned %+v, want 2 jobs oldest first", jobs)
	}
}

func TestServerRejectsBadSpecs(t *testing.T) {
	c, _ := startServer(t, supmr.EngineConfig{Workers: 2})
	cases := []jobspec.Spec{
		{},                               // missing app
		{App: "mapreduce-bitcoin-miner"}, // unknown app
		{App: "wordcount", IOLanes: -1},
		{App: "wordcount", PrefetchDepth: -2},
		{App: "wordcount", Budget: -1},
		{App: "histogram", Budget: 1 << 20}, // array container cannot spill
		{App: "wordcount", Runtime: "phoenix"},
		{App: "wordcount", Nodes: -1},
		{App: "wordcount", Nodes: 2, Memo: true},
		{App: "wordcount", Nodes: 2, Runtime: "traditional"},
		{App: "wordcount", InNodeCombinerOff: true}, // combiner ablation without nodes
		{App: "wordcount", Nodes: 2},                // valid spec, but the engine path cannot run it
	}
	for _, s := range cases {
		if _, err := c.Submit(s); err == nil {
			t.Errorf("spec %+v accepted, want rejection", s)
		}
	}
	if stats, err := c.Stats(); err != nil || stats.Submitted != 0 {
		t.Errorf("rejected specs reached the engine: %+v (err %v)", stats, err)
	}
}

func TestServerCancel(t *testing.T) {
	c, _ := startServer(t, supmr.EngineConfig{Workers: 2})
	// A slow job: simulated bandwidth stretches ingest far beyond the
	// test's patience, so cancel hits it mid-run.
	id, err := c.Submit(jobspec.Spec{App: "wordcount", Size: 8 << 20, ChunkBytes: 64 << 10, BW: 1 << 20})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := c.Status(id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", v)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Cancel(id); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	v, err := c.Wait(id)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.State != StateCancelled {
		t.Fatalf("state after cancel = %s (error %q), want %s", v.State, v.Error, StateCancelled)
	}
	if !strings.Contains(v.Error, "cancel") {
		t.Errorf("cancelled job error %q does not mention cancellation", v.Error)
	}
}

func TestServerUnknownJobAndOp(t *testing.T) {
	c, _ := startServer(t, supmr.EngineConfig{Workers: 2})
	if _, err := c.Status(42); err == nil || !strings.Contains(err.Error(), "no job") {
		t.Errorf("status of unknown job: %v", err)
	}
	if _, err := c.roundTrip(Request{Op: "frobnicate"}); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("unknown op: %v", err)
	}
}

// TestServerStaleSocketReclaim pins the restart path: a socket file
// left behind by a dead server must not block a new one.
func TestServerStaleSocketReclaim(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "supmrd.sock")
	srv, err := New(Config{Socket: sock, Engine: supmr.EngineConfig{Workers: 1}})
	if err != nil {
		t.Fatalf("first server: %v", err)
	}
	// Simulate a crash: close the listener without removing the file.
	srv.ln.(*net.UnixListener).SetUnlinkOnClose(false)
	srv.ln.Close()
	srv.eng.Close()

	srv2, err := New(Config{Socket: sock, Engine: supmr.EngineConfig{Workers: 1}})
	if err != nil {
		t.Fatalf("server on stale socket: %v", err)
	}
	srv2.Close()
}

// TestServerTypedRejections exercises the protocol rejection codes
// end-to-end: the wire response carries the code, the client surfaces
// a *ProtocolError, and the error maps to the CLI's distinct exit
// statuses through cliutil.ExitCode.
func TestServerTypedRejections(t *testing.T) {
	c, _ := startServer(t, supmr.EngineConfig{Workers: 2})

	_, err := c.Submit(jobspec.Spec{App: "wordcount", Size: 4 << 10, Nodes: 2})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("multi-node submit: got %v, want *ProtocolError", err)
	}
	if pe.Code != CodeNodesUnsupported || pe.ExitCode() != 3 {
		t.Fatalf("multi-node rejection = code %q exit %d, want %q/3", pe.Code, pe.ExitCode(), CodeNodesUnsupported)
	}
	if cliutil.ExitCode(err) != 3 {
		t.Fatalf("cliutil.ExitCode = %d, want 3", cliutil.ExitCode(err))
	}

	_, err = c.SubmitGraph(json.RawMessage(`{"nodes":[{"id":"a","spec":{"app":"wordcount"}}]}`))
	pe = nil
	if !errors.As(err, &pe) {
		t.Fatalf("graph submit: got %v, want *ProtocolError", err)
	}
	if pe.Code != CodeDAGUnsupported || pe.ExitCode() != 4 {
		t.Fatalf("graph rejection = code %q exit %d, want %q/4", pe.Code, pe.ExitCode(), CodeDAGUnsupported)
	}
	if cliutil.ExitCode(err) != 4 {
		t.Fatalf("cliutil.ExitCode = %d, want 4", cliutil.ExitCode(err))
	}

	// Unclassified rejections stay generic: typed error, default exit 1.
	_, err = c.Submit(jobspec.Spec{App: "nope"})
	pe = nil
	if !errors.As(err, &pe) {
		t.Fatalf("bad-spec submit: got %v, want *ProtocolError", err)
	}
	if pe.Code != "" || pe.ExitCode() != 1 || cliutil.ExitCode(err) != 1 {
		t.Fatalf("bad-spec rejection = code %q exit %d, want empty/1", pe.Code, pe.ExitCode())
	}

}

// TestServerWireCode checks the code rides the raw NDJSON wire, not
// just the client abstraction.
func TestServerWireCode(t *testing.T) {
	_, sock := startServer(t, supmr.EngineConfig{Workers: 2})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	req := `{"op":"submit","spec":{"app":"wordcount","nodes":3}}` + "\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatalf("send: %v", err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("decode %q: %v", line, err)
	}
	if resp.OK || resp.Code != CodeNodesUnsupported {
		t.Fatalf("wire response = %+v, want code %q", resp, CodeNodesUnsupported)
	}
}
