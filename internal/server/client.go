package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"supmr"
	"supmr/internal/jobspec"
)

// Client is the thin supmrd protocol client the `supmr submit` family
// of subcommands uses: one connection, serialized request/response
// pairs. Safe for concurrent use, but a blocking Wait holds the
// connection until the job finishes — use one Client per concurrent
// waiter.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a supmrd unix socket.
func Dial(socket string) (*Client, error) {
	conn, err := net.Dial("unix", socket)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", socket, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request line and decodes one response line.
func (c *Client) roundTrip(req Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(append(payload, '\n')); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("client: receive: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("client: bad response: %w", err)
	}
	if !resp.OK {
		// Typed so callers can branch on the rejection class (and the
		// CLI can exit with its distinct status) via errors.As.
		return nil, &ProtocolError{Code: resp.Code, Message: resp.Error}
	}
	return &resp, nil
}

// SubmitGraph asks the server to run a pipeline graph. Every current
// server rejects this with CodeDAGUnsupported — the method exists so
// the rejection is exercised over the real protocol and scripted
// clients get the typed error rather than a parse failure.
func (c *Client) SubmitGraph(graph json.RawMessage) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "submit", Graph: graph})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Submit enqueues a job and returns its server-assigned id.
func (c *Client) Submit(spec jobspec.Spec) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "submit", Spec: &spec})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Status reports one job's current state.
func (c *Client) Status(id int64) (*JobView, error) {
	resp, err := c.roundTrip(Request{Op: "status", ID: id})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// Wait blocks until the job finishes and returns its final state.
func (c *Client) Wait(id int64) (*JobView, error) {
	resp, err := c.roundTrip(Request{Op: "wait", ID: id})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// Cancel aborts a running job and reports its state.
func (c *Client) Cancel(id int64) (*JobView, error) {
	resp, err := c.roundTrip(Request{Op: "cancel", ID: id})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// List returns every job the server knows, oldest first.
func (c *Client) List() ([]JobView, error) {
	resp, err := c.roundTrip(Request{Op: "list"})
	if err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Stats snapshots the server's engine.
func (c *Client) Stats() (*supmr.EngineStats, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}
