package dag

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"supmr/internal/jobspec"
)

// Chaos coverage for chained rounds: every round of the pipeline runs
// under the same deterministic fault plan — ingest, spill and egress
// sites included — and a run either recovers to the fault-free digests
// or fails with the injected fault; either way the outcome and the
// fault counters are a pure function of the seed.

func TestChaosChainedDAG(t *testing.T) {
	base := runtime.NumGoroutine()
	const size = 64 << 10

	clean, err := Run(context.Background(), prefixGraph(size, jobspec.Spec{EgressLanes: 4}), Options{})
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}

	recovered, failed := 0, 0
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := jobspec.Spec{
				EgressLanes: 4,
				ChunkBytes:  4 << 10, // many chunks → many fault sites per round
				Faults:      fmt.Sprintf("seed=%d,read-err=0.2,write-err=0.4,short-read=0.2,max=60", seed),
				Retries:     "attempts=6,base=50us,max=1ms",
			}
			g := prefixGraph(size, spec)
			// Round 2 under the same plan (its own injector, same seed).
			g.Nodes[1].Spec.Faults = spec.Faults
			g.Nodes[1].Spec.Retries = spec.Retries

			run := func() ([]Round, error) {
				res, err := Run(context.Background(), g, Options{})
				if err != nil {
					return nil, err
				}
				return res.Rounds, nil
			}
			r1, err1 := run()
			r2, err2 := run()
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("nondeterministic outcome: %v vs %v", err1, err2)
			}
			if err1 != nil {
				failed++
				return
			}
			for i := range r1 {
				if r1[i].Res.Digest != r2[i].Res.Digest {
					t.Fatalf("round %s: digests differ across identical chaos runs", r1[i].ID)
				}
				// Identical fault counters, not merely identical output.
				if r1[i].Res.Faults != r2[i].Res.Faults {
					t.Fatalf("round %s: fault counters differ across identical runs:\n  %s\n  %s",
						r1[i].ID, r1[i].Res.Faults, r2[i].Res.Faults)
				}
				if r1[i].Res.Digest != clean.Rounds[i].Res.Digest {
					t.Fatalf("round %s: chaos run recovered to wrong digest", r1[i].ID)
				}
			}
			if r1[0].Res.Faults == "" && r1[1].Res.Faults == "" {
				t.Fatalf("no round saw any faults; the chaos sweep is vacuous")
			}
			recovered++
		})
	}
	if recovered == 0 {
		t.Error("no chaos seed recovered to the fault-free digests; retries are not absorbing faults")
	}
	_ = failed // failing seeds are acceptable as long as they fail deterministically

	// All pools, engines and egress outputs must be torn down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+4 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s", runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
