// Package dag chains jobspec rounds into a multi-round pipeline: each
// node runs one job, and a node naming another as its input consumes
// that round's egressed output directly — the extent set of the
// upstream egress.Writer becomes the downstream prefetch ring's
// chunk.Input with no intermediate file materialized. The Materialize
// option is the ablation/differential baseline: it stitches each
// upstream output into an in-memory file and re-ingests that instead,
// and because egressed bytes are byte-identical at any lane count the
// two modes must produce identical digests round for round.
package dag

import (
	"context"
	"fmt"

	"supmr"
	"supmr/internal/jobspec"
)

// Node is one round of the pipeline.
type Node struct {
	// ID names the node; edges reference it.
	ID string `json:"id"`
	// Spec is the round's job. Consumed rounds (ones another node pipes
	// from) default EgressLanes to 1 when unset, since piping requires a
	// materialized-in-extents output.
	Spec jobspec.Spec `json:"spec"`
	// Input, when non-empty, is the ID of the upstream node whose
	// egressed output this round ingests. Empty means the round runs
	// over its spec's generated workload (a source round).
	Input string `json:"input,omitempty"`
}

// Graph is a set of rounds wired by Input edges.
type Graph struct {
	Nodes []Node `json:"nodes"`
}

// Round reports one completed round in execution order.
type Round struct {
	ID  string          `json:"id"`
	Res *jobspec.Result `json:"res"`
}

// Result reports a completed pipeline run.
type Result struct {
	// Rounds lists every round in the order executed (a topological
	// order of the graph).
	Rounds []Round `json:"rounds"`
}

// Final returns the last executed round — the pipeline's sink when the
// graph is a chain.
func (r *Result) Final() *Round {
	if len(r.Rounds) == 0 {
		return nil
	}
	return &r.Rounds[len(r.Rounds)-1]
}

// Options tunes a pipeline run.
type Options struct {
	// Engine, when non-nil, submits every round to the shared engine.
	Engine *supmr.Engine
	// Materialize switches piped edges to the baseline path: each
	// upstream output is stitched into an in-memory file and the
	// downstream round ingests that file. Digests must match the piped
	// mode exactly.
	Materialize bool
}

// Validate rejects malformed graphs: duplicate or empty IDs, edges to
// unknown nodes, cycles, consumers that cannot parse piped text, and
// per-node spec problems.
func (g Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("dag: empty graph")
	}
	byID := make(map[string]int, len(g.Nodes))
	for i, n := range g.Nodes {
		if n.ID == "" {
			return fmt.Errorf("dag: node %d has no id", i)
		}
		if _, dup := byID[n.ID]; dup {
			return fmt.Errorf("dag: duplicate node id %q", n.ID)
		}
		byID[n.ID] = i
	}
	for _, n := range g.Nodes {
		if err := n.Spec.Validate(); err != nil {
			return fmt.Errorf("dag: node %q: %w", n.ID, err)
		}
		if n.Spec.Nodes > 0 {
			return fmt.Errorf("dag: node %q: multi-node rounds cannot be chained (nodes > 0)", n.ID)
		}
		if n.Input == "" {
			continue
		}
		if n.Input == n.ID {
			return fmt.Errorf("dag: node %q pipes from itself", n.ID)
		}
		if _, ok := byID[n.Input]; !ok {
			return fmt.Errorf("dag: node %q pipes from unknown node %q", n.ID, n.Input)
		}
		if !jobspec.CanConsumePiped(n.Spec.App) {
			return fmt.Errorf("dag: node %q: app %q cannot consume a piped input", n.ID, n.Spec.App)
		}
		if n.Spec.Memo {
			return fmt.Errorf("dag: node %q: memo is incompatible with a piped input", n.ID)
		}
	}
	if _, err := g.order(); err != nil {
		return err
	}
	return nil
}

// order returns a topological execution order (Kahn's algorithm over
// the Input edges; each node has at most one).
func (g Graph) order() ([]int, error) {
	byID := make(map[string]int, len(g.Nodes))
	for i, n := range g.Nodes {
		byID[n.ID] = i
	}
	indeg := make([]int, len(g.Nodes))
	downstream := make([][]int, len(g.Nodes))
	for i, n := range g.Nodes {
		if n.Input == "" {
			continue
		}
		up, ok := byID[n.Input]
		if !ok {
			return nil, fmt.Errorf("dag: node %q pipes from unknown node %q", n.ID, n.Input)
		}
		indeg[i]++
		downstream[up] = append(downstream[up], i)
	}
	var ready, order []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		for _, dn := range downstream[i] {
			if indeg[dn]--; indeg[dn] == 0 {
				ready = append(ready, dn)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("dag: graph has a cycle")
	}
	return order, nil
}

// Run executes the pipeline in topological order, threading each
// consumed round's egressed output into its downstream round. ctx
// cancellation aborts between and within rounds.
func Run(ctx context.Context, g Graph, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.order()
	if err != nil {
		return nil, err
	}
	consumed := make(map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Input != "" {
			consumed[n.Input] = true
		}
	}

	outputs := make(map[string]*supmr.EgressOutput, len(g.Nodes))
	results := make(map[string]*jobspec.Result, len(g.Nodes))
	defer func() {
		for _, out := range outputs {
			if out != nil {
				out.Close()
			}
		}
	}()

	res := &Result{Rounds: make([]Round, 0, len(g.Nodes))}
	for _, i := range order {
		n := g.Nodes[i]
		spec := n.Spec
		if consumed[n.ID] && spec.EgressLanes == 0 {
			spec.EgressLanes = 1 // piping needs a materialized-in-extents output
		}

		var input supmr.Input
		if n.Input != "" {
			up := outputs[n.Input]
			if up == nil {
				return nil, fmt.Errorf("dag: node %q: upstream %q produced no egress output", n.ID, n.Input)
			}
			if spec.App == "psum2" && spec.Blocks == 0 {
				// Round 1 emitted one pair per block; its pair count is the
				// block count round 2 needs.
				spec.Blocks = int64(results[n.Input].OutputPairs)
			}
			if opt.Materialize {
				data, err := up.Bytes()
				if err != nil {
					return nil, fmt.Errorf("dag: node %q: stitch upstream %q: %w", n.ID, n.Input, err)
				}
				input = supmr.MemoryFile(n.Input+".out", data, supmr.NewClock())
			} else {
				input = up
			}
		}

		jr, out, err := jobspec.RunInput(ctx, spec, opt.Engine, input)
		if err != nil {
			return nil, fmt.Errorf("dag: node %q: %w", n.ID, err)
		}
		results[n.ID] = jr
		outputs[n.ID] = out
		res.Rounds = append(res.Rounds, Round{ID: n.ID, Res: jr})
	}
	return res, nil
}
