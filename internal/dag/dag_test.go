package dag

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"supmr/internal/jobspec"
	"supmr/internal/workload"
)

func TestValidateRejects(t *testing.T) {
	wc := jobspec.Spec{App: "wordcount"}
	cases := []struct {
		name string
		g    Graph
		want string
	}{
		{"empty", Graph{}, "empty graph"},
		{"no id", Graph{Nodes: []Node{{Spec: wc}}}, "has no id"},
		{"dup id", Graph{Nodes: []Node{{ID: "a", Spec: wc}, {ID: "a", Spec: wc}}}, "duplicate node id"},
		{"bad spec", Graph{Nodes: []Node{{ID: "a", Spec: jobspec.Spec{App: "nope"}}}}, "unknown app"},
		{"self edge", Graph{Nodes: []Node{{ID: "a", Spec: wc, Input: "a"}}}, "pipes from itself"},
		{"unknown edge", Graph{Nodes: []Node{{ID: "a", Spec: wc, Input: "b"}}}, "unknown node"},
		{"cycle", Graph{Nodes: []Node{
			{ID: "a", Spec: wc, Input: "b"},
			{ID: "b", Spec: wc, Input: "a"},
		}}, "cycle"},
		{"unpipeable consumer", Graph{Nodes: []Node{
			{ID: "a", Spec: wc},
			{ID: "b", Spec: jobspec.Spec{App: "sort"}, Input: "a"},
		}}, "cannot consume a piped input"},
		{"piped memo", Graph{Nodes: []Node{
			{ID: "a", Spec: wc},
			{ID: "b", Spec: jobspec.Spec{App: "grep", Memo: true}, Input: "a"},
		}}, "memo is incompatible"},
		{"multi-node round", Graph{Nodes: []Node{
			{ID: "a", Spec: jobspec.Spec{App: "wordcount", Nodes: 2}},
		}}, "cannot be chained"},
	}
	for _, c := range cases {
		err := c.g.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestOrderTopological(t *testing.T) {
	g := Graph{Nodes: []Node{
		{ID: "c", Spec: jobspec.Spec{App: "grep"}, Input: "b"},
		{ID: "b", Spec: jobspec.Spec{App: "wordcount"}, Input: "a"},
		{ID: "a", Spec: jobspec.Spec{App: "wordcount"}},
	}}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	order, err := g.order()
	if err != nil {
		t.Fatalf("order: %v", err)
	}
	pos := map[string]int{}
	for at, i := range order {
		pos[g.Nodes[i].ID] = at
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Fatalf("order not topological: %v", pos)
	}
}

// prefixGraph is the canonical 2-round prefix-sum pipeline.
func prefixGraph(size int64, spec1 jobspec.Spec) Graph {
	spec1.App = "psum1"
	spec1.Size = size
	return Graph{Nodes: []Node{
		{ID: "part", Spec: spec1},
		{ID: "total", Spec: jobspec.Spec{App: "psum2", Runtime: spec1.Runtime}, Input: "part"},
	}}
}

func TestPrefixSumPipeline(t *testing.T) {
	const size = 64 << 10 // 4096 records
	res, err := Run(context.Background(), prefixGraph(size, jobspec.Spec{}), Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Rounds))
	}

	// Expected prefix sums from the generator's reference block sums.
	sums := workload.SeqGen{Seed: 1}.BlockSums(size/workload.SeqRecordWidth, 256)
	var run int64
	var want strings.Builder
	for b, s := range sums {
		run += s
		fmt.Fprintf(&want, "%d\t%d\n", b, run)
	}
	wantDigest := digestText(want.String())

	final := res.Final()
	if final.ID != "total" {
		t.Fatalf("final round = %q, want total", final.ID)
	}
	if final.Res.Digest != wantDigest {
		t.Fatalf("piped prefix-sum digest mismatch:\n got %s\nwant %s", final.Res.Digest, wantDigest)
	}
	if final.Res.OutputPairs != len(sums) {
		t.Fatalf("output pairs = %d, want %d", final.Res.OutputPairs, len(sums))
	}
	if res.Rounds[0].Res.EgressBytes == 0 || res.Rounds[0].Res.EgressExtents == 0 {
		t.Fatalf("source round reported no egress: %+v", res.Rounds[0].Res)
	}
}

// digestText hashes pre-rendered "key\tvalue\n" text; jobspec.Digest
// renders pairs into exactly this text, so the hashes are comparable.
func digestText(s string) string {
	return jobspec.DigestBytes([]byte(s))
}

func TestPipedMatchesMaterialized(t *testing.T) {
	const size = 64 << 10
	axes := []struct {
		name string
		spec jobspec.Spec
	}{
		{"plain", jobspec.Spec{}},
		{"faulted", jobspec.Spec{Faults: "seed=7,read-err-every=9,write-err-every=11", Retries: "4"}},
		{"budgeted", jobspec.Spec{Budget: 8 << 10}},
		{"radix-off", jobspec.Spec{RadixOff: true}},
		{"multi-lane", jobspec.Spec{IOLanes: 4, PrefetchDepth: 4, EgressLanes: 4}},
	}
	for _, ax := range axes {
		t.Run(ax.name, func(t *testing.T) {
			g := prefixGraph(size, ax.spec)
			piped, err := Run(context.Background(), g, Options{})
			if err != nil {
				t.Fatalf("piped run: %v", err)
			}
			mat, err := Run(context.Background(), g, Options{Materialize: true})
			if err != nil {
				t.Fatalf("materialized run: %v", err)
			}
			for i := range piped.Rounds {
				p, m := piped.Rounds[i], mat.Rounds[i]
				if p.Res.Digest != m.Res.Digest {
					t.Errorf("round %s: piped digest %s != materialized %s", p.ID, p.Res.Digest, m.Res.Digest)
				}
				if p.Res.OutputPairs != m.Res.OutputPairs {
					t.Errorf("round %s: pairs %d != %d", p.ID, p.Res.OutputPairs, m.Res.OutputPairs)
				}
			}
		})
	}
}

func TestSortGrepPipeline(t *testing.T) {
	g := Graph{Nodes: []Node{
		{ID: "sorted", Spec: jobspec.Spec{App: "sort", Size: 100 << 10}},
		{ID: "hits", Spec: jobspec.Spec{App: "grep", Pattern: "00"}, Input: "sorted"},
	}}
	piped, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatalf("piped run: %v", err)
	}
	mat, err := Run(context.Background(), g, Options{Materialize: true})
	if err != nil {
		t.Fatalf("materialized run: %v", err)
	}
	if piped.Final().Res.Digest != mat.Final().Res.Digest {
		t.Fatalf("sort→grep digests differ: %s vs %s", piped.Final().Res.Digest, mat.Final().Res.Digest)
	}
	if piped.Final().Res.OutputPairs == 0 {
		t.Fatalf("grep over sorted output found nothing")
	}
}
