// Package cliutil holds the small parsing/formatting helpers the
// command-line tools share.
package cliutil

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSize parses a byte count with optional binary suffix: "64",
// "64k", "4m", "2g" (case-insensitive, fractional values allowed:
// "1.5m").
func ParseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return 0, fmt.Errorf("cliutil: empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("cliutil: bad size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("cliutil: negative size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// ParseCount parses a small positive integer flag value (lane counts,
// ring depths): plain digits, at least min.
func ParseCount(s string, min int) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("cliutil: bad count %q", s)
	}
	if v < min {
		return 0, fmt.Errorf("cliutil: count %d below minimum %d", v, min)
	}
	return v, nil
}

// ParseDuration wraps time.ParseDuration with a friendlier error.
func ParseDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("cliutil: bad duration %q", s)
	}
	return d, nil
}

// FormatBytes renders a byte count with a decimal unit suffix, the way
// the paper writes sizes (1 GB = 1e9).
func FormatBytes(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fGB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fMB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fKB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FormatSeconds renders a duration as the paper's table cells do.
func FormatSeconds(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// ExitCoder is implemented by errors that carry a specific process
// exit status (e.g. the server client's typed protocol rejections).
type ExitCoder interface {
	error
	ExitCode() int
}

// ExitCode maps an error to the process exit status the CLI should
// use: 0 for nil, the error's own code when it (or anything it wraps)
// implements ExitCoder, 1 otherwise.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	var ec ExitCoder
	if errors.As(err, &ec) {
		return ec.ExitCode()
	}
	return 1
}
