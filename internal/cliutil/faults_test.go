package cliutil

import (
	"testing"
	"time"

	"supmr/internal/faults"
)

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("seed=42,read-err-every=100,short-read=0.05,latency=2ms,latency-prob=0.1,write-err=0.2,permanent-every=3,max=7")
	if err != nil {
		t.Fatal(err)
	}
	want := faults.Plan{
		Seed:           42,
		ReadErrEvery:   100,
		ShortReadProb:  0.05,
		Latency:        2 * time.Millisecond,
		LatencyProb:    0.1,
		WriteErrProb:   0.2,
		PermanentEvery: 3,
		MaxFaults:      7,
	}
	if p != want {
		t.Fatalf("plan = %+v, want %+v", p, want)
	}
}

func TestParseFaultPlanPermanentForms(t *testing.T) {
	p, err := ParseFaultPlan("seed=1,read-err-every=2,permanent")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Permanent {
		t.Fatal("bare permanent not set")
	}
	p, err = ParseFaultPlan("read-err=0.5,permanent=false")
	if err != nil {
		t.Fatal(err)
	}
	if p.Permanent {
		t.Fatal("permanent=false set the flag")
	}
}

func TestParseFaultPlanRejects(t *testing.T) {
	for _, s := range []string{
		"",                  // empty
		"read-err=1.5",      // probability out of range
		"bogus-key=1",       // unknown key
		"read-err-every",    // missing value
		"latency=sideways",  // bad duration
		"read-err-every=-3", // negative
		"permanent=maybe",   // bad bool
	} {
		if _, err := ParseFaultPlan(s); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", s)
		}
	}
}

func TestParseRetryPolicyBareCount(t *testing.T) {
	p, err := ParseRetryPolicy("4")
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxAttempts != 4 || p.BaseDelay != faults.DefaultBaseDelay || p.MaxDelay != faults.DefaultMaxDelay {
		t.Fatalf("policy = %+v", p)
	}
	if !p.Enabled() {
		t.Fatal("policy not enabled")
	}
}

func TestParseRetryPolicyKeyed(t *testing.T) {
	p, err := ParseRetryPolicy("attempts=3,base=500us,max=4ms,budget=10")
	if err != nil {
		t.Fatal(err)
	}
	want := faults.RetryPolicy{MaxAttempts: 3, BaseDelay: 500 * time.Microsecond, MaxDelay: 4 * time.Millisecond, Budget: 10}
	if p != want {
		t.Fatalf("policy = %+v, want %+v", p, want)
	}
}

func TestParseRetryPolicyRejects(t *testing.T) {
	for _, s := range []string{"", "0", "-2", "base=1ms", "attempts=1,frobs=2", "attempts=abc"} {
		if _, err := ParseRetryPolicy(s); err == nil {
			t.Errorf("ParseRetryPolicy(%q) accepted", s)
		}
	}
}
