package cliutil

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"0":     0,
		"64":    64,
		"64k":   64 << 10,
		"4m":    4 << 20,
		"2g":    2 << 30,
		"1.5m":  3 << 19,
		" 8K ":  8 << 10,
		"0.5g":  1 << 29,
		"100M ": 100 << 20,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil {
			t.Errorf("ParseSize(%q) error: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "12q", "-5m", "m"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) should fail", bad)
		}
	}
}

func TestParseDuration(t *testing.T) {
	if d, err := ParseDuration("150ms"); err != nil || d != 150*time.Millisecond {
		t.Errorf("ParseDuration = %v, %v", d, err)
	}
	if _, err := ParseDuration("nope"); err == nil {
		t.Error("bad duration accepted")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KB",
		3 << 20: "3.1MB",
		2e9:     "2.0GB",
		155e9:   "155.0GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	if got := FormatSeconds(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("FormatSeconds = %q", got)
	}
}

func TestParseCount(t *testing.T) {
	if n, err := ParseCount(" 4 ", 1); err != nil || n != 4 {
		t.Errorf("ParseCount(4) = %d, %v", n, err)
	}
	if n, err := ParseCount("1", 1); err != nil || n != 1 {
		t.Errorf("ParseCount(1) = %d, %v", n, err)
	}
	for _, bad := range []string{"", "x", "2.5", "-1", "0"} {
		if _, err := ParseCount(bad, 1); err == nil {
			t.Errorf("ParseCount(%q) accepted", bad)
		}
	}
	if _, err := ParseCount("2", 3); err == nil {
		t.Error("count below minimum accepted")
	}
}

// TestKnobErrorsAreDescriptive pins the error text the CLIs surface for
// the ingest/budget knobs: the message must carry the offending value
// so `supmr -io-lanes 0` and friends fail with an explanation, not just
// a usage dump.
func TestKnobErrorsAreDescriptive(t *testing.T) {
	if _, err := ParseCount("0", 1); err == nil || !strings.Contains(err.Error(), "below minimum 1") {
		t.Errorf("ParseCount(0): %v", err)
	}
	if _, err := ParseCount("-4", 1); err == nil || !strings.Contains(err.Error(), "below minimum 1") {
		t.Errorf("ParseCount(-4): %v", err)
	}
	if _, err := ParseSize("-5m"); err == nil || !strings.Contains(err.Error(), "negative size") {
		t.Errorf("ParseSize(-5m): %v", err)
	}
	// The submit path's -weight knob rides ParseCount with minimum 1: a
	// zero or negative fair-share weight must carry both the value and
	// the floor, since the scheduler treats weight 0 as "default" only
	// when the field is omitted programmatically, never via the flag.
	for _, bad := range []string{"0", "-3"} {
		_, err := ParseCount(bad, 1)
		if err == nil || !strings.Contains(err.Error(), bad) || !strings.Contains(err.Error(), "below minimum 1") {
			t.Errorf("ParseCount(%s) as -weight: %v", bad, err)
		}
	}
	if _, err := ParseCount("heavy", 1); err == nil || !strings.Contains(err.Error(), "heavy") {
		t.Errorf("ParseCount(heavy) as -weight: %v", err)
	}
}

type exitErr struct{ code int }

func (e *exitErr) Error() string { return "exit" }
func (e *exitErr) ExitCode() int { return e.code }

func TestExitCode(t *testing.T) {
	if got := ExitCode(nil); got != 0 {
		t.Errorf("ExitCode(nil) = %d", got)
	}
	if got := ExitCode(errors.New("plain")); got != 1 {
		t.Errorf("plain error = %d, want 1", got)
	}
	if got := ExitCode(&exitErr{code: 4}); got != 4 {
		t.Errorf("ExitCoder = %d, want 4", got)
	}
	// Codes survive wrapping.
	if got := ExitCode(fmt.Errorf("submit: %w", &exitErr{code: 3})); got != 3 {
		t.Errorf("wrapped ExitCoder = %d, want 3", got)
	}
}
