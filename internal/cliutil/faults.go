package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"supmr/internal/faults"
)

// ParseFaultPlan parses the -faults flag: comma-separated key=value
// settings, e.g.
//
//	seed=42,read-err-every=100,short-read=0.05,latency=2ms,latency-prob=0.1
//
// Keys: seed, read-err (probability), read-err-every, write-err,
// write-err-every, short-read, short-read-every, latency (duration),
// latency-prob, latency-every, permanent (bare or =bool),
// permanent-every, max (fault cap).
func ParseFaultPlan(s string) (faults.Plan, error) {
	var p faults.Plan
	s = strings.TrimSpace(s)
	if s == "" {
		return p, fmt.Errorf("cliutil: empty fault plan")
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, hasVal := strings.Cut(field, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			p.Seed, err = parseInt(key, val, hasVal)
		case "read-err":
			p.ReadErrProb, err = parseProb(key, val, hasVal)
		case "read-err-every":
			p.ReadErrEvery, err = parseInt(key, val, hasVal)
		case "write-err":
			p.WriteErrProb, err = parseProb(key, val, hasVal)
		case "write-err-every":
			p.WriteErrEvery, err = parseInt(key, val, hasVal)
		case "short-read":
			p.ShortReadProb, err = parseProb(key, val, hasVal)
		case "short-read-every":
			p.ShortReadEvery, err = parseInt(key, val, hasVal)
		case "latency":
			if !hasVal {
				return p, fmt.Errorf("cliutil: fault setting %s needs a duration", key)
			}
			p.Latency, err = ParseDuration(val)
		case "latency-prob":
			p.LatencyProb, err = parseProb(key, val, hasVal)
		case "latency-every":
			p.LatencyEvery, err = parseInt(key, val, hasVal)
		case "permanent":
			p.Permanent = true
			if hasVal {
				p.Permanent, err = strconv.ParseBool(val)
				if err != nil {
					err = fmt.Errorf("cliutil: bad bool %q for permanent", val)
				}
			}
		case "permanent-every":
			p.PermanentEvery, err = parseInt(key, val, hasVal)
		case "max":
			p.MaxFaults, err = parseInt(key, val, hasVal)
		default:
			return p, fmt.Errorf("cliutil: unknown fault setting %q", key)
		}
		if err != nil {
			return p, err
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// ParseRetryPolicy parses the -retries flag: either a bare attempt
// count ("4") or key=value settings attempts=N,base=DUR,max=DUR,
// budget=N. Backoff defaults: base 1ms, max 50ms.
func ParseRetryPolicy(s string) (faults.RetryPolicy, error) {
	p := faults.RetryPolicy{
		BaseDelay: faults.DefaultBaseDelay,
		MaxDelay:  faults.DefaultMaxDelay,
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, fmt.Errorf("cliutil: empty retry policy")
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 1 {
			return p, fmt.Errorf("cliutil: retry attempts must be at least 1, got %d", n)
		}
		p.MaxAttempts = n
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, hasVal := strings.Cut(field, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "attempts":
			var n int64
			n, err = parseInt(key, val, hasVal)
			p.MaxAttempts = int(n)
		case "base":
			if !hasVal {
				return p, fmt.Errorf("cliutil: retry setting %s needs a duration", key)
			}
			p.BaseDelay, err = ParseDuration(val)
		case "max":
			if !hasVal {
				return p, fmt.Errorf("cliutil: retry setting %s needs a duration", key)
			}
			p.MaxDelay, err = ParseDuration(val)
		case "budget":
			p.Budget, err = parseInt(key, val, hasVal)
		default:
			return p, fmt.Errorf("cliutil: unknown retry setting %q", key)
		}
		if err != nil {
			return p, err
		}
	}
	if p.MaxAttempts < 1 {
		return p, fmt.Errorf("cliutil: retry policy needs attempts>=1, got %d", p.MaxAttempts)
	}
	if p.BaseDelay < 0 || p.MaxDelay < 0 || p.Budget < 0 {
		return p, fmt.Errorf("cliutil: negative retry setting in %q", s)
	}
	return p, nil
}

func parseInt(key, val string, hasVal bool) (int64, error) {
	if !hasVal {
		return 0, fmt.Errorf("cliutil: setting %s needs a value", key)
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cliutil: bad integer %q for %s", val, key)
	}
	return n, nil
}

func parseProb(key, val string, hasVal bool) (float64, error) {
	if !hasVal {
		return 0, fmt.Errorf("cliutil: setting %s needs a value", key)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("cliutil: bad probability %q for %s", val, key)
	}
	return v, nil
}
