package faults

import (
	"fmt"
	"sync/atomic"
	"time"

	"supmr/internal/storage"
)

// RetryPolicy bounds how hard the runtime fights transient faults:
// capped exponential backoff on the job clock, transient injected
// faults only (permanent faults and genuine errors fail immediately),
// with an optional per-site retry budget. The zero policy disables
// retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per operation
	// (first try included). <= 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// subsequent retry. Zero retries immediately.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = uncapped).
	MaxDelay time.Duration
	// Budget caps the total retries per Retrier (per wrapped site);
	// 0 = unlimited.
	Budget int64
}

// Default backoff bounds for callers (the CLI) that configure only an
// attempt count.
const (
	DefaultBaseDelay = time.Millisecond
	DefaultMaxDelay  = 50 * time.Millisecond
)

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Delay returns the deterministic backoff before retry number `retry`
// (0-based): BaseDelay << retry, capped at MaxDelay. No jitter — the
// schedule must reproduce exactly for a given plan.
func (p RetryPolicy) Delay(retry int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 0; i < retry; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// Retrier applies a RetryPolicy at one site. A nil *Retrier runs
// operations once with no retry, so callers can hold one
// unconditionally. Safe for concurrent use; the budget is shared
// across a Retrier's operations.
type Retrier struct {
	policy RetryPolicy
	clock  storage.Clock
	ctr    *Counters
	used   atomic.Int64
}

// NewRetrier builds a retrier. clock provides the backoff timeline
// (pass the job/device clock so sleeps are virtual under a FakeClock);
// nil means no backoff sleeps. ctr may be nil.
func NewRetrier(p RetryPolicy, clock storage.Clock, ctr *Counters) *Retrier {
	return &Retrier{policy: p, clock: clock, ctr: ctr}
}

// Do runs op, retrying transient injected faults per the policy. The
// terminal error always wraps the last attempt's fault, so errors.Is
// (err, ErrInjected) holds whether retries were exhausted, the budget
// ran out, or the fault was permanent.
func (r *Retrier) Do(op func() error) error {
	if r == nil || !r.policy.Enabled() {
		return op()
	}
	for retry := 0; ; retry++ {
		err := op()
		if err == nil {
			if retry > 0 {
				r.ctr.Recover()
			}
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		if retry+1 >= r.policy.MaxAttempts {
			return fmt.Errorf("faults: gave up after %d attempts: %w", retry+1, err)
		}
		if b := r.policy.Budget; b > 0 && r.used.Add(1) > b {
			return fmt.Errorf("faults: retry budget %d exhausted: %w", b, err)
		}
		if d := r.policy.Delay(retry); d > 0 && r.clock != nil {
			r.clock.SleepUntil(r.clock.Now() + d)
		}
		r.ctr.Retry()
	}
}

// WithRetry wraps an ingest source so transient ReadAt faults retry
// per the policy. Positional reads are idempotent — the chunkers
// advance their offsets only after a read fully succeeds — which is
// what makes retrying at this layer safe.
func WithRetry(f Input, p RetryPolicy, clock storage.Clock, ctr *Counters) Input {
	if !p.Enabled() {
		return f
	}
	return &retryInput{inner: f, r: NewRetrier(p, clock, ctr)}
}

type retryInput struct {
	inner Input
	r     *Retrier
}

func (f *retryInput) Name() string { return f.inner.Name() }
func (f *retryInput) Size() int64  { return f.inner.Size() }

func (f *retryInput) ReadAt(p []byte, off int64) (n int, err error) {
	err = f.r.Do(func() error {
		var e error
		n, e = f.inner.ReadAt(p, off)
		return e
	})
	return n, err
}

// IssueReadAt retries the issue step: injected faults surface at issue
// (see faultInput.IssueReadAt), so the whole backoff loop runs on the
// single ingest goroutine and the retry schedule stays deterministic
// under multi-lane waits. The successfully issued wait is returned
// untouched.
func (f *retryInput) IssueReadAt(p []byte, off int64) (func() (int, error), error) {
	ir, ok := f.inner.(issueReader)
	if !ok {
		return func() (int, error) { return f.ReadAt(p, off) }, nil
	}
	var wait func() (int, error)
	err := f.r.Do(func() error {
		w, e := ir.IssueReadAt(p, off)
		if e != nil {
			return e
		}
		wait = w
		return nil
	})
	if err != nil {
		return nil, err
	}
	return wait, nil
}
