package faults

import (
	"sync/atomic"

	"supmr/internal/metrics"
)

// Counters accumulate fault-injection and retry activity across a job.
// All methods are safe for concurrent use; a nil *Counters is a valid
// no-op receiver so retry code can run uncounted.
type Counters struct {
	injected      atomic.Int64
	transient     atomic.Int64
	permanent     atomic.Int64
	shortReads    atomic.Int64
	latencySpikes atomic.Int64
	retried       atomic.Int64
	recovered     atomic.Int64
}

// NewCounters returns an empty counter set (for retry policies running
// without an injector).
func NewCounters() *Counters { return &Counters{} }

// Retry records one retry attempt.
func (c *Counters) Retry() {
	if c != nil {
		c.retried.Add(1)
	}
}

// Recover records one operation that succeeded after at least one
// retry.
func (c *Counters) Recover() {
	if c != nil {
		c.recovered.Add(1)
	}
}

// Snapshot copies the counters into the metrics type reports carry.
func (c *Counters) Snapshot() metrics.FaultStats {
	if c == nil {
		return metrics.FaultStats{}
	}
	return metrics.FaultStats{
		Injected:      c.injected.Load(),
		Transient:     c.transient.Load(),
		Permanent:     c.permanent.Load(),
		ShortReads:    c.shortReads.Load(),
		LatencySpikes: c.latencySpikes.Load(),
		Retried:       c.retried.Load(),
		Recovered:     c.recovered.Load(),
	}
}
