package faults

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"supmr/internal/storage"
)

// trace records the visible outcome of one wrapped read for the
// determinism comparison.
type trace struct {
	n    int
	err  string
	perm bool
}

func readAll(t *testing.T, in Input, reads int, size int) []trace {
	t.Helper()
	var out []trace
	p := make([]byte, size)
	for i := 0; i < reads; i++ {
		n, err := in.ReadAt(p, int64(i*size)%in.Size())
		tr := trace{n: n}
		if err != nil && !errors.Is(err, io.EOF) {
			tr.err = err.Error()
			var f *Fault
			if errors.As(err, &f) {
				tr.perm = f.Permanent
			}
		}
		out = append(out, tr)
	}
	return out
}

// Same seed + plan must reproduce the same fault sequence exactly;
// changing the seed must (for this plan) change it.
func TestInjectorDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte("0123456789abcdef"), 256)
	plan := Plan{Seed: 42, ReadErrProb: 0.3, ShortReadProb: 0.3, LatencyProb: 0.2, Latency: time.Millisecond}
	run := func(seed int64) []trace {
		p := plan
		p.Seed = seed
		inj := New(p, storage.NewFakeClock())
		f := storage.BytesFile("input", data, storage.NewNullDevice(storage.NewFakeClock()))
		return readAll(t, inj.WrapInput(f), 64, 64)
	}
	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(run(43)) {
		t.Fatal("different seeds produced an identical fault sequence")
	}
}

// The site name is part of the seed: two sites under one injector see
// independent schedules, and per-site schedules do not depend on the
// order sites are first touched.
func TestInjectorPerSiteStreams(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 4096)
	mk := func() (*Injector, Input, Input) {
		inj := New(Plan{Seed: 7, ReadErrProb: 0.5}, nil)
		dev := storage.NewNullDevice(storage.NewFakeClock())
		return inj, inj.WrapInput(storage.BytesFile("a", data, dev)), inj.WrapInput(storage.BytesFile("b", data, dev))
	}
	inj1, a1, b1 := mk()
	_ = inj1
	ta1 := readAll(t, a1, 32, 16)
	tb1 := readAll(t, b1, 32, 16)
	// Second injector: touch b first, then a. Per-site traces must match.
	_, a2, b2 := mk()
	tb2 := readAll(t, b2, 32, 16)
	ta2 := readAll(t, a2, 32, 16)
	if fmt.Sprint(ta1) != fmt.Sprint(ta2) || fmt.Sprint(tb1) != fmt.Sprint(tb2) {
		t.Fatal("per-site schedules depend on site touch order")
	}
	if fmt.Sprint(ta1) == fmt.Sprint(tb1) {
		t.Fatal("distinct sites share one schedule")
	}
}

func TestEveryNthReadFails(t *testing.T) {
	data := bytes.Repeat([]byte("y"), 1024)
	inj := New(Plan{Seed: 1, ReadErrEvery: 3}, nil)
	in := inj.WrapInput(storage.BytesFile("f", data, storage.NewNullDevice(storage.NewFakeClock())))
	p := make([]byte, 8)
	for i := 1; i <= 9; i++ {
		_, err := in.ReadAt(p, 0)
		wantErr := i%3 == 0
		if gotErr := err != nil; gotErr != wantErr {
			t.Fatalf("read %d: err=%v, want failure=%v", i, err, wantErr)
		}
		if wantErr {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("read %d: error %v does not wrap ErrInjected", i, err)
			}
			if !IsTransient(err) {
				t.Fatalf("read %d: default fault should be transient", i)
			}
		}
	}
	if got := inj.Counters().Snapshot(); got.Injected != 3 || got.Transient != 3 || got.Permanent != 0 {
		t.Fatalf("counters = %+v, want 3 transient injections", got)
	}
}

func TestPermanentFaultsNotTransient(t *testing.T) {
	inj := New(Plan{Seed: 1, ReadErrEvery: 1, Permanent: true}, nil)
	in := inj.WrapInput(storage.BytesFile("f", []byte("abc"), storage.NewNullDevice(storage.NewFakeClock())))
	_, err := in.ReadAt(make([]byte, 2), 0)
	if err == nil || IsTransient(err) {
		t.Fatalf("want a permanent fault, got %v", err)
	}
	if got := inj.Counters().Snapshot(); got.Permanent != 1 {
		t.Fatalf("counters = %+v, want Permanent=1", got)
	}
}

func TestShortReadDeliversPrefix(t *testing.T) {
	data := []byte("0123456789abcdef")
	inj := New(Plan{Seed: 1, ShortReadEvery: 1}, nil)
	in := inj.WrapInput(storage.BytesFile("f", data, storage.NewNullDevice(storage.NewFakeClock())))
	p := make([]byte, 8)
	n, err := in.ReadAt(p, 0)
	if err != nil || n != 4 {
		t.Fatalf("short read: n=%d err=%v, want n=4 (half) and nil", n, err)
	}
	if !bytes.Equal(p[:n], data[:4]) {
		t.Fatalf("short read delivered wrong bytes %q", p[:n])
	}
}

func TestLatencySpikeSleepsOnClock(t *testing.T) {
	clk := storage.NewFakeClock()
	inj := New(Plan{Seed: 1, Latency: 5 * time.Millisecond, LatencyEvery: 2}, clk)
	in := inj.WrapInput(storage.BytesFile("f", bytes.Repeat([]byte("z"), 64), storage.NewNullDevice(clk)))
	p := make([]byte, 4)
	before := clk.Now()
	in.ReadAt(p, 0) // op 1: no spike
	if clk.Now() != before {
		t.Fatalf("unexpected sleep on op 1")
	}
	in.ReadAt(p, 0) // op 2: spike
	if got := clk.Now() - before; got != 5*time.Millisecond {
		t.Fatalf("spike advanced clock by %v, want 5ms", got)
	}
	if got := inj.Counters().Snapshot(); got.LatencySpikes != 1 {
		t.Fatalf("counters = %+v, want LatencySpikes=1", got)
	}
}

func TestMaxFaultsCapsInjection(t *testing.T) {
	inj := New(Plan{Seed: 1, ReadErrEvery: 1, MaxFaults: 2}, nil)
	in := inj.WrapInput(storage.BytesFile("f", bytes.Repeat([]byte("q"), 64), storage.NewNullDevice(storage.NewFakeClock())))
	p := make([]byte, 4)
	var fails int
	for i := 0; i < 10; i++ {
		if _, err := in.ReadAt(p, 0); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("injected %d faults, want MaxFaults cap of 2", fails)
	}
}

// The device wrapper: TryReserve carries injected errors, the plain
// Reserve path never errors (spikes only), and the wrapped device
// still satisfies storage.FallibleDevice.
func TestWrapDevice(t *testing.T) {
	clk := storage.NewFakeClock()
	inner := storage.NewNullDevice(clk)
	inj := New(Plan{Seed: 1, ReadErrEvery: 2}, clk)
	dev := inj.WrapDevice("disk0", inner)
	fd, ok := dev.(storage.FallibleDevice)
	if !ok {
		t.Fatal("wrapped device is not a FallibleDevice")
	}
	if _, err := fd.TryReserve(0, 100); err != nil {
		t.Fatalf("op 1 failed: %v", err)
	}
	if _, err := fd.TryReserve(100, 100); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2: err=%v, want injected fault", err)
	}
	// The infallible path cannot fail even on a trigger op.
	dev.Reserve(0, 10) // op 3
	dev.Reserve(0, 10) // op 4: every-2nd trigger, but canFail=false
	if got := inj.Counters().Snapshot(); got.Injected != 1 {
		t.Fatalf("counters = %+v; infallible Reserve must not spend faults", got)
	}
}

// Torn writes: an injected write error lands a prefix of the payload
// before failing, so retry-by-rewrite is genuinely exercised.
func TestWrapBlockFileTornWrite(t *testing.T) {
	var sink memBlock
	inj := New(Plan{Seed: 1, WriteErrEvery: 1}, nil)
	f := inj.WrapBlockFile("run0", &sink)
	n, err := f.WriteAt([]byte("0123456789"), 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err=%v, want injected write fault", err)
	}
	if n != 5 || !bytes.Equal(sink.buf, []byte("01234")) {
		t.Fatalf("torn write landed %d bytes %q, want the 5-byte prefix", n, sink.buf)
	}
}

type memBlock struct{ buf []byte }

func (m *memBlock) WriteAt(p []byte, off int64) (int, error) {
	if need := off + int64(len(p)); need > int64(len(m.buf)) {
		grown := make([]byte, need)
		copy(grown, m.buf)
		m.buf = grown
	}
	return copy(m.buf[off:], p), nil
}
func (m *memBlock) ReadAt(p []byte, off int64) (int, error) { return copy(p, m.buf[off:]), nil }
func (m *memBlock) Close() error                            { return nil }

func TestRetrierRecoversTransient(t *testing.T) {
	clk := storage.NewFakeClock()
	ctr := NewCounters()
	r := NewRetrier(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 3 * time.Millisecond}, clk, ctr)
	attempts := 0
	err := r.Do(func() error {
		attempts++
		if attempts < 3 {
			return &Fault{Site: "s", Op: "read", Seq: int64(attempts)}
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("err=%v attempts=%d, want recovery on attempt 3", err, attempts)
	}
	// Backoff: 1ms then 2ms on the virtual clock.
	if got := clk.Now(); got != 3*time.Millisecond {
		t.Fatalf("backoff slept %v, want 3ms", got)
	}
	if s := ctr.Snapshot(); s.Retried != 2 || s.Recovered != 1 {
		t.Fatalf("counters = %+v, want Retried=2 Recovered=1", s)
	}
}

func TestRetrierGivesUpAndWraps(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 3}, nil, nil)
	attempts := 0
	err := r.Do(func() error {
		attempts++
		return &Fault{Site: "s", Op: "read", Seq: int64(attempts)}
	})
	if attempts != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("attempts=%d err=%v, want 3 attempts and a wrapped injected error", attempts, err)
	}
}

func TestRetrierPermanentFailsFast(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 5}, nil, nil)
	attempts := 0
	err := r.Do(func() error {
		attempts++
		return &Fault{Site: "s", Op: "read", Seq: 1, Permanent: true}
	})
	if attempts != 1 || !errors.Is(err, ErrInjected) {
		t.Fatalf("attempts=%d err=%v, want a single attempt", attempts, err)
	}
}

func TestRetrierBudget(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 10, Budget: 2}, nil, nil)
	attempts := 0
	err := r.Do(func() error {
		attempts++
		return &Fault{Site: "s", Op: "read", Seq: int64(attempts)}
	})
	if attempts != 3 || err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("attempts=%d err=%v, want budget exhaustion after 2 retries", attempts, err)
	}
}

func TestNilRetrierRunsOnce(t *testing.T) {
	var r *Retrier
	attempts := 0
	sentinel := errors.New("boom")
	if err := r.Do(func() error { attempts++; return sentinel }); err != sentinel || attempts != 1 {
		t.Fatalf("nil retrier: attempts=%d err=%v", attempts, err)
	}
}

func TestWithRetryInput(t *testing.T) {
	data := bytes.Repeat([]byte("w"), 256)
	inj := New(Plan{Seed: 1, ReadErrEvery: 2}, nil)
	ctr := inj.Counters()
	in := WithRetry(inj.WrapInput(storage.BytesFile("f", data, storage.NewNullDevice(storage.NewFakeClock()))),
		RetryPolicy{MaxAttempts: 3}, nil, ctr)
	p := make([]byte, 16)
	for i := 0; i < 8; i++ {
		if _, err := in.ReadAt(p, 0); err != nil {
			t.Fatalf("read %d not recovered: %v", i, err)
		}
	}
	s := ctr.Snapshot()
	if s.Recovered == 0 || s.Retried == 0 {
		t.Fatalf("counters = %+v, want recovered retries", s)
	}
}

func TestDelayCapsAndDoubles(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{ReadErrProb: 1.5}).Validate(); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if err := (Plan{Latency: -time.Second}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := (Plan{ReadErrEvery: 3, ShortReadProb: 0.5}).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if (Plan{}).Active() {
		t.Fatal("zero plan reported active")
	}
	if !(Plan{ReadErrEvery: 1}).Active() {
		t.Fatal("error plan reported inactive")
	}
}

func TestWireTornSend(t *testing.T) {
	clk := storage.NewFakeClock()
	inj := New(Plan{Seed: 7, WriteErrEvery: 3}, clk)
	w := inj.Wire("shuffle-n0-n1")
	for i := 1; i <= 6; i++ {
		sent, err := w.Send(1000)
		if i%3 == 0 {
			if err == nil {
				t.Fatalf("send %d: no fault, want torn send", i)
			}
			var f *Fault
			if !errors.As(err, &f) || f.Op != "write" || f.Site != "shuffle-n0-n1" {
				t.Fatalf("send %d: fault = %+v", i, err)
			}
			if !IsTransient(err) {
				t.Fatalf("send %d: torn send not transient", i)
			}
			if sent != 500 {
				t.Fatalf("send %d: torn send delivered %d bytes, want half (500)", i, sent)
			}
		} else {
			if err != nil || sent != 1000 {
				t.Fatalf("send %d: = %d, %v, want clean 1000", i, sent, err)
			}
		}
	}
	if got := inj.Counters().Snapshot(); got.Injected != 2 {
		t.Fatalf("counters = %+v, want Injected=2", got)
	}
}

func TestWireDeterministicPerSite(t *testing.T) {
	run := func(seed int64, site string) []int {
		inj := New(Plan{Seed: seed, WriteErrProb: 0.3}, storage.NewFakeClock())
		w := inj.Wire(site)
		var torn []int
		for i := 0; i < 64; i++ {
			if _, err := w.Send(100); err != nil {
				torn = append(torn, i)
			}
		}
		return torn
	}
	a, b := run(5, "shuffle-n0-n1"), run(5, "shuffle-n0-n1")
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed+site diverged: %v vs %v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(run(5, "shuffle-n1-n0")) {
		t.Fatal("directed sites share a fault stream")
	}
}

func TestWireSpikeAndNil(t *testing.T) {
	clk := storage.NewFakeClock()
	inj := New(Plan{Seed: 1, Latency: 3 * time.Millisecond, LatencyEvery: 1}, clk)
	w := inj.Wire("shuffle-n0-n1")
	before := clk.Now()
	if sent, err := w.Send(64); err != nil || sent != 64 {
		t.Fatalf("spike-only plan failed the send: %d, %v", sent, err)
	}
	if got := clk.Now() - before; got != 3*time.Millisecond {
		t.Fatalf("spike advanced clock by %v, want 3ms", got)
	}
	var nilWire *Wire
	if sent, err := nilWire.Send(128); err != nil || sent != 128 {
		t.Fatalf("nil wire = %d, %v, want clean passthrough", sent, err)
	}
}
