// Package faults is the deterministic fault-injection layer for the
// simulated substrates: it wraps inputs (local files, HDFS files,
// in-memory buffers), storage devices, spill-run backings and network
// links so that a Plan — reproducible from a single seed — injects
// read/write errors, short reads, torn writes and latency spikes into
// an otherwise perfect simulation.
//
// Determinism contract: every wrapped object is a "site" named by a
// stable string (the file name, "spill", "dn3", ...). Each site owns a
// random stream seeded from (Plan.Seed XOR fnv64(site name)) and
// per-operation counters, so the fault schedule at a site is a pure
// function of the plan and the sequence of operations the site
// actually serves — independent of goroutine interleaving across
// sites. The SupMR pipeline keeps each site's operation sequence
// deterministic however many IO lanes it runs: every ingest read is
// *issued* — and therefore has its fault decision drawn — from the
// single ingest thread via the two-phase IssueReadAt split (only the
// data transfer runs on a lane), and the spill layer keeps at most one
// write in flight. For a fixed plan the whole job's fault sequence
// (and therefore its outcome on a virtual clock) is reproducible.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"time"

	"supmr/internal/storage"
)

// Plan describes one deterministic fault schedule. Every trigger comes
// in an every-Nth flavor (exact, counter-based) and a probability
// flavor (drawn from the site's seeded stream); both may be active.
// The zero Plan injects nothing.
type Plan struct {
	// Seed roots every site's random stream. Two runs with the same
	// plan (and the same operation sequence) see the same faults.
	Seed int64

	ReadErrEvery  int64   // inject a read error on every Nth read at a site (0 = off)
	ReadErrProb   float64 // per-read error probability in [0,1]
	WriteErrEvery int64   // inject a write error on every Nth write at a site
	WriteErrProb  float64 // per-write error probability

	ShortReadEvery int64   // truncate every Nth read to a prefix
	ShortReadProb  float64 // per-read truncation probability

	Latency      time.Duration // extra service delay per latency spike
	LatencyEvery int64         // spike every Nth operation
	LatencyProb  float64       // per-operation spike probability

	// Permanent marks every injected error non-retryable. Otherwise
	// errors are transient unless PermanentEvery promotes them.
	Permanent bool
	// PermanentEvery promotes every Nth injected error (globally, in
	// injection order) to permanent.
	PermanentEvery int64

	// MaxFaults caps the total number of injected errors across all
	// sites (0 = unlimited). Degraded-service events (short reads,
	// latency spikes) do not count against the cap.
	MaxFaults int64
}

// Active reports whether the plan can inject anything at all.
func (p Plan) Active() bool {
	return p.ReadErrEvery > 0 || p.ReadErrProb > 0 ||
		p.WriteErrEvery > 0 || p.WriteErrProb > 0 ||
		p.ShortReadEvery > 0 || p.ShortReadProb > 0 ||
		(p.Latency > 0 && (p.LatencyEvery > 0 || p.LatencyProb > 0))
}

// Validate rejects out-of-range probabilities and negative settings.
func (p Plan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"read-err", p.ReadErrProb}, {"write-err", p.WriteErrProb},
		{"short-read", p.ShortReadProb}, {"latency-prob", p.LatencyProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.Latency < 0 {
		return fmt.Errorf("faults: negative latency spike %v", p.Latency)
	}
	for _, ev := range []struct {
		name string
		v    int64
	}{
		{"read-err-every", p.ReadErrEvery}, {"write-err-every", p.WriteErrEvery},
		{"short-read-every", p.ShortReadEvery}, {"latency-every", p.LatencyEvery},
		{"permanent-every", p.PermanentEvery}, {"max-faults", p.MaxFaults},
	} {
		if ev.v < 0 {
			return fmt.Errorf("faults: negative %s %d", ev.name, ev.v)
		}
	}
	return nil
}

// ErrInjected is the sentinel every injected fault wraps; match with
// errors.Is to tell injected failures from genuine ones.
var ErrInjected = errors.New("injected fault")

// Fault is one injected error: which site, which operation, the
// operation's sequence number at the site, and whether the failure is
// permanent (non-retryable).
type Fault struct {
	Site      string
	Op        string // "read" or "write"
	Seq       int64  // 1-based operation number at the site
	Permanent bool
}

// Error renders the fault.
func (f *Fault) Error() string {
	kind := "transient"
	if f.Permanent {
		kind = "permanent"
	}
	return fmt.Sprintf("%s %s fault at %s (op %d): %s", kind, f.Op, f.Site, f.Seq, ErrInjected)
}

// Unwrap exposes the sentinel for errors.Is(err, ErrInjected).
func (f *Fault) Unwrap() error { return ErrInjected }

// IsTransient reports whether err is (or wraps) a retryable injected
// fault. Permanent faults and genuine errors are not transient.
func IsTransient(err error) bool {
	var f *Fault
	return errors.As(err, &f) && !f.Permanent
}

const (
	opRead  = "read"
	opWrite = "write"
)

// Injector applies one Plan. Wrap each substrate object once
// (WrapInput, WrapDevice, WrapBlockFile, LinkDelayer) and share the
// injector across a job so MaxFaults and the counters are global.
// Latency spikes sleep on the injector's clock — pass the job clock so
// they land on the same (possibly virtual) timeline as device waits.
type Injector struct {
	plan  Plan
	clock storage.Clock
	ctr   *Counters

	mu       sync.Mutex
	sites    map[string]*site
	injected int64 // error faults injected so far, for MaxFaults/PermanentEvery
}

type site struct {
	rng    *rand.Rand
	reads  int64
	writes int64
}

// New builds an injector for plan. clock may be nil when the plan has
// no latency spikes.
func New(plan Plan, clock storage.Clock) *Injector {
	if clock == nil {
		clock = storage.NewFakeClock()
	}
	return &Injector{plan: plan, clock: clock, ctr: &Counters{}, sites: make(map[string]*site)}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Counters returns the shared fault/retry counters.
func (in *Injector) Counters() *Counters { return in.ctr }

// siteFor returns (creating on first use) the per-site state. Seeding
// from the site name keeps schedules independent of wrap order.
func (in *Injector) siteFor(name string) *site {
	s := in.sites[name]
	if s == nil {
		h := fnv.New64a()
		h.Write([]byte(name))
		s = &site{rng: rand.New(rand.NewSource(in.plan.Seed ^ int64(h.Sum64())))}
		in.sites[name] = s
	}
	return s
}

// action is the injector's verdict for one operation.
type action struct {
	spike time.Duration
	short bool
	fault *Fault
}

// decide advances the site's operation counter and rolls the plan's
// triggers. canFail gates error injection: infallible paths (plain
// Device.Reserve) still get latency spikes but never an error, so a
// fault is not "spent" where it cannot be delivered.
func (in *Injector) decide(siteName, op string, canFail bool) action {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.siteFor(siteName)
	var n int64
	if op == opWrite {
		s.writes++
		n = s.writes
	} else {
		s.reads++
		n = s.reads
	}
	var a action
	p := in.plan
	if p.Latency > 0 && hit(s.rng, n, p.LatencyEvery, p.LatencyProb) {
		a.spike = p.Latency
		in.ctr.latencySpikes.Add(1)
	}
	if canFail && op == opRead && hit(s.rng, n, p.ShortReadEvery, p.ShortReadProb) {
		a.short = true
		in.ctr.shortReads.Add(1)
	}
	every, prob := p.ReadErrEvery, p.ReadErrProb
	if op == opWrite {
		every, prob = p.WriteErrEvery, p.WriteErrProb
	}
	if canFail && hit(s.rng, n, every, prob) && (p.MaxFaults <= 0 || in.injected < p.MaxFaults) {
		in.injected++
		perm := p.Permanent || (p.PermanentEvery > 0 && in.injected%p.PermanentEvery == 0)
		a.fault = &Fault{Site: siteName, Op: op, Seq: n, Permanent: perm}
		in.ctr.injected.Add(1)
		if perm {
			in.ctr.permanent.Add(1)
		} else {
			in.ctr.transient.Add(1)
		}
	}
	return a
}

// hit rolls one trigger: exact on every-Nth operations, plus an
// independent draw from the site's stream when a probability is set.
func hit(rng *rand.Rand, n, every int64, prob float64) bool {
	if every > 0 && n%every == 0 {
		return true
	}
	return prob > 0 && rng.Float64() < prob
}

// sleep charges a latency spike on the injector clock.
func (in *Injector) sleep(d time.Duration) {
	if d > 0 {
		in.clock.SleepUntil(in.clock.Now() + d)
	}
}

// Input mirrors chunk.Input structurally (name + size + positioned
// reads) so this package can wrap ingest sources without importing the
// chunk package.
type Input interface {
	Name() string
	Size() int64
	io.ReaderAt
}

// WrapInput wraps an ingest source; the site is the input's name.
// Injected read errors surface from ReadAt; short reads deliver a
// prefix with a nil error (the io.ReaderAt contract callers must
// already loop over); latency spikes sleep on the injector clock.
func (in *Injector) WrapInput(f Input) Input {
	return &faultInput{inj: in, inner: f}
}

type faultInput struct {
	inj   *Injector
	inner Input
}

func (f *faultInput) Name() string { return f.inner.Name() }
func (f *faultInput) Size() int64  { return f.inner.Size() }

func (f *faultInput) ReadAt(p []byte, off int64) (int, error) {
	a := f.inj.decide(f.inner.Name(), opRead, true)
	f.inj.sleep(a.spike)
	if a.fault != nil {
		return 0, a.fault
	}
	if a.short && len(p) > 1 {
		p = p[:len(p)/2]
	}
	return f.inner.ReadAt(p, off)
}

// issueReader mirrors chunk.IssueReader structurally, the way Input
// mirrors chunk.Input: the two-phase read seam of the multi-lane
// ingest path.
type issueReader interface {
	IssueReadAt(p []byte, off int64) (func() (int, error), error)
}

// IssueReadAt draws the fault decision at issue time — on the calling
// (single ingest) goroutine, in call order — which is exactly what
// keeps the site's fault schedule deterministic when the returned
// waits execute concurrently across IO lanes. An injected error costs
// nothing on the underlying device, a short read issues a halved
// request, and a latency spike is slept here at issue, all mirroring
// ReadAt.
func (f *faultInput) IssueReadAt(p []byte, off int64) (func() (int, error), error) {
	a := f.inj.decide(f.inner.Name(), opRead, true)
	f.inj.sleep(a.spike)
	if a.fault != nil {
		return nil, a.fault
	}
	if a.short && len(p) > 1 {
		p = p[:len(p)/2]
	}
	if ir, ok := f.inner.(issueReader); ok {
		return ir.IssueReadAt(p, off)
	}
	// Inner without an issue/wait split: the decision above already
	// happened serially, so running the plain read in the wait is safe.
	q := p
	return func() (int, error) { return f.inner.ReadAt(q, off) }, nil
}

// WrapDevice wraps a storage device under the given site name. The
// wrapped device is a storage.FallibleDevice: reads routed through
// storage.TryReserve can fail with injected faults, while the plain
// (infallible) Reserve/ReserveWrite paths receive latency spikes only.
func (in *Injector) WrapDevice(siteName string, dev storage.Device) storage.Device {
	return &faultDevice{inj: in, site: siteName, inner: dev}
}

type faultDevice struct {
	inj   *Injector
	site  string
	inner storage.Device
}

func (d *faultDevice) Clock() storage.Clock       { return d.inner.Clock() }
func (d *faultDevice) Bandwidth() float64         { return d.inner.Bandwidth() }
func (d *faultDevice) Stats() storage.DeviceStats { return d.inner.Stats() }

func (d *faultDevice) Reserve(off, n int64) time.Duration {
	a := d.inj.decide(d.site, opRead, false)
	d.inj.sleep(a.spike)
	return d.inner.Reserve(off, n)
}

func (d *faultDevice) TryReserve(off, n int64) (time.Duration, error) {
	a := d.inj.decide(d.site, opRead, true)
	d.inj.sleep(a.spike)
	if a.fault != nil {
		return 0, a.fault
	}
	return storage.TryReserve(d.inner, off, n)
}

func (d *faultDevice) ReserveWrite(off, n int64) time.Duration {
	a := d.inj.decide(d.site, opWrite, false)
	d.inj.sleep(a.spike)
	return storage.ReserveWrite(d.inner, off, n)
}

// BlockFile mirrors spill.RunData structurally: the random-access
// payload of one spill run.
type BlockFile interface {
	WriteAt(p []byte, off int64) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Close() error
}

// WrapBlockFile wraps one spill run's backing. An injected write error
// is a torn write: a prefix of the payload lands before the failure,
// so a retrying caller must discard the whole attempt (the spill layer
// abandons the run and rewrites from scratch). Read errors exercise
// the merge phase's run read-back path.
func (in *Injector) WrapBlockFile(siteName string, f BlockFile) BlockFile {
	return &faultBlockFile{inj: in, site: siteName, inner: f}
}

type faultBlockFile struct {
	inj   *Injector
	site  string
	inner BlockFile
}

func (f *faultBlockFile) WriteAt(p []byte, off int64) (int, error) {
	a := f.inj.decide(f.site, opWrite, true)
	f.inj.sleep(a.spike)
	if a.fault != nil {
		n, _ := f.inner.WriteAt(p[:len(p)/2], off)
		return n, a.fault
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultBlockFile) ReadAt(p []byte, off int64) (int, error) {
	a := f.inj.decide(f.site, opRead, true)
	f.inj.sleep(a.spike)
	if a.fault != nil {
		return 0, a.fault
	}
	if a.short && len(p) > 1 {
		p = p[:len(p)/2]
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultBlockFile) Close() error { return f.inner.Close() }

// LinkDelayer injects latency spikes into a network link; it satisfies
// netsim's structural Delayer hook (TransferDelay) without this
// package importing netsim. Links have no error path — a degraded wire
// stalls, it does not fail — so only the plan's latency settings apply.
type LinkDelayer struct {
	inj  *Injector
	site string
}

// LinkDelayer returns the delay hook for one link site.
func (in *Injector) LinkDelayer(siteName string) *LinkDelayer {
	return &LinkDelayer{inj: in, site: siteName}
}

// TransferDelay returns the extra delay to charge one transfer.
func (d *LinkDelayer) TransferDelay(int64) time.Duration {
	a := d.inj.decide(d.site, opRead, false)
	return a.spike
}

// Wire is the fault seam for one directed shuffle link (one ordered
// node pair). Unlike LinkDelayer it has an error path: a shuffle send
// is a framed message, and the plan's write triggers model the message
// being torn mid-flight — a prefix of the frame reaches the receiver
// and the sender sees the fault, mirroring WrapBlockFile's torn-write
// semantics. Latency spikes stall the send before bytes move.
type Wire struct {
	inj  *Injector
	site string
}

// Wire returns the send seam for one directed link site.
func (in *Injector) Wire(siteName string) *Wire {
	return &Wire{inj: in, site: siteName}
}

// Send decides the fate of one n-byte framed send and charges any
// latency spike on the injector clock. It returns how many bytes
// actually leave the sender — n on success, a torn prefix on a fault —
// and the injected fault, if any. A nil Wire passes everything through
// untouched, so fault-free paths need no branching.
func (w *Wire) Send(n int) (int, error) {
	if w == nil {
		return n, nil
	}
	a := w.inj.decide(w.site, opWrite, true)
	w.inj.sleep(a.spike)
	if a.fault != nil {
		return n / 2, a.fault
	}
	return n, nil
}
