// Package hdfs simulates the distributed file system of the Fig. 7 case
// study: files are striped in fixed-size blocks across the datanodes of a
// 32-node scale-out cluster, and every byte a client ingests crosses the
// single shared 1 Gbit link the cluster sits behind. The client plays the
// role of libhdfs: it locates a file's blocks via the namenode metadata
// and reads them from the owning datanodes directly into memory.
//
// Datanode disks can serve blocks in parallel (that is the point of
// scale-out storage), but the shared link caps aggregate ingest at
// ~125 MB/s — which is why the case study sees high utilization during
// ingest yet only a 7-second total speedup: the map phase is a small
// fraction of a long, link-bound ingest.
package hdfs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"supmr/internal/netsim"
	"supmr/internal/storage"
)

// Config describes a simulated HDFS cluster.
type Config struct {
	Nodes     int     // number of datanodes (case study: 32)
	BlockSize int64   // HDFS block size in bytes (classic: 64 MB)
	DiskBW    float64 // per-datanode disk bandwidth, bytes/sec
	Link      *netsim.Link
	Clock     storage.Clock
	// Topology, when set, replaces the flat shared Link with a star
	// topology (per-datanode access ports behind one uplink). Link is
	// ignored when Topology is non-nil.
	Topology *netsim.StarTopology
	// WrapDevice, when set, wraps each datanode's disk before use — the
	// fault-injection / instrumentation seam. site is the datanode name
	// ("dn0", "dn1", ...).
	WrapDevice func(site string, dev storage.Device) storage.Device
}

// Cluster is the simulated HDFS: namenode metadata plus datanodes.
type Cluster struct {
	cfg   Config
	nodes []*DataNode

	mu    sync.Mutex
	files map[string]*File
}

// DataNode owns a local disk serving block reads.
type DataNode struct {
	id   int
	disk storage.Device
}

// NewCluster builds the cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("hdfs: cluster needs at least one datanode, got %d", cfg.Nodes)
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("hdfs: block size must be positive, got %d", cfg.BlockSize)
	}
	if cfg.Link == nil && cfg.Topology == nil {
		return nil, fmt.Errorf("hdfs: cluster requires a link or a topology")
	}
	if cfg.Topology != nil && cfg.Topology.Nodes() < cfg.Nodes {
		return nil, fmt.Errorf("hdfs: topology has %d access ports for %d datanodes",
			cfg.Topology.Nodes(), cfg.Nodes)
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("hdfs: cluster requires a clock")
	}
	c := &Cluster{cfg: cfg, files: make(map[string]*File)}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("dn%d", i)
		disk, err := storage.NewDisk(storage.DiskConfig{
			Name:      name,
			Bandwidth: cfg.DiskBW,
		}, cfg.Clock)
		if err != nil {
			return nil, err
		}
		var dev storage.Device = disk
		if cfg.WrapDevice != nil {
			dev = cfg.WrapDevice(name, dev)
		}
		c.nodes = append(c.nodes, &DataNode{id: i, disk: dev})
	}
	return c, nil
}

// Nodes returns the datanode count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// BlockSize returns the configured block size.
func (c *Cluster) BlockSize() int64 { return c.cfg.BlockSize }

// Link returns the shared ingest link (the uplink when a topology is
// configured).
func (c *Cluster) Link() *netsim.Link {
	if c.cfg.Topology != nil {
		return c.cfg.Topology.Uplink()
	}
	return c.cfg.Link
}

// transfer moves n bytes sourced from datanode `node` across the
// network: the star topology when configured, else the flat link.
func (c *Cluster) transfer(node int, n int64) {
	if c.cfg.Topology != nil {
		// Errors are impossible here: node is validated at placement.
		_ = c.cfg.Topology.TransferFrom(node, n)
		return
	}
	c.cfg.Link.Transfer(n)
}

// Create registers a file of the given size whose contents come from
// fill. Blocks are assigned to datanodes round-robin (the namenode's
// placement).
func (c *Cluster) Create(name string, size int64, fill storage.Fill) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("hdfs: file %q size must be non-negative, got %d", name, size)
	}
	if fill == nil {
		return nil, fmt.Errorf("hdfs: file %q requires a fill function", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.files[name]; exists {
		return nil, fmt.Errorf("hdfs: file %q already exists", name)
	}
	f := &File{cluster: c, name: name, size: size, fill: fill}
	c.files[name] = f
	return f, nil
}

// Open looks up a file by name.
func (c *Cluster) Open(name string) (*File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: file %q does not exist", name)
	}
	return f, nil
}

// List returns the names of all files, sorted.
func (c *Cluster) List() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.files))
	for n := range c.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// File is an HDFS file. It satisfies chunk.Input, so both runtimes can
// ingest straight from the distributed file system the way the SupMR
// case study does with libhdfs.
type File struct {
	cluster *Cluster
	name    string
	size    int64
	fill    storage.Fill
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// BlockCount returns the number of blocks the file occupies.
func (f *File) BlockCount() int64 {
	bs := f.cluster.cfg.BlockSize
	return (f.size + bs - 1) / bs
}

// NodeFor returns the datanode index owning block b (round-robin
// placement).
func (f *File) NodeFor(b int64) int { return int(b % int64(len(f.cluster.nodes))) }

// ReadAt reads file bytes at off into p. Each covered block is served by
// its owning datanode's disk (disks proceed in parallel: reservations on
// distinct nodes overlap) and then crosses the shared link, which is
// where the aggregate bandwidth cap comes from.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	wait, err := f.IssueReadAt(p, off)
	if err != nil {
		return 0, err
	}
	return wait()
}

// IssueReadAt is the two-phase read the multi-lane ingest path uses: the
// issue step locates and reserves every covered block on its datanode's
// disk — in block order, on the caller's goroutine, so the per-datanode
// request sequence (and any fault schedule on those disks) stays
// deterministic however many lanes run the waits. The returned wait
// moves the bytes across the network, sleeps until the slowest disk is
// done, and fills p. A non-nil error means a block reservation failed
// and no bytes will be delivered.
func (f *File) IssueReadAt(p []byte, off int64) (func() (int, error), error) {
	if off < 0 {
		return nil, fmt.Errorf("hdfs: negative offset %d reading %q", off, f.name)
	}
	if off >= f.size {
		return nil, io.EOF
	}
	n := int64(len(p))
	if off+n > f.size {
		n = f.size - off
	}

	bs := f.cluster.cfg.BlockSize
	clock := f.cluster.cfg.Clock
	// Reserve the block segments on their datanode disks. Distinct nodes
	// queue independently, so these overlap; the latest deadline is when
	// all block data is off the spindles.
	var diskDeadline = clock.Now()
	for cur := off; cur < off+n; {
		b := cur / bs
		inBlock := cur - b*bs
		take := bs - inBlock
		if rest := off + n - cur; take > rest {
			take = rest
		}
		node := f.cluster.nodes[f.NodeFor(b)]
		// The datanode reads from its local block file; model the block's
		// bytes as a contiguous extent on that node's disk. A failed
		// reservation (fault injection) fails the whole block fetch.
		d, err := storage.TryReserve(node.disk, b*bs+inBlock, take)
		if err != nil {
			return nil, fmt.Errorf("hdfs: fetch block %d of %q from dn%d: %w", b, f.name, node.id, err)
		}
		if d > diskDeadline {
			diskDeadline = d
		}
		cur += take
	}
	return func() (int, error) {
		// Datanodes stream blocks while bytes cross the shared link, so
		// the read completes when BOTH the slowest disk and the wire are
		// done — not their sum. Under a star topology each segment is
		// attributed to its source datanode's access port.
		f.transferSegments(off, n)
		clock.SleepUntil(diskDeadline)

		f.fill(off, p[:n])
		if n < int64(len(p)) {
			return int(n), io.EOF
		}
		return int(n), nil
	}, nil
}

// transferSegments moves the byte range across the network, charging
// each covered block's bytes to its source datanode.
func (f *File) transferSegments(off, n int64) {
	bs := f.cluster.cfg.BlockSize
	if f.cluster.cfg.Topology == nil {
		f.cluster.cfg.Link.Transfer(n)
		return
	}
	for cur := off; cur < off+n; {
		b := cur / bs
		take := bs - (cur - b*bs)
		if rest := off + n - cur; take > rest {
			take = rest
		}
		f.cluster.transfer(f.NodeFor(b), take)
		cur += take
	}
}

// CopyToLocal models the baseline of the case study: before computing,
// the original runtime copies the whole file from all the nodes onto the
// compute node's local storage. Bytes cross the shared link and are
// written to dst (a local device); the returned local file serves the
// subsequent computation. progress, if non-nil, is called after each
// copied extent with cumulative bytes.
func (f *File) CopyToLocal(dst storage.Device, progress func(done int64)) (*storage.File, error) {
	const extent = 8 << 20
	clock := f.cluster.cfg.Clock
	var done int64
	for off := int64(0); off < f.size; off += extent {
		n := int64(extent)
		if rest := f.size - off; n > rest {
			n = rest
		}
		// Read side: datanode disks + shared link.
		bs := f.cluster.cfg.BlockSize
		diskDeadline := clock.Now()
		for cur := off; cur < off+n; {
			b := cur / bs
			inBlock := cur - b*bs
			take := bs - inBlock
			if rest := off + n - cur; take > rest {
				take = rest
			}
			node := f.cluster.nodes[f.NodeFor(b)]
			d, err := storage.TryReserve(node.disk, b*bs+inBlock, take)
			if err != nil {
				return nil, fmt.Errorf("hdfs: copy block %d of %q from dn%d: %w", b, f.name, node.id, err)
			}
			if d > diskDeadline {
				diskDeadline = d
			}
			cur += take
		}
		// Disks stream while the wire moves bytes (see ReadAt).
		f.transferSegments(off, n)
		clock.SleepUntil(diskDeadline)
		// Write side: local device absorbs the extent.
		clock.SleepUntil(dst.Reserve(off, n))
		done += n
		if progress != nil {
			progress(done)
		}
	}
	return storage.NewFile(f.name+".local", f.size, 0, f.fill, dst)
}
