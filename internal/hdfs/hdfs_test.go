package hdfs

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"supmr/internal/netsim"
	"supmr/internal/storage"
)

func testCluster(t *testing.T, nodes int, linkBW float64) *Cluster {
	t.Helper()
	clock := storage.NewRealClock()
	link, err := netsim.NewLink(linkBW, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Nodes: nodes, BlockSize: 1024, DiskBW: 1 << 30, Link: link, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func seqFill(off int64, p []byte) {
	for i := range p {
		p[i] = byte((off + int64(i)) % 251)
	}
}

func TestClusterValidation(t *testing.T) {
	clock := storage.NewFakeClock()
	link, _ := netsim.NewLink(1e6, 0, clock)
	bad := []Config{
		{Nodes: 0, BlockSize: 1024, DiskBW: 1, Link: link, Clock: clock},
		{Nodes: 1, BlockSize: 0, DiskBW: 1, Link: link, Clock: clock},
		{Nodes: 1, BlockSize: 1024, DiskBW: 1, Link: nil, Clock: clock},
		{Nodes: 1, BlockSize: 1024, DiskBW: 1, Link: link, Clock: nil},
	}
	for i, cfg := range bad {
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCreateOpenList(t *testing.T) {
	c := testCluster(t, 4, 1<<30)
	if _, err := c.Create("a.txt", 5000, seqFill); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("a.txt", 10, seqFill); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := c.Create("bad", -1, seqFill); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := c.Create("bad2", 10, nil); err == nil {
		t.Error("nil fill accepted")
	}
	if _, err := c.Open("a.txt"); err != nil {
		t.Error("Open failed for existing file")
	}
	if _, err := c.Open("missing"); err == nil {
		t.Error("Open succeeded for missing file")
	}
	if got := c.List(); len(got) != 1 || got[0] != "a.txt" {
		t.Errorf("List = %v", got)
	}
}

func TestBlockPlacement(t *testing.T) {
	c := testCluster(t, 4, 1<<30)
	f, err := c.Create("f", 10*1024, seqFill)
	if err != nil {
		t.Fatal(err)
	}
	if f.BlockCount() != 10 {
		t.Errorf("BlockCount = %d, want 10", f.BlockCount())
	}
	// Round-robin placement across 4 nodes.
	for b := int64(0); b < 10; b++ {
		if got, want := f.NodeFor(b), int(b%4); got != want {
			t.Errorf("NodeFor(%d) = %d, want %d", b, got, want)
		}
	}
}

func TestReadAtContent(t *testing.T) {
	c := testCluster(t, 4, 1<<30)
	f, err := c.Create("f", 5000, seqFill)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-block read.
	got := make([]byte, 2500)
	n, err := f.ReadAt(got, 700)
	if err != nil || n != 2500 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	want := make([]byte, 2500)
	seqFill(700, want)
	if !bytes.Equal(got, want) {
		t.Error("cross-block read content mismatch")
	}
	// EOF semantics.
	n, err = f.ReadAt(make([]byte, 100), 4950)
	if n != 50 || err != io.EOF {
		t.Errorf("short read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 5000); err != io.EOF {
		t.Errorf("read at EOF = %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestLinkCapsIngest(t *testing.T) {
	// 32 fast datanodes behind a slow link: read time must be set by the
	// link, not the disks.
	clock := storage.NewRealClock()
	link, err := netsim.NewLink(10<<20, 0, clock) // 10 MB/s
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Nodes: 32, BlockSize: 64 << 10, DiskBW: 1 << 30, Link: link, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Create("big", 1<<20, seqFill)
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	buf := make([]byte, 1<<20)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	el := clock.Now() - start
	if el < 90*time.Millisecond || el > 250*time.Millisecond {
		t.Errorf("1MB over 10MB/s link took %v, want ~100ms", el)
	}
}

func TestCopyToLocal(t *testing.T) {
	c := testCluster(t, 8, 1<<30)
	f, err := c.Create("f", 20_000, seqFill)
	if err != nil {
		t.Fatal(err)
	}
	var progressCalls int
	var lastDone int64
	local, err := f.CopyToLocal(storage.NewNullDevice(storage.NewFakeClock()), func(done int64) {
		progressCalls++
		if done <= lastDone {
			t.Error("progress not monotone")
		}
		lastDone = done
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != 20_000 {
		t.Errorf("final progress = %d, want 20000", lastDone)
	}
	if progressCalls == 0 {
		t.Error("no progress callbacks")
	}
	if local.Size() != 20_000 {
		t.Errorf("local size = %d", local.Size())
	}
	// Local copy serves identical content.
	a := make([]byte, 1000)
	b := make([]byte, 1000)
	if _, err := f.ReadAt(a, 3000); err != nil {
		t.Fatal(err)
	}
	if _, err := local.ReadAt(b, 3000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("local copy content differs")
	}
}

func TestClusterAccessors(t *testing.T) {
	c := testCluster(t, 5, 1e6)
	if c.Nodes() != 5 || c.BlockSize() != 1024 || c.Link() == nil {
		t.Errorf("accessors wrong: nodes=%d bs=%d", c.Nodes(), c.BlockSize())
	}
}

func TestTopologyCluster(t *testing.T) {
	clock := storage.NewRealClock()
	top, err := netsim.NewStarTopology(4, 100<<20, 10<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Nodes: 4, BlockSize: 256 << 10, DiskBW: 1 << 30, Topology: top, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Create("f", 1<<20, seqFill)
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	buf := make([]byte, 1<<20)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	el := clock.Now() - start
	// 1 MB through the 10 MB/s uplink = ~100ms.
	if el < 90*time.Millisecond || el > 300*time.Millisecond {
		t.Errorf("topology read took %v, want ~100ms", el)
	}
	if c.Link() != top.Uplink() {
		t.Error("Link() should return the uplink under a topology")
	}
	// Content still correct.
	want := make([]byte, 1<<20)
	seqFill(0, want)
	if !bytes.Equal(buf, want) {
		t.Error("topology read content mismatch")
	}
}

func TestTopologyValidation(t *testing.T) {
	clock := storage.NewFakeClock()
	top, err := netsim.NewStarTopology(2, 1e6, 1e6, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	// More datanodes than access ports is rejected.
	if _, err := NewCluster(Config{
		Nodes: 4, BlockSize: 1024, DiskBW: 1, Topology: top, Clock: clock,
	}); err == nil {
		t.Error("undersized topology accepted")
	}
	// Neither link nor topology is rejected.
	if _, err := NewCluster(Config{
		Nodes: 2, BlockSize: 1024, DiskBW: 1, Clock: clock,
	}); err == nil {
		t.Error("cluster without network accepted")
	}
}

// flakyDN makes TryReserve fail at one datanode while plain Reserve
// stays infallible, mimicking the fault injector's wrapped device.
type flakyDN struct {
	storage.Device
	fail error
}

func (d *flakyDN) TryReserve(off, n int64) (time.Duration, error) {
	if d.fail != nil {
		return 0, d.fail
	}
	return d.Device.Reserve(off, n), nil
}

func TestWrapDeviceFaultFailsBlockFetch(t *testing.T) {
	clock := storage.NewRealClock()
	link, err := netsim.NewLink(1<<30, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	var sites []string
	c, err := NewCluster(Config{
		Nodes: 3, BlockSize: 1024, DiskBW: 1 << 30, Link: link, Clock: clock,
		WrapDevice: func(site string, dev storage.Device) storage.Device {
			sites = append(sites, site)
			if site == "dn1" {
				return &flakyDN{Device: dev, fail: wantErr}
			}
			return dev
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 3 || sites[0] != "dn0" || sites[2] != "dn2" {
		t.Fatalf("wrap hook saw sites %v", sites)
	}
	f, err := c.Create("f", 4096, func(off int64, p []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	// Block 0 lives on dn0: reads confined to it still succeed.
	buf := make([]byte, 512)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read on healthy node failed: %v", err)
	}
	// Block 1 lives on dn1: the fetch must fail with the wrapped cause
	// and name the block and node.
	_, err = f.ReadAt(buf, 1024)
	if !errors.Is(err, wantErr) {
		t.Fatalf("read over faulty node: err = %v, want wrapped %v", err, wantErr)
	}
	for _, frag := range []string{"hdfs:", "block 1", "dn1"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
	// CopyToLocal crosses every node and must fail the same way.
	dst := storage.NewNullDevice(clock)
	if _, err := f.CopyToLocal(dst, nil); !errors.Is(err, wantErr) {
		t.Fatalf("CopyToLocal: err = %v, want wrapped %v", err, wantErr)
	}
}
