package supmr

import (
	"fmt"

	"supmr/internal/chunk"
	"supmr/internal/faults"
	"supmr/internal/metrics"
	"supmr/internal/spill"
)

// This file exposes the deterministic fault-injection and retry layer
// (internal/faults) through the public API: a FaultPlan reproducible
// from a single seed, an injector shared across a job's substrates, and
// a RetryPolicy for the ingest and spill paths.

// FaultPlan describes one deterministic fault schedule: read/write
// errors, short reads, torn spill writes and latency spikes, each with
// every-Nth and probability triggers, all seeded from FaultPlan.Seed.
type FaultPlan = faults.Plan

// FaultInjector applies a FaultPlan to the job's substrates. Build one
// with NewFaultInjector and set it on Config.Faults (and, for HDFS
// inputs, HDFSConfig.Faults) so all sites share the plan's global
// fault cap and counters.
type FaultInjector = faults.Injector

// RetryPolicy retries transient injected faults with capped
// exponential backoff on the job clock. Set it on Config.Retry.
type RetryPolicy = faults.RetryPolicy

// FaultStats counts injected faults and retry outcomes; see
// Report.Stats.Faults.
type FaultStats = metrics.FaultStats

// ErrInjectedFault is the sentinel every injected fault wraps. A job
// that fails because of (possibly exhausted retries over) injected
// faults returns an error matching errors.Is(err, ErrInjectedFault).
var ErrInjectedFault = faults.ErrInjected

// NewFaultInjector builds the injector for plan. Pass the job clock
// (cfg.Clock) so latency spikes land on the same timeline as device
// waits; nil falls back to a private virtual clock.
func NewFaultInjector(plan FaultPlan, clock Clock) *FaultInjector {
	return faults.New(plan, clock)
}

// faultCounters returns the job's shared fault/retry counters: the
// injector's when fault injection is on, nil otherwise (retry code
// accepts a nil counter set and runs uncounted).
func (c Config) faultCounters() *faults.Counters {
	if c.Faults != nil {
		return c.Faults.Counters()
	}
	return nil
}

// wrapInput applies the config's fault injection and retry policy to
// one ingest source: faults inject innermost, retries wrap outermost
// so transient read errors are absorbed before the chunker sees them.
func (c Config) wrapInput(f chunk.Input) chunk.Input {
	if c.Faults != nil {
		f = c.Faults.WrapInput(f)
	}
	if c.Retry.Enabled() {
		f = faults.WithRetry(f, c.Retry, c.clock(), c.faultCounters())
	}
	return f
}

// wrapInputs applies wrapInput to a file set, leaving the caller's
// slice untouched. Nil entries pass through for the stream
// constructors to reject with their usual errors.
func (c Config) wrapInputs(files []Input) []Input {
	if c.Faults == nil && !c.Retry.Enabled() {
		return files
	}
	wrapped := make([]Input, len(files))
	for i, f := range files {
		if f == nil {
			continue
		}
		wrapped[i] = c.wrapInput(f)
	}
	return wrapped
}

// faultBacking wraps every spill run's payload with the injector so
// run writes can tear and run read-back can fail. prefix names the
// per-run fault sites ("" defaults to "run", the spill path; the memo
// store uses "memo" so its entries fault independently).
type faultBacking struct {
	inj    *faults.Injector
	inner  spill.Backing
	prefix string
}

func (b faultBacking) NewRun(id int) (spill.RunData, error) {
	data, err := b.inner.NewRun(id)
	if err != nil {
		return nil, err
	}
	p := b.prefix
	if p == "" {
		p = "run"
	}
	return b.inj.WrapBlockFile(fmt.Sprintf("%s%d", p, id), data), nil
}
