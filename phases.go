package supmr

import (
	"time"

	"supmr/internal/apps"
	"supmr/internal/metrics"
	"supmr/internal/storage"
	"supmr/internal/workload"
)

// Phase identifies one job phase in a Report's Times.
type Phase = metrics.Phase

// Job phases (the columns of the paper's Table II).
const (
	PhaseRead    = metrics.PhaseRead
	PhaseMap     = metrics.PhaseMap
	PhaseReadMap = metrics.PhaseReadMap // fused ingest/map of the SupMR pipeline
	PhaseReduce  = metrics.PhaseReduce
	PhaseMerge   = metrics.PhaseMerge
	PhaseEgress  = metrics.PhaseEgress // parallel output materialization (Config.EgressLanes)
)

// PhaseTimes holds per-phase wall-clock durations.
type PhaseTimes = metrics.PhaseTimes

// PhaseAllocs holds per-phase heap-allocation deltas (see Report.Allocs).
type PhaseAllocs = metrics.PhaseAllocs

// AllocStats is one phase's allocation delta: objects and bytes.
type AllocStats = metrics.AllocStats

// UtilTrace is a collectl-style utilization time series.
type UtilTrace = metrics.Trace

// TraceMarker annotates a phase boundary on a trace.
type TraceMarker = metrics.Marker

// PowerModel estimates energy from a utilization trace (§VI-C's
// energy-consumption discussion made quantitative).
type PowerModel = metrics.PowerModel

// EnergyReport is an integrated energy estimate.
type EnergyReport = metrics.EnergyReport

// DefaultPowerModel approximates the paper's dual-Xeon testbed.
func DefaultPowerModel() PowerModel { return metrics.DefaultPowerModel() }

// Energy integrates the default power model over a report's trace. The
// report must have been produced with TraceContexts set.
func Energy(trace *UtilTrace, contexts int) EnergyReport {
	return metrics.DefaultPowerModel().Energy(trace, contexts)
}

// OpenMPSortResult is the outcome of the thread-library sort baseline.
type OpenMPSortResult = apps.OpenMPSortResult

// OpenMPSortFile runs the Fig. 3 baseline — sequential ingest,
// single-threaded parse, parallel p-way sort — over file. It is NOT a
// MapReduce job; it exists to reproduce the comparison that motivates
// keeping the MapReduce model on scale-up (§II, Fig. 3).
func OpenMPSortFile(file Input, workers int, clock Clock) (*OpenMPSortResult, error) {
	if clock == nil {
		clock = storage.NewRealClock()
	}
	stream, err := StreamFile(file, Config{Boundary: CRLFRecords})
	if err != nil {
		return nil, err
	}
	timer := metrics.NewTimer(clock.Now)
	return apps.OpenMPSort(stream, workers, timer, nil)
}

// OpenMPSortFileTraced is OpenMPSortFile with utilization recording.
func OpenMPSortFileTraced(file Input, workers, contexts int, bucket time.Duration, clock Clock) (*OpenMPSortResult, *UtilTrace, error) {
	if clock == nil {
		clock = storage.NewRealClock()
	}
	stream, err := StreamFile(file, Config{Boundary: CRLFRecords})
	if err != nil {
		return nil, nil, err
	}
	timer := metrics.NewTimer(clock.Now)
	rec := metrics.NewUtilRecorder(contexts, clock.Now)
	res, err := apps.OpenMPSort(stream, workers, timer, rec)
	if err != nil {
		return nil, nil, err
	}
	if bucket <= 0 {
		bucket = 100 * time.Millisecond
	}
	return res, rec.Build(bucket, res.Times.Total), nil
}

// SortCheck is a valsort-style summary of a sorted output.
type SortCheck = workload.SortChecksum

// ValidateSortedPairs verifies a job's output ordering and computes an
// order-independent key checksum, so two runs (e.g. baseline vs SupMR)
// can be compared without holding both outputs.
func ValidateSortedPairs[V any](pairs []Pair[string, V]) SortCheck {
	i := 0
	return workload.ValidateSorted(func() (string, bool) {
		if i >= len(pairs) {
			return "", false
		}
		k := pairs[i].Key
		i++
		return k, true
	})
}
