package supmr

// Chaos harness for the multi-node shuffle: sweep seeds x fault plans x
// cluster shapes (node count, in-node combiner on/off) with the fault
// seams armed on the inter-node wires — latency spikes and torn frame
// transfers — and assert the safety invariant everywhere: a faulted run
// either produces output byte-identical to the fault-free SINGLE-node
// run (transient tears absorbed by whole-frame resends) or fails with
// an error wrapping ErrInjectedFault, with no goroutine leak either
// way. Every faulted configuration runs twice with fresh injectors to
// prove the schedule is deterministic.

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"supmr/internal/storage"
)

// shuffleChaosPlans builds the swept fault plans for one seed. The
// shuffle wires are write-op fault sites, so write faults land on frame
// transfers; latency lands on them as link delay spikes.
func shuffleChaosPlans(seed int64) map[string]FaultPlan {
	return map[string]FaultPlan{
		"torn-every": {Seed: seed, WriteErrEvery: 2},
		"mixed": {
			Seed:         seed,
			WriteErrProb: 0.3,
			Latency:      200 * time.Microsecond,
			LatencyProb:  0.2,
		},
		"torn-permanent": {Seed: seed, WriteErrEvery: 2, Permanent: true},
	}
}

// runChaosShuffle executes one multi-node word-count configuration on a
// fresh virtual clock, returning the rendered output ("" on failure),
// the injector's counter snapshot, and the error.
func runChaosShuffle(text []byte, nodes int, combinerOff bool, inj *FaultInjector, retry RetryPolicy, clk Clock) (string, FaultStats, error) {
	cfg := Config{
		Runtime:    RuntimeSupMR,
		Workers:    4,
		ChunkBytes: 16 << 10,
		Clock:      clk,
		Faults:     inj,
		Retry:      retry,
		Nodes:      nodes,
	}
	if combinerOff {
		off := false
		cfg.InNodeCombiner = &off
	}
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), applyIngestEnv(cfg))
	var stats FaultStats
	if inj != nil {
		stats = inj.Counters().Snapshot()
	}
	if err != nil {
		return "", stats, err
	}
	return renderWC(rep.Pairs), stats, nil
}

func TestChaosShuffle(t *testing.T) {
	text := genText(t, 128<<10, 13)
	baseGoroutines := runtime.NumGoroutine()
	retry := RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}

	// The reference output is the fault-free single-node pipeline: chaos
	// must not merely be self-consistent across the cluster, it must
	// reproduce the scale-up result bit for bit.
	baseCfg := applyIngestEnv(Config{Runtime: RuntimeSupMR, Workers: 4, ChunkBytes: 16 << 10})
	baseRep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), baseCfg)
	if err != nil {
		t.Fatalf("fault-free single-node run failed: %v", err)
	}
	baseline := renderWC(baseRep.Pairs)
	if baseline == "" {
		t.Fatal("fault-free run produced no output")
	}

	recovered, failed := 0, 0
	for _, seed := range []int64{1, 7, 42} {
		for planName, plan := range shuffleChaosPlans(seed) {
			for _, nodes := range []int{2, 4} {
				for _, combOff := range []bool{false, true} {
					name := fmt.Sprintf("seed%d/%s/nodes%d/combOff=%v", seed, planName, nodes, combOff)
					t.Run(name, func(t *testing.T) {
						run := func() (string, FaultStats, error) {
							// Fresh clock and injector per run: determinism must
							// come from the plan, not shared state.
							clk := storage.NewFakeClock()
							return runChaosShuffle(text, nodes, combOff, NewFaultInjector(plan, clk), retry, clk)
						}
						out1, stats1, err1 := run()
						out2, stats2, err2 := run()
						if o1, o2 := outcome(out1, err1), outcome(out2, err2); o1 != o2 {
							t.Fatalf("nondeterministic outcome:\n  first:  %.200s\n  second: %.200s", o1, o2)
						}
						if stats1 != stats2 {
							t.Fatalf("fault counters differ across identical runs:\n  first:  %s\n  second: %s",
								stats1.String(), stats2.String())
						}
						if err1 != nil {
							failed++
							if !errors.Is(err1, ErrInjectedFault) {
								t.Fatalf("faulted run failed with a non-injected error: %v", err1)
							}
							if !strings.Contains(err1.Error(), "shuffle:") {
								t.Fatalf("shuffle-chaos failure not attributed to the shuffle: %v", err1)
							}
							return
						}
						recovered++
						if stats1.Injected > 0 && stats1.Retried == 0 {
							t.Fatalf("run absorbed %d injected faults with no recorded retries: %s",
								stats1.Injected, stats1.String())
						}
						if out1 != baseline {
							t.Fatalf("faulted multi-node run succeeded with output differing from the fault-free single-node run (%d vs %d bytes)",
								len(out1), len(baseline))
						}
					})
				}
			}
		}
	}
	if recovered == 0 {
		t.Error("no faulted cluster recovered to baseline output; the sweep is not exercising the resend path")
	}
	if failed == 0 {
		t.Error("no faulted cluster failed; the sweep is not exercising the error path")
	}
	checkNoGoroutineLeak(t, baseGoroutines)
}

// TestChaosShuffleTornFramesResent pins the torn-transfer mechanics: a
// transient tear delivers a prefix of the frame, the receiver rejects
// it as truncated (never decodes it as data), and the retrier resends
// the whole frame — so the run recovers with injections actually on
// the books.
func TestChaosShuffleTornFramesResent(t *testing.T) {
	text := genText(t, 96<<10, 19)
	retry := RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Microsecond}
	plan := FaultPlan{Seed: 3, WriteErrEvery: 2}

	clk := storage.NewFakeClock()
	inj := NewFaultInjector(plan, clk)
	out, stats, err := runChaosShuffle(text, 4, true, inj, retry, clk)
	if err != nil {
		t.Fatalf("transient torn-frame plan with retries failed: %v", err)
	}
	if stats.Injected == 0 {
		t.Fatal("plan injected nothing into the wires; the resend check is vacuous")
	}
	if stats.Retried == 0 {
		t.Fatal("torn frames were never retried")
	}

	base, _, err := runChaosShuffle(text, 4, true, nil, RetryPolicy{}, storage.NewFakeClock())
	if err != nil {
		t.Fatal(err)
	}
	if out != base {
		t.Fatal("recovered output differs from the fault-free run")
	}
}

// TestChaosShuffleNoRetryFails: the same transient tears without a
// retry policy must surface as a typed failure, not silent corruption
// or a hang.
func TestChaosShuffleNoRetryFails(t *testing.T) {
	text := genText(t, 96<<10, 19)
	clk := storage.NewFakeClock()
	inj := NewFaultInjector(FaultPlan{Seed: 3, WriteErrEvery: 2}, clk)
	_, stats, err := runChaosShuffle(text, 4, true, inj, RetryPolicy{}, clk)
	if err == nil {
		t.Fatal("torn transfers without retries succeeded")
	}
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("error does not wrap ErrInjectedFault: %v", err)
	}
	if stats.Injected == 0 {
		t.Fatal("no faults on the books despite the failure")
	}
}
