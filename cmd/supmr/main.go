// Command supmr runs one of the benchmark applications under either
// runtime against a simulated storage substrate, printing a Table II
// style phase breakdown and, optionally, the collectl-style utilization
// trace.
//
// Examples:
//
//	supmr -app wordcount -runtime supmr -size 32m -chunk 2m -bw 8m -trace
//	supmr -app sort -runtime traditional -size 16m -bw 16m
//	supmr -app wordcount -files 30 -files-per-chunk 4 -filesize 1m
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"supmr"
	"supmr/internal/cliutil"
	"supmr/internal/jobspec"
)

func main() {
	// A known subcommand routes to the supmrd client (`supmr submit ...`)
	// or the local pipeline runner; everything else is the classic
	// single-run CLI.
	if len(os.Args) > 1 && clientCommands[os.Args[1]] {
		clientMain(os.Args[1], os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "pipeline" {
		pipelineMain(os.Args[2:])
		return
	}
	var (
		app       = flag.String("app", "wordcount", "application: wordcount | sort | histogram | invindex | grep | linreg | kmeans")
		rt        = flag.String("runtime", "supmr", "runtime: traditional | supmr")
		size      = flag.String("size", "32m", "input size in bytes (k/m/g suffixes)")
		chunkSz   = flag.String("chunk", "2m", "SupMR ingest chunk size (0 = whole input)")
		budget    = flag.String("budget", "0", "intermediate-container memory budget in bytes; over-budget state spills to the simulated device (0 = unbudgeted; supmr runtime only)")
		bw        = flag.String("bw", "8m", "simulated storage bandwidth, bytes/sec (0 = infinite)")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		merge     = flag.String("merge", "", "merge algorithm override: pairwise | pway")
		files     = flag.Int("files", 0, "use N small files with intra-file chunking instead of one big file")
		filesPer  = flag.Int("files-per-chunk", 4, "files per intra-file chunk")
		fileSize  = flag.String("filesize", "1m", "per-file size for -files")
		trace     = flag.Bool("trace", false, "print utilization trace")
		adaptive  = flag.Bool("adaptive", false, "enable the adaptive chunk-size feedback loop")
		hybrid    = flag.Bool("hybrid", false, "use hybrid inter/intra-file chunking for -files inputs")
		energy    = flag.Bool("energy", false, "estimate energy from the utilization trace (implies -trace)")
		pattern   = flag.String("pattern", "ERROR", "comma-separated patterns for -app grep")
		contexts  = flag.Int("contexts", 4, "hardware contexts to normalize the trace to")
		bucketStr = flag.String("bucket", "100ms", "trace bucket width")
		seed      = flag.Int64("seed", 1, "workload generation seed")
		faultsStr = flag.String("faults", "", "deterministic fault plan, e.g. seed=42,read-err-every=100,short-read=0.05,latency=2ms,latency-prob=0.1 (keys: seed, read-err[-every], write-err[-every], short-read[-every], latency[-prob|-every], permanent[-every], max)")
		retries   = flag.String("retries", "", "retry policy for transient faults: attempt count (\"4\") or attempts=N,base=DUR,max=DUR,budget=N")
		ioLanes   = flag.String("io-lanes", "1", "IO lanes for striped ingest: each chunk read splits into this many segments read in parallel (supmr runtime)")
		prefetch  = flag.String("prefetch-depth", "1", "prefetch ring depth: ingest chunks kept in flight ahead of the map wave (supmr runtime)")
		digest    = flag.Bool("digest", false, "print the output digest instead of the full report, for diffing against a server-mode run (wordcount/sort/histogram/grep)")
		memoBudg  = flag.String("memo-budget", "64m", "memo-store byte budget; least-recently-used entries evict beyond it")
		nodes     = flag.Int("nodes", 0, "run on a simulated cluster of N SupMR worker nodes exchanging hash-partitioned runs over simulated links (supmr runtime; 0 = single-node scale-up pipeline; output byte-identical)")
		egLanes   = flag.Int("egress-lanes", 0, "materialize the merged output across N concurrent extent writers after the merge (1 = serial-writer ablation, byte-identical output at any lane count; 0 = skip output materialization)")
		egExtent  = flag.String("egress-extent", "256k", "egress extent size for -egress-lanes")
	)
	flatComb := onOffFlag(true)
	flag.Var(&flatComb, "flatcombiner", "use the flat (arena-interned, open-addressing) combining container for wordcount/grep; off selects the map-backed combiner (ablation)")
	memo := onOffFlag(false)
	flag.Var(&memo, "memo", "content-addressed incremental recompute: content-defined chunking plus a per-chunk map/combine memo cache (supmr runtime, single-file inputs); off is the ablation spelling")
	radix := onOffFlag(true)
	flag.Var(&radix, "radixsort", "radix sort/columnar merge fast path for fixed-width-key apps (sort/histogram/linreg); off falls back to comparison sort everywhere (ablation, byte-identical output)")
	innodeComb := onOffFlag(true)
	flag.Var(&innodeComb, "innode-combiner", "pre-aggregate each node's map output before transmission in a -nodes run; off ships every per-chunk run as-is (ablation, byte-identical output, more wire bytes)")
	flag.Parse()

	if *energy {
		*trace = true
	}
	// Ctrl-C cancels the job context: the runtime aborts within the
	// current round and the process exits cleanly instead of dying
	// mid-phase.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *digest {
		// Digest mode runs through the same jobspec path the server uses,
		// so its output line diffs cleanly against `supmr submit -wait`.
		rtName := *rt
		if rtName == "supmr" {
			rtName = ""
		}
		res, err := jobspec.Run(ctx, jobspec.Spec{
			App: *app, Runtime: rtName, Size: parseSize(*size), Seed: *seed,
			ChunkBytes: parseSize(*chunkSz), Budget: parseSize(*budget), BW: parseSize(*bw),
			IOLanes: parseCount(*ioLanes), PrefetchDepth: parseCount(*prefetch),
			Pattern: *pattern, Faults: *faultsStr, Retries: *retries, Memo: bool(memo),
			RadixOff: !bool(radix),
			Nodes:    *nodes, InNodeCombinerOff: *nodes > 0 && !bool(innodeComb),
			EgressLanes: *egLanes,
		}, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "supmr:", err)
			os.Exit(1)
		}
		fmt.Printf("app=%s pairs=%d digest=%s", res.App, res.OutputPairs, res.Digest)
		if res.EgressBytes > 0 {
			// Byte-identical at any lane count, so this line diffs cleanly
			// across -egress-lanes settings.
			fmt.Printf(" egress=%dB/%d", res.EgressBytes, res.EgressExtents)
		}
		fmt.Println()
		return
	}
	if err := run(ctx, runOpts{
		app: *app, rt: *rt, size: parseSize(*size), chunkSz: parseSize(*chunkSz), budget: parseSize(*budget),
		bw: parseSize(*bw), workers: *workers, merge: *merge, files: *files,
		filesPer: *filesPer, fileSize: parseSize(*fileSize), trace: *trace,
		contexts: *contexts, bucket: parseDur(*bucketStr), seed: *seed,
		adaptive: *adaptive, hybrid: *hybrid, energy: *energy, pattern: *pattern,
		flatComb: bool(flatComb), faults: *faultsStr, retries: *retries,
		ioLanes: parseCount(*ioLanes), prefetch: parseCount(*prefetch),
		memo: bool(memo), memoBudget: parseSize(*memoBudg), radix: bool(radix),
		nodes: *nodes, innodeComb: bool(innodeComb),
		egressLanes: *egLanes, egressExtent: parseSize(*egExtent),
	}); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "supmr: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "supmr:", err)
		os.Exit(1)
	}
}

type runOpts struct {
	app, rt, merge, pattern  string
	size, chunkSz, bw        int64
	budget                   int64
	workers, files, filesPer int
	fileSize                 int64
	trace, adaptive, hybrid  bool
	energy                   bool
	flatComb                 bool
	contexts                 int
	bucket                   time.Duration
	seed                     int64
	faults, retries          string
	ioLanes, prefetch        int
	memo                     bool
	memoBudget               int64
	radix                    bool
	nodes                    int
	innodeComb               bool
	egressLanes              int
	egressExtent             int64
}

func run(ctx context.Context, o runOpts) error {
	app, rt := o.app, o.rt
	size, chunkSz, bw := o.size, o.chunkSz, o.bw
	workers, merge := o.workers, o.merge
	files, filesPer, fileSize := o.files, o.filesPer, o.fileSize
	trace, contexts, bucket, seed := o.trace, o.contexts, o.bucket, o.seed

	clock := supmr.NewClock()
	var dev supmr.Device
	if bw > 0 {
		d, err := supmr.NewDisk("sim", float64(bw), 0, clock)
		if err != nil {
			return err
		}
		dev = d
	} else {
		dev = supmr.NewFastDevice(clock)
	}

	cfg := supmr.Config{
		Context:        ctx,
		Workers:        workers,
		ChunkBytes:     chunkSz,
		FilesPerChunk:  filesPer,
		Clock:          clock,
		AdaptiveChunks: o.adaptive,
		HybridChunks:   o.hybrid,
		IOLanes:        o.ioLanes,
		PrefetchDepth:  o.prefetch,
	}
	if o.faults != "" {
		plan, err := cliutil.ParseFaultPlan(o.faults)
		if err != nil {
			return err
		}
		cfg.Faults = supmr.NewFaultInjector(plan, clock)
	}
	if o.retries != "" {
		policy, err := cliutil.ParseRetryPolicy(o.retries)
		if err != nil {
			return err
		}
		cfg.Retry = policy
	}
	if o.egressLanes != 0 {
		// Negative values flow through so the runtime rejects them with a
		// named error instead of silently skipping egress.
		cfg.EgressLanes = o.egressLanes
		cfg.EgressExtentBytes = o.egressExtent
		cfg.EgressDevice = dev // egress contends with ingest for the same bandwidth
	}
	switch rt {
	case "supmr":
		cfg.Runtime = supmr.RuntimeSupMR
	case "traditional":
		cfg.Runtime = supmr.RuntimeTraditional
	default:
		return fmt.Errorf("unknown runtime %q", rt)
	}
	switch merge {
	case "":
	case "pairwise":
		m := supmr.MergePairwise
		cfg.Merge = &m
	case "pway":
		m := supmr.MergePWay
		cfg.Merge = &m
	default:
		return fmt.Errorf("unknown merge algorithm %q", merge)
	}
	if trace {
		cfg.TraceContexts = contexts
		cfg.TraceBucket = bucket
	}
	if o.budget > 0 {
		if cfg.Runtime != supmr.RuntimeSupMR {
			return fmt.Errorf("-budget requires -runtime supmr: the traditional runtime ingests the whole input before mapping, so bounding the container would not bound the job")
		}
		switch app {
		case "histogram", "linreg":
			return fmt.Errorf("-budget is incompatible with -app %s: its array container has a fixed footprint and cannot spill", app)
		case "invindex":
			return fmt.Errorf("-budget is incompatible with -app invindex: []string values have no spill codec")
		case "kmeans":
			return fmt.Errorf("-budget is incompatible with -app kmeans: the iterative driver re-creates its container every iteration")
		}
		cfg.MemoryBudget = o.budget
		cfg.SpillDevice = dev // spill contends with ingest for the same bandwidth
	}
	if !o.radix {
		off := false
		cfg.RadixSort = &off
	}
	if o.memo {
		switch app {
		case "kmeans":
			return fmt.Errorf("-memo is incompatible with -app kmeans: map output depends on the evolving centroids, not just chunk content, so cached chunks would replay stale assignments")
		case "invindex":
			return fmt.Errorf("-memo is incompatible with -app invindex: []string values have no cache codec")
		}
		cfg.Memo = true
		cfg.MemoBudget = o.memoBudget
		// Key the cache by everything that shapes map output besides the
		// chunk content: the app and, for grep, its pattern list.
		cfg.MemoKeySpace = app
		if app == "grep" {
			cfg.MemoKeySpace = "grep:" + o.pattern
		}
	}
	if !o.innodeComb && o.nodes == 0 {
		return fmt.Errorf("-innode-combiner=off requires -nodes: the combiner tier only exists in multi-node runs")
	}
	if o.nodes > 0 {
		if cfg.Runtime != supmr.RuntimeSupMR {
			return fmt.Errorf("-nodes requires -runtime supmr: each node runs the scale-up pipeline over its local chunks")
		}
		switch app {
		case "invindex":
			return fmt.Errorf("-nodes is incompatible with -app invindex: []string values have no wire codec")
		case "kmeans":
			return fmt.Errorf("-nodes is incompatible with -app kmeans: the iterative driver re-creates its container every iteration")
		}
		cfg.Nodes = o.nodes
		if !o.innodeComb {
			off := false
			cfg.InNodeCombiner = &off
		}
	}

	var (
		times  fmt.Stringer
		stats  *supmr.Stats
		allocs fmt.Stringer
		notes  []string
		tr     interface{ ASCII(int) string }
		report func()
	)
	switch app {
	case "wordcount":
		rep, err := runWordCount(cfg, dev, size, files, fileSize, seed, o.flatComb)
		if err != nil {
			return err
		}
		times, stats, allocs, notes = &rep.Times, &rep.Stats, rep.Allocs, rep.Notes
		report = func() {
			fmt.Printf("distinct words: %d  occurrences kept: %d  map waves: %d\n",
				len(rep.Pairs), rep.Stats.IntermediateN, rep.Stats.MapWaves)
		}
		if rep.Trace != nil {
			tr = rep.Trace
		}
	case "sort":
		cfg.Boundary = supmr.CRLFRecords
		f, err := supmr.TeraFile("sortinput", size/100, uint64(seed), dev)
		if err != nil {
			return err
		}
		rep, err := supmr.RunFile[string, uint64](supmr.SortJob(), f, supmr.SortContainer(), cfg)
		if err != nil {
			return err
		}
		times, stats, notes = &rep.Times, &rep.Stats, rep.Notes
		report = func() {
			fmt.Printf("records sorted: %d  map waves: %d  merge rounds: %d\n",
				len(rep.Pairs), rep.Stats.MapWaves, rep.Stats.MergeRounds)
		}
		if rep.Trace != nil {
			tr = rep.Trace
		}
	case "histogram":
		f, err := supmr.TextFile("histinput", size, seed, dev)
		if err != nil {
			return err
		}
		job := supmr.HistogramJob()
		rep, err := supmr.RunFile[int, int64](job, f, job.NewContainer(8), cfg)
		if err != nil {
			return err
		}
		times, stats, notes = &rep.Times, &rep.Stats, rep.Notes
		report = func() {
			fmt.Printf("byte values seen: %d  map waves: %d\n", len(rep.Pairs), rep.Stats.MapWaves)
		}
		if rep.Trace != nil {
			tr = rep.Trace
		}
	case "invindex":
		if files <= 0 {
			files = 16
		}
		inputs, err := supmr.TextFiles("doc", files, fileSize, seed, dev)
		if err != nil {
			return err
		}
		cfg.FilesPerChunk = 1 // per-file attribution
		job := supmr.InvertedIndexJob()
		rep, err := supmr.RunFiles[string, []string](job, inputs, job.NewContainer(32), cfg)
		if err != nil {
			return err
		}
		times, stats = &rep.Times, &rep.Stats
		report = func() {
			fmt.Printf("indexed words: %d  files: %d\n", len(rep.Pairs), files)
		}
		if rep.Trace != nil {
			tr = rep.Trace
		}
	case "grep":
		pats := strings.Split(o.pattern, ",")
		job := supmr.GrepJob(pats...)
		f, err := supmr.TextFile("grepinput", size, seed, dev)
		if err != nil {
			return err
		}
		cont := job.NewContainer()
		if !o.flatComb {
			cont = job.NewMapContainer()
		}
		rep, err := supmr.RunFile[string, int64](job, f, cont, cfg)
		if err != nil {
			return err
		}
		times, stats, allocs, notes = &rep.Times, &rep.Stats, rep.Allocs, rep.Notes
		report = func() {
			for _, p := range rep.Pairs {
				fmt.Printf("  %-16s %d matching lines\n", p.Key, p.Val)
			}
		}
		if rep.Trace != nil {
			tr = rep.Trace
		}
	case "kmeans":
		km := supmr.KMeansJob(4, 2)
		km.Epsilon = 0.05
		f, err := supmr.TextFile("points", size, seed, dev) // bytes as 2-D points
		if err != nil {
			return err
		}
		res, err := supmr.RunKMeans(km, f, cfg, 25)
		if err != nil {
			return err
		}
		fmt.Printf("app=%s runtime=supmr size=%d chunk=%d bw=%d\n", app, size, chunkSz, bw)
		fmt.Printf("k-means: %d iterations, %d total map waves, final movement %.4f\n",
			res.Iterations, res.Waves, res.Moved)
		for i, n := range res.Sizes {
			fmt.Printf("  cluster %d: %d points, centroid (%.1f, %.1f)\n",
				i, n, km.Centroids[i][0], km.Centroids[i][1])
		}
		return nil
	case "linreg":
		job := supmr.LinearRegressionJob()
		f, err := supmr.TextFile("points", size, seed, dev) // any bytes are points
		if err != nil {
			return err
		}
		cfg.Boundary = supmr.FixedRecords(2)
		rep, err := supmr.RunFile[int, float64](job, f, job.NewContainer(), cfg)
		if err != nil {
			return err
		}
		times, stats = &rep.Times, &rep.Stats
		report = func() {
			if slope, intercept, ok := job.Fit(rep.Pairs); ok {
				fmt.Printf("fit: y = %.4f*x + %.2f over %d points\n", slope, intercept, int64(rep.Pairs[0].Val))
			}
		}
		if rep.Trace != nil {
			tr = rep.Trace
		}
	default:
		return fmt.Errorf("unknown app %q", app)
	}

	fmt.Printf("app=%s runtime=%s size=%d chunk=%d bw=%d\n", app, rt, size, chunkSz, bw)
	fmt.Println(times.String())
	if allocs != nil {
		if s := allocs.String(); s != "" {
			fmt.Println("allocs:", s)
		}
	}
	report()
	if stats != nil && stats.SpilledRuns > 0 {
		fmt.Printf("spill: %d runs, %d bytes written, merged in %d round(s) (budget %d)\n",
			stats.SpilledRuns, stats.SpilledBytes, stats.MergeRounds, o.budget)
	}
	if stats != nil && (stats.MemoHits > 0 || stats.MemoMisses > 0) {
		fmt.Printf("memo: %d hits, %d misses, %s saved (budget %s)\n",
			stats.MemoHits, stats.MemoMisses,
			cliutil.FormatBytes(stats.MemoBytesSaved), cliutil.FormatBytes(o.memoBudget))
	}
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if stats != nil && stats.Faults.Any() {
		fmt.Println("faults:", stats.Faults.String())
	}
	if stats != nil && stats.RadixRuns > 0 {
		fmt.Printf("sortpath: %d run(s) radix-sorted\n", stats.RadixRuns)
	}
	if stats != nil && o.nodes > 0 {
		fmt.Printf("shuffle: %d node(s), %s in %d frame(s) on the wire, %s saved by the in-node combiner\n",
			o.nodes, cliutil.FormatBytes(stats.ShuffleBytes), stats.ShuffleFrames,
			cliutil.FormatBytes(stats.ShuffleBytesSaved))
	}
	if stats != nil && (o.ioLanes > 1 || o.prefetch > 1) {
		fmt.Printf("ingest: %d prefetch hits, %s stalled", stats.PrefetchHits, stats.IngestStall.Round(time.Microsecond))
		if len(stats.IngestLaneBytes) > 0 {
			fmt.Printf(", lane bytes")
			for i, b := range stats.IngestLaneBytes {
				fmt.Printf(" %d:%s", i, cliutil.FormatBytes(b))
			}
		}
		fmt.Println()
	}
	if stats != nil && o.egressLanes > 0 {
		fmt.Printf("egress: %s in %d extent(s), %s stalled", cliutil.FormatBytes(stats.EgressBytes),
			stats.EgressExtents, stats.EgressStall.Round(time.Microsecond))
		if len(stats.EgressLaneBytes) > 0 {
			fmt.Printf(", lane bytes")
			for i, b := range stats.EgressLaneBytes {
				fmt.Printf(" %d:%s", i, cliutil.FormatBytes(b))
			}
		}
		fmt.Println()
	}
	if trace && tr != nil {
		fmt.Println()
		fmt.Print(tr.ASCII(16))
	}
	if o.energy {
		if ut, ok := tr.(*supmr.UtilTrace); ok && ut != nil {
			e := supmr.Energy(ut, contexts)
			fmt.Printf("energy: %.1f J over %v (avg %.1f W, peak %.1f W, E*D %.1f J*s)\n",
				e.Joules, e.Duration.Round(time.Millisecond), e.AvgWatts, e.PeakWatts, e.EnergyDelay())
		}
	}
	return nil
}

func runWordCount(cfg supmr.Config, dev supmr.Device, size int64, files int, fileSize int64, seed int64, flatComb bool) (*supmr.Report[string, int64], error) {
	job := supmr.WordCountJob()
	cont := supmr.WordCountContainer(64)
	if !flatComb {
		cont = supmr.WordCountMapContainer(64)
	}
	if files > 0 {
		inputs, err := supmr.TextFiles("wc", files, fileSize, seed, dev)
		if err != nil {
			return nil, err
		}
		return supmr.RunFiles[string, int64](job, inputs, cont, cfg)
	}
	f, err := supmr.TextFile("wcinput", size, seed, dev)
	if err != nil {
		return nil, err
	}
	return supmr.RunFile[string, int64](job, f, cont, cfg)
}

// onOffFlag is a boolean flag that also accepts on/off, so the ablation
// reads naturally as -flatcombiner=off.
type onOffFlag bool

func (f *onOffFlag) String() string {
	if bool(*f) {
		return "on"
	}
	return "off"
}

func (f *onOffFlag) Set(s string) error {
	switch strings.ToLower(s) {
	case "on", "true", "1", "yes":
		*f = true
	case "off", "false", "0", "no":
		*f = false
	default:
		return fmt.Errorf("invalid value %q (want on or off)", s)
	}
	return nil
}

func (f *onOffFlag) IsBoolFlag() bool { return true }

// parseSize parses "64", "64k", "4m", "2g" into bytes.
func parseSize(s string) int64 {
	v, err := cliutil.ParseSize(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supmr:", err)
		os.Exit(2)
	}
	return v
}

func parseCount(s string) int {
	v, err := cliutil.ParseCount(s, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supmr:", err)
		os.Exit(2)
	}
	return v
}

// parseCount0 is parseCount for knobs where 0 means "default/off"
// (egress lanes, psum block sizing).
func parseCount0(s string) int {
	v, err := cliutil.ParseCount(s, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supmr:", err)
		os.Exit(2)
	}
	return v
}

func parseDur(s string) time.Duration {
	d, err := cliutil.ParseDuration(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supmr:", err)
		os.Exit(2)
	}
	return d
}
