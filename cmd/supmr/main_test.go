package main

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestMain re-execs the test binary as the supmr command when asked:
// the error-path test below needs real exit codes and stderr, which
// calling run() in-process cannot observe.
func TestMain(m *testing.M) {
	if os.Getenv("SUPMR_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestPermanentFaultFailsCleanly pins the CLI's error path: a fault
// plan with a permanent ingest fault must make the command exit
// non-zero with a single wrapped error line on stderr — no panic, no
// hang, no partial-success exit 0.
func TestPermanentFaultFailsCleanly(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0],
		"-app", "wordcount", "-runtime", "supmr", "-size", "256k", "-chunk", "32k", "-bw", "0",
		"-faults", "seed=3,read-err-every=2,permanent")
	cmd.Env = append(os.Environ(), "SUPMR_RUN_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr

	err := cmd.Run()
	if ctx.Err() != nil {
		t.Fatalf("command hung past the watchdog; stderr so far:\n%s", stderr.String())
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want a non-zero exit, got err=%v, stderr:\n%s", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	out := stderr.String()
	if strings.Contains(out, "panic") || strings.Contains(stdout.String(), "panic") {
		t.Fatalf("command panicked:\n%s%s", stdout.String(), out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly one stderr line, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "supmr: ") {
		t.Fatalf("stderr line not prefixed with the command name: %q", lines[0])
	}
	if !strings.Contains(lines[0], "injected fault") {
		t.Fatalf("stderr does not surface the injected fault: %q", lines[0])
	}
}

// TestFaultedRunRecoversWithRetries is the success twin: the same
// command with a sparser transient plan and retries must exit zero and
// report the fault counters on stdout.
func TestFaultedRunRecoversWithRetries(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0],
		"-app", "wordcount", "-runtime", "supmr", "-size", "256k", "-chunk", "32k", "-bw", "0",
		"-faults", "seed=1,read-err-every=5", "-retries", "4")
	cmd.Env = append(os.Environ(), "SUPMR_RUN_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr

	if err := cmd.Run(); err != nil {
		t.Fatalf("recovering run failed: %v\nstderr:\n%s", err, stderr.String())
	}
	if ctx.Err() != nil {
		t.Fatal("command hung past the watchdog")
	}
	out := stdout.String()
	if !strings.Contains(out, "faults: injected=") {
		t.Fatalf("stdout does not report fault counters:\n%s", out)
	}
	if !strings.Contains(out, "recovered=") {
		t.Fatalf("fault counter line lacks recovery stats:\n%s", out)
	}
}

// TestBadFaultPlanRejected covers flag validation: a malformed plan
// must fail fast with a parse error, before any job runs.
func TestBadFaultPlanRejected(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0],
		"-app", "wordcount", "-size", "64k", "-bw", "0", "-faults", "read-err=1.5")
	cmd.Env = append(os.Environ(), "SUPMR_RUN_MAIN=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 for a bad plan, got %v; stderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "probability") {
		t.Fatalf("stderr does not explain the bad probability: %s", stderr.String())
	}
}

// TestBadKnobsExitUsage covers flag validation for the ingest and
// budget knobs: non-positive lane counts, prefetch depths and negative
// budgets are usage errors — exit 2 with a descriptive line — caught
// before any job runs.
func TestBadKnobsExitUsage(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"io-lanes-zero", []string{"-io-lanes", "0"}, "below minimum"},
		{"io-lanes-negative", []string{"-io-lanes", "-3"}, "below minimum"},
		{"prefetch-zero", []string{"-prefetch-depth", "0"}, "below minimum"},
		{"prefetch-garbage", []string{"-prefetch-depth", "lots"}, "bad count"},
		{"budget-negative", []string{"-budget", "-5m"}, "negative size"},
		{"size-garbage", []string{"-size", "12q"}, "bad size"},
		{"memo-budget-negative", []string{"-memo-budget", "-2m"}, "negative size"},
		{"memo-budget-garbage", []string{"-memo-budget", "lots"}, "bad size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			args := append([]string{"-app", "wordcount", "-size", "64k", "-bw", "0"}, tc.args...)
			cmd := exec.CommandContext(ctx, os.Args[0], args...)
			cmd.Env = append(os.Environ(), "SUPMR_RUN_MAIN=1")
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("want exit 2, got %v; stderr:\n%s", err, stderr.String())
			}
			out := stderr.String()
			if !strings.HasPrefix(out, "supmr: ") || !strings.Contains(out, tc.want) {
				t.Fatalf("stderr %q does not explain the usage error (want %q)", out, tc.want)
			}
		})
	}
}

// TestBadSubmitKnobsExitUsage covers the submission path: `supmr
// submit` validates its knobs — the fair-share weight included — and
// exits 2 with a descriptive error before dialing the server socket,
// so no supmrd is needed for these cases.
func TestBadSubmitKnobsExitUsage(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"weight-zero", []string{"-weight", "0"}, "below minimum"},
		{"weight-negative", []string{"-weight", "-3"}, "below minimum"},
		{"weight-garbage", []string{"-weight", "heavy"}, "bad count"},
		{"io-lanes-zero", []string{"-io-lanes", "0"}, "below minimum"},
		{"budget-negative", []string{"-budget", "-1m"}, "negative size"},
		{"memo-key-without-memo", []string{"-memo-key", "k"}, "memo"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			args := append([]string{"submit", "-socket", "/nonexistent/supmrd.sock", "-app", "wordcount"}, tc.args...)
			cmd := exec.CommandContext(ctx, os.Args[0], args...)
			cmd.Env = append(os.Environ(), "SUPMR_RUN_MAIN=1")
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("want exit 2, got %v; stderr:\n%s", err, stderr.String())
			}
			out := stderr.String()
			if !strings.HasPrefix(out, "supmr: ") || !strings.Contains(out, tc.want) {
				t.Fatalf("stderr %q does not explain the usage error (want %q)", out, tc.want)
			}
		})
	}
}
