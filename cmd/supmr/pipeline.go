// `supmr pipeline` runs a multi-round job chain locally: each round's
// merged output is egressed as checksummed extents and piped straight
// into the next round's ingest (internal/dag) — no intermediate file.
// -materialize is the ablation: stitch each upstream output into an
// in-memory file and re-ingest it; digests must match the piped mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"supmr/internal/cliutil"
	"supmr/internal/dag"
	"supmr/internal/jobspec"
)

func pipelineMain(args []string) {
	fs := flag.NewFlagSet("supmr pipeline", flag.ExitOnError)
	var (
		kind        = fs.String("kind", "prefixsum", "pipeline: prefixsum (psum1 → psum2 over piped block sums) | sortgrep (sort → grep over the piped sorted records)")
		size        = fs.String("size", "4m", "round-1 input size in bytes (k/m/g suffixes)")
		seed        = fs.Int64("seed", 1, "workload generation seed")
		chunkSz     = fs.String("chunk", "256k", "SupMR ingest chunk size")
		block       = fs.Int64("block", 256, "records per block for the prefixsum pipeline")
		pattern     = fs.String("pattern", "00", "comma-separated patterns for the sortgrep pipeline's grep round")
		egLanes     = fs.Int("egress-lanes", 2, "egress extent writers per piped round (1 = serial-writer ablation; output byte-identical at any lane count)")
		ioLanes     = fs.String("io-lanes", "1", "IO lanes for striped ingest")
		prefetch    = fs.String("prefetch-depth", "1", "prefetch ring depth")
		faultsStr   = fs.String("faults", "", "deterministic fault plan applied to every round (see supmr -faults)")
		retries     = fs.String("retries", "", "retry policy for transient faults (see supmr -retries)")
		materialize = fs.Bool("materialize", false, "ablation: write each upstream output to an in-memory file and re-ingest it instead of piping extents (digests must match the piped mode)")
	)
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := jobspec.Spec{
		Size:          parseSize(*size),
		Seed:          *seed,
		ChunkBytes:    parseSize(*chunkSz),
		IOLanes:       parseCount(*ioLanes),
		PrefetchDepth: parseCount(*prefetch),
		Faults:        *faultsStr,
		Retries:       *retries,
		EgressLanes:   *egLanes,
	}
	var g dag.Graph
	switch *kind {
	case "prefixsum":
		part, total := base, base
		part.App, part.Block = "psum1", *block
		total.App, total.EgressLanes = "psum2", 0 // sink round: pairs are the output
		g = dag.Graph{Nodes: []dag.Node{
			{ID: "part", Spec: part},
			{ID: "total", Spec: total, Input: "part"},
		}}
	case "sortgrep":
		sorted, hits := base, base
		sorted.App = "sort"
		hits.App, hits.Pattern, hits.EgressLanes = "grep", *pattern, 0
		g = dag.Graph{Nodes: []dag.Node{
			{ID: "sorted", Spec: sorted},
			{ID: "hits", Spec: hits, Input: "sorted"},
		}}
	default:
		fmt.Fprintf(os.Stderr, "supmr: unknown pipeline %q (want prefixsum or sortgrep)\n", *kind)
		os.Exit(2)
	}

	mode := "piped"
	if *materialize {
		mode = "materialized"
	}
	res, err := dag.Run(ctx, g, dag.Options{Materialize: *materialize})
	if err != nil {
		fmt.Fprintln(os.Stderr, "supmr:", err)
		os.Exit(cliutil.ExitCode(err))
	}
	fmt.Printf("pipeline=%s mode=%s rounds=%d\n", *kind, mode, len(res.Rounds))
	for _, r := range res.Rounds {
		fmt.Printf("round %-8s app=%-6s pairs=%d digest=%s\n", r.ID, r.Res.App, r.Res.OutputPairs, r.Res.Digest)
		if r.Res.EgressBytes > 0 {
			fmt.Printf("  egress: %s in %d extent(s)\n", cliutil.FormatBytes(r.Res.EgressBytes), r.Res.EgressExtents)
		}
		if r.Res.Faults != "" {
			fmt.Printf("  faults: %s\n", r.Res.Faults)
		}
	}
}
