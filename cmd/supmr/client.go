// supmrd client subcommands: `supmr submit|status|wait|cancel|list|stats`
// talk to a running supmrd over its unix socket, so one shared engine
// serves many short-lived CLI invocations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"supmr/internal/cliutil"
	"supmr/internal/jobspec"
	"supmr/internal/server"
)

// clientCommands names the subcommands dispatched to a supmrd server.
var clientCommands = map[string]bool{
	"submit": true, "status": true, "wait": true,
	"cancel": true, "list": true, "stats": true,
}

// clientMain runs one client subcommand against supmrd and exits the
// process with its status.
func clientMain(cmd string, args []string) {
	switch cmd {
	case "submit":
		submitMain(args)
	case "status", "wait", "cancel":
		jobMain(cmd, args)
	case "list":
		listMain(args)
	case "stats":
		statsMain(args)
	}
	os.Exit(0)
}

func dial(socket string) *server.Client {
	c, err := server.Dial(socket)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supmr:", err)
		os.Exit(1)
	}
	return c
}

// fatal prints the error and exits with its typed status: protocol
// rejections carry distinct codes (3 = multi-node unsupported, 4 = DAG
// unsupported) so scripts can tell "run it locally instead" apart from
// a plain failure.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "supmr:", err)
	os.Exit(cliutil.ExitCode(err))
}

// submitMain submits one job, optionally waiting for its result.
func submitMain(args []string) {
	fs := flag.NewFlagSet("supmr submit", flag.ExitOnError)
	var (
		socket   = fs.String("socket", "/tmp/supmrd.sock", "supmrd unix socket")
		app      = fs.String("app", "wordcount", "application: wordcount | sort | histogram | grep | psum1 | psum2")
		rt       = fs.String("runtime", "supmr", "runtime: traditional | supmr")
		size     = fs.String("size", "4m", "input size in bytes (k/m/g suffixes)")
		seed     = fs.Int64("seed", 1, "workload generation seed")
		chunkSz  = fs.String("chunk", "256k", "SupMR ingest chunk size")
		budget   = fs.String("budget", "0", "requested memory budget; the engine may grant less (0 = unbudgeted)")
		bw       = fs.String("bw", "0", "simulated storage bandwidth, bytes/sec (0 = infinite)")
		ioLanes  = fs.String("io-lanes", "1", "IO lanes for striped ingest")
		prefetch = fs.String("prefetch-depth", "1", "prefetch ring depth")
		pattern  = fs.String("pattern", "", "comma-separated patterns for -app grep")
		tenant   = fs.String("tenant", "", "tenant name for the engine's per-tenant rollup")
		weight   = fs.String("weight", "1", "fair-share weight on the engine scheduler")
		faults   = fs.String("faults", "", "deterministic fault plan (see supmr -faults)")
		retries  = fs.String("retries", "", "retry policy for transient faults (see supmr -retries)")
		memoKey  = fs.String("memo-key", "", "memo cache key space (default: derived from the app and its parameters)")
		egLanes  = fs.String("egress-lanes", "0", "IO lanes for parallel output egress (0 = keep pairs in memory only)")
		block    = fs.String("block", "0", "records per block for -app psum1/psum2 (0 = default)")
		blocks   = fs.String("blocks", "0", "block count for -app psum2 (0 = derived from the input)")
		wait     = fs.Bool("wait", false, "block until the job finishes and print its result")
	)
	memo := onOffFlag(false)
	fs.Var(&memo, "memo", "content-addressed incremental recompute against the server's shared memo store; a re-submission over mostly unchanged content replays cached map output")
	radix := onOffFlag(true)
	fs.Var(&radix, "radixsort", "radix sort/columnar merge fast path for fixed-width-key apps; off is the comparison-sort ablation")
	fs.Parse(args)
	spec := jobspec.Spec{
		App:           *app,
		Runtime:       *rt,
		Size:          parseSize(*size),
		Seed:          *seed,
		ChunkBytes:    parseSize(*chunkSz),
		Budget:        parseSize(*budget),
		BW:            parseSize(*bw),
		IOLanes:       parseCount(*ioLanes),
		PrefetchDepth: parseCount(*prefetch),
		Pattern:       *pattern,
		Tenant:        *tenant,
		Weight:        parseCount(*weight),
		Faults:        *faults,
		Retries:       *retries,
		Memo:          bool(memo),
		MemoKey:       *memoKey,
		RadixOff:      !bool(radix),
		EgressLanes:   parseCount0(*egLanes),
		Block:         int64(parseCount0(*block)),
		Blocks:        int64(parseCount0(*blocks)),
	}
	if spec.Runtime == "supmr" {
		spec.Runtime = "" // spec default
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "supmr:", err)
		os.Exit(2)
	}
	c := dial(*socket)
	defer c.Close()
	id, err := c.Submit(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("job %d submitted\n", id)
	if !*wait {
		return
	}
	v, err := c.Wait(id)
	if err != nil {
		fatal(err)
	}
	printJob(*v)
	if v.State != server.StateDone {
		os.Exit(1)
	}
}

// jobMain handles the id-addressed ops: status, wait, cancel.
func jobMain(op string, args []string) {
	fs := flag.NewFlagSet("supmr "+op, flag.ExitOnError)
	socket := fs.String("socket", "/tmp/supmrd.sock", "supmrd unix socket")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "supmr: usage: supmr %s [-socket PATH] JOB-ID\n", op)
		os.Exit(2)
	}
	id, err := strconv.ParseInt(fs.Arg(0), 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "supmr: bad job id %q\n", fs.Arg(0))
		os.Exit(2)
	}
	c := dial(*socket)
	defer c.Close()
	var v *server.JobView
	switch op {
	case "status":
		v, err = c.Status(id)
	case "wait":
		v, err = c.Wait(id)
	case "cancel":
		v, err = c.Cancel(id)
	}
	if err != nil {
		fatal(err)
	}
	printJob(*v)
}

func listMain(args []string) {
	fs := flag.NewFlagSet("supmr list", flag.ExitOnError)
	socket := fs.String("socket", "/tmp/supmrd.sock", "supmrd unix socket")
	fs.Parse(args)
	c := dial(*socket)
	defer c.Close()
	jobs, err := c.List()
	if err != nil {
		fatal(err)
	}
	for _, v := range jobs {
		printJob(v)
	}
}

func statsMain(args []string) {
	fs := flag.NewFlagSet("supmr stats", flag.ExitOnError)
	socket := fs.String("socket", "/tmp/supmrd.sock", "supmrd unix socket")
	fs.Parse(args)
	c := dial(*socket)
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("jobs: %d active, %d pending, %d submitted, %d completed, %d failed, %d rejected\n",
		st.ActiveJobs, st.PendingJobs, st.Submitted, st.Completed, st.Failed, st.Rejected)
	if st.BudgetTotal > 0 {
		fmt.Printf("budget: %s of %s free\n",
			cliutil.FormatBytes(st.BudgetRemaining), cliutil.FormatBytes(st.BudgetTotal))
	}
	fmt.Printf("chunks: %d gets, %d recycled\n", st.ChunkGets, st.ChunkReuses)
	if st.Memo != nil {
		m := st.Memo
		fmt.Printf("memo: %d hits, %d misses, %d entries (%s resident), %d stored, %d evicted, %d torn\n",
			m.Hits, m.Misses, m.Entries, cliutil.FormatBytes(m.Bytes), m.Stored, m.Evicted, m.Torn)
	}
	for name, t := range st.Tenants {
		fmt.Printf("tenant %-12s %d jobs (%d failed), %d pairs, %s ingested, %s spilled, %v busy\n",
			name, t.Jobs, t.Failed, t.OutputPairs,
			cliutil.FormatBytes(t.BytesIngested), cliutil.FormatBytes(t.SpilledBytes), t.Busy)
	}
}

// printJob renders one job line; finished jobs carry their digest so
// server-mode output can be diffed against a direct `supmr -digest` run.
func printJob(v server.JobView) {
	fmt.Printf("job %d  app=%s", v.ID, v.App)
	if v.Tenant != "" {
		fmt.Printf(" tenant=%s", v.Tenant)
	}
	fmt.Printf("  state=%s", v.State)
	if v.Error != "" {
		fmt.Printf("  error=%q", v.Error)
	}
	if v.Result != nil {
		fmt.Printf("\n  pairs=%d digest=%s\n  %s", v.Result.OutputPairs, v.Result.Digest, v.Result.Times)
		if v.Result.SpilledRuns > 0 {
			fmt.Printf("\n  spill: %d runs, %d bytes", v.Result.SpilledRuns, v.Result.SpilledBytes)
		}
		if v.Result.MemoHits > 0 || v.Result.MemoMisses > 0 {
			fmt.Printf("\n  memo: %d hits, %d misses, %s saved",
				v.Result.MemoHits, v.Result.MemoMisses, cliutil.FormatBytes(v.Result.MemoBytesSaved))
		}
		if v.Result.RadixRuns > 0 {
			fmt.Printf("\n  sortpath: %d run(s) radix-sorted", v.Result.RadixRuns)
		}
		if v.Result.EgressBytes > 0 {
			fmt.Printf("\n  egress: %s in %d extent(s)",
				cliutil.FormatBytes(v.Result.EgressBytes), v.Result.EgressExtents)
		}
		if v.Result.Faults != "" {
			fmt.Printf("\n  faults: %s", v.Result.Faults)
		}
		for _, n := range v.Result.Notes {
			fmt.Printf("\n  note: %s", n)
		}
	}
	fmt.Println()
}
