// Command benchtable regenerates the paper's Table II twice:
//
//  1. At paper scale through the calibrated performance model
//     (internal/perfmodel): 155 GB word count and 60 GB sort on the
//     32-context, 384 MB/s testbed.
//  2. As real executions of this runtime on scaled-down inputs over the
//     simulated storage. The tool first measures this machine's actual
//     map throughput per application, then sets the simulated disk
//     bandwidth so the paper's read:map time ratio is reproduced
//     exactly — the quantity that determines every speedup shape.
//
// The shapes to check (§VI): SupMR beats the traditional runtime on
// both apps; small chunks beat large for word count; the sort gain comes
// from the merge column; read+map of SupMR word count ≈ the baseline's
// raw read time (map fully hidden).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"supmr"
	"supmr/internal/jobspec"
	"supmr/internal/metrics"
	"supmr/internal/perfmodel"
	"supmr/internal/storage"
	"supmr/internal/workload"
)

func main() {
	var (
		app        = flag.String("app", "all", "wordcount | sort | all")
		wcSize     = flag.Int64("wc-size", 24<<20, "scaled word count input bytes")
		sortSize   = flag.Int64("sort-size", 32<<20, "scaled sort input bytes")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		model      = flag.Bool("model", true, "print the paper-scale model table")
		real       = flag.Bool("real", true, "run the scaled real executions")
		ingestJSON = flag.String("ingest-json", "", "write the multi-lane ingest sweep to this file and exit")
		memoJSON   = flag.String("memo-json", "", "write the incremental-recompute (memo) benchmark to this file and exit")
		sortJSON   = flag.String("sort-json", "", "write the sort-path (radix/columnar) benchmark to this file and exit")
		shufJSON   = flag.String("shuffle-json", "", "write the multi-node shuffle / in-node combiner benchmark to this file and exit")
		egJSON     = flag.String("egress-json", "", "write the parallel-egress lane sweep to this file and exit")
	)
	flag.Parse()

	if *egJSON != "" {
		if err := egressSweep(*egJSON); err != nil {
			fmt.Fprintln(os.Stderr, "benchtable:", err)
			os.Exit(1)
		}
		return
	}

	if *shufJSON != "" {
		if err := shuffleSweep(*shufJSON); err != nil {
			fmt.Fprintln(os.Stderr, "benchtable:", err)
			os.Exit(1)
		}
		return
	}

	if *sortJSON != "" {
		if err := sortSweep(*sortJSON); err != nil {
			fmt.Fprintln(os.Stderr, "benchtable:", err)
			os.Exit(1)
		}
		return
	}

	if *ingestJSON != "" {
		if err := ingestSweep(*ingestJSON); err != nil {
			fmt.Fprintln(os.Stderr, "benchtable:", err)
			os.Exit(1)
		}
		return
	}
	if *memoJSON != "" {
		if err := memoSweep(*memoJSON); err != nil {
			fmt.Fprintln(os.Stderr, "benchtable:", err)
			os.Exit(1)
		}
		return
	}
	if *model {
		fmt.Println("=== Table II at paper scale (calibrated performance model) ===")
		fmt.Print(perfmodel.FormatComparison(perfmodel.ModelTable2()))
		fmt.Println()
	}
	if !*real {
		return
	}
	if *app == "wordcount" || *app == "all" {
		if err := wordCountTable(*wcSize, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "benchtable:", err)
			os.Exit(1)
		}
	}
	if *app == "sort" || *app == "all" {
		if err := sortTable(*sortSize, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "benchtable:", err)
			os.Exit(1)
		}
	}
}

// ingestRow is one lane configuration of the striped-ingest sweep.
type ingestRow struct {
	Lanes        int     `json:"lanes"`
	Depth        int     `json:"prefetch_depth"`
	IngestSec    float64 `json:"sim_ingest_s"`
	ThroughputMB float64 `json:"sim_throughput_mbps"`
	Speedup      float64 `json:"speedup_vs_serial"`
	PrefetchHits int     `json:"prefetch_hits"`
	StallSec     float64 `json:"ingest_stall_s"`
	LaneBytes    []int64 `json:"lane_bytes,omitempty"`
}

// ingestSweep reruns BenchmarkIngestLanes's configuration — word count
// over a 3-member RAID-0 whose members cap a single stream at a third
// of their bandwidth — on a virtual clock, and writes the lane sweep as
// JSON (the CI artifact BENCH_ingest.json). The virtual ReadMap seconds
// isolate device time, so the speedup column is the striping gain
// itself, not map overlap.
func ingestSweep(path string) error {
	const (
		size     = 4 << 20
		chunk    = 512 << 10
		memberBW = 128 << 20
	)
	var rows []ingestRow
	for _, cfg := range []struct{ lanes, depth int }{{1, 1}, {2, 3}, {4, 3}} {
		clk := storage.NewFakeClock()
		members := make([]*storage.Disk, 3)
		for j := range members {
			d, err := storage.NewDisk(storage.DiskConfig{
				Name:            fmt.Sprintf("m%d", j),
				Bandwidth:       memberBW,
				StreamBandwidth: memberBW / 3,
			}, clk)
			if err != nil {
				return err
			}
			members[j] = d
		}
		raid, err := storage.NewRAID0(members, 64<<10)
		if err != nil {
			return err
		}
		f, err := supmr.TextFile("in", size, 7, raid)
		if err != nil {
			return err
		}
		rep, err := supmr.RunFile[string, int64](supmr.WordCountJob(), f,
			supmr.WordCountContainer(64), supmr.Config{
				Runtime: supmr.RuntimeSupMR, ChunkBytes: chunk, Clock: clk,
				IOLanes: cfg.lanes, PrefetchDepth: cfg.depth,
			})
		if err != nil {
			return err
		}
		ingest := rep.Times.Get(metrics.PhaseReadMap).Seconds()
		rows = append(rows, ingestRow{
			Lanes:        cfg.lanes,
			Depth:        cfg.depth,
			IngestSec:    ingest,
			ThroughputMB: float64(size) / 1e6 / ingest,
			Speedup:      rows0Speedup(rows, ingest),
			PrefetchHits: rep.Stats.PrefetchHits,
			StallSec:     rep.Stats.IngestStall.Seconds(),
			LaneBytes:    rep.Stats.IngestLaneBytes,
		})
	}
	out := struct {
		Benchmark  string      `json:"benchmark"`
		InputBytes int64       `json:"input_bytes"`
		ChunkBytes int64       `json:"chunk_bytes"`
		Members    int         `json:"raid_members"`
		MemberBW   int64       `json:"member_bw_bytes_per_s"`
		StreamBW   int64       `json:"stream_bw_bytes_per_s"`
		Rows       []ingestRow `json:"rows"`
	}{"ingest-lanes", size, chunk, 3, memberBW, memberBW / 3, rows}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("lanes=%d depth=%d ingest=%.4fs throughput=%.1f MB/s speedup=%.2fx hits=%d stall=%.4fs\n",
			r.Lanes, r.Depth, r.IngestSec, r.ThroughputMB, r.Speedup, r.PrefetchHits, r.StallSec)
	}
	return nil
}

// egressRow is one lane configuration of the parallel-egress sweep.
type egressRow struct {
	InputBytes   int64   `json:"input_bytes"`
	Lanes        int     `json:"lanes"`
	EgressBytes  int64   `json:"egress_bytes"`
	Extents      int     `json:"extents"`
	EgressSec    float64 `json:"sim_egress_s"`
	ThroughputMB float64 `json:"sim_throughput_mbps"`
	Speedup      float64 `json:"speedup_vs_serial"`
	StallSec     float64 `json:"egress_stall_s"`
	LaneBytes    []int64 `json:"lane_bytes,omitempty"`
	Digest       string  `json:"digest"`
}

// egressSweep measures the parallel restore — fanning the merged output
// across IO lanes — and writes the CI artifact BENCH_egress.json. Sort
// is the egressed app because its output is as large as its input. The
// ingest device is infinitely fast and the output disk caps a single
// stream at a sixth of its aggregate bandwidth, so a lone extent writer
// drains at the stream rate while concurrent lanes pipeline toward the
// aggregate rate: the virtual PhaseEgress seconds isolate the fan-out
// gain itself (measured ~1.8-2x at 4 lanes, gated at 1.5x like the
// ingest sweep). Every configuration runs best-of-3 and must produce
// byte-identical output: each row's digest is the sha256 of the
// egressed bytes, which equals the job digest at every lane count.
func egressSweep(path string) error {
	const (
		aggBW    = 96 << 20
		streamBW = aggBW / 6
		extent   = 64 << 10
		reps     = 3
	)
	sizes := []int64{2 << 20, 6 << 20}
	lanes := []int{1, 2, 4}
	var rows []egressRow
	match := true
	for _, size := range sizes {
		records := size / workload.TeraRecordSize
		var serial float64
		var want string
		for _, ln := range lanes {
			var best egressRow
			for i := 0; i < reps; i++ {
				clk := storage.NewFakeClock()
				out, err := storage.NewDisk(storage.DiskConfig{
					Name:            "out",
					Bandwidth:       aggBW,
					StreamBandwidth: streamBW,
				}, clk)
				if err != nil {
					return err
				}
				f, err := supmr.TeraFile("sortin", records, 7, supmr.NewFastDevice(clk))
				if err != nil {
					return err
				}
				rep, err := supmr.RunFile[string, uint64](supmr.SortJob(), f,
					supmr.SortContainer(), supmr.Config{
						Runtime: supmr.RuntimeSupMR, ChunkBytes: size / 8, Clock: clk,
						Boundary:    supmr.CRLFRecords,
						EgressLanes: ln, EgressExtentBytes: extent, EgressDevice: out,
					})
				if err != nil {
					return err
				}
				eg := rep.Times.Get(metrics.PhaseEgress).Seconds()
				if i == 0 || eg < best.EgressSec {
					data, err := rep.Egress.Bytes()
					if err != nil {
						return err
					}
					best = egressRow{
						InputBytes:   size,
						Lanes:        ln,
						EgressBytes:  rep.Stats.EgressBytes,
						Extents:      rep.Stats.EgressExtents,
						EgressSec:    eg,
						ThroughputMB: float64(rep.Stats.EgressBytes) / 1e6 / eg,
						StallSec:     rep.Stats.EgressStall.Seconds(),
						LaneBytes:    rep.Stats.EgressLaneBytes,
						Digest:       jobspec.DigestBytes(data),
					}
					if best.Digest != jobspec.Digest(rep.Pairs) {
						match = false
					}
				}
				rep.Egress.Close()
			}
			if ln == 1 {
				serial, want = best.EgressSec, best.Digest
			}
			if best.Digest != want {
				match = false
			}
			if best.EgressSec > 0 {
				best.Speedup = serial / best.EgressSec
			}
			rows = append(rows, best)
		}
	}
	// The gated headline is the worst 4-lane fan-out gain across sizes.
	speedup := 0.0
	for _, r := range rows {
		if r.Lanes == 4 && (speedup == 0 || r.Speedup < speedup) {
			speedup = r.Speedup
		}
	}
	out := struct {
		Benchmark   string      `json:"benchmark"`
		AggBW       int64       `json:"agg_bw_bytes_per_s"`
		StreamBW    int64       `json:"stream_bw_bytes_per_s"`
		ExtentBytes int64       `json:"extent_bytes"`
		Reps        int         `json:"reps"`
		Rows        []egressRow `json:"rows"`
		Speedup     float64     `json:"speedup_4lanes_min"`
		DigestsOK   bool        `json:"digests_match"`
	}{"egress-lanes", aggBW, streamBW, extent, reps, rows, speedup, match}
	jdata, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(jdata, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("size=%-8d lanes=%d egress=%.4fs throughput=%6.1f MB/s speedup=%.2fx extents=%d stall=%.4fs\n",
			r.InputBytes, r.Lanes, r.EgressSec, r.ThroughputMB, r.Speedup, r.Extents, r.StallSec)
	}
	fmt.Printf("speedup=%.2fx digests_match=%v\n", speedup, match)
	return nil
}

// memoRow is one run of the incremental-recompute benchmark.
type memoRow struct {
	Run        string  `json:"run"`
	InputBytes int64   `json:"input_bytes"`
	WallMS     float64 `json:"wall_ms"`
	MemoHits   int     `json:"memo_hits"`
	MemoMisses int     `json:"memo_misses"`
	BytesSaved int64   `json:"memo_bytes_saved"`
	Digest     string  `json:"digest"`
}

// memoSweep measures content-addressed incremental recompute end to
// end and writes the CI artifact BENCH_memo.json: a cold grep run
// populates a shared memo store, then the same input with 1% appended
// re-runs against it (the incremental row), against a fresh store (the
// cold reference the speedup is measured from), and with the memo off
// (the ablation digest). The text generator is offset-deterministic,
// so the grown input is byte-for-byte the old input plus an appended
// tail — the shape the CDC chunker keeps cache-stable. Grep is the
// benchmarked app because its multi-pattern line scan is exactly the
// map cost a memo hit skips, while its output stays tiny; the run is
// wall-clock timed on an infinitely fast simulated device so the scan,
// not charged device time, is what the speedup measures.
// shuffleRow is one multi-node shuffle measurement.
type shuffleRow struct {
	Run           string  `json:"run"`
	Nodes         int     `json:"nodes"`
	Combiner      bool    `json:"combiner"`
	WallMS        float64 `json:"wall_ms"`
	ShuffleBytes  int64   `json:"shuffle_bytes"`
	BytesSaved    int64   `json:"shuffle_bytes_saved"`
	ShuffleFrames int     `json:"shuffle_frames"`
	Digest        string  `json:"digest"`
}

// shuffleSweep measures the in-node combiner's wire-byte reduction on a
// wordcount-class (combining string-keyed) workload: the same input
// runs single-node, on a 4-node cluster with the combiner, and on the
// same cluster with the combiner ablated. The claim under test is that
// pre-aggregating each node's map output before transmission cuts the
// framed bytes crossing the simulated links by at least 2x while every
// run's digest stays identical.
func shuffleSweep(path string) error {
	const (
		size  = 8 << 20
		chunk = 256 << 10
		nodes = 4
		seed  = 11
	)
	data := make([]byte, size)
	workload.TextGen{Seed: seed}.Fill()(0, data)

	run := func(label string, n int, combiner bool) (shuffleRow, error) {
		cfg := supmr.Config{Runtime: supmr.RuntimeSupMR, ChunkBytes: chunk, Nodes: n}
		if !combiner {
			off := false
			cfg.InNodeCombiner = &off
		}
		start := time.Now()
		rep, err := supmr.RunBytes[string, int64](supmr.WordCountJob(), data, supmr.WordCountContainer(64), cfg)
		if err != nil {
			return shuffleRow{}, err
		}
		wall := time.Since(start)
		return shuffleRow{
			Run:           label,
			Nodes:         n,
			Combiner:      combiner,
			WallMS:        float64(wall.Microseconds()) / 1000,
			ShuffleBytes:  rep.Stats.ShuffleBytes,
			BytesSaved:    rep.Stats.ShuffleBytesSaved,
			ShuffleFrames: rep.Stats.ShuffleFrames,
			Digest:        jobspec.Digest(rep.Pairs),
		}, nil
	}

	single, err := run("single-node", 0, true)
	if err != nil {
		return err
	}
	on, err := run("combiner-on", nodes, true)
	if err != nil {
		return err
	}
	off, err := run("combiner-off", nodes, false)
	if err != nil {
		return err
	}

	var reduction float64
	if on.ShuffleBytes > 0 {
		reduction = float64(off.ShuffleBytes) / float64(on.ShuffleBytes)
	}
	match := single.Digest == on.Digest && single.Digest == off.Digest
	out := struct {
		Benchmark  string       `json:"benchmark"`
		InputBytes int64        `json:"input_bytes"`
		ChunkBytes int64        `json:"chunk_bytes"`
		Rows       []shuffleRow `json:"rows"`
		Reduction  float64      `json:"wire_bytes_reduction_off_vs_on"`
		DigestsOK  bool         `json:"digests_match"`
	}{"shuffle-innode-combiner", size, chunk, []shuffleRow{single, on, off}, reduction, match}
	jdata, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(jdata, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("combiner on %d bytes vs off %d bytes on the wire\n", on.ShuffleBytes, off.ShuffleBytes)
	fmt.Printf("reduction=%.2fx digests_match=%v\n", reduction, match)
	return nil
}

func memoSweep(path string) error {
	const (
		baseSize = 24 << 20
		chunk    = 256 << 10
		seed     = 11
		patCount = 32
	)
	grownSize := int64(baseSize + baseSize/100)
	// The most frequent vocabulary words: every line matches some of
	// them, so the digest covers a real output, and each line pays a
	// scan per pattern.
	pats := make([]string, patCount)
	for r := range pats {
		pats[r] = workload.Word(r)
	}
	data := make([]byte, grownSize)
	workload.TextGen{Seed: seed}.Fill()(0, data)

	run := func(label string, input []byte, st *supmr.MemoStore, memoOn bool) (memoRow, error) {
		clk := supmr.NewClock()
		f := storage.BytesFile(label, input, supmr.NewFastDevice(clk))
		job := supmr.GrepJob(pats...)
		cfg := supmr.Config{Runtime: supmr.RuntimeSupMR, ChunkBytes: chunk, Clock: clk}
		if memoOn {
			cfg.Memo = true
			cfg.MemoStore = st
			cfg.MemoKeySpace = "bench:grep"
		}
		start := time.Now()
		rep, err := supmr.RunFile[string, int64](job, f, job.NewContainer(), cfg)
		if err != nil {
			return memoRow{}, err
		}
		wall := time.Since(start)
		return memoRow{
			Run:        label,
			InputBytes: int64(len(input)),
			WallMS:     float64(wall.Microseconds()) / 1000,
			MemoHits:   rep.Stats.MemoHits,
			MemoMisses: rep.Stats.MemoMisses,
			BytesSaved: rep.Stats.MemoBytesSaved,
			Digest:     jobspec.Digest(rep.Pairs),
		}, nil
	}

	shared, err := supmr.NewMemoStore(supmr.MemoConfig{Budget: 256 << 20})
	if err != nil {
		return err
	}
	defer shared.Close()
	cold, err := run("cold", data[:baseSize], shared, true)
	if err != nil {
		return err
	}
	incr, err := run("incremental", data, shared, true)
	if err != nil {
		return err
	}
	fresh, err := supmr.NewMemoStore(supmr.MemoConfig{Budget: 256 << 20})
	if err != nil {
		return err
	}
	coldref, err := run("coldref", data, fresh, true)
	fresh.Close()
	if err != nil {
		return err
	}
	off, err := run("memo-off", data, nil, false)
	if err != nil {
		return err
	}

	rows := []memoRow{cold, incr, coldref, off}
	speedup := coldref.WallMS / incr.WallMS
	match := incr.Digest == coldref.Digest && incr.Digest == off.Digest
	out := struct {
		Benchmark   string    `json:"benchmark"`
		BaseBytes   int64     `json:"base_bytes"`
		AppendBytes int64     `json:"append_bytes"`
		ChunkBytes  int64     `json:"chunk_bytes"`
		Patterns    int       `json:"patterns"`
		Rows        []memoRow `json:"rows"`
		Speedup     float64   `json:"speedup_incremental_vs_coldref"`
		DigestsOK   bool      `json:"digests_match"`
	}{"memo-incremental", baseSize, grownSize - baseSize, chunk, patCount, rows, speedup, match}
	jdata, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(jdata, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-12s %8d B  %8.2f ms  hits=%-4d misses=%-4d saved=%d B\n",
			r.Run, r.InputBytes, r.WallMS, r.MemoHits, r.MemoMisses, r.BytesSaved)
	}
	fmt.Printf("speedup=%.2fx digests_match=%v\n", speedup, match)
	return nil
}

// sortRow is one configuration of the sort-path benchmark.
type sortRow struct {
	Run        string  `json:"run"`
	Merge      string  `json:"merge"`
	Radix      bool    `json:"radix"`
	Spill      bool    `json:"spill"`
	RunSortMS  float64 `json:"runsort_ms"`
	MergeMS    float64 `json:"merge_ms"`
	SortPathMS float64 `json:"sortpath_ms"`
	RadixRuns  int     `json:"radix_runs"`
	Digest     string  `json:"digest"`
}

// sortSweep measures the vectorized sort/merge path end to end and
// writes the CI artifact BENCH_sort.json: terasort records (fixed
// 10-byte keys) run with the comparison path (-radixsort=off) and with
// the radix/columnar fast path, under both merge algorithms and under a
// memory budget that forces the spill/external-merge path. Each
// configuration runs several times and keeps its fastest sort path
// (run-sort + merge) to damp scheduler noise; the headline speedup
// compares the p-way comparison path against the p-way radix path,
// which is the pairing Table II's merge column uses. Devices are
// infinitely fast, so charged IO time is zero and the sort path is
// pure compute.
func sortSweep(path string) error {
	const (
		size = 48 << 20
		reps = 3
	)
	records := int64(size) / workload.TeraRecordSize

	run := func(label, merge string, radixOn, spill bool) (sortRow, error) {
		best := sortRow{Run: label, Merge: merge, Radix: radixOn, Spill: spill}
		for i := 0; i < reps; i++ {
			m := supmr.MergePairwise
			if merge == "pway" {
				m = supmr.MergePWay
			}
			cfg := supmr.Config{Splits: 64, Boundary: supmr.CRLFRecords, Merge: &m}
			if !radixOn {
				off := false
				cfg.RadixSort = &off
			}
			clk := supmr.NewClock()
			dev := supmr.NewFastDevice(clk)
			cfg.Clock = clk
			if spill {
				cfg.Runtime = supmr.RuntimeSupMR
				cfg.ChunkBytes = size / 8
				cfg.MemoryBudget = size / 4
				cfg.SpillDevice = dev
			}
			f, err := supmr.TeraFile("sort", records, 7, dev)
			if err != nil {
				return sortRow{}, err
			}
			rep, err := supmr.RunFile[string, uint64](supmr.SortJob(), f, supmr.SortContainer(), cfg)
			if err != nil {
				return sortRow{}, err
			}
			rs := rep.Times.Get(metrics.PhaseRunSort).Seconds() * 1000
			mg := rep.Times.Get(metrics.PhaseMerge).Seconds() * 1000
			if i == 0 || rs+mg < best.SortPathMS {
				best.RunSortMS = rs
				best.MergeMS = mg
				best.SortPathMS = rs + mg
				best.RadixRuns = rep.Stats.RadixRuns
			}
			if i == 0 {
				best.Digest = jobspec.Digest(rep.Pairs)
			}
		}
		return best, nil
	}

	configs := []struct {
		label, merge string
		radix, spill bool
	}{
		{"pairwise-cmp", "pairwise", false, false},
		{"pairwise-radix", "pairwise", true, false},
		{"pway-cmp", "pway", false, false},
		{"pway-radix", "pway", true, false},
		{"spill-cmp", "pway", false, true},
		{"spill-radix", "pway", true, true},
	}
	var rows []sortRow
	for _, c := range configs {
		r, err := run(c.label, c.merge, c.radix, c.spill)
		if err != nil {
			return err
		}
		rows = append(rows, r)
	}
	byRun := func(name string) sortRow {
		for _, r := range rows {
			if r.Run == name {
				return r
			}
		}
		return sortRow{}
	}
	speedup := byRun("pway-cmp").SortPathMS / byRun("pway-radix").SortPathMS
	// Spill runs budget the container, so partial reduce can differ from
	// the in-memory rounds — compare digests within each substrate.
	inMem, spilled := rows[0].Digest, byRun("spill-cmp").Digest
	match := true
	for _, r := range rows {
		want := inMem
		if r.Spill {
			want = spilled
		}
		if r.Digest != want {
			match = false
		}
	}
	out := struct {
		Benchmark  string    `json:"benchmark"`
		InputBytes int64     `json:"input_bytes"`
		Records    int64     `json:"records"`
		Reps       int       `json:"reps"`
		Rows       []sortRow `json:"rows"`
		Speedup    float64   `json:"speedup_radix_vs_comparison"`
		DigestsOK  bool      `json:"digests_match"`
	}{"sort-path", size, records, reps, rows, speedup, match}
	jdata, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(jdata, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-14s merge=%-8s radix=%-5v runsort=%8.2f ms  merge=%8.2f ms  sortpath=%8.2f ms  radixruns=%d\n",
			r.Run, r.Merge, r.Radix, r.RunSortMS, r.MergeMS, r.SortPathMS, r.RadixRuns)
	}
	fmt.Printf("speedup=%.2fx digests_match=%v\n", speedup, match)
	return nil
}

// rows0Speedup relates a row's ingest time to the serial first row.
func rows0Speedup(rows []ingestRow, ingest float64) float64 {
	if len(rows) == 0 || ingest <= 0 {
		return 1
	}
	return rows[0].IngestSec / ingest
}

// measureMapRate times the app's map phase on an in-memory sample to
// learn this machine's map throughput (bytes/sec).
func measureMapRate(run func(data []byte) error, gen func(size int64) []byte) (float64, error) {
	const sample = 2 << 20
	data := gen(sample)
	start := time.Now()
	if err := run(data); err != nil {
		return 0, err
	}
	el := time.Since(start)
	if el <= 0 {
		el = time.Millisecond
	}
	return float64(sample) / el.Seconds(), nil
}

func wordCountTable(size int64, workers int) error {
	gen := func(n int64) []byte {
		buf := make([]byte, n)
		workload.TextGen{Seed: 7}.Fill()(0, buf)
		return buf
	}
	mapRate, err := measureMapRate(func(data []byte) error {
		_, err := supmr.RunBytes[string, int64](supmr.WordCountJob(), data,
			supmr.WordCountContainer(64), supmr.Config{Workers: workers})
		return err
	}, gen)
	if err != nil {
		return err
	}
	// Paper: read 403.90 s vs map 67.41 s -> read is 5.99x slower.
	bw := mapRate * (67.41 / 403.90)
	fmt.Printf("=== Table II, word count (scaled): input=%d B, sim disk=%.1f MB/s (map rate %.1f MB/s) ===\n",
		size, bw/1e6, mapRate/1e6)

	// Chunk sizes at the paper's fractions of the input: 1/155 and 50/155.
	rows := []struct {
		label string
		chunk int64
		rt    supmr.Runtime
	}{
		{"none", 0, supmr.RuntimeTraditional},
		{"1/155", size / 155, supmr.RuntimeSupMR},
		{"50/155", size * 50 / 155, supmr.RuntimeSupMR},
	}
	var out []metrics.Table2Row
	for _, r := range rows {
		clock := supmr.NewClock()
		dev, err := supmr.NewDisk("sim", bw, 0, clock)
		if err != nil {
			return err
		}
		f, err := supmr.TextFile("wc", size, 7, dev)
		if err != nil {
			return err
		}
		rep, err := supmr.RunFile[string, int64](supmr.WordCountJob(), f,
			supmr.WordCountContainer(64), supmr.Config{
				Runtime: r.rt, Workers: workers, ChunkBytes: r.chunk, Clock: clock,
			})
		if err != nil {
			return err
		}
		out = append(out, metrics.Table2Row{Label: r.label, Times: rep.Times, Fused: r.rt == supmr.RuntimeSupMR})
	}
	fmt.Print(metrics.FormatTable2("word count: mitigate ingest bottleneck", out))
	fmt.Printf("speedup (total, none vs 1/155): %.2fx\n\n",
		metrics.Speedup(out[0].Times.Total, out[1].Times.Total))
	return nil
}

func sortTable(size int64, workers int) error {
	records := size / workload.TeraRecordSize
	size = records * workload.TeraRecordSize
	// Calibrate against the merge phase: for sort the paper's read and
	// merge phases are nearly equal (182.78 s vs 191.23 s), and the merge
	// is where SupMR's gain lives. Measure this machine's pairwise merge
	// time on the actual record count, then set the simulated disk so
	// read:merge matches the paper.
	data := make([]byte, size)
	workload.TeraGen{Seed: 7}.Fill()(0, data)
	m := supmr.MergePairwise
	cal, err := supmr.RunBytes[string, uint64](supmr.SortJob(), data,
		supmr.SortContainer(), supmr.Config{Workers: workers, Splits: 64,
			Boundary: supmr.CRLFRecords, Merge: &m})
	if err != nil {
		return err
	}
	mergeTime := cal.Times.Get(metrics.PhaseMerge)
	if mergeTime <= 0 {
		mergeTime = time.Millisecond
	}
	readTarget := time.Duration(float64(mergeTime) * (182.78 / 191.23))
	bw := float64(size) / readTarget.Seconds()
	fmt.Printf("=== Table II, sort (scaled): input=%d B (%d records), sim disk=%.1f MB/s (merge cal %.0f ms) ===\n",
		size, records, bw/1e6, mergeTime.Seconds()*1000)

	rows := []struct {
		label string
		chunk int64
		rt    supmr.Runtime
		merge supmr.MergeAlgo
	}{
		{"none", 0, supmr.RuntimeTraditional, supmr.MergePairwise},
		{"1/60", size / 60, supmr.RuntimeSupMR, supmr.MergePWay},
	}
	var out []metrics.Table2Row
	for _, r := range rows {
		clock := supmr.NewClock()
		dev, err := supmr.NewDisk("sim", bw, 0, clock)
		if err != nil {
			return err
		}
		f, err := supmr.TeraFile("sort", records, 7, dev)
		if err != nil {
			return err
		}
		m := r.merge
		rep, err := supmr.RunFile[string, uint64](supmr.SortJob(), f,
			supmr.SortContainer(), supmr.Config{
				Runtime: r.rt, Workers: workers, Splits: 64, ChunkBytes: r.chunk,
				Boundary: supmr.CRLFRecords, Merge: &m, Clock: clock,
			})
		if err != nil {
			return err
		}
		out = append(out, metrics.Table2Row{Label: r.label, Times: rep.Times, Fused: r.rt == supmr.RuntimeSupMR, Merged: m == supmr.MergePWay})
	}
	fmt.Print(metrics.FormatTable2("sort: mitigate merge bottleneck", out))
	fmt.Printf("speedup (total): %.2fx   speedup (merge): %.2fx\n\n",
		metrics.Speedup(out[0].Times.Total, out[1].Times.Total),
		metrics.Speedup(out[0].Times.Get(metrics.PhaseMerge), out[1].Times.Get(metrics.PhaseMerge)))
	return nil
}
