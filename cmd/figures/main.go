// Command figures regenerates the paper's utilization figures — Fig. 1
// (baseline sort: ingest plateau + merge "steps"), Fig. 3 (OpenMP sort:
// sequential ingest/parse then a short parallel burst), Fig. 5a/b/c
// (word count without chunks, 1 GB chunks, 50 GB chunks), Fig. 6 (SupMR
// sort with the single p-way merge round) and Fig. 7 (HDFS case study) —
// as ASCII charts and CSV series.
//
// By default figures come from the paper-scale performance model (exact
// testbed configuration, deterministic). With -real, figures 1, 5 and 6
// are additionally generated from real scaled executions of this runtime
// with live utilization recording.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"supmr"
	"supmr/internal/metrics"
	"supmr/internal/perfmodel"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 1 | 3 | 5 | 6 | 7 | all")
		csv    = flag.Bool("csv", false, "emit CSV series instead of ASCII charts")
		real   = flag.Bool("real", false, "also run real scaled executions (figs 1, 5, 6)")
		height = flag.Int("height", 16, "ASCII chart height")
	)
	flag.Parse()

	want := func(f string) bool { return *fig == "all" || *fig == f }
	m := perfmodel.Testbed()
	show := func(title string, tr *metrics.Trace) {
		fmt.Printf("--- %s ---\n", title)
		if *csv {
			fmt.Print(tr.CSV())
		} else {
			fmt.Print(tr.ASCII(*height))
		}
		fmt.Printf("mean utilization: %.0f%% (user %.0f%%)\n\n", tr.MeanTotal(), tr.MeanUser())
	}

	if want("1") {
		j := perfmodel.Baseline(perfmodel.Sort(), m, int64(perfmodel.SortInputBytes))
		show(fmt.Sprintf("Fig 1 (model): baseline sort, 60GB — total %s", fmtS(j.Times.Total)),
			j.Trace(m, 2*time.Second))
	}
	if want("3") {
		j := perfmodel.OpenMP(perfmodel.Sort(), m, int64(perfmodel.SortInputBytes))
		mr, omp, computeDelta, totalDelta := perfmodel.Fig3Durations()
		show(fmt.Sprintf("Fig 3 (model): OpenMP sort, 60GB — total %s", fmtS(j.Times.Total)),
			j.Trace(m, 2*time.Second))
		fmt.Printf("MapReduce total %s vs OpenMP total %s: OpenMP %s slower despite a compute phase %s shorter\n\n",
			fmtS(mr), fmtS(omp), fmtS(totalDelta), fmtS(computeDelta))
	}
	if want("5") {
		p := perfmodel.WordCount()
		for _, cfg := range []struct {
			name  string
			chunk int64
		}{
			{"5a: no ingest chunks", 0},
			{"5b: 1GB chunks", 1 * perfmodel.GB},
			{"5c: 50GB chunks", 50 * perfmodel.GB},
		} {
			var j *perfmodel.JobModel
			if cfg.chunk == 0 {
				j = perfmodel.Baseline(p, m, int64(perfmodel.WordCountInputBytes))
			} else {
				j = perfmodel.SupMR(p, m, int64(perfmodel.WordCountInputBytes), cfg.chunk)
			}
			show(fmt.Sprintf("Fig %s (model): word count 155GB — total %s", cfg.name, fmtS(j.Times.Total)),
				j.Trace(m, 2*time.Second))
		}
	}
	if want("6") {
		j := perfmodel.SupMR(perfmodel.Sort(), m, int64(perfmodel.SortInputBytes), perfmodel.GB)
		show(fmt.Sprintf("Fig 6 (model): SupMR sort (p-way merge), 60GB — total %s", fmtS(j.Times.Total)),
			j.Trace(m, 2*time.Second))
	}
	if want("7") {
		base, sup, saved := perfmodel.ModelFig7()
		show(fmt.Sprintf("Fig 7 (model): word count 30GB on 32-node HDFS, copy-then-compute — total %s", fmtS(base.Times.Total)),
			base.Trace(m, 2*time.Second))
		show(fmt.Sprintf("Fig 7 (model): word count 30GB on 32-node HDFS, SupMR pipelined — total %s", fmtS(sup.Times.Total)),
			sup.Trace(m, 2*time.Second))
		fmt.Printf("speedup: %.1f seconds despite high ingest-phase utilization (map ≪ link-bound ingest)\n\n", saved)
	}

	if *real {
		if err := realFigures(want, *csv, *height); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
}

// realFigures reruns figs 1, 5a/b/c and 6 as real scaled executions with
// live utilization recording.
func realFigures(want func(string) bool, csv bool, height int) error {
	const (
		contexts = 4
		wcSize   = 12 << 20
		sortRecs = 120000
	)
	show := func(title string, tr *metrics.Trace) {
		fmt.Printf("--- %s ---\n", title)
		if csv {
			fmt.Print(tr.CSV())
		} else {
			fmt.Print(tr.ASCII(height))
		}
		fmt.Println()
	}

	runSort := func(rt supmr.Runtime, merge supmr.MergeAlgo, chunk int64) (*supmr.Report[string, uint64], error) {
		clock := supmr.NewClock()
		dev, err := supmr.NewDisk("sim", 40<<20, 0, clock)
		if err != nil {
			return nil, err
		}
		f, err := supmr.TeraFile("sort", sortRecs, 7, dev)
		if err != nil {
			return nil, err
		}
		return supmr.RunFile[string, uint64](supmr.SortJob(), f, supmr.SortContainer(), supmr.Config{
			Runtime: rt, ChunkBytes: chunk, Boundary: supmr.CRLFRecords,
			Merge: &merge, Splits: 64, Clock: clock,
			TraceContexts: contexts, TraceBucket: 50 * time.Millisecond,
		})
	}
	if want("1") {
		rep, err := runSort(supmr.RuntimeTraditional, supmr.MergePairwise, 0)
		if err != nil {
			return err
		}
		fmt.Printf("--- %s ---\n", "Fig 1 (real, scaled): baseline sort — "+rep.Times.String())
		if csv {
			fmt.Print(rep.Trace.CSV())
		} else {
			fmt.Print(rep.Trace.AnnotatedASCII(height, rep.Markers))
		}
		fmt.Println()
	}
	if want("6") {
		rep, err := runSort(supmr.RuntimeSupMR, supmr.MergePWay, sortRecs*100/60)
		if err != nil {
			return err
		}
		show("Fig 6 (real, scaled): SupMR sort — "+rep.Times.String(), rep.Trace)
	}
	if want("5") {
		for _, cfg := range []struct {
			name  string
			rt    supmr.Runtime
			chunk int64
		}{
			{"5a (real): no chunks", supmr.RuntimeTraditional, 0},
			{"5b (real): small chunks", supmr.RuntimeSupMR, wcSize / 155},
			{"5c (real): large chunks", supmr.RuntimeSupMR, wcSize * 50 / 155},
		} {
			clock := supmr.NewClock()
			dev, err := supmr.NewDisk("sim", 6<<20, 0, clock)
			if err != nil {
				return err
			}
			f, err := supmr.TextFile("wc", wcSize, 7, dev)
			if err != nil {
				return err
			}
			rep, err := supmr.RunFile[string, int64](supmr.WordCountJob(), f,
				supmr.WordCountContainer(64), supmr.Config{
					Runtime: cfg.rt, ChunkBytes: cfg.chunk, Clock: clock,
					TraceContexts: contexts, TraceBucket: 50 * time.Millisecond,
				})
			if err != nil {
				return err
			}
			show("Fig "+cfg.name+" — "+rep.Times.String(), rep.Trace)
		}
	}
	return nil
}

func fmtS(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 2, 64) + "s"
}
