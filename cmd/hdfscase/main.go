// Command hdfscase reproduces the Fig. 7 case study: a scale-up word
// count whose primary storage is a 32-node HDFS behind one 1 Gbit link.
// The original runtime copies the input to the compute node and then
// starts the computation; SupMR ingests chunks from HDFS in parallel
// with map waves. The paper's point — reproduced here — is that the
// pipelined run shows high CPU utilization during ingest yet only a
// small total speedup, because the link-bound ingest dwarfs the map
// phase (Conclusion 4: the benefit depends on the relative phase times).
//
// Runs a scaled real execution by default; -model prints the paper-scale
// model result (30 GB, 125 MB/s link, ~7 s speedup).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"supmr"
	"supmr/internal/cliutil"
	"supmr/internal/perfmodel"
)

func main() {
	var (
		sizeStr  = flag.String("size", "12m", "scaled input size (k/m/g suffixes)")
		nodes    = flag.Int("nodes", 32, "HDFS datanodes")
		linkStr  = flag.String("link", "4m", "scaled shared link bandwidth, bytes/sec")
		chunkStr = flag.String("chunk", "2m", "SupMR ingest chunk size")
		model    = flag.Bool("model", true, "print the paper-scale model result")
		trace    = flag.Bool("trace", true, "print utilization traces")
	)
	flag.Parse()
	size := mustSize(*sizeStr)
	link := float64(mustSize(*linkStr))
	chunkSz := mustSize(*chunkStr)

	if *model {
		base, sup, saved := perfmodel.ModelFig7()
		fmt.Println("=== Fig 7 at paper scale (model): 30GB word count, 32-node HDFS, 1Gbit link ===")
		fmt.Printf("copy-then-compute total: %.1fs    pipelined total: %.1fs    saved: %.1fs\n\n",
			base.Times.Total.Seconds(), sup.Times.Total.Seconds(), saved)
	}

	if err := run(size, *nodes, link, chunkSz, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "hdfscase:", err)
		os.Exit(1)
	}
}

func mustSize(s string) int64 {
	v, err := cliutil.ParseSize(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdfscase:", err)
		os.Exit(2)
	}
	return v
}

func run(size int64, nodes int, linkBW float64, chunkSz int64, trace bool) error {
	fmt.Printf("=== Fig 7 scaled real run: %d B over %d datanodes, link %.1f MB/s ===\n",
		size, nodes, linkBW/1e6)

	setup := func() (supmr.Clock, *supmr.HDFSFile, error) {
		clock := supmr.NewClock()
		cluster, err := supmr.NewHDFS(supmr.HDFSConfig{
			Nodes:     nodes,
			BlockSize: 1 << 20,
			DiskBW:    64 << 20,
			LinkBW:    linkBW,
			Latency:   200 * time.Microsecond,
		}, clock)
		if err != nil {
			return nil, nil, err
		}
		f, err := cluster.Create("input.txt", size, supmr.TextFill(7))
		if err != nil {
			return nil, nil, err
		}
		return clock, f, nil
	}

	// Baseline: copy everything from HDFS to local storage, then run the
	// traditional runtime over the (now memory-resident) local copy.
	clock, hf, err := setup()
	if err != nil {
		return err
	}
	copyStart := clock.Now()
	local, err := hf.CopyToLocal(supmr.NewFastDevice(clock), nil)
	if err != nil {
		return err
	}
	copyTime := clock.Now() - copyStart
	repBase, err := supmr.RunFile[string, int64](supmr.WordCountJob(), local,
		supmr.WordCountContainer(64), supmr.Config{Runtime: supmr.RuntimeTraditional, Clock: clock,
			TraceContexts: traceCtx(trace), TraceBucket: 100 * time.Millisecond})
	if err != nil {
		return err
	}
	baseTotal := copyTime + repBase.Times.Total
	fmt.Printf("copy-then-compute: copy=%.2fs compute=%.2fs total=%.2fs\n",
		copyTime.Seconds(), repBase.Times.Total.Seconds(), baseTotal.Seconds())

	// SupMR: ingest chunks straight from HDFS, pipelined with map waves.
	clock2, hf2, err := setup()
	if err != nil {
		return err
	}
	repSup, err := supmr.RunFile[string, int64](supmr.WordCountJob(), hf2,
		supmr.WordCountContainer(64), supmr.Config{Runtime: supmr.RuntimeSupMR,
			ChunkBytes: chunkSz, Clock: clock2,
			TraceContexts: traceCtx(trace), TraceBucket: 100 * time.Millisecond})
	if err != nil {
		return err
	}
	fmt.Printf("SupMR pipelined:   %s\n", repSup.Times.String())
	fmt.Printf("saved: %.2fs (high ingest utilization, small total gain — map ≪ link-bound ingest)\n\n",
		baseTotal.Seconds()-repSup.Times.Total.Seconds())

	if trace && repSup.Trace != nil {
		fmt.Println("SupMR pipelined utilization:")
		fmt.Print(repSup.Trace.ASCII(12))
	}
	return nil
}

func traceCtx(on bool) int {
	if on {
		return 4
	}
	return 0
}
