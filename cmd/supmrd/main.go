// Command supmrd is the SupMR job server: one long-running process
// owning a shared Engine — worker pool, IO lanes, chunk freelist and a
// global memory budget — that concurrent jobs are submitted to over a
// local unix socket. The operation-level fair-share scheduler
// interleaves the admitted jobs' map waves, spill drains and merges so
// a short job is never FIFO-blocked behind a long one.
//
// Examples:
//
//	supmrd -socket /tmp/supmrd.sock -workers 8 -io-lanes 4 -budget 256m
//	supmr submit -socket /tmp/supmrd.sock -app wordcount -size 32m -wait
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"supmr"
	"supmr/internal/cliutil"
	"supmr/internal/server"
)

func main() {
	var (
		socket     = flag.String("socket", "/tmp/supmrd.sock", "unix socket path to listen on")
		workers    = flag.Int("workers", 0, "shared compute workers every job draws from (0 = GOMAXPROCS)")
		ioLanes    = flag.String("io-lanes", "1", "shared IO lanes serving every job's ingest and spill")
		budget     = flag.String("budget", "0", "global intermediate-memory budget carved into per-job grants (0 = unbudgeted)")
		maxJobs    = flag.String("max-jobs", "4", "concurrently running jobs; further submissions queue")
		maxPending = flag.Int("max-pending", -2, "pending-job backlog bound; -1 = unbounded, 0 = reject when busy (default 2*max-jobs)")
		opSlots    = flag.String("op-slots", "1", "compute operations (map waves, spill drains, merges) running at once")
		memoBudg   = flag.String("memo-budget", "64m", "shared memo-store byte budget; least-recently-used entries evict beyond it")
	)
	memo := memoFlag(true)
	flag.Var(&memo, "memo", "host a shared memo store: memoized submissions (supmr submit -memo) replay cached map output across jobs; off disables it")
	flag.Parse()

	ec := supmr.EngineConfig{
		Workers:      *workers,
		IOLanes:      parseCount(*ioLanes),
		MemoryBudget: parseSize(*budget),
		MaxJobs:      parseCount(*maxJobs),
		OpSlots:      parseCount(*opSlots),
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "supmrd: -workers must not be negative, got %d\n", *workers)
		os.Exit(2)
	}
	if *maxPending != -2 {
		if *maxPending < -1 {
			fmt.Fprintf(os.Stderr, "supmrd: -max-pending must be -1 (unbounded) or >= 0, got %d\n", *maxPending)
			os.Exit(2)
		}
		ec.MaxPending = maxPending
	}
	memoState := "off"
	if memo {
		store, err := supmr.NewMemoStore(supmr.MemoConfig{Budget: parseSize(*memoBudg)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "supmrd:", err)
			os.Exit(2)
		}
		defer store.Close()
		ec.Memo = store
		memoState = cliutil.FormatBytes(parseSize(*memoBudg))
	}

	srv, err := server.New(server.Config{Socket: *socket, Engine: ec})
	if err != nil {
		fmt.Fprintln(os.Stderr, "supmrd:", err)
		os.Exit(1)
	}
	// SIGINT/SIGTERM drain the server: stop accepting, cancel running
	// jobs, close the engine.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "supmrd: shutting down")
		srv.Close()
	}()

	fmt.Printf("supmrd: listening on %s (workers=%d io-lanes=%d budget=%s max-jobs=%d memo=%s)\n",
		*socket, ec.Workers, ec.IOLanes, cliutil.FormatBytes(ec.MemoryBudget), ec.MaxJobs, memoState)
	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "supmrd:", err)
		os.Exit(1)
	}
}

// memoFlag is a boolean flag that also accepts on/off, so the ablation
// reads naturally as -memo=off.
type memoFlag bool

func (f *memoFlag) String() string {
	if bool(*f) {
		return "on"
	}
	return "off"
}

func (f *memoFlag) Set(s string) error {
	switch strings.ToLower(s) {
	case "on", "true", "1", "yes":
		*f = true
	case "off", "false", "0", "no":
		*f = false
	default:
		return fmt.Errorf("invalid value %q (want on or off)", s)
	}
	return nil
}

func (f *memoFlag) IsBoolFlag() bool { return true }

// parseSize parses "64", "64k", "4m", "2g" into bytes; bad or negative
// values are a usage error.
func parseSize(s string) int64 {
	v, err := cliutil.ParseSize(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supmrd:", err)
		os.Exit(2)
	}
	return v
}

// parseCount parses a positive integer; zero or negative is a usage
// error.
func parseCount(s string) int {
	v, err := cliutil.ParseCount(s, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supmrd:", err)
		os.Exit(2)
	}
	return v
}
