package main

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"supmr/internal/jobspec"
	"supmr/internal/server"
)

// TestMain re-execs the test binary as supmrd when asked, so the tests
// below can observe real exit codes and run the server as a separate
// process.
func TestMain(m *testing.M) {
	if os.Getenv("SUPMRD_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestBadKnobsExitUsage pins flag validation: non-positive lane counts,
// job limits or negative budgets are usage errors — exit 2 before the
// socket is even bound.
func TestBadKnobsExitUsage(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"io-lanes-zero", []string{"-io-lanes", "0"}, "below minimum"},
		{"io-lanes-negative", []string{"-io-lanes", "-2"}, "below minimum"},
		{"budget-negative", []string{"-budget", "-64m"}, "negative size"},
		{"max-jobs-zero", []string{"-max-jobs", "0"}, "below minimum"},
		{"op-slots-zero", []string{"-op-slots", "0"}, "below minimum"},
		{"max-pending-bad", []string{"-max-pending", "-5"}, "-max-pending"},
		{"workers-negative", []string{"-workers", "-1"}, "-workers"},
		{"memo-budget-negative", []string{"-memo-budget", "-8m"}, "negative size"},
		{"memo-budget-garbage", []string{"-memo-budget", "big"}, "bad size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			args := append([]string{"-socket", filepath.Join(t.TempDir(), "s.sock")}, tc.args...)
			cmd := exec.CommandContext(ctx, os.Args[0], args...)
			cmd.Env = append(os.Environ(), "SUPMRD_RUN_MAIN=1")
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("want exit 2, got %v; stderr:\n%s", err, stderr.String())
			}
			out := stderr.String()
			if !strings.HasPrefix(out, "supmrd: ") || !strings.Contains(out, tc.want) {
				t.Fatalf("stderr %q does not explain the usage error (want %q)", out, tc.want)
			}
		})
	}
}

// TestServeSubmitShutdown is the process-level smoke test: start the
// daemon, submit a job over the socket, read its digest, then SIGTERM
// and expect a clean exit.
func TestServeSubmitShutdown(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sock := filepath.Join(t.TempDir(), "supmrd.sock")
	cmd := exec.CommandContext(ctx, os.Args[0], "-socket", sock, "-workers", "2")
	cmd.Env = append(os.Environ(), "SUPMRD_RUN_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cmd.Process.Kill()

	// Wait for the socket to come up.
	var c *server.Client
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		if c, err = server.Dial(sock); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v\nstderr:\n%s", err, stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer c.Close()

	id, err := c.Submit(jobspec.Spec{App: "wordcount", Size: 64 << 10, Seed: 5, ChunkBytes: 16 << 10})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	v, err := c.Wait(id)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.State != server.StateDone || v.Result == nil || v.Result.Digest == "" {
		t.Fatalf("job did not finish cleanly: %+v", v)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited dirty: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "shutting down") {
		t.Errorf("shutdown not announced on stderr: %q", stderr.String())
	}
}
