// Command teragen generates terasort-style input — 100-byte records with
// a 10-byte printable key, an 88-byte payload and a \r\n terminator — to
// stdout or a file. The same deterministic generator backs the simulated
// inputs (internal/workload.TeraGen), so data written here and data
// served by the simulated storage are byte-identical for a given seed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"supmr/internal/workload"
)

func main() {
	var (
		records = flag.Int64("records", 1000, "number of 100-byte records")
		seed    = flag.Uint64("seed", 1, "generation seed")
		out     = flag.String("o", "-", "output file (- = stdout)")
		text    = flag.Bool("text", false, "generate word count text instead of records")
		size    = flag.Int64("size", 0, "text size in bytes (with -text)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teragen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	if *text {
		n := *size
		if n <= 0 {
			n = *records * workload.TeraRecordSize
		}
		if err := stream(bw, n, workload.TextGen{Seed: int64(*seed)}.Fill()); err != nil {
			fmt.Fprintln(os.Stderr, "teragen:", err)
			os.Exit(1)
		}
		return
	}
	if err := stream(bw, *records*workload.TeraRecordSize, workload.TeraGen{Seed: *seed}.Fill()); err != nil {
		fmt.Fprintln(os.Stderr, "teragen:", err)
		os.Exit(1)
	}
}

func stream(w io.Writer, size int64, fill func(off int64, p []byte)) error {
	buf := make([]byte, 1<<20)
	for off := int64(0); off < size; {
		n := int64(len(buf))
		if rest := size - off; n > rest {
			n = rest
		}
		fill(off, buf[:n])
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}
