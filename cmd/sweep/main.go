// Command sweep regenerates the design-space curves behind the paper's
// conclusions:
//
//   - the chunk-size sweep (Conclusion 2): total time, waves and mean
//     utilization as a function of ingest chunk size, at paper scale
//     through the model and optionally as scaled real executions;
//   - the merge crossover (Conclusion 3): pairwise vs p-way merge time
//     across sorted-run counts.
package main

import (
	"flag"
	"fmt"
	"os"

	"supmr"
	"supmr/internal/perfmodel"
)

func main() {
	var (
		what   = flag.String("what", "all", "chunk | merge | all")
		app    = flag.String("app", "wordcount", "profile for the chunk sweep: wordcount | sort")
		points = flag.Int("points", 9, "sweep points")
		real   = flag.Bool("real", false, "also run a scaled real chunk sweep")
	)
	flag.Parse()

	m := perfmodel.Testbed()
	if *what == "chunk" || *what == "all" {
		var p perfmodel.Profile
		var size int64
		switch *app {
		case "sort":
			p, size = perfmodel.Sort(), int64(perfmodel.SortInputBytes)
		default:
			p, size = perfmodel.WordCount(), int64(perfmodel.WordCountInputBytes)
		}
		grid := perfmodel.DefaultChunkGrid(256<<20, size/2, *points)
		pts, base := perfmodel.ChunkSweep(p, m, size, grid)
		fmt.Printf("=== chunk-size sweep at paper scale (%s, %d bytes) ===\n", p.Name, size)
		fmt.Print(perfmodel.FormatChunkSweep(pts, base))
		fmt.Println()
	}
	if *what == "merge" || *what == "all" {
		pts := perfmodel.MergeCrossover(perfmodel.Sort(), m, 600e6,
			[]int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
		fmt.Println("=== merge crossover at paper scale (600M records, 32 contexts) ===")
		fmt.Print(perfmodel.FormatMergeCrossover(pts))
		fmt.Println()
	}
	if *real {
		if err := realChunkSweep(*points); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}
}

// realChunkSweep runs the scaled real word count across chunk sizes.
func realChunkSweep(points int) error {
	const size = 8 << 20
	const bw = 8 << 20
	fmt.Printf("=== chunk-size sweep, scaled real runs (%d B at %d B/s) ===\n", size, int64(bw))
	fmt.Printf("%14s %8s %10s\n", "chunk", "waves", "total")
	grid := perfmodel.DefaultChunkGrid(size/128, size, points)
	for _, c := range grid {
		clock := supmr.NewClock()
		dev, err := supmr.NewDisk("sim", bw, 0, clock)
		if err != nil {
			return err
		}
		f, err := supmr.TextFile("wc", size, 7, dev)
		if err != nil {
			return err
		}
		rep, err := supmr.RunFile[string, int64](supmr.WordCountJob(), f,
			supmr.WordCountContainer(64), supmr.Config{
				Runtime: supmr.RuntimeSupMR, ChunkBytes: c, Clock: clock,
			})
		if err != nil {
			return err
		}
		fmt.Printf("%14d %8d %9.2fs\n", c, rep.Stats.MapWaves, rep.Times.Total.Seconds())
	}
	return nil
}
