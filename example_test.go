package supmr_test

import (
	"fmt"

	"supmr"
)

// Counting words through the SupMR pipeline: the input streams through
// 16-byte ingest chunks while mapper goroutines process earlier chunks.
func ExampleRunBytes() {
	data := []byte("b a\nc a b\na\n")
	rep, err := supmr.RunBytes[string, int64](
		supmr.WordCountJob(),
		data,
		supmr.WordCountContainer(8),
		supmr.Config{Runtime: supmr.RuntimeSupMR, ChunkBytes: 4},
	)
	if err != nil {
		panic(err)
	}
	for _, p := range rep.Pairs {
		fmt.Printf("%s=%d\n", p.Key, p.Val)
	}
	// Output:
	// a=3
	// b=2
	// c=1
}

// A custom job needs only Map, Reduce and Less. Here: total line
// lengths by first letter.
func ExampleRun_customJob() {
	rep, err := supmr.RunBytes[string, int64](
		firstLetterJob{},
		[]byte("apple\navocado\nbanana\n"),
		supmr.NewHashContainer[string, int64](4, supmr.HashString, nil),
		supmr.Config{},
	)
	if err != nil {
		panic(err)
	}
	for _, p := range rep.Pairs {
		fmt.Printf("%s=%d\n", p.Key, p.Val)
	}
	// Output:
	// a=12
	// b=6
}

type firstLetterJob struct{}

func (firstLetterJob) Map(split []byte, emit supmr.Emitter[string, int64]) {
	start := 0
	for i, c := range split {
		if c == '\n' {
			if i > start {
				emit.Emit(string(split[start]), int64(i-start))
			}
			start = i + 1
		}
	}
}

func (firstLetterJob) Reduce(_ string, vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}

func (firstLetterJob) Less(a, b string) bool { return a < b }

// The traditional runtime and SupMR produce identical sorted output;
// only the phase structure differs.
func ExampleConfig_runtime() {
	data := []byte("z y\nx z\n")
	run := func(rt supmr.Runtime) []supmr.Pair[string, int64] {
		rep, err := supmr.RunBytes[string, int64](
			supmr.WordCountJob(), data, supmr.WordCountContainer(4),
			supmr.Config{Runtime: rt, ChunkBytes: 4})
		if err != nil {
			panic(err)
		}
		return rep.Pairs
	}
	a := run(supmr.RuntimeTraditional)
	b := run(supmr.RuntimeSupMR)
	fmt.Println(len(a) == len(b))
	for i := range a {
		if a[i] != b[i] {
			fmt.Println("mismatch")
		}
	}
	// Output:
	// true
}
