package supmr

// Memo-path integration tests: content-addressed incremental recompute
// must be invisible in the output. Every memoized run — cold, warm,
// incremental after an append, under injected cache faults, solo or
// multiplexed on an engine — produces byte-identical output to a plain
// run of the same configuration; only the hit/miss counters and the
// time spent differ.

import (
	"strings"
	"testing"
	"time"

	"supmr/internal/storage"
)

// memoCfg is the standard memoized word-count configuration over an
// in-memory file on clk.
func memoCfg(clk Clock) Config {
	return Config{
		Runtime:    RuntimeSupMR,
		Workers:    4,
		ChunkBytes: 16 << 10,
		Clock:      clk,
		Memo:       true,
	}
}

// runMemoWC runs a word count over text with cfg, returning the
// rendered output for byte-exact comparison.
func runMemoWC(t *testing.T, text []byte, cfg Config) (*Report[string, int64], string) {
	t.Helper()
	f := storage.BytesFile("in", text, storage.NewNullDevice(cfg.Clock))
	rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep, renderWC(rep.Pairs)
}

func TestMemoColdRunMatchesPlainRun(t *testing.T) {
	text := genText(t, 128<<10, 21)
	want := refWordCount(text)

	clk := storage.NewFakeClock()
	rep, _ := runMemoWC(t, text, memoCfg(clk))
	checkWordCounts(t, rep.Pairs, want)
	if rep.Stats.MemoHits != 0 {
		t.Errorf("cold run hit the cache %d times", rep.Stats.MemoHits)
	}
	if rep.Stats.MemoMisses == 0 {
		t.Error("cold run published nothing")
	}
	if rep.Stats.MemoMisses != rep.Stats.MapWaves {
		t.Errorf("misses %d != map waves %d: every missed chunk should be mapped",
			rep.Stats.MemoMisses, rep.Stats.MapWaves)
	}
}

// TestMemoWarmRunReplaysEverything pins the pure re-run: identical
// content against a shared store maps nothing and replays everything.
func TestMemoWarmRunReplaysEverything(t *testing.T) {
	text := genText(t, 128<<10, 22)
	clk := storage.NewFakeClock()
	store, err := NewMemoStore(MemoConfig{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg := memoCfg(clk)
	cfg.MemoStore = store

	cold, coldOut := runMemoWC(t, text, cfg)
	warm, warmOut := runMemoWC(t, text, cfg)
	if warmOut != coldOut {
		t.Fatal("warm run output differs from cold run")
	}
	if warm.Stats.MemoMisses != 0 {
		t.Errorf("warm run missed %d chunks over identical content", warm.Stats.MemoMisses)
	}
	if warm.Stats.MemoHits != cold.Stats.MemoMisses {
		t.Errorf("warm hits %d != cold misses %d", warm.Stats.MemoHits, cold.Stats.MemoMisses)
	}
	if warm.Stats.MapWaves != 0 {
		t.Errorf("warm run still ran %d map waves", warm.Stats.MapWaves)
	}
	if warm.Stats.MemoBytesSaved != int64(len(text)) {
		t.Errorf("bytes saved %d, want the whole input %d", warm.Stats.MemoBytesSaved, len(text))
	}
	if st := store.Stats(); st.Hits != int64(warm.Stats.MemoHits) {
		t.Errorf("store counted %d hits, run counted %d", st.Hits, warm.Stats.MemoHits)
	}
}

// TestMemoIncrementalAppend is the headline property: append ~2% to the
// input and the re-run replays almost every chunk from the cache while
// staying byte-identical to a from-scratch run over the grown input.
func TestMemoIncrementalAppend(t *testing.T) {
	base := genText(t, 256<<10, 23)
	grown := append(append([]byte{}, base...), genText(t, 5<<10, 24)...)

	clk := storage.NewFakeClock()
	store, err := NewMemoStore(MemoConfig{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg := memoCfg(clk)
	cfg.MemoStore = store

	cold, _ := runMemoWC(t, base, cfg)
	incr, incrOut := runMemoWC(t, grown, cfg)

	// Reference: plain (memo-off) run over the grown input.
	plainCfg := memoCfg(storage.NewFakeClock())
	plainCfg.Memo = false
	_, wantOut := runMemoWC(t, grown, plainCfg)
	if incrOut != wantOut {
		t.Fatal("incremental run output differs from a from-scratch run over the grown input")
	}
	if incr.Stats.MemoHits < cold.Stats.MemoMisses-1 {
		t.Errorf("append shifted chunk boundaries: only %d of %d cached chunks replayed",
			incr.Stats.MemoHits, cold.Stats.MemoMisses)
	}
	if incr.Stats.MemoMisses == 0 {
		t.Error("the appended tail should miss")
	}
	if incr.Stats.MemoMisses > 3 {
		t.Errorf("append of one tail chunk caused %d misses", incr.Stats.MemoMisses)
	}
}

// TestMemoOffOnDigestsAgreeAcrossApps diffs memo-on against memo-off
// for a second app shape (unique-key sort over CRLF records) to pin
// that the per-chunk drain plus chunk-order merge reassembles exactly
// what the plain pipeline produces.
func TestMemoOffOnDigestsAgreeAcrossApps(t *testing.T) {
	run := func(memo bool) []Pair[string, uint64] {
		clk := storage.NewFakeClock()
		f, err := TeraFile("sortin", 3000, 5, NewFastDevice(clk))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Runtime:    RuntimeSupMR,
			Workers:    4,
			ChunkBytes: 16 << 10,
			Boundary:   CRLFRecords,
			Clock:      clk,
			Memo:       memo,
		}
		rep, err := RunFile[string, uint64](SortJob(), f, SortContainer(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Pairs
	}
	on, off := run(true), run(false)
	if len(on) != len(off) {
		t.Fatalf("pair counts differ: memo-on %d, memo-off %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("pair %d differs: memo-on %v, memo-off %v", i, on[i], off[i])
		}
	}
}

// TestMemoChaosFaultsNeverCorruptOutput injects faults into the memo
// store itself — torn entry writes, failed reads — across several seeds
// and plans. Cache faults must degrade to misses: every run's output
// stays byte-identical to the clean run, with the store's error
// counters (not the job) absorbing the damage.
func TestMemoChaosFaultsNeverCorruptOutput(t *testing.T) {
	text := genText(t, 128<<10, 25)
	clean := refWordCount(text)

	for _, seed := range []int64{1, 7, 42} {
		for planName, plan := range chaosPlans(seed) {
			if plan.Permanent {
				// Permanent only promotes injected errors to non-retryable;
				// memo faults are swallowed as misses either way, so the
				// distinction is covered by the transient plans.
				plan.Permanent = false
			}
			t.Run(planName, func(t *testing.T) {
				clk := storage.NewFakeClock()
				inj := NewFaultInjector(plan, clk)
				store, err := NewMemoStore(MemoConfig{Clock: clk, Faults: inj})
				if err != nil {
					t.Fatal(err)
				}
				defer store.Close()
				cfg := memoCfg(clk)
				cfg.MemoStore = store

				// Cold publish (writes may tear), then two re-runs (reads may
				// fail, torn entries detected and dropped): all must match.
				for pass := 0; pass < 3; pass++ {
					rep, _ := runMemoWC(t, text, cfg)
					checkWordCounts(t, rep.Pairs, clean)
					if pass > 0 && rep.Stats.MemoHits == 0 && store.Stats().Stored == 0 {
						// Every publish failed under this plan — legal, but then
						// every chunk must have been mapped.
						if rep.Stats.MemoMisses != rep.Stats.MapWaves {
							t.Fatalf("pass %d: misses %d != waves %d with an empty store",
								pass, rep.Stats.MemoMisses, rep.Stats.MapWaves)
						}
					}
				}
				st := store.Stats()
				if st.Torn > 0 || st.ReadErrors > 0 || st.WriteErrors > 0 {
					t.Logf("seed %d %s: absorbed torn=%d readErrs=%d writeErrs=%d",
						seed, planName, st.Torn, st.ReadErrors, st.WriteErrors)
				}
			})
		}
	}
}

// TestMemoEngineSharedAcrossSubmissions pins the daemon use case: one
// tenant's cold submission warms the store for the next tenant's
// identical submission on the same engine.
func TestMemoEngineSharedAcrossSubmissions(t *testing.T) {
	text := genText(t, 128<<10, 26)
	clk := storage.NewFakeClock()
	store, err := NewMemoStore(MemoConfig{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(EngineConfig{Workers: 4, Clock: clk, Memo: store})
	defer store.Close()
	defer eng.Close()

	cfg := memoCfg(clk)
	cfg.Engine = eng
	cfg.Tenant = "alice"
	cold, coldOut := runMemoWC(t, text, cfg)
	cfg.Tenant = "bob"
	warm, warmOut := runMemoWC(t, text, cfg)

	if warmOut != coldOut {
		t.Fatal("engine-shared memo changed the output across submissions")
	}
	if warm.Stats.MemoHits != cold.Stats.MemoMisses {
		t.Errorf("second submission hit %d of %d published chunks",
			warm.Stats.MemoHits, cold.Stats.MemoMisses)
	}
	es := eng.Stats()
	if es.Memo == nil {
		t.Fatal("engine stats lack the memo snapshot")
	}
	if es.Memo.Hits == 0 {
		t.Error("engine memo snapshot shows no hits")
	}
}

// TestMemoKeySpacesIsolateApps pins that two jobs with different key
// spaces sharing one store never replay each other's entries even over
// identical content.
func TestMemoKeySpacesIsolateApps(t *testing.T) {
	text := genText(t, 64<<10, 27)
	clk := storage.NewFakeClock()
	store, err := NewMemoStore(MemoConfig{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	cfg := memoCfg(clk)
	cfg.MemoStore = store
	cfg.MemoKeySpace = "wc-a"
	runMemoWC(t, text, cfg)

	cfg.MemoKeySpace = "wc-b"
	rep, _ := runMemoWC(t, text, cfg)
	if rep.Stats.MemoHits != 0 {
		t.Errorf("key space b replayed %d entries published under key space a", rep.Stats.MemoHits)
	}
}

func TestMemoConfigValidation(t *testing.T) {
	text := genText(t, 8<<10, 28)
	cases := []struct {
		name string
		mod  func(*Config)
		want string
	}{
		{"traditional", func(c *Config) { c.Runtime = RuntimeTraditional }, "requires RuntimeSupMR"},
		{"no-chunk-bytes", func(c *Config) { c.ChunkBytes = 0 }, "ChunkBytes"},
		{"adaptive", func(c *Config) { c.AdaptiveChunks = true }, "AdaptiveChunks"},
		{"reset-each-round", func(c *Config) { c.ResetEachRound = true }, "ResetEachRound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := memoCfg(storage.NewFakeClock())
			tc.mod(&cfg)
			f := storage.BytesFile("in", text, storage.NewNullDevice(cfg.Clock))
			_, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(8), cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}

	t.Run("multi-file", func(t *testing.T) {
		cfg := memoCfg(storage.NewFakeClock())
		files, err := TextFiles("mf", 3, 8<<10, 1, NewFastDevice(cfg.Clock))
		if err != nil {
			t.Fatal(err)
		}
		_, err = RunFiles[string, int64](WordCountJob(), files, WordCountContainer(8), cfg)
		if err == nil || !strings.Contains(err.Error(), "single-file") {
			t.Fatalf("want a single-file error, got %v", err)
		}
	})
}

// TestEngineRejectsNegativeWeight pins the library half of the weight
// validation: a negative fair-share weight is a caller error on the
// submission path, not something to silently clamp.
func TestEngineRejectsNegativeWeight(t *testing.T) {
	clk := storage.NewFakeClock()
	eng := NewEngine(EngineConfig{Workers: 2, Clock: clk})
	defer eng.Close()
	cfg := Config{Runtime: RuntimeSupMR, ChunkBytes: 8 << 10, Clock: clk, Engine: eng, Weight: -2}
	_, err := RunBytes[string, int64](WordCountJob(), genText(t, 8<<10, 29), WordCountContainer(8), cfg)
	if err == nil || !strings.Contains(err.Error(), "Weight") {
		t.Fatalf("want a weight validation error, got %v", err)
	}
	if es := eng.Stats(); es.Failed != 0 {
		t.Errorf("rejected weight counted as a failed submission: %+v", es)
	}
}

// TestEngineNotesSurfaceDisabledInstruments pins the report caveats: an
// engine-mode run says its allocation metering is off, says the trace
// was dropped when one was requested, and a memoized run with a memory
// budget says the budget is ignored.
func TestEngineNotesSurfaceDisabledInstruments(t *testing.T) {
	text := genText(t, 32<<10, 30)
	clk := storage.NewFakeClock()
	eng := NewEngine(EngineConfig{Workers: 2, Clock: clk})
	defer eng.Close()

	cfg := Config{
		Runtime:       RuntimeSupMR,
		ChunkBytes:    8 << 10,
		Clock:         clk,
		Engine:        eng,
		TraceContexts: 4,
	}
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantNote := func(frag string) {
		t.Helper()
		for _, n := range rep.Notes {
			if strings.Contains(n, frag) {
				return
			}
		}
		t.Errorf("notes %q lack %q", rep.Notes, frag)
	}
	wantNote("allocation metering disabled")
	wantNote("utilization trace disabled")
	if rep.Trace != nil {
		t.Error("engine run produced a trace anyway")
	}

	// Solo run: no engine notes.
	solo, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(8), Config{
		Runtime: RuntimeSupMR, ChunkBytes: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Notes) != 0 {
		t.Errorf("solo run carries notes: %q", solo.Notes)
	}

	// Memo + MemoryBudget: the budget-ignored note.
	mcfg := memoCfg(storage.NewFakeClock())
	mcfg.MemoryBudget = 32 << 10
	mrep, _ := runMemoWC(t, text, mcfg)
	found := false
	for _, n := range mrep.Notes {
		if strings.Contains(n, "MemoryBudget ignored") {
			found = true
		}
	}
	if !found {
		t.Errorf("memoized budgeted run lacks the budget-ignored note: %q", mrep.Notes)
	}
	if mrep.Stats.SpilledRuns != 0 {
		t.Errorf("memo run spilled %d runs", mrep.Stats.SpilledRuns)
	}
}

// TestMemoDeviceChargesTime pins that memo IO is charged on the job
// clock: a store on a slow device makes warm lookups cost simulated
// time (replay still beats re-mapping only because map work dominates
// real runs; here we just assert the charge exists).
func TestMemoDeviceChargesTime(t *testing.T) {
	text := genText(t, 64<<10, 31)
	clk := storage.NewFakeClock()
	slow, err := NewDisk("memodev", 1<<20, 0, clk)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewMemoStore(MemoConfig{Device: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg := memoCfg(clk)
	cfg.MemoStore = store

	runMemoWC(t, text, cfg) // cold: publishes charge writes
	before := clk.Now()
	rep, _ := runMemoWC(t, text, cfg) // warm: lookups charge reads
	if rep.Stats.MemoHits == 0 {
		t.Fatal("warm run did not hit")
	}
	if charged := clk.Now() - before; charged < 10*time.Millisecond {
		t.Errorf("warm run over a 1MB/s memo device charged only %v of simulated time", charged)
	}
}
