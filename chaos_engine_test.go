package supmr

// Chaos x engine: the fault-injection sweep's safety invariant must
// survive multiplexing. Two jobs submitted concurrently to one shared
// Engine — each with its own deterministic injector — must produce
// exactly the outcome the same configuration produces solo: identical
// output bytes on recovery, the same wrapped ErrInjectedFault on
// permanent failure, and no cross-job bleed either way.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"supmr/internal/storage"
)

// runChaosWCEngine is runChaosWC's engine-mode twin: the same word
// count, fault plan and retry policy, but submitted to a shared engine.
func runChaosWCEngine(text []byte, e *Engine, v chaosVariant, inj *FaultInjector, retry RetryPolicy, clk Clock, tenant string) (string, error) {
	cfg := Config{
		Runtime:    v.runtime,
		ChunkBytes: 24 << 10,
		Clock:      clk,
		Faults:     inj,
		Retry:      retry,
		Engine:     e,
		Tenant:     tenant,
	}
	if v.budget > 0 {
		cfg.MemoryBudget = v.budget
		cfg.SpillDevice = NewFastDevice(clk)
	}
	rep, err := RunBytes[string, int64](WordCountJob(), text, WordCountContainer(16), applyIngestEnv(cfg))
	if err != nil {
		return "", err
	}
	return renderWC(rep.Pairs), nil
}

// TestChaosConcurrentEngine reuses the chaos sweep's seeds and plans,
// running two differently-configured jobs (plain and spilling) at once
// on one engine and diffing each against its solo outcome.
func TestChaosConcurrentEngine(t *testing.T) {
	text := genText(t, 192<<10, 11)
	baseGoroutines := runtime.NumGoroutine()
	retry := RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}
	pair := []chaosVariant{chaosVariants[0], chaosVariants[1]} // supmr, supmr-spill

	for _, seed := range []int64{1, 7, 42} {
		for planName, plan := range chaosPlans(seed) {
			t.Run(fmt.Sprintf("seed%d/%s", seed, planName), func(t *testing.T) {
				// Solo outcomes first: the engine run must reproduce these
				// exactly, error text included.
				solo := make([]string, len(pair))
				for i, v := range pair {
					clk := storage.NewFakeClock()
					out, err := runChaosWC(text, v, NewFaultInjector(plan, clk), retry, clk)
					solo[i] = outcome(out, err)
				}

				// The engine's shared IO lanes cap each job's effective
				// striping, so size them to the env override the multi-lane
				// gate applies — otherwise engine runs would ingest with
				// fewer lanes than the solo baselines and the fault plan
				// would land on a different chunk.
				e := NewEngine(EngineConfig{
					Workers: 4,
					IOLanes: ingestEnvCount("SUPMR_IO_LANES", 1),
					MaxJobs: len(pair),
				})
				var wg sync.WaitGroup
				shared := make([]string, len(pair))
				errs := make([]error, len(pair))
				for i, v := range pair {
					wg.Add(1)
					go func(i int, v chaosVariant) {
						defer wg.Done()
						clk := storage.NewFakeClock()
						out, err := runChaosWCEngine(text, e, v, NewFaultInjector(plan, clk), retry, clk, v.name)
						shared[i] = outcome(out, err)
						errs[i] = err
					}(i, v)
				}
				wg.Wait()
				e.Close()

				for i, v := range pair {
					if shared[i] != solo[i] {
						t.Errorf("%s: engine outcome diverges from solo:\n  solo:   %.200s\n  engine: %.200s",
							v.name, solo[i], shared[i])
					}
					if errs[i] != nil && !errors.Is(errs[i], ErrInjectedFault) {
						t.Errorf("%s: engine run failed with a non-injected error: %v", v.name, errs[i])
					}
				}
			})
		}
	}
	checkNoGoroutineLeak(t, baseGoroutines)
}
