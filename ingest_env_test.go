package supmr

// The striped-ingest CI gate reruns the chaos and differential suites
// with the multi-lane ingest path switched on (SUPMR_IO_LANES /
// SUPMR_PREFETCH_DEPTH): the suites' byte-identical-output and
// determinism invariants must hold at any lane count or ring depth,
// because neither may change what is read — only when.

import (
	"fmt"
	"os"
	"strconv"
)

// applyIngestEnv overlays SUPMR_IO_LANES / SUPMR_PREFETCH_DEPTH onto
// cfg so ci.sh can drive the whole chaos/differential matrix through
// the multi-lane ingest path without duplicating the suites. Unset
// variables leave cfg at the suite's defaults.
func applyIngestEnv(cfg Config) Config {
	cfg.IOLanes = ingestEnvCount("SUPMR_IO_LANES", cfg.IOLanes)
	cfg.PrefetchDepth = ingestEnvCount("SUPMR_PREFETCH_DEPTH", cfg.PrefetchDepth)
	return cfg
}

func ingestEnvCount(name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		panic(fmt.Sprintf("%s must be a positive integer, got %q", name, v))
	}
	return n
}
