package supmr

import (
	"time"

	"supmr/internal/apps"
	"supmr/internal/hdfs"
	"supmr/internal/netsim"
	"supmr/internal/storage"
	"supmr/internal/workload"
)

// This file exposes the simulated experiment environment: clocks,
// disks/RAID arrays, workload generators, and the HDFS cluster of the
// Fig. 7 case study — everything needed to reproduce the paper's
// experiments through the public API.

// Clock abstracts time for devices and measurements.
type Clock = storage.Clock

// NewClock returns a wall clock; device waits really sleep, so ingest
// genuinely overlaps computation.
func NewClock() Clock { return storage.NewRealClock() }

// Device is a simulated block device.
type Device = storage.Device

// File is a simulated file on a device.
type File = storage.File

// NewTestbedRAID builds the paper's 3-disk RAID-0 storage with aggregate
// bandwidth 384 MB/s scaled by factor (use small factors, e.g. 1.0/256,
// to make wall-clock experiments fast while preserving every ratio).
func NewTestbedRAID(clock Clock, factor float64) (Device, error) {
	return storage.TestbedRAID(clock, factor)
}

// NewDisk builds a single simulated disk with the given sequential
// bandwidth (bytes/sec) and seek latency.
func NewDisk(name string, bandwidth float64, seek time.Duration, clock Clock) (Device, error) {
	return storage.NewDisk(storage.DiskConfig{Name: name, Bandwidth: bandwidth, SeekTime: seek}, clock)
}

// NewFastDevice returns an infinitely fast device (input effectively in
// memory).
func NewFastDevice(clock Clock) Device { return storage.NewNullDevice(clock) }

// TeraFile generates a terasort-style input of the given number of
// 100-byte \r\n-terminated records on dev, deterministically from seed.
func TeraFile(name string, records int64, seed uint64, dev Device) (*File, error) {
	return workload.TeraGen{Seed: seed}.File(name, records, dev)
}

// TextFile generates a Zipf-word text input of size bytes on dev,
// deterministically from seed.
func TextFile(name string, size int64, seed int64, dev Device) (*File, error) {
	return workload.TextGen{Seed: seed}.File(name, size, dev)
}

// TextFiles generates count text files of fileSize bytes each — the
// many-small-files word count input shape for intra-file chunking.
func TextFiles(prefix string, count int, fileSize int64, seed int64, dev Device) ([]Input, error) {
	set, err := workload.TextGen{Seed: seed}.FileSet(prefix, count, fileSize, dev)
	if err != nil {
		return nil, err
	}
	inputs := make([]Input, set.Len())
	for i := range inputs {
		inputs[i] = set.At(i)
	}
	return inputs, nil
}

// TextFill returns the deterministic text generator's fill function for
// creating HDFS files or custom storage layouts.
func TextFill(seed int64) func(off int64, p []byte) {
	return workload.TextGen{Seed: seed}.Fill()
}

// TeraFill returns the deterministic terasort generator's fill function.
func TeraFill(seed uint64) func(off int64, p []byte) {
	return workload.TeraGen{Seed: seed}.Fill()
}

// NewByteFile places an in-memory buffer on an arbitrary (possibly
// throttled or cached) device.
func NewByteFile(name string, data []byte, dev Device) (*File, error) {
	return storage.NewFile(name, int64(len(data)), 0, func(off int64, p []byte) {
		copy(p, data[off:])
	}, dev)
}

// MemoryFile wraps an in-memory buffer as an Input on an infinitely
// fast device.
func MemoryFile(name string, data []byte, clock Clock) Input {
	return storage.BytesFile(name, data, storage.NewNullDevice(clock))
}

// HDFS is the simulated distributed file system of the case study.
type HDFS = hdfs.Cluster

// HDFSFile is a file stored in the simulated HDFS.
type HDFSFile = hdfs.File

// HDFSConfig describes a simulated HDFS deployment. HDFS files serve
// the two-phase reads of the multi-lane ingest path, so a job run with
// Config.IOLanes > 1 fetches the blocks of each ingest chunk from
// their datanodes in parallel instead of block-by-block.
type HDFSConfig struct {
	Nodes     int           // datanodes (case study: 32)
	BlockSize int64         // HDFS block size (classic: 64 MB)
	DiskBW    float64       // per-datanode disk bandwidth, bytes/sec
	LinkBW    float64       // shared front link bandwidth, bytes/sec
	Latency   time.Duration // link latency
	// AccessBW, when positive, gives every datanode a dedicated access
	// port of this bandwidth behind the shared uplink (star topology).
	AccessBW float64
	// Faults, when set, injects the injector's fault plan into the
	// cluster: datanode disks become fallible (sites "hdfs-dn0", ...)
	// and the shared link takes latency spikes (site "hdfs-link").
	// Share the job's injector (Config.Faults) so the fault cap and
	// counters are global.
	Faults *FaultInjector
}

// NewHDFS builds the case study's storage: nodes datanodes behind one
// shared link of LinkBW bytes/sec (1 Gbit ethernet = 125e6).
func NewHDFS(cfg HDFSConfig, clock Clock) (*HDFS, error) {
	hc := hdfs.Config{
		Nodes:     cfg.Nodes,
		BlockSize: cfg.BlockSize,
		DiskBW:    cfg.DiskBW,
		Clock:     clock,
	}
	if inj := cfg.Faults; inj != nil {
		hc.WrapDevice = func(site string, dev Device) Device {
			return inj.WrapDevice("hdfs-"+site, dev)
		}
	}
	if cfg.AccessBW > 0 {
		top, err := netsim.NewStarTopology(cfg.Nodes, cfg.AccessBW, cfg.LinkBW, cfg.Latency, clock)
		if err != nil {
			return nil, err
		}
		if cfg.Faults != nil {
			top.Uplink().SetDelayer(cfg.Faults.LinkDelayer("hdfs-link"))
		}
		hc.Topology = top
	} else {
		link, err := netsim.NewLink(cfg.LinkBW, cfg.Latency, clock)
		if err != nil {
			return nil, err
		}
		if cfg.Faults != nil {
			link.SetDelayer(cfg.Faults.LinkDelayer("hdfs-link"))
		}
		hc.Link = link
	}
	return hdfs.NewCluster(hc)
}

// GigabitLinkBW is 1 Gbit ethernet in bytes/sec.
const GigabitLinkBW = netsim.GigabitEthernet

// The paper's two target applications plus the extra demo apps, exposed
// for examples and tools. Each app documents which container §V-B
// prescribes for it.

// WordCountJob returns the word count application (hash container with
// combiner).
func WordCountJob() apps.WordCount { return apps.WordCount{} }

// SortJob returns the terasort-style sort application (unlocked
// key-range container).
func SortJob() apps.Sort { return apps.Sort{} }

// HistogramJob returns the byte-histogram application (array container).
func HistogramJob() apps.Histogram { return apps.Histogram{} }

// InvertedIndexJob returns the inverted index application (hash
// container without combiner; implements the set_data() chunk callback).
func InvertedIndexJob() *apps.InvertedIndex { return &apps.InvertedIndex{} }

// NewCachedDevice wraps dev with an LRU block cache of capacity blocks
// of blockSize bytes — the page-cache/MixApart-style layer (§VII) that
// makes re-reads (e.g. iterative jobs) free of device time.
func NewCachedDevice(dev Device, blockSize int64, capacity int) (Device, error) {
	return storage.NewCache(dev, blockSize, capacity)
}

// KMeansJob builds the iterative K-means application over Dim-byte
// points (Phoenix's kmeans benchmark; each iteration is one SupMR job).
func KMeansJob(k, dim int) *apps.KMeans {
	km := &apps.KMeans{K: k, Dim: dim}
	km.InitCentroids(1)
	return km
}

// KMeansResult reports a K-means driver run.
type KMeansResult = apps.KMeansResult

// RunKMeans drives Lloyd's algorithm over file through the SupMR
// pipeline, re-streaming the input each iteration (wrap the device with
// NewCachedDevice to make iterations after the first compute-bound).
// One persistent worker pool spans all iterations; cfg.Context
// cancellation aborts the driver mid-run.
func RunKMeans(km *apps.KMeans, file Input, cfg Config, maxIters int) (*KMeansResult, error) {
	mk := func() (Stream, error) {
		cfgIter := cfg
		cfgIter.Runtime = RuntimeSupMR
		cfgIter.Boundary = km.Boundary()
		return StreamFile(file, cfgIter)
	}
	return apps.RunKMeans(cfg.Context, km, mk, mapreduceOptions(cfg), maxIters)
}

// GrepJob returns a string-match application over the given patterns
// (the Phoenix string-match benchmark).
func GrepJob(patterns ...string) apps.Grep { return apps.Grep{Patterns: patterns} }

// LinearRegressionJob returns the Phoenix linear-regression application
// (array container over six statistic cells; Fit solves the model).
func LinearRegressionJob() apps.LinearRegression { return apps.LinearRegression{} }

// PrefixPartJob returns round 1 of the 2-round prefix-sum pipeline:
// per-block partial sums over self-indexed records (block records per
// block). Chain its egressed output into PrefixTotalJob via a DAG.
func PrefixPartJob(block int64) apps.PrefixPart { return apps.PrefixPart{Block: block} }

// PrefixTotalJob returns round 2 of the prefix-sum pipeline: running
// prefix totals over round 1's "block\tsum" output lines, for blocks
// total blocks.
func PrefixTotalJob(blocks int64) apps.PrefixTotal { return apps.PrefixTotal{Blocks: blocks} }

// SeqFile generates the prefix-sum input: records self-indexed 16-byte
// numeric records on dev, deterministically from seed.
func SeqFile(name string, records int64, seed int64, dev Device) (*File, error) {
	return workload.SeqGen{Seed: seed}.File(name, records, dev)
}

// WordCountContainer returns the container word count uses (the flat
// combiner).
func WordCountContainer(shards int) Container[string, int64] {
	return WordCountJob().NewContainer(shards)
}

// WordCountMapContainer returns word count's previous map-backed
// combining container — the -flatcombiner=off ablation path.
func WordCountMapContainer(shards int) Container[string, int64] {
	return WordCountJob().NewMapContainer(shards)
}

// SortContainer returns the unlocked container sort uses.
func SortContainer() Container[string, uint64] {
	return SortJob().NewContainer()
}
