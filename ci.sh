#!/usr/bin/env bash
# CI gate: formatting, vet, build, full test suite, and race-detector
# coverage of the concurrent runtime packages, ending with a short
# race-mode SupMR pipeline run end to end.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (runtime packages) =="
go test -race -count=1 \
    ./internal/exec/ \
    ./internal/mapreduce/ \
    ./internal/core/ \
    ./internal/container/ \
    ./internal/sortalgo/ \
    ./internal/spill/ \
    ./internal/cdc/ \
    ./internal/memo/ \
    ./internal/faults/ \
    ./internal/apps/ \
    ./internal/sched/ \
    ./internal/server/ \
    ./internal/egress/ \
    ./internal/dag/ \
    .

echo "== race-mode chaos gate =="
# The fault-injection invariant under the race detector: every seeded
# plan either recovers to byte-identical output or fails with a wrapped
# injected error, without leaking goroutines.
go test -race -count=1 -run 'TestChaos' .

echo "== race-mode multi-lane chaos gate =="
# The same chaos and differential invariants with the striped ingest
# path switched on: 4 IO lanes and a depth-3 prefetch ring must not
# change a single output byte or fault counter — striping may only
# change when bytes arrive, never which bytes.
SUPMR_IO_LANES=4 SUPMR_PREFETCH_DEPTH=3 \
    go test -race -count=1 -run 'TestChaos|TestDifferential' .

echo "== race-mode multi-node shuffle gate =="
# The scale-out invariant under the race detector: every app on 1/2/4
# simulated nodes, with the in-node combiner on and off, must produce
# output byte-identical to the single-node pipeline (TestDifferential-
# MultiNode, TestMultiNode*), and seeded wire chaos — latency spikes and
# torn frame transfers — must either recover via whole-frame resends or
# fail with a wrapped injected error, leaking nothing (TestChaosShuffle).
go test -race -count=1 -run 'TestChaosShuffle|TestDifferentialMultiNode|TestMultiNode' .

echo "== race-mode multi-job chaos gate =="
# The multi-job invariant under the race detector: jobs sharing one
# engine — including the chaos seeds re-run as two concurrent
# submissions — must produce outcomes byte-identical to solo runs, with
# per-job stats isolated and no goroutine leaks.
go test -race -count=1 -run 'TestChaosConcurrentEngine|TestEngine' .

echo "== race-mode chained-DAG chaos gate =="
# The zero-copy pipe invariant under the race detector: two-round job
# chains (psum1→psum2, sort→grep) piped through egressed extents must be
# byte-identical to re-ingesting a materialized copy on every axis —
# faulted, budgeted, radix-off, multi-lane — and seeded chaos over both
# rounds must either recover to the clean digests with deterministic
# fault counters or fail wrapped, leaking no goroutines.
go test -race -count=1 -run 'TestChaosChainedDAG|TestPipedMatchesMaterialized' ./internal/dag/

echo "== race-mode sort-path gate =="
# The radix/columnar invariants under the race detector: every
# fixed-width-key app must produce digests byte-identical to its
# -radixsort=off ablation across both runtimes, with faults and under a
# spill budget (TestRadixAblation...), and the branch-free merge trees
# must agree with the comparison reference (TestMerge, fuzz seeds).
go test -race -count=1 -run 'TestRadixAblation|TestMerge' .

echo "== race-mode incremental recompute gate =="
# The memo invariants under the race detector: a cold run, a 1% append
# and an incremental re-run against the warm store must produce
# byte-identical digests (TestMemoIncrementalAppend), memo-on must
# match the -memo=off ablation across apps (TestMemoOffOnDigests...),
# and injected memo-device faults must degrade to misses, never to
# corrupted output (TestMemoChaos...).
go test -race -count=1 -run 'TestMemo' .

echo "== ingest lane throughput gate =="
# The tentpole claim, gated: segmented reads across 4 IO lanes must
# deliver >= 1.5x the serial virtual ingest throughput on the
# stream-capped RAID (measured ~1.8x), and the 4-lane run must stay
# bounded in allocs/op — the freelist recycles chunk buffers, so
# steady-state ingest allocates O(depth), not O(chunks).
bench_out=$(go test -run '^$' -bench '^BenchmarkIngestLanes$' -benchmem -benchtime 5x .)
echo "$bench_out"
lane_s() {
    echo "$bench_out" | awk -v want="$1" \
        '$1 ~ want { for (i = 2; i <= NF; i++) if ($i == "sim-ingest-s") print $(i-1) }'
}
lane1_s=$(lane_s "Lanes1")
lane4_s=$(lane_s "Lanes4")
if [[ -z "$lane1_s" || -z "$lane4_s" ]]; then
    echo "could not parse sim-ingest-s from BenchmarkIngestLanes" >&2
    exit 1
fi
if ! awk -v a="$lane1_s" -v b="$lane4_s" 'BEGIN { exit !(b > 0 && a / b >= 1.5) }'; then
    echo "4-lane ingest only $(awk -v a="$lane1_s" -v b="$lane4_s" 'BEGIN { printf "%.2f", a/b }')x serial (want >= 1.5x)" >&2
    exit 1
fi
lane4_allocs=$(echo "$bench_out" | awk '$1 ~ /Lanes4/ { print $(NF-1) }')
if [[ -z "$lane4_allocs" ]] || (( lane4_allocs > 2000 )); then
    echo "4-lane ingest allocates ${lane4_allocs:-?} objs/op (limit 2000)" >&2
    exit 1
fi

echo "== ingest sweep artifact (BENCH_ingest.json) =="
go run ./cmd/benchtable -ingest-json BENCH_ingest.json

echo "== incremental recompute artifact and speedup gate (BENCH_memo.json) =="
# The tentpole claim, gated: after appending 1% to the input, a re-run
# against the warm memo store must beat a cold run of the same grown
# input by >= 5x (measured ~7.5x) while staying byte-identical to both
# the cold reference and the -memo=off ablation.
memo_out=$(go run ./cmd/benchtable -memo-json BENCH_memo.json)
echo "$memo_out"
memo_speedup=$(echo "$memo_out" | awk -F'[=x]' '/^speedup=/ { print $2 }')
if [[ -z "$memo_speedup" ]]; then
    echo "could not parse speedup from the memo benchmark" >&2
    exit 1
fi
if ! awk -v s="$memo_speedup" 'BEGIN { exit !(s >= 5) }'; then
    echo "incremental re-run only ${memo_speedup}x vs cold (want >= 5x)" >&2
    exit 1
fi
if ! echo "$memo_out" | grep -q 'digests_match=true'; then
    echo "incremental/coldref/memo-off digests diverge" >&2
    exit 1
fi

echo "== sort-path artifact and speedup gate (BENCH_sort.json) =="
# The tentpole claim, gated: on fixed-width-key sort (terasort records)
# the radix run sort plus columnar p-way merge must beat the
# comparison path by >= 1.5x (measured ~2.9x), with every radix-on
# digest byte-identical to its -radixsort=off ablation.
sort_out=$(go run ./cmd/benchtable -sort-json BENCH_sort.json)
echo "$sort_out"
sort_speedup=$(echo "$sort_out" | awk -F'[=x]' '/^speedup=/ { print $2 }')
if [[ -z "$sort_speedup" ]]; then
    echo "could not parse speedup from the sort benchmark" >&2
    exit 1
fi
if ! awk -v s="$sort_speedup" 'BEGIN { exit !(s >= 1.5) }'; then
    echo "radix sort path only ${sort_speedup}x vs comparison (want >= 1.5x)" >&2
    exit 1
fi
if ! echo "$sort_out" | grep -q 'digests_match=true'; then
    echo "radix/comparison sort digests diverge" >&2
    exit 1
fi

echo "== multi-node shuffle artifact and combiner gate (BENCH_shuffle.json) =="
# The tentpole claim, gated: on a wordcount-class workload over a 4-node
# simulated cluster, the in-node combiner must cut the framed bytes
# crossing the links by >= 2x (measured ~2.2x) versus its
# -innode-combiner=off ablation, with every run's digest — single-node,
# combiner on, combiner off — byte-identical.
shuffle_out=$(go run ./cmd/benchtable -shuffle-json BENCH_shuffle.json)
echo "$shuffle_out"
shuffle_reduction=$(echo "$shuffle_out" | awk -F'[=x]' '/^reduction=/ { print $2 }')
if [[ -z "$shuffle_reduction" ]]; then
    echo "could not parse reduction from the shuffle benchmark" >&2
    exit 1
fi
if ! awk -v r="$shuffle_reduction" 'BEGIN { exit !(r >= 2) }'; then
    echo "in-node combiner only cuts wire bytes ${shuffle_reduction}x (want >= 2x)" >&2
    exit 1
fi
if ! echo "$shuffle_out" | grep -q 'digests_match=true'; then
    echo "single-node/combiner-on/combiner-off digests diverge" >&2
    exit 1
fi

echo "== parallel egress artifact and lane gate (BENCH_egress.json) =="
# The tentpole claim, gated: fanning the merged sort output across 4
# egress lanes onto a stream-capped disk must beat the serial writer's
# virtual egress time by >= 1.5x at every input size (measured
# ~1.8-2x), with the stitched bytes — and so the digest — identical at
# every lane count.
egress_out=$(go run ./cmd/benchtable -egress-json BENCH_egress.json)
echo "$egress_out"
egress_speedup=$(echo "$egress_out" | awk -F'[=x]' '/^speedup=/ { print $2 }')
if [[ -z "$egress_speedup" ]]; then
    echo "could not parse speedup from the egress benchmark" >&2
    exit 1
fi
if ! awk -v s="$egress_speedup" 'BEGIN { exit !(s >= 1.5) }'; then
    echo "4-lane egress only ${egress_speedup}x vs serial (want >= 1.5x)" >&2
    exit 1
fi
if ! echo "$egress_out" | grep -q 'digests_match=true'; then
    echo "egress lane digests diverge" >&2
    exit 1
fi

echo "== map hot path allocation gate =="
# A steady-state flat-combiner map wave must stay (near) allocation-free.
# Measured ~22 allocs/op; the gate allows generous headroom for GC and
# scheduler noise while still catching any per-key allocation regression
# (the map-backed path runs ~200k allocs/op on the same input).
bench_out=$(go test -run '^$' -bench '^BenchmarkMapHotPath$' -benchmem -benchtime 10x .)
echo "$bench_out"
flat_allocs=$(echo "$bench_out" | awk '$1 ~ /FlatCombiner/ { print $(NF-1) }')
if [[ -z "$flat_allocs" ]]; then
    echo "could not parse FlatCombiner allocs/op" >&2
    exit 1
fi
if (( flat_allocs > 2000 )); then
    echo "flat combiner map wave allocates $flat_allocs objs/op (limit 2000)" >&2
    exit 1
fi

echo "== race-mode SupMR pipeline run =="
go run -race ./cmd/supmr -app wordcount -runtime supmr \
    -size 2m -chunk 128k -bw 0 -workers 4

echo "== race-mode multi-lane pipeline run =="
go run -race ./cmd/supmr -app wordcount -runtime supmr \
    -size 2m -chunk 128k -bw 64m -workers 4 -io-lanes 4 -prefetch-depth 3

echo "== race-mode budget-constrained pipeline run =="
go run -race ./cmd/supmr -app wordcount -runtime supmr \
    -size 2m -chunk 128k -bw 0 -workers 4 -budget 64k

echo "== race-mode radix sort pipeline run =="
# Fixed-width keys under a spill budget: radix run sorts, the columnar
# spill drains, and the lookahead streaming merge all on the race
# detector's watch.
go run -race ./cmd/supmr -app sort -runtime supmr \
    -size 1m -chunk 128k -bw 0 -workers 4 -budget 128k

echo "== faulted CLI run recovers with retries =="
# Built (not `go run`) so the exit code and stderr are the command's own.
supmr_bin=$(mktemp -d)/supmr
go build -o "$supmr_bin" ./cmd/supmr
"$supmr_bin" -app wordcount -runtime supmr \
    -size 1m -chunk 128k -bw 0 -workers 4 \
    -faults seed=1,read-err-every=5 -retries 4

echo "== radix ablation digest gate =="
# -radixsort=off must be byte-identical to the default fast path:
# clean, faulted-with-retries, and budget-constrained (spill plus
# external merge) runs, for both fixed-key apps the digest mode covers.
for args in \
    "-app sort -size 200k -chunk 20k -bw 0 -seed 23" \
    "-app histogram -size 256k -chunk 32k -bw 0 -seed 5" \
    "-app sort -size 200k -chunk 20k -bw 0 -seed 23 -faults seed=1,read-err-every=7 -retries 4" \
    "-app sort -size 200k -chunk 20k -bw 0 -seed 23 -budget 32k"; do
    radix_on=$("$supmr_bin" -digest $args)
    radix_off=$("$supmr_bin" -digest -radixsort=off $args)
    if [[ -z "$radix_on" || "$radix_on" != "$radix_off" ]]; then
        echo "radix ablation digest mismatch for '$args':" >&2
        echo " on:  $radix_on" >&2
        echo " off: $radix_off" >&2
        exit 1
    fi
done
echo "radix on/off digests identical"

echo "== multi-node ablation digest gate =="
# Scale-out must never change a byte: for each app, every cluster size
# and combiner setting — clean and with torn-wire faults plus retries —
# must reproduce the single-node digest exactly.
for args in \
    "-app wordcount -size 256k -chunk 32k -bw 0 -seed 3" \
    "-app sort -size 200k -chunk 20k -bw 0 -seed 23" \
    "-app wordcount -size 256k -chunk 32k -bw 0 -seed 3 -faults seed=1,write-err-every=3 -retries 4"; do
    single=$("$supmr_bin" -digest $args)
    for nodes in 1 2 4; do
        for comb in "" "-innode-combiner=off"; do
            multi=$("$supmr_bin" -digest -nodes "$nodes" $comb $args)
            if [[ -z "$single" || "$single" != "$multi" ]]; then
                echo "multi-node digest mismatch for '-nodes $nodes $comb $args':" >&2
                echo " single: $single" >&2
                echo " multi:  $multi" >&2
                exit 1
            fi
        done
    done
done
echo "multi-node digests identical to single-node"

echo "== egress lane ablation digest gate =="
# Parallel egress must never change a byte: -egress-lanes=4 must print
# the same digest line — including the egressed byte and extent counts —
# as the serial -egress-lanes=1 writer, clean and under write faults
# with retries.
for args in \
    "-app wordcount -size 256k -chunk 32k -bw 0 -seed 3" \
    "-app sort -size 200k -chunk 20k -bw 0 -seed 23" \
    "-app wordcount -size 256k -chunk 32k -bw 0 -seed 3 -faults seed=1,write-err-every=3 -retries 4"; do
    eg_serial=$("$supmr_bin" -digest -egress-lanes=1 $args)
    eg_wide=$("$supmr_bin" -digest -egress-lanes=4 $args)
    if [[ -z "$eg_serial" || "$eg_serial" != "$eg_wide" ]]; then
        echo "egress lane ablation digest mismatch for '$args':" >&2
        echo " 1 lane:  $eg_serial" >&2
        echo " 4 lanes: $eg_wide" >&2
        exit 1
    fi
done
echo "serial and 4-lane egress digests identical"

echo "== pipeline piped vs materialized digest gate =="
# The zero-copy pipe end to end: chaining rounds through egressed
# extents must produce the same per-round digests as the -materialize
# ablation, which re-ingests a stitched in-memory copy of each round's
# output.
for kind in prefixsum sortgrep; do
    piped=$("$supmr_bin" pipeline -kind "$kind" -size 256k -egress-lanes 4 | grep -o 'digest=[0-9a-f]*')
    mat=$("$supmr_bin" pipeline -kind "$kind" -size 256k -materialize | grep -o 'digest=[0-9a-f]*')
    if [[ -z "$piped" || "$piped" != "$mat" ]]; then
        echo "pipeline $kind piped vs materialized digest mismatch:" >&2
        echo " piped:        $piped" >&2
        echo " materialized: $mat" >&2
        exit 1
    fi
done
echo "piped and materialized pipeline digests identical"

echo "== faulted CLI run must fail cleanly =="
# A permanent ingest fault has to surface as exit 1 with one wrapped
# error line on stderr — no panic, no exit 0.
set +e
fault_err=$("$supmr_bin" -app wordcount -runtime supmr \
    -size 1m -chunk 128k -bw 0 -workers 4 \
    -faults seed=1,read-err-every=2,permanent 2>&1 >/dev/null)
fault_rc=$?
set -e
rm -rf "$(dirname "$supmr_bin")"
if [[ "$fault_rc" -eq 0 ]]; then
    echo "faulted run exited 0, want a failure" >&2
    exit 1
fi
if [[ $(echo "$fault_err" | grep -c .) -ne 1 ]] || ! echo "$fault_err" | grep -q '^supmr: .*injected fault'; then
    echo "faulted run stderr not a single wrapped error line:" >&2
    echo "$fault_err" >&2
    exit 1
fi
echo "failed as expected: $fault_err"

echo "== supmrd server smoke test =="
# Start the job server, submit two jobs concurrently through the
# client, and diff their digests against direct (engine-less) runs of
# the same specs: server-mode output must be byte-identical.
smoke_dir=$(mktemp -d)
go build -o "$smoke_dir/supmr" ./cmd/supmr
go build -o "$smoke_dir/supmrd" ./cmd/supmrd
sock="$smoke_dir/supmrd.sock"
"$smoke_dir/supmrd" -socket "$sock" -workers 4 -max-jobs 2 &
supmrd_pid=$!
trap 'kill "$supmrd_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
for _ in $(seq 1 100); do [[ -S "$sock" ]] && break; sleep 0.05; done
[[ -S "$sock" ]] || { echo "supmrd never bound $sock" >&2; exit 1; }

direct_wc=$("$smoke_dir/supmr" -digest -app wordcount -size 256k -chunk 32k -bw 0 -seed 3)
direct_sort=$("$smoke_dir/supmr" -digest -app sort -size 200k -chunk 20k -bw 0 -seed 23)
"$smoke_dir/supmr" submit -socket "$sock" -app wordcount -size 256k -chunk 32k -seed 3 \
    -tenant alice -wait > "$smoke_dir/wc.out" &
wc_job=$!
"$smoke_dir/supmr" submit -socket "$sock" -app sort -size 200k -chunk 20k -seed 23 \
    -tenant bob -wait > "$smoke_dir/sort.out" &
sort_job=$!
wait "$wc_job" "$sort_job"
for pair in "wc:$direct_wc" "sort:$direct_sort"; do
    app=${pair%%:*}
    direct_digest=$(echo "${pair#*:}" | grep -o 'digest=[0-9a-f]*')
    server_digest=$(grep -o 'digest=[0-9a-f]*' "$smoke_dir/$app.out")
    if [[ -z "$direct_digest" || "$direct_digest" != "$server_digest" ]]; then
        echo "$app digest mismatch: direct '$direct_digest' vs server '$server_digest'" >&2
        cat "$smoke_dir/$app.out" >&2
        exit 1
    fi
done
# Memoized submissions against the server's shared store: the first
# populates it, the repeat must replay from cache (memo hits > 0) and
# both must stay byte-identical to the direct -memo=off digest above.
"$smoke_dir/supmr" submit -socket "$sock" -app wordcount -size 256k -chunk 32k -seed 3 \
    -memo -wait > "$smoke_dir/memo1.out"
"$smoke_dir/supmr" submit -socket "$sock" -app wordcount -size 256k -chunk 32k -seed 3 \
    -memo -wait > "$smoke_dir/memo2.out"
direct_digest=$(echo "$direct_wc" | grep -o 'digest=[0-9a-f]*')
for out in memo1 memo2; do
    memo_digest=$(grep -o 'digest=[0-9a-f]*' "$smoke_dir/$out.out")
    if [[ -z "$memo_digest" || "$memo_digest" != "$direct_digest" ]]; then
        echo "$out digest mismatch: direct '$direct_digest' vs memo '$memo_digest'" >&2
        cat "$smoke_dir/$out.out" >&2
        exit 1
    fi
done
if ! grep -qE 'memo: [1-9][0-9]* hits' "$smoke_dir/memo2.out"; then
    echo "repeat memo submission did not hit the shared cache:" >&2
    cat "$smoke_dir/memo2.out" >&2
    exit 1
fi
echo "memoized submissions replay from the shared store, digests unchanged"

"$smoke_dir/supmr" stats -socket "$sock"
kill -TERM "$supmrd_pid"
wait "$supmrd_pid" || { echo "supmrd exited dirty" >&2; exit 1; }
trap - EXIT
rm -rf "$smoke_dir"
echo "server digests match direct runs"

echo "CI OK"
