#!/usr/bin/env bash
# CI gate: formatting, vet, build, full test suite, and race-detector
# coverage of the concurrent runtime packages, ending with a short
# race-mode SupMR pipeline run end to end.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (runtime packages) =="
go test -race -count=1 \
    ./internal/exec/ \
    ./internal/mapreduce/ \
    ./internal/core/ \
    ./internal/sortalgo/ \
    ./internal/spill/ \
    ./internal/apps/ \
    .

echo "== race-mode SupMR pipeline run =="
go run -race ./cmd/supmr -app wordcount -runtime supmr \
    -size 2m -chunk 128k -bw 0 -workers 4

echo "== race-mode budget-constrained pipeline run =="
go run -race ./cmd/supmr -app wordcount -runtime supmr \
    -size 2m -chunk 128k -bw 0 -workers 4 -budget 64k

echo "CI OK"
