#!/usr/bin/env bash
# CI gate: formatting, vet, build, full test suite, and race-detector
# coverage of the concurrent runtime packages, ending with a short
# race-mode SupMR pipeline run end to end.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (runtime packages) =="
go test -race -count=1 \
    ./internal/exec/ \
    ./internal/mapreduce/ \
    ./internal/core/ \
    ./internal/container/ \
    ./internal/sortalgo/ \
    ./internal/spill/ \
    ./internal/apps/ \
    .

echo "== map hot path allocation gate =="
# A steady-state flat-combiner map wave must stay (near) allocation-free.
# Measured ~22 allocs/op; the gate allows generous headroom for GC and
# scheduler noise while still catching any per-key allocation regression
# (the map-backed path runs ~200k allocs/op on the same input).
bench_out=$(go test -run '^$' -bench '^BenchmarkMapHotPath$' -benchmem -benchtime 10x .)
echo "$bench_out"
flat_allocs=$(echo "$bench_out" | awk '$1 ~ /FlatCombiner/ { print $(NF-1) }')
if [[ -z "$flat_allocs" ]]; then
    echo "could not parse FlatCombiner allocs/op" >&2
    exit 1
fi
if (( flat_allocs > 2000 )); then
    echo "flat combiner map wave allocates $flat_allocs objs/op (limit 2000)" >&2
    exit 1
fi

echo "== race-mode SupMR pipeline run =="
go run -race ./cmd/supmr -app wordcount -runtime supmr \
    -size 2m -chunk 128k -bw 0 -workers 4

echo "== race-mode budget-constrained pipeline run =="
go run -race ./cmd/supmr -app wordcount -runtime supmr \
    -size 2m -chunk 128k -bw 0 -workers 4 -budget 64k

echo "CI OK"
