package supmr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"supmr/internal/chunk"
	"supmr/internal/exec"
	"supmr/internal/metrics"
	"supmr/internal/sched"
	"supmr/internal/storage"
)

// ErrEngineClosed rejects submissions to a closed Engine.
var ErrEngineClosed = errors.New("supmr: engine closed")

// ErrBacklogFull rejects a submission arriving while the engine's
// pending-job backlog is at capacity (see EngineConfig.MaxPending).
// Check with errors.Is; the submission held no resources and can be
// retried.
var ErrBacklogFull = sched.ErrBacklogFull

// EngineConfig sizes a shared multi-job Engine.
type EngineConfig struct {
	// Workers is the shared compute worker count every job's phases draw
	// from (default: GOMAXPROCS).
	Workers int
	// IOLanes is the shared IO lane count serving every job's ingest,
	// prefetch and spill writes (default 1).
	IOLanes int
	// MemoryBudget is the global intermediate-memory budget carved into
	// per-job grants: every admission slot has a guaranteed share
	// (MemoryBudget / MaxJobs) held in reserve until a job claims it, so
	// one spilling job cannot starve another of its fair share. Zero
	// disables global budgeting — each job's own Config.MemoryBudget is
	// granted in full.
	MemoryBudget int64
	// MaxJobs bounds concurrently running jobs (default 4). Submissions
	// beyond it queue in the pending backlog.
	MaxJobs int
	// MaxPending bounds the submitted-but-not-started backlog: a
	// submission arriving with the backlog full fails fast with
	// sched.ErrBacklogFull instead of queueing unboundedly. Negative
	// means unbounded; zero rejects whenever all run slots are busy.
	// Default: 2*MaxJobs.
	MaxPending *int
	// OpSlots is the number of compute operations (map waves, spill
	// drains, merge passes) running on the shared workers at once
	// (default 1: each wave gets the whole pool while jobs interleave at
	// operation boundaries; IO overlaps underneath regardless).
	OpSlots int
	// Clock provides the engine-wide job clock (default: wall clock).
	Clock storage.Clock
	// Memo, when set, is the engine's shared memo store: memoized
	// submissions (Config.Memo) without a store of their own publish to
	// and replay from it, so one tenant's cold run warms the next
	// submission over the same content. The engine does not close it —
	// the owner does, after Engine.Close.
	Memo *MemoStore
}

// Engine is the shared multi-job substrate: one worker pool, one set of
// IO lanes, one chunk-buffer freelist and one memory budget serving N
// concurrent jobs. Submissions route through it by setting
// Config.Engine; admission control bounds how many run at once, and the
// operation-level fair-share scheduler (internal/sched) interleaves the
// admitted jobs' map waves, spill drains and merge tasks so a short job
// is never FIFO-blocked behind a long one.
//
// Engine mode trades two instruments for isolation: per-phase
// allocation metering (Report.Allocs) and utilization tracing
// (Config.TraceContexts) are process-wide measurements that cannot be
// attributed to one of several concurrent jobs, so both are disabled —
// Allocs is zero and TraceContexts is ignored. Task stats and lane-byte
// counters are per-submission (each job has a private sink), and the
// chunk freelist's counters are engine-global, reported by Stats.
type Engine struct {
	clk    storage.Clock
	pool   *exec.Pool
	sched  *sched.Scheduler
	adm    *sched.Admission
	budget *sched.Budget
	frees  *chunk.FreeList
	memo   *MemoStore

	mu        sync.Mutex
	closed    bool
	seq       int64
	submitted int64
	completed int64
	failed    int64
	rejected  int64
	tenants   map[string]*TenantStats
}

// TenantStats is one tenant's rollup across its completed submissions.
type TenantStats struct {
	// Jobs counts finished submissions (successful or failed).
	Jobs int
	// Failed counts submissions that returned an error.
	Failed int
	// OutputPairs, BytesIngested and SpilledBytes accumulate the
	// corresponding Report.Stats fields of successful runs.
	OutputPairs   int64
	BytesIngested int64
	SpilledBytes  int64
	// Busy accumulates map+reduce worker-busy time of successful runs —
	// the tenant's compute consumption on the shared pool.
	Busy time.Duration
}

// EngineStats is a point-in-time snapshot of the engine.
type EngineStats struct {
	// ActiveJobs and PendingJobs are the admission controller's current
	// running and queued submission counts.
	ActiveJobs  int
	PendingJobs int
	// Submitted/Completed/Failed/Rejected count submissions over the
	// engine's lifetime; Rejected counts ErrBacklogFull fast-failures.
	Submitted int64
	Completed int64
	Failed    int64
	Rejected  int64
	// BudgetTotal and BudgetRemaining describe the global memory budget
	// (zero total: unbudgeted).
	BudgetTotal     int64
	BudgetRemaining int64
	// ChunkGets and ChunkReuses are the shared freelist's counters:
	// buffer acquisitions and how many were recycled (engine-global —
	// jobs deliberately share buffers).
	ChunkGets   int64
	ChunkReuses int64
	// Tenants is the per-tenant rollup, keyed by Config.Tenant
	// ("" submissions roll up under "default").
	Tenants map[string]TenantStats
	// Memo snapshots the engine's shared memo store (nil when the
	// engine was built without one).
	Memo *MemoStats `json:",omitempty"`
}

// NewEngine builds the shared substrate. Close it when no more jobs
// will be submitted.
func NewEngine(cfg EngineConfig) *Engine {
	clk := cfg.Clock
	if clk == nil {
		clk = storage.NewRealClock()
	}
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 4
	}
	maxPending := 2 * maxJobs
	if cfg.MaxPending != nil {
		maxPending = *cfg.MaxPending
	}
	return &Engine{
		clk: clk,
		pool: exec.NewPool(nil, exec.Config{
			Workers:   cfg.Workers,
			IOWorkers: cfg.IOLanes,
			Now:       clk.Now,
		}),
		sched:   sched.New(sched.Config{OpSlots: cfg.OpSlots}),
		adm:     sched.NewAdmission(maxJobs, maxPending),
		budget:  sched.NewBudget(cfg.MemoryBudget, maxJobs),
		frees:   chunk.NewFreeList(),
		memo:    cfg.Memo,
		tenants: make(map[string]*TenantStats),
	}
}

// Close shuts the engine down: queued submissions abort with
// ErrEngineClosed, in-flight tasks run to completion, and the shared
// workers exit. Prefer letting running jobs finish first; jobs still
// running fail. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.pool.Abort(ErrEngineClosed)
	e.pool.Close()
}

// Stats snapshots the engine: admission occupancy, lifetime submission
// counters, budget state, freelist recycling and the per-tenant rollup.
func (e *Engine) Stats() EngineStats {
	active, pending := e.adm.Stats()
	gets, reuses := e.frees.Stats()
	e.mu.Lock()
	defer e.mu.Unlock()
	s := EngineStats{
		ActiveJobs:      active,
		PendingJobs:     pending,
		Submitted:       e.submitted,
		Completed:       e.completed,
		Failed:          e.failed,
		Rejected:        e.rejected,
		BudgetTotal:     e.budget.Total(),
		BudgetRemaining: e.budget.Remaining(),
		ChunkGets:       gets,
		ChunkReuses:     reuses,
		Tenants:         make(map[string]TenantStats, len(e.tenants)),
	}
	for name, t := range e.tenants {
		s.Tenants[name] = *t
	}
	if e.memo != nil {
		ms := e.memo.Stats()
		s.Memo = &ms
	}
	return s
}

// err reports ErrEngineClosed once Close has been called.
func (e *Engine) err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	return nil
}

// nextJobName labels a submission for the scheduler and diagnostics.
func (e *Engine) nextJobName(tenant string) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq++
	e.submitted++
	return fmt.Sprintf("%s#%d", tenant, e.seq)
}

func (e *Engine) noteRejected() {
	e.mu.Lock()
	e.rejected++
	e.mu.Unlock()
}

// noteDone folds one finished submission into the lifetime counters and
// its tenant's rollup.
func (e *Engine) noteDone(tenant string, stats *Stats, runErr error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.tenants[tenant]
	if t == nil {
		t = &TenantStats{}
		e.tenants[tenant] = t
	}
	t.Jobs++
	if runErr != nil {
		e.failed++
		t.Failed++
		return
	}
	e.completed++
	t.OutputPairs += int64(stats.OutputPairs)
	t.BytesIngested += stats.BytesIngested
	t.SpilledBytes += stats.SpilledBytes
	t.Busy += stats.MapBusy + stats.ReduceBusy
}

// runOnEngine is Run's multi-job path: admission, budget carve, a
// scheduler-gated JobPool handle over the shared substrate, then the
// same runtime selection as a solo run. Output is byte-identical to a
// solo run of the same Config — only scheduling and instrumentation
// scope differ.
func runOnEngine[K comparable, V any](e *Engine, job Job[K, V], input Stream, cont Container[K, V], cfg Config) (*Report[K, V], error) {
	if err := e.err(); err != nil {
		return nil, err
	}
	if cfg.Weight < 0 {
		return nil, fmt.Errorf("supmr: negative Weight %d: the engine fair-share weight must be at least 1 (0 selects the default)", cfg.Weight)
	}
	tenant := cfg.Tenant
	if tenant == "" {
		tenant = "default"
	}
	name := e.nextJobName(tenant)
	if err := e.adm.Enter(cfg.Context); err != nil {
		if errors.Is(err, sched.ErrBacklogFull) {
			e.noteRejected()
			return nil, fmt.Errorf("supmr: engine rejected %s: %w", name, err)
		}
		e.noteDone(tenant, nil, err)
		return nil, err
	}
	defer e.adm.Leave()

	grant, releaseBudget := e.budget.Carve(cfg.MemoryBudget)
	defer releaseBudget()

	jp := sched.NewJobPool(e.pool, e.sched, sched.JobConfig{
		Name:    name,
		Weight:  cfg.Weight,
		Context: cfg.Context,
	})
	defer jp.Close()

	// No WithAllocs and no recorder: both instruments are process-wide
	// and would bleed across concurrent jobs.
	rep, err := runWithExecutor(job, input, cont, cfg, runSubstrate{
		pool:   jp,
		clk:    e.clk,
		timer:  metrics.NewTimer(e.clk.Now),
		budget: grant,
		frees:  e.frees,
		memo:   e.memo,
	})
	if rep != nil {
		rep.Notes = append(rep.Notes,
			"engine mode: per-phase allocation metering disabled (process-wide instrument cannot be attributed to one of several concurrent jobs)")
		if cfg.TraceContexts > 0 {
			rep.Notes = append(rep.Notes,
				"engine mode: utilization trace disabled (TraceContexts ignored; process-wide instrument)")
		}
	}
	var stats *Stats
	if rep != nil {
		stats = &rep.Stats
	}
	e.noteDone(tenant, stats, err)
	return rep, err
}
