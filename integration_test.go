package supmr

// Integration tests: cross-module scenarios through the public API —
// simulated RAID + chunking + both runtimes, HDFS ingest, adaptive and
// hybrid chunking, utilization tracing and the energy model.

import (
	"testing"
	"time"

	"supmr/internal/kv"
	"supmr/internal/workload"
)

func TestIntegrationRAIDWordCount(t *testing.T) {
	clock := NewClock()
	raid, err := NewTestbedRAID(clock, 1.0/8) // 48 MB/s aggregate
	if err != nil {
		t.Fatal(err)
	}
	const size = 2 << 20
	f, err := TextFile("corpus", size, 3, raid)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(32), Config{
		Runtime:    RuntimeSupMR,
		ChunkBytes: size / 8,
		Clock:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.BytesIngested != size {
		t.Errorf("ingested %d, want %d", rep.Stats.BytesIngested, size)
	}
	if rep.Stats.MapWaves < 7 {
		t.Errorf("map waves = %d", rep.Stats.MapWaves)
	}
	// Against the in-memory reference.
	ref, err := RunBytes[string, int64](WordCountJob(), genBytes(size, 3), WordCountContainer(32),
		Config{Runtime: RuntimeTraditional})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != len(ref.Pairs) {
		t.Fatalf("RAID run found %d words, reference %d", len(rep.Pairs), len(ref.Pairs))
	}
	for i := range ref.Pairs {
		if rep.Pairs[i] != ref.Pairs[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, rep.Pairs[i], ref.Pairs[i])
		}
	}
}

func genBytes(size int64, seed int64) []byte {
	buf := make([]byte, size)
	workload.TextGen{Seed: seed}.Fill()(0, buf)
	return buf
}

func TestIntegrationHDFSWordCount(t *testing.T) {
	clock := NewClock()
	cluster, err := NewHDFS(HDFSConfig{
		Nodes: 8, BlockSize: 256 << 10, DiskBW: 1 << 30,
		LinkBW: 64 << 20, Latency: 100 * time.Microsecond,
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	const size = 1 << 20
	hf, err := cluster.Create("in.txt", size, TextFill(5))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFile[string, int64](WordCountJob(), hf, WordCountContainer(32), Config{
		Runtime: RuntimeSupMR, ChunkBytes: 256 << 10, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunBytes[string, int64](WordCountJob(), genBytes(size, 5), WordCountContainer(32),
		Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != len(ref.Pairs) {
		t.Fatalf("HDFS run found %d words, reference %d", len(rep.Pairs), len(ref.Pairs))
	}
	if cluster.Link().Stats().BytesMoved < size {
		t.Error("ingest did not cross the shared link")
	}
}

func TestIntegrationAdaptiveChunks(t *testing.T) {
	clock := NewClock()
	dev, err := NewDisk("sim", 32<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	const size = 4 << 20
	f, err := TextFile("corpus", size, 9, dev)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(32), Config{
		Runtime:        RuntimeSupMR,
		ChunkBytes:     128 << 10, // deliberately small start
		AdaptiveChunks: true,
		Clock:          clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.BytesIngested != size {
		t.Errorf("adaptive run ingested %d, want %d", rep.Stats.BytesIngested, size)
	}
	// Results still correct.
	ref, err := RunBytes[string, int64](WordCountJob(), genBytes(size, 9), WordCountContainer(32), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != len(ref.Pairs) {
		t.Fatalf("adaptive run found %d words, reference %d", len(rep.Pairs), len(ref.Pairs))
	}
}

func TestIntegrationHybridChunks(t *testing.T) {
	clock := NewClock()
	dev := NewFastDevice(clock)
	// Mixed small files.
	files, err := TextFiles("doc", 12, 64<<10, 1, dev)
	if err != nil {
		t.Fatal(err)
	}
	// Add one oversized file.
	big, err := TextFile("big", 1<<20, 99, dev)
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, big)

	rep, err := RunFiles[string, int64](WordCountJob(), files, WordCountContainer(32), Config{
		Runtime:      RuntimeSupMR,
		HybridChunks: true,
		ChunkBytes:   256 << 10,
		Clock:        clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(12*(64<<10) + (1 << 20))
	if rep.Stats.BytesIngested != wantBytes {
		t.Errorf("hybrid ingested %d, want %d", rep.Stats.BytesIngested, wantBytes)
	}
	if rep.Stats.MapWaves < 6 {
		t.Errorf("hybrid map waves = %d, want several", rep.Stats.MapWaves)
	}
}

func TestIntegrationTraceAndEnergy(t *testing.T) {
	clock := NewClock()
	dev, err := NewDisk("sim", 16<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TextFile("corpus", 2<<20, 4, dev)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(32), Config{
		Runtime:       RuntimeSupMR,
		ChunkBytes:    256 << 10,
		Clock:         clock,
		TraceContexts: 4,
		TraceBucket:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || len(rep.Trace.Samples) == 0 {
		t.Fatal("no trace recorded")
	}
	if rep.Trace.MeanTotal() <= 0 {
		t.Error("trace shows zero activity")
	}
	e := Energy(rep.Trace, 4)
	if e.Joules <= 0 || e.AvgWatts <= 0 || e.PeakWatts < e.AvgWatts {
		t.Errorf("energy report = %+v", e)
	}
	// Energy must exceed the idle floor and respect the busy ceiling.
	pm := DefaultPowerModel()
	idleFloor := 4 * pm.IdleWatts
	busyCeil := 4 * pm.BusyWatts
	if e.AvgWatts < idleFloor || e.AvgWatts > busyCeil {
		t.Errorf("avg power %.1f W outside [%.1f, %.1f]", e.AvgWatts, idleFloor, busyCeil)
	}
}

func TestIntegrationGrepFacade(t *testing.T) {
	g := GrepJob("alpha", "omega")
	data := []byte("alpha one\nmiddle\nomega end\nalpha omega both\n")
	rep, err := RunBytes[string, int64](g, data, g.NewContainer(), Config{
		Runtime: RuntimeSupMR, ChunkBytes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int64)
	for _, p := range rep.Pairs {
		counts[p.Key] = p.Val
	}
	if counts["alpha"] != 2 || counts["omega"] != 2 {
		t.Errorf("grep counts = %v", counts)
	}
}

func TestIntegrationLinearRegressionFacade(t *testing.T) {
	lr := LinearRegressionJob()
	// y = 2x + 5 over byte-ranged points.
	var data []byte
	for i := 0; i < 3000; i++ {
		x := byte(i % 100)
		data = append(data, x, byte(2*int(x)+5))
	}
	rep, err := RunBytes[int, float64](lr, data, lr.NewContainer(), Config{
		Runtime:    RuntimeSupMR,
		ChunkBytes: 512,
		Boundary:   FixedRecords(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	slope, intercept, ok := lr.Fit(rep.Pairs)
	if !ok {
		t.Fatal("fit failed")
	}
	if slope < 1.95 || slope > 2.05 || intercept < 4 || intercept > 6 {
		t.Errorf("fit = (%.3f, %.2f), want (2, 5)", slope, intercept)
	}
}

func TestIntegrationOpenMPTraced(t *testing.T) {
	clock := NewClock()
	dev, err := NewDisk("sim", 32<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TeraFile("t", 10_000, 2, dev)
	if err != nil {
		t.Fatal(err)
	}
	res, tr, err := OpenMPSortFileTraced(f, 2, 4, 20*time.Millisecond, clock)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 10_000 {
		t.Fatalf("sorted %d records", len(res.Pairs))
	}
	less := kv.Less[string](func(a, b string) bool { return a < b })
	if !kv.IsSortedPairs(res.Pairs, less) {
		t.Error("OpenMP output unsorted")
	}
	if tr == nil || len(tr.Samples) == 0 {
		t.Fatal("no trace")
	}
	// The profile is read (iowait) then parse (low user) then sort: the
	// trace must contain IO wait early.
	var sawIO bool
	for _, s := range tr.Samples[:len(tr.Samples)/2] {
		if s.IOWait > 0 {
			sawIO = true
			break
		}
	}
	if !sawIO {
		t.Error("OpenMP trace shows no ingest IO wait")
	}
}

func TestIntegrationIntraFileWordCount(t *testing.T) {
	clock := NewClock()
	dev, err := NewDisk("sim", 64<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	files, err := TextFiles("part", 30, 32<<10, 7, dev)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFiles[string, int64](WordCountJob(), files, WordCountContainer(32), Config{
		Runtime:       RuntimeSupMR,
		FilesPerChunk: 4,
		Clock:         clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 30 files / 4 per chunk -> 8 waves (7 full + 1 of 2), §III-A1.
	if rep.Stats.MapWaves != 8 {
		t.Errorf("map waves = %d, want 8", rep.Stats.MapWaves)
	}
	if rep.Stats.BytesIngested != 30*(32<<10) {
		t.Errorf("ingested %d bytes", rep.Stats.BytesIngested)
	}
}

func TestIntegrationMergeAlgorithmsAgreeOnFacade(t *testing.T) {
	data := make([]byte, 20_000*workload.TeraRecordSize)
	workload.TeraGen{Seed: 17}.Fill()(0, data)
	run := func(m MergeAlgo) []Pair[string, uint64] {
		rep, err := RunBytes[string, uint64](SortJob(), data, SortContainer(), Config{
			Boundary: CRLFRecords, Merge: &m, Splits: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Pairs
	}
	a := run(MergePairwise)
	b := run(MergePWay)
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("merge algorithms disagree at %d", i)
		}
	}
}

func TestIntegrationKMeansWithCache(t *testing.T) {
	clock := NewClock()
	disk, err := NewDisk("d", 32<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewCachedDevice(disk, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// 2-D byte points from three blobs.
	var data []byte
	state := uint64(9)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	centers := [][2]int{{40, 40}, {210, 80}, {120, 200}}
	for i := 0; i < 600; i++ {
		c := centers[i%3]
		data = append(data, byte(c[0]+int(next()%9)-4), byte(c[1]+int(next()%9)-4))
	}
	ptsFile, err := NewByteFile("points", data, cached)
	if err != nil {
		t.Fatal(err)
	}

	km := KMeansJob(3, 2)
	km.Epsilon = 0.01
	res, err := RunKMeans(km, ptsFile, Config{Workers: 2, ChunkBytes: 256, Clock: clock}, 40)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range res.Sizes {
		total += n
	}
	if total != 600 {
		t.Errorf("cluster sizes sum to %d, want 600", total)
	}
	if res.Iterations < 1 || res.Waves < res.Iterations {
		t.Errorf("result = %+v", res)
	}
}

func TestIntegrationTraceMarkers(t *testing.T) {
	clock := NewClock()
	dev, err := NewDisk("sim", 32<<20, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TextFile("c", 512<<10, 2, dev)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFile[string, int64](WordCountJob(), f, WordCountContainer(16), Config{
		Runtime: RuntimeSupMR, ChunkBytes: 128 << 10, Clock: clock,
		TraceContexts: 4, TraceBucket: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Markers) == 0 {
		t.Fatal("no markers recorded")
	}
	labels := make(map[string]bool)
	for _, m := range rep.Markers {
		labels[m.Label] = true
	}
	for _, want := range []string{"read+map:start", "read+map:end", "reduce:start", "merge:end"} {
		if !labels[want] {
			t.Errorf("missing marker %q (have %v)", want, labels)
		}
	}
	out := rep.Trace.AnnotatedASCII(8, rep.Markers)
	if len(out) == 0 {
		t.Error("annotated render empty")
	}
}
